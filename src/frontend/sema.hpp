// Semantic analysis for the ROCCC C subset: name resolution, type checking
// with C integer promotions, and enforcement of the paper's hardware
// restrictions (section 2: no recursion, no un-analyzable pointers; user
// types at most 32 bits, section 4.2.4).
#pragma once

#include "frontend/ast.hpp"
#include "support/diag.hpp"

namespace roccc::ast {

/// Runs semantic analysis over the module in place:
///  - resolves every VarRef/ArrayRef/LValue to its VarDecl,
///  - computes expression types (C usual arithmetic conversions on a 32-bit
///    promotion lattice; comparisons produce 1-bit unsigned),
///  - inserts implicit CastExprs at assignments and intrinsic boundaries,
///  - checks ROCCC restrictions: no recursion, calls only to intrinsics or
///    module-local functions, out-params written not read, array index
///    arity/dimension bounds where constant, loop bounds constant for
///    full unrolling candidates.
/// Returns false if any errors were reported.
bool analyze(Module& m, DiagEngine& diags);

/// Result type of an intrinsic call given argument types; used by sema and
/// by later phases re-checking synthesized code.
ScalarType intrinsicResultType(const std::string& name, const std::vector<ScalarType>& argTypes);

} // namespace roccc::ast
