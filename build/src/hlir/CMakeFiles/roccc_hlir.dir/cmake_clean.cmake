file(REMOVE_RECURSE
  "CMakeFiles/roccc_hlir.dir/cosim.cpp.o"
  "CMakeFiles/roccc_hlir.dir/cosim.cpp.o.d"
  "CMakeFiles/roccc_hlir.dir/kernel.cpp.o"
  "CMakeFiles/roccc_hlir.dir/kernel.cpp.o.d"
  "CMakeFiles/roccc_hlir.dir/transforms.cpp.o"
  "CMakeFiles/roccc_hlir.dir/transforms.cpp.o.d"
  "libroccc_hlir.a"
  "libroccc_hlir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roccc_hlir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
