// Reproduces Figure 7: the accumulator data path with its feedback latch —
// the SNX instruction "must have a latch to store the feedback signal to
// the corresponding LPR instruction" — and shows the latch placement that
// keeps the feedback loop inside a single pipeline stage so the
// accumulator sustains one iteration per clock.
#include <cstdio>

#include "roccc/compiler.hpp"

static const char* kMac = R"(
int32 acc = 0;
void mac(const int12 A[32], const int12 B[32], int32* out) {
  int i;
  for (i = 0; i < 32; i++) {
    acc = acc + A[i] * B[i];
  }
  *out = acc;
}
)";

int main() {
  using namespace roccc;
  Compiler c;
  const CompileResult r = c.compileSource(kMac);
  if (!r.ok) {
    std::fprintf(stderr, "%s\n", r.diags.dump().c_str());
    return 1;
  }

  std::printf("Figure 7 - multiply-accumulate data path, stage map:\n\n");
  std::printf("%s\n", r.datapath.dump().c_str());

  const auto& fb = r.datapath.feedbacks.at(0);
  const auto& dp = r.datapath;
  const int lprStage = dp.ops[static_cast<size_t>(dp.values[static_cast<size_t>(fb.lprValue)].def)].stage;
  const int snxStage = dp.ops[static_cast<size_t>(dp.values[static_cast<size_t>(fb.snxValue)].def)].stage;
  std::printf("feedback register '%s': LPR read in stage %d, SNX store in stage %d\n",
              fb.name.c_str(), lprStage, snxStage);
  std::printf("  -> the loop closes through ONE latch (II = 1): %s\n",
              lprStage == snxStage ? "YES" : "NO (error)");
  std::printf("pipeline stages total: %d (the multiplier sits in an earlier stage;\n"
              "its product is registered into the feedback stage)\n", dp.stageCount);

  // Demonstrate II=1 on the real system.
  interp::KernelIO in;
  for (int i = 0; i < 32; ++i) {
    in.arrays["A"].push_back(i - 16);
    in.arrays["B"].push_back(2 * i + 1);
  }
  rtl::System sys(r.kernel, r.datapath, r.module);
  sys.run(in);
  std::printf("\nsystem run: %lld cycles for %lld iterations (1 accumulate per clock after fill)\n",
              static_cast<long long>(sys.stats().cycles),
              static_cast<long long>(sys.stats().iterations));
  const auto rep = cosimulate(r, kMac, in);
  std::printf("cosimulation vs software: %s\n", rep.match ? "MATCH" : "MISMATCH");
  return rep.match && lprStage == snxStage ? 0 : 1;
}
