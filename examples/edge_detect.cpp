// Image-processing scenario (the application domain the paper's
// introduction motivates): a Sobel-style edge detector over an image,
// compiled to a 2-D sliding-window engine with line-buffered smart buffers,
// then run cycle-accurately and rendered as ASCII art.
//
//   $ ./edge_detect
#include <cmath>
#include <cstdio>

#include "roccc/compiler.hpp"
#include "synth/estimate.hpp"

namespace {

constexpr int kW = 32;
constexpr int kH = 24;

const char* kKernel = R"(
void sobel(const uint8 IMG[24][32], uint8 EDGE[22][30]) {
  int i;
  int j;
  int gx;
  int gy;
  int mag;
  for (i = 0; i < 22; i++) {
    for (j = 0; j < 30; j++) {
      gx = (IMG[i][j+2] + 2*IMG[i+1][j+2] + IMG[i+2][j+2])
         - (IMG[i][j]   + 2*IMG[i+1][j]   + IMG[i+2][j]);
      gy = (IMG[i+2][j] + 2*IMG[i+2][j+1] + IMG[i+2][j+2])
         - (IMG[i][j]   + 2*IMG[i][j+1]   + IMG[i][j+2]);
      if (gx < 0) { gx = -gx; }
      if (gy < 0) { gy = -gy; }
      mag = gx + gy;
      if (mag > 255) { mag = 255; }
      EDGE[i][j] = mag;
    }
  }
}
)";

} // namespace

int main() {
  // Synthesize a test image: a disc and a bar.
  roccc::interp::KernelIO io;
  auto& img = io.arrays["IMG"];
  for (int y = 0; y < kH; ++y) {
    for (int x = 0; x < kW; ++x) {
      const double dx = x - 12.0, dy = y - 12.0;
      const bool disc = dx * dx + dy * dy < 49.0;
      const bool bar = x > 22 && x < 27;
      img.push_back(disc || bar ? 200 : 30);
    }
  }

  roccc::Compiler compiler;
  const auto result = compiler.compileSource(kKernel);
  if (!result.ok) {
    std::fprintf(stderr, "%s\n", result.diags.dump().c_str());
    return 1;
  }

  const auto cosim = roccc::cosimulate(result, kKernel, io);
  if (!cosim.match) {
    std::fprintf(stderr, "cosimulation mismatch: %s\n", cosim.mismatch.c_str());
    return 1;
  }

  std::printf("Sobel edge detector: %d-stage pipeline, %d window accesses/iteration\n",
              result.datapath.stageCount, result.kernel.inputs[0].accessCount());
  std::printf("line-buffered smart buffer capacity: %lld elements (2 lines + window)\n",
              static_cast<long long>(cosim.stats.bufferCapacityElems));
  std::printf("%lld cycles for %lld pixels; BRAM reads %lld (each pixel fetched once)\n\n",
              static_cast<long long>(cosim.stats.cycles),
              static_cast<long long>(cosim.stats.iterations),
              static_cast<long long>(cosim.stats.bramReads));

  const auto rep = roccc::synth::estimate(result.module);
  std::printf("synthesis estimate: %s\n\n", rep.summary().c_str());

  const auto& edge = cosim.hardware.arrays.at("EDGE");
  std::printf("input image                      edge map (hardware output)\n");
  for (int y = 0; y < 22; ++y) {
    for (int x = 0; x < kW; ++x) std::printf("%c", img[static_cast<size_t>(y * kW + x)] > 100 ? '#' : '.');
    std::printf("   ");
    for (int x = 0; x < 30; ++x) {
      const int64_t v = edge[static_cast<size_t>(y * 30 + x)];
      std::printf("%c", v > 200 ? '#' : (v > 80 ? '+' : ' '));
    }
    std::printf("\n");
  }
  return 0;
}
