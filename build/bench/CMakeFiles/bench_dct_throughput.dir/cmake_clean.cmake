file(REMOVE_RECURSE
  "CMakeFiles/bench_dct_throughput.dir/bench_dct_throughput.cpp.o"
  "CMakeFiles/bench_dct_throughput.dir/bench_dct_throughput.cpp.o.d"
  "bench_dct_throughput"
  "bench_dct_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dct_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
