// Daemon throughput: the roccc-ccd service under concurrent client load,
// cold cache (every job is a real compile) vs warm cache (every job is a
// shared-cache hit), at 1 / 8 / 64 concurrent client connections over the
// nine Table 1 kernels. Feeds the service section of EXPERIMENTS.md.
//
// The daemon runs in-process on a scratch AF_UNIX socket; every job goes
// over the real wire (connect, JSON frame, admission window, worker pool),
// so the numbers include the full protocol overhead a client pays.
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "kernels.hpp"
#include "roccc/service_net.hpp"
#include "support/timer.hpp"

namespace {

using namespace roccc;

constexpr int kTotalJobs = 256; // per configuration, split across clients

json::Value kernelRequest(int index) {
  const auto& k = bench::kTable1Kernels[index % std::size(bench::kTable1Kernels)];
  json::Value options = json::Value::object();
  if (k.targetStageDelayNs > 0) {
    options.set("targetNs", json::Value::number(k.targetStageDelayNs));
  }
  return makeCompileRequest(k.name, k.source, std::move(options));
}

struct RunResult {
  double wallMs = 0;
  int failures = 0;
};

/// `clients` connections, each issuing its share of kTotalJobs sequential
/// compile requests round-robin over the Table 1 kernels.
RunResult run(const std::string& socketPath, int clients) {
  std::vector<std::thread> threads;
  std::vector<int> failures(clients, 0);
  WallTimer timer;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ServiceClient client;
      std::string error;
      if (!client.connect(socketPath, error)) {
        ++failures[c];
        return;
      }
      for (int j = c; j < kTotalJobs; j += clients) {
        json::Value resp;
        if (!client.request(kernelRequest(j), resp, error)) {
          ++failures[c];
          continue;
        }
        const json::Value* status = resp.find("status");
        if (!status || !status->isString() || status->asString() != "ok") ++failures[c];
      }
    });
  }
  for (auto& t : threads) t.join();
  RunResult r;
  r.wallMs = timer.elapsedMs();
  for (const int f : failures) r.failures += f;
  return r;
}

double metricP95(const std::string& socketPath) {
  ServiceClient client;
  std::string error;
  if (!client.connect(socketPath, error)) return 0;
  json::Value req = json::Value::object();
  req.set("type", json::Value::string("metrics"));
  json::Value resp;
  if (!client.request(req, resp, error)) return 0;
  const json::Value* svc = resp.find("serviceMs");
  const json::Value* p95 = svc ? svc->find("p95Ms") : nullptr;
  return p95 && p95->isNumber() ? p95->asDouble() : 0;
}

} // namespace

int main() {
  const std::string socketPath =
      (std::filesystem::temp_directory_path() / "roccc_bench_service.sock").string();

  std::printf("roccc-ccd throughput: %d jobs over the Table 1 kernels per cell\n", kTotalJobs);
  std::printf("%-8s %-6s %10s %10s %10s   %s\n", "clients", "cache", "wall ms", "jobs/s",
              "p95 ms", "failures");
  for (const bool warm : {false, true}) {
    for (const int clients : {1, 8, 64}) {
      ServiceConfig cfg;
      cfg.socketPath = socketPath;
      cfg.maxQueue = 512;
      cfg.cacheEnabled = warm;
      ServiceDaemon daemon(cfg);
      std::string error;
      if (!daemon.start(error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      if (warm) {
        // Pre-warm: one serial pass over the nine kernels, so the timed
        // run is all shared-cache hits.
        ServiceClient warmer;
        if (!warmer.connect(socketPath, error)) {
          std::fprintf(stderr, "error: %s\n", error.c_str());
          return 1;
        }
        for (size_t k = 0; k < std::size(bench::kTable1Kernels); ++k) {
          json::Value resp;
          if (!warmer.request(kernelRequest(static_cast<int>(k)), resp, error)) {
            std::fprintf(stderr, "error: warm-up: %s\n", error.c_str());
            return 1;
          }
        }
      }
      const RunResult r = run(socketPath, clients);
      const double p95 = metricP95(socketPath);
      daemon.stop();
      std::printf("%-8d %-6s %10.1f %10.1f %10.2f   %d\n", clients, warm ? "warm" : "cold",
                  r.wallMs, kTotalJobs * 1000.0 / r.wallMs, p95, r.failures);
    }
  }
  return 0;
}
