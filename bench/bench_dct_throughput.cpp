// Reproduces the paper's DCT throughput claim (section 5): "The throughput
// of Xilinx DCT IP is one output data per clock cycle, while ROCCC's
// throughput is eight output data per clock cycle. Therefore, though
// ROCCC-generated DCT runs at a lower speed (73.5%), the overall throughput
// of ROCCC-generated circuit is higher."
#include <chrono>
#include <cstdio>

#include "ip/ip.hpp"
#include "kernels.hpp"
#include "roccc/compiler.hpp"
#include "synth/estimate.hpp"

int main() {
  using namespace roccc;
  CompileOptions opt;
  opt.dpOptions.targetStageDelayNs = 7.5; // the paper's DCT operating point
  Compiler c(opt);
  const CompileResult r = c.compileSource(bench::kDct);
  if (!r.ok) {
    std::fprintf(stderr, "%s\n", r.diags.dump().c_str());
    return 1;
  }

  interp::KernelIO in;
  for (int i = 0; i < 64; ++i) in.arrays["X"].push_back((i * 37) % 256 - 128);

  rtl::SystemOptions sys;
  sys.inputBusElems = 8; // 64-bit bus: a full 8-sample block per clock
  rtl::System system(r.kernel, r.datapath, r.module, sys);
  system.run(in);
  const auto& st = system.stats();

  const auto rocccRep = synth::estimate(r.module);
  const auto ipRep = synth::estimate(ip::buildDct8());

  const double rocccThroughput = st.steadyStateThroughput() * rocccRep.fmaxMHz();
  const double ipThroughput = 1.0 * ipRep.fmaxMHz();

  std::printf("DCT throughput comparison (8-point 1-D DCT):\n\n");
  std::printf("  %-22s | %12s | %16s | %18s\n", "", "clock (MHz)", "outputs / clock",
              "Msamples / second");
  std::printf("  -----------------------+--------------+------------------+------------------\n");
  std::printf("  %-22s | %12.0f | %16.2f | %18.1f\n", "Xilinx-IP-style (DA)", ipRep.fmaxMHz(), 1.0,
              ipThroughput);
  std::printf("  %-22s | %12.0f | %16.2f | %18.1f\n", "ROCCC-generated", rocccRep.fmaxMHz(),
              st.steadyStateThroughput(), rocccThroughput);
  std::printf("\n  clock ratio ROCCC/IP: %.3f (paper: 0.735)\n",
              rocccRep.fmaxMHz() / ipRep.fmaxMHz());
  std::printf("  throughput ratio    : %.2fx in ROCCC's favor (paper: ~5.9x from 8 x 0.735)\n",
              rocccThroughput / ipThroughput);
  std::printf("\n  cycle-accurate run: %lld cycles, %lld output elements, %.2f outputs/clock\n",
              static_cast<long long>(st.cycles), static_cast<long long>(st.outputElems),
              st.steadyStateThroughput());

  const auto rep = cosimulate(r, bench::kDct, in, sys);
  std::printf("  cosimulation vs software: %s\n", rep.match ? "MATCH" : "MISMATCH");

  // Simulation-side throughput: the same run on the reference netlist
  // interpreter vs the compiled fast engine (the default).
  auto timeEngine = [&](rtl::SimEngine engine, interp::KernelIO& out) {
    rtl::SystemOptions eo = sys;
    eo.engine = engine;
    const int reps = 20;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      rtl::System s(r.kernel, r.datapath, r.module, eo);
      out = s.run(in);
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;
  };
  interp::KernelIO refOut, fastOut;
  const double refMs = timeEngine(rtl::SimEngine::Reference, refOut);
  const double fastMs = timeEngine(rtl::SimEngine::Fast, fastOut);
  const bool engineMatch = refOut.arrays == fastOut.arrays && refOut.scalars == fastOut.scalars;
  std::printf("  netlist engine: reference %.3f ms/run, fast %.3f ms/run (%.1fx), outputs %s\n",
              refMs, fastMs, refMs / fastMs, engineMatch ? "MATCH" : "MISMATCH");
  return rep.match && engineMatch ? 0 : 1;
}
