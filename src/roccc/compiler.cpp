#include "roccc/compiler.hpp"

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "hlir/transforms.hpp"
#include "mir/lower.hpp"
#include "mir/passes.hpp"
#include "mir/ssa.hpp"
#include "rtl/from_dp.hpp"
#include "support/faultpoint.hpp"
#include "support/strings.hpp"
#include "vhdl/emit.hpp"
#include "vhdl/verilog.hpp"

namespace roccc {

const char* compileOutcomeName(CompileOutcome outcome) {
  switch (outcome) {
    case CompileOutcome::Ok: return "ok";
    case CompileOutcome::FrontendError: return "frontend-error";
    case CompileOutcome::Timeout: return "timeout";
    case CompileOutcome::ResourceExceeded: return "resource-exceeded";
    case CompileOutcome::InternalError: return "internal-error";
  }
  return "?";
}

namespace {

/// Number of instructions across all MIR blocks (pass counter helper).
int64_t mirInstrCount(const mir::FunctionIR& f) {
  int64_t n = 0;
  for (const auto& b : f.blocks) n += static_cast<int64_t>(b.instrs.size());
  return n;
}

int64_t mirPhiCount(const mir::FunctionIR& f) {
  int64_t n = 0;
  for (const auto& b : f.blocks) {
    for (const auto& in : b.instrs) {
      if (in.op == mir::Opcode::Phi) ++n;
    }
  }
  return n;
}

} // namespace

PassManager Compiler::buildPipeline() const {
  const CompileOptions& opts = options_;
  PassManager pm(opts.pipeline);

  // --- front end --------------------------------------------------------------
  pm.addPass({"parse", PassLayer::Frontend,
              [](PassContext& ctx, PassStatistics& st) {
                ctx.module = ast::parse(ctx.source, ctx.diags());
                if (ctx.diags().hasErrors()) return false;
                if (!ast::analyze(ctx.module, ctx.diags())) return false;
                ctx.kernelName = ctx.options.kernelName;
                if (ctx.kernelName.empty()) {
                  if (ctx.module.functions.empty()) {
                    ctx.diags().error({}, "no functions in the module");
                    return false;
                  }
                  ctx.kernelName = ctx.module.functions.back().name;
                }
                if (!ctx.kernel()) {
                  ctx.diags().error({}, fmt("no kernel named '%0'", ctx.kernelName));
                  return false;
                }
                st.add("functions", static_cast<int64_t>(ctx.module.functions.size()));
                return true;
              }});

  // --- loop-level transforms (section 2 / 4.1) ----------------------------------
  // "Function calls will either be inlined or whenever feasible made into a
  // lookup table" (section 2): lookup-table conversion gets first pick —
  // feasible pure unary callees become ROMs, everything left is inlined.
  pm.addPass({"lut-convert", PassLayer::Hlir,
              [](PassContext& ctx, PassStatistics& st) {
                const int luts = hlir::convertCallsToLookupTables(ctx.module, ctx.diags(),
                                                                  ctx.options.lutMaxIndexBits);
                st.add("lut-converted", luts);
                return !ctx.diags().hasErrors();
              },
              opts.convertCallsToLuts});
  pm.addPass({"inline", PassLayer::Hlir, [](PassContext& ctx, PassStatistics& st) {
                st.add("inlined", hlir::inlineCalls(ctx.module, ctx.diags()));
                return !ctx.diags().hasErrors();
              }});
  pm.addPass({"const-fold", PassLayer::Hlir, [](PassContext& ctx, PassStatistics& st) {
                st.add("folded", hlir::constantFold(ctx.module, ctx.diags()));
                return !ctx.diags().hasErrors();
              }});
  pm.addPass({"fuse-loops", PassLayer::Hlir, [](PassContext& ctx, PassStatistics& st) {
                st.add("fused", hlir::fuseAdjacentLoops(ctx.module, *ctx.kernel(), ctx.diags()));
                return !ctx.diags().hasErrors();
              }});
  pm.addPass({"unroll-inner-full", PassLayer::Hlir,
              [](PassContext& ctx, PassStatistics& st) {
                st.add("inner-unrolled",
                       hlir::fullyUnrollInnerLoops(ctx.module, *ctx.kernel(), ctx.diags(),
                                                   ctx.options.maxInnerUnrollTrip));
                return !ctx.diags().hasErrors();
              },
              opts.fullUnrollInnerLoops});
  pm.addPass({"unroll", PassLayer::Hlir, [](PassContext& ctx, PassStatistics& st) {
                faultpoint("hlir.unroll");
                int unrollFactor = ctx.options.unrollFactor;
                if (ctx.options.autoUnrollSliceBudget > 0) {
                  // Area-estimation-driven unrolling (section 2 / ref [13]):
                  // largest power-of-two factor whose estimated slice count
                  // fits the budget.
                  int64_t trips = 0;
                  ast::forEachStmt(*ctx.kernel()->body, [&](const ast::Stmt& s) {
                    if (s.kind == ast::StmtKind::For && trips == 0) {
                      const auto& f = static_cast<const ast::ForStmt&>(s);
                      const auto b = ast::evalConstant(*f.begin);
                      const auto e = ast::evalConstant(*f.end);
                      if (b && e && *e > *b) trips = (*e - *b + f.step - 1) / f.step;
                    }
                  });
                  if (trips > 1) {
                    unrollFactor = hlir::chooseUnrollFactor(*ctx.kernel(), trips,
                                                            ctx.options.autoUnrollSliceBudget);
                  }
                  st.add("trip-count", trips);
                }
                if (unrollFactor > 1 &&
                    !hlir::unrollInnerLoop(ctx.module, *ctx.kernel(), unrollFactor, ctx.diags())) {
                  return false;
                }
                st.add("unroll-factor", unrollFactor);
                ctx.result.transformedSource = ast::printModule(ctx.module);
                return true;
              }});

  // --- kernel extraction (section 4.1 / 4.2.1) ------------------------------------
  pm.addPass({"extract-kernel", PassLayer::Hlir, [](PassContext& ctx, PassStatistics& st) {
                if (!hlir::extractKernel(ctx.module, ctx.kernelName, ctx.result.kernel,
                                         ctx.diags())) {
                  return false;
                }
                st.add("input-streams", static_cast<int64_t>(ctx.result.kernel.inputs.size()));
                st.add("output-streams", static_cast<int64_t>(ctx.result.kernel.outputs.size()));
                st.add("feedbacks", static_cast<int64_t>(ctx.result.kernel.feedbacks.size()));
                return true;
              }});

  // --- back end (section 4.2) -----------------------------------------------------
  pm.addPass({"lower-mir", PassLayer::Mir, [](PassContext& ctx, PassStatistics& st) {
                if (!mir::lowerToMir(ctx.result.kernel.dpModule, ctx.result.kernel.dpName,
                                     ctx.result.mir, ctx.diags())) {
                  return false;
                }
                st.add("blocks", static_cast<int64_t>(ctx.result.mir.blocks.size()));
                st.add("instrs", mirInstrCount(ctx.result.mir));
                return true;
              }});
  pm.addPass({"canonicalize-effects", PassLayer::Mir, [](PassContext& ctx, PassStatistics& st) {
                mir::canonicalizeSideEffects(ctx.result.mir);
                st.add("instrs", mirInstrCount(ctx.result.mir));
                return true;
              }});
  Pass ssaPass{"ssa-build", PassLayer::Mir, [](PassContext& ctx, PassStatistics& st) {
                 mir::buildSSA(ctx.result.mir);
                 ctx.mirInSSA = true;
                 st.add("phis", mirPhiCount(ctx.result.mir));
                 return true;
               }};
  ssaPass.alwaysVerify = true;
  pm.addPass(std::move(ssaPass));
  Pass optPass{"mir-optimize", PassLayer::Mir, [](PassContext& ctx, PassStatistics& st) {
                 const auto s = mir::runStandardPasses(ctx.result.mir);
                 st.add("rounds", s.rounds);
                 st.add("constprop", s.constProp);
                 st.add("copyprop", s.copyProp);
                 st.add("strength", s.strength);
                 st.add("cse", s.cse);
                 st.add("dce", s.dce);
                 return true;
               }};
  optPass.enabled = opts.optimize;
  // The data-path generator requires valid SSA: verify even without
  // --verify-each (the legacy driver's unconditional post-pass check).
  optPass.alwaysVerify = true;
  pm.addPass(std::move(optPass));

  pm.addPass({"build-datapath", PassLayer::Dp, [](PassContext& ctx, PassStatistics& st) {
                if (!dp::buildDataPath(ctx.result.mir, ctx.result.datapath, ctx.diags(),
                                       ctx.options.dpOptions)) {
                  return false;
                }
                const auto& d = ctx.result.datapath;
                st.add("soft-nodes", d.softNodeCount);
                st.add("hard-nodes", d.hardNodeCount);
                st.add("stages", d.stageCount);
                st.add("narrowed-bits", d.narrowedBits);
                st.add("pipeline-register-bits", d.pipelineRegisterBits);
                st.add("mux-ops", d.muxOpCount);
                return true;
              }});
  // Timing-driven pipeline balancing: re-stage the data path against the
  // (possibly overridden) synth::TimingModel, merge under-full stages and
  // spread slack so the worst stage — hence achieved fmax — improves over
  // the greedy seed placement.
  Pass retimePass{"retime", PassLayer::Dp, [](PassContext& ctx, PassStatistics& st) {
                    synth::TimingModel model;
                    std::string parseError;
                    if (!synth::TimingModel::parse(ctx.options.timingModelSpec, model,
                                                   parseError)) {
                      ctx.diags().error({}, "timing-model: " + parseError);
                      return false;
                    }
                    dp::RetimeOptions ro;
                    ro.targetNs = ctx.options.dpOptions.targetStageDelayNs;
                    ro.multStyle = ctx.options.dpOptions.multStyle;
                    if (!dp::retimePipeline(ctx.result.datapath, model, ro,
                                            ctx.result.retiming, ctx.diags())) {
                      return false;
                    }
                    const auto& rr = ctx.result.retiming;
                    st.add("stages-before", rr.stagesBefore);
                    st.add("stages-after", rr.stagesAfter);
                    st.add("merges", rr.merges);
                    st.add("moved-ops", rr.movedOps);
                    st.add("worst-stage-ps", static_cast<int64_t>(rr.worstStageNs * 1000 + 0.5));
                    st.add("fmax-khz", static_cast<int64_t>(rr.fmaxMHz * 1000 + 0.5));
                    st.add("feasible", rr.feasible ? 1 : 0);
                    return true;
                  }};
  retimePass.enabled = opts.retimePipeline && opts.dpOptions.pipeline;
  pm.addPass(std::move(retimePass));
  Pass rtlPass{"build-rtl", PassLayer::Rtl, [](PassContext& ctx, PassStatistics& st) {
                 if (!rtl::buildDatapathModule(ctx.result.datapath, ctx.result.module,
                                               ctx.diags())) {
                   return false;
                 }
                 st.add("cells", static_cast<int64_t>(ctx.result.module.cells.size()));
                 st.add("nets", static_cast<int64_t>(ctx.result.module.nets.size()));
                 st.add("register-bits", ctx.result.module.registerBits());
                 return true;
               }};
  // The generated netlist is verified on every compile, not just in test
  // helpers; failures surface as internal errors through the DiagEngine.
  rtlPass.alwaysVerify = true;
  pm.addPass(std::move(rtlPass));

  // --- VHDL / Verilog (section 4.2.4) -----------------------------------------------
  pm.addPass({"emit-vhdl", PassLayer::Vhdl, [](PassContext& ctx, PassStatistics& st) {
                ctx.result.vhdl =
                    vhdl::emitDesign(ctx.result.datapath, ctx.result.module, ctx.result.kernel);
                st.add("bytes", static_cast<int64_t>(ctx.result.vhdl.size()));
                return true;
              }});
  pm.addPass({"emit-verilog", PassLayer::Vhdl, [](PassContext& ctx, PassStatistics& st) {
                ctx.result.verilog = verilog::emitDesign(ctx.result.datapath, ctx.result.kernel);
                st.add("bytes", static_cast<int64_t>(ctx.result.verilog.size()));
                return true;
              }});
  return pm;
}

CompileResult Compiler::compileSource(const std::string& cSource) const {
  CompileResult r;
  PassContext ctx(options_, r);
  ctx.source = cSource;

  // Per-job governance: the budget (deadline clock starts here) and any
  // armed fault point are installed into this thread's slots, so layer code
  // deep in the pipeline can checkpoint without threading a handle through
  // every signature. Each batch job runs wholly on one worker thread.
  CompileBudget budget(options_.budget);
  ctx.budget = &budget;
  BudgetScope budgetScope(&budget);
  FaultInjectionScope faultScope(options_.injectFaultAt);

  try {
    const PassManager pm = buildPipeline();
    pm.run(ctx, r.passLog);
  } catch (const std::exception& e) {
    // Belt over the pass-edge suspenders: nothing should escape
    // PassManager::run, but a throw from pipeline construction itself must
    // still come out as a structured outcome, not a dead process.
    r.outcome = CompileOutcome::InternalError;
    r.diags.error({}, fmt("internal: unhandled exception outside the pass boundary: %0", e.what()));
  }

  if (r.outcome == CompileOutcome::Ok && r.diags.hasErrors()) {
    r.outcome = CompileOutcome::FrontendError;
  }
  r.ok = r.outcome == CompileOutcome::Ok && !r.diags.hasErrors();
  return r;
}

CosimReport cosimulate(const CompileResult& compiled, const std::string& originalSource,
                       const interp::KernelIO& inputs, rtl::SystemOptions sysOptions) {
  CosimReport rep;

  // Software: the original kernel through the interpreter.
  DiagEngine diags;
  ast::Module m = ast::parse(originalSource, diags);
  if (diags.hasErrors() || !ast::analyze(m, diags)) {
    rep.mismatch = "software reference failed to build: " + diags.dump();
    return rep;
  }
  rep.software = interp::runKernel(m, compiled.kernel.kernelName, inputs);

  // Hardware: cycle-accurate Fig 2 system.
  rtl::System system(compiled.kernel, compiled.datapath, compiled.module, sysOptions);
  rep.hardware = system.run(inputs);
  rep.stats = system.stats();

  // Compare outputs the kernel defines: output arrays, scalar outs,
  // feedback finals.
  rep.match = true;
  for (const auto& st : compiled.kernel.outputs) {
    const auto& hw = rep.hardware.arrays.at(st.arrayName);
    const auto it = rep.software.arrays.find(st.arrayName);
    if (it == rep.software.arrays.end() || it->second.size() != hw.size()) {
      rep.match = false;
      rep.mismatch = fmt("array '%0' size mismatch", st.arrayName);
      return rep;
    }
    for (size_t i = 0; i < hw.size(); ++i) {
      if (hw[i] != it->second[i]) {
        rep.match = false;
        rep.mismatch = fmt("array '%0'[%1]: hw=%2 sw=%3", st.arrayName, i, hw[i], it->second[i]);
        return rep;
      }
    }
  }
  for (const auto& so : compiled.kernel.scalarOutputs) {
    const auto hw = rep.hardware.scalars.find(so.name);
    const auto sw = rep.software.scalars.find(so.name);
    if (hw == rep.hardware.scalars.end() || sw == rep.software.scalars.end() ||
        hw->second != sw->second) {
      rep.match = false;
      rep.mismatch = fmt("scalar '%0': hw=%1 sw=%2", so.name,
                         hw == rep.hardware.scalars.end() ? 0 : hw->second,
                         sw == rep.software.scalars.end() ? 0 : sw->second);
      return rep;
    }
  }
  for (const auto& fb : compiled.kernel.feedbacks) {
    const auto hw = rep.hardware.scalars.find(fb.name);
    const auto sw = rep.software.scalars.find(fb.name);
    if (sw == rep.software.scalars.end()) continue; // local feedback, not visible in sw results
    if (hw == rep.hardware.scalars.end() || hw->second != sw->second) {
      rep.match = false;
      rep.mismatch = fmt("feedback '%0': hw=%1 sw=%2", fb.name,
                         hw == rep.hardware.scalars.end() ? 0 : hw->second, sw->second);
      return rep;
    }
  }
  return rep;
}

} // namespace roccc
