#include "roccc/pipeline.hpp"

#include <algorithm>
#include <new>
#include <sstream>

#include "roccc/compiler.hpp"
#include "support/faultpoint.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"
#include "vhdl/check.hpp"
#include "vhdl/verilog.hpp"

namespace roccc {

const char* passLayerName(PassLayer layer) {
  switch (layer) {
    case PassLayer::Frontend: return "frontend";
    case PassLayer::Hlir: return "hlir";
    case PassLayer::Mir: return "mir";
    case PassLayer::Dp: return "dp";
    case PassLayer::Rtl: return "rtl";
    case PassLayer::Vhdl: return "vhdl";
  }
  return "?";
}

int64_t PassStatistics::counter(const std::string& key) const {
  for (const auto& [k, v] : counters) {
    if (k == key) return v;
  }
  return 0;
}

DiagEngine& PassContext::diags() { return result.diags; }

int64_t PassContext::irNodeCount() const {
  int64_t n = 0;
  // AST: one node per statement plus one per expression, across the whole
  // module (transforms like inlining grow functions other than the kernel).
  for (const auto& fn : module.functions) {
    if (!fn.body) continue;
    ast::forEachStmt(*fn.body, [&](const ast::Stmt&) { ++n; });
    ast::forEachExprInStmt(*fn.body, [&](const ast::Expr&) { ++n; });
  }
  for (const auto& b : result.mir.blocks) n += static_cast<int64_t>(b.instrs.size());
  n += static_cast<int64_t>(result.datapath.ops.size());
  n += static_cast<int64_t>(result.datapath.values.size());
  n += static_cast<int64_t>(result.module.cells.size());
  n += static_cast<int64_t>(result.module.nets.size());
  return n;
}

std::vector<std::string> PassManager::passNames() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& p : passes_) names.push_back(p.name);
  return names;
}

bool PassManager::wantsSnapshot(const std::string& passName) const {
  if (options_.printAfterAll) return true;
  return std::find(options_.printAfter.begin(), options_.printAfter.end(), passName) !=
         options_.printAfter.end();
}

std::string PassManager::snapshotOf(const Pass& p, PassContext& ctx) const {
  switch (p.layer) {
    case PassLayer::Frontend:
    case PassLayer::Hlir:
      return ast::printModule(ctx.module);
    case PassLayer::Mir:
      return ctx.result.mir.dump();
    case PassLayer::Dp:
      return ctx.result.datapath.dump();
    case PassLayer::Rtl:
      return ctx.result.module.dump();
    case PassLayer::Vhdl:
      return ctx.result.vhdl;
  }
  return {};
}

bool PassManager::verifyAfter(const Pass& p, PassContext& ctx) const {
  auto internal = [&](const std::string& what) {
    ctx.diags().error({}, fmt("internal: verifier failed after pass '%0': %1", p.name, what));
  };
  switch (p.layer) {
    case PassLayer::Frontend:
    case PassLayer::Hlir: {
      // Transforms re-run sema internally; the pipeline-level invariant is
      // that the kernel is still resolvable by name.
      if (!ctx.kernelName.empty() && ctx.kernel() == nullptr) {
        internal(fmt("kernel '%0' no longer exists in the module", ctx.kernelName));
        return false;
      }
      return true;
    }
    case PassLayer::Mir: {
      std::vector<std::string> errors;
      const bool ok = ctx.mirInSSA ? ctx.result.mir.verifySSA(errors)
                                   : ctx.result.mir.verify(errors);
      for (const auto& e : errors) internal(e);
      return ok;
    }
    case PassLayer::Dp: {
      // Structural sanity: every op's operands and result are valid values.
      const auto& dp = ctx.result.datapath;
      const int nValues = static_cast<int>(dp.values.size());
      for (const auto& op : dp.ops) {
        if (op.result >= nValues) {
          internal(fmt("datapath op result value %0 out of range", op.result));
          return false;
        }
        for (int v : op.operands) {
          if (v < 0 || v >= nValues) {
            internal(fmt("datapath op operand value %0 out of range", v));
            return false;
          }
        }
      }
      return true;
    }
    case PassLayer::Rtl: {
      std::vector<std::string> errors;
      const bool ok = ctx.result.module.verify(errors);
      for (const auto& e : errors) internal(e);
      return ok;
    }
    case PassLayer::Vhdl: {
      bool ok = true;
      if (!ctx.result.vhdl.empty()) {
        const auto chk = vhdl::checkDesign(ctx.result.vhdl);
        for (const auto& e : chk.problems) internal("vhdl: " + e);
        ok = chk.ok && ok;
      }
      if (!ctx.result.verilog.empty()) {
        const auto chk = verilog::checkDesign(ctx.result.verilog);
        for (const auto& e : chk.problems) internal("verilog: " + e);
        ok = chk.ok && ok;
      }
      return ok;
    }
  }
  return true;
}

bool PassManager::run(PassContext& ctx, std::vector<PassStatistics>& stats) const {
  // The fault-containment boundary: every exception a pass (or a budget
  // checkpoint, or a verifier) can raise is caught at this edge and turned
  // into a structured CompileResult outcome naming the failing pass. A job
  // can fail; the process — and every sibling job in a batch — survives.
  for (const Pass& p : passes_) {
    PassStatistics st;
    st.name = p.name;
    st.layer = p.layer;
    if (!p.enabled) {
      stats.push_back(std::move(st));
      continue;
    }
    st.ran = true;
    WallTimer timer;
    bool recorded = false; // st may already sit in `stats` when a verifier throws
    auto contain = [&](CompileOutcome outcome, std::string message) {
      if (!recorded) {
        st.wallMs = timer.elapsedMs();
        stats.push_back(std::move(st));
      }
      ctx.result.outcome = outcome;
      ctx.result.failedPass = p.name;
      ctx.diags().error({}, std::move(message));
    };
    try {
      if (ctx.budget) ctx.budget->checkDeadline(p.name.c_str());
      const bool ok = p.run(ctx, st);
      // The post-pass boundary checkpoint: the IR this pass grew is what
      // the next pass would have to chew through.
      if (ok && ctx.budget) {
        ctx.budget->checkpointPass(p.name.c_str(),
                                   ctx.budget->wantsIrNodeCount() ? ctx.irNodeCount() : 0);
      }
      st.wallMs = timer.elapsedMs();
      const bool failed = !ok || ctx.diags().hasErrors();
      if (!failed && wantsSnapshot(p.name)) st.snapshot = snapshotOf(p, ctx);
      stats.push_back(std::move(st));
      recorded = true;
      if (failed) {
        ctx.result.outcome = CompileOutcome::FrontendError;
        ctx.result.failedPass = p.name;
        return false;
      }
      if ((options_.verifyEach || p.alwaysVerify) && !verifyAfter(p, ctx)) {
        ctx.result.outcome = CompileOutcome::InternalError;
        ctx.result.failedPass = p.name;
        return false;
      }
    } catch (const BudgetExceeded& e) {
      contain(e.kind() == BudgetKind::Deadline ? CompileOutcome::Timeout
                                               : CompileOutcome::ResourceExceeded,
              fmt("pass '%0': %1", p.name, e.what()));
      return false;
    } catch (const std::bad_alloc&) {
      contain(CompileOutcome::ResourceExceeded, fmt("pass '%0': out of memory", p.name));
      return false;
    } catch (const std::exception& e) {
      contain(CompileOutcome::InternalError, fmt("internal error in pass '%0': %1", p.name, e.what()));
      return false;
    } catch (...) {
      contain(CompileOutcome::InternalError, fmt("internal error in pass '%0': unknown exception", p.name));
      return false;
    }
  }
  return true;
}

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

} // namespace

std::string statsToJson(const std::vector<PassStatistics>& stats) {
  return statsToJson(stats, std::string());
}

std::string statsToJson(const std::vector<PassStatistics>& stats, const std::string& extraMember) {
  std::ostringstream os;
  os << "{\n  \"passes\": [\n";
  double totalMs = 0;
  for (size_t i = 0; i < stats.size(); ++i) {
    const auto& s = stats[i];
    totalMs += s.wallMs;
    os << "    {\"name\": \"" << jsonEscape(s.name) << "\", \"layer\": \""
       << passLayerName(s.layer) << "\", \"wallMs\": " << s.wallMs
       << ", \"ran\": " << (s.ran ? "true" : "false") << ", \"counters\": {";
    for (size_t c = 0; c < s.counters.size(); ++c) {
      if (c) os << ", ";
      os << '"' << jsonEscape(s.counters[c].first) << "\": " << s.counters[c].second;
    }
    os << "}}" << (i + 1 < stats.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  if (!extraMember.empty()) os << "  " << extraMember << ",\n";
  os << "  \"totalMs\": " << totalMs << "\n}\n";
  return os.str();
}

std::string statsToTable(const std::vector<PassStatistics>& stats) {
  std::ostringstream os;
  double totalMs = 0;
  for (const auto& s : stats) totalMs += s.wallMs;
  char head[128];
  std::snprintf(head, sizeof head, "  %-9s %-20s %10s  %s\n", "layer", "pass", "wall", "counters");
  os << "=== pass timing (total " << formatMs(totalMs) << ") ===\n" << head;
  for (const auto& s : stats) {
    char row[160];
    std::snprintf(row, sizeof row, "  %-9s %-20s %10s  ", passLayerName(s.layer), s.name.c_str(),
                  s.ran ? formatMs(s.wallMs).c_str() : "(skipped)");
    os << row;
    for (size_t c = 0; c < s.counters.size(); ++c) {
      if (c) os << ' ';
      os << s.counters[c].first << '=' << s.counters[c].second;
    }
    os << '\n';
  }
  return os.str();
}

} // namespace roccc
