// VCD (Value Change Dump) waveform recording for NetlistSim — lets users
// inspect generated-hardware behavior in GTKWave or any waveform viewer,
// the way they would debug the VHDL in a commercial simulator.
//
//   rtl::NetlistSim sim(module);
//   rtl::VcdRecorder vcd(module, "run.vcd-contents-go-here");
//   each cycle: sim.eval(); vcd.sample(sim); sim.tick(...);
//   vcd.render() -> the VCD text.
#pragma once

#include <string>
#include <vector>

#include "rtl/fastsim.hpp"
#include "rtl/netlist.hpp"

namespace roccc::rtl {

class VcdRecorder {
 public:
  /// Records the named module's nets. `onlyNamed` skips compiler temporaries
  /// (nets whose name starts with 't' followed by digits).
  explicit VcdRecorder(const Module& m, bool onlyNamed = false);

  /// Captures the current net values as one timestep (call after eval()).
  void sample(const NetlistSim& sim);
  /// Same, from one lane of the fast engine.
  void sample(const FastSim& sim, int lane = 0);

  /// Full VCD text for the samples so far.
  std::string render() const;

  size_t sampleCount() const { return samples_.size(); }

 private:
  const Module& m_;
  std::vector<int> nets_;            ///< recorded net ids
  std::vector<std::string> idCodes_; ///< VCD identifier per recorded net
  std::vector<std::vector<uint64_t>> samples_;
};

} // namespace roccc::rtl
