# Empty compiler generated dependencies file for bench_fig7_feedback_pipeline.
# This may be replaced when dependencies are built.
