// Monotonic wall-clock timing for pass and bench instrumentation.
#pragma once

#include <chrono>
#include <string>

namespace roccc {

/// Starts counting at construction; elapsedMs() reads without stopping.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// "0.012 ms" / "12.3 ms" / "1.204 s" — compact human form for reports.
std::string formatMs(double ms);

} // namespace roccc
