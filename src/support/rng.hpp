// SplitMix64: a tiny, fully specified PRNG for every place the library
// needs *reproducible* pseudo-random data — conformance stimulus, testbench
// extras. Unlike std::uniform_int_distribution (whose output is
// implementation-defined), the sequence here is identical on every
// platform, compiler, and standard library, so a recorded seed pins the
// exact vectors forever.
#pragma once

#include <cstdint>
#include <string_view>

namespace roccc {

struct SplitMix64 {
  uint64_t state = 0;

  explicit SplitMix64(uint64_t seed = 0) : state(seed) {}

  uint64_t next() {
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform-ish draw in [lo, hi] (modulo reduction; the bias is irrelevant
  /// for stimulus purposes and keeps the mapping trivially portable).
  int64_t inRange(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    if (span == 0) return static_cast<int64_t>(next()); // full 64-bit range
    return static_cast<int64_t>(static_cast<uint64_t>(lo) + next() % span);
  }
};

/// FNV-1a, for mixing names into seeds and digesting result streams.
inline uint64_t fnv1a(std::string_view s, uint64_t h = 0xcbf29ce484222325ULL) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t fnv1aMix(uint64_t v, uint64_t h) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

} // namespace roccc
