# Empty dependencies file for vhdl_extras_test.
# This may be replaced when dependencies are built.
