// Reference executor for MIR functions — one iteration of the data path.
// Shares its operation semantics with the optimization passes (evalPureOp)
// and, transitively, with the RTL primitives, so every layer of the stack
// computes identical bits.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mir/ir.hpp"
#include "support/value.hpp"

namespace roccc::mir {

/// Evaluates a pure operation given operand values; nullopt when `in` is
/// not pure or not evaluable (In/Phi). Lut requires `table`.
std::optional<Value> evalPureOp(const Instr& in, const std::vector<Value>& operands,
                                const FunctionIR::Table* table);

struct ExecResult {
  std::vector<Value> outputs;                 ///< by output-port index
  std::map<std::string, Value> nextFeedback;  ///< SNX values (post-iteration)
};

/// Runs one invocation: `inputs` by input-port index; `feedback` holds the
/// current (previous-iteration) feedback register values — LPR reads these
/// regardless of SNX order, matching the hardware's clocked register.
ExecResult execute(const FunctionIR& f, const std::vector<Value>& inputs,
                   const std::map<std::string, Value>& feedback);

} // namespace roccc::mir
