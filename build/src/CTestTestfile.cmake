# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("frontend")
subdirs("interp")
subdirs("hlir")
subdirs("mir")
subdirs("dp")
subdirs("rtl")
subdirs("vhdl")
subdirs("synth")
subdirs("ip")
subdirs("roccc")
