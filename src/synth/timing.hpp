// synth::TimingModel — the tabulated per-primitive × per-bitwidth
// delay / latency / area / energy characterization that drives both sides
// of the synthesis story:
//
//   * estimation (src/synth/estimate.cpp prices RTL cells from these rows
//     instead of hand-rolled constants), and
//   * optimization (the dp-level staging and the timing-driven `retime`
//     pass place pipeline registers so every stage's combinational delay
//     fits the --target-ns budget).
//
// The built-in table is a Virtex-II-class characterization (xc2v2000,
// speed grade -5 ballpark — the device the paper evaluated on with ISE
// 5.1i). It is generated once from closed-form per-primitive formulas and
// stored as dense breakpoint rows; `cost()` interpolates piecewise-linearly
// between breakpoints and clamps outside them, so a loaded model needs only
// the widths it cares about.
//
// A model file (--timing-model FILE) starts from the built-in table and
// overrides scalars and/or whole primitives. Format, one directive per
// line ('#' comments):
//
//   model NAME
//   clock-overhead-ns X      routing-per-hop-ns X    core-voltage X
//   bram-access-ns X         rom-mux-level-ns X
//   cap-{lut,ff,mult18,bram}-pf X
//   leak-{lut,ff,mult18,bram}-uw X
//   <primitive> <width> <delay-ns> <latency> <lut4> <ff> [<mult18> <bram> [<dyn-pj> <leak-uw>]]
//
// The first row for a primitive discards that primitive's built-in rows
// (override is per-primitive, all-or-nothing). Omitted energy columns are
// derived from the row's resources and the capacitance / leakage scalars.
#pragma once

#include <array>
#include <map>
#include <string>

namespace roccc::synth {

/// The characterized datapath primitives. Wiring-only operations (resize,
/// slice, concat, constants, I/O copies) have no row — they are free.
enum class Primitive {
  Add,    ///< add/sub/negate (LUT + MUXCY/XORCY carry chain)
  MulLut, ///< LUT-fabric array multiplier
  Mul18,  ///< MULT18X18 block multiplier
  Div,    ///< restoring array divider (one subtract-mux row per bit)
  Logic,  ///< bitwise and/or/xor/not
  Shift,  ///< barrel shifter, variable amount (constant shifts are wiring)
  Cmp,    ///< comparator — carry chain spanning the operands
  Mux,    ///< 2:1 word mux
  Reg,    ///< pipeline register
  Rom,    ///< table read (the BRAM/distributed split is structural)
};
inline constexpr int kPrimitiveCount = 10;

const char* primitiveName(Primitive p);
/// Parses a primitive's table name ("add", "mul-lut", ...). False if unknown.
bool primitiveByName(const std::string& name, Primitive& out);

/// One breakpoint row: the cost of a primitive at one operand bitwidth.
struct PrimitiveCost {
  double delayNs = 0;    ///< combinational delay through the primitive
  int latencyCycles = 0; ///< internal pipeline latency (reserved; built-in rows are 0)
  double lut4 = 0;
  double ff = 0;
  double mult18 = 0;
  double bram = 0;
  double dynamicPj = 0;  ///< switched energy per full-activity evaluation
  double leakageUw = 0;  ///< static leakage
};

struct TimingModel {
  std::string name = "virtex2-xc2v2000-5";

  // Device scalars (shared by estimation and staging).
  double clockOverheadNs = 0.8; ///< clock-to-out + setup per register path
  double routingPerHopNs = 0.3; ///< average routing per cell-to-cell hop
  double coreVoltage = 1.5;     ///< V, for the CV^2 energy terms
  double bramAccessNs = 2.9;    ///< block-RAM ROM read
  double romMuxLevelNs = 0.4;   ///< per mux level of a distributed ROM read

  // Per-resource switched capacitance (pF) and leakage (uW) — the basis of
  // every derived energy column and of estimatePowerMw.
  double capLutPf = 4.0, capFfPf = 2.0, capMult18Pf = 60.0, capBramPf = 90.0;
  double leakLutUw = 1.5, leakFfUw = 0.8, leakMult18Uw = 15.0, leakBramUw = 25.0;

  /// Breakpoint rows per primitive, keyed by width, sorted (std::map).
  std::array<std::map<int, PrimitiveCost>, kPrimitiveCount> rows;

  /// The built-in Virtex-II-class table (process-wide singleton).
  static const TimingModel& virtex2();

  /// Parses `text` over a copy of the built-in table. Empty text yields the
  /// built-in table unchanged. On failure returns false with a
  /// line-numbered message in `error`.
  static bool parse(const std::string& text, TimingModel& out, std::string& error);

  /// Renders the model in the file format (parse(dump()) round-trips).
  std::string dump() const;

  /// Cost at `width`: piecewise-linear between breakpoints, clamped to the
  /// first/last row outside them. A primitive with no rows costs zero.
  PrimitiveCost cost(Primitive p, int width) const;
  double delayNs(Primitive p, int width) const { return cost(p, width).delayNs; }

  /// Switched energy (pJ) of one full-activity toggle of the given mapped
  /// resources, from the capacitance scalars: sum(C_i) * V^2.
  double resourceDynamicPj(double lut4, double ff, double mult18, double bram) const;
  /// Static leakage (uW) of the given mapped resources.
  double resourceLeakageUw(double lut4, double ff, double mult18, double bram) const;
};

} // namespace roccc::synth
