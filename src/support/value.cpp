#include "support/value.hpp"

#include <sstream>

namespace roccc {

int64_t ScalarType::minValue() const {
  if (!isSigned) return 0;
  if (width == 64) return INT64_MIN;
  return -(int64_t{1} << (width - 1));
}

int64_t ScalarType::maxValue() const {
  if (!isSigned) {
    // Unsigned max can exceed int64 range at width 64; callers that care use
    // unsigned paths. Saturate here for the 64-bit corner.
    if (width == 64) return INT64_MAX;
    return static_cast<int64_t>((uint64_t{1} << width) - 1);
  }
  if (width == 64) return INT64_MAX;
  return (int64_t{1} << (width - 1)) - 1;
}

std::string ScalarType::str() const {
  std::ostringstream os;
  os << (isSigned ? "int" : "uint") << width;
  return os.str();
}

int64_t Value::toInt() const {
  if (!type_.isSigned || type_.width == 64) return static_cast<int64_t>(bits_);
  const uint64_t signBit = uint64_t{1} << (type_.width - 1);
  if (bits_ & signBit) {
    return static_cast<int64_t>(bits_ | ~((signBit << 1) - 1));
  }
  return static_cast<int64_t>(bits_);
}

Value Value::convertTo(ScalarType to) const {
  // C conversion: value is first sign/zero-extended per the *source* type,
  // then truncated to the destination width.
  return Value(to, static_cast<uint64_t>(toInt()));
}

Value Value::bit(int index) const {
  assert(index >= 0 && index < type_.width);
  return Value(ScalarType::boolTy(), (bits_ >> index) & 1);
}

Value Value::slice(int lo, int sliceWidth) const {
  assert(lo >= 0 && sliceWidth >= 1 && lo + sliceWidth <= type_.width);
  return Value(ScalarType::make(sliceWidth, false), bits_ >> lo);
}

std::string Value::str() const {
  std::ostringstream os;
  if (type_.isSigned)
    os << toInt();
  else
    os << toUnsigned();
  os << ':' << type_.str();
  return os.str();
}

namespace ops {
namespace {

// The operands are extended (per their own signedness) to 64 bits and the
// operation is performed there; the result constructor wraps to rt.width.
int64_t sx(const Value& v) { return v.toInt(); }
uint64_t zx(const Value& v) { return v.toUnsigned(); }

bool unsignedCompare(const Value& a, const Value& b) {
  // C usual arithmetic conversions on the 32-bit promotion lattice: the
  // compare is unsigned iff either operand is unsigned at full (>=32) width.
  return (!a.isSigned() && a.width() >= 32) || (!b.isSigned() && b.width() >= 32);
}

} // namespace

Value add(const Value& a, const Value& b, ScalarType rt) {
  return Value(rt, static_cast<uint64_t>(sx(a)) + static_cast<uint64_t>(sx(b)));
}

Value sub(const Value& a, const Value& b, ScalarType rt) {
  return Value(rt, static_cast<uint64_t>(sx(a)) - static_cast<uint64_t>(sx(b)));
}

Value mul(const Value& a, const Value& b, ScalarType rt) {
  return Value(rt, static_cast<uint64_t>(sx(a)) * static_cast<uint64_t>(sx(b)));
}

Value divide(const Value& a, const Value& b, ScalarType rt) {
  if (b.bits() == 0) return Value(rt, ~uint64_t{0}); // all-ones: divider convention
  if (rt.isSigned) {
    return Value(rt, static_cast<uint64_t>(sx(a) / sx(b)));
  }
  return Value(rt, zx(a) / zx(b));
}

Value rem(const Value& a, const Value& b, ScalarType rt) {
  if (b.bits() == 0) return Value(rt, a.bits()); // remainder = dividend
  if (rt.isSigned) {
    return Value(rt, static_cast<uint64_t>(sx(a) % sx(b)));
  }
  return Value(rt, zx(a) % zx(b));
}

Value neg(const Value& a, ScalarType rt) {
  return Value(rt, 0 - static_cast<uint64_t>(sx(a)));
}

Value bitAnd(const Value& a, const Value& b, ScalarType rt) {
  return Value(rt, static_cast<uint64_t>(sx(a)) & static_cast<uint64_t>(sx(b)));
}

Value bitOr(const Value& a, const Value& b, ScalarType rt) {
  return Value(rt, static_cast<uint64_t>(sx(a)) | static_cast<uint64_t>(sx(b)));
}

Value bitXor(const Value& a, const Value& b, ScalarType rt) {
  return Value(rt, static_cast<uint64_t>(sx(a)) ^ static_cast<uint64_t>(sx(b)));
}

Value bitNot(const Value& a, ScalarType rt) {
  return Value(rt, ~static_cast<uint64_t>(sx(a)));
}

Value shl(const Value& a, const Value& sh, ScalarType rt) {
  const uint64_t amount = zx(sh);
  if (amount >= 64) return Value(rt, 0);
  return Value(rt, static_cast<uint64_t>(sx(a)) << amount);
}

Value shr(const Value& a, const Value& sh, ScalarType rt) {
  const uint64_t amount = zx(sh);
  if (a.isSigned()) {
    const int64_t v = sx(a);
    const uint64_t n = amount >= 63 ? 63 : amount;
    return Value(rt, static_cast<uint64_t>(v >> n));
  }
  if (amount >= 64) return Value(rt, 0);
  return Value(rt, zx(a) >> amount);
}

Value cmpEq(const Value& a, const Value& b) { return Value::ofBool(sx(a) == sx(b)); }
Value cmpNe(const Value& a, const Value& b) { return Value::ofBool(sx(a) != sx(b)); }

Value cmpLt(const Value& a, const Value& b) {
  if (unsignedCompare(a, b)) return Value::ofBool(Value::mask(static_cast<uint64_t>(sx(a)), 32) < Value::mask(static_cast<uint64_t>(sx(b)), 32));
  return Value::ofBool(sx(a) < sx(b));
}

Value cmpLe(const Value& a, const Value& b) {
  if (unsignedCompare(a, b)) return Value::ofBool(Value::mask(static_cast<uint64_t>(sx(a)), 32) <= Value::mask(static_cast<uint64_t>(sx(b)), 32));
  return Value::ofBool(sx(a) <= sx(b));
}

Value cmpGt(const Value& a, const Value& b) { return cmpLt(b, a); }
Value cmpGe(const Value& a, const Value& b) { return cmpLe(b, a); }

Value mux(const Value& sel, const Value& a, const Value& b, ScalarType rt) {
  return (sel.bits() != 0 ? a : b).convertTo(rt);
}

} // namespace ops

int bitsForUnsigned(uint64_t v) {
  int bits = 1;
  while (v > 1) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

int bitsForSigned(int64_t v) {
  if (v >= 0) return bitsForUnsigned(static_cast<uint64_t>(v)) + 1;
  // Smallest width w with v >= -2^(w-1); w=1 holds exactly {-1, 0}.
  if (v == -1) return 1;
  return bitsForUnsigned(static_cast<uint64_t>(~v)) + 1;
}

} // namespace roccc
