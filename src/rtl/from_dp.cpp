#include "rtl/from_dp.hpp"

#include <cassert>
#include <map>

#include "support/budget.hpp"
#include "support/faultpoint.hpp"
#include "support/strings.hpp"

namespace roccc::rtl {

using dp::DataPath;
using dp::DpOp;
using dp::DpValue;
using mir::Opcode;

namespace {

CellKind cellFor(Opcode op) {
  switch (op) {
    case Opcode::Add: return CellKind::Add;
    case Opcode::Sub: return CellKind::Sub;
    case Opcode::Mul: return CellKind::Mul;
    case Opcode::Div: return CellKind::Div;
    case Opcode::Rem: return CellKind::Rem;
    case Opcode::Neg: return CellKind::Neg;
    case Opcode::And: return CellKind::And;
    case Opcode::Or: return CellKind::Or;
    case Opcode::Xor: return CellKind::Xor;
    case Opcode::Not: return CellKind::Not;
    case Opcode::Shl: return CellKind::Shl;
    case Opcode::Shr: return CellKind::Shr;
    case Opcode::Seq: return CellKind::Eq;
    case Opcode::Sne: return CellKind::Ne;
    case Opcode::Slt: return CellKind::Lt;
    case Opcode::Sle: return CellKind::Le;
    case Opcode::Sgt: return CellKind::Gt;
    case Opcode::Sge: return CellKind::Ge;
    case Opcode::Mux: return CellKind::Mux;
    case Opcode::Mov: return CellKind::Resize;
    case Opcode::Cast: return CellKind::Resize;
    default:
      throw InternalCompilerError(
          fmt("rtl: opcode %0 reached cell lowering without a direct cell mapping",
              static_cast<int>(op)));
  }
}

class Lowering {
 public:
  Lowering(const DataPath& dp, Module& out, DiagEngine& diags) : dp_(dp), out_(out), diags_(diags) {}

  bool run() {
    out_ = Module{};
    out_.name = dp_.name;
    out_.latency = dp_.stageCount - 1;

    // Input ports.
    for (const auto& port : dp_.inputs) {
      const DpValue& v = dp_.values[static_cast<size_t>(port.value)];
      const int net = out_.addNet(hwType(v), port.name);
      out_.inputPorts.push_back(net);
      out_.inputNames.push_back(port.name);
      baseNet_[v.id] = net;
      defStage_[v.id] = 0;
    }

    // Feedback registers: create output nets up front so LPR values resolve.
    for (const auto& fb : dp_.feedbacks) {
      const int net = out_.addNet(fb.type, fb.name + "__reg");
      fbNet_[fb.name] = net;
    }

    // Valid chain: feedback registers must not latch until real data reaches
    // their stage (the pipeline-fill cycles would clobber the initial
    // value). The controller drives '__valid' high exactly when it issues
    // an iteration; one 1-bit register per stage delays it alongside the
    // data.
    if (!dp_.feedbacks.empty()) {
      const ScalarType bitTy = ScalarType::make(1, false);
      validAt_.push_back(out_.addNet(bitTy, "__valid"));
      out_.inputPorts.push_back(validAt_[0]);
      out_.inputNames.push_back("__valid");
      for (int s = 1; s < dp_.stageCount; ++s) {
        const int net = out_.addNet(bitTy, fmt("__valid_s%0", s));
        out_.addCell(CellKind::Reg, {validAt_.back()}, net);
        validAt_.push_back(net);
      }
    }

    // Ops in dependency order. The elaboration loop is the RTL layer's hot
    // path (cell count scales with unroll factor), so it carries a deadline
    // checkpoint.
    for (int oi : topoOrder()) {
      budgetCheckpoint("rtl-elaborate");
      lowerOp(dp_.ops[static_cast<size_t>(oi)]);
      if (failed_) return false;
    }

    // Close the feedback loops; each register is gated by the valid bit of
    // its stage.
    for (const auto& fb : dp_.feedbacks) {
      const int d = netAt(fb.snxValue, fb.stage);
      const int resized = resizeTo(d, fb.type, fb.name + "__nxt");
      const int en = validAt_.at(static_cast<size_t>(fb.stage));
      const int cell = out_.addCell(CellKind::Reg, {resized, en}, fbNet_.at(fb.name));
      out_.cells[static_cast<size_t>(cell)].imm = fb.initial;
    }

    // Output ports, all delivered at the final stage.
    const int finalStage = dp_.stageCount - 1;
    for (size_t p = 0; p < dp_.outputs.size(); ++p) {
      const auto& port = dp_.outputs[p];
      const int net = netAt(port.value, finalStage);
      const int resized = resizeTo(net, port.type, port.name);
      out_.outputPorts.push_back(resized);
      out_.outputNames.push_back(port.name);
    }
    // Feedback state taps.
    for (const auto& fb : dp_.feedbacks) {
      out_.outputPorts.push_back(fbNet_.at(fb.name));
      out_.outputNames.push_back(fb.name + "__fb");
    }

    std::vector<std::string> errors;
    if (!out_.verify(errors)) {
      for (const auto& e : errors) diags_.error({}, "datapath module: " + e);
      return false;
    }
    return true;
  }

 private:
  const DataPath& dp_;
  Module& out_;
  DiagEngine& diags_;
  bool failed_ = false;

  std::map<int, int> baseNet_;              ///< value id -> net at its def stage
  std::map<int, int> defStage_;             ///< value id -> def stage
  std::map<std::pair<int, int>, int> staged_; ///< (value, stage) -> net
  std::map<std::string, int> fbNet_;
  std::vector<int> validAt_; ///< valid net per stage (only when feedbacks exist)
  std::map<int, bool> isConst_;             ///< value id -> constant (stage-free)

  ScalarType hwType(const DpValue& v) const { return ScalarType::make(v.width, v.isSigned); }

  std::vector<int> topoOrder() const {
    std::vector<int> indeg(dp_.ops.size(), 0);
    std::vector<std::vector<int>> consumers(dp_.values.size());
    for (size_t oi = 0; oi < dp_.ops.size(); ++oi) {
      for (int v : dp_.ops[oi].operands) {
        if (dp_.values[static_cast<size_t>(v)].def >= 0) ++indeg[oi];
        consumers[static_cast<size_t>(v)].push_back(static_cast<int>(oi));
      }
    }
    std::vector<int> ready, order;
    for (size_t oi = 0; oi < dp_.ops.size(); ++oi) {
      if (indeg[oi] == 0) ready.push_back(static_cast<int>(oi));
    }
    while (!ready.empty()) {
      const int oi = ready.back();
      ready.pop_back();
      order.push_back(oi);
      const int res = dp_.ops[static_cast<size_t>(oi)].result;
      if (res < 0) continue;
      for (int c : consumers[static_cast<size_t>(res)]) {
        if (--indeg[static_cast<size_t>(c)] == 0) ready.push_back(c);
      }
    }
    return order;
  }

  int resizeTo(int net, ScalarType t, const std::string& name) {
    if (out_.nets[static_cast<size_t>(net)].type == t) return net;
    const int r = out_.addNet(t, name);
    out_.addCell(CellKind::Resize, {net}, r);
    return r;
  }

  /// Net carrying `value` during `stage`: the base net, advanced through a
  /// pipeline-register chain when the consumer sits in a later stage.
  int netAt(int valueId, int stage) {
    if (isConst_[valueId]) return baseNet_.at(valueId); // constants are stage-free
    const int def = defStage_.at(valueId);
    if (stage <= def) return baseNet_.at(valueId);
    const auto key = std::make_pair(valueId, stage);
    const auto it = staged_.find(key);
    if (it != staged_.end()) return it->second;
    const int prev = netAt(valueId, stage - 1);
    const DpValue& v = dp_.values[static_cast<size_t>(valueId)];
    const int net = out_.addNet(out_.nets[static_cast<size_t>(prev)].type,
                                fmt("%0_s%1", v.name.empty() ? fmt("t%0", v.id) : v.name, stage));
    out_.addCell(CellKind::Reg, {prev}, net);
    staged_[key] = net;
    return net;
  }

  void lowerOp(const DpOp& o) {
    switch (o.op) {
      case Opcode::Ldc: {
        const DpValue& v = dp_.values[static_cast<size_t>(o.result)];
        const int net = out_.addConst(Value::fromInt(hwType(v), o.imm).toInt(), hwType(v),
                                      v.name.empty() ? fmt("c%0", o.imm) : v.name);
        baseNet_[o.result] = net;
        defStage_[o.result] = 0;
        isConst_[o.result] = true;
        return;
      }
      case Opcode::Lpr: {
        baseNet_[o.result] = fbNet_.at(o.symbol);
        defStage_[o.result] = o.stage;
        return;
      }
      case Opcode::Lut: {
        const DpValue& v = dp_.values[static_cast<size_t>(o.result)];
        const int addr = operandNet(o, 0);
        const int net = out_.addNet(hwType(v), resultName(o));
        const int cell = out_.addCell(CellKind::Rom, {addr}, net);
        for (const auto& t : dp_.tables) {
          if (t.name == o.symbol) {
            out_.cells[static_cast<size_t>(cell)].romData = t.values;
            out_.cells[static_cast<size_t>(cell)].romElemType = t.elemType;
          }
        }
        out_.cells[static_cast<size_t>(cell)].romName = o.symbol;
        baseNet_[o.result] = net;
        defStage_[o.result] = o.stage;
        return;
      }
      case Opcode::BitSel: {
        const DpValue& v = dp_.values[static_cast<size_t>(o.result)];
        const DpValue& src = dp_.values[static_cast<size_t>(o.operands[0])];
        const int full = resizeTo(operandNet(o, 0), src.declared, src.name + "_full");
        const int net = out_.addNet(hwType(v), resultName(o));
        const int cell = out_.addCell(CellKind::Slice, {full}, net);
        out_.cells[static_cast<size_t>(cell)].aux0 = o.aux0;
        out_.cells[static_cast<size_t>(cell)].aux1 = o.aux1;
        baseNet_[o.result] = net;
        defStage_[o.result] = o.stage;
        return;
      }
      case Opcode::BitCat: {
        const DpValue& v = dp_.values[static_cast<size_t>(o.result)];
        const DpValue& hi = dp_.values[static_cast<size_t>(o.operands[0])];
        const DpValue& lo = dp_.values[static_cast<size_t>(o.operands[1])];
        const int hiNet = resizeTo(operandNet(o, 0), hi.declared, hi.name + "_full");
        const int loNet = resizeTo(operandNet(o, 1), lo.declared, lo.name + "_full");
        const int net = out_.addNet(hwType(v), resultName(o));
        out_.addCell(CellKind::Concat, {hiNet, loNet}, net);
        baseNet_[o.result] = net;
        defStage_[o.result] = o.stage;
        return;
      }
      default: {
        if (o.result < 0) return; // Out/Snx carry no op here
        const DpValue& v = dp_.values[static_cast<size_t>(o.result)];
        std::vector<int> ins;
        for (size_t k = 0; k < o.operands.size(); ++k) ins.push_back(operandNet(o, k));
        const int net = out_.addNet(hwType(v), resultName(o));
        out_.addCell(cellFor(o.op), ins, net);
        baseNet_[o.result] = net;
        defStage_[o.result] = o.stage;
        return;
      }
    }
  }

  std::string resultName(const DpOp& o) const {
    const DpValue& v = dp_.values[static_cast<size_t>(o.result)];
    return v.name.empty() ? fmt("t%0", v.id) : v.name;
  }

  int operandNet(const DpOp& o, size_t k) {
    return netAt(o.operands[k], o.stage);
  }
};

} // namespace

bool buildDatapathModule(const DataPath& dp, Module& out, DiagEngine& diags) {
  faultpoint("rtl.elaborate");
  Lowering l(dp, out, diags);
  return l.run();
}

} // namespace roccc::rtl
