// Ablation: partial unrolling of the streaming loop (paper section 2's
// area-estimation-driven loop unrolling). Widening the data path multiplies
// throughput at a proportional area cost; the compile-time area estimate
// (ref [13]) picks the largest factor within a slice budget.
#include <cstdio>

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "hlir/transforms.hpp"
#include "kernels.hpp"
#include "roccc/compiler.hpp"
#include "synth/estimate.hpp"

int main() {
  using namespace roccc;
  std::printf("Unroll-factor sweep: 5-tap FIR, 64 output samples\n\n");
  std::printf("  %6s | %8s | %10s | %12s | %14s | %12s\n", "factor", "slices", "fmax MHz",
              "cycles", "outputs/clock", "Msamples/s");
  std::printf("  -------+----------+------------+--------------+----------------+------------\n");

  for (int factor : {1, 2, 4, 8}) {
    CompileOptions opt;
    opt.unrollFactor = factor;
    Compiler c(opt);
    const CompileResult r = c.compileSource(bench::kFir);
    if (!r.ok) {
      std::fprintf(stderr, "factor %d: %s\n", factor, r.diags.dump().c_str());
      return 1;
    }
    interp::KernelIO in;
    for (int i = 0; i < 68; ++i) in.arrays["A"].push_back((i * 73) % 251 - 125);
    rtl::SystemOptions sys;
    sys.inputBusElems = factor;
    rtl::System system(r.kernel, r.datapath, r.module, sys);
    system.run(in);
    const auto rep = synth::estimate(r.module);
    const double throughput = system.stats().steadyStateThroughput();
    std::printf("  %6d | %8lld | %10.0f | %12lld | %14.2f | %12.1f\n", factor,
                static_cast<long long>(rep.slices), rep.fmaxMHz(),
                static_cast<long long>(system.stats().cycles), throughput,
                throughput * rep.fmaxMHz());
  }

  // The compile-time estimator's pick for a given budget.
  DiagEngine diags;
  ast::Module m = ast::parse(bench::kFir, diags);
  ast::analyze(m, diags);
  std::printf("\ncompile-time area estimation (ref [13]) unroll choice:\n");
  for (int64_t budget : {200, 1000, 5000, 50000}) {
    const int f = hlir::chooseUnrollFactor(m.functions[0], 64, budget);
    std::printf("  slice budget %6lld -> factor %d\n", static_cast<long long>(budget), f);
  }
  return 0;
}
