#include "mir/exec.hpp"

#include <cassert>
#include <stdexcept>

#include "support/strings.hpp"

namespace roccc::mir {

std::optional<Value> evalPureOp(const Instr& in, const std::vector<Value>& ops,
                                const FunctionIR::Table* table) {
  const ScalarType rt = in.type;
  switch (in.op) {
    case Opcode::Ldc: return Value::fromInt(rt, in.imm);
    case Opcode::Mov: return ops[0].convertTo(rt);
    case Opcode::Add: return ops::add(ops[0], ops[1], rt);
    case Opcode::Sub: return ops::sub(ops[0], ops[1], rt);
    case Opcode::Mul: return ops::mul(ops[0], ops[1], rt);
    case Opcode::Div: return ops::divide(ops[0], ops[1], rt);
    case Opcode::Rem: return ops::rem(ops[0], ops[1], rt);
    case Opcode::Neg: return ops::neg(ops[0], rt);
    case Opcode::And: return ops::bitAnd(ops[0], ops[1], rt);
    case Opcode::Or: return ops::bitOr(ops[0], ops[1], rt);
    case Opcode::Xor: return ops::bitXor(ops[0], ops[1], rt);
    case Opcode::Not: return ops::bitNot(ops[0], rt);
    case Opcode::Shl: return ops::shl(ops[0], ops[1], rt);
    case Opcode::Shr: return ops::shr(ops[0], ops[1], rt);
    case Opcode::Seq: return ops::cmpEq(ops[0], ops[1]);
    case Opcode::Sne: return ops::cmpNe(ops[0], ops[1]);
    case Opcode::Slt: return ops::cmpLt(ops[0], ops[1]);
    case Opcode::Sle: return ops::cmpLe(ops[0], ops[1]);
    case Opcode::Sgt: return ops::cmpGt(ops[0], ops[1]);
    case Opcode::Sge: return ops::cmpGe(ops[0], ops[1]);
    case Opcode::Mux: return ops::mux(ops[0], ops[1], ops[2], rt);
    case Opcode::Cast: return ops[0].convertTo(rt);
    case Opcode::BitSel: {
      // Bits aux0..aux1 (hi..lo) of the operand, zero-extended.
      const uint64_t raw = ops[0].toUnsigned() >> in.aux1;
      return Value(rt, raw);
    }
    case Opcode::BitCat: {
      const uint64_t hi = ops[0].toUnsigned();
      const uint64_t lo = ops[1].toUnsigned();
      return Value(rt, (hi << ops[1].width()) | lo);
    }
    case Opcode::Lut: {
      if (!table) return std::nullopt;
      const uint64_t idx = ops[0].toUnsigned();
      // Hardware ROMs wrap the address to the table size (power-of-two
      // depth); non-power-of-two tables clamp.
      const size_t n = table->values.size();
      const size_t i = idx < n ? static_cast<size_t>(idx) : (n ? n - 1 : 0);
      return Value::fromInt(rt, table->values[i]);
    }
    default:
      return std::nullopt;
  }
}

ExecResult execute(const FunctionIR& f, const std::vector<Value>& inputs,
                   const std::map<std::string, Value>& feedback) {
  std::vector<std::optional<Value>> regs(static_cast<size_t>(f.regCount()));
  ExecResult result;
  // Output count = number of output params.
  size_t outCount = 0;
  for (const auto& p : f.params) {
    if (p.isOutput) ++outCount;
  }
  result.outputs.assign(outCount, Value());
  for (const auto& fb : f.feedbacks) {
    const auto it = feedback.find(fb.name);
    result.nextFeedback[fb.name] =
        it != feedback.end() ? it->second.convertTo(fb.type) : Value::fromInt(fb.type, fb.initial);
  }

  auto opVal = [&](const Operand& o, ScalarType fallback) -> Value {
    if (o.isImm()) return Value::fromInt(fallback, o.imm);
    assert(o.isReg());
    const auto& v = regs[static_cast<size_t>(o.reg)];
    if (!v) throw std::runtime_error(fmt("mir exec: v%0 read before definition", o.reg));
    return *v;
  };

  int cur = 0, prev = -1;
  size_t steps = 0;
  while (true) {
    if (++steps > 1'000'000) throw std::runtime_error("mir exec: step limit exceeded");
    const Block& b = f.blocks[static_cast<size_t>(cur)];
    // Phis read their pred slot against `prev` — evaluate them as a batch
    // (they conceptually execute in parallel at block entry).
    std::vector<std::pair<int, Value>> phiValues;
    size_t i = 0;
    for (; i < b.instrs.size() && b.instrs[i].op == Opcode::Phi; ++i) {
      const Instr& phi = b.instrs[i];
      size_t slot = 0;
      for (; slot < b.preds.size(); ++slot) {
        if (b.preds[slot] == prev) break;
      }
      if (slot == b.preds.size()) throw std::runtime_error("mir exec: phi with unknown predecessor");
      phiValues.emplace_back(phi.dst, opVal(phi.srcs[slot], phi.type).convertTo(phi.type));
    }
    for (auto& [dst, v] : phiValues) regs[static_cast<size_t>(dst)] = v;

    bool terminated = false;
    for (; i < b.instrs.size(); ++i) {
      const Instr& in = b.instrs[i];
      switch (in.op) {
        case Opcode::In: {
          if (static_cast<size_t>(in.aux0) >= inputs.size()) {
            throw std::runtime_error(fmt("mir exec: input port %0 not bound", in.aux0));
          }
          regs[static_cast<size_t>(in.dst)] = inputs[static_cast<size_t>(in.aux0)].convertTo(in.type);
          break;
        }
        case Opcode::Out: {
          result.outputs[static_cast<size_t>(in.aux0)] = opVal(in.srcs[0], in.type).convertTo(in.type);
          break;
        }
        case Opcode::Lpr: {
          const auto it = feedback.find(in.symbol);
          const FunctionIR::FeedbackReg* fb = f.findFeedback(in.symbol);
          assert(fb);
          regs[static_cast<size_t>(in.dst)] =
              (it != feedback.end() ? it->second : Value::fromInt(fb->type, fb->initial)).convertTo(in.type);
          break;
        }
        case Opcode::Snx: {
          result.nextFeedback[in.symbol] = opVal(in.srcs[0], in.type).convertTo(in.type);
          break;
        }
        case Opcode::Br: {
          const Value c = opVal(in.srcs[0], ScalarType::boolTy());
          prev = cur;
          cur = c.toBool() ? b.succs[0] : b.succs[1];
          terminated = true;
          break;
        }
        case Opcode::Jmp: {
          prev = cur;
          cur = b.succs[0];
          terminated = true;
          break;
        }
        case Opcode::Ret:
          return result;
        default: {
          std::vector<Value> operands;
          operands.reserve(in.srcs.size());
          for (const auto& o : in.srcs) {
            // Immediate operands adopt the result type for evaluation.
            operands.push_back(opVal(o, in.type));
          }
          const auto v = evalPureOp(in, operands, f.findTable(in.symbol));
          if (!v) throw std::runtime_error(fmt("mir exec: cannot evaluate %0", opcodeName(in.op)));
          regs[static_cast<size_t>(in.dst)] = *v;
          break;
        }
      }
      if (terminated) break;
    }
    if (!terminated) throw std::runtime_error("mir exec: fell off a block without terminator");
  }
}

} // namespace roccc::mir
