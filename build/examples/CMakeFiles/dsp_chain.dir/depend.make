# Empty dependencies file for dsp_chain.
# This may be replaced when dependencies are built.
