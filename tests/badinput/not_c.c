This file is not C at all -- the parser must reject every token and still
terminate (the no-progress guard swallows one token per round, and the
diagnostic engine caps the error count).
%%% $$$ @@@ ))) }}} ;;;
