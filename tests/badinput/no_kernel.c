// No function at all: nothing to compile.
int just_a_global = 4;
