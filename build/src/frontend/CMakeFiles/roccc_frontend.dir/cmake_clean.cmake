file(REMOVE_RECURSE
  "CMakeFiles/roccc_frontend.dir/ast.cpp.o"
  "CMakeFiles/roccc_frontend.dir/ast.cpp.o.d"
  "CMakeFiles/roccc_frontend.dir/lexer.cpp.o"
  "CMakeFiles/roccc_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/roccc_frontend.dir/parser.cpp.o"
  "CMakeFiles/roccc_frontend.dir/parser.cpp.o.d"
  "CMakeFiles/roccc_frontend.dir/sema.cpp.o"
  "CMakeFiles/roccc_frontend.dir/sema.cpp.o.d"
  "libroccc_frontend.a"
  "libroccc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roccc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
