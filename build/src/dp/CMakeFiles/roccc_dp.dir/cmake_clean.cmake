file(REMOVE_RECURSE
  "CMakeFiles/roccc_dp.dir/annotate.cpp.o"
  "CMakeFiles/roccc_dp.dir/annotate.cpp.o.d"
  "CMakeFiles/roccc_dp.dir/datapath.cpp.o"
  "CMakeFiles/roccc_dp.dir/datapath.cpp.o.d"
  "CMakeFiles/roccc_dp.dir/eval.cpp.o"
  "CMakeFiles/roccc_dp.dir/eval.cpp.o.d"
  "libroccc_dp.a"
  "libroccc_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roccc_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
