#include "vhdl/check.hpp"

#include <cctype>
#include <map>
#include <set>

#include "support/strings.hpp"

namespace roccc::vhdl {

namespace {

struct Tok {
  std::string text; ///< lower-cased word, or single punctuation
  int line = 0;
};

std::vector<Tok> tokenize(const std::string& s) {
  std::vector<Tok> out;
  int line = 1;
  for (size_t i = 0; i < s.size();) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < s.size() && s[i + 1] == '-') {
      while (i < s.size() && s[i] != '\n') ++i;
      continue;
    }
    if (c == '"') { // string literal
      std::string lit = "\"";
      ++i;
      while (i < s.size() && s[i] != '"') lit += s[i++];
      lit += '"';
      ++i;
      out.push_back({lit, line});
      continue;
    }
    if (c == '\'') { // character literal like '1'
      if (i + 2 < s.size() && s[i + 2] == '\'') {
        out.push_back({s.substr(i, 3), line});
        i += 3;
        continue;
      }
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string w;
      while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_')) {
        w += static_cast<char>(std::tolower(static_cast<unsigned char>(s[i])));
        ++i;
      }
      out.push_back({w, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string w;
      while (i < s.size() && std::isalnum(static_cast<unsigned char>(s[i]))) w += s[i++];
      out.push_back({w, line});
      continue;
    }
    // multi-char operators
    static const char* two[] = {"<=", ">=", "=>", "/=", ":="};
    bool matched = false;
    for (const char* t : two) {
      if (s.compare(i, 2, t) == 0) {
        out.push_back({t, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.push_back({std::string(1, c), line});
    ++i;
  }
  return out;
}

bool isIdent(const std::string& t) {
  return !t.empty() && (std::isalpha(static_cast<unsigned char>(t[0])) || t[0] == '_');
}

} // namespace

CheckResult checkDesign(const std::string& text) {
  CheckResult r;
  const std::vector<Tok> toks = tokenize(text);
  auto problem = [&](int line, const std::string& msg) {
    r.ok = false;
    r.problems.push_back(fmt("line %0: %1", line, msg));
  };

  std::set<std::string> entities;
  std::set<std::string> architecturesOf;
  std::vector<std::string> instantiated; // entity names referenced via work.X

  // Pass 1: entity declarations and their end labels; block balance.
  // We track a stack of open constructs: entity, architecture, process,
  // if, case.
  struct Open {
    std::string kind;
    std::string name;
    int line;
  };
  std::vector<Open> stack;

  for (size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    auto next = [&](size_t k) -> const Tok& {
      static const Tok sentinel{"", 0};
      return i + k < toks.size() ? toks[i + k] : sentinel;
    };
    if (t.text == "entity") {
      // Either "entity NAME is" (declaration) or "entity work.NAME" (inst).
      if (next(1).text == "work" && next(2).text == ".") {
        instantiated.push_back(next(3).text);
        ++r.instantiationCount;
        continue;
      }
      if (next(2).text == "is") {
        entities.insert(next(1).text);
        ++r.entityCount;
        stack.push_back({"entity", next(1).text, t.line});
        i += 2;
        continue;
      }
    }
    if (t.text == "architecture" && next(2).text == "of") {
      // architecture NAME of ENTITY is
      architecturesOf.insert(next(3).text);
      ++r.architectureCount;
      stack.push_back({"architecture", next(3).text, t.line});
      i += 3;
      continue;
    }
    if (t.text == "process") {
      // could be "end process"
      bool isEnd = i > 0 && toks[i - 1].text == "end";
      if (!isEnd) {
        ++r.processCount;
        stack.push_back({"process", "", t.line});
      }
      continue;
    }
    if (t.text == "if" && !stack.empty() && stack.back().kind == "process-body") {
      // handled below via simple if counting
    }
    if (t.text == "if") {
      // "end if" handled by the end matcher; only count "if ... then".
      bool isEnd = i > 0 && toks[i - 1].text == "end";
      if (!isEnd) stack.push_back({"if", "", t.line});
      continue;
    }
    if (t.text == "end") {
      const std::string& what = next(1).text;
      if (what == "if") {
        if (stack.empty() || stack.back().kind != "if") {
          problem(t.line, "'end if' without open if");
        } else {
          stack.pop_back();
        }
        i += 1;
        continue;
      }
      if (what == "process") {
        if (stack.empty() || stack.back().kind != "process") {
          problem(t.line, "'end process' without open process");
        } else {
          stack.pop_back();
        }
        i += 1;
        continue;
      }
      if (what == "entity") {
        if (stack.empty() || stack.back().kind != "entity") {
          problem(t.line, "'end entity' without open entity");
        } else {
          const std::string declared = stack.back().name;
          if (isIdent(next(2).text) && next(2).text != declared) {
            problem(t.line, fmt("entity end label '%0' does not match '%1'", next(2).text, declared));
          }
          stack.pop_back();
        }
        i += 1;
        continue;
      }
      if (what == "architecture") {
        if (stack.empty() || stack.back().kind != "architecture") {
          problem(t.line, "'end architecture' without open architecture");
        } else {
          stack.pop_back();
        }
        i += 1;
        continue;
      }
    }
  }
  for (const auto& open : stack) {
    problem(open.line, fmt("unclosed %0 %1", open.kind, open.name));
  }

  // Every architecture must belong to a declared entity, and vice versa.
  for (const auto& a : architecturesOf) {
    if (!entities.count(a)) problem(0, fmt("architecture of unknown entity '%0'", a));
  }
  for (const auto& e : entities) {
    if (!architecturesOf.count(e)) problem(0, fmt("entity '%0' has no architecture", e));
  }
  // Instantiations must resolve.
  for (const auto& inst : instantiated) {
    if (!entities.count(inst)) problem(0, fmt("instantiation of unknown entity '%0'", inst));
  }

  // Per-architecture declared-before-used check for signals assigned with
  // '<=': the assignment target must be a declared signal or port.
  // Re-scan with entity/port/signal tracking.
  {
    std::map<std::string, std::set<std::string>> portsOf; // entity -> names
    std::string currentEntity;
    bool inPorts = false;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Tok& t = toks[i];
      auto next = [&](size_t k) -> const Tok& {
        static const Tok sentinel{"", 0};
        return i + k < toks.size() ? toks[i + k] : sentinel;
      };
      if (t.text == "entity" && next(2).text == "is") {
        currentEntity = next(1).text;
        inPorts = false;
      } else if (t.text == "port" && next(1).text == "(") {
        inPorts = true;
      } else if (inPorts && isIdent(t.text) && next(1).text == ":") {
        portsOf[currentEntity].insert(t.text);
      } else if (t.text == "end") {
        inPorts = false;
      }
    }

    std::string archEntity;
    std::set<std::string> visible;
    bool inBody = false;
    int depth = 0;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Tok& t = toks[i];
      auto next = [&](size_t k) -> const Tok& {
        static const Tok sentinel{"", 0};
        return i + k < toks.size() ? toks[i + k] : sentinel;
      };
      if (t.text == "architecture" && next(2).text == "of") {
        archEntity = next(3).text;
        visible = portsOf[archEntity];
        inBody = false;
        depth = 0;
        continue;
      }
      if (archEntity.empty()) continue;
      if (t.text == "signal" && isIdent(next(1).text)) {
        visible.insert(next(1).text);
        continue;
      }
      if (t.text == "constant" && isIdent(next(1).text)) {
        visible.insert(next(1).text);
        continue;
      }
      if (!inBody && t.text == "begin") {
        inBody = true;
        continue;
      }
      if (t.text == "process") ++depth;
      if (t.text == "end") {
        if (next(1).text == "process") {
          --depth;
        } else if (next(1).text == "architecture") {
          archEntity.clear();
          inBody = false;
        }
        continue;
      }
      if (inBody && isIdent(t.text) && next(1).text == "<=" && i > 0) {
        // Only treat as a signal assignment when the identifier starts a
        // statement; '<=' after an expression context (if/when/loop
        // conditions, operands) is the relational operator.
        const std::string& prev = toks[i - 1].text;
        const bool stmtStart = prev == ";" || prev == "begin" || prev == "then" ||
                               prev == "else" || prev == "loop" || prev == "generate";
        if (!stmtStart) continue;
        if (!visible.count(t.text)) {
          problem(t.line, fmt("assignment to undeclared signal '%0' in architecture of '%1'",
                              t.text, archEntity));
        }
      }
    }
  }

  return r;
}

} // namespace roccc::vhdl
