#include "support/budget.hpp"

#include "support/strings.hpp"

namespace roccc {

const char* budgetKindName(BudgetKind kind) {
  switch (kind) {
    case BudgetKind::Deadline: return "deadline";
    case BudgetKind::IrNodes: return "ir-nodes";
    case BudgetKind::UnrollProduct: return "unroll-product";
    case BudgetKind::Depth: return "depth";
  }
  return "?";
}

namespace {

std::string describe(BudgetKind kind, const std::string& where, int64_t observed, int64_t limit) {
  switch (kind) {
    case BudgetKind::Deadline:
      return fmt("compile deadline of %0 ms exceeded (at %1)", limit, where);
    case BudgetKind::IrNodes:
      return fmt("IR grew to %0 nodes, budget is %1 (at %2)", observed, limit, where);
    case BudgetKind::UnrollProduct:
      return fmt("unroll expansion product reached %0, budget is %1 (at %2)", observed, limit,
                 where);
    case BudgetKind::Depth:
      return fmt("nesting depth %0 exceeds the cap of %1 (at %2)", observed, limit, where);
  }
  return "budget exceeded";
}

} // namespace

BudgetExceeded::BudgetExceeded(BudgetKind kind, const std::string& where, int64_t observed,
                               int64_t limit)
    : std::runtime_error(describe(kind, where, observed, limit)),
      kind_(kind),
      where_(where),
      observed_(observed),
      limit_(limit) {}

CompileBudget::CompileBudget(const BudgetLimits& limits) : limits_(limits) {
  if (limits_.timeoutMs != 0) {
    hasDeadline_ = true;
    // A negative timeout yields an already-expired deadline: the first
    // checkpoint throws, deterministically — how tests reach the Timeout
    // outcome without racing the wall clock.
    deadline_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(limits_.timeoutMs);
  }
}

void CompileBudget::checkDeadline(const char* where) {
  if (!hasDeadline_) return;
  const auto now = std::chrono::steady_clock::now();
  if (now >= deadline_) {
    const auto over = std::chrono::duration_cast<std::chrono::milliseconds>(now - deadline_);
    throw BudgetExceeded(BudgetKind::Deadline, where, limits_.timeoutMs + over.count(),
                         limits_.timeoutMs);
  }
}

void CompileBudget::checkpointPass(const char* passName, int64_t irNodes) {
  checkDeadline(passName);
  if (limits_.maxIrNodes > 0 && irNodes > limits_.maxIrNodes) {
    throw BudgetExceeded(BudgetKind::IrNodes, passName, irNodes, limits_.maxIrNodes);
  }
}

void CompileBudget::chargeUnroll(int64_t factor, const char* where) {
  if (factor <= 1) return;
  // Saturating multiply: a 2^20 x 2^20 request must not wrap into "fine".
  constexpr int64_t kSaturated = INT64_MAX / 2;
  if (unrollProduct_ > kSaturated / factor) {
    unrollProduct_ = kSaturated;
  } else {
    unrollProduct_ *= factor;
  }
  if (limits_.maxUnrollProduct > 0 && unrollProduct_ > limits_.maxUnrollProduct) {
    throw BudgetExceeded(BudgetKind::UnrollProduct, where, unrollProduct_,
                         limits_.maxUnrollProduct);
  }
}

void CompileBudget::checkDepth(int64_t depth, const char* where) {
  if (limits_.maxDepth > 0 && depth > limits_.maxDepth) {
    throw BudgetExceeded(BudgetKind::Depth, where, depth, limits_.maxDepth);
  }
}

namespace {

// One slot per thread: each batch job runs wholly on one worker, so the
// installed budget is never shared between jobs (the reentrancy audit's
// no-mutable-globals rule; thread_local keeps it per-worker by design).
thread_local CompileBudget* tlBudget = nullptr;

} // namespace

BudgetScope::BudgetScope(CompileBudget* budget) : prev_(tlBudget) { tlBudget = budget; }
BudgetScope::~BudgetScope() { tlBudget = prev_; }

CompileBudget* currentBudget() { return tlBudget; }

void budgetCheckpoint(const char* where) {
  if (tlBudget) tlBudget->checkDeadline(where);
}

void budgetChargeUnroll(int64_t factor, const char* where) {
  if (tlBudget) tlBudget->chargeUnroll(factor, where);
}

void budgetCheckDepth(int64_t depth, const char* where) {
  if (tlBudget) tlBudget->checkDepth(depth, where);
}

} // namespace roccc
