#include <gtest/gtest.h>

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"

namespace roccc::ast {
namespace {

Module parseOk(const std::string& src) {
  DiagEngine diags;
  Module m = parse(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  return m;
}

Module parseAndAnalyze(const std::string& src) {
  DiagEngine diags;
  Module m = parse(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  analyze(m, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  return m;
}

void expectErrorContaining(const std::string& src, const std::string& needle) {
  DiagEngine diags;
  Module m = parse(src, diags);
  if (!diags.hasErrors()) analyze(m, diags);
  ASSERT_TRUE(diags.hasErrors()) << "expected an error mentioning: " << needle;
  EXPECT_NE(diags.dump().find(needle), std::string::npos) << diags.dump();
}

TEST(Lexer, TokensAndComments) {
  DiagEngine diags;
  auto toks = lex("int x = 0x1F; // comment\n/* block */ y <<= 2", diags);
  // "<<=" lexes as Shl then Assign in this subset (no <<= operator).
  ASSERT_FALSE(diags.hasErrors());
  EXPECT_EQ(toks[0].kind, TokKind::KwInt);
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_EQ(toks[2].kind, TokKind::Assign);
  EXPECT_EQ(toks[3].intValue, 31);
  EXPECT_EQ(toks[5].text, "y");
  EXPECT_EQ(toks[6].kind, TokKind::Shl);
}

TEST(Lexer, CharLiteralAndLocations) {
  DiagEngine diags;
  auto toks = lex("x = 'A';\ny = 10;", diags);
  ASSERT_FALSE(diags.hasErrors());
  EXPECT_EQ(toks[2].intValue, 65);
  // 'y' starts line 2.
  EXPECT_EQ(toks[4].loc.line, 2);
  EXPECT_EQ(toks[4].loc.column, 1);
}

TEST(Lexer, ReportsBadCharacters) {
  DiagEngine diags;
  lex("int a = $;", diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(TypeNames, SizedAliases) {
  EXPECT_EQ(parseTypeName("int12")->width, 12);
  EXPECT_TRUE(parseTypeName("int12")->isSigned);
  EXPECT_EQ(parseTypeName("uint5")->width, 5);
  EXPECT_FALSE(parseTypeName("uint5")->isSigned);
  EXPECT_FALSE(parseTypeName("integer").has_value());
  EXPECT_FALSE(parseTypeName("uintx").has_value());
  EXPECT_FALSE(parseTypeName("int0").has_value());
  EXPECT_FALSE(parseTypeName("foo").has_value());
}

TEST(Parser, FivetapFirFromPaper) {
  // Figure 3 (a), with declarations added to make it a complete kernel.
  Module m = parseOk(R"(
    void fir(const int16 A[21], int16 C[17]) {
      int i;
      for (i = 0; i < 17; i = i + 1) {
        C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
      }
    }
  )");
  ASSERT_EQ(m.functions.size(), 1u);
  const Function& f = m.functions[0];
  EXPECT_EQ(f.name, "fir");
  ASSERT_EQ(f.params.size(), 2u);
  EXPECT_TRUE(f.params[0].type.isArray());
  EXPECT_EQ(f.params[0].mode, ParamMode::In);
  EXPECT_EQ(f.params[1].mode, ParamMode::Out);
  EXPECT_EQ(f.params[0].type.scalar.width, 16);
}

TEST(Parser, ForStepForms) {
  for (const char* step : {"i = i + 2", "i += 2"}) {
    Module m = parseOk(std::string("void k(int* o) { int i; int s; s = 0; for (i = 0; i < 10; ") + step +
                       ") { s = s + i; } *o = s; }");
    bool found = false;
    forEachStmt(*m.functions[0].body, [&](const Stmt& s) {
      if (s.kind == StmtKind::For) {
        EXPECT_EQ(static_cast<const ForStmt&>(s).step, 2);
        found = true;
      }
    });
    EXPECT_TRUE(found);
  }
  for (const char* step : {"i++", "++i", "i = i + 1"}) {
    Module m = parseOk(std::string("void k(int* o) { int i; for (i = 0; i < 4; ") + step + ") { *o = i; } }");
    forEachStmt(*m.functions[0].body, [&](const Stmt& s) {
      if (s.kind == StmtKind::For) EXPECT_EQ(static_cast<const ForStmt&>(s).step, 1);
    });
  }
}

TEST(Parser, InclusiveBoundNormalized) {
  Module m = parseOk("void k(int* o) { int i; for (i = 0; i <= 9; i++) { *o = i; } }");
  forEachStmt(*m.functions[0].body, [&](const Stmt& s) {
    if (s.kind == StmtKind::For) {
      const auto& f = static_cast<const ForStmt&>(s);
      EXPECT_EQ(evalConstant(*f.end).value_or(-1), 10); // 9+1
    }
  });
}

TEST(Parser, IfElseFromPaperFigure5) {
  Module m = parseAndAnalyze(R"(
    void if_else(int x1, int x2, int* x3, int* x4) {
      int a;
      int c;
      c = x1 - x2;
      if (c < x2)
        a = x1 * x1;
      else
        a = x1 * x2 + 3;
      c = c - a;
      *x3 = c;
      *x4 = a;
      return;
    }
  )");
  const Function& f = m.functions[0];
  EXPECT_EQ(f.params[2].mode, ParamMode::Out);
  // Re-print and re-parse (round trip).
  const std::string printed = printFunction(f);
  DiagEngine diags2;
  Module m2 = parse(printed, diags2);
  EXPECT_FALSE(diags2.hasErrors()) << printed << "\n" << diags2.dump();
  EXPECT_TRUE(analyze(m2, diags2)) << diags2.dump();
}

TEST(Parser, GlobalConstTable) {
  Module m = parseOk("const int16 TBL[4] = {1, -2, 3, 0x10};\nvoid k(int* o) { *o = 0; }");
  ASSERT_EQ(m.globals.size(), 1u);
  EXPECT_TRUE(m.globals[0].isConst);
  EXPECT_EQ(m.globals[0].init.size(), 4u);
  EXPECT_EQ(m.globals[0].init[1], -2);
  EXPECT_EQ(m.globals[0].init[3], 16);
}

TEST(Parser, TwoDimensionalArrays) {
  Module m = parseAndAnalyze(R"(
    void wavelet(const int16 X[8][8], int16 Y[8][8]) {
      int i;
      int j;
      for (i = 0; i < 8; i++) {
        for (j = 0; j < 8; j++) {
          Y[i][j] = X[i][j] * 2;
        }
      }
    }
  )");
  EXPECT_EQ(m.functions[0].params[0].type.dims.size(), 2u);
}

TEST(Parser, CastExpressions) {
  Module m = parseAndAnalyze("void k(int a, int* o) { int8 b; b = (int8)(a); *o = b + (int16)a; }");
  (void)m;
}

TEST(Parser, CompoundAssignDesugars) {
  Module m = parseOk("void k(int* o) { int s; s = 0; s += 5; s -= 2; *o = s; }");
  int assigns = 0;
  forEachStmt(*m.functions[0].body, [&](const Stmt& s) {
    if (s.kind == StmtKind::Assign) ++assigns;
  });
  EXPECT_EQ(assigns, 4);
}

TEST(Parser, ErrorRecoveryKeepsGoing) {
  DiagEngine diags;
  Module m = parse("void k(int* o) { *o = ; }\nvoid j(int* p) { *p = 1; }", diags);
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_EQ(m.functions.size(), 2u); // second function still parsed
}

TEST(Parser, PrecedenceMatchesC) {
  Module m = parseOk("void k(int a, int b, int* o) { *o = a + b * 3 - (a & 7) + (a << 2); }");
  const std::string p = printFunction(m.functions[0]);
  EXPECT_NE(p.find("a + b * 3"), std::string::npos) << p;
}

// --- sema ---------------------------------------------------------------

TEST(Sema, ResolvesAndTypes) {
  Module m = parseAndAnalyze("void k(int12 a, int12 b, int* o) { *o = a * b; }");
  // a*b promotes to int32.
  forEachExprInStmt(*m.functions[0].body, [](const Expr& e) {
    if (e.kind == ExprKind::Binary && static_cast<const BinaryExpr&>(e).op == BinOp::Mul) {
      EXPECT_EQ(e.type, ScalarType::intTy());
    }
  });
}

TEST(Sema, ComparisonIsOneBit) {
  Module m = parseAndAnalyze("void k(int a, int b, int* o) { *o = a < b; }");
  forEachExprInStmt(*m.functions[0].body, [](const Expr& e) {
    if (e.kind == ExprKind::Binary && static_cast<const BinaryExpr&>(e).op == BinOp::Lt) {
      EXPECT_EQ(e.type.width, 1);
      EXPECT_FALSE(e.type.isSigned);
    }
  });
}

TEST(Sema, RejectsWideTypes) {
  expectErrorContaining("void k(int33 a, int* o) { *o = a; }", "32 bits");
}

TEST(Sema, RejectsUndeclared) {
  expectErrorContaining("void k(int* o) { *o = q; }", "undeclared");
}

TEST(Sema, RejectsReadingOutParam) {
  expectErrorContaining("void k(int* o) { *o = *o; }", "");
}

TEST(Sema, RejectsRecursion) {
  expectErrorContaining("void k(int* o) { k(o); }", "recursion");
  expectErrorContaining(
      "void a(int* o) { b(o); }\nvoid b(int* o) { a(o); }", "recursion");
}

TEST(Sema, RejectsConstAssignment) {
  expectErrorContaining("const int16 T[2] = {1,2};\nvoid k(int* o) { T[0] = 3; *o = 0; }", "const");
}

TEST(Sema, RejectsOutArrayRead) {
  expectErrorContaining("void k(const int8 A[4], int8 C[4]) { int i; for (i=0;i<4;i++) { C[i] = C[i] + A[i]; } }",
                        "cannot be read");
}

TEST(Sema, RejectsBadDimensionality) {
  expectErrorContaining("void k(const int8 A[4][4], int8* o) { *o = A[1]; }", "dimensions");
}

TEST(Sema, ConstantIndexBoundsChecked) {
  expectErrorContaining("void k(const int8 A[4], int8* o) { *o = A[4]; }", "out of bounds");
}

TEST(Sema, StoreNextTypesFeedback) {
  Module m = parseAndAnalyze(R"(
    int sum = 0;
    void acc(int a, int* out) {
      int t;
      t = ROCCC_load_prev(sum) + a;
      ROCCC_store2next(sum, t);
      *out = sum;
    }
  )");
  (void)m;
}

TEST(Sema, LookupRequiresConstTable) {
  expectErrorContaining("int16 T[4];\nvoid k(uint2 i, int16* o) { *o = ROCCC_lookup(T, i); }",
                        "const");
}

TEST(Sema, CosTypesAre10In16Out) {
  Module m = parseAndAnalyze("void k(uint10 p, int16* o) { *o = ROCCC_cos(p); }");
  forEachExprInStmt(*m.functions[0].body, [](const Expr& e) {
    if (e.kind == ExprKind::Call) {
      EXPECT_EQ(e.type, ScalarType::make(16, true));
    }
  });
}

TEST(Sema, BitSelectWidths) {
  Module m = parseAndAnalyze("void k(uint8 x, uint4* o) { *o = ROCCC_bit_select(x, 7, 4); }");
  forEachExprInStmt(*m.functions[0].body, [](const Expr& e) {
    if (e.kind == ExprKind::Call) EXPECT_EQ(e.type.width, 4);
  });
  expectErrorContaining("void k(uint8 x, uint4* o) { *o = ROCCC_bit_select(x, 2, 5); }", "hi >= lo");
}

} // namespace
} // namespace roccc::ast
