# Empty dependencies file for synth_ip_test.
# This may be replaced when dependencies are built.
