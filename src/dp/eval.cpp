#include "dp/eval.hpp"

#include <cassert>
#include <stdexcept>

#include "mir/exec.hpp"
#include "support/strings.hpp"

namespace roccc::dp {

EvalResult evaluate(const DataPath& dp, const std::vector<Value>& inputs,
                    const std::map<std::string, Value>& feedback) {
  if (inputs.size() != dp.inputs.size()) {
    throw std::runtime_error(fmt("dp eval: %0 inputs bound, %1 expected", inputs.size(), dp.inputs.size()));
  }
  std::vector<std::optional<Value>> values(dp.values.size());
  // Each value lives at its *inferred* hardware type.
  auto hwType = [&](const DpValue& v) { return ScalarType::make(v.width, v.isSigned); };

  for (size_t p = 0; p < dp.inputs.size(); ++p) {
    const DpValue& v = dp.values[static_cast<size_t>(dp.inputs[p].value)];
    values[static_cast<size_t>(v.id)] = inputs[p].convertTo(dp.inputs[p].type).convertTo(hwType(v));
  }

  EvalResult result;
  for (const auto& fb : dp.feedbacks) {
    const auto it = feedback.find(fb.name);
    result.nextFeedback[fb.name] =
        it != feedback.end() ? it->second.convertTo(fb.type) : Value::fromInt(fb.type, fb.initial);
  }

  // Topological evaluation: ops are stored in placement order, which is
  // topological per construction except pipe-node rewiring; do a simple
  // ready-loop to be safe.
  std::vector<char> done(dp.ops.size(), 0);
  size_t remaining = dp.ops.size();
  size_t guard = 0;
  while (remaining > 0) {
    if (++guard > dp.ops.size() + 2) throw std::runtime_error("dp eval: dependency cycle");
    for (size_t oi = 0; oi < dp.ops.size(); ++oi) {
      if (done[oi]) continue;
      const DpOp& o = dp.ops[oi];
      bool ready = true;
      for (int vid : o.operands) {
        if (!values[static_cast<size_t>(vid)]) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      done[oi] = 1;
      --remaining;

      std::vector<Value> ops;
      ops.reserve(o.operands.size());
      for (int vid : o.operands) ops.push_back(*values[static_cast<size_t>(vid)]);
      // Bit-pattern ops must see the declared operand widths: a narrowed
      // value holds the same number, but BitSel/BitCat index raw bits.
      if (o.op == mir::Opcode::BitSel || o.op == mir::Opcode::BitCat) {
        for (size_t k = 0; k < ops.size(); ++k) {
          ops[k] = ops[k].convertTo(dp.values[static_cast<size_t>(o.operands[k])].declared);
        }
      }

      if (o.op == mir::Opcode::Lpr) {
        const auto it = feedback.find(o.symbol);
        Value prev;
        for (const auto& fb : dp.feedbacks) {
          if (fb.name == o.symbol) {
            prev = it != feedback.end() ? it->second.convertTo(fb.type)
                                        : Value::fromInt(fb.type, fb.initial);
          }
        }
        const DpValue& res = dp.values[static_cast<size_t>(o.result)];
        values[static_cast<size_t>(o.result)] = prev.convertTo(hwType(res));
        continue;
      }

      // Map the op onto the shared semantics, evaluated at the result's
      // inferred hardware type.
      const DpValue& res = dp.values[static_cast<size_t>(o.result >= 0 ? o.result : 0)];
      mir::Instr shim;
      shim.op = o.op;
      shim.type = o.result >= 0 ? hwType(res) : ScalarType::intTy();
      shim.imm = o.imm;
      shim.aux0 = o.aux0;
      shim.aux1 = o.aux1;
      shim.symbol = o.symbol;
      const mir::FunctionIR::Table* table = nullptr;
      for (const auto& t : dp.tables) {
        if (t.name == o.symbol) table = &t;
      }
      const auto v = mir::evalPureOp(shim, ops, table);
      if (!v) throw std::runtime_error(fmt("dp eval: cannot evaluate %0", mir::opcodeName(o.op)));
      if (o.result >= 0) values[static_cast<size_t>(o.result)] = *v;
    }
  }

  result.outputs.reserve(dp.outputs.size());
  for (const auto& port : dp.outputs) {
    const auto& v = values[static_cast<size_t>(port.value)];
    if (!v) throw std::runtime_error(fmt("dp eval: output '%0' undriven", port.name));
    result.outputs.push_back(v->convertTo(port.type));
  }
  for (const auto& fb : dp.feedbacks) {
    const auto& v = values[static_cast<size_t>(fb.snxValue)];
    if (!v) throw std::runtime_error(fmt("dp eval: feedback '%0' undriven", fb.name));
    result.nextFeedback[fb.name] = v->convertTo(fb.type);
  }
  return result;
}

} // namespace roccc::dp
