#include "hlir/transforms.hpp"

#include <cassert>
#include <set>

#include "frontend/sema.hpp"
#include "interp/interp.hpp"
#include "support/budget.hpp"
#include "support/faultpoint.hpp"
#include "support/strings.hpp"

namespace roccc::hlir {

using namespace roccc::ast;

namespace {

// --- mutable walkers --------------------------------------------------------

/// Visits every owned ExprPtr slot in an expression tree (children first),
/// allowing the callback to replace the pointer.
void rewriteExprTree(ExprPtr& e, const std::function<void(ExprPtr&)>& fn) {
  switch (e->kind) {
    case ExprKind::IntLit:
    case ExprKind::VarRef:
      break;
    case ExprKind::ArrayRef:
      for (auto& i : static_cast<ArrayRefExpr&>(*e).indices) rewriteExprTree(i, fn);
      break;
    case ExprKind::Unary:
      rewriteExprTree(static_cast<UnaryExpr&>(*e).operand, fn);
      break;
    case ExprKind::Binary: {
      auto& b = static_cast<BinaryExpr&>(*e);
      rewriteExprTree(b.lhs, fn);
      rewriteExprTree(b.rhs, fn);
      break;
    }
    case ExprKind::Cast:
      rewriteExprTree(static_cast<CastExpr&>(*e).operand, fn);
      break;
    case ExprKind::Call:
      for (auto& a : static_cast<CallExpr&>(*e).args) rewriteExprTree(a, fn);
      break;
  }
  fn(e);
}

/// Visits every owned ExprPtr hanging off a statement subtree.
void rewriteExprsInStmt(Stmt& s, const std::function<void(ExprPtr&)>& fn) {
  switch (s.kind) {
    case StmtKind::Block:
      for (auto& st : static_cast<BlockStmt&>(s).stmts) rewriteExprsInStmt(*st, fn);
      break;
    case StmtKind::Decl: {
      auto& d = static_cast<DeclStmt&>(s);
      if (d.init) rewriteExprTree(d.init, fn);
      break;
    }
    case StmtKind::Assign: {
      auto& a = static_cast<AssignStmt&>(s);
      for (auto& i : a.target.indices) rewriteExprTree(i, fn);
      rewriteExprTree(a.value, fn);
      break;
    }
    case StmtKind::If: {
      auto& i = static_cast<IfStmt&>(s);
      rewriteExprTree(i.cond, fn);
      rewriteExprsInStmt(*i.thenBody, fn);
      if (i.elseBody) rewriteExprsInStmt(*i.elseBody, fn);
      break;
    }
    case StmtKind::For: {
      auto& f = static_cast<ForStmt&>(s);
      rewriteExprTree(f.begin, fn);
      rewriteExprTree(f.end, fn);
      rewriteExprsInStmt(*f.body, fn);
      break;
    }
    case StmtKind::Return:
      break;
    case StmtKind::CallStmt:
      rewriteExprTree(static_cast<CallStmt&>(s).call, fn);
      break;
  }
}

/// Visits every owned StmtPtr slot (children first), allowing replacement.
void rewriteStmtSlots(StmtPtr& s, const std::function<void(StmtPtr&)>& fn) {
  switch (s->kind) {
    case StmtKind::Block:
      for (auto& st : static_cast<BlockStmt&>(*s).stmts) rewriteStmtSlots(st, fn);
      break;
    case StmtKind::If: {
      auto& i = static_cast<IfStmt&>(*s);
      rewriteStmtSlots(i.thenBody, fn);
      if (i.elseBody) rewriteStmtSlots(i.elseBody, fn);
      break;
    }
    case StmtKind::For:
      rewriteStmtSlots(static_cast<ForStmt&>(*s).body, fn);
      break;
    default:
      break;
  }
  fn(s);
}

/// Substitutes references to `decl` with clones of `replacement`.
void substituteVar(Stmt& root, const VarDecl* decl, const Expr& replacement) {
  rewriteExprsInStmt(root, [&](ExprPtr& e) {
    if (e->kind == ExprKind::VarRef && static_cast<VarRefExpr&>(*e).decl == decl) {
      ExprPtr r = replacement.clone();
      r->loc = e->loc;
      e = std::move(r);
    }
  });
}

/// Re-runs semantic analysis after a structural change; a transform bug that
/// produces un-analyzable code surfaces here.
bool reanalyze(Module& m, DiagEngine& diags, const char* afterWhat) {
  if (!analyze(m, diags)) {
    diags.error({}, fmt("internal: module failed re-analysis after %0", afterWhat));
    return false;
  }
  return true;
}

int64_t tripCount(const ForStmt& f) {
  auto b = evalConstant(*f.begin);
  auto e = evalConstant(*f.end);
  if (!b || !e || *e <= *b) return -1;
  return (*e - *b + f.step - 1) / f.step;
}

} // namespace

// --- constant folding --------------------------------------------------------

int constantFold(Module& m, DiagEngine& diags) {
  int folds = 0;
  for (auto& fn : m.functions) {
    StmtPtr bodyHolder(fn.body.release());
    // Fold expressions.
    rewriteExprsInStmt(*bodyHolder, [&](ExprPtr& e) {
      if (e->kind == ExprKind::IntLit) return;
      // Keep lvalue-ish positions intact.
      if (e->kind == ExprKind::VarRef || e->kind == ExprKind::ArrayRef || e->kind == ExprKind::Call) return;
      if (auto v = evalConstant(*e)) {
        auto lit = std::make_unique<IntLitExpr>(Value::fromInt(e->type, *v).toInt());
        lit->loc = e->loc;
        lit->type = e->type;
        e = std::move(lit);
        ++folds;
      }
    });
    // Prune constant if-statements.
    rewriteStmtSlots(bodyHolder, [&](StmtPtr& s) {
      if (s->kind != StmtKind::If) return;
      auto& i = static_cast<IfStmt&>(*s);
      auto c = evalConstant(*i.cond);
      if (!c) return;
      ++folds;
      if (*c != 0) {
        s = std::move(i.thenBody);
      } else if (i.elseBody) {
        s = std::move(i.elseBody);
      } else {
        s = std::make_unique<BlockStmt>();
      }
    });
    if (bodyHolder->kind == StmtKind::Block) {
      fn.body.reset(static_cast<BlockStmt*>(bodyHolder.release()));
    } else {
      auto blk = std::make_unique<BlockStmt>();
      blk->stmts.push_back(std::move(bodyHolder));
      fn.body = std::move(blk);
    }
  }
  if (folds) reanalyze(m, diags, "constant folding");
  return folds;
}

// --- unrolling ----------------------------------------------------------------

namespace {

/// Builds the fully unrolled replacement for `f`; returns nullptr when the
/// loop is not unrollable within `maxTrip`.
StmtPtr buildFullUnroll(const ForStmt& f, int64_t maxTrip) {
  auto b = evalConstant(*f.begin);
  auto e = evalConstant(*f.end);
  if (!b || !e) return nullptr;
  const int64_t trips = tripCount(f);
  if (trips < 0 || trips > maxTrip) return nullptr;
  budgetChargeUnroll(trips, "full-unroll");
  auto block = std::make_unique<BlockStmt>();
  block->loc = f.loc;
  for (int64_t iv = *b; iv < *e; iv += f.step) {
    budgetCheckpoint("full-unroll");
    StmtPtr copy = f.body->clone();
    IntLitExpr lit(iv);
    lit.type = ScalarType::intTy();
    substituteVar(*copy, f.inductionDecl, lit);
    block->stmts.push_back(std::move(copy));
  }
  return block;
}

} // namespace

int fullyUnrollLoops(Module& m, Function& fn, DiagEngine& diags, int64_t maxTrip) {
  int unrolled = 0;
  StmtPtr bodyHolder(fn.body.release());
  // Children-first slot rewriting unrolls inner loops before outer ones.
  rewriteStmtSlots(bodyHolder, [&](StmtPtr& s) {
    if (s->kind != StmtKind::For) return;
    auto& f = static_cast<ForStmt&>(*s);
    if (StmtPtr repl = buildFullUnroll(f, maxTrip)) {
      s = std::move(repl);
      ++unrolled;
    }
  });
  assert(bodyHolder->kind == StmtKind::Block);
  fn.body.reset(static_cast<BlockStmt*>(bodyHolder.release()));
  if (unrolled) reanalyze(m, diags, "full unrolling");
  return unrolled;
}

namespace {

/// True when the loop's induction variable appears inside an array index —
/// such loops belong to the streaming nest (the smart buffer walks them);
/// only per-element compute loops (bit scans, digit recurrences) unroll.
bool inductionDrivesArrayAccess(const ForStmt& f) {
  bool drives = false;
  forEachStmt(*f.body, [&](const Stmt& s) {
    auto checkIndices = [&](const std::vector<ExprPtr>& indices) {
      for (const auto& idx : indices) {
        forEachExpr(*idx, [&](const Expr& e) {
          if (e.kind == ExprKind::VarRef && static_cast<const VarRefExpr&>(e).decl == f.inductionDecl) {
            drives = true;
          }
        });
      }
    };
    forEachExprInStmt(s, [&](const Expr& e) {
      if (e.kind == ExprKind::ArrayRef) checkIndices(static_cast<const ArrayRefExpr&>(e).indices);
    });
    if (s.kind == StmtKind::Assign) {
      checkIndices(static_cast<const AssignStmt&>(s).target.indices);
    }
  });
  return drives;
}

} // namespace

int fullyUnrollInnerLoops(Module& m, Function& fn, DiagEngine& diags, int64_t maxTrip) {
  int unrolled = 0;
  // Walk top-level statements; for each top-level loop, unroll every loop
  // strictly inside its body whose induction variable stays out of array
  // subscripts (loops that index arrays are the streaming nest itself).
  for (auto& s : fn.body->stmts) {
    if (s->kind != StmtKind::For) continue;
    auto& outer = static_cast<ForStmt&>(*s);
    rewriteStmtSlots(outer.body, [&](StmtPtr& inner) {
      if (inner->kind != StmtKind::For) return;
      auto& f = static_cast<ForStmt&>(*inner);
      if (inductionDrivesArrayAccess(f)) return;
      if (StmtPtr repl = buildFullUnroll(f, maxTrip)) {
        inner = std::move(repl);
        ++unrolled;
      }
    });
  }
  if (unrolled) reanalyze(m, diags, "inner full unrolling");
  return unrolled;
}

namespace {

/// Finds the innermost loop along the first loop chain; returns the slot so
/// the caller can mutate/replace it.
StmtPtr* findInnermostLoopSlot(StmtPtr& s) {
  if (s->kind == StmtKind::Block) {
    for (auto& st : static_cast<BlockStmt&>(*s).stmts) {
      if (StmtPtr* inner = findInnermostLoopSlot(st)) return inner;
    }
    return nullptr;
  }
  if (s->kind == StmtKind::For) {
    auto& f = static_cast<ForStmt&>(*s);
    if (StmtPtr* inner = findInnermostLoopSlot(f.body)) return inner;
    return &s;
  }
  return nullptr;
}

} // namespace

bool unrollInnerLoop(Module& m, Function& fn, int factor, DiagEngine& diags) {
  if (factor < 2) return true;
  StmtPtr bodyHolder(fn.body.release());
  StmtPtr* slot = findInnermostLoopSlot(bodyHolder);
  bool ok = false;
  if (!slot) {
    diags.error(fn.loc, fmt("'%0' has no loop to unroll", fn.name));
  } else {
    auto& f = static_cast<ForStmt&>(**slot);
    const int64_t trips = tripCount(f);
    if (trips < 0 || trips % factor != 0) {
      diags.error(f.loc, fmt("trip count %0 is not divisible by unroll factor %1", trips, factor));
    } else {
      budgetChargeUnroll(factor, "partial-unroll");
      auto newBody = std::make_unique<BlockStmt>();
      newBody->loc = f.body->loc;
      for (int k = 0; k < factor; ++k) {
        budgetCheckpoint("partial-unroll");
        StmtPtr copy = f.body->clone();
        if (k > 0) {
          // iv := iv + k*step
          auto ivRef = std::make_unique<VarRefExpr>(f.inductionVar);
          auto sum = std::make_unique<BinaryExpr>(BinOp::Add, std::move(ivRef),
                                                  std::make_unique<IntLitExpr>(k * f.step));
          substituteVar(*copy, f.inductionDecl, *sum);
        }
        newBody->stmts.push_back(std::move(copy));
      }
      f.body = std::move(newBody);
      f.step *= factor;
      ok = true;
    }
  }
  assert(bodyHolder->kind == StmtKind::Block);
  fn.body.reset(static_cast<BlockStmt*>(bodyHolder.release()));
  if (ok) ok = reanalyze(m, diags, "partial unrolling");
  return ok;
}

bool stripMineInnerLoop(Module& m, Function& fn, int64_t blockSize, DiagEngine& diags) {
  if (blockSize < 2) return true;
  StmtPtr bodyHolder(fn.body.release());
  StmtPtr* slot = findInnermostLoopSlot(bodyHolder);
  bool ok = false;
  if (!slot) {
    diags.error(fn.loc, fmt("'%0' has no loop to strip-mine", fn.name));
  } else {
    auto& f = static_cast<ForStmt&>(**slot);
    const int64_t trips = tripCount(f);
    if (trips < 0 || trips % blockSize != 0) {
      diags.error(f.loc, fmt("trip count %0 is not divisible by block size %1", trips, blockSize));
    } else {
      const std::string outerIv = f.inductionVar + "_blk";
      auto inner = std::make_unique<ForStmt>();
      inner->loc = f.loc;
      inner->inductionVar = f.inductionVar;
      inner->begin = std::make_unique<VarRefExpr>(outerIv);
      inner->end = std::make_unique<BinaryExpr>(BinOp::Add, std::make_unique<VarRefExpr>(outerIv),
                                                std::make_unique<IntLitExpr>(blockSize * f.step));
      inner->step = f.step;
      inner->body = std::move(f.body);

      auto outer = std::make_unique<ForStmt>();
      outer->loc = f.loc;
      outer->inductionVar = outerIv;
      outer->begin = std::move(f.begin);
      outer->end = std::move(f.end);
      outer->step = f.step * blockSize;
      auto outerBody = std::make_unique<BlockStmt>();
      outerBody->stmts.push_back(std::move(inner));
      outer->body = std::move(outerBody);
      *slot = std::move(outer);
      ok = true;
    }
  }
  assert(bodyHolder->kind == StmtKind::Block);
  fn.body.reset(static_cast<BlockStmt*>(bodyHolder.release()));
  if (ok) ok = reanalyze(m, diags, "strip-mining");
  return ok;
}

// --- fusion ---------------------------------------------------------------------

namespace {

/// Scalars (declared outside the loop) written by the loop body.
std::set<const VarDecl*> scalarsWritten(const Stmt& s) {
  std::set<const VarDecl*> out;
  forEachStmt(s, [&](const Stmt& st) {
    if (st.kind == StmtKind::Assign) {
      const auto& a = static_cast<const AssignStmt&>(st);
      if (a.target.kind == LValue::Kind::Var && a.target.decl) out.insert(a.target.decl);
    }
    if (st.kind == StmtKind::CallStmt) {
      const auto& c = static_cast<const CallExpr&>(*static_cast<const CallStmt&>(st).call);
      if (c.callee == intrinsics::kStoreNext && !c.args.empty() && c.args[0]->kind == ExprKind::VarRef) {
        out.insert(static_cast<const VarRefExpr&>(*c.args[0]).decl);
      }
    }
  });
  return out;
}

std::set<const VarDecl*> scalarsRead(const Stmt& s) {
  std::set<const VarDecl*> out;
  forEachExprInStmt(s, [&](const Expr& e) {
    if (e.kind == ExprKind::VarRef && static_cast<const VarRefExpr&>(e).decl) {
      out.insert(static_cast<const VarRefExpr&>(e).decl);
    }
  });
  return out;
}

bool sameHeader(const ForStmt& a, const ForStmt& b) {
  return a.inductionVar == b.inductionVar && a.step == b.step &&
         printExpr(*a.begin) == printExpr(*b.begin) && printExpr(*a.end) == printExpr(*b.end);
}

} // namespace

int fuseAdjacentLoops(Module& m, Function& fn, DiagEngine& diags) {
  int fused = 0;
  auto& stmts = fn.body->stmts;
  for (size_t i = 0; i + 1 < stmts.size();) {
    if (stmts[i]->kind == StmtKind::For && stmts[i + 1]->kind == StmtKind::For) {
      auto& f1 = static_cast<ForStmt&>(*stmts[i]);
      auto& f2 = static_cast<ForStmt&>(*stmts[i + 1]);
      if (sameHeader(f1, f2)) {
        // Dependence check: loop 2 must not read a scalar loop 1 writes
        // (array-mediated dependences cannot occur: output arrays are
        // write-only in the subset).
        const auto w1 = scalarsWritten(*f1.body);
        const auto r2 = scalarsRead(*f2.body);
        bool dependent = false;
        for (const VarDecl* d : w1) {
          if (d != f1.inductionDecl && r2.count(d)) dependent = true;
        }
        if (!dependent) {
          auto merged = std::make_unique<BlockStmt>();
          merged->stmts.push_back(std::move(f1.body));
          merged->stmts.push_back(std::move(f2.body));
          f1.body = std::move(merged);
          stmts.erase(stmts.begin() + static_cast<long>(i) + 1);
          ++fused;
          continue; // try fusing the next loop into the same one
        }
      }
    }
    ++i;
  }
  if (fused) reanalyze(m, diags, "loop fusion");
  return fused;
}

// --- inlining ----------------------------------------------------------------------

namespace {

/// Expands one call statement in place; returns the replacement block.
/// `inlineCounter` is owned by the calling inlineCalls invocation — a
/// per-module counter, not a global, so concurrent compiles never share
/// naming state and the fresh names are deterministic per job.
StmtPtr buildInlinedBody(const Function& callee, const CallExpr& call, DiagEngine& diags,
                         int& inlineCounter) {
  const int id = inlineCounter++;
  auto block = std::make_unique<BlockStmt>();
  block->loc = call.loc;

  // Fresh names for every parameter.
  std::vector<std::string> newNames;
  for (const auto& p : callee.params) {
    newNames.push_back(fmt("%0_%1_i%2", callee.name, p.name, id));
  }

  // In-params: declare and bind to argument expressions. Out-params:
  // declare a temp, copy back after the body.
  for (size_t i = 0; i < callee.params.size(); ++i) {
    const VarDecl& p = callee.params[i];
    auto d = std::make_unique<DeclStmt>();
    d->loc = call.loc;
    d->var.name = newNames[i];
    d->var.type = p.type;
    d->var.storage = Storage::Local;
    if (p.mode == ParamMode::In) d->init = call.args[i]->clone();
    block->stmts.push_back(std::move(d));
  }

  // Clone and rewrite the body.
  StmtPtr body = callee.body->clone();
  bool failed = false;
  // Return as the trailing statement is dropped; anywhere else is an error.
  rewriteStmtSlots(body, [&](StmtPtr& s) {
    if (s->kind != StmtKind::Return) return;
    s = std::make_unique<BlockStmt>(); // empty; legality checked below
  });
  // (A return in the middle of a callee would change behavior. The subset
  // only allows trailing returns, which sema-checked code satisfies; a
  // non-trailing return would have dead code after it — flag via diags if
  // we ever see residue. Conservatively we accept the pattern.)
  for (size_t i = 0; i < callee.params.size(); ++i) {
    const VarDecl* pd = &callee.params[i];
    // VarRef substitution.
    rewriteExprsInStmt(*body, [&](ExprPtr& e) {
      if (e->kind == ExprKind::VarRef && static_cast<VarRefExpr&>(*e).decl == pd) {
        static_cast<VarRefExpr&>(*e).name = newNames[i];
        static_cast<VarRefExpr&>(*e).decl = nullptr;
      }
    });
    // LValue substitution: '*out = v' becomes 'tmp = v'.
    forEachStmt(*body, [&](const Stmt& cs) {
      auto& st = const_cast<Stmt&>(cs);
      if (st.kind == StmtKind::Assign) {
        auto& a = static_cast<AssignStmt&>(st);
        if (a.target.decl == pd) {
          a.target.name = newNames[i];
          a.target.decl = nullptr;
          if (a.target.kind == LValue::Kind::Deref) a.target.kind = LValue::Kind::Var;
        }
      }
    });
  }
  block->stmts.push_back(std::move(body));

  // Copy out-params back to the caller's variables.
  for (size_t i = 0; i < callee.params.size(); ++i) {
    const VarDecl& p = callee.params[i];
    if (p.type.isArray() || p.mode != ParamMode::Out) continue;
    if (call.args[i]->kind != ExprKind::VarRef) {
      diags.error(call.loc, fmt("cannot inline '%0': out-argument %1 is not a variable", callee.name, i));
      failed = true;
      continue;
    }
    const auto& argVar = static_cast<const VarRefExpr&>(*call.args[i]);
    auto a = std::make_unique<AssignStmt>();
    a->loc = call.loc;
    // When the out-argument is itself an out-parameter of the *enclosing*
    // function, the copy-back must write through it ('*r = tmp').
    const bool targetIsOutParam = argVar.decl && !argVar.decl->type.isArray() &&
                                  argVar.decl->storage == Storage::Param &&
                                  argVar.decl->mode == ParamMode::Out;
    a->target.kind = targetIsOutParam ? LValue::Kind::Deref : LValue::Kind::Var;
    a->target.name = argVar.name;
    // Keep the resolved decl: a later inlining round may need to rewrite
    // this target again (nested inlining) before re-analysis runs.
    a->target.decl = argVar.decl;
    a->value = std::make_unique<VarRefExpr>(newNames[i]);
    block->stmts.push_back(std::move(a));
  }
  if (failed) return nullptr;
  return block;
}

} // namespace

int inlineCalls(Module& m, DiagEngine& diags) {
  faultpoint("hlir.inline");
  int inlined = 0;
  int inlineCounter = 0;
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 32) { // depth bound; recursion is sema-rejected
    budgetCheckpoint("inline");
    changed = false;
    for (auto& fn : m.functions) {
      StmtPtr bodyHolder(fn.body.release());
      rewriteStmtSlots(bodyHolder, [&](StmtPtr& s) {
        if (s->kind != StmtKind::CallStmt) return;
        const auto& call = static_cast<const CallExpr&>(*static_cast<CallStmt&>(*s).call);
        if (intrinsics::isIntrinsic(call.callee)) return;
        const Function* callee = m.findFunction(call.callee);
        if (!callee || callee == &fn) return;
        if (StmtPtr repl = buildInlinedBody(*callee, call, diags, inlineCounter)) {
          s = std::move(repl);
          ++inlined;
          changed = true;
        }
      });
      assert(bodyHolder->kind == StmtKind::Block);
      fn.body.reset(static_cast<BlockStmt*>(bodyHolder.release()));
    }
  }
  if (inlined) reanalyze(m, diags, "call inlining");
  return inlined;
}

// --- call -> lookup table -----------------------------------------------------------

namespace {

/// True if the function is a pure scalar map: one scalar in, one scalar out,
/// no arrays, no globals, no intrinsics, no calls.
bool isPureUnaryFn(const Module& m, const Function& f) {
  if (f.params.size() != 2) return false;
  const VarDecl& in = f.params[0];
  const VarDecl& out = f.params[1];
  if (in.type.isArray() || in.mode != ParamMode::In) return false;
  if (out.type.isArray() || out.mode != ParamMode::Out) return false;
  bool pure = true;
  forEachExprInStmt(*f.body, [&](const Expr& e) {
    if (e.kind == ExprKind::ArrayRef || e.kind == ExprKind::Call) pure = false;
    if (e.kind == ExprKind::VarRef) {
      const auto* d = static_cast<const VarRefExpr&>(e).decl;
      if (d && d->storage == Storage::Global) pure = false;
    }
  });
  (void)m;
  return pure;
}

} // namespace

int convertCallsToLookupTables(Module& m, DiagEngine& diags, int maxIndexBits) {
  faultpoint("hlir.lut-convert");
  int converted = 0;
  std::set<std::string> tablesBuilt;
  for (auto& fn : m.functions) {
    StmtPtr bodyHolder(fn.body.release());
    rewriteStmtSlots(bodyHolder, [&](StmtPtr& s) {
      if (s->kind != StmtKind::CallStmt) return;
      auto& call = static_cast<CallExpr&>(*static_cast<CallStmt&>(*s).call);
      if (intrinsics::isIntrinsic(call.callee)) return;
      const Function* callee = m.findFunction(call.callee);
      if (!callee || !isPureUnaryFn(m, *callee)) return;
      const ScalarType inTy = callee->params[0].type.scalar;
      const ScalarType outTy = callee->params[1].type.scalar;
      if (inTy.width > maxIndexBits) return;
      if (call.args[1]->kind != ExprKind::VarRef) return;

      const std::string tableName = call.callee + "_lut";
      if (!tablesBuilt.count(tableName)) {
        // Evaluate the callee over the entire input domain. The table is
        // indexed by the *raw bit pattern* so signed inputs work: index =
        // (uintW)x.
        const int64_t entries = int64_t{1} << inTy.width;
        VarDecl table;
        table.name = tableName;
        table.type = Type::arrayOf(outTy, {entries});
        table.storage = Storage::Global;
        table.isConst = true;
        table.loc = call.loc;
        interp::Interpreter evaluator(m);
        for (int64_t raw = 0; raw < entries; ++raw) {
          interp::KernelIO io;
          io.scalars[callee->params[0].name] = Value(inTy, static_cast<uint64_t>(raw)).toInt();
          const interp::KernelIO r = evaluator.run(call.callee, io);
          table.init.push_back(r.scalars.at(callee->params[1].name));
        }
        m.globals.push_back(std::move(table));
        tablesBuilt.insert(tableName);
      }

      // Replacement: out = ROCCC_lookup(table, (uintW) input).
      auto a = std::make_unique<AssignStmt>();
      a->loc = call.loc;
      a->target.kind = LValue::Kind::Var;
      a->target.name = static_cast<const VarRefExpr&>(*call.args[1]).name;
      auto lut = std::make_unique<CallExpr>();
      lut->callee = intrinsics::kLookup;
      lut->loc = call.loc;
      lut->args.push_back(std::make_unique<VarRefExpr>(tableName));
      lut->args.push_back(std::make_unique<CastExpr>(ScalarType::make(inTy.width, false),
                                                     call.args[0]->clone(), /*implicit=*/false));
      a->value = std::move(lut);
      s = std::move(a);
      ++converted;
    });
    assert(bodyHolder->kind == StmtKind::Block);
    fn.body.reset(static_cast<BlockStmt*>(bodyHolder.release()));
  }
  if (converted) reanalyze(m, diags, "lookup-table conversion");
  return converted;
}

// --- compile-time area estimation -----------------------------------------------------

int64_t AreaEstimate::estimatedSlices() const {
  // Virtex-II ballpark for 32-bit operators: ripple adder ~16 slices,
  // LUT-based multiplier ~300, divider array ~500, comparator ~9, logic ~8.
  return int64_t{16} * adders + 300 * multipliers + 500 * dividers + 9 * comparators +
         8 * logicOps + 64 * luts;
}

AreaEstimate estimateArea(const Function& fn) {
  AreaEstimate est;
  forEachExprInStmt(*fn.body, [&](const Expr& e) {
    switch (e.kind) {
      case ExprKind::Binary: {
        const auto op = static_cast<const BinaryExpr&>(e).op;
        switch (op) {
          case BinOp::Add:
          case BinOp::Sub: ++est.adders; break;
          case BinOp::Mul: ++est.multipliers; break;
          case BinOp::Div:
          case BinOp::Rem: ++est.dividers; break;
          case BinOp::Eq:
          case BinOp::Ne:
          case BinOp::Lt:
          case BinOp::Le:
          case BinOp::Gt:
          case BinOp::Ge: ++est.comparators; break;
          default: ++est.logicOps; break;
        }
        break;
      }
      case ExprKind::Unary:
        ++est.logicOps;
        break;
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(e);
        if (c.callee == intrinsics::kCos || c.callee == intrinsics::kSin ||
            c.callee == intrinsics::kLookup) {
          ++est.luts;
        }
        break;
      }
      default:
        break;
    }
  });
  return est;
}

int chooseUnrollFactor(const Function& fn, int64_t tripCount, int64_t sliceBudget) {
  const int64_t base = std::max<int64_t>(1, estimateArea(fn).estimatedSlices());
  int factor = 1;
  while (factor * 2 <= tripCount && tripCount % (factor * 2) == 0 && base * factor * 2 <= sliceBudget) {
    factor *= 2;
  }
  return factor;
}

} // namespace roccc::hlir
