// Small string / container helpers used across the compiler.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace roccc {

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// True if `s` starts with / ends with the given affix.
bool startsWith(const std::string& s, const std::string& prefix);
bool endsWith(const std::string& s, const std::string& suffix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replaceAll(std::string s, const std::string& from, const std::string& to);

/// printf-free formatting: fmt("x=%0 y=%1", a, b) substitutes %0, %1, ...
/// via operator<<. Unmatched placeholders are left intact.
template <typename... Args>
std::string fmt(const std::string& pattern, const Args&... args) {
  std::vector<std::string> rendered;
  (rendered.push_back([&] {
    std::ostringstream os;
    os << args;
    return os.str();
  }()),
   ...);
  std::string out;
  out.reserve(pattern.size());
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] == '%' && i + 1 < pattern.size() && pattern[i + 1] >= '0' && pattern[i + 1] <= '9') {
      const size_t idx = static_cast<size_t>(pattern[i + 1] - '0');
      if (idx < rendered.size()) {
        out += rendered[idx];
        ++i;
        continue;
      }
    }
    out += pattern[i];
  }
  return out;
}

/// Writes indented lines; used by all the text emitters (AST printer, VHDL).
class IndentWriter {
 public:
  explicit IndentWriter(int spacesPerLevel = 2) : spaces_(spacesPerLevel) {}

  void indent() { ++level_; }
  void dedent() {
    if (level_ > 0) --level_;
  }

  /// Appends one full line at the current indent level.
  void line(const std::string& text);
  /// Appends a blank line.
  void blank() { out_ += '\n'; }

  const std::string& str() const { return out_; }

 private:
  int spaces_;
  int level_ = 0;
  std::string out_;
};

} // namespace roccc
