// The "Graph Editor + Annotation" box of the paper's Fig 1: the generated
// data path can be exported for inspection and hand-annotated before VHDL
// generation — expert users override inferred signal widths (the paper's
// "more aggressive bit narrowing, performed by users") or move operations
// between pipeline stages.
#pragma once

#include <map>
#include <string>

#include "dp/datapath.hpp"
#include "support/diag.hpp"

namespace roccc::dp {

/// Serializes the data path (nodes, ops, values, stages, widths, ports,
/// feedback registers) as JSON for external graph editors.
std::string exportJson(const DataPath& dp);

/// Hand annotations applied on top of the automatic result.
struct Annotations {
  /// Override a value's hardware width by (debug) name. Narrowing below the
  /// inferred requirement is accepted with a warning — it changes
  /// semantics, exactly like a hand edit of the VHDL would.
  std::map<std::string, int> forceWidth;
  /// Pin an op (by index) to a pipeline stage. Stages of dependent ops are
  /// repaired forward to keep definitions before uses.
  std::map<int, int> forceStage;
};

/// Applies annotations in place, repairs stage monotonicity, and recomputes
/// the statistics. Returns false (with diagnostics) on unknown names/ops.
/// Rebuild the RTL module (rtl::buildDatapathModule) afterwards.
bool applyAnnotations(DataPath& dp, const Annotations& a, DiagEngine& diags);

} // namespace roccc::dp
