// The sweep engine must never recommend a configuration that miscompiles:
// every Pareto-optimal point of the acceptance grid (all nine Table 1
// kernels x unroll {1,2,4} x two stage-delay targets) is re-verified
// through the 5-way differential conformance engine — AST interpreter,
// MIR executor, data-path evaluator, reference netlist, FastSim — and its
// interpreter-derived system testbench must pass.
#include <gtest/gtest.h>

#include "../bench/kernels.hpp"
#include "roccc/explore.hpp"

namespace roccc {
namespace {

SweepGrid acceptanceGrid() {
  SweepGrid grid;
  for (const auto& k : bench::kTable1Kernels) {
    grid.kernels.push_back({k.name, k.source, k.targetStageDelayNs});
  }
  grid.unrolls = {1, 2, 4};
  grid.targetNs = {0, 8.0}; // per-kernel default + one common relaxed target
  return grid;
}

TEST(ExploreConformance, EveryParetoPointPassesFiveWayConformance) {
  const SweepResult sweep = runSweep(acceptanceGrid(), SweepOptions{});
  EXPECT_EQ(sweep.failedCount(), 0) << sweep.outcomeSummary();
  ASSERT_EQ(sweep.frontiers.size(), std::size(bench::kTable1Kernels));
  for (const auto& f : sweep.frontiers) {
    EXPECT_FALSE(f.points.empty()) << f.kernel;
  }

  VerifyOptions opt;
  opt.checkTestbench = true;
  const VerifyReport report = verifyFrontier(sweep, opt);
  // One verdict per frontier point, labeled by the point.
  size_t frontierPoints = 0;
  for (const auto& f : sweep.frontiers) frontierPoints += f.points.size();
  ASSERT_EQ(report.verdicts.size(), frontierPoints);
  EXPECT_EQ(report.compileFailures(), 0);
  EXPECT_TRUE(report.allAgree()) << report.summary();
  for (const auto& v : report.verdicts) {
    EXPECT_TRUE(v.agree) << v.kernel;
    EXPECT_TRUE(v.testbenchPassed) << v.kernel;
    EXPECT_NE(v.kernel.find('@'), std::string::npos)
        << "verdicts must be labeled by sweep point, got '" << v.kernel << "'";
  }
}

TEST(ExploreConformance, FrontierVerdictsSurviveReportRoundTrip) {
  // A one-kernel sweep: the report JSON must carry the frontier labels the
  // conformance verdicts use, so a failing point is traceable end to end.
  SweepGrid grid;
  const auto& fir = bench::kTable1Kernels[6];
  ASSERT_STREQ(fir.name, "fir");
  grid.kernels.push_back({fir.name, fir.source, fir.targetStageDelayNs});
  grid.unrolls = {1, 2};
  const SweepResult sweep = runSweep(grid, SweepOptions{});
  const VerifyReport report = verifyFrontier(sweep, VerifyOptions{});
  ASSERT_FALSE(report.verdicts.empty());
  const std::string json = sweep.toJson();
  for (const auto& v : report.verdicts) {
    EXPECT_NE(json.find("\"" + v.kernel + "\""), std::string::npos) << v.kernel;
  }
}

} // namespace
} // namespace roccc
