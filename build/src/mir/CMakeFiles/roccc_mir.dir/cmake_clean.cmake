file(REMOVE_RECURSE
  "CMakeFiles/roccc_mir.dir/exec.cpp.o"
  "CMakeFiles/roccc_mir.dir/exec.cpp.o.d"
  "CMakeFiles/roccc_mir.dir/ir.cpp.o"
  "CMakeFiles/roccc_mir.dir/ir.cpp.o.d"
  "CMakeFiles/roccc_mir.dir/lower.cpp.o"
  "CMakeFiles/roccc_mir.dir/lower.cpp.o.d"
  "CMakeFiles/roccc_mir.dir/passes.cpp.o"
  "CMakeFiles/roccc_mir.dir/passes.cpp.o.d"
  "CMakeFiles/roccc_mir.dir/ssa.cpp.o"
  "CMakeFiles/roccc_mir.dir/ssa.cpp.o.d"
  "libroccc_mir.a"
  "libroccc_mir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roccc_mir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
