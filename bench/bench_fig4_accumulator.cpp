// Reproduces Figure 4: the accumulator, before and after feedback-variable
// detection. The compiler discovers that 'sum' carries across iterations
// and annotates the data-path function with ROCCC_load_prev /
// ROCCC_store2next.
#include <cstdio>

#include "frontend/ast.hpp"
#include "roccc/compiler.hpp"

static const char* kAccumulator = R"(
int sum = 0;
void acc(const int32 A[32], int32* out) {
  int i;
  for (i = 0; i < 32; i++) {
    sum = sum + A[i];
  }
  *out = sum;
}
)";

int main() {
  using namespace roccc;
  Compiler c;
  const CompileResult r = c.compileSource(kAccumulator);
  if (!r.ok) {
    std::fprintf(stderr, "%s\n", r.diags.dump().c_str());
    return 1;
  }

  std::printf("Figure 4 (a) - accumulator in original C:\n%s\n", kAccumulator);
  std::printf("Figure 4 (c) - after feedback detection, the data-path function with the\n"
              "preserved macros (converted to LPR/SNX opcodes in the back end):\n\n%s\n",
              ast::printFunction(r.kernel.dpFunction()).c_str());
  const auto& fb = r.kernel.feedbacks.at(0);
  std::printf("Detected feedback variable: '%s' (%s), initial value %lld, exported to '%s'\n",
              fb.name.c_str(), fb.type.str().c_str(), static_cast<long long>(fb.initial),
              fb.exportedTo.c_str());

  // Show the LPR/SNX opcodes surviving into MIR.
  std::printf("\nBack-end MIR (excerpt showing lpr/snx):\n");
  const std::string mir = r.mir.dump();
  size_t pos = 0;
  int lines = 0;
  while (pos < mir.size() && lines < 40) {
    const size_t nl = mir.find('\n', pos);
    const std::string line = mir.substr(pos, nl - pos);
    if (line.find("lpr") != std::string::npos || line.find("snx") != std::string::npos ||
        line.find("func") != std::string::npos || line.find("feedback") != std::string::npos) {
      std::printf("  %s\n", line.c_str());
      ++lines;
    }
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }

  // Functional check.
  interp::KernelIO in;
  long long expect = 0;
  for (int i = 0; i < 32; ++i) {
    in.arrays["A"].push_back(i * 3 - 20);
    expect += i * 3 - 20;
  }
  const auto rep = cosimulate(r, kAccumulator, in);
  std::printf("\nCosimulation: hardware sum = %lld, software sum = %lld (%s)\n",
              static_cast<long long>(rep.hardware.scalars.at("out")),
              static_cast<long long>(rep.software.scalars.at("out")),
              rep.match ? "MATCH" : "MISMATCH");
  return rep.match ? 0 : 1;
}
