file(REMOVE_RECURSE
  "CMakeFiles/roccc_interp.dir/interp.cpp.o"
  "CMakeFiles/roccc_interp.dir/interp.cpp.o.d"
  "libroccc_interp.a"
  "libroccc_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roccc_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
