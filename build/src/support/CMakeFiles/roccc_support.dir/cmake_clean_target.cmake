file(REMOVE_RECURSE
  "libroccc_support.a"
)
