// Synthesis estimation for Xilinx Virtex-II (xc2v2000, speed grade -5) —
// the substitution for ISE 5.1i in the paper's evaluation. Maps RTL cells
// onto the device's resources (4-input LUTs packed two per slice, dedicated
// carry chains, MULT18X18 blocks, SRL16 shift registers, block RAM) and
// estimates the register-to-register critical path to report clock rate
// (MHz) and area (slices) — the two columns of Table 1.
//
// Absolute numbers are a structural model, not a place-and-route result;
// they are calibrated to the same order of magnitude as ISE 5.1i on -5
// silicon so that the paper's *relative* results (who is smaller/faster and
// by how much) reproduce.
#pragma once

#include <string>

#include "rtl/netlist.hpp"
#include "synth/timing.hpp"

namespace roccc::synth {

struct Resources {
  int64_t lut4 = 0;
  int64_t ff = 0;
  int64_t mult18 = 0;
  int64_t bram = 0;
  int64_t srl16 = 0; ///< shift-register LUTs (counted into slices like LUT4s)

  Resources& operator+=(const Resources& o);
};

struct EstimateOptions {
  /// Variable-input multipliers: true uses MULT18X18 blocks, false builds
  /// LUT-fabric array multipliers (ISE "multiplier style").
  bool useMult18 = true;
  /// ROM contents above this many bits go to block RAM instead of
  /// distributed (LUT) ROM.
  int64_t romBramThresholdBits = 16 * 1024;
  /// Clock-to-out + setup overhead added to every register path (ns).
  double clockingOverheadNs = 0.8;
  /// Average routing delay added per cell-to-cell hop (ns).
  double routingPerHopNs = 0.3;
  /// Map register chains (depth >= 3, single fanout, no clock-enable) onto
  /// SRL16 shift-register LUTs the way ISE's map does — a large area win
  /// for deeply pipelined data paths.
  bool inferSrl16 = true;
  /// Timing/energy model the per-cell costs are looked up from; null = the
  /// built-in Virtex-II-class table. The clockingOverheadNs/routingPerHopNs
  /// fields above mirror that table's defaults — callers loading a
  /// --timing-model override should copy the model's scalars here too
  /// (tools/roccc_cc does).
  const TimingModel* timing = nullptr;

  /// Options bound to `model`: timing table plus its clocking/routing
  /// scalars. `model` must outlive the returned options.
  static EstimateOptions forModel(const TimingModel& model) {
    EstimateOptions opt;
    opt.timing = &model;
    opt.clockingOverheadNs = model.clockOverheadNs;
    opt.routingPerHopNs = model.routingPerHopNs;
    return opt;
  }
};

struct Report {
  Resources res;
  int64_t slices = 0;
  double criticalPathNs = 1.0;
  std::string criticalThrough; ///< name of the slowest cell, for reports
  /// Switched energy of one full-activity evaluation of every mapped cell
  /// (pJ), summed from the timing model's per-primitive energy rows; scale
  /// by toggle activity for a per-cycle figure.
  double dynamicPjPerCycle = 0;
  /// Static leakage of the mapped resources (mW).
  double leakageMw = 0;
  double fmaxMHz() const { return 1000.0 / criticalPathNs; }
  /// Energy per cycle at the given activity (pJ): switched energy plus the
  /// leakage burned over one critical-path period (1 mW x 1 ns = 1 pJ).
  double energyPerCyclePj(double activity = 0.25) const {
    return dynamicPjPerCycle * activity + leakageMw * criticalPathNs;
  }
  /// Energy-delay product (pJ x ns) at the critical-path clock — the
  /// bench_table1 efficiency column.
  double edpPjNs(double activity = 0.25) const {
    return energyPerCyclePj(activity) * criticalPathNs;
  }
  std::string summary() const;
};

/// Estimates one module (a data path, or a hand-built IP netlist).
Report estimate(const rtl::Module& m, const EstimateOptions& opt = {});

/// Additional area of the memory-side machinery (address generators, smart
/// buffer storage, controller) for a full engine (the wavelet row of
/// Table 1 includes them). `bufferBits` is total smart-buffer storage.
Resources memorySubsystemResources(int64_t bufferBits, int addressGenerators, int streams);

/// Slice count from packed resources (2 LUT4 + 2 FF per slice; imperfect
/// packing modeled with a fill factor).
int64_t slicesFor(const Resources& r);

/// Dynamic-power estimate (the paper's Fig 1 lists power next to area and
/// delay in the estimation box). A standard activity-based CV^2f model over
/// the mapped resources: per-resource switched capacitance x toggle
/// activity x clock. Returns milliwatts at the given clock and activity
/// factor (0..1, default 0.25 — a typical streaming-datapath value).
double estimatePowerMw(const Resources& r, double clockMHz, double activity = 0.25);

} // namespace roccc::synth
