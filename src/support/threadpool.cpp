#include "support/threadpool.hpp"

#include <algorithm>

namespace roccc {

ThreadPool::ThreadPool(size_t workers, size_t maxQueued)
    : maxQueued_(std::max<size_t>(1, maxQueued)) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  jobReady_.notify_all();
  queueSpace_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  std::packaged_task<void()> task(std::move(job));
  std::future<void> fut = task.get_future();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queueSpace_.wait(lock, [this] { return queue_.size() < maxQueued_ || stopping_; });
    if (stopping_) return {}; // pool shut down under the producer; invalid future
    queue_.push_back(std::move(task));
  }
  jobReady_.notify_one();
  return fut;
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      jobReady_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    queueSpace_.notify_one();
    task(); // exceptions land in the task's future
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

} // namespace roccc
