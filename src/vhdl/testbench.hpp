// VHDL testbench generation: wraps the emitted data-path design in a
// self-checking testbench whose stimulus and expected responses come from
// the cycle-accurate cosimulation. A downstream user can hand the emitted
// design plus this testbench straight to a VHDL simulator and reproduce
// the library's bit-exact verification there.
#pragma once

#include <string>
#include <vector>

#include "dp/datapath.hpp"
#include "support/value.hpp"

namespace roccc::vhdl {

/// One test vector: values for every data-path input port and the expected
/// values on every output port `latency` enabled-cycles later.
struct TestVector {
  std::vector<Value> inputs;
  std::vector<Value> expectedOutputs;
};

/// Emits a self-checking testbench entity `<design>_tb` that drives the
/// top entity with the vectors, pipelines the expectations by the design
/// latency, asserts on mismatch, and reports "TESTBENCH PASSED" on success.
std::string emitTestbench(const dp::DataPath& dp, const std::vector<TestVector>& vectors);

/// Builds vectors by evaluating the data path on the given input sets
/// (feedback registers thread across vectors in order, so the sequence
/// behaves like consecutive loop iterations).
std::vector<TestVector> makeVectors(const dp::DataPath& dp,
                                    const std::vector<std::vector<int64_t>>& inputSets);

} // namespace roccc::vhdl
