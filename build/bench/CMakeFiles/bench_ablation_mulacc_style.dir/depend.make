# Empty dependencies file for bench_ablation_mulacc_style.
# This may be replaced when dependencies are built.
