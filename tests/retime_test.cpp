// Timing-driven register placement (the `retime` pass) end to end: every
// Table 1 and corpus kernel, across unroll factors and loose/tight
// --target-ns budgets, must stay 5-way conformant after retiming, must gain
// stages monotonically as the budget tightens, and must meet the budget
// whenever the model says it is feasible. Plus the ablation/failure knobs:
// retime off, slower model tables, and malformed --timing-model specs.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/kernels.hpp"
#include "roccc/compiler.hpp"
#include "roccc/verify.hpp"
#include "synth/timing.hpp"

namespace roccc {
namespace {

constexpr double kLooseNs = 12.0;
constexpr double kTightNs = 2.0;
constexpr int kUnrolls[] = {1, 2, 4};

struct SourceKernel {
  std::string name;
  std::string source;
};

const std::vector<SourceKernel>& allKernels() {
  static const std::vector<SourceKernel> kernels = [] {
    std::vector<SourceKernel> out;
    for (const auto& k : bench::kTable1Kernels) out.push_back({k.name, k.source});
    std::vector<SourceKernel> corpus;
    for (const auto& entry : std::filesystem::directory_iterator(ROCCC_CORPUS_DIR)) {
      if (entry.path().extension() != ".c") continue;
      std::ifstream in(entry.path());
      std::ostringstream buf;
      buf << in.rdbuf();
      corpus.push_back({entry.path().stem().string(), buf.str()});
    }
    std::sort(corpus.begin(), corpus.end(),
              [](const SourceKernel& a, const SourceKernel& b) { return a.name < b.name; });
    out.insert(out.end(), corpus.begin(), corpus.end());
    return out;
  }();
  return kernels;
}

CompileOptions optionsFor(int unroll, double targetNs) {
  CompileOptions opt;
  opt.unrollFactor = unroll;
  opt.dpOptions.targetStageDelayNs = targetNs;
  return opt;
}

// The full matrix through the 5-engine differential harness: a retimed
// design is held to exactly the same conformance bar as the fixed staging.
TEST(Retime, FiveWayConformanceAcrossUnrollAndTargetMatrix) {
  std::vector<CompileJob> jobs;
  for (const auto& k : allKernels()) {
    for (const int u : kUnrolls) {
      for (const double t : {kLooseNs, kTightNs}) {
        CompileJob job;
        job.name = k.name + "@u" + std::to_string(u) + (t == kTightNs ? "@tight" : "@loose");
        job.source = k.source;
        job.options = optionsFor(u, t);
        jobs.push_back(std::move(job));
      }
    }
  }
  const VerifyReport report = verifyConformance(jobs, VerifyOptions{});
  ASSERT_EQ(report.verdicts.size(), jobs.size());
  for (const auto& v : report.verdicts) {
    EXPECT_EQ(v.outcome, CompileOutcome::Ok) << v.kernel << ": " << v.compileError;
    EXPECT_TRUE(v.agree) << v.kernel << ": "
                         << (v.disagreements.empty() ? "" : v.disagreements.front().detail);
    EXPECT_EQ(v.enginesRun, 5) << v.kernel;
  }
}

// Retimed designs must also pass their emitted self-checking system
// testbenches (the acceptance bar), checked on the full kernel set at the
// tight budget where retiming moves the most registers.
TEST(Retime, TightBudgetDesignsPassSystemTestbenches) {
  std::vector<CompileJob> jobs;
  for (const auto& k : allKernels()) {
    CompileJob job;
    job.name = k.name;
    job.source = k.source;
    job.options = optionsFor(1, kTightNs);
    jobs.push_back(std::move(job));
  }
  VerifyOptions opt;
  opt.checkTestbench = true;
  const VerifyReport report = verifyConformance(jobs, opt);
  for (const auto& v : report.verdicts) {
    EXPECT_EQ(v.outcome, CompileOutcome::Ok) << v.kernel << ": " << v.compileError;
    EXPECT_TRUE(v.agree) << v.kernel;
    EXPECT_TRUE(v.testbenchPassed) << v.kernel;
  }
}

// Tightening the budget can only deepen (or keep) the pipeline, and
// whenever the pass reports a feasible budget the worst stage must fit it.
TEST(Retime, StagesAreMonotoneInBudgetAndFeasibleTargetsAreMet) {
  int deeperAndFaster = 0;
  for (const auto& k : allKernels()) {
    for (const int u : kUnrolls) {
      const CompileResult loose = Compiler(optionsFor(u, kLooseNs)).compileSource(k.source);
      ASSERT_TRUE(loose.ok) << k.name << "@u" << u << "\n" << loose.diags.dump();
      const CompileResult tight = Compiler(optionsFor(u, kTightNs)).compileSource(k.source);
      ASSERT_TRUE(tight.ok) << k.name << "@u" << u << "\n" << tight.diags.dump();

      ASSERT_TRUE(loose.retiming.run);
      ASSERT_TRUE(tight.retiming.run);
      EXPECT_GE(tight.datapath.stageCount, loose.datapath.stageCount) << k.name << "@u" << u;
      for (const auto* r : {&loose.retiming, &tight.retiming}) {
        if (r->feasible) {
          EXPECT_LE(r->worstStageNs, r->targetNs + 1e-9) << k.name << "@u" << u;
        }
        EXPECT_GT(r->fmaxMHz, 0.0) << k.name << "@u" << u;
        EXPECT_EQ(r->stageDelayNs.size(), static_cast<size_t>(r->stagesAfter))
            << k.name << "@u" << u;
      }
      if (tight.datapath.stageCount > loose.datapath.stageCount &&
          tight.retiming.fmaxMHz > loose.retiming.fmaxMHz) {
        ++deeperAndFaster;
      }
    }
  }
  // The acceptance criterion: a tight budget buys deeper pipelines with
  // measurably higher modeled fmax on a healthy share of the matrix.
  EXPECT_GE(deeperAndFaster, 5);
}

// The ablation knob: with retiming disabled the fixed greedy staging still
// conforms, and the pass reports itself as not run.
TEST(Retime, DisabledRetimingStillConforms) {
  std::vector<CompileJob> jobs;
  for (const auto& k : bench::kTable1Kernels) {
    CompileJob job;
    job.name = k.name;
    job.source = k.source;
    job.options.retimePipeline = false;
    if (k.targetStageDelayNs > 0) job.options.dpOptions.targetStageDelayNs = k.targetStageDelayNs;
    jobs.push_back(std::move(job));
  }
  const VerifyReport report = verifyConformance(jobs, VerifyOptions{});
  for (const auto& v : report.verdicts) {
    EXPECT_EQ(v.outcome, CompileOutcome::Ok) << v.kernel << ": " << v.compileError;
    EXPECT_TRUE(v.agree) << v.kernel;
  }
  CompileOptions opt;
  opt.retimePipeline = false;
  const CompileResult r = Compiler(opt).compileSource(bench::kFir);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.retiming.run);
}

// Retiming against a slower device table must deepen the pipeline for the
// same budget — the model, not a constant, decides register placement.
TEST(Retime, SlowerTimingModelDeepensThePipeline) {
  const CompileResult base = Compiler(CompileOptions{}).compileSource(bench::kFir);
  ASSERT_TRUE(base.ok);
  CompileOptions slow;
  slow.timingModelSpec = "model slow-fabric\n"
                         "add 32 3.9 0 32 0\n"
                         "mul-lut 32 7.5 0 563 0\n";
  const CompileResult r = Compiler(slow).compileSource(bench::kFir);
  ASSERT_TRUE(r.ok) << r.diags.dump();
  EXPECT_GT(r.datapath.stageCount, base.datapath.stageCount);
}

// A malformed --timing-model spec fails cleanly inside the retime pass with
// a line-numbered diagnostic, not a crash or a silent fallback.
TEST(Retime, MalformedTimingModelFailsAtTheRetimePass) {
  CompileOptions opt;
  opt.timingModelSpec = "model x\nadd 32 -1 0 0 0\n";
  const CompileResult r = Compiler(opt).compileSource(bench::kFir);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failedPass, "retime");
  EXPECT_NE(r.diags.dump().find("line 2"), std::string::npos) << r.diags.dump();
}

// The retime pass publishes its stage/fmax counters through PassStatistics
// like every other declared pass.
TEST(Retime, PassStatisticsCarryTimingCounters) {
  const CompileResult r = Compiler(CompileOptions{}).compileSource(bench::kFir);
  ASSERT_TRUE(r.ok);
  const PassStatistics* retime = nullptr;
  for (const auto& s : r.passLog) {
    if (s.name == "retime") retime = &s;
  }
  ASSERT_NE(retime, nullptr);
  EXPECT_TRUE(retime->ran);
  bool sawFmax = false, sawStages = false;
  for (const auto& [key, value] : retime->counters) {
    if (key == "fmax-khz") sawFmax = value > 0;
    if (key == "stages-after") sawStages = value >= 0;
  }
  EXPECT_TRUE(sawFmax);
  EXPECT_TRUE(sawStages);
}

} // namespace
} // namespace roccc
