# Empty compiler generated dependencies file for roccc_hlir.
# This may be replaced when dependencies are built.
