#include "frontend/ast.hpp"

#include <sstream>

#include "support/strings.hpp"

namespace roccc::ast {

// ---------------------------------------------------------------------------
// Type
// ---------------------------------------------------------------------------

std::string Type::str() const {
  std::string s = scalar.str();
  for (int64_t d : dims) s += fmt("[%0]", d);
  return s;
}

// ---------------------------------------------------------------------------
// Spellings
// ---------------------------------------------------------------------------

const char* binOpSpelling(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Rem: return "%";
    case BinOp::And: return "&";
    case BinOp::Or: return "|";
    case BinOp::Xor: return "^";
    case BinOp::Shl: return "<<";
    case BinOp::Shr: return ">>";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::LAnd: return "&&";
    case BinOp::LOr: return "||";
  }
  return "?";
}

const char* unOpSpelling(UnOp op) {
  switch (op) {
    case UnOp::Neg: return "-";
    case UnOp::BitNot: return "~";
    case UnOp::LogicalNot: return "!";
  }
  return "?";
}

bool isComparison(BinOp op) {
  switch (op) {
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
    case BinOp::LAnd:
    case BinOp::LOr:
      return true;
    default:
      return false;
  }
}

namespace intrinsics {
bool isIntrinsic(const std::string& name) {
  return name == kLoadPrev || name == kStoreNext || name == kCos || name == kSin ||
         name == kLookup || name == kBitSelect || name == kBitConcat;
}
} // namespace intrinsics

// ---------------------------------------------------------------------------
// clone()
// ---------------------------------------------------------------------------

namespace {
template <typename T>
std::unique_ptr<T> cloneAs(const std::unique_ptr<T>& p) {
  if (!p) return nullptr;
  auto c = p->clone();
  auto* raw = static_cast<T*>(c.release());
  return std::unique_ptr<T>(raw);
}
} // namespace

ExprPtr IntLitExpr::clone() const {
  auto e = std::make_unique<IntLitExpr>(value);
  e->loc = loc;
  e->type = type;
  return e;
}

ExprPtr VarRefExpr::clone() const {
  auto e = std::make_unique<VarRefExpr>(name);
  e->decl = decl;
  e->loc = loc;
  e->type = type;
  return e;
}

ExprPtr ArrayRefExpr::clone() const {
  auto e = std::make_unique<ArrayRefExpr>();
  e->name = name;
  e->decl = decl;
  for (const auto& i : indices) e->indices.push_back(i->clone());
  e->loc = loc;
  e->type = type;
  return e;
}

ExprPtr UnaryExpr::clone() const {
  auto e = std::make_unique<UnaryExpr>(op, operand->clone());
  e->loc = loc;
  e->type = type;
  return e;
}

ExprPtr BinaryExpr::clone() const {
  auto e = std::make_unique<BinaryExpr>(op, lhs->clone(), rhs->clone());
  e->loc = loc;
  e->type = type;
  return e;
}

ExprPtr CastExpr::clone() const {
  auto e = std::make_unique<CastExpr>(type, operand->clone(), isImplicit);
  e->loc = loc;
  return e;
}

ExprPtr CallExpr::clone() const {
  auto e = std::make_unique<CallExpr>();
  e->callee = callee;
  for (const auto& a : args) e->args.push_back(a->clone());
  e->loc = loc;
  e->type = type;
  return e;
}

LValue LValue::clone() const {
  LValue lv;
  lv.kind = kind;
  lv.name = name;
  lv.decl = decl;
  for (const auto& i : indices) lv.indices.push_back(i->clone());
  return lv;
}

StmtPtr BlockStmt::clone() const {
  auto s = std::make_unique<BlockStmt>();
  for (const auto& st : stmts) s->stmts.push_back(st->clone());
  s->loc = loc;
  return s;
}

StmtPtr DeclStmt::clone() const {
  auto s = std::make_unique<DeclStmt>();
  s->var = var;
  s->init = init ? init->clone() : nullptr;
  s->loc = loc;
  return s;
}

StmtPtr AssignStmt::clone() const {
  auto s = std::make_unique<AssignStmt>();
  s->target = target.clone();
  s->value = value->clone();
  s->loc = loc;
  return s;
}

StmtPtr IfStmt::clone() const {
  auto s = std::make_unique<IfStmt>();
  s->cond = cond->clone();
  s->thenBody = thenBody->clone();
  s->elseBody = elseBody ? elseBody->clone() : nullptr;
  s->loc = loc;
  return s;
}

StmtPtr ForStmt::clone() const {
  auto s = std::make_unique<ForStmt>();
  s->inductionVar = inductionVar;
  s->inductionDecl = inductionDecl;
  s->begin = begin->clone();
  s->end = end->clone();
  s->step = step;
  s->body = body->clone();
  s->loc = loc;
  return s;
}

StmtPtr ReturnStmt::clone() const {
  auto s = std::make_unique<ReturnStmt>();
  s->loc = loc;
  return s;
}

StmtPtr CallStmt::clone() const {
  auto s = std::make_unique<CallStmt>();
  s->call = call->clone();
  s->loc = loc;
  return s;
}

Function Function::cloneFn() const {
  Function f;
  f.name = name;
  f.params = params;
  if (body) {
    auto b = body->clone();
    f.body.reset(static_cast<BlockStmt*>(b.release()));
  }
  f.loc = loc;
  return f;
}

const VarDecl* Function::findParam(const std::string& n) const {
  for (const auto& p : params)
    if (p.name == n) return &p;
  return nullptr;
}

Function* Module::findFunction(const std::string& name) {
  for (auto& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

const Function* Module::findFunction(const std::string& name) const {
  for (const auto& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

const VarDecl* Module::findGlobal(const std::string& name) const {
  for (const auto& g : globals)
    if (g.name == name) return &g;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

namespace {

/// C-like rendering of a scalar type: int8/int16/int32 get C names where
/// they exist; everything else uses the intN/uintN aliases the lexer accepts.
std::string cTypeName(ScalarType t) {
  return t.str(); // intN/uintN are valid type names in the subset grammar
}

int precedence(BinOp op) {
  switch (op) {
    case BinOp::Mul:
    case BinOp::Div:
    case BinOp::Rem: return 10;
    case BinOp::Add:
    case BinOp::Sub: return 9;
    case BinOp::Shl:
    case BinOp::Shr: return 8;
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge: return 7;
    case BinOp::Eq:
    case BinOp::Ne: return 6;
    case BinOp::And: return 5;
    case BinOp::Xor: return 4;
    case BinOp::Or: return 3;
    case BinOp::LAnd: return 2;
    case BinOp::LOr: return 1;
  }
  return 0;
}

void printExprInner(const Expr& e, std::ostringstream& os, int parentPrec) {
  switch (e.kind) {
    case ExprKind::IntLit:
      os << static_cast<const IntLitExpr&>(e).value;
      break;
    case ExprKind::VarRef:
      os << static_cast<const VarRefExpr&>(e).name;
      break;
    case ExprKind::ArrayRef: {
      const auto& a = static_cast<const ArrayRefExpr&>(e);
      os << a.name;
      for (const auto& i : a.indices) {
        os << '[';
        printExprInner(*i, os, 0);
        os << ']';
      }
      break;
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      os << unOpSpelling(u.op);
      os << '(';
      printExprInner(*u.operand, os, 0);
      os << ')';
      break;
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      const int prec = precedence(b.op);
      const bool paren = prec < parentPrec;
      if (paren) os << '(';
      printExprInner(*b.lhs, os, prec);
      os << ' ' << binOpSpelling(b.op) << ' ';
      printExprInner(*b.rhs, os, prec + 1);
      if (paren) os << ')';
      break;
    }
    case ExprKind::Cast: {
      const auto& c = static_cast<const CastExpr&>(e);
      if (c.isImplicit) {
        printExprInner(*c.operand, os, parentPrec);
      } else {
        os << '(' << cTypeName(c.type) << ")(";
        printExprInner(*c.operand, os, 0);
        os << ')';
      }
      break;
    }
    case ExprKind::Call: {
      const auto& c = static_cast<const CallExpr&>(e);
      os << c.callee << '(';
      for (size_t i = 0; i < c.args.size(); ++i) {
        if (i) os << ", ";
        printExprInner(*c.args[i], os, 0);
      }
      os << ')';
      break;
    }
  }
}

void printStmtInner(const Stmt& s, IndentWriter& w);

void printBlockBody(const Stmt& s, IndentWriter& w) {
  if (s.kind == StmtKind::Block) {
    for (const auto& st : static_cast<const BlockStmt&>(s).stmts) printStmtInner(*st, w);
  } else {
    printStmtInner(s, w);
  }
}

std::string lvalueStr(const LValue& lv) {
  std::ostringstream os;
  if (lv.kind == LValue::Kind::Deref) os << '*';
  os << lv.name;
  for (const auto& i : lv.indices) {
    os << '[';
    printExprInner(*i, os, 0);
    os << ']';
  }
  return os.str();
}

void printStmtInner(const Stmt& s, IndentWriter& w) {
  switch (s.kind) {
    case StmtKind::Block: {
      w.line("{");
      w.indent();
      printBlockBody(s, w);
      w.dedent();
      w.line("}");
      break;
    }
    case StmtKind::Decl: {
      const auto& d = static_cast<const DeclStmt&>(s);
      std::string l = (d.var.isConst ? std::string("const ") : std::string()) + cTypeName(d.var.type.scalar) + " " + d.var.name;
      for (int64_t dim : d.var.type.dims) l += fmt("[%0]", dim);
      if (d.init) l += " = " + printExpr(*d.init);
      w.line(l + ";");
      break;
    }
    case StmtKind::Assign: {
      const auto& a = static_cast<const AssignStmt&>(s);
      w.line(lvalueStr(a.target) + " = " + printExpr(*a.value) + ";");
      break;
    }
    case StmtKind::If: {
      const auto& i = static_cast<const IfStmt&>(s);
      w.line("if (" + printExpr(*i.cond) + ") {");
      w.indent();
      printBlockBody(*i.thenBody, w);
      w.dedent();
      if (i.elseBody) {
        w.line("} else {");
        w.indent();
        printBlockBody(*i.elseBody, w);
        w.dedent();
      }
      w.line("}");
      break;
    }
    case StmtKind::For: {
      const auto& f = static_cast<const ForStmt&>(s);
      w.line(fmt("for (%0 = %1; %0 < %2; %0 = %0 + %3) {", f.inductionVar, printExpr(*f.begin),
                 printExpr(*f.end), f.step));
      w.indent();
      printBlockBody(*f.body, w);
      w.dedent();
      w.line("}");
      break;
    }
    case StmtKind::Return:
      w.line("return;");
      break;
    case StmtKind::CallStmt:
      w.line(printExpr(*static_cast<const CallStmt&>(s).call) + ";");
      break;
  }
}

} // namespace

std::string printExpr(const Expr& e) {
  std::ostringstream os;
  printExprInner(e, os, 0);
  return os.str();
}

std::string printStmt(const Stmt& s, int indentLevel) {
  IndentWriter w;
  for (int i = 0; i < indentLevel; ++i) w.indent();
  printStmtInner(s, w);
  return w.str();
}

std::string printFunction(const Function& f) {
  std::vector<std::string> params;
  for (const auto& p : f.params) {
    std::string s = p.isConst ? "const " : "";
    s += cTypeName(p.type.scalar);
    if (!p.type.isArray() && p.mode == ParamMode::Out) s += "*";
    s += " " + p.name;
    for (int64_t d : p.type.dims) s += fmt("[%0]", d);
    params.push_back(s);
  }
  IndentWriter w;
  w.line("void " + f.name + "(" + join(params, ", ") + ") {");
  w.indent();
  if (f.body) printBlockBody(*f.body, w);
  w.dedent();
  w.line("}");
  return w.str();
}

std::string printModule(const Module& m) {
  std::string out;
  for (const auto& g : m.globals) {
    std::string l = (g.isConst ? std::string("const ") : std::string()) + cTypeName(g.type.scalar) + " " + g.name;
    for (int64_t d : g.type.dims) l += fmt("[%0]", d);
    if (!g.init.empty()) {
      std::vector<std::string> vals;
      for (int64_t v : g.init) vals.push_back(std::to_string(v));
      l += " = {" + join(vals, ", ") + "}";
    }
    out += l + ";\n";
  }
  if (!m.globals.empty()) out += "\n";
  for (size_t i = 0; i < m.functions.size(); ++i) {
    if (i) out += "\n";
    out += printFunction(m.functions[i]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Walkers
// ---------------------------------------------------------------------------

void forEachExpr(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::VarRef:
      break;
    case ExprKind::ArrayRef:
      for (const auto& i : static_cast<const ArrayRefExpr&>(e).indices) forEachExpr(*i, fn);
      break;
    case ExprKind::Unary:
      forEachExpr(*static_cast<const UnaryExpr&>(e).operand, fn);
      break;
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      forEachExpr(*b.lhs, fn);
      forEachExpr(*b.rhs, fn);
      break;
    }
    case ExprKind::Cast:
      forEachExpr(*static_cast<const CastExpr&>(e).operand, fn);
      break;
    case ExprKind::Call:
      for (const auto& a : static_cast<const CallExpr&>(e).args) forEachExpr(*a, fn);
      break;
  }
}

void forEachStmt(const Stmt& s, const std::function<void(const Stmt&)>& fn) {
  fn(s);
  switch (s.kind) {
    case StmtKind::Block:
      for (const auto& st : static_cast<const BlockStmt&>(s).stmts) forEachStmt(*st, fn);
      break;
    case StmtKind::If: {
      const auto& i = static_cast<const IfStmt&>(s);
      forEachStmt(*i.thenBody, fn);
      if (i.elseBody) forEachStmt(*i.elseBody, fn);
      break;
    }
    case StmtKind::For:
      forEachStmt(*static_cast<const ForStmt&>(s).body, fn);
      break;
    default:
      break;
  }
}

void forEachExprInStmt(const Stmt& s, const std::function<void(const Expr&)>& fn) {
  forEachStmt(s, [&](const Stmt& st) {
    switch (st.kind) {
      case StmtKind::Decl: {
        const auto& d = static_cast<const DeclStmt&>(st);
        if (d.init) forEachExpr(*d.init, fn);
        break;
      }
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(st);
        for (const auto& i : a.target.indices) forEachExpr(*i, fn);
        forEachExpr(*a.value, fn);
        break;
      }
      case StmtKind::If:
        forEachExpr(*static_cast<const IfStmt&>(st).cond, fn);
        break;
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(st);
        forEachExpr(*f.begin, fn);
        forEachExpr(*f.end, fn);
        break;
      }
      case StmtKind::CallStmt:
        forEachExpr(*static_cast<const CallStmt&>(st).call, fn);
        break;
      default:
        break;
    }
  });
}

std::optional<int64_t> evalConstant(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return static_cast<const IntLitExpr&>(e).value;
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      auto v = evalConstant(*u.operand);
      if (!v) return std::nullopt;
      switch (u.op) {
        case UnOp::Neg: return -*v;
        case UnOp::BitNot: return ~*v;
        case UnOp::LogicalNot: return *v == 0 ? 1 : 0;
      }
      return std::nullopt;
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      auto l = evalConstant(*b.lhs);
      auto r = evalConstant(*b.rhs);
      if (!l || !r) return std::nullopt;
      switch (b.op) {
        case BinOp::Add: return *l + *r;
        case BinOp::Sub: return *l - *r;
        case BinOp::Mul: return *l * *r;
        case BinOp::Div: return *r == 0 ? std::nullopt : std::optional<int64_t>(*l / *r);
        case BinOp::Rem: return *r == 0 ? std::nullopt : std::optional<int64_t>(*l % *r);
        case BinOp::And: return *l & *r;
        case BinOp::Or: return *l | *r;
        case BinOp::Xor: return *l ^ *r;
        case BinOp::Shl: return (*r < 0 || *r > 62) ? std::nullopt : std::optional<int64_t>(*l << *r);
        case BinOp::Shr: return (*r < 0 || *r > 62) ? std::nullopt : std::optional<int64_t>(*l >> *r);
        case BinOp::Eq: return *l == *r;
        case BinOp::Ne: return *l != *r;
        case BinOp::Lt: return *l < *r;
        case BinOp::Le: return *l <= *r;
        case BinOp::Gt: return *l > *r;
        case BinOp::Ge: return *l >= *r;
        case BinOp::LAnd: return (*l != 0 && *r != 0) ? 1 : 0;
        case BinOp::LOr: return (*l != 0 || *r != 0) ? 1 : 0;
      }
      return std::nullopt;
    }
    case ExprKind::Cast: {
      const auto& c = static_cast<const CastExpr&>(e);
      auto v = evalConstant(*c.operand);
      if (!v) return std::nullopt;
      return Value::fromInt(c.type, *v).toInt();
    }
    default:
      return std::nullopt;
  }
}

} // namespace roccc::ast
