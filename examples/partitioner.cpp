// Hardware/software partitioning scenario (the profiling box of the
// paper's Fig 1 and ref [10]): profile a multi-kernel application with the
// interpreter, find the "frequently executing kernel", compile only that
// kernel to hardware, and report the estimated system-level speedup
// against a modeled embedded CPU.
//
//   $ ./partitioner
#include <cstdio>
#include <vector>

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "interp/interp.hpp"
#include "roccc/compiler.hpp"
#include "synth/estimate.hpp"

namespace {

// An "application" with three candidate kernels.
struct Candidate {
  const char* name;
  const char* src;
};

const Candidate kCandidates[] = {
    {"checksum",
     R"(int sum = 0;
        void checksum(const uint8 PKT[64], int32* out) {
          int i;
          for (i = 0; i < 64; i++) { sum = sum + PKT[i]; }
          *out = sum;
        })"},
    {"convolve",
     R"(void convolve(const int16 S[512], int32 Y[504]) {
          int i;
          for (i = 0; i < 504; i++) {
            Y[i] = S[i] + 2*S[i+1] + 4*S[i+2] + 8*S[i+3] + 8*S[i+4]
                 + 4*S[i+5] + 2*S[i+6] + S[i+7] + S[i+8];
          }
        })"},
    {"threshold",
     R"(void threshold(const int16 S[64], int16 T[64]) {
          int i;
          for (i = 0; i < 64; i++) {
            if (S[i] < 100) { T[i] = 0; } else { T[i] = S[i]; }
          }
        })"},
};

roccc::interp::KernelIO inputsFor(const Candidate& c) {
  roccc::interp::KernelIO io;
  if (std::string(c.name) == "checksum") {
    for (int i = 0; i < 64; ++i) io.arrays["PKT"].push_back(i * 7 % 256);
  } else if (std::string(c.name) == "convolve") {
    for (int i = 0; i < 512; ++i) io.arrays["S"].push_back((i * 37) % 400 - 200);
  } else {
    for (int i = 0; i < 64; ++i) io.arrays["S"].push_back((i * 91) % 300 - 50);
  }
  return io;
}

} // namespace

int main() {
  using namespace roccc;

  std::printf("Profiling pass (interpreter step counts, ref [10]):\n\n");
  std::printf("  %-10s | %12s | %10s\n", "kernel", "steps", "share");
  std::printf("  -----------+--------------+-----------\n");
  std::vector<uint64_t> steps;
  uint64_t total = 0;
  for (const auto& c : kCandidates) {
    DiagEngine diags;
    ast::Module m = ast::parse(c.src, diags);
    ast::analyze(m, diags);
    interp::Interpreter interp(m);
    interp.run(m.functions.back().name, inputsFor(c));
    steps.push_back(interp.stepsExecuted());
    total += interp.stepsExecuted();
  }
  size_t hot = 0;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i] > steps[hot]) hot = i;
    std::printf("  %-10s | %12llu | %8.1f%%\n", kCandidates[i].name,
                static_cast<unsigned long long>(steps[i]), 100.0 * steps[i] / total);
  }
  std::printf("\n  -> hot kernel: '%s' goes to the FPGA fabric; the rest stay on the CPU.\n\n",
              kCandidates[hot].name);

  Compiler compiler;
  const auto r = compiler.compileSource(kCandidates[hot].src);
  if (!r.ok) {
    std::fprintf(stderr, "%s\n", r.diags.dump().c_str());
    return 1;
  }
  const auto cosim = cosimulate(r, kCandidates[hot].src, inputsFor(kCandidates[hot]));
  if (!cosim.match) {
    std::fprintf(stderr, "cosim mismatch: %s\n", cosim.mismatch.c_str());
    return 1;
  }
  const auto rep = synth::estimate(r.module);

  // CPU model: a ~200 MHz embedded core at ~2 cycles per interpreter step
  // (the CSoC-era processors of section 1). Hardware: measured cycles at
  // the estimated clock.
  const double cpuUs = static_cast<double>(steps[hot]) * 2.0 / 200.0;
  const double hwUs = static_cast<double>(cosim.stats.cycles) / rep.fmaxMHz();
  std::printf("Hardware engine: %s\n", rep.summary().c_str());
  std::printf("  kernel time on 200 MHz CPU model : %8.2f us\n", cpuUs);
  std::printf("  kernel time on FPGA engine       : %8.2f us (%lld cycles @ %.0f MHz)\n", hwUs,
              static_cast<long long>(cosim.stats.cycles), rep.fmaxMHz());
  std::printf("  estimated kernel speedup         : %8.1fx\n", cpuUs / hwUs);
  std::printf("\n(The paper's section 1 cites 10x-100x speedups for such streaming kernels.)\n");
  return 0;
}
