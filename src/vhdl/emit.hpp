// RTL VHDL generation (paper section 4.2.4): "ROCCC generates one VHDL
// component for each CFG node that goes to hardware. In a node, every
// virtual register is single assigned and is converted into wires ...
// instructions become combinational or sequential VHDL statement according
// to whether the instruction needs latched or not. A LUT instruction
// invokes an instantiation of a lookup table component."
//
// Emission layout:
//   - one entity per data-path node (soft, mux, pipe), combinational ops as
//     concurrent signal assignments, node-internal pipeline latches in a
//     clocked process,
//   - lookup tables as ROM entities with a constant-array architecture,
//   - a top entity instantiating every node, carrying cross-node pipeline
//     registers and the LPR/SNX feedback registers (with reset values).
#pragma once

#include <string>

#include "dp/datapath.hpp"
#include "hlir/kernel.hpp"
#include "rtl/netlist.hpp"

namespace roccc::vhdl {

/// Emits the complete VHDL design for a compiled kernel. `module` provides
/// the flat netlist statistics embedded as a header comment; the entities
/// themselves are generated from the data path.
std::string emitDesign(const dp::DataPath& dp, const rtl::Module& module,
                       const hlir::KernelInfo& kernel);

} // namespace roccc::vhdl
