#include "roccc/driver.hpp"

#include <algorithm>
#include <atomic>
#include <future>
#include <thread>

#include "roccc/cache.hpp"
#include "support/faultpoint.hpp"
#include "support/strings.hpp"
#include "support/threadpool.hpp"
#include "support/timer.hpp"

namespace roccc {

int BatchResult::succeeded() const {
  int n = 0;
  for (const auto& r : results) {
    if (r.ok) ++n;
  }
  return n;
}

double BatchResult::kernelsPerSecond() const {
  if (wallMs <= 0) return 0;
  return static_cast<double>(results.size()) * 1000.0 / wallMs;
}

int BatchResult::countOutcome(CompileOutcome outcome) const {
  int n = 0;
  for (const auto& r : results) {
    if (r.outcome == outcome) ++n;
  }
  return n;
}

std::string BatchResult::outcomeSummary() const {
  static constexpr CompileOutcome kOrder[] = {
      CompileOutcome::Ok, CompileOutcome::FrontendError, CompileOutcome::Timeout,
      CompileOutcome::ResourceExceeded, CompileOutcome::InternalError};
  std::string out;
  for (const CompileOutcome o : kOrder) {
    const int n = countOutcome(o);
    if (n == 0) continue;
    if (!out.empty()) out += ", ";
    out += fmt("%0 %1", n, compileOutcomeName(o));
  }
  return out.empty() ? "empty" : out;
}

CompileResult runContainedJob(const CompileJob& job) {
  FaultInjectionScope faultScope(job.options.injectFaultAt);
  try {
    faultpoint("driver.job");
    const Compiler compiler(job.options);
    return compiler.compileSource(job.source);
  } catch (const std::exception& e) {
    CompileResult r;
    r.outcome = CompileOutcome::InternalError;
    r.diags.error({}, fmt("internal: job '%0' failed outside the pipeline: %1", job.name,
                          e.what()));
    return r;
  } catch (...) {
    CompileResult r;
    r.outcome = CompileOutcome::InternalError;
    r.diags.error({}, fmt("internal: job '%0' failed outside the pipeline: unknown exception",
                          job.name));
    return r;
  }
}

CompileService::CompileService(int workers) : workers_(workers) {
  if (workers_ <= 0) {
    workers_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

BatchResult CompileService::compileBatch(const std::vector<CompileJob>& jobs) const {
  BatchResult batch;
  batch.workers = workers_;
  batch.results.resize(jobs.size());
  WallTimer timer;

  // Each worker writes only its own pre-allocated slot; each job gets a
  // fresh Compiler and reports into the DiagEngine inside its own result.
  // Job order == result order by construction, so completion order (which
  // does vary with scheduling) is unobservable.
  //
  // The pipeline contains failures at the pass edge; the try/catch here is
  // the driver's own last line: whatever still escapes a job (including the
  // armed "driver.job" fault point) becomes an InternalError in that job's
  // slot. No job can take down the batch, wedge its worker, or disturb a
  // sibling's result.
  std::atomic<int> cacheHits{0};
  std::atomic<int> cacheMisses{0};
  auto compileJob = [&jobs](size_t i) -> CompileResult { return runContainedJob(jobs[i]); };
  // With a cache attached, each job first derives its content-addressed key
  // (on the worker thread — hashing is part of the job, not the submit
  // loop); getOrCompute single-flights concurrent identical jobs onto one
  // compile. Without one, the job body runs unconditionally, exactly as
  // before the cache existed.
  auto runJob = [this, &jobs, &batch, &compileJob, &cacheHits, &cacheMisses](size_t i) {
    if (cache_) {
      const std::string key = computeCacheKey(jobs[i].source, jobs[i].options);
      bool wasHit = false;
      batch.results[i] =
          cache_->getOrCompute(key, jobs[i].options, [&] { return compileJob(i); }, &wasHit);
      (wasHit ? cacheHits : cacheMisses).fetch_add(1, std::memory_order_relaxed);
    } else {
      batch.results[i] = compileJob(i);
    }
  };

  if (workers_ == 1) {
    // Serial reference path: no pool, caller's thread. jobs=1 vs jobs=N
    // byte-equality in the determinism tests compares exactly this path
    // against the pooled one.
    for (size_t i = 0; i < jobs.size(); ++i) runJob(i);
  } else {
    ThreadPool pool(static_cast<size_t>(workers_));
    std::vector<std::future<void>> pending;
    pending.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      pending.push_back(pool.submit([&runJob, i] { runJob(i); }));
    }
    for (auto& f : pending) f.get(); // jobs never throw; futures only order completion
  }

  batch.wallMs = timer.elapsedMs();
  batch.cacheHits = cacheHits.load();
  batch.cacheMisses = cacheMisses.load();
  return batch;
}

} // namespace roccc
