#include "vhdl/testbench.hpp"

#include <algorithm>
#include <cctype>
#include <memory>

#include "dp/eval.hpp"
#include "rtl/system.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace roccc::vhdl {

namespace {

std::string sanitize(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += c;
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) out = "s_" + out;
  return out;
}

std::string literal(const Value& v, ScalarType t) {
  return fmt("to_%0(%1, %2)", t.isSigned ? "signed" : "unsigned", v.convertTo(t).toInt(), t.width);
}

std::string emitTestbenchBody(const dp::DataPath& dp, const std::vector<TestVector>& vectors,
                              const std::vector<std::string>& headerLines) {
  IndentWriter w;
  const std::string top = sanitize(dp.name);
  const std::string name = top + "_tb";
  const int latency = dp.stageCount - 1;
  const size_t n = vectors.size();

  for (const std::string& line : headerLines) w.line(line);
  w.line("library ieee;");
  w.line("use ieee.std_logic_1164.all;");
  w.line("use ieee.numeric_std.all;");
  w.blank();
  w.line("entity " + name + " is");
  w.line("end entity " + name + ";");
  w.blank();
  w.line("architecture sim of " + name + " is");
  w.indent();
  w.line("signal clk : std_logic := '0';");
  w.line("signal ce  : std_logic := '1';");
  w.line("signal tb_valid : std_logic := '1';");
  w.line("signal done : boolean := false;");
  for (const auto& p : dp.inputs) {
    w.line(fmt("signal %0 : %1(%2 downto 0);", sanitize(p.name),
               p.type.isSigned ? "signed" : "unsigned", p.type.width - 1));
  }
  for (const auto& p : dp.outputs) {
    w.line(fmt("signal %0 : %1(%2 downto 0);", sanitize(p.name),
               p.type.isSigned ? "signed" : "unsigned", p.type.width - 1));
  }
  // Stimulus/expectation ROMs.
  for (size_t ip = 0; ip < dp.inputs.size(); ++ip) {
    const auto& p = dp.inputs[ip];
    std::vector<std::string> vals;
    for (const auto& v : vectors) vals.push_back(literal(v.inputs[ip], p.type));
    w.line(fmt("type %0_vec_t is array (0 to %1) of %2(%3 downto 0);", sanitize(p.name), n - 1,
               p.type.isSigned ? "signed" : "unsigned", p.type.width - 1));
    w.line(fmt("constant %0_vec : %0_vec_t := (%1);", sanitize(p.name), join(vals, ", ")));
  }
  for (size_t op = 0; op < dp.outputs.size(); ++op) {
    const auto& p = dp.outputs[op];
    std::vector<std::string> vals;
    for (const auto& v : vectors) vals.push_back(literal(v.expectedOutputs[op], p.type));
    w.line(fmt("type %0_exp_t is array (0 to %1) of %2(%3 downto 0);", sanitize(p.name), n - 1,
               p.type.isSigned ? "signed" : "unsigned", p.type.width - 1));
    w.line(fmt("constant %0_exp : %0_exp_t := (%1);", sanitize(p.name), join(vals, ", ")));
  }
  w.dedent();
  w.line("begin");
  w.indent();
  w.line("clk <= not clk after 5 ns when not done else '0';");
  w.blank();
  std::vector<std::string> assoc = {"clk => clk", "ce => ce"};
  if (!dp.feedbacks.empty()) assoc.push_back("valid => tb_valid");
  for (const auto& p : dp.inputs) assoc.push_back(sanitize(p.name) + " => " + sanitize(p.name));
  for (const auto& p : dp.outputs) assoc.push_back(sanitize(p.name) + " => " + sanitize(p.name));
  w.line("dut : entity work." + top);
  w.indent();
  w.line("port map (" + join(assoc, ", ") + ");");
  w.dedent();
  w.blank();
  w.line("stimulus : process");
  w.line("begin");
  w.indent();
  w.line(fmt("for t in 0 to %0 loop", n - 1 + static_cast<size_t>(latency)));
  w.indent();
  for (size_t ip = 0; ip < dp.inputs.size(); ++ip) {
    const std::string nm = sanitize(dp.inputs[ip].name);
    w.line(fmt("if t <= %0 then %1 <= %1_vec(t); end if;", n - 1, nm));
  }
  w.line("wait until rising_edge(clk);");
  if (latency > 0) w.line(fmt("if t >= %0 then", latency));
  if (latency > 0) w.indent();
  for (size_t op = 0; op < dp.outputs.size(); ++op) {
    const std::string nm = sanitize(dp.outputs[op].name);
    const std::string idx = latency > 0 ? fmt("t - %0", latency) : std::string("t");
    w.line(fmt("assert %0 = %0_exp(%1)", nm, idx));
    w.indent();
    w.line(fmt("report \"mismatch on %0 at vector \" & integer'image(%1) severity failure;", nm, idx));
    w.dedent();
  }
  if (latency > 0) {
    w.dedent();
    w.line("end if;");
  }
  w.dedent();
  w.line("end loop;");
  w.line("tb_valid <= '0';");
  w.line("report \"TESTBENCH PASSED\" severity note;");
  w.line("done <= true;");
  w.line("wait;");
  w.dedent();
  w.line("end process;");
  w.dedent();
  w.line("end architecture sim;");
  return w.str();
}

} // namespace

std::vector<TestVector> makeVectors(const dp::DataPath& dp,
                                    const std::vector<std::vector<int64_t>>& inputSets) {
  std::vector<TestVector> vectors;
  std::map<std::string, Value> feedback;
  for (const auto& set : inputSets) {
    TestVector v;
    for (size_t p = 0; p < dp.inputs.size(); ++p) {
      v.inputs.push_back(Value::fromInt(dp.inputs[p].type, set.at(p)));
    }
    const dp::EvalResult r = dp::evaluate(dp, v.inputs, feedback);
    v.expectedOutputs = r.outputs;
    feedback = r.nextFeedback;
    vectors.push_back(std::move(v));
  }
  return vectors;
}

std::string emitTestbench(const dp::DataPath& dp, const std::vector<TestVector>& vectors) {
  const std::string top = sanitize(dp.name);
  const int latency = dp.stageCount - 1;
  return emitTestbenchBody(
      dp, vectors,
      {"-- Self-checking testbench for '" + top + "' (generated with the cosimulation",
       fmt("-- vectors; pipeline latency %0 cycles).", latency)});
}

std::vector<TestVector> makeSystemVectors(const hlir::KernelInfo& kernel, const dp::DataPath& dp,
                                          const interp::KernelIO& io, int extraRandom,
                                          uint64_t seed, TestbenchInfo* info) {
  interp::Interpreter sim(kernel.dpModule);
  const rtl::StreamStep step = rtl::interpreterStep(kernel, dp, sim);
  const rtl::StreamTrace trace = rtl::traceStreamingModel(kernel, dp, io, step);

  std::vector<TestVector> vectors;
  vectors.reserve(trace.inputs.size() + static_cast<size_t>(std::max(extraRandom, 0)));
  for (size_t t = 0; t < trace.inputs.size(); ++t) {
    TestVector v;
    v.inputs = trace.inputs[t];
    v.expectedOutputs.reserve(dp.outputs.size());
    for (size_t p = 0; p < dp.outputs.size(); ++p) {
      v.expectedOutputs.push_back(trace.outputs[t][p].convertTo(dp.outputs[p].type));
    }
    vectors.push_back(std::move(v));
  }

  // Seeded extras continue the feedback sequence past the iteration space;
  // expectations still come from the interpreter, so the testbench stays
  // self-consistent whatever the stimulus.
  std::map<std::string, Value> feedback = trace.finalFeedback;
  SplitMix64 rng(fnv1aMix(seed, fnv1a(kernel.kernelName)));
  for (int e = 0; e < extraRandom; ++e) {
    TestVector v;
    v.inputs.reserve(dp.inputs.size());
    for (const auto& port : dp.inputs) {
      v.inputs.push_back(
          Value::fromInt(port.type, rng.inRange(port.type.minValue(), port.type.maxValue())));
    }
    auto [outputs, nextFeedback] = step(v.inputs, feedback);
    v.expectedOutputs.reserve(dp.outputs.size());
    for (size_t p = 0; p < dp.outputs.size(); ++p) {
      v.expectedOutputs.push_back(outputs[p].convertTo(dp.outputs[p].type));
    }
    feedback = std::move(nextFeedback);
    vectors.push_back(std::move(v));
  }

  if (info) {
    info->kernelName = kernel.kernelName;
    info->traceVectors = static_cast<int64_t>(trace.inputs.size());
    info->extraVectors = std::max(extraRandom, 0);
    info->seed = extraRandom > 0 ? seed : 0;
  }
  return vectors;
}

std::string emitSystemTestbench(const dp::DataPath& dp, const hlir::KernelInfo& kernel,
                                const std::vector<TestVector>& vectors,
                                const TestbenchInfo& info) {
  std::vector<std::string> header;
  header.push_back(fmt("-- Self-checking system-level testbench for kernel '%0'.", info.kernelName));
  header.push_back("-- Stimulus and expected outputs: AST interpreter on the extracted data-path");
  header.push_back("-- function over the full iteration space (Fig 2 streaming model).");
  std::vector<std::string> loops;
  for (const auto& l : kernel.loops) {
    loops.push_back(fmt("%0 in [%1, %2) step %3", l.iv, l.begin, l.end, l.step));
  }
  if (!loops.empty()) header.push_back("-- loops: " + join(loops, "; "));
  std::string counts = fmt("-- vectors: %0 interpreter-derived", info.traceVectors);
  if (info.extraVectors > 0) {
    counts += fmt(" + %0 seeded extras (tb-seed %1)", info.extraVectors, info.seed);
  }
  header.push_back(counts);
  header.push_back(fmt("-- pipeline latency %0 cycles.", dp.stageCount - 1));
  return emitTestbenchBody(dp, vectors, header);
}

TestbenchSimResult simulateTestbench(const dp::DataPath& dp, const rtl::Module& module,
                                     const std::vector<TestVector>& vectors,
                                     rtl::SimEngine engine) {
  TestbenchSimResult res;
  if (vectors.empty()) {
    res.passed = true;
    return res;
  }

  std::unique_ptr<rtl::NetlistSim> ref;
  std::unique_ptr<rtl::FastSim> fast;
  if (engine == rtl::SimEngine::Reference) {
    ref = std::make_unique<rtl::NetlistSim>(module);
  } else {
    fast = std::make_unique<rtl::FastSim>(module);
  }
  const auto setInput = [&](size_t port, const Value& v) {
    if (ref) ref->setInput(port, v);
    else fast->setInput(port, v);
  };
  const auto evalAll = [&] { ref ? ref->eval() : fast->eval(); };
  const auto readOutput = [&](size_t port) { return ref ? ref->output(port) : fast->output(port); };
  const auto tickAll = [&] { ref ? ref->tick(true) : fast->tick(true); };

  // The dp input ports come first; when feedbacks exist the module has one
  // extra '__valid' input the testbench drives high throughout the loop.
  const bool hasValid = module.inputPorts.size() > dp.inputs.size();
  const size_t n = vectors.size();
  const size_t latency = static_cast<size_t>(module.latency);

  // The VHDL stimulus process: at loop index t, drive vector min(t, n-1)
  // (inputs hold their last value during the pipeline flush), wait for the
  // rising edge, and assert — assertions read *pre-edge* values, i.e. the
  // combinational outputs of the pre-tick state, so the comparison here
  // happens after eval() and before tick().
  for (size_t t = 0; t < n + latency; ++t) {
    const TestVector& v = vectors[std::min(t, n - 1)];
    for (size_t p = 0; p < dp.inputs.size(); ++p) {
      setInput(p, v.inputs[p].convertTo(dp.inputs[p].type));
    }
    if (hasValid) setInput(dp.inputs.size(), Value(ScalarType::boolTy(), 1));
    evalAll();
    if (t >= latency) {
      const size_t idx = t - latency;
      for (size_t op = 0; op < dp.outputs.size(); ++op) {
        const Value got = readOutput(op).convertTo(dp.outputs[op].type);
        const Value want = vectors[idx].expectedOutputs[op].convertTo(dp.outputs[op].type);
        if (got.bits() != want.bits()) {
          res.firstFailure = fmt("mismatch on %0 at vector %1: expected %2, got %3 (%4 engine)",
                                 dp.outputs[op].name, idx, want.toInt(), got.toInt(),
                                 rtl::simEngineName(engine));
          return res;
        }
      }
    }
    tickAll();
  }
  res.passed = true;
  return res;
}

} // namespace roccc::vhdl
