// The streaming loop never executes: [0, 0) has no iterations, so there is
// no datapath to extract. Must be a clean frontend-error, not a crash.
void k(const int A[8], int B[8]) {
  int i;
  for (i = 0; i < 0; i = i + 1) { B[i] = A[i]; }
}
