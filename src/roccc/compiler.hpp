// roccc::Compiler — the public facade of the library.
//
// Runs the full ROCCC pipeline of the paper on one C kernel:
//   parse -> sema -> loop transforms (inline, LUT-convert, const-fold,
//   unroll) -> kernel extraction (scalar replacement, feedback detection,
//   access patterns) -> MIR lowering -> SSA -> circuit-level passes ->
//   data-path generation (mux/pipe hard nodes, pipelining, bit-width
//   inference) -> RTL netlist -> VHDL.
//
// Use rtl::System / cosimulate() to execute the generated hardware against
// the software interpreter, and synth::estimate() (src/synth) to obtain the
// Table 1-style clock/area figures.
#pragma once

#include <string>
#include <vector>

#include "dp/datapath.hpp"
#include "dp/retime.hpp"
#include "frontend/ast.hpp"
#include "hlir/kernel.hpp"
#include "interp/interp.hpp"
#include "mir/ir.hpp"
#include "roccc/pipeline.hpp"
#include "rtl/netlist.hpp"
#include "rtl/system.hpp"
#include "support/budget.hpp"
#include "support/diag.hpp"

namespace roccc {

/// How a compile ended. Every failure mode is a structured outcome — a job
/// can fail, a batch cannot crash (the fault-containment boundary at the
/// PassManager pass edge converts thrown BudgetExceeded / std::bad_alloc /
/// internal errors into the non-Ok rows here; DESIGN.md §9).
enum class CompileOutcome {
  Ok,               ///< compiled end to end
  FrontendError,    ///< the input was rejected with diagnostics
  Timeout,          ///< the per-job wall-clock deadline fired
  ResourceExceeded, ///< an IR-node / unroll-product / depth budget or memory
  InternalError,    ///< a compiler invariant broke (contained, not crashed)
};
const char* compileOutcomeName(CompileOutcome outcome);

struct CompileOptions {
  /// Kernel function to compile; empty = the module's last function.
  std::string kernelName;
  /// Partial unroll factor for the innermost streaming loop (1 = none).
  /// Widening the data path this way is how the DCT processes a full
  /// 8-sample block per clock (section 5).
  int unrollFactor = 1;
  /// When > 0, pick the unroll factor automatically: the largest
  /// power-of-two whose compile-time area estimate (ref [13]) fits this
  /// many slices. Overrides unrollFactor.
  int64_t autoUnrollSliceBudget = 0;
  /// Fully unroll loops nested inside the streaming loop (bit_correlator's
  /// per-bit scan, square root's digit recurrence, ...).
  bool fullUnrollInnerLoops = true;
  int64_t maxInnerUnrollTrip = 256;
  /// Convert pure unary callees into lookup tables ("whenever feasible made
  /// into a lookup table", section 2).
  bool convertCallsToLuts = true;
  int lutMaxIndexBits = 10;
  /// Run the circuit-level scalar optimizations (constant propagation,
  /// copy propagation, CSE, DCE, strength reduction).
  bool optimize = true;
  /// Data-path generation knobs (pipelining target, bit-width inference,
  /// multiplier style).
  dp::BuildOptions dpOptions;
  /// Timing-driven pipeline balancing (the `retime` pass): rebalance the
  /// greedy seed staging against the timing model so every stage fits
  /// dpOptions.targetStageDelayNs with slack spread evenly. Off = keep the
  /// fixed greedy staging (the pre-retiming behavior; ablation knob).
  bool retimePipeline = true;
  /// Timing-model override: the *contents* of a --timing-model file (not
  /// its path, so a compile stays a pure function of (source, options) —
  /// the cache-key contract). Empty = the built-in Virtex-II-class table.
  std::string timingModelSpec;
  /// Pipeline instrumentation: verify-each, print-after snapshots.
  PipelineOptions pipeline;
  /// Per-job resource budget (deadline, IR-node cap, unroll-product cap,
  /// nesting-depth cap). Defaults are unlimited except the depth cap.
  BudgetLimits budget;
  /// Fault-injection arming: the faultpoint name (see
  /// support/faultpoint.hpp) to throw at, or empty for none.
  std::string injectFaultAt;
};

struct CompileResult {
  bool ok = false;
  /// Structured classification of how the compile ended; `ok` is
  /// outcome == Ok. Never Ok when diagnostics carry errors.
  CompileOutcome outcome = CompileOutcome::Ok;
  /// The pass that failed (or inside which a contained exception was
  /// caught); empty on success and for failures outside the pipeline.
  std::string failedPass;
  DiagEngine diags;
  /// Transformed-source module (after inlining/unrolling), for inspection.
  std::string transformedSource;
  hlir::KernelInfo kernel;
  mir::FunctionIR mir;
  dp::DataPath datapath;
  /// Timing report of the retime pass (run == false when the pass was
  /// disabled or the compile failed before it).
  dp::RetimeReport retiming;
  rtl::Module module;
  std::string vhdl; ///< generated RTL VHDL (all entities)
  std::string verilog; ///< generated Verilog (library extension)
  /// One typed record per pipeline pass (name, layer, wall time, change
  /// counters, optional IR snapshot) — see roccc/pipeline.hpp.
  std::vector<PassStatistics> passLog;
};

class Compiler {
 public:
  explicit Compiler(CompileOptions options = {}) : options_(std::move(options)) {}

  /// Compiles C source text end to end.
  CompileResult compileSource(const std::string& cSource) const;

  /// The declared pass sequence compileSource runs: parse, the HLIR loop
  /// transforms, kernel extraction, MIR lowering/SSA/optimization,
  /// data-path construction, RTL build (always verified), and VHDL /
  /// Verilog emission. Exposed so tools and tests can inspect, reorder, or
  /// extend the pipeline.
  PassManager buildPipeline() const;

  const CompileOptions& options() const { return options_; }

 private:
  CompileOptions options_;
};

/// Hardware/software cosimulation: runs the compiled kernel both on the
/// cycle-accurate RTL system and through the AST interpreter on the
/// original source, and compares every output. The netlist engine is chosen
/// by sysOptions.engine (rtl::SimEngine, default Fast); NetlistSim remains
/// the reference oracle.
struct CosimReport {
  bool match = false;
  std::string mismatch; ///< first difference, empty when match
  rtl::SystemStats stats;
  interp::KernelIO hardware;
  interp::KernelIO software;
};

CosimReport cosimulate(const CompileResult& compiled, const std::string& originalSource,
                       const interp::KernelIO& inputs, rtl::SystemOptions sysOptions = {});

} // namespace roccc
