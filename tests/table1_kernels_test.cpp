// Integration tests over the exact Table 1 workloads (bench/kernels.hpp):
// every kernel must compile, emit valid VHDL, and run cycle-accurately to
// the same results as the software interpreter. These pin the headline
// reproduction end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "../bench/kernels.hpp"
#include "roccc/compiler.hpp"
#include "support/cosrom.hpp"
#include "support/strings.hpp"
#include "vhdl/check.hpp"

namespace roccc {
namespace {

CompileResult compile(const char* src, CompileOptions opt = {}) {
  Compiler c(opt);
  CompileResult r = c.compileSource(src);
  EXPECT_TRUE(r.ok) << r.diags.dump();
  if (r.ok) {
    std::vector<std::string> errors;
    EXPECT_TRUE(r.module.verify(errors)) << "module verify: " << join(errors, "\n");
  }
  return r;
}

void checkVhdl(const CompileResult& r) {
  const auto chk = vhdl::checkDesign(r.vhdl);
  EXPECT_TRUE(chk.ok) << join(chk.problems, "\n");
}

void expectCosim(const char* src, const interp::KernelIO& in, CompileOptions opt = {},
                 rtl::SystemOptions sys = {}) {
  CompileResult r = compile(src, opt);
  ASSERT_TRUE(r.ok);
  checkVhdl(r);
  const CosimReport rep = cosimulate(r, src, in, sys);
  EXPECT_TRUE(rep.match) << rep.mismatch;
}

std::mt19937_64 rng(20050307); // DATE'05 :-)

std::vector<int64_t> randomArray(size_t n, ScalarType t) {
  std::uniform_int_distribution<int64_t> dist(t.minValue(), t.maxValue());
  std::vector<int64_t> v;
  for (size_t i = 0; i < n; ++i) v.push_back(dist(rng));
  return v;
}

TEST(Table1Kernels, BitCorrelator) {
  interp::KernelIO in;
  in.arrays["A"] = randomArray(64, ScalarType::make(8, false));
  expectCosim(bench::kBitCorrelator, in);
}

TEST(Table1Kernels, MulAccBothStyles) {
  for (const char* src : {bench::kMulAcc, bench::kMulAccPredicated}) {
    for (int nd : {0, 1}) {
      interp::KernelIO in;
      in.scalars["nd"] = nd;
      in.arrays["A"] = randomArray(64, ScalarType::make(12, true));
      in.arrays["B"] = randomArray(64, ScalarType::make(12, true));
      expectCosim(src, in);
    }
  }
}

TEST(Table1Kernels, Udiv) {
  interp::KernelIO in;
  in.arrays["N"] = randomArray(64, ScalarType::make(8, false));
  in.arrays["D"] = randomArray(64, ScalarType::make(8, false));
  in.arrays["D"][7] = 0; // exercise the divide-by-zero convention
  expectCosim(bench::kUdiv, in);
}

TEST(Table1Kernels, UdivAggressivelyPipelined) {
  CompileOptions opt;
  opt.dpOptions.targetStageDelayNs = 3.0; // the bench_table1 operating point
  interp::KernelIO in;
  in.arrays["N"] = randomArray(64, ScalarType::make(8, false));
  in.arrays["D"] = randomArray(64, ScalarType::make(8, false));
  expectCosim(bench::kUdiv, in, opt);
}

TEST(Table1Kernels, SquareRoot) {
  interp::KernelIO in;
  in.arrays["X"] = randomArray(64, ScalarType::make(24, false));
  in.arrays["X"][0] = 0;
  in.arrays["X"][1] = (1 << 24) - 1;
  in.arrays["X"][2] = 1;
  CompileResult r = compile(bench::kSquareRoot);
  const CosimReport rep = cosimulate(r, bench::kSquareRoot, in);
  ASSERT_TRUE(rep.match) << rep.mismatch;
  // And the math is actually an integer square root.
  for (int i = 0; i < 64; ++i) {
    const int64_t x = in.arrays["X"][static_cast<size_t>(i)];
    const auto isq = static_cast<int64_t>(std::sqrt(static_cast<double>(x)));
    EXPECT_EQ(rep.hardware.arrays.at("R")[static_cast<size_t>(i)], isq) << "x=" << x;
  }
}

TEST(Table1Kernels, CosKernelMatchesRom) {
  interp::KernelIO in;
  in.arrays["P"] = randomArray(64, ScalarType::make(10, false));
  CompileResult r = compile(bench::kCos);
  const CosimReport rep = cosimulate(r, bench::kCos, in);
  ASSERT_TRUE(rep.match) << rep.mismatch;
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(rep.hardware.arrays.at("C")[static_cast<size_t>(i)],
              cosRomEntry(static_cast<int>(in.arrays["P"][static_cast<size_t>(i)]), false));
  }
}

TEST(Table1Kernels, Fir) {
  interp::KernelIO in;
  in.arrays["A"] = randomArray(68, ScalarType::make(8, true));
  expectCosim(bench::kFir, in);
}

TEST(Table1Kernels, DctPaperOperatingPoint) {
  CompileOptions opt;
  opt.dpOptions.targetStageDelayNs = 7.5;
  interp::KernelIO in;
  in.arrays["X"] = randomArray(64, ScalarType::make(8, true));
  rtl::SystemOptions sys;
  sys.inputBusElems = 8;
  expectCosim(bench::kDct, in, opt, sys);
}

TEST(Table1Kernels, DctIsActuallyADct) {
  // Cross-check the kernel's integer DCT against a floating-point DCT-II.
  interp::KernelIO in;
  in.arrays["X"] = randomArray(64, ScalarType::make(8, true));
  CompileResult r = compile(bench::kDct);
  const auto rep = cosimulate(r, bench::kDct, in);
  ASSERT_TRUE(rep.match);
  for (int blk = 0; blk < 8; ++blk) {
    for (int k = 0; k < 8; ++k) {
      double ref = 0;
      for (int n = 0; n < 8; ++n) {
        ref += static_cast<double>(in.arrays["X"][static_cast<size_t>(blk * 8 + n)]) *
               std::cos((2 * n + 1) * k * M_PI / 16.0);
      }
      if (k == 0) ref *= M_SQRT1_2; // the kernel's 724/1024 DC normalization
      const double got = static_cast<double>(rep.hardware.arrays.at("Y")[static_cast<size_t>(blk * 8 + k)]);
      // >>10 truncation across four summed terms gives a few LSBs of bias.
      EXPECT_NEAR(got, ref, 6.0) << "block " << blk << " coefficient " << k;
    }
  }
}

TEST(Table1Kernels, Wavelet2D) {
  interp::KernelIO in;
  in.arrays["X"] = randomArray(68 * 66, ScalarType::make(16, true));
  CompileOptions opt;
  opt.dpOptions.targetStageDelayNs = 9.0;
  expectCosim(bench::kWavelet, in, opt);
}

TEST(Table1Kernels, WaveletReconstruction) {
  // The (5,3)-style outputs obey the lifting relations the kernel encodes.
  interp::KernelIO in;
  in.arrays["X"] = randomArray(68 * 66, ScalarType::make(12, true));
  CompileResult r = compile(bench::kWavelet);
  const auto rep = cosimulate(r, bench::kWavelet, in);
  ASSERT_TRUE(rep.match) << rep.mismatch;
  const auto& x = in.arrays["X"];
  const auto& d = rep.hardware.arrays.at("D");
  auto X = [&](int i, int j) { return x[static_cast<size_t>(i * 66 + j)]; };
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const int64_t p1 = static_cast<int16_t>(X(i + 2, j + 1) - ((X(i + 2, j) + X(i + 2, j + 2)) >> 1));
      EXPECT_EQ(d[static_cast<size_t>(i * 64 + j)], p1);
    }
  }
}

// Regression: the fuzz-found feedback-fill bug — a conditional accumulator
// whose untaken arm is a nonzero constant must not leak fill garbage into
// the feedback register.
TEST(Table1Kernels, FeedbackRegisterImmuneToPipelineFill) {
  const char* src = R"(
    int32 s = 0;
    void k(const int12 A[10], int32 C[10]) {
      int i;
      int32 t;
      for (i = 0; i < 10; i++) {
        if (A[i] < 14) { t = A[i] * 3; } else { t = -27; }
        s = s + t;
        C[i] = s;
      }
    }
  )";
  interp::KernelIO in;
  in.arrays["A"] = randomArray(10, ScalarType::make(12, true));
  expectCosim(src, in);
}

} // namespace
} // namespace roccc
