file(REMOVE_RECURSE
  "CMakeFiles/motion_detect.dir/motion_detect.cpp.o"
  "CMakeFiles/motion_detect.dir/motion_detect.cpp.o.d"
  "motion_detect"
  "motion_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motion_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
