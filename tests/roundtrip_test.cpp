// Property: the AST printer emits parseable C, and printing reaches a fixed
// point after one round trip (parse -> print -> parse -> print is
// idempotent). Checked over every Table 1 kernel and the transformed
// sources the compiler reports. Also covers the ROCCC_sin intrinsic end to
// end (the cos path is exercised everywhere else).
#include <gtest/gtest.h>

#include "../bench/kernels.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "interp/interp.hpp"
#include "roccc/compiler.hpp"
#include "support/cosrom.hpp"

namespace roccc {
namespace {

class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, PrintParsePrintIsFixpoint) {
  DiagEngine d1;
  ast::Module m1 = ast::parse(GetParam(), d1);
  ASSERT_FALSE(d1.hasErrors()) << d1.dump();
  ASSERT_TRUE(ast::analyze(m1, d1)) << d1.dump();
  const std::string p1 = ast::printModule(m1);

  DiagEngine d2;
  ast::Module m2 = ast::parse(p1, d2);
  ASSERT_FALSE(d2.hasErrors()) << p1 << "\n" << d2.dump();
  ASSERT_TRUE(ast::analyze(m2, d2)) << d2.dump();
  const std::string p2 = ast::printModule(m2);
  EXPECT_EQ(p1, p2);

  // Semantics preserved: run both through the interpreter on zero-filled
  // inputs wherever arrays are involved.
  interp::KernelIO io;
  const ast::Function& fn = m1.functions.back();
  for (const auto& p : fn.params) {
    if (p.type.isArray()) {
      io.arrays[p.name].assign(static_cast<size_t>(p.type.elementCount()), 1);
    } else if (p.mode == ast::ParamMode::In) {
      io.scalars[p.name] = 1;
    }
  }
  const auto r1 = interp::runKernel(m1, fn.name, io);
  const auto r2 = interp::runKernel(m2, fn.name, io);
  EXPECT_EQ(r1.scalars, r2.scalars);
  EXPECT_EQ(r1.arrays, r2.arrays);
}

INSTANTIATE_TEST_SUITE_P(Table1, RoundTrip,
                         ::testing::Values(bench::kBitCorrelator, bench::kMulAcc,
                                           bench::kMulAccPredicated, bench::kUdiv,
                                           bench::kSquareRoot, bench::kCos, bench::kFir,
                                           bench::kDct, bench::kWavelet));

TEST(RoundTripExtra, TransformedSourceReparses) {
  Compiler c;
  const CompileResult r = c.compileSource(bench::kBitCorrelator);
  ASSERT_TRUE(r.ok);
  DiagEngine d;
  ast::Module m = ast::parse(r.transformedSource, d);
  EXPECT_FALSE(d.hasErrors()) << r.transformedSource << "\n" << d.dump();
  EXPECT_TRUE(ast::analyze(m, d)) << d.dump();
}

TEST(RoundTripExtra, DpFunctionReparses) {
  Compiler c;
  const CompileResult r = c.compileSource(bench::kMulAcc);
  ASSERT_TRUE(r.ok);
  const std::string printed = ast::printModule(r.kernel.dpModule);
  DiagEngine d;
  ast::Module m = ast::parse(printed, d);
  EXPECT_FALSE(d.hasErrors()) << printed << "\n" << d.dump();
  EXPECT_TRUE(ast::analyze(m, d)) << printed << "\n" << d.dump();
}

TEST(SinIntrinsic, CompilesAndMatchesRom) {
  const char* src = R"(
    void wave(const uint10 P[16], int16 S[16]) {
      int i;
      for (i = 0; i < 16; i++) {
        S[i] = ROCCC_sin(P[i]);
      }
    }
  )";
  Compiler c;
  const CompileResult r = c.compileSource(src);
  ASSERT_TRUE(r.ok) << r.diags.dump();
  interp::KernelIO in;
  for (int i = 0; i < 16; ++i) in.arrays["P"].push_back(i * 64 + 3);
  const auto rep = cosimulate(r, src, in);
  ASSERT_TRUE(rep.match) << rep.mismatch;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rep.hardware.arrays.at("S")[static_cast<size_t>(i)],
              cosRomEntry(i * 64 + 3, /*sine=*/true));
  }
}

} // namespace
} // namespace roccc
