// Writes into a const input stream: sema must reject the assignment.
void k(const int A[8], int B[8]) {
  int i;
  for (i = 0; i < 8; i = i + 1) { A[i] = B[i]; }
}
