// Lightweight VHDL structural validator: tokenizes emitted designs and
// checks the properties a synthesis front end would reject immediately —
// matched entity/architecture/process/if blocks, entity-name agreement,
// declared-before-used signals/ports inside each architecture, and that
// every `entity work.X` instantiation resolves to an emitted entity.
// (It is a checker for our generator, not a general VHDL parser.)
#pragma once

#include <string>
#include <vector>

namespace roccc::vhdl {

struct CheckResult {
  bool ok = true;
  std::vector<std::string> problems;
  int entityCount = 0;
  int architectureCount = 0;
  int processCount = 0;
  int instantiationCount = 0;
};

CheckResult checkDesign(const std::string& vhdlText);

} // namespace roccc::vhdl
