// The complete execution model of paper Fig 2: input BRAMs -> smart
// buffers -> fully pipelined data path -> output collector -> output BRAMs,
// sequenced by the controller. Simulation is cycle-accurate: throughput and
// memory-traffic numbers reported by the benches come from here.
//
// Two building blocks are exposed separately from the cycle-accurate System
// because the conformance engine (roccc/verify.*) and the testbench
// generator (vhdl/testbench.*) need the same semantics without the timing:
//   - PortBinding: the resolution of every data-path port to its system
//     role (stream-window access, loop-invariant scalar, live induction
//     value, window write-back, scalar out),
//   - traceStreamingModel: the untimed streaming model (Fig 2 minus the
//     clock) parameterized by a per-iteration step function, recording the
//     exact per-iteration port vectors any engine must reproduce.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dp/datapath.hpp"
#include "hlir/kernel.hpp"
#include "interp/interp.hpp"
#include "rtl/buffers.hpp"
#include "rtl/fastsim.hpp"
#include "rtl/netlist.hpp"
#include "support/diag.hpp"

namespace roccc::rtl {

/// Resolution of every data-path port to its role in the Fig 2 system.
/// Independent of any particular input binding; throws std::runtime_error
/// when a port cannot be matched to the kernel (a compiler invariant).
struct PortBinding {
  struct InSource {
    enum class Kind { Window, Scalar, Induction } kind = Kind::Scalar;
    size_t stream = 0, access = 0; ///< Window: kernel.inputs[stream], access
    std::string scalarName;        ///< Scalar: io.scalars key
    int loop = 0;                  ///< Induction: kernel.loops index
  };
  struct OutSink {
    enum class Kind { Window, Scalar } kind = Kind::Scalar;
    size_t stream = 0, access = 0; ///< Window: kernel.outputs[stream], access
    std::string scalarName;        ///< Scalar: result scalar name
  };
  std::vector<InSource> inputs;  ///< one per dp input port, in port order
  std::vector<OutSink> outputs;  ///< one per dp output port, in port order

  static PortBinding resolve(const hlir::KernelInfo& kernel, const dp::DataPath& dp);
};

/// One iteration of the data-path function: port-ordered input values and
/// the current feedback-register values in; port-ordered output values and
/// the next feedback values out. Implementations: the AST interpreter on
/// the extracted data-path function, mir::execute, dp::evaluate.
using StreamStep = std::function<std::pair<std::vector<Value>, std::map<std::string, Value>>(
    const std::vector<Value>& inputs, const std::map<std::string, Value>& feedback)>;

/// The per-iteration record of a streaming-model run: the exact stimulus
/// and response any conforming engine (or generated testbench) must
/// reproduce, plus the final kernel-level results.
struct StreamTrace {
  std::vector<std::vector<Value>> inputs;   ///< per iteration, by dp input port
  std::vector<std::vector<Value>> outputs;  ///< per iteration, by dp output port
  interp::KernelIO final;                   ///< same shape as System::run
  std::map<std::string, Value> finalFeedback; ///< post-run register values
};

/// Runs the untimed streaming model over the whole iteration space: gathers
/// each input window per PortBinding, calls `step`, scatters output windows
/// and threads feedback. Throws std::runtime_error on unbound arrays.
StreamTrace traceStreamingModel(const hlir::KernelInfo& kernel, const dp::DataPath& dp,
                                const interp::KernelIO& io, const StreamStep& step);

/// The AST-interpreter step: runs the extracted data-path function through
/// `sim` (which must wrap kernel.dpModule and outlive the returned closure).
/// This is the golden per-iteration semantics both the conformance engine
/// and the system-level testbench generator drive.
StreamStep interpreterStep(const hlir::KernelInfo& kernel, const dp::DataPath& dp,
                           interp::Interpreter& sim);

struct SystemOptions {
  int inputBusElems = 1;   ///< elements each smart buffer fetches per clock
  int outputBusElems = 0;  ///< 0: wide enough for one window per clock
  bool useSmartBuffer = true; ///< false: naive re-fetching buffer (ablation)
  /// Which netlist engine clocks the data path. Fast is the compiled
  /// slot-indexed engine (rtl/fastsim.hpp); Reference is the boxed-Value
  /// oracle it is differentially tested against.
  SimEngine engine = SimEngine::Fast;
  int64_t cycleLimit = 50'000'000;
  /// Record a VCD waveform of the data-path module during the run
  /// (retrieve with System::vcd()).
  bool recordVcd = false;
};

struct SystemStats {
  int64_t cycles = 0;
  int64_t enabledCycles = 0;  ///< cycles with the pipeline advancing
  int64_t stallCycles = 0;
  int64_t iterations = 0;
  int64_t bramReads = 0;      ///< off-buffer (BRAM-side) element reads
  int64_t bramWrites = 0;
  int64_t bufferCapacityElems = 0; ///< total smart-buffer storage
  int pipelineStages = 1;
  /// Output elements produced per clock once the pipeline is full
  /// (the Table 1 DCT discussion: ROCCC emits 8/clock vs the IP's 1/clock).
  double steadyStateThroughput() const;
  int64_t outputElems = 0;
};

/// Runs a compiled kernel in the Fig 2 system and returns outputs in the
/// same shape interp::runKernel produces. Throws std::runtime_error on
/// simulation-level failures (cycle limit, unbound arrays).
class System {
 public:
  System(const hlir::KernelInfo& kernel, const dp::DataPath& dp, const Module& module,
         SystemOptions options = {});

  interp::KernelIO run(const interp::KernelIO& inputs);
  const SystemStats& stats() const { return stats_; }
  /// VCD text of the last run (empty unless options.recordVcd was set).
  const std::string& vcd() const { return vcd_; }

 private:
  const hlir::KernelInfo& kernel_;
  const dp::DataPath& dp_;
  const Module& module_;
  SystemOptions opt_;
  SystemStats stats_;
  std::string vcd_;
};

/// Stats-only convenience for metric collection (roccc-explore, benches):
/// clocks `kernel` over `inputs` in the Fig 2 system and returns the run's
/// statistics, discarding the outputs. Throws like System::run.
SystemStats measureSystem(const hlir::KernelInfo& kernel, const dp::DataPath& dp,
                          const Module& module, const interp::KernelIO& inputs,
                          const SystemOptions& options = {});

} // namespace roccc::rtl
