// Corpus conformance: every kernel under tests/corpus/ (golden C programs
// beyond Table 1 — multi-loop, nested-conditional, and accumulator/
// reduction shapes) must compile, pass 5-way differential agreement on the
// deterministic stimulus, and ship a self-checking system testbench that
// PASSES under the reference netlist semantics. The generated VHDL is also
// snapshot under tests/golden/corpus/ with the same byte-for-byte contract
// (and --update-goldens escape hatch) as the Table 1 goldens.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "roccc/verify.hpp"

namespace roccc {
namespace {

bool g_updateGoldens = false;

struct CorpusKernel {
  std::string name;   // file stem, also the golden-file stem
  std::string path;
  std::string source;
};

const std::vector<CorpusKernel>& corpus() {
  static const std::vector<CorpusKernel> kernels = [] {
    std::vector<CorpusKernel> out;
    for (const auto& entry : std::filesystem::directory_iterator(ROCCC_CORPUS_DIR)) {
      if (entry.path().extension() != ".c") continue;
      CorpusKernel k;
      k.name = entry.path().stem().string();
      k.path = entry.path().string();
      std::ifstream in(entry.path());
      std::ostringstream buf;
      buf << in.rdbuf();
      k.source = buf.str();
      out.push_back(std::move(k));
    }
    std::sort(out.begin(), out.end(),
              [](const CorpusKernel& a, const CorpusKernel& b) { return a.name < b.name; });
    return out;
  }();
  return kernels;
}

TEST(Corpus, HasAtLeastTwelveKernels) {
  EXPECT_GE(corpus().size(), 12u) << "corpus eroded below the PR-5 floor";
}

TEST(Corpus, FiveWayAgreementWithSelfCheckingTestbenches) {
  std::vector<CompileJob> jobs;
  for (const auto& k : corpus()) {
    for (const int u : {1, 2}) {
      CompileJob job;
      job.name = u == 1 ? k.name : k.name + "@u" + std::to_string(u);
      job.source = k.source;
      job.options.unrollFactor = u;
      jobs.push_back(std::move(job));
    }
  }
  VerifyOptions opt;
  opt.checkTestbench = true;
  const VerifyReport report = verifyConformance(jobs, opt);
  ASSERT_EQ(report.verdicts.size(), jobs.size());
  for (const auto& v : report.verdicts) {
    EXPECT_EQ(v.outcome, CompileOutcome::Ok) << v.kernel << ": " << v.compileError;
    EXPECT_TRUE(v.agree) << v.kernel << ": "
                         << (v.disagreements.empty() ? "" : v.disagreements.front().detail);
    EXPECT_TRUE(v.testbenchPassed) << v.kernel;
    EXPECT_EQ(v.enginesRun, 5) << v.kernel;
  }
}

class CorpusGolden : public ::testing::TestWithParam<CorpusKernel> {};

TEST_P(CorpusGolden, GeneratedVhdlMatchesGoldenBytes) {
  const CorpusKernel& k = GetParam();
  const Compiler compiler;
  const CompileResult r = compiler.compileSource(k.source);
  ASSERT_TRUE(r.ok) << k.path << ":\n" << r.diags.dump();
  ASSERT_FALSE(r.vhdl.empty());

  const std::string path = std::string(ROCCC_GOLDEN_DIR) + "/corpus/" + k.name + ".vhd";
  if (g_updateGoldens) {
    std::filesystem::create_directories(std::string(ROCCC_GOLDEN_DIR) + "/corpus");
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << r.vhdl;
    return;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — regenerate with --update-goldens";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  if (golden != r.vhdl) {
    std::istringstream a(golden), b(r.vhdl);
    std::string la, lb;
    int line = 0;
    while (true) {
      ++line;
      const bool ga = static_cast<bool>(std::getline(a, la));
      const bool gb = static_cast<bool>(std::getline(b, lb));
      if (!ga || !gb || la != lb) break;
    }
    FAIL() << k.name << ": generated VHDL diverges from " << path << " at line " << line
           << "\n  golden:    " << la << "\n  generated: " << lb
           << "\n(run with --update-goldens if the change is intentional)";
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, CorpusGolden, ::testing::ValuesIn(corpus()),
                         [](const ::testing::TestParamInfo<CorpusKernel>& info) {
                           return info.param.name;
                         });

} // namespace
} // namespace roccc

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-goldens") == 0) {
      roccc::g_updateGoldens = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (const char* env = std::getenv("ROCCC_UPDATE_GOLDENS")) {
    if (env[0] != '\0' && env[0] != '0') roccc::g_updateGoldens = true;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
