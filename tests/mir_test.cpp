#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "hlir/kernel.hpp"
#include "mir/exec.hpp"
#include "mir/ir.hpp"
#include "mir/lower.hpp"
#include "mir/passes.hpp"
#include "mir/ssa.hpp"
#include "support/strings.hpp"

namespace roccc::mir {
namespace {

using ast::Module;

Module buildModule(const std::string& src) {
  DiagEngine diags;
  Module m = ast::parse(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  EXPECT_TRUE(ast::analyze(m, diags)) << diags.dump();
  return m;
}

/// Parses a dp-style (loop-free) function and lowers it.
FunctionIR lower(const std::string& src, const std::string& fn) {
  Module m = buildModule(src);
  FunctionIR f;
  DiagEngine diags;
  EXPECT_TRUE(lowerToMir(m, fn, f, diags)) << diags.dump();
  return f;
}

FunctionIR lowerSSA(const std::string& src, const std::string& fn) {
  FunctionIR f = lower(src, fn);
  buildSSA(f);
  std::vector<std::string> errors;
  EXPECT_TRUE(f.verifySSA(errors)) << roccc::join(errors, "\n") << "\n" << f.dump();
  return f;
}

std::vector<Value> inputsOf(const FunctionIR& f, const std::vector<int64_t>& vals) {
  std::vector<Value> in;
  size_t vi = 0;
  for (const auto& p : f.params) {
    if (!p.isOutput) in.push_back(Value::fromInt(p.type, vals.at(vi++)));
  }
  return in;
}

// The paper's Fig 5 kernel, as the dp function (scalars only).
const char* kIfElseSrc = R"(
  void if_else(int x1, int x2, int* x3, int* x4) {
    int a;
    int c;
    c = x1 - x2;
    if (c < x2)
      a = x1 * x1;
    else
      a = x1 * x2 + 3;
    c = c - a;
    *x3 = c;
    *x4 = a;
    return;
  }
)";

TEST(Lower, StraightLine) {
  FunctionIR f = lower("void dp(int a, int b, int* o) { *o = a * b + 3; }", "dp");
  ASSERT_EQ(f.blocks.size(), 1u);
  // in, in, mul, ldc, add, out, ret
  std::vector<Opcode> ops;
  for (const auto& in : f.entry().instrs) ops.push_back(in.op);
  EXPECT_EQ(ops, (std::vector<Opcode>{Opcode::In, Opcode::In, Opcode::Mul, Opcode::Ldc, Opcode::Add,
                                      Opcode::Out, Opcode::Ret}));
}

TEST(Lower, IfElseMakesDiamond) {
  FunctionIR f = lower(kIfElseSrc, "if_else");
  // entry, then, else, join = 4 blocks (the paper's nodes 1-4, Fig 6).
  ASSERT_EQ(f.blocks.size(), 4u);
  EXPECT_EQ(f.blocks[0].succs.size(), 2u);
  EXPECT_EQ(f.blocks[3].preds.size(), 2u);
  std::vector<std::string> errors;
  EXPECT_TRUE(f.verify(errors)) << roccc::join(errors, "\n");
}

TEST(Lower, FeedbackMacros) {
  FunctionIR f = lower(R"(
    int32 sum = 0;
    void acc_dp(int32 A0, int32* out) {
      int32 sum_fb;
      sum_fb = ROCCC_load_prev(sum) + A0;
      ROCCC_store2next(sum, sum_fb);
      *out = sum_fb;
    }
  )", "acc_dp");
  int lpr = 0, snx = 0;
  for (const auto& in : f.entry().instrs) {
    if (in.op == Opcode::Lpr) ++lpr;
    if (in.op == Opcode::Snx) ++snx;
  }
  EXPECT_EQ(lpr, 1);
  EXPECT_EQ(snx, 1);
  ASSERT_EQ(f.feedbacks.size(), 1u);
  EXPECT_EQ(f.feedbacks[0].name, "sum");
}

TEST(Lower, RejectsLoops) {
  Module m = buildModule(R"(
    void dp(const int8 A[4], int8* o) {
      int i;
      int s;
      s = 0;
      for (i = 0; i < 4; i++) { s = s + A[i]; }
      *o = s;
    }
  )");
  FunctionIR f;
  DiagEngine diags;
  EXPECT_FALSE(lowerToMir(m, "dp", f, diags));
  EXPECT_NE(diags.dump().find("controller"), std::string::npos) << diags.dump();
}

TEST(Analyses, RpoAndDominators) {
  FunctionIR f = lower(kIfElseSrc, "if_else");
  const auto rpo = reversePostOrder(f);
  ASSERT_EQ(rpo.size(), 4u);
  EXPECT_EQ(rpo.front(), 0);
  EXPECT_EQ(rpo.back(), 3);
  const DomTree dt = computeDominators(f);
  EXPECT_EQ(dt.idom[0], 0);
  EXPECT_EQ(dt.idom[1], 0);
  EXPECT_EQ(dt.idom[2], 0);
  EXPECT_EQ(dt.idom[3], 0); // join dominated by entry, not by a branch
  EXPECT_TRUE(dt.dominates(0, 3));
  EXPECT_FALSE(dt.dominates(1, 3));
  // The branch blocks have the join in their dominance frontier.
  EXPECT_TRUE(dt.frontier[1].count(3));
  EXPECT_TRUE(dt.frontier[2].count(3));
}

TEST(Analyses, Liveness) {
  FunctionIR f = lowerSSA(kIfElseSrc, "if_else");
  const Liveness lv = computeLiveness(f);
  // x1's register is live out of the entry block (used in both branches).
  int x1reg = -1;
  for (const auto& in : f.entry().instrs) {
    if (in.op == Opcode::In && in.aux0 == 0) x1reg = in.dst;
  }
  ASSERT_GE(x1reg, 0);
  EXPECT_TRUE(lv.liveOut[0].count(x1reg));
  // Nothing is live out of the exit block.
  EXPECT_TRUE(lv.liveOut[3].empty());
}

TEST(Analyses, ReachingDefs) {
  FunctionIR f = lower(kIfElseSrc, "if_else");
  const ReachingDefs rd = computeReachingDefs(f);
  // Defs of 'a' from both branches reach the join block.
  int aReg = -1;
  for (size_t r = 0; r < f.regNames.size(); ++r) {
    if (f.regNames[r] == "a") aReg = static_cast<int>(r);
  }
  ASSERT_GE(aReg, 0);
  int reachingADefs = 0;
  for (const auto& [bid, idx] : rd.in[3]) {
    if (f.blocks[static_cast<size_t>(bid)].instrs[static_cast<size_t>(idx)].dst == aReg) ++reachingADefs;
  }
  EXPECT_EQ(reachingADefs, 2);
}

TEST(SSA, InsertsPhiAtJoin) {
  FunctionIR f = lowerSSA(kIfElseSrc, "if_else");
  int phis = 0;
  for (const auto& in : f.blocks[3].instrs) {
    if (in.op == Opcode::Phi) ++phis;
  }
  // 'a' needs a phi ('c' is only re-assigned in the join itself).
  EXPECT_GE(phis, 1);
}

TEST(SSA, ExecMatchesPreSSA) {
  FunctionIR f0 = lower(kIfElseSrc, "if_else");
  FunctionIR f1 = lower(kIfElseSrc, "if_else");
  buildSSA(f1);
  for (int x1 = -4; x1 <= 4; ++x1) {
    for (int x2 = -4; x2 <= 4; ++x2) {
      const auto a = execute(f0, inputsOf(f0, {x1, x2}), {});
      const auto b = execute(f1, inputsOf(f1, {x1, x2}), {});
      ASSERT_EQ(a.outputs.size(), b.outputs.size());
      for (size_t i = 0; i < a.outputs.size(); ++i) {
        EXPECT_EQ(a.outputs[i].toInt(), b.outputs[i].toInt()) << "x1=" << x1 << " x2=" << x2;
      }
    }
  }
}

TEST(Exec, IfElsePaperValues) {
  FunctionIR f = lowerSSA(kIfElseSrc, "if_else");
  const auto r = execute(f, inputsOf(f, {9, 2}), {});
  EXPECT_EQ(r.outputs[0].toInt(), -14); // x3
  EXPECT_EQ(r.outputs[1].toInt(), 21);  // x4
}

TEST(Exec, FeedbackThreading) {
  FunctionIR f = lowerSSA(R"(
    int32 sum = 5;
    void acc_dp(int32 A0, int32* out) {
      int32 sum_fb;
      sum_fb = ROCCC_load_prev(sum) + A0;
      ROCCC_store2next(sum, sum_fb);
      *out = sum_fb;
    }
  )", "acc_dp");
  std::map<std::string, Value> fb; // empty: initial value 5 applies
  int64_t expect = 5;
  for (int t = 0; t < 6; ++t) {
    const auto r = execute(f, {Value::ofInt(t * 3)}, fb);
    expect += t * 3;
    EXPECT_EQ(r.outputs[0].toInt(), expect);
    fb = r.nextFeedback;
  }
}

TEST(Passes, ConstantPropagationFolds) {
  FunctionIR f = lowerSSA("void dp(int a, int* o) { int x; x = 3 * 5; *o = x + a + (2 - 2); }", "dp");
  constantPropagate(f);
  copyPropagate(f);
  strengthReduce(f);
  deadCodeEliminate(f);
  // Expect: in, ldc(15), add, out, ret (or similar small form); no Mul/Sub.
  for (const auto& b : f.blocks) {
    for (const auto& in : b.instrs) {
      EXPECT_NE(in.op, Opcode::Mul) << f.dump();
      EXPECT_NE(in.op, Opcode::Sub) << f.dump();
    }
  }
}

TEST(Passes, CseRemovesDuplicates) {
  FunctionIR f = lowerSSA(R"(
    void dp(int a, int b, int* o1, int* o2) {
      *o1 = a * b + 1;
      *o2 = a * b + 2;
    }
  )", "dp");
  const int n = commonSubexpressionEliminate(f);
  EXPECT_GE(n, 1);
  deadCodeEliminate(f);
  int muls = 0;
  for (const auto& b : f.blocks) {
    for (const auto& in : b.instrs) {
      if (in.op == Opcode::Mul) ++muls;
    }
  }
  EXPECT_EQ(muls, 1) << f.dump();
}

TEST(Passes, CseRespectsDominance) {
  // A multiply in one branch must not satisfy a multiply in the other.
  FunctionIR f = lowerSSA(R"(
    void dp(int a, int b, int c, int* o) {
      int r;
      if (c) { r = a * b; } else { r = a * b + 1; }
      *o = r;
    }
  )", "dp");
  commonSubexpressionEliminate(f);
  deadCodeEliminate(f);
  int muls = 0;
  for (const auto& b : f.blocks) {
    for (const auto& in : b.instrs) {
      if (in.op == Opcode::Mul) ++muls;
    }
  }
  EXPECT_EQ(muls, 2) << f.dump();
}

TEST(Passes, DceKeepsSideEffects) {
  FunctionIR f = lowerSSA(R"(
    int32 s = 0;
    void dp(int a, int* o) {
      int dead;
      dead = a * 17;
      ROCCC_store2next(s, a);
      *o = a + 1;
    }
  )", "dp");
  deadCodeEliminate(f);
  bool hasSnx = false, hasDeadMul = false;
  for (const auto& b : f.blocks) {
    for (const auto& in : b.instrs) {
      if (in.op == Opcode::Snx) hasSnx = true;
      if (in.op == Opcode::Mul) hasDeadMul = true;
    }
  }
  EXPECT_TRUE(hasSnx);
  EXPECT_FALSE(hasDeadMul);
}

TEST(Passes, StrengthReduction) {
  FunctionIR f = lowerSSA(R"(
    void dp(uint16 a, uint16* o1, uint16* o2, uint16* o3) {
      *o1 = a * 8;
      *o2 = a / 4;
      *o3 = a % 16;
    }
  )", "dp");
  strengthReduce(f);
  int mulDivRem = 0, shifts = 0, ands = 0;
  for (const auto& b : f.blocks) {
    for (const auto& in : b.instrs) {
      if (in.op == Opcode::Mul || in.op == Opcode::Div || in.op == Opcode::Rem) ++mulDivRem;
      if (in.op == Opcode::Shl || in.op == Opcode::Shr) ++shifts;
      if (in.op == Opcode::And) ++ands;
    }
  }
  EXPECT_EQ(mulDivRem, 0) << f.dump();
  EXPECT_EQ(shifts, 2);
  EXPECT_EQ(ands, 1);
}

TEST(Passes, SignedDivNotReduced) {
  FunctionIR f = lowerSSA("void dp(int a, int* o) { *o = a / 4; }", "dp");
  strengthReduce(f);
  int divs = 0;
  for (const auto& b : f.blocks) {
    for (const auto& in : b.instrs) {
      if (in.op == Opcode::Div) ++divs;
    }
  }
  EXPECT_EQ(divs, 1); // a>>2 != a/4 for negative a
}

TEST(Passes, PipelinePreservesSemantics) {
  const char* src = R"(
    void dp(int a, int b, int c, int* o1, int* o2) {
      int t;
      int u;
      t = a * b + a * b;
      if (c < a) { u = t - b * 2; } else { u = t + 0; }
      *o1 = u * 1;
      *o2 = (a & 0) + t / 1;
    }
  )";
  FunctionIR ref = lowerSSA(src, "dp");
  FunctionIR opt = lowerSSA(src, "dp");
  runStandardPasses(opt);
  std::vector<std::string> errors;
  EXPECT_TRUE(opt.verifySSA(errors)) << roccc::join(errors, "\n") << opt.dump();
  for (int a = -3; a <= 3; ++a) {
    for (int b = -3; b <= 3; ++b) {
      for (int c = -1; c <= 1; ++c) {
        const auto r0 = execute(ref, inputsOf(ref, {a, b, c}), {});
        const auto r1 = execute(opt, inputsOf(opt, {a, b, c}), {});
        for (size_t i = 0; i < r0.outputs.size(); ++i) {
          ASSERT_EQ(r0.outputs[i].toInt(), r1.outputs[i].toInt())
              << "a=" << a << " b=" << b << " c=" << c << "\n" << opt.dump();
        }
      }
    }
  }
}

TEST(Verify, CatchesBrokenIR) {
  FunctionIR f = lower("void dp(int a, int* o) { *o = a; }", "dp");
  f.entry().instrs[0].dst = 99; // out-of-range register
  std::vector<std::string> errors;
  EXPECT_FALSE(f.verify(errors));
}

TEST(Verify, CatchesDoubleAssignment) {
  FunctionIR f = lower("void dp(int a, int* o) { int t; t = a; t = a + 1; *o = t; }", "dp");
  std::vector<std::string> errors;
  EXPECT_FALSE(f.verifySSA(errors)); // pre-SSA: t assigned twice
  buildSSA(f);
  errors.clear();
  EXPECT_TRUE(f.verifySSA(errors)) << roccc::join(errors, "\n");
}

// End-to-end: kernel extraction -> lowering -> SSA -> passes, validated
// against the whole-kernel AST interpreter via per-iteration execution.
TEST(EndToEnd, FirThroughMirMatchesInterp) {
  Module m = buildModule(R"(
    void fir(const int16 A[21], int16 C[17]) {
      int i;
      for (i = 0; i < 17; i = i + 1) {
        C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
      }
    }
  )");
  hlir::KernelInfo k;
  DiagEngine diags;
  ASSERT_TRUE(hlir::extractKernel(m, "fir", k, diags)) << diags.dump();
  FunctionIR f;
  ASSERT_TRUE(lowerToMir(k.dpModule, k.dpName, f, diags)) << diags.dump();
  buildSSA(f);
  runStandardPasses(f);
  std::vector<std::string> errors;
  ASSERT_TRUE(f.verifySSA(errors)) << roccc::join(errors, "\n");

  std::vector<int64_t> a;
  for (int i = 0; i < 21; ++i) a.push_back((i * 37) % 97 - 48);
  for (int i = 0; i < 17; ++i) {
    std::vector<Value> in;
    for (int t = 0; t < 5; ++t) in.push_back(Value::fromInt(ScalarType::make(16, true), a[i + t]));
    const auto r = execute(f, in, {});
    const int64_t expect =
        static_cast<int16_t>(3 * a[i] + 5 * a[i + 1] + 7 * a[i + 2] + 9 * a[i + 3] - a[i + 4]);
    EXPECT_EQ(r.outputs[0].toInt(), expect) << "iteration " << i;
  }
}

TEST(EndToEnd, MulAccThroughMir) {
  Module m = buildModule(R"(
    int32 acc = 0;
    void mul_acc(const int12 A[16], const int12 B[16], uint1 nd, int32* out) {
      int i;
      for (i = 0; i < 16; i++) {
        if (nd) {
          acc = acc + A[i] * B[i];
        }
      }
      *out = acc;
    }
  )");
  hlir::KernelInfo k;
  DiagEngine diags;
  ASSERT_TRUE(hlir::extractKernel(m, "mul_acc", k, diags)) << diags.dump();
  FunctionIR f;
  ASSERT_TRUE(lowerToMir(k.dpModule, k.dpName, f, diags)) << diags.dump();
  buildSSA(f);
  runStandardPasses(f);

  // Conditional accumulate: run 16 iterations with nd toggling.
  std::map<std::string, Value> fb;
  int64_t expect = 0;
  for (int i = 0; i < 16; ++i) {
    const int64_t av = i - 8, bv = 3 * i;
    const int nd = i % 3 == 0 ? 0 : 1;
    if (nd) expect += av * bv;
    // dp inputs: A0, B0, nd (order per extraction).
    std::vector<Value> in = {Value::fromInt(ScalarType::make(12, true), av),
                             Value::fromInt(ScalarType::make(12, true), bv),
                             Value::fromInt(ScalarType::make(1, false), nd)};
    const auto r = execute(f, in, fb);
    fb = r.nextFeedback;
    EXPECT_EQ(r.outputs[0].toInt(), expect) << "i=" << i;
  }
}

} // namespace
} // namespace roccc::mir
