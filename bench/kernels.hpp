// The nine Table 1 workloads as ROCCC C kernels, shared by the benches and
// the examples. Port widths follow the paper's section 5 descriptions.
#pragma once

namespace roccc::bench {

// Counts the bits of an 8-bit input equal to a constant mask (mask 181).
inline constexpr const char* kBitCorrelator = R"(
void bit_correlator(const uint8 A[64], uint4 C[64]) {
  int i;
  int j;
  int cnt;
  for (i = 0; i < 64; i++) {
    cnt = 0;
    for (j = 0; j < 8; j++) {
      if (((A[i] >> j) & 1) == ((181 >> j) & 1)) {
        cnt = cnt + 1;
      }
    }
    C[i] = cnt;
  }
}
)";

// 12-bit multiplier-accumulator with the nd (new data) control expressed as
// if-else (the section 5 discussion point).
inline constexpr const char* kMulAcc = R"(
int32 acc = 0;
void mul_acc(const int12 A[64], const int12 B[64], uint1 nd, int32* out) {
  int i;
  for (i = 0; i < 64; i++) {
    if (nd) {
      acc = acc + A[i] * B[i];
    }
  }
  *out = acc;
}
)";

// The algorithm-level alternative the paper discusses: multiply by nd
// instead of branching ("one more multiplier ... but overall area and clock
// rate performance was better").
inline constexpr const char* kMulAccPredicated = R"(
int32 acc = 0;
void mul_acc(const int12 A[64], const int12 B[64], uint1 nd, int32* out) {
  int i;
  for (i = 0; i < 64; i++) {
    acc = acc + A[i] * B[i] * nd;
  }
  *out = acc;
}
)";

// 8-bit unsigned divider.
inline constexpr const char* kUdiv = R"(
void udiv(const uint8 N[64], const uint8 D[64], uint8 Q[64]) {
  int i;
  for (i = 0; i < 64; i++) {
    Q[i] = N[i] / D[i];
  }
}
)";

// 24-bit integer square root, digit recurrence written in plain C (the
// compiler fully unrolls the 12-step inner loop).
inline constexpr const char* kSquareRoot = R"(
void square_root(const uint24 X[64], uint12 R[64]) {
  int i;
  int k;
  uint26 rem;
  uint13 root;
  uint26 trial;
  uint26 two;
  for (i = 0; i < 64; i++) {
    rem = 0;
    root = 0;
    for (k = 0; k < 12; k++) {
      two = (X[i] >> (22 - 2*k)) & 3;
      rem = (rem << 2) | two;
      trial = (root << 2) | 1;
      if (rem >= trial) {
        rem = rem - trial;
        root = (root << 1) | 1;
      } else {
        root = root << 1;
      }
    }
    R[i] = root;
  }
}
)";

// cos via the pre-existing lookup-table IP (10-bit phase in, Q15 out).
inline constexpr const char* kCos = R"(
void cos_kernel(const uint10 P[64], int16 C[64]) {
  int i;
  for (i = 0; i < 64; i++) {
    C[i] = ROCCC_cos(P[i]);
  }
}
)";

// 5-tap constant-coefficient FIR (the paper instantiates two of these).
inline constexpr const char* kFir = R"(
void fir(const int8 A[68], int16 C[64]) {
  int i;
  for (i = 0; i < 64; i = i + 1) {
    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
  }
}
)";

// 8-point 1-D DCT, 8 outputs per iteration, even/odd symmetry explored
// (integer 10-bit scaled cosine coefficients).
inline constexpr const char* kDct = R"(
void dct(const int8 X[64], int19 Y[64]) {
  int i;
  int19 s0;
  int19 s1;
  int19 s2;
  int19 s3;
  int19 d0;
  int19 d1;
  int19 d2;
  int19 d3;
  for (i = 0; i < 8; i++) {
    s0 = X[8*i]   + X[8*i+7];
    s1 = X[8*i+1] + X[8*i+6];
    s2 = X[8*i+2] + X[8*i+5];
    s3 = X[8*i+3] + X[8*i+4];
    d0 = X[8*i]   - X[8*i+7];
    d1 = X[8*i+1] - X[8*i+6];
    d2 = X[8*i+2] - X[8*i+5];
    d3 = X[8*i+3] - X[8*i+4];
    Y[8*i]   = (724*s0 + 724*s1 + 724*s2 + 724*s3) >> 10;
    Y[8*i+2] = (946*(s0 - s3) + 392*(s1 - s2)) >> 10;
    Y[8*i+4] = (724*(s0 - s1 - s2 + s3)) >> 10;
    Y[8*i+6] = (392*(s0 - s3) - 946*(s1 - s2)) >> 10;
    Y[8*i+1] = (1004*d0 + 851*d1 + 569*d2 + 200*d3) >> 10;
    Y[8*i+3] = (851*d0 - 200*d1 - 1004*d2 - 569*d3) >> 10;
    Y[8*i+5] = (569*d0 - 1004*d1 + 200*d2 + 851*d3) >> 10;
    Y[8*i+7] = (200*d0 - 569*d1 + 851*d2 - 1004*d3) >> 10;
  }
}
)";

// 2-D (5,3)-style wavelet stage: 5x3 window, lifting-like constant
// arithmetic; the engine row includes buffers and controllers.
inline constexpr const char* kWavelet = R"(
void wavelet(const int16 X[68][66], int16 S[64][64], int16 D[64][64]) {
  int i;
  int j;
  int16 p0;
  int16 p1;
  int16 p2;
  int16 u;
  for (i = 0; i < 64; i++) {
    for (j = 0; j < 64; j++) {
      p0 = X[i][j+1]   - ((X[i][j]   + X[i][j+2]) >> 1);
      p1 = X[i+2][j+1] - ((X[i+2][j] + X[i+2][j+2]) >> 1);
      p2 = X[i+4][j+1] - ((X[i+4][j] + X[i+4][j+2]) >> 1);
      u  = X[i+2][j+1] + ((p0 + p1 + 2) >> 2);
      S[i][j] = u + ((p1 + p2) >> 2);
      D[i][j] = p1;
    }
  }
}
)";

/// The nine Table 1 workloads with their bench_table1 compile options
/// (stage-delay targets for the udiv/dct/wavelet rows; 0 = default). This
/// is the canonical list for batch benches, the golden-snapshot tests and
/// the determinism tests — one row per kernel, in table order.
struct NamedKernel {
  const char* name;
  const char* source;
  double targetStageDelayNs; ///< 0 = BuildOptions default
};

inline constexpr NamedKernel kTable1Kernels[] = {
    {"bit_correlator", kBitCorrelator, 0},
    {"mul_acc", kMulAcc, 0},
    {"mul_acc_predicated", kMulAccPredicated, 0},
    {"udiv", kUdiv, 3.0},
    {"square_root", kSquareRoot, 0},
    {"cos", kCos, 0},
    {"fir", kFir, 0},
    {"dct", kDct, 7.5},
    {"wavelet", kWavelet, 9.0},
};

} // namespace roccc::bench
