// The fault-containment contract, exercised from both ends:
//
//  - the fault-injection sweep arms every entry of faultPointRegistry() in
//    turn and asserts that the process survives, the job reports
//    CompileOutcome::InternalError naming the expected pass, and sibling
//    jobs in an 8-worker batch stay byte-identical to a clean run;
//  - the budget tests drive each CompileBudget limit (deadline, IR nodes,
//    unroll product, nesting depth) to its violation and assert the
//    structured Timeout / ResourceExceeded classification.
//
// The nightly all-kernel sweep (ROCCC_FAULT_SWEEP_ALL=1) repeats the
// injection for every fault point across the full nine-kernel Table 1
// batch.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "../bench/kernels.hpp"
#include "roccc/driver.hpp"
#include "support/budget.hpp"
#include "support/faultpoint.hpp"

namespace roccc {
namespace {

std::vector<CompileJob> table1Jobs() {
  std::vector<CompileJob> jobs;
  for (const auto& k : bench::kTable1Kernels) {
    CompileOptions o;
    if (k.targetStageDelayNs > 0) o.dpOptions.targetStageDelayNs = k.targetStageDelayNs;
    jobs.push_back({k.name, k.source, o});
  }
  return jobs;
}

// --- the registry -----------------------------------------------------------

TEST(FaultInjection, RegistryNamesAreUniqueAndNonEmpty) {
  const auto& reg = faultPointRegistry();
  ASSERT_FALSE(reg.empty());
  std::set<std::string> names;
  for (const auto& fp : reg) {
    ASSERT_NE(fp.name, nullptr);
    ASSERT_NE(fp.pass, nullptr);
    EXPECT_FALSE(std::string(fp.name).empty());
    EXPECT_TRUE(names.insert(fp.name).second) << "duplicate fault point " << fp.name;
  }
}

TEST(FaultInjection, DisarmedHookIsInert) {
  EXPECT_FALSE(faultInjectionArmed());
  faultpoint("dp.build"); // must not throw
  const FaultInjectionScope none("");
  EXPECT_FALSE(faultInjectionArmed());
  faultpoint("dp.build");
}

TEST(FaultInjection, ScopeArmsExactlyOnePointAndNests) {
  const FaultInjectionScope outer("dp.build");
  EXPECT_TRUE(faultInjectionArmed());
  faultpoint("rtl.elaborate"); // different point: inert
  EXPECT_THROW(faultpoint("dp.build"), FaultInjected);
  {
    const FaultInjectionScope inner("mir.ssa");
    faultpoint("dp.build"); // outer arming is shadowed
    EXPECT_THROW(faultpoint("mir.ssa"), FaultInjected);
  }
  EXPECT_THROW(faultpoint("dp.build"), FaultInjected); // restored
}

// --- the sweep: every point, one kernel -------------------------------------

TEST(FaultInjection, EveryRegisteredPointIsContained) {
  for (const auto& fp : faultPointRegistry()) {
    CompileOptions o;
    o.injectFaultAt = fp.name;
    if (std::string(fp.pass).empty()) {
      // Points outside the PassManager ("driver.job") only fire under the
      // batch driver.
      const BatchResult batch = CompileService(1).compileBatch({{"fir", bench::kFir, o}});
      ASSERT_EQ(batch.results.size(), 1u);
      EXPECT_FALSE(batch.results[0].ok) << fp.name;
      EXPECT_EQ(batch.results[0].outcome, CompileOutcome::InternalError) << fp.name;
      EXPECT_TRUE(batch.results[0].diags.hasErrors()) << fp.name;
      continue;
    }
    const Compiler compiler(o);
    const CompileResult r = compiler.compileSource(bench::kFir);
    EXPECT_FALSE(r.ok) << fp.name;
    EXPECT_EQ(r.outcome, CompileOutcome::InternalError) << fp.name;
    EXPECT_EQ(r.failedPass, fp.pass) << fp.name;
    bool mentionsInjection = false;
    for (const auto& d : r.diags.all()) {
      mentionsInjection |= d.message.find("injected fault") != std::string::npos;
    }
    EXPECT_TRUE(mentionsInjection) << fp.name;
  }
}

// --- sibling isolation under an 8-worker batch ------------------------------

TEST(FaultInjection, ArmedJobLeavesSiblingsByteIdentical) {
  const std::vector<CompileJob> clean = table1Jobs();
  const CompileService service(8);
  const BatchResult reference = service.compileBatch(clean);
  ASSERT_TRUE(reference.allOk());

  std::vector<CompileJob> armed = clean;
  armed[3].options.injectFaultAt = "dp.build";
  const BatchResult faulted = service.compileBatch(armed);
  ASSERT_EQ(faulted.results.size(), reference.results.size());

  EXPECT_FALSE(faulted.results[3].ok);
  EXPECT_EQ(faulted.results[3].outcome, CompileOutcome::InternalError);
  EXPECT_EQ(faulted.results[3].failedPass, "build-datapath");
  for (size_t i = 0; i < faulted.results.size(); ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(faulted.results[i].ok) << "slot " << i;
    EXPECT_EQ(faulted.results[i].vhdl, reference.results[i].vhdl) << "slot " << i;
    EXPECT_EQ(faulted.results[i].verilog, reference.results[i].verilog) << "slot " << i;
  }
  EXPECT_EQ(faulted.countOutcome(CompileOutcome::InternalError), 1);
  EXPECT_EQ(faulted.countOutcome(CompileOutcome::Ok),
            static_cast<int>(faulted.results.size()) - 1);
}

TEST(FaultInjection, WorkersSurviveABatchWhereEveryJobThrows) {
  std::vector<CompileJob> jobs = table1Jobs();
  for (auto& j : jobs) j.options.injectFaultAt = "driver.job";
  const BatchResult batch = CompileService(8).compileBatch(jobs);
  ASSERT_EQ(batch.results.size(), jobs.size());
  EXPECT_EQ(batch.countOutcome(CompileOutcome::InternalError),
            static_cast<int>(jobs.size()));
  EXPECT_EQ(batch.outcomeSummary(), "9 internal-error");
  // The same service still compiles a clean batch afterwards: no worker
  // was wedged by the throwing jobs.
  const BatchResult after = CompileService(8).compileBatch(table1Jobs());
  EXPECT_TRUE(after.allOk());
}

// --- nightly: every point x every Table 1 kernel ----------------------------

TEST(FaultInjectionNightly, SweepAllPointsAcrossTheFullBatch) {
  if (std::getenv("ROCCC_FAULT_SWEEP_ALL") == nullptr) {
    GTEST_SKIP() << "set ROCCC_FAULT_SWEEP_ALL=1 to run the full sweep";
  }
  const std::vector<CompileJob> clean = table1Jobs();
  const CompileService service(8);
  const BatchResult reference = service.compileBatch(clean);
  ASSERT_TRUE(reference.allOk());

  for (const auto& fp : faultPointRegistry()) {
    // Arm one job per round (rotating the slot with the point index) so
    // every kernel eventually hosts an injection while its siblings are
    // checked for byte-identity.
    for (size_t slot = 0; slot < clean.size(); ++slot) {
      std::vector<CompileJob> armed = clean;
      armed[slot].options.injectFaultAt = fp.name;
      const BatchResult faulted = service.compileBatch(armed);
      ASSERT_EQ(faulted.results.size(), clean.size()) << fp.name;
      EXPECT_FALSE(faulted.results[slot].ok) << fp.name << " slot " << slot;
      EXPECT_EQ(faulted.results[slot].outcome, CompileOutcome::InternalError)
          << fp.name << " slot " << slot;
      for (size_t i = 0; i < faulted.results.size(); ++i) {
        if (i == slot) continue;
        ASSERT_EQ(faulted.results[i].vhdl, reference.results[i].vhdl)
            << fp.name << " sibling " << i << " of armed slot " << slot;
      }
    }
  }
}

// --- budgets ----------------------------------------------------------------

TEST(CompileBudget, ExpiredDeadlineIsATimeoutInTheFirstPass) {
  CompileOptions o;
  o.budget.timeoutMs = -1; // already expired: deterministic, no clock race
  const Compiler compiler(o);
  const CompileResult r = compiler.compileSource(bench::kFir);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.outcome, CompileOutcome::Timeout);
  EXPECT_EQ(r.failedPass, "parse");
}

TEST(CompileBudget, IrNodeBudgetIsResourceExceeded) {
  CompileOptions o;
  o.budget.maxIrNodes = 10;
  const Compiler compiler(o);
  const CompileResult r = compiler.compileSource(bench::kFir);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.outcome, CompileOutcome::ResourceExceeded);
  EXPECT_EQ(r.failedPass, "parse"); // the AST alone exceeds 10 nodes
}

TEST(CompileBudget, UnrollProductBudgetContainsExpansion) {
  CompileOptions o;
  o.unrollFactor = 4;
  o.budget.maxUnrollProduct = 2;
  const Compiler compiler(o);
  const CompileResult r = compiler.compileSource(bench::kFir);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.outcome, CompileOutcome::ResourceExceeded);
  EXPECT_EQ(r.failedPass, "unroll");
}

TEST(CompileBudget, DepthCapContainsPathologicalNesting) {
  std::string deep = "void k(const int A[4], int B[4]) {\n  int i;\n"
                     "  for (i = 0; i < 4; i = i + 1) { B[i] = ";
  for (int i = 0; i < 400; ++i) deep += '(';
  deep += "A[i]";
  for (int i = 0; i < 400; ++i) deep += ')';
  deep += "; }\n}\n";
  const Compiler compiler(CompileOptions{});
  const CompileResult r = compiler.compileSource(deep);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.outcome, CompileOutcome::ResourceExceeded);
  EXPECT_EQ(r.failedPass, "parse");
}

TEST(CompileBudget, GenerousBudgetLeavesOutputByteIdentical) {
  // Armed-but-untriggered governance must not perturb the output: this is
  // the determinism side of the <1% overhead claim in EXPERIMENTS.md.
  const Compiler plain(CompileOptions{});
  const CompileResult base = plain.compileSource(bench::kFir);
  ASSERT_TRUE(base.ok);

  CompileOptions o;
  o.budget.timeoutMs = 60'000;
  o.budget.maxIrNodes = 10'000'000;
  o.budget.maxUnrollProduct = 1'000'000;
  o.budget.maxDepth = 256;
  const Compiler governed(o);
  const CompileResult r = governed.compileSource(bench::kFir);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.vhdl, base.vhdl);
  EXPECT_EQ(r.verilog, base.verilog);
}

TEST(CompileBudget, ChargeUnrollSaturatesInsteadOfOverflowing) {
  CompileBudget b({});
  // Unlimited budget: repeated huge charges must neither throw nor wrap
  // into a negative product.
  for (int i = 0; i < 64; ++i) b.chargeUnroll(1'000'000'000, "test");
  EXPECT_GT(b.unrollProduct(), 0);
}

TEST(CompileBudget, ExceptionCarriesKindWhereAndMagnitudes) {
  BudgetLimits lim;
  lim.maxUnrollProduct = 8;
  CompileBudget b(lim);
  try {
    b.chargeUnroll(16, "here");
    FAIL() << "chargeUnroll should have thrown";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.kind(), BudgetKind::UnrollProduct);
    EXPECT_EQ(e.where(), "here");
    EXPECT_EQ(e.observed(), 16);
    EXPECT_EQ(e.limit(), 8);
  }
}

TEST(CompileBudget, OutcomeNamesAreStable) {
  EXPECT_STREQ(compileOutcomeName(CompileOutcome::Ok), "ok");
  EXPECT_STREQ(compileOutcomeName(CompileOutcome::FrontendError), "frontend-error");
  EXPECT_STREQ(compileOutcomeName(CompileOutcome::Timeout), "timeout");
  EXPECT_STREQ(compileOutcomeName(CompileOutcome::ResourceExceeded), "resource-exceeded");
  EXPECT_STREQ(compileOutcomeName(CompileOutcome::InternalError), "internal-error");
}

} // namespace
} // namespace roccc
