# Empty compiler generated dependencies file for roccc_vhdl.
# This may be replaced when dependencies are built.
