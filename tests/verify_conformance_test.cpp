// The differential-conformance acceptance suite: every Table 1 kernel at
// unroll 1/2/4 must pass 5-way agreement (AST interpreter, MIR executor,
// data-path evaluator, reference netlist simulator, FastSim) on the
// deterministic stimulus, with every generated system-level testbench
// self-reporting PASSED under the reference netlist semantics. Also locks
// the counterexample machinery (a corrupted netlist must produce a
// minimized disagreement, not a silent pass) and the soak-mode invariant
// that a fault-injected job never changes sibling verdicts.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "../bench/kernels.hpp"
#include "roccc/verify.hpp"

namespace roccc {
namespace {

std::vector<CompileJob> table1Jobs(const std::vector<int>& unrolls) {
  std::vector<CompileJob> jobs;
  for (const auto& k : bench::kTable1Kernels) {
    for (const int u : unrolls) {
      CompileJob job;
      job.name = u == 1 ? k.name : k.name + std::string("@u") + std::to_string(u);
      job.source = k.source;
      job.options.unrollFactor = u;
      if (k.targetStageDelayNs > 0) job.options.dpOptions.targetStageDelayNs = k.targetStageDelayNs;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

TEST(VerifyConformance, Table1FiveWayAgreementAcrossUnrollFactors) {
  VerifyOptions opt;
  opt.checkTestbench = true;
  const VerifyReport report = verifyConformance(table1Jobs({1, 2, 4}), opt);
  ASSERT_EQ(report.verdicts.size(), 27u);
  EXPECT_EQ(report.compileFailures(), 0);
  for (const auto& v : report.verdicts) {
    EXPECT_TRUE(v.agree) << v.kernel << ": "
                         << (v.disagreements.empty() ? v.compileError
                                                     : v.disagreements.front().detail);
    EXPECT_TRUE(v.testbenchPassed) << v.kernel;
    EXPECT_EQ(v.enginesRun, 5) << v.kernel;
    EXPECT_GT(v.iterations, 0) << v.kernel;
  }
  EXPECT_TRUE(report.allAgree());
  EXPECT_EQ(report.agreed(), 27);
}

TEST(VerifyConformance, UnrollingNeverChangesTheOutputDigest) {
  // The paper's transforms are semantics-preserving: the kernel-level
  // results (and hence the digest of the golden outputs) must be identical
  // at every unroll factor.
  const VerifyReport report = verifyConformance(table1Jobs({1, 2, 4}), VerifyOptions{});
  std::map<std::string, uint64_t> base;
  for (const auto& v : report.verdicts) {
    const std::string kernel = v.kernel.substr(0, v.kernel.find('@'));
    const auto [it, fresh] = base.emplace(kernel, v.outputDigest);
    if (!fresh) {
      EXPECT_EQ(it->second, v.outputDigest) << v.kernel << " digest changed under unrolling";
    }
  }
}

TEST(VerifyConformance, StimulusIsDeterministicAndSeedSensitive) {
  Compiler compiler;
  const CompileResult r = compiler.compileSource(bench::kFir);
  ASSERT_TRUE(r.ok);
  const interp::KernelIO a = deterministicStimulus(r.kernel, 1);
  const interp::KernelIO b = deterministicStimulus(r.kernel, 1);
  const interp::KernelIO c = deterministicStimulus(r.kernel, 2);
  EXPECT_EQ(a.arrays, b.arrays);
  EXPECT_EQ(a.scalars, b.scalars);
  EXPECT_NE(a.arrays, c.arrays);
}

TEST(VerifyConformance, CorruptedNetlistYieldsMinimizedCounterexample) {
  Compiler compiler;
  CompileResult r = compiler.compileSource(bench::kFir);
  ASSERT_TRUE(r.ok);
  // Flip one constant cell in the module: both netlist engines now compute
  // a different (but mutually consistent) result, so the verdict must be a
  // localized disagreement against the golden model — never a pass.
  bool flipped = false;
  for (auto& cell : r.module.cells) {
    if (cell.kind == rtl::CellKind::Const && cell.imm > 1) {
      cell.imm += 1;
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped) << "expected a coefficient constant in the fir netlist";
  const KernelVerdict v = verifyKernel("fir-corrupt", bench::kFir, r, VerifyOptions{});
  EXPECT_FALSE(v.agree);
  ASSERT_FALSE(v.disagreements.empty());
  const Counterexample& ce = v.disagreements.front();
  EXPECT_TRUE(ce.engine == VerifyEngine::NetlistRef || ce.engine == VerifyEngine::FastSim);
  EXPECT_FALSE(ce.port.empty());
  EXPECT_GE(ce.index, 0);
  EXPECT_NE(ce.expected, ce.got);
}

TEST(VerifyConformance, EngineMaskRestrictsWhatRuns) {
  Compiler compiler;
  const CompileResult r = compiler.compileSource(bench::kUdiv);
  ASSERT_TRUE(r.ok);
  VerifyOptions opt;
  opt.engineMask = 1u << static_cast<int>(VerifyEngine::DpEval);
  const KernelVerdict v = verifyKernel("udiv", bench::kUdiv, r, opt);
  EXPECT_TRUE(v.agree) << (v.disagreements.empty() ? "" : v.disagreements.front().detail);
  EXPECT_EQ(v.enginesRun, 2); // the interp oracle + dp-eval
}

TEST(VerifyConformance, CompileFailureIsAVerdictNotAnAbort) {
  std::vector<CompileJob> jobs = table1Jobs({1});
  jobs[3].source = "void broken(";
  const VerifyReport report = verifyConformance(jobs, VerifyOptions{});
  ASSERT_EQ(report.verdicts.size(), jobs.size());
  EXPECT_EQ(report.compileFailures(), 1);
  EXPECT_EQ(report.verdicts[3].outcome, CompileOutcome::FrontendError);
  EXPECT_FALSE(report.verdicts[3].compileError.empty());
  // Every other kernel still verifies.
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(report.verdicts[i].agree) << report.verdicts[i].kernel;
  }
  EXPECT_TRUE(report.allAgree()); // disagreement means a *semantic* split
  EXPECT_FALSE(report.toJson().empty());
}

// The soak invariant (PR-4 harness reuse): arming a fault point on one job
// classifies that job as InternalError and leaves every sibling verdict —
// agreement, iteration count, output digest — bit-identical to a clean run.
TEST(VerifyConformance, InjectedFaultNeverPoisonsSiblingVerdicts) {
  const std::vector<CompileJob> clean = table1Jobs({1});
  const VerifyReport baseline = verifyConformance(clean, VerifyOptions{});
  ASSERT_TRUE(baseline.allAgree());

  for (const char* point : {"dp.build", "mir.ssa", "driver.job"}) {
    for (const size_t victim : {size_t{0}, size_t{4}, size_t{8}}) {
      std::vector<CompileJob> armed = clean;
      armed[victim].options.injectFaultAt = point;
      const VerifyReport report = verifyConformance(armed, VerifyOptions{});
      EXPECT_EQ(report.verdicts[victim].outcome, CompileOutcome::InternalError)
          << point << " on " << clean[victim].name;
      for (size_t i = 0; i < clean.size(); ++i) {
        if (i == victim) continue;
        const auto& base = baseline.verdicts[i];
        const auto& got = report.verdicts[i];
        EXPECT_EQ(base.outcome, got.outcome) << got.kernel;
        EXPECT_EQ(base.agree, got.agree) << got.kernel;
        EXPECT_EQ(base.iterations, got.iterations) << got.kernel;
        EXPECT_EQ(base.outputDigest, got.outputDigest)
            << got.kernel << " poisoned by '" << point << "' on " << clean[victim].name;
      }
    }
  }
}

} // namespace
} // namespace roccc
