#include <gtest/gtest.h>

#include "roccc/compiler.hpp"
#include "support/strings.hpp"
#include "vhdl/check.hpp"

namespace roccc {
namespace {

CompileResult compile(const std::string& src, CompileOptions opt = {}) {
  Compiler c(opt);
  CompileResult r = c.compileSource(src);
  EXPECT_TRUE(r.ok) << r.diags.dump();
  if (r.ok) {
    std::vector<std::string> errors;
    EXPECT_TRUE(r.module.verify(errors)) << "module verify: " << join(errors, "\n");
  }
  return r;
}

void expectCosim(const std::string& src, const interp::KernelIO& in, CompileOptions opt = {},
                 rtl::SystemOptions sys = {}) {
  CompileResult r = compile(src, opt);
  ASSERT_TRUE(r.ok);
  const CosimReport rep = cosimulate(r, src, in, sys);
  EXPECT_TRUE(rep.match) << rep.mismatch << "\n" << r.datapath.dump();
}

const char* kFirSrc = R"(
  void fir(const int16 A[36], int16 C[32]) {
    int i;
    for (i = 0; i < 32; i = i + 1) {
      C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
    }
  }
)";

interp::KernelIO firInput() {
  interp::KernelIO in;
  for (int i = 0; i < 36; ++i) in.arrays["A"].push_back((i * 73) % 251 - 125);
  return in;
}

TEST(System, FivetapFirCosim) { expectCosim(kFirSrc, firInput()); }

TEST(System, FirThroughputIsOnePerCycleAfterFill) {
  CompileResult r = compile(kFirSrc);
  rtl::System sys(r.kernel, r.datapath, r.module);
  sys.run(firInput());
  const auto& st = sys.stats();
  // 32 iterations; fill = 5-element window + pipeline depth. Total cycles
  // should be iterations + fill overhead, comfortably under 2x iterations.
  EXPECT_EQ(st.iterations, 32);
  EXPECT_LT(st.cycles, 32 + 5 + st.pipelineStages + 8) << "cycles " << st.cycles;
  // Smart buffer fetched each element exactly once.
  EXPECT_EQ(st.bramReads, 36);
}

TEST(System, AccumulatorCosim) {
  const char* src = R"(
    int sum = 0;
    void acc(const int32 A[32], int32* out) {
      int i;
      for (i = 0; i < 32; i++) {
        sum = sum + A[i];
      }
      *out = sum;
    }
  )";
  interp::KernelIO in;
  for (int i = 0; i < 32; ++i) in.arrays["A"].push_back(i * 11 - 160);
  expectCosim(src, in);
}

TEST(System, MulAccWithConditionCosim) {
  const char* src = R"(
    int32 acc = 0;
    void mul_acc(const int12 A[16], const int12 B[16], uint1 nd, int32* out) {
      int i;
      for (i = 0; i < 16; i++) {
        if (nd) {
          acc = acc + A[i] * B[i];
        }
      }
      *out = acc;
    }
  )";
  for (int nd = 0; nd <= 1; ++nd) {
    interp::KernelIO in;
    in.scalars["nd"] = nd;
    for (int i = 0; i < 16; ++i) {
      in.arrays["A"].push_back((i * 7) % 100 - 50);
      in.arrays["B"].push_back((i * 13) % 80 - 40);
    }
    expectCosim(src, in);
  }
}

TEST(System, BranchInLoopCosim) {
  const char* src = R"(
    void clip(const int16 A[24], int16 C[24]) {
      int i;
      for (i = 0; i < 24; i++) {
        if (A[i] < 0) {
          C[i] = -A[i];
        } else {
          C[i] = A[i] * 2;
        }
      }
    }
  )";
  interp::KernelIO in;
  for (int i = 0; i < 24; ++i) in.arrays["A"].push_back(100 - i * 9);
  expectCosim(src, in);
}

TEST(System, DctBlockCosimAndThroughput) {
  // 8 outputs per iteration at stride 8: the paper's DCT shape. With an
  // 8-element input bus the system sustains 8 outputs per clock.
  const char* src = R"(
    void stage(const int8 X[64], int19 Y[64]) {
      int i;
      for (i = 0; i < 8; i++) {
        Y[8*i]   = X[8*i] + X[8*i+7];
        Y[8*i+1] = X[8*i+1] + X[8*i+6];
        Y[8*i+2] = X[8*i+2] + X[8*i+5];
        Y[8*i+3] = X[8*i+3] + X[8*i+4];
        Y[8*i+4] = X[8*i] - X[8*i+7];
        Y[8*i+5] = X[8*i+1] - X[8*i+6];
        Y[8*i+6] = X[8*i+2] - X[8*i+5];
        Y[8*i+7] = X[8*i+3] - X[8*i+4];
      }
    }
  )";
  interp::KernelIO in;
  for (int i = 0; i < 64; ++i) in.arrays["X"].push_back((i * 37) % 256 - 128);
  rtl::SystemOptions sys;
  sys.inputBusElems = 8;
  expectCosim(src, in, {}, sys);

  CompileResult r = compile(src);
  rtl::System system(r.kernel, r.datapath, r.module, sys);
  system.run(in);
  EXPECT_GE(system.stats().steadyStateThroughput(), 7.0) << "outputs/clock";
}

TEST(System, TwoDimensionalStencilCosim) {
  const char* src = R"(
    void stencil(const int16 X[6][8], int16 Y[5][6]) {
      int i;
      int j;
      for (i = 0; i < 5; i++) {
        for (j = 0; j < 6; j++) {
          Y[i][j] = X[i][j] + X[i][j+1] + X[i][j+2]
                  + X[i+1][j] + X[i+1][j+1] + X[i+1][j+2];
        }
      }
    }
  )";
  interp::KernelIO in;
  for (int i = 0; i < 48; ++i) in.arrays["X"].push_back((i * 29) % 211 - 105);
  expectCosim(src, in);
}

TEST(System, UnsignedDividerCosim) {
  const char* src = R"(
    void udiv(const uint8 N[16], const uint8 D[16], uint8 Q[16]) {
      int i;
      for (i = 0; i < 16; i++) {
        Q[i] = N[i] / D[i];
      }
    }
  )";
  interp::KernelIO in;
  for (int i = 0; i < 16; ++i) {
    in.arrays["N"].push_back((i * 97) % 256);
    in.arrays["D"].push_back(i == 5 ? 0 : (i * 31) % 256); // include /0
  }
  expectCosim(src, in);
}

TEST(System, InnerLoopFullUnrollBitCorrelator) {
  // bit_correlator: inner per-bit loop fully unrolled by the compiler.
  const char* src = R"(
    void bit_correlator(const uint8 A[32], uint4 C[32]) {
      int i;
      int j;
      int cnt;
      for (i = 0; i < 32; i++) {
        cnt = 0;
        for (j = 0; j < 8; j++) {
          if (((A[i] >> j) & 1) == ((181 >> j) & 1)) {
            cnt = cnt + 1;
          }
        }
        C[i] = cnt;
      }
    }
  )";
  interp::KernelIO in;
  for (int i = 0; i < 32; ++i) in.arrays["A"].push_back((i * 41) % 256);
  expectCosim(src, in);
}

TEST(System, PartialUnrollWidensThroughput) {
  CompileOptions opt;
  opt.unrollFactor = 4;
  interp::KernelIO in = firInput();
  expectCosim(kFirSrc, in, opt, [] {
    rtl::SystemOptions s;
    s.inputBusElems = 4;
    return s;
  }());
  CompileResult r = compile(kFirSrc, opt);
  EXPECT_EQ(r.kernel.outputs[0].accessCount(), 4); // 4 results per iteration
}

TEST(System, NaiveBufferMatchesButReadsMore) {
  CompileResult r = compile(kFirSrc);
  const interp::KernelIO in = firInput();

  rtl::SystemOptions smart;
  rtl::System sys1(r.kernel, r.datapath, r.module, smart);
  const auto out1 = sys1.run(in);

  rtl::SystemOptions naive;
  naive.useSmartBuffer = false;
  rtl::System sys2(r.kernel, r.datapath, r.module, naive);
  const auto out2 = sys2.run(in);

  EXPECT_EQ(out1.arrays.at("C"), out2.arrays.at("C"));
  // Smart buffer: 36 reads. Naive: 5 per window * 32 windows = 160.
  EXPECT_EQ(sys1.stats().bramReads, 36);
  EXPECT_EQ(sys2.stats().bramReads, 160);
  EXPECT_GT(sys2.stats().cycles, sys1.stats().cycles);
}

TEST(System, CosLookupKernel) {
  const char* src = R"(
    void wave(const uint10 P[16], int16 C[16]) {
      int i;
      for (i = 0; i < 16; i++) {
        C[i] = ROCCC_cos(P[i]);
      }
    }
  )";
  interp::KernelIO in;
  for (int i = 0; i < 16; ++i) in.arrays["P"].push_back(i * 64);
  expectCosim(src, in);
}

TEST(System, LookupTableKernel) {
  const char* src = R"(
    const int16 GAMMA[16] = {0,1,4,9,16,25,36,49,64,81,100,121,144,169,196,225};
    void apply(const uint4 A[12], int16 C[12]) {
      int i;
      for (i = 0; i < 12; i++) {
        C[i] = GAMMA[A[i]];
      }
    }
  )";
  interp::KernelIO in;
  for (int i = 0; i < 12; ++i) in.arrays["A"].push_back(15 - i);
  expectCosim(src, in);
}

TEST(System, CallInliningInKernel) {
  const char* src = R"(
    void sq(int16 x, int32* r) { *r = x * x; }
    void k(const int16 A[10], int32 C[10]) {
      int i;
      int32 t;
      for (i = 0; i < 10; i++) {
        t = 0;
        sq(A[i], t);
        C[i] = t + 1;
      }
    }
  )";
  interp::KernelIO in;
  for (int i = 0; i < 10; ++i) in.arrays["A"].push_back(i * 50 - 250);
  CompileOptions opt;
  opt.kernelName = "k";
  expectCosim(src, in, opt);
}

TEST(System, DualTwoDimensionalStreamsCosim) {
  // Two 2-D input streams through separate line-buffered smart buffers
  // (the motion-detection shape).
  const char* src = R"(
    void diff(const uint8 P[6][8], const uint8 C[6][8], int16 D[4][6]) {
      int i;
      int j;
      for (i = 0; i < 4; i++) {
        for (j = 0; j < 6; j++) {
          D[i][j] = (C[i+1][j+1] - P[i+1][j+1]) + (C[i][j] - P[i+2][j+2]);
        }
      }
    }
  )";
  interp::KernelIO in;
  for (int i = 0; i < 48; ++i) {
    in.arrays["P"].push_back((i * 31) % 256);
    in.arrays["C"].push_back((i * 57 + 13) % 256);
  }
  expectCosim(src, in);
}

TEST(System, AutoUnrollBudgetPicksFactorAndStaysCorrect) {
  CompileOptions opt;
  opt.autoUnrollSliceBudget = 12000;
  CompileResult r = compile(kFirSrc, opt);
  // The estimator picks a factor > 1 within this budget.
  EXPECT_GT(r.kernel.outputs[0].accessCount(), 1);
  interp::KernelIO in = firInput();
  rtl::SystemOptions sys;
  sys.inputBusElems = r.kernel.outputs[0].accessCount();
  const auto rep = cosimulate(r, kFirSrc, in, sys);
  EXPECT_TRUE(rep.match) << rep.mismatch;
}

TEST(System, AutoUnrollTinyBudgetKeepsFactorOne) {
  CompileOptions opt;
  opt.autoUnrollSliceBudget = 10; // nothing fits: factor stays 1
  CompileResult r = compile(kFirSrc, opt);
  EXPECT_EQ(r.kernel.outputs[0].accessCount(), 1);
}

// --- VHDL output ----------------------------------------------------------------

TEST(Vhdl, GeneratedDesignIsStructurallyValid) {
  for (const char* src : {kFirSrc}) {
    CompileResult r = compile(src);
    ASSERT_FALSE(r.vhdl.empty());
    const vhdl::CheckResult chk = vhdl::checkDesign(r.vhdl);
    EXPECT_TRUE(chk.ok) << join(chk.problems, "\n") << "\n---\n" << r.vhdl;
    // One entity per node plus the top (plus ROMs when present).
    EXPECT_GE(chk.entityCount, static_cast<int>(r.datapath.nodes.size()) + 1);
    EXPECT_EQ(chk.entityCount, chk.architectureCount);
    EXPECT_GE(chk.instantiationCount, static_cast<int>(r.datapath.nodes.size()));
  }
}

TEST(Vhdl, AllPaperKernelsEmitValidVhdl) {
  const char* kernels[] = {
      R"(int sum = 0;
         void acc(const int32 A[8], int32* out) {
           int i;
           for (i = 0; i < 8; i++) { sum = sum + A[i]; }
           *out = sum;
         })",
      R"(void clip(const int16 A[8], int16 C[8]) {
           int i;
           for (i = 0; i < 8; i++) {
             if (A[i] < 0) { C[i] = -A[i]; } else { C[i] = A[i]; }
           }
         })",
      R"(const int16 T[8] = {1,2,3,4,5,6,7,8};
         void lk(const uint3 A[8], int16 C[8]) {
           int i;
           for (i = 0; i < 8; i++) { C[i] = T[A[i]]; }
         })",
  };
  for (const char* src : kernels) {
    CompileResult r = compile(src);
    const vhdl::CheckResult chk = vhdl::checkDesign(r.vhdl);
    EXPECT_TRUE(chk.ok) << join(chk.problems, "\n") << "\n---\n" << r.vhdl;
  }
}

TEST(Vhdl, MentionsKeyConstructs) {
  CompileResult r = compile(kFirSrc);
  EXPECT_NE(r.vhdl.find("rising_edge(clk)"), std::string::npos);
  EXPECT_NE(r.vhdl.find("use ieee.numeric_std.all;"), std::string::npos);
  EXPECT_NE(r.vhdl.find("entity fir_dp is"), std::string::npos);
}

TEST(Vhdl, ValidatorCatchesBrokenDesigns) {
  const vhdl::CheckResult bad1 = vhdl::checkDesign("entity a is\nport (x : in bit);\nend entity b;");
  EXPECT_FALSE(bad1.ok);
  const vhdl::CheckResult bad2 = vhdl::checkDesign(R"(
    library ieee;
    entity a is
    end entity a;
    architecture rtl of a is
    begin
      y <= x;
    end architecture;
  )");
  EXPECT_FALSE(bad2.ok); // y undeclared
}

// --- compiler-level reporting -----------------------------------------------------

TEST(CompilerFacade, PassLogAndTransformedSource) {
  CompileResult r = compile(kFirSrc);
  EXPECT_FALSE(r.passLog.empty());
  EXPECT_NE(r.transformedSource.find("void fir"), std::string::npos);
  EXPECT_FALSE(r.kernel.scalarReplacedText.empty());
}

TEST(CompilerFacade, ReportsErrorsOnBadKernels) {
  Compiler c;
  const CompileResult r = c.compileSource("void k(int* o) { *o = 1; }"); // no loop
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.diags.hasErrors());
}

} // namespace
} // namespace roccc
