// roccc-ccd — the compile-as-a-service daemon (and its client half).
//
// ServiceDaemon wraps the batch compile stack (the contained single-job
// body shared with CompileService, per-job CompileBudget governance, the
// content-addressed CompileCache) behind a local AF_UNIX stream socket
// speaking `roccc-ccd-v1`: a versioned, line-delimited JSON protocol with
// request types {compile, batch, status, metrics, drain, reload, ping}.
// docs/SERVICE.md is the operations book: every request/response field,
// the lifecycle, quota/backpressure semantics, and the metrics glossary.
//
// Serving model:
//   - one accept loop, one thread per connection, requests on a
//     connection handled strictly in order (responses line up with
//     requests; a batch request is one request);
//   - compiles run on a shared fixed-size ThreadPool behind a *bounded
//     admission window*: at most `maxQueue` jobs admitted-but-unfinished
//     across all clients, at most `maxClientJobs` per connection. Past
//     either bound a job is rejected with a typed error (`queue-full`,
//     `quota-exceeded`) — extending the PR 4 outcome taxonomy to the
//     service edge: a client can be rejected, the daemon cannot crash;
//   - a batch's jobs are admitted atomically up front, so which rows of
//     an oversized batch get rejected is deterministic (the tail);
//   - per-job budgets requested by clients are clamped to the server's
//     configured ceilings (quotas layered on CompileBudget);
//   - the optional CompileCache is shared by every client and, with a
//     disk tier (`--cache-dir`), by every daemon generation — PR 3/5
//     determinism is what makes any replica's answer interchangeable.
//
// Lifecycle: Serving → (drain) → Draining → Stopped. `drain` stops
// admitting compile jobs (typed `draining` rejection), waits for the
// admission window to empty, replies, then stops the daemon; the "pause"
// mode holds the daemon in Draining (resumable) for maintenance instead.
// SIGTERM/SIGINT map to requestDrain(), which is async-signal-safe.
//
// Fault containment carries over wholesale: a faulting job is a typed
// `internal-error` response, never a daemon death — the soak tests drive
// the PR 4 fault-injection points through the socket to prove it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "roccc/cache.hpp"
#include "roccc/driver.hpp"
#include "support/json.hpp"

namespace roccc {

/// The protocol version string carried by every request and response.
extern const char* const kServiceProtocol; // "roccc-ccd-v1"

/// Typed service-edge error codes (the `error.code` field of an error
/// response). Protocol errors and admission rejections share the space.
namespace servicecode {
inline constexpr const char* kParseError = "parse-error";
inline constexpr const char* kBadRequest = "bad-request";
inline constexpr const char* kProtocolVersion = "protocol-version";
inline constexpr const char* kUnknownType = "unknown-type";
inline constexpr const char* kOversized = "oversized";
inline constexpr const char* kQueueFull = "queue-full";
inline constexpr const char* kDraining = "draining";
inline constexpr const char* kQuotaExceeded = "quota-exceeded";
inline constexpr const char* kReloadFailed = "reload-failed";
} // namespace servicecode

struct ServiceConfig {
  /// Filesystem path the AF_UNIX listener binds (unlinked on shutdown).
  std::string socketPath = "roccc-ccd.sock";
  /// Compile workers; 0 = one per hardware thread.
  int workers = 0;
  /// Admission window: max jobs admitted-but-unfinished across all
  /// clients. Past it, compile jobs are rejected `queue-full`.
  int maxQueue = 256;
  /// Per-connection quota: max jobs one client may have in the window.
  int maxClientJobs = 64;
  /// Hard cap on one request line; longer frames get an `oversized`
  /// error and the connection is closed (framing can't be trusted).
  int64_t maxRequestBytes = 8ll * 1024 * 1024;
  /// Compile cache shared across all clients (and, with a diskDir,
  /// across daemon generations). Disabled when false.
  bool cacheEnabled = false;
  CacheConfig cache;
  /// Server-side defaults for every compile (timing model, etc.); client
  /// options override the semantic fields, budgets are clamped below.
  CompileOptions baseOptions;
  /// Ceilings clamped onto every client-requested budget: a client may
  /// tighten its job's budget but never exceed these. 0 = no ceiling.
  BudgetLimits budgetCeiling;
  /// Log one line per lifecycle event to stderr when false.
  bool quiet = true;
};

/// Monotonic service counters plus the bucketed service-time histogram —
/// everything the `metrics` request reports. Thread-safe; snapshot with
/// toJson(). "Service time" is admission-to-completion per job (queue
/// wait included), so p50/p95 reflect what a client experiences.
class ServiceMetrics {
 public:
  void recordRequest(const std::string& type);
  void recordProtocolError(const char* code);
  void recordRejection(const char* code);
  void recordJobAdmitted();
  void recordJobCompleted(CompileOutcome outcome, bool cacheHit, double serviceMs);
  void recordConnectionOpened();
  void recordConnectionClosed();
  void recordBytes(int64_t in, int64_t out);
  void setQueueDepth(int depth) { queueDepth_.store(depth, std::memory_order_relaxed); }

  int64_t jobsCompleted() const { return jobsCompleted_.load(std::memory_order_relaxed); }
  int64_t connectionsOpen() const { return connectionsOpen_.load(std::memory_order_relaxed); }

  /// The `metrics` response body: uptime, jobs/s, outcome counts, cache
  /// hit rate, queue depth, service-time percentiles (p50/p95 from the
  /// log-spaced histogram), request/rejection/byte counters.
  json::Value toJson(double uptimeSec) const;

 private:
  std::atomic<int64_t> requestsTotal_{0};
  std::atomic<int64_t> requestsCompile_{0}, requestsBatch_{0}, requestsStatus_{0},
      requestsMetrics_{0}, requestsDrain_{0}, requestsReload_{0}, requestsPing_{0};
  std::atomic<int64_t> protocolErrors_{0};
  std::atomic<int64_t> rejectedQueueFull_{0}, rejectedDraining_{0}, rejectedQuota_{0};
  std::atomic<int64_t> jobsAdmitted_{0}, jobsCompleted_{0};
  std::atomic<int64_t> outcomeCounts_[5] = {{0}, {0}, {0}, {0}, {0}};
  std::atomic<int64_t> cacheHits_{0}, cacheMisses_{0};
  std::atomic<int64_t> bytesIn_{0}, bytesOut_{0};
  std::atomic<int64_t> connectionsAccepted_{0}, connectionsOpen_{0};
  std::atomic<int> queueDepth_{0};

  // Log-spaced service-time buckets; a small mutex guards the histogram
  // (one lock per completed job — noise next to a compile).
  static constexpr double kBucketUpperMs[] = {0.5,  1,    2,    5,    10,   20,  50,
                                              100,  200,  500,  1000, 2000, 5000, 10000};
  static constexpr int kBuckets = static_cast<int>(std::size(kBucketUpperMs)) + 1;
  mutable std::mutex histMutex_;
  int64_t histCounts_[kBuckets] = {};
  double serviceMsSum_ = 0;
  double serviceMsMax_ = 0;

  double percentileMs(double q) const; ///< histMutex_ held by caller
};

class ServiceDaemon {
 public:
  explicit ServiceDaemon(ServiceConfig config);
  ~ServiceDaemon();
  ServiceDaemon(const ServiceDaemon&) = delete;
  ServiceDaemon& operator=(const ServiceDaemon&) = delete;

  /// Binds the socket, spawns the accept loop and worker pool. False (with
  /// `error`) when the socket can't bind or the cache dir is unusable.
  bool start(std::string& error);

  /// Async-signal-safe drain trigger (the SIGTERM/SIGINT path): behaves
  /// like a client `drain` request with no response to send.
  void requestDrain();

  /// Blocks until the daemon has fully stopped (drained and joined).
  void waitStopped();

  /// Immediate shutdown for tests and error paths: closes everything
  /// without waiting for in-flight jobs' clients to be answered.
  void stop();

  bool running() const;
  const ServiceConfig& config() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One client connection to a roccc-ccd socket. Blocking, line-oriented;
/// used by tools/roccc_client.cpp, the tests, and bench_service.
class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  bool connect(const std::string& socketPath, std::string& error);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one request object (protocol/version field added when absent)
  /// and reads one response line. False on transport errors or when the
  /// response is not valid JSON.
  bool request(const json::Value& req, json::Value& response, std::string& error);

  /// Raw frame exchange for protocol-robustness harnesses: writes
  /// `line` + '\n' verbatim and reads one response line (unparsed).
  bool requestRaw(const std::string& line, std::string& rawResponse, std::string& error);

  /// Sends raw bytes with no trailing newline and no read — a truncated
  /// frame, for robustness tests.
  bool sendBytes(const std::string& bytes, std::string& error);

 private:
  bool readLine(std::string& line, std::string& error);

  int fd_ = -1;
  std::string inbox_; ///< bytes read past the last returned line
};

/// Builds a `compile` request for (name, source) with an options object;
/// the client CLI and tests share it so they can't drift.
json::Value makeCompileRequest(const std::string& name, const std::string& source,
                               json::Value options = json::Value::object());

/// Parses a protocol options object into CompileOptions on top of `base`,
/// clamping budget fields to `ceiling`. Strict: unknown keys and wrong
/// types fail with a message (the daemon answers `bad-request`).
bool compileOptionsFromJson(const json::Value& options, const CompileOptions& base,
                            const BudgetLimits& ceiling, CompileOptions& out, std::string& error);

} // namespace roccc
