#include "rtl/fastsim.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>

namespace roccc::rtl {

const char* simEngineName(SimEngine e) {
  return e == SimEngine::Reference ? "reference" : "fast";
}

namespace {

uint64_t maskFor(int width) {
  return width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
}

/// Reads a lane value numerically: arithmetic-shift sign extension when the
/// source net is signed (sh = 64 - width), identity otherwise. Zero-extended
/// operands use sh = 0 — shifting the already-masked storage by zero is the
/// identity — which keeps the hot path branchless. Bit-exact with
/// Value::toInt on the zero-extended storage both engines share.
inline int64_t sext(uint64_t bits, uint8_t sh) {
  return static_cast<int64_t>(bits << sh) >> sh;
}

} // namespace

FastSim::FastSim(const Module& m, int batch) : m_(m), batch_(batch) {
  if (batch_ < 1) throw std::invalid_argument("FastSim batch must be >= 1");
  lanes_.assign(m.nets.size() * static_cast<size_t>(batch_), 0);

  // Per-net compile-time facts: result mask and sign-extension shift.
  std::vector<uint64_t> netMask(m.nets.size());
  std::vector<uint8_t> netSx(m.nets.size());
  std::vector<uint8_t> netSigned(m.nets.size());
  for (size_t n = 0; n < m.nets.size(); ++n) {
    const ScalarType t = m.nets[n].type;
    netMask[n] = maskFor(t.width);
    netSx[n] = t.isSigned ? static_cast<uint8_t>(64 - t.width) : kNoSx;
    netSigned[n] = t.isSigned;
  }
  // The unsigned-compare rule of ops::cmpLt/cmpLe (C usual arithmetic
  // conversions): unsigned iff either operand is unsigned at >= 32 bits.
  auto unsignedCompare = [&](const Cell& c) {
    const ScalarType a = m.nets[static_cast<size_t>(c.inputs[0])].type;
    const ScalarType b = m.nets[static_cast<size_t>(c.inputs[1])].type;
    return (!a.isSigned && a.width >= 32) || (!b.isSigned && b.width >= 32);
  };

  auto compile = [&](const Cell& c) {
    Instr I;
    I.dst = slot(c.output);
    I.mask = netMask[static_cast<size_t>(c.output)];
    auto bind = [&](size_t k, int32_t& off, uint8_t& sx) {
      const int net = c.inputs[k];
      off = slot(net);
      sx = netSx[static_cast<size_t>(net)];
    };
    if (!c.inputs.empty()) bind(0, I.a, I.sxa);
    if (c.inputs.size() > 1) bind(1, I.b, I.sxb);
    if (c.inputs.size() > 2) bind(2, I.c, I.sxc);
    switch (c.kind) {
      case CellKind::Add: I.op = Op::Add; break;
      case CellKind::Sub: I.op = Op::Sub; break;
      case CellKind::Mul: I.op = Op::Mul; break;
      case CellKind::Div:
        I.op = Op::Div;
        I.flag = m.nets[static_cast<size_t>(c.output)].type.isSigned;
        break;
      case CellKind::Rem:
        I.op = Op::Rem;
        I.flag = m.nets[static_cast<size_t>(c.output)].type.isSigned;
        break;
      case CellKind::Neg: I.op = Op::Neg; break;
      case CellKind::And: I.op = Op::And; break;
      case CellKind::Or: I.op = Op::Or; break;
      case CellKind::Xor: I.op = Op::Xor; break;
      case CellKind::Not: I.op = Op::Not; break;
      case CellKind::Shl: I.op = Op::Shl; break;
      case CellKind::Shr:
        I.op = Op::Shr;
        I.flag = netSigned[static_cast<size_t>(c.inputs[0])] != 0;
        break;
      case CellKind::Eq: I.op = Op::Eq; break;
      case CellKind::Ne: I.op = Op::Ne; break;
      case CellKind::Lt: I.op = unsignedCompare(c) ? Op::LtU : Op::LtS; break;
      case CellKind::Le: I.op = unsignedCompare(c) ? Op::LeU : Op::LeS; break;
      case CellKind::Gt: // a > b  ==  b < a
        I.op = unsignedCompare(c) ? Op::LtU : Op::LtS;
        std::swap(I.a, I.b);
        std::swap(I.sxa, I.sxb);
        break;
      case CellKind::Ge: // a >= b  ==  b <= a
        I.op = unsignedCompare(c) ? Op::LeU : Op::LeS;
        std::swap(I.a, I.b);
        std::swap(I.sxa, I.sxb);
        break;
      case CellKind::Mux: I.op = Op::Mux; break;
      case CellKind::Rom:
        I.op = Op::Rom;
        I.aux = static_cast<int32_t>(roms_.size());
        roms_.push_back({c.romData.data(), static_cast<int64_t>(c.romData.size())});
        break;
      case CellKind::Slice:
        I.op = Op::Slice;
        I.aux = c.aux1;
        break;
      case CellKind::Concat:
        I.op = Op::Concat;
        I.aux = m.nets[static_cast<size_t>(c.inputs[1])].type.width;
        break;
      case CellKind::Resize: I.op = Op::Resize; break;
      case CellKind::Const:
      case CellKind::Reg:
        return; // handled outside the instruction stream
    }
    prog_.push_back(I);
  };

  // Topological order over combinational cells (Reg outputs are sources;
  // Const outputs are precomputed and never change).
  std::vector<int> state(m.cells.size(), 0); // 0 unvisited, 1 visiting, 2 done
  std::function<void(int)> visit = [&](int cid) {
    if (state[static_cast<size_t>(cid)] == 2) return;
    if (state[static_cast<size_t>(cid)] == 1) {
      throw std::runtime_error("netlist has a combinational cycle through cell " +
                               std::to_string(cid));
    }
    state[static_cast<size_t>(cid)] = 1;
    const Cell& c = m.cells[static_cast<size_t>(cid)];
    if (!isSequential(c.kind)) {
      for (int in : c.inputs) {
        const int drv = m.nets[static_cast<size_t>(in)].driver;
        if (drv >= 0 && !isSequential(m.cells[static_cast<size_t>(drv)].kind)) visit(drv);
      }
      compile(c);
    }
    state[static_cast<size_t>(cid)] = 2;
  };
  for (size_t cid = 0; cid < m.cells.size(); ++cid) {
    const Cell& c = m.cells[cid];
    if (isSequential(c.kind)) {
      RegInfo r;
      r.dst = slot(c.output);
      r.d = slot(c.inputs[0]);
      r.sxd = netSx[static_cast<size_t>(c.inputs[0])];
      if (c.inputs.size() == 2) r.en = slot(c.inputs[1]);
      r.mask = netMask[static_cast<size_t>(c.output)];
      r.init = static_cast<uint64_t>(c.imm) & r.mask;
      regs_.push_back(r);
    } else {
      visit(static_cast<int>(cid));
      if (c.kind == CellKind::Const) {
        const uint64_t v = static_cast<uint64_t>(c.imm) & netMask[static_cast<size_t>(c.output)];
        std::fill_n(&lanes_[static_cast<size_t>(slot(c.output))], batch_, v);
      }
    }
  }

  regState_.assign(regs_.size() * static_cast<size_t>(batch_), 0);
  reset();
}

void FastSim::reset() {
  // Register state lives both in regState_ (the canonical copy) and in the
  // registers' output-net lanes; tick() keeps the two in sync, so eval()
  // never has to touch registers.
  for (size_t r = 0; r < regs_.size(); ++r) {
    std::fill_n(&regState_[r * static_cast<size_t>(batch_)], batch_, regs_[r].init);
    std::fill_n(&lanes_[static_cast<size_t>(regs_[r].dst)], batch_, regs_[r].init);
  }
}

void FastSim::setInput(size_t port, const Value& v, int lane) {
  const int net = m_.inputPorts.at(port);
  lanes_[static_cast<size_t>(slot(net) + lane)] =
      v.convertTo(m_.nets[static_cast<size_t>(net)].type).bits();
}

void FastSim::setInputInt(size_t port, int64_t v, int lane) {
  const int net = m_.inputPorts.at(port);
  lanes_[static_cast<size_t>(slot(net) + lane)] =
      Value::mask(static_cast<uint64_t>(v), m_.nets[static_cast<size_t>(net)].type.width);
}

void FastSim::eval() {
  if (batch_ == 1) {
    evalImpl<1>();
  } else {
    evalImpl<0>();
  }
}

template <int BN>
void FastSim::evalImpl() {
  const int B = BN ? BN : batch_;
  uint64_t* L = lanes_.data();

  // Register output lanes already hold the current state (tick/reset keep
  // them in sync), so the pass is purely the combinational stream.
  for (const Instr& I : prog_) {
    uint64_t* d = L + I.dst;
    const uint64_t* a = L + I.a;
    const uint64_t* b = L + I.b;
    switch (I.op) {
      case Op::Add:
        for (int l = 0; l < B; ++l) {
          d[l] = (static_cast<uint64_t>(sext(a[l], I.sxa)) +
                  static_cast<uint64_t>(sext(b[l], I.sxb))) & I.mask;
        }
        break;
      case Op::Sub:
        for (int l = 0; l < B; ++l) {
          d[l] = (static_cast<uint64_t>(sext(a[l], I.sxa)) -
                  static_cast<uint64_t>(sext(b[l], I.sxb))) & I.mask;
        }
        break;
      case Op::Mul:
        for (int l = 0; l < B; ++l) {
          d[l] = (static_cast<uint64_t>(sext(a[l], I.sxa)) *
                  static_cast<uint64_t>(sext(b[l], I.sxb))) & I.mask;
        }
        break;
      case Op::Div:
        for (int l = 0; l < B; ++l) {
          if (b[l] == 0) {
            d[l] = I.mask; // all-ones: restoring-divider convention
          } else if (I.flag) {
            d[l] = static_cast<uint64_t>(sext(a[l], I.sxa) / sext(b[l], I.sxb)) & I.mask;
          } else {
            d[l] = (a[l] / b[l]) & I.mask;
          }
        }
        break;
      case Op::Rem:
        for (int l = 0; l < B; ++l) {
          if (b[l] == 0) {
            d[l] = a[l] & I.mask; // remainder = dividend
          } else if (I.flag) {
            d[l] = static_cast<uint64_t>(sext(a[l], I.sxa) % sext(b[l], I.sxb)) & I.mask;
          } else {
            d[l] = (a[l] % b[l]) & I.mask;
          }
        }
        break;
      case Op::Neg:
        for (int l = 0; l < B; ++l) {
          d[l] = (0 - static_cast<uint64_t>(sext(a[l], I.sxa))) & I.mask;
        }
        break;
      case Op::And:
        for (int l = 0; l < B; ++l) {
          d[l] = (static_cast<uint64_t>(sext(a[l], I.sxa)) &
                  static_cast<uint64_t>(sext(b[l], I.sxb))) & I.mask;
        }
        break;
      case Op::Or:
        for (int l = 0; l < B; ++l) {
          d[l] = (static_cast<uint64_t>(sext(a[l], I.sxa)) |
                  static_cast<uint64_t>(sext(b[l], I.sxb))) & I.mask;
        }
        break;
      case Op::Xor:
        for (int l = 0; l < B; ++l) {
          d[l] = (static_cast<uint64_t>(sext(a[l], I.sxa)) ^
                  static_cast<uint64_t>(sext(b[l], I.sxb))) & I.mask;
        }
        break;
      case Op::Not:
        for (int l = 0; l < B; ++l) {
          d[l] = ~static_cast<uint64_t>(sext(a[l], I.sxa)) & I.mask;
        }
        break;
      case Op::Shl:
        for (int l = 0; l < B; ++l) {
          d[l] = b[l] >= 64 ? 0
                            : (static_cast<uint64_t>(sext(a[l], I.sxa)) << b[l]) & I.mask;
        }
        break;
      case Op::Shr:
        if (I.flag) { // arithmetic: operand net is signed
          for (int l = 0; l < B; ++l) {
            const uint64_t n = b[l] >= 63 ? 63 : b[l];
            d[l] = static_cast<uint64_t>(sext(a[l], I.sxa) >> n) & I.mask;
          }
        } else {
          for (int l = 0; l < B; ++l) {
            d[l] = b[l] >= 64 ? 0 : (a[l] >> b[l]) & I.mask;
          }
        }
        break;
      case Op::Eq:
        for (int l = 0; l < B; ++l) {
          d[l] = sext(a[l], I.sxa) == sext(b[l], I.sxb) ? 1 : 0;
        }
        break;
      case Op::Ne:
        for (int l = 0; l < B; ++l) {
          d[l] = sext(a[l], I.sxa) != sext(b[l], I.sxb) ? 1 : 0;
        }
        break;
      case Op::LtS:
        for (int l = 0; l < B; ++l) {
          d[l] = sext(a[l], I.sxa) < sext(b[l], I.sxb) ? 1 : 0;
        }
        break;
      case Op::LtU: // compare at the 32-bit promotion width, unsigned
        for (int l = 0; l < B; ++l) {
          d[l] = (static_cast<uint64_t>(sext(a[l], I.sxa)) & 0xffffffffu) <
                         (static_cast<uint64_t>(sext(b[l], I.sxb)) & 0xffffffffu)
                     ? 1 : 0;
        }
        break;
      case Op::LeS:
        for (int l = 0; l < B; ++l) {
          d[l] = sext(a[l], I.sxa) <= sext(b[l], I.sxb) ? 1 : 0;
        }
        break;
      case Op::LeU:
        for (int l = 0; l < B; ++l) {
          d[l] = (static_cast<uint64_t>(sext(a[l], I.sxa)) & 0xffffffffu) <=
                         (static_cast<uint64_t>(sext(b[l], I.sxb)) & 0xffffffffu)
                     ? 1 : 0;
        }
        break;
      case Op::Mux: { // inputs: sel(a), true-value(b), false-value(c)
        const uint64_t* cc = L + I.c;
        for (int l = 0; l < B; ++l) {
          d[l] = (a[l] != 0 ? static_cast<uint64_t>(sext(b[l], I.sxb))
                            : static_cast<uint64_t>(sext(cc[l], I.sxc))) & I.mask;
        }
        break;
      }
      case Op::Rom: {
        const RomTable& rom = roms_[static_cast<size_t>(I.aux)];
        for (int l = 0; l < B; ++l) {
          if (rom.size == 0) {
            d[l] = 0;
            continue;
          }
          const uint64_t idx = a[l];
          const int64_t i =
              idx < static_cast<uint64_t>(rom.size) ? static_cast<int64_t>(idx) : rom.size - 1;
          d[l] = static_cast<uint64_t>(rom.data[i]) & I.mask;
        }
        break;
      }
      case Op::Slice:
        for (int l = 0; l < B; ++l) {
          d[l] = (a[l] >> I.aux) & I.mask;
        }
        break;
      case Op::Concat:
        for (int l = 0; l < B; ++l) {
          d[l] = ((a[l] << I.aux) | b[l]) & I.mask;
        }
        break;
      case Op::Resize:
        for (int l = 0; l < B; ++l) {
          d[l] = static_cast<uint64_t>(sext(a[l], I.sxa)) & I.mask;
        }
        break;
    }
  }
}

void FastSim::tick(bool enable) {
  if (!enable) return;
  const int B = batch_;
  uint64_t* L = lanes_.data();
  // Two-phase update: gather every register's next state from the d-input
  // lanes first, then scatter into the output-net lanes — a register fed by
  // another register's output sees the pre-edge value, like real flops.
  for (size_t r = 0; r < regs_.size(); ++r) {
    const RegInfo& reg = regs_[r];
    uint64_t* st = &regState_[r * static_cast<size_t>(B)];
    const uint64_t* d = L + reg.d;
    if (reg.en >= 0) {
      const uint64_t* en = L + reg.en;
      for (int l = 0; l < B; ++l) {
        if (en[l] != 0) st[l] = static_cast<uint64_t>(sext(d[l], reg.sxd)) & reg.mask;
      }
    } else {
      for (int l = 0; l < B; ++l) {
        st[l] = static_cast<uint64_t>(sext(d[l], reg.sxd)) & reg.mask;
      }
    }
  }
  for (size_t r = 0; r < regs_.size(); ++r) {
    std::copy_n(&regState_[r * static_cast<size_t>(B)], B, L + regs_[r].dst);
  }
}

Value FastSim::output(size_t port, int lane) const {
  return netValue(m_.outputPorts.at(port), lane);
}

Value FastSim::netValue(int net, int lane) const {
  return Value(m_.nets[static_cast<size_t>(net)].type,
               lanes_[static_cast<size_t>(slot(net) + lane)]);
}

} // namespace roccc::rtl
