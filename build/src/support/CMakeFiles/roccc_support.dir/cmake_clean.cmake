file(REMOVE_RECURSE
  "CMakeFiles/roccc_support.dir/cosrom.cpp.o"
  "CMakeFiles/roccc_support.dir/cosrom.cpp.o.d"
  "CMakeFiles/roccc_support.dir/diag.cpp.o"
  "CMakeFiles/roccc_support.dir/diag.cpp.o.d"
  "CMakeFiles/roccc_support.dir/range.cpp.o"
  "CMakeFiles/roccc_support.dir/range.cpp.o.d"
  "CMakeFiles/roccc_support.dir/strings.cpp.o"
  "CMakeFiles/roccc_support.dir/strings.cpp.o.d"
  "CMakeFiles/roccc_support.dir/value.cpp.o"
  "CMakeFiles/roccc_support.dir/value.cpp.o.d"
  "libroccc_support.a"
  "libroccc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roccc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
