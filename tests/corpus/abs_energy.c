/* Absolute-value reduction: conditional negation feeding a feedback
   accumulator, with the running sum streamed out and exported. */
int24 acc = 0;
void abs_energy(const int12 X[64], int24 E[64], int24* total) {
  int i;
  int12 a;
  for (i = 0; i < 64; i++) {
    if (X[i] < 0) {
      a = 0 - X[i];
    } else {
      a = X[i];
    }
    acc = acc + a;
    E[i] = acc;
  }
  *total = acc;
}
