// Thread-stress suite for the batch compilation driver: the fuzz-kernel
// generator (kernel_fuzzer.hpp, the same one fuzz_test.cpp drives) feeds
// CompileService with 8 workers and many distinct seeds, and every parallel
// result is compared byte-for-byte against a serial reference compile of
// the same seed. This is the workload the TSan preset (build-tsan) runs
// under ThreadSanitizer.
//
// Seed count: ROCCC_STRESS_SEEDS in the environment overrides the default
// (16). The `nightly`-labelled ctest entry (driver_stress_nightly, see
// tests/CMakeLists.txt) runs the heavy configuration — 8 workers x 64
// seeds — via that variable:
//
//   ctest -L nightly                      # the heavy sweep
//   ROCCC_STRESS_SEEDS=256 ./driver_stress_test   # heavier still, by hand
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "kernel_fuzzer.hpp"
#include "roccc/compiler.hpp"
#include "roccc/driver.hpp"

namespace roccc {
namespace {

constexpr int kDefaultSeeds = 16;
constexpr int kWorkers = 8;

int seedCount() {
  if (const char* env = std::getenv("ROCCC_STRESS_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return kDefaultSeeds;
}

/// One fuzz kernel per seed; generation is deterministic per seed.
std::vector<CompileJob> fuzzBatch(int seeds, uint64_t salt) {
  std::vector<CompileJob> jobs;
  jobs.reserve(seeds);
  for (int s = 0; s < seeds; ++s) {
    KernelFuzzer fuzzer(salt + static_cast<uint64_t>(s));
    CompileJob job;
    job.name = "seed-" + std::to_string(salt + static_cast<uint64_t>(s));
    job.source = fuzzer.generate().source;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(DriverStress, FuzzBatchOnEightWorkersMatchesSerialReference) {
  const int seeds = seedCount();
  const std::vector<CompileJob> jobs = fuzzBatch(seeds, 0xace0fba5e);

  const BatchResult parallel = CompileService(kWorkers).compileBatch(jobs);
  const BatchResult serial = CompileService(1).compileBatch(jobs);
  ASSERT_EQ(parallel.results.size(), jobs.size());

  int compiled = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const CompileResult& p = parallel.results[i];
    const CompileResult& s = serial.results[i];
    ASSERT_EQ(p.ok, s.ok) << jobs[i].name << "\n" << jobs[i].source;
    ASSERT_TRUE(p.ok) << jobs[i].name << "\n" << jobs[i].source << "\n" << p.diags.dump();
    ASSERT_EQ(p.vhdl, s.vhdl) << jobs[i].name << "\n" << jobs[i].source;
    ASSERT_EQ(p.verilog, s.verilog) << jobs[i].name;
    ++compiled;
  }
  EXPECT_EQ(compiled, seeds);
}

TEST(DriverStress, RepeatedParallelSweepsAreStable) {
  // Re-running the same parallel batch must reproduce itself exactly —
  // catches state leaking *between* batches (warm caches, counters).
  const int seeds = std::min(seedCount(), 32);
  const std::vector<CompileJob> jobs = fuzzBatch(seeds, 0xbeefcafe);
  const CompileService service(kWorkers);
  const BatchResult first = service.compileBatch(jobs);
  const BatchResult second = service.compileBatch(jobs);
  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(first.results[i].ok, second.results[i].ok) << jobs[i].name;
    ASSERT_EQ(first.results[i].vhdl, second.results[i].vhdl) << jobs[i].name;
  }
}

TEST(DriverStress, MixedOptionsUnderContention) {
  // The option matrix the benches sweep, all in flight at once: unroll
  // factors and pipelining targets change per job while jobs race on the
  // pool. Each job still must match its own serial compile.
  std::vector<CompileJob> jobs;
  const int seeds = std::min(seedCount(), 24);
  for (int s = 0; s < seeds; ++s) {
    KernelFuzzer fuzzer(0x5eed5a17ull + static_cast<uint64_t>(s));
    CompileJob job;
    job.name = "mixed-" + std::to_string(s);
    job.source = fuzzer.generate().source;
    if (s % 3 == 1) job.options.unrollFactor = 2;
    if (s % 3 == 2) job.options.dpOptions.targetStageDelayNs = 1.5;
    if (s % 2 == 1) job.options.optimize = false;
    jobs.push_back(std::move(job));
  }
  const BatchResult parallel = CompileService(kWorkers).compileBatch(jobs);
  const BatchResult serial = CompileService(1).compileBatch(jobs);
  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(parallel.results[i].ok, serial.results[i].ok) << jobs[i].source;
    ASSERT_EQ(parallel.results[i].vhdl, serial.results[i].vhdl) << jobs[i].source;
  }
}

} // namespace
} // namespace roccc
