# Empty dependencies file for motion_detect.
# This may be replaced when dependencies are built.
