// PassManager / pipeline tests: declared pass ordering, verify-each
// catching deliberately corrupted IR, per-pass statistics counters agreeing
// with the legacy free-text passLog values, and the --stats-json shape.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "hlir/transforms.hpp"
#include "roccc/compiler.hpp"

namespace roccc {
namespace {

// The Table 1 FIR kernel (one 5-tap filter).
const char* kFirSrc = R"(
  void fir(const int16 A[36], int16 C[32]) {
    int i;
    for (i = 0; i < 32; i = i + 1) {
      C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
    }
  }
)";

// A kernel with an inlinable helper and a foldable expression, so the hlir
// counters are nonzero.
const char* kHelperSrc = R"(
  void scale(int16 x, int16* r) { *r = x * 3; }
  void k(const int16 A[32], int16 B[32]) {
    int i;
    int16 t;
    for (i = 0; i < 32; i = i + 1) {
      t = 0;
      scale(A[i], t);
      B[i] = t + (2 + 5);
    }
  }
)";

const PassStatistics* findPass(const std::vector<PassStatistics>& stats, const std::string& name) {
  for (const auto& s : stats) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(Pipeline, DeclaredPassOrdering) {
  const Compiler c;
  const std::vector<std::string> names = c.buildPipeline().passNames();
  const std::vector<std::string> expected = {
      "parse",          "lut-convert",        "inline",     "const-fold",
      "fuse-loops",     "unroll-inner-full",  "unroll",     "extract-kernel",
      "lower-mir",      "canonicalize-effects", "ssa-build", "mir-optimize",
      "build-datapath", "retime",             "build-rtl",  "emit-vhdl",
      "emit-verilog",
  };
  EXPECT_EQ(names, expected);
}

TEST(Pipeline, EveryRegisteredPassProducesOneStatsRecord) {
  const Compiler c;
  const CompileResult r = c.compileSource(kFirSrc);
  ASSERT_TRUE(r.ok) << r.diags.dump();
  EXPECT_EQ(r.passLog.size(), c.buildPipeline().passes().size());
  for (const auto& s : r.passLog) {
    EXPECT_TRUE(s.ran) << s.name;
    EXPECT_GE(s.wallMs, 0.0) << s.name;
  }
}

TEST(Pipeline, DisabledPassesAreRecordedAsSkipped) {
  CompileOptions opt;
  opt.optimize = false;
  opt.convertCallsToLuts = false;
  opt.fullUnrollInnerLoops = false;
  const Compiler c(opt);
  const CompileResult r = c.compileSource(kFirSrc);
  ASSERT_TRUE(r.ok) << r.diags.dump();
  for (const char* name : {"mir-optimize", "lut-convert", "unroll-inner-full"}) {
    const PassStatistics* s = findPass(r.passLog, name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_FALSE(s->ran) << name;
    EXPECT_EQ(s->wallMs, 0.0) << name;
  }
}

TEST(Pipeline, VerifyEachCompilesCleanKernels) {
  CompileOptions opt;
  opt.pipeline.verifyEach = true;
  const Compiler c(opt);
  const CompileResult r = c.compileSource(kFirSrc);
  EXPECT_TRUE(r.ok) << r.diags.dump();
}

TEST(Pipeline, VerifyEachCatchesCorruptedMir) {
  // Start from a valid SSA-form MIR function...
  const Compiler c;
  const CompileResult good = c.compileSource(kFirSrc);
  ASSERT_TRUE(good.ok);

  CompileOptions opt;
  CompileResult r;
  PassContext ctx(opt, r);
  ctx.mirInSSA = true;
  r.mir = good.mir;

  // ...then run a pipeline whose second pass silently breaks the SSA
  // single-assignment property (a duplicated definition).
  PipelineOptions pipe;
  pipe.verifyEach = true;
  PassManager pm(pipe);
  pm.addPass({"benign", PassLayer::Mir, [](PassContext&, PassStatistics&) { return true; }});
  pm.addPass({"corrupt", PassLayer::Mir, [](PassContext& cx, PassStatistics&) {
                for (auto& b : cx.result.mir.blocks) {
                  for (const auto& in : b.instrs) {
                    if (in.hasDst()) {
                      b.instrs.push_back(in); // second def of the same register
                      return true;
                    }
                  }
                }
                return true;
              }});
  std::vector<PassStatistics> stats;
  EXPECT_FALSE(pm.run(ctx, stats));
  ASSERT_TRUE(r.diags.hasErrors());
  EXPECT_NE(r.diags.dump().find("verifier failed after pass 'corrupt'"), std::string::npos)
      << r.diags.dump();
  // The benign pass passed verification; only the corrupting one failed.
  EXPECT_EQ(stats.size(), 2u);
}

TEST(Pipeline, VerifyEachCatchesCorruptedRtl) {
  const Compiler c;
  const CompileResult good = c.compileSource(kFirSrc);
  ASSERT_TRUE(good.ok);

  CompileOptions opt;
  CompileResult r;
  PassContext ctx(opt, r);
  r.module = good.module;

  PipelineOptions pipe;
  pipe.verifyEach = true;
  PassManager pm(pipe);
  pm.addPass({"corrupt-rtl", PassLayer::Rtl, [](PassContext& cx, PassStatistics&) {
                EXPECT_FALSE(cx.result.module.cells.empty());
                cx.result.module.cells[0].output = 999999; // dangling net id
                return true;
              }});
  std::vector<PassStatistics> stats;
  EXPECT_FALSE(pm.run(ctx, stats));
  EXPECT_TRUE(r.diags.hasErrors());
  EXPECT_NE(r.diags.dump().find("internal"), std::string::npos);
}

TEST(Pipeline, RtlVerifierRunsWithoutVerifyEach) {
  // build-rtl is marked alwaysVerify: the production driver verifies the
  // netlist on every compile, not only under --verify-each.
  const Compiler c;
  const PassManager pm = c.buildPipeline();
  bool found = false;
  for (const auto& p : pm.passes()) {
    if (p.name == "build-rtl") {
      EXPECT_TRUE(p.alwaysVerify);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Pipeline, HlirCountersMatchDirectTransformRuns) {
  // The pipeline's counters must equal what the legacy driver logged: the
  // same transforms applied in the same order to a fresh module.
  const Compiler c;
  const CompileResult r = c.compileSource(kHelperSrc);
  ASSERT_TRUE(r.ok) << r.diags.dump();

  DiagEngine diags;
  ast::Module m = ast::parse(kHelperSrc, diags);
  ASSERT_TRUE(ast::analyze(m, diags));
  const int luts = hlir::convertCallsToLookupTables(m, diags, c.options().lutMaxIndexBits);
  const int inlined = hlir::inlineCalls(m, diags);
  const int folded = hlir::constantFold(m, diags);
  ast::Function* kernel = m.findFunction("k");
  ASSERT_NE(kernel, nullptr);
  const int fused = hlir::fuseAdjacentLoops(m, *kernel, diags);
  ASSERT_FALSE(diags.hasErrors());

  EXPECT_EQ(findPass(r.passLog, "lut-convert")->counter("lut-converted"), luts);
  EXPECT_EQ(findPass(r.passLog, "inline")->counter("inlined"), inlined);
  EXPECT_EQ(findPass(r.passLog, "const-fold")->counter("folded"), folded);
  EXPECT_EQ(findPass(r.passLog, "fuse-loops")->counter("fused"), fused);
  EXPECT_GT(findPass(r.passLog, "inline")->counter("inlined"), 0);
}

TEST(Pipeline, DatapathCountersMatchLegacyPassLogValues) {
  // The legacy passLog recorded the DataPath statistics fields verbatim;
  // the typed counters must carry the same numbers.
  const Compiler c;
  const CompileResult r = c.compileSource(kFirSrc);
  ASSERT_TRUE(r.ok);
  const PassStatistics* dp = findPass(r.passLog, "build-datapath");
  ASSERT_NE(dp, nullptr);
  EXPECT_EQ(dp->counter("soft-nodes"), r.datapath.softNodeCount);
  EXPECT_EQ(dp->counter("hard-nodes"), r.datapath.hardNodeCount);
  EXPECT_EQ(dp->counter("stages"), r.datapath.stageCount);
  EXPECT_EQ(dp->counter("narrowed-bits"), r.datapath.narrowedBits);
  EXPECT_EQ(dp->counter("pipeline-register-bits"), r.datapath.pipelineRegisterBits);
}

TEST(Pipeline, StatsJsonShape) {
  const Compiler c;
  const CompileResult r = c.compileSource(kFirSrc);
  ASSERT_TRUE(r.ok);
  const std::string json = statsToJson(r.passLog);

  // Golden structural checks: the two top-level keys, one object per pass
  // with the name/layer/wallMs/ran/counters fields, balanced braces.
  EXPECT_NE(json.find("\"passes\": ["), std::string::npos);
  EXPECT_NE(json.find("\"totalMs\":"), std::string::npos);
  for (const auto& s : r.passLog) {
    EXPECT_NE(json.find("\"name\": \"" + s.name + "\""), std::string::npos) << s.name;
  }
  EXPECT_NE(json.find("\"layer\": \"hlir\""), std::string::npos);
  EXPECT_NE(json.find("\"wallMs\": "), std::string::npos);
  EXPECT_NE(json.find("\"ran\": true"), std::string::npos);
  EXPECT_NE(json.find("\"counters\": {"), std::string::npos);
  EXPECT_NE(json.find("\"stages\": "), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['), std::count(json.begin(), json.end(), ']'));
}

TEST(Pipeline, PrintAfterCapturesRequestedSnapshots) {
  CompileOptions opt;
  opt.pipeline.printAfter = {"ssa-build"};
  const Compiler c(opt);
  const CompileResult r = c.compileSource(kFirSrc);
  ASSERT_TRUE(r.ok);
  for (const auto& s : r.passLog) {
    if (s.name == "ssa-build") {
      EXPECT_NE(s.snapshot.find("bb0:"), std::string::npos);
    } else {
      EXPECT_TRUE(s.snapshot.empty()) << s.name;
    }
  }
}

TEST(Pipeline, PrintAfterAllCapturesEverySnapshot) {
  CompileOptions opt;
  opt.pipeline.printAfterAll = true;
  const Compiler c(opt);
  const CompileResult r = c.compileSource(kFirSrc);
  ASSERT_TRUE(r.ok);
  for (const auto& s : r.passLog) {
    EXPECT_FALSE(s.snapshot.empty()) << s.name;
  }
}

TEST(Pipeline, StaleKernelPointerIsImpossibleByConstruction) {
  // The context resolves the kernel by name at every call; after a
  // transform invalidates function storage, kernel() still resolves.
  CompileOptions opt;
  CompileResult r;
  PassContext ctx(opt, r);
  ctx.source = kHelperSrc;
  DiagEngine scratch;
  ctx.module = ast::parse(kHelperSrc, scratch);
  ASSERT_TRUE(ast::analyze(ctx.module, scratch));
  ctx.kernelName = "k";
  ast::Function* before = ctx.kernel();
  ASSERT_NE(before, nullptr);
  ASSERT_GT(hlir::inlineCalls(ctx.module, scratch), 0);
  ASSERT_FALSE(scratch.hasErrors());
  ast::Function* after = ctx.kernel();
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->name, "k");
}

} // namespace
} // namespace roccc
