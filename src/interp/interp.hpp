// AST interpreter — the software golden model.
//
// Paper section 4.2.2 observes that the soft nodes "will have the same
// behavior on a CPU compared with the whole data path on a FPGA"; every
// hardware result in this repository is validated against this interpreter
// (hardware/software cosimulation).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "support/diag.hpp"
#include "support/value.hpp"

namespace roccc::interp {

/// Named scalar and array bindings for one kernel invocation. Array values
/// are stored as plain int64 and converted to the element type on access.
struct KernelIO {
  std::map<std::string, int64_t> scalars;
  std::map<std::string, std::vector<int64_t>> arrays;
};

/// Thrown on semantic violations the front end cannot catch statically
/// (out-of-bounds dynamic index, unbound array, step-limit exceeded).
struct InterpError {
  SourceLoc loc;
  std::string message;
};

class Interpreter {
 public:
  explicit Interpreter(const ast::Module& module, uint64_t stepLimit = 100'000'000)
      : module_(module), stepLimit_(stepLimit) {}

  /// Executes `fnName` with inputs bound from `io` (scalars by param name,
  /// arrays by param or global name). Returns the final state of all
  /// out-scalars and arrays. Const global arrays are implicitly available.
  KernelIO run(const std::string& fnName, const KernelIO& io);

  /// Number of statements executed by the last run (used by the profiling
  /// example to find hot kernels, ref [10]).
  uint64_t stepsExecuted() const { return steps_; }

 private:
  struct Frame;

  const ast::Module& module_;
  uint64_t stepLimit_;
  uint64_t steps_ = 0;

  Value evalExpr(const ast::Expr& e, Frame& f);
  void execStmt(const ast::Stmt& s, Frame& f);
  void execBlockInCurrentScope(const ast::BlockStmt& b, Frame& f);
  void callFunction(const ast::Function& fn, const std::vector<const ast::Expr*>& args, Frame& caller);
  Value evalIntrinsic(const ast::CallExpr& c, Frame& f);

  void bumpStep(SourceLoc loc);
};

/// One-call convenience wrapper.
KernelIO runKernel(const ast::Module& m, const std::string& fnName, const KernelIO& io);

/// Reference content of the pre-existing cos/sin lookup-table IP (10-bit
/// phase, Q15 output). The RTL ROM primitive and the interpreter both use
/// this single definition so cosimulation stays bit-exact.
int64_t cosSinLookupReference(int index, bool sine);

} // namespace roccc::interp
