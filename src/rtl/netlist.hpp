// RTL netlist: the structural hardware representation both the VHDL
// emitter and the synthesis estimator consume, and that the cycle-accurate
// simulator executes. Cells correspond one-to-one to the hardware the
// compiler emits: IEEE 1076.3 arithmetic operators, multiplexers, clocked
// registers (with a global clock-enable), and ROM IP blocks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mir/ir.hpp"
#include "support/value.hpp"

namespace roccc::rtl {

enum class CellKind {
  Const,
  Add, Sub, Mul, Div, Rem, Neg,
  And, Or, Xor, Not,
  Shl, Shr,
  Eq, Ne, Lt, Le, Gt, Ge,
  Mux,   ///< inputs: sel, a (sel=1), b (sel=0)
  Reg,   ///< clocked register; inputs: d [, en]; latches on tick when the
         ///< global enable AND the optional en input are high
  Rom,   ///< input: address; asynchronous read in simulation (sync timing is
         ///< modeled by the stage the LUT op was placed in)
  Slice, ///< bits [aux0:aux1] of the input
  Concat,///< {hi, lo}
  Resize,///< width/sign conversion (sign-extend per input net type)
};

const char* cellKindName(CellKind k);
/// True for cells with clocked state.
bool isSequential(CellKind k);

struct Net {
  int id = -1;
  ScalarType type = ScalarType::intTy();
  std::string name;
  int driver = -1; ///< driving cell (-1 for input ports)
};

struct Cell {
  int id = -1;
  CellKind kind = CellKind::Const;
  std::vector<int> inputs; ///< net ids
  int output = -1;         ///< net id
  int64_t imm = 0;         ///< Const value / Reg initial value
  int aux0 = 0, aux1 = 0;  ///< Slice hi/lo
  std::string romName;     ///< Rom: table name (for VHDL component naming)
  std::vector<int64_t> romData;
  ScalarType romElemType = ScalarType::intTy();
};

/// A synthesizable module: nets + cells + ports. One implicit clock and one
/// implicit clock-enable control all Reg cells.
struct Module {
  std::string name;
  std::vector<Net> nets;
  std::vector<Cell> cells;
  std::vector<int> inputPorts;  ///< net ids
  std::vector<int> outputPorts; ///< net ids
  std::vector<std::string> inputNames, outputNames;
  /// Pipeline latency in clock-enabled cycles from input presentation to
  /// the corresponding output sample (stageCount - 1 for datapath modules).
  int latency = 0;

  int addNet(ScalarType t, std::string name);
  /// Adds a cell; sets the output net's driver. Returns cell id.
  int addCell(CellKind kind, std::vector<int> inputs, int output);
  int addConst(int64_t value, ScalarType t, const std::string& name = "");

  int cellCount(CellKind k) const;
  int64_t registerBits() const;
  std::string dump() const;
  /// Structural validation (drivers, port wiring, types); appends problems.
  bool verify(std::vector<std::string>& errors) const;
};

/// Simulates a Module cycle by cycle.
class NetlistSim {
 public:
  explicit NetlistSim(const Module& m);

  /// Drives an input port for the current cycle.
  void setInput(size_t port, const Value& v);
  /// Propagates combinational logic from the current inputs/register state.
  void eval();
  /// Clock edge: registers latch when `enable` is true.
  void tick(bool enable);
  /// Reads an output port (call after eval()).
  Value output(size_t port) const;
  /// Reads any net (testing/debug).
  Value netValue(int net) const;
  /// Resets registers to their initial values.
  void reset();

 private:
  const Module& m_;
  std::vector<Value> values_;
  std::vector<Value> regState_;
  std::vector<int> evalOrder_; ///< combinational cells, topologically sorted
  std::vector<int> regCells_;

  Value evalCell(const Cell& c) const;
};

} // namespace roccc::rtl
