#include "roccc/cache.hpp"

#include <bit>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include <unistd.h>

#include "support/hash.hpp"
#include "support/strings.hpp"

namespace roccc {

// Bump on any change to code generation, key derivation, or the entry
// serialization below. Old tier-2 stores then read as silent misses.
const char* const kCacheSchema = "roccc-cache-v2";

// --- key derivation ----------------------------------------------------------

std::string normalizeSourceForKey(std::string_view source) {
  std::string out;
  out.reserve(source.size());
  for (size_t i = 0; i < source.size(); ++i) {
    if (source[i] == '\r') {
      out += '\n';
      if (i + 1 < source.size() && source[i + 1] == '\n') ++i;
      continue;
    }
    out += source[i];
  }
  return out;
}

namespace {

/// Bit-exact double rendering (hex of the IEEE-754 payload): "4.0" and a
/// value that merely prints as 4.0 must not collide.
std::string doubleBits(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(std::bit_cast<uint64_t>(v)));
  return buf;
}

} // namespace

std::string canonicalizeOptions(const CompileOptions& o) {
  std::ostringstream s;
  // Every field here changes what the compiler produces. Fixed order; new
  // semantic fields must be appended (and kCacheSchema bumped).
  //
  // Deliberately absent: o.pipeline.printAfterAll and o.pipeline.printAfter
  // (IR-snapshot requests — pure presentation, snapshots are never cached)
  // and roccc-cc's --quiet (never reaches CompileOptions at all). See the
  // KeyIgnoresPresentationFields test.
  s << "kernel=" << o.kernelName.size() << ':' << o.kernelName << ';';
  s << "unroll=" << o.unrollFactor << ';';
  s << "autoUnrollSliceBudget=" << o.autoUnrollSliceBudget << ';';
  s << "fullUnrollInnerLoops=" << (o.fullUnrollInnerLoops ? 1 : 0) << ';';
  s << "maxInnerUnrollTrip=" << o.maxInnerUnrollTrip << ';';
  s << "convertCallsToLuts=" << (o.convertCallsToLuts ? 1 : 0) << ';';
  s << "lutMaxIndexBits=" << o.lutMaxIndexBits << ';';
  s << "optimize=" << (o.optimize ? 1 : 0) << ';';
  s << "dp.targetStageDelayNs=" << doubleBits(o.dpOptions.targetStageDelayNs) << ';';
  s << "dp.pipeline=" << (o.dpOptions.pipeline ? 1 : 0) << ';';
  s << "dp.inferBitWidths=" << (o.dpOptions.inferBitWidths ? 1 : 0) << ';';
  s << "dp.widthMode=" << static_cast<int>(o.dpOptions.widthMode) << ';';
  s << "dp.multStyle=" << static_cast<int>(o.dpOptions.multStyle) << ';';
  s << "dp.expandDividers=" << (o.dpOptions.expandDividers ? 1 : 0) << ';';
  // verifyEach is semantic at the margin: it can turn a latent invariant
  // break into a structured failure, so verified and unverified compiles
  // must not share an entry.
  s << "pipeline.verifyEach=" << (o.pipeline.verifyEach ? 1 : 0) << ';';
  s << "budget.timeoutMs=" << o.budget.timeoutMs << ';';
  s << "budget.maxIrNodes=" << o.budget.maxIrNodes << ';';
  s << "budget.maxUnrollProduct=" << o.budget.maxUnrollProduct << ';';
  s << "budget.maxDepth=" << o.budget.maxDepth << ';';
  // The fault-injection salt: an armed compile never shares a key with a
  // clean one (armed results are uncacheable anyway — belt and suspenders).
  s << "injectFaultAt=" << o.injectFaultAt.size() << ':' << o.injectFaultAt << ';';
  // v2: timing-driven retiming. The model spec is the file's *contents*, so
  // two --timing-model paths with identical text share an entry and editing
  // the file changes the key.
  s << "retimePipeline=" << (o.retimePipeline ? 1 : 0) << ';';
  s << "timingModelSpec=" << o.timingModelSpec.size() << ':' << o.timingModelSpec << ';';
  return s.str();
}

std::string computeCacheKey(std::string_view source, const CompileOptions& options) {
  const std::string normalized = normalizeSourceForKey(source);
  const std::string canonical = canonicalizeOptions(options);
  Sha256 h;
  h.update(kCacheSchema);
  h.update("\n");
  h.update(canonical);
  h.update("\n");
  h.update("src:");
  h.update(std::to_string(normalized.size()));
  h.update("\n");
  h.update(normalized);
  return h.hex();
}

// --- entries -----------------------------------------------------------------

int64_t CacheEntry::byteSize() const {
  // Approximate resident size for the tier-1 byte budget: the blobs plus a
  // small fixed overhead per container element.
  int64_t n = 128;
  n += static_cast<int64_t>(failedPass.size() + vhdl.size() + verilog.size() +
                            transformedSource.size());
  for (const auto& d : diags) n += 48 + static_cast<int64_t>(d.message.size());
  for (const auto& p : passLog) {
    n += 96 + static_cast<int64_t>(p.name.size());
    for (const auto& [k, v] : p.counters) n += 32 + static_cast<int64_t>(k.size());
  }
  return n;
}

CacheEntry CacheEntry::fromResult(const CompileResult& r) {
  CacheEntry e;
  e.outcome = r.outcome;
  e.failedPass = r.failedPass;
  e.vhdl = r.vhdl;
  e.verilog = r.verilog;
  e.transformedSource = r.transformedSource;
  e.diags = r.diags.all();
  e.passLog = r.passLog;
  for (auto& p : e.passLog) p.snapshot.clear();
  return e;
}

CompileResult CacheEntry::toResult() const {
  CompileResult r;
  r.outcome = outcome;
  r.failedPass = failedPass;
  r.vhdl = vhdl;
  r.verilog = verilog;
  r.transformedSource = transformedSource;
  for (const auto& d : diags) r.diags.report(d.severity, d.loc, d.message);
  r.passLog = passLog;
  r.ok = outcome == CompileOutcome::Ok && !r.diags.hasErrors();
  return r;
}

bool isCacheable(const CompileResult& result, const CompileOptions& options) {
  // A fault-armed compile is a harness artifact, not a property of the
  // input — never cache it (its key is salted besides).
  if (!options.injectFaultAt.empty()) return false;
  switch (result.outcome) {
    case CompileOutcome::Ok:
    case CompileOutcome::FrontendError:
    case CompileOutcome::InternalError:
      // Deterministic functions of (source, options): positive entries and
      // negative entries both replay exactly.
      return true;
    case CompileOutcome::Timeout:
    case CompileOutcome::ResourceExceeded:
      // Wall-clock and allocator outcomes are environmental, not content.
      return false;
  }
  return false;
}

std::string CacheStats::toJson() const {
  return fmt("{\"hits\": %0, \"misses\": %1, \"coalesced\": %2, \"evictions\": %3, "
             "\"uncacheable\": %4, \"diskHits\": %5, \"diskStores\": %6, \"bytesInUse\": %7, "
             "\"entries\": %8}",
             hits, misses, coalesced, evictions, uncacheable, diskHits, diskStores, bytesInUse,
             entries);
}

// --- entry serialization (tier 2) -------------------------------------------
//
// A line-oriented format with length-prefixed blobs. parseEntry is strict:
// any truncation, header mismatch, or malformed field returns nullopt and
// the caller treats the file as a miss — corruption can cost a recompile,
// never an error or a wrong result.

namespace {

std::optional<CompileOutcome> outcomeFromName(const std::string& name) {
  for (const CompileOutcome o :
       {CompileOutcome::Ok, CompileOutcome::FrontendError, CompileOutcome::Timeout,
        CompileOutcome::ResourceExceeded, CompileOutcome::InternalError}) {
    if (name == compileOutcomeName(o)) return o;
  }
  return std::nullopt;
}

void putBlob(std::ostream& out, const char* tag, const std::string& blob) {
  out << tag << ' ' << blob.size() << '\n' << blob << '\n';
}

std::string serializeEntry(const std::string& key, const CacheEntry& e) {
  std::ostringstream out;
  out << "roccc-cache-entry " << kCacheSchema << '\n';
  out << "key " << key << '\n';
  out << "outcome " << compileOutcomeName(e.outcome) << '\n';
  putBlob(out, "failed-pass", e.failedPass);
  putBlob(out, "transformed-source", e.transformedSource);
  putBlob(out, "vhdl", e.vhdl);
  putBlob(out, "verilog", e.verilog);
  out << "diags " << e.diags.size() << '\n';
  for (const auto& d : e.diags) {
    out << "d " << static_cast<int>(d.severity) << ' ' << d.loc.line << ' ' << d.loc.column << ' '
        << d.message.size() << '\n'
        << d.message << '\n';
  }
  out << "passes " << e.passLog.size() << '\n';
  for (const auto& p : e.passLog) {
    char wall[40];
    std::snprintf(wall, sizeof wall, "%.17g", p.wallMs);
    // Pass names are single tokens (no spaces) by construction.
    out << "p " << static_cast<int>(p.layer) << ' ' << (p.ran ? 1 : 0) << ' ' << wall << ' '
        << p.name << ' ' << p.counters.size() << '\n';
    for (const auto& [k, v] : p.counters) {
      out << "c " << v << ' ' << k.size() << ' ' << k << '\n';
    }
  }
  out << "end\n";
  return out.str();
}

/// Strict cursor over the serialized form.
class EntryReader {
 public:
  explicit EntryReader(const std::string& data) : data_(data) {}

  bool literal(const std::string& expect) {
    if (data_.compare(pos_, expect.size(), expect) != 0) return false;
    pos_ += expect.size();
    return true;
  }
  /// Reads up to the next '\n' (consumed, not returned).
  bool line(std::string& out) {
    const size_t nl = data_.find('\n', pos_);
    if (nl == std::string::npos) return false;
    out = data_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return true;
  }
  bool number(int64_t& out) {
    size_t i = pos_;
    bool neg = false;
    if (i < data_.size() && data_[i] == '-') {
      neg = true;
      ++i;
    }
    if (i >= data_.size() || data_[i] < '0' || data_[i] > '9') return false;
    int64_t v = 0;
    while (i < data_.size() && data_[i] >= '0' && data_[i] <= '9') {
      v = v * 10 + (data_[i] - '0');
      ++i;
    }
    out = neg ? -v : v;
    pos_ = i;
    return true;
  }
  bool blob(size_t len, std::string& out) {
    if (pos_ + len > data_.size()) return false;
    out = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

std::optional<CacheEntry> parseEntry(const std::string& data, const std::string& expectKey) {
  EntryReader r(data);
  CacheEntry e;
  std::string text;
  int64_t n = 0;

  if (!r.literal(std::string("roccc-cache-entry ") + kCacheSchema + "\n")) return std::nullopt;
  if (!r.literal("key " + expectKey + "\n")) return std::nullopt;
  if (!r.literal("outcome ") || !r.line(text)) return std::nullopt;
  const auto outcome = outcomeFromName(text);
  if (!outcome) return std::nullopt;
  e.outcome = *outcome;

  auto readBlob = [&](const char* tag, std::string& out) {
    return r.literal(std::string(tag) + " ") && r.number(n) && n >= 0 && r.literal("\n") &&
           r.blob(static_cast<size_t>(n), out) && r.literal("\n");
  };
  if (!readBlob("failed-pass", e.failedPass)) return std::nullopt;
  if (!readBlob("transformed-source", e.transformedSource)) return std::nullopt;
  if (!readBlob("vhdl", e.vhdl)) return std::nullopt;
  if (!readBlob("verilog", e.verilog)) return std::nullopt;

  if (!r.literal("diags ") || !r.number(n) || n < 0 || !r.literal("\n")) return std::nullopt;
  for (int64_t i = 0; i < n; ++i) {
    int64_t sev = 0, ln = 0, col = 0, len = 0;
    Diagnostic d;
    if (!r.literal("d ") || !r.number(sev) || !r.literal(" ") || !r.number(ln) ||
        !r.literal(" ") || !r.number(col) || !r.literal(" ") || !r.number(len) || len < 0 ||
        !r.literal("\n") || !r.blob(static_cast<size_t>(len), d.message) || !r.literal("\n")) {
      return std::nullopt;
    }
    if (sev < 0 || sev > static_cast<int>(Severity::Error)) return std::nullopt;
    d.severity = static_cast<Severity>(sev);
    d.loc.line = static_cast<int>(ln);
    d.loc.column = static_cast<int>(col);
    e.diags.push_back(std::move(d));
  }

  if (!r.literal("passes ") || !r.number(n) || n < 0 || !r.literal("\n")) return std::nullopt;
  for (int64_t i = 0; i < n; ++i) {
    PassStatistics p;
    int64_t layer = 0, ran = 0, counters = 0;
    if (!r.literal("p ") || !r.number(layer) || !r.literal(" ") || !r.number(ran) ||
        !r.literal(" ")) {
      return std::nullopt;
    }
    // Rest of the line: "<wallMs %.17g> <name> <counterCount>" — the name is
    // a single token, wallMs may be scientific notation.
    {
      std::string rest;
      if (!r.line(rest)) return std::nullopt;
      std::istringstream fields(rest);
      if (!(fields >> p.wallMs >> p.name >> counters) || counters < 0 || p.name.empty()) {
        return std::nullopt;
      }
    }
    if (layer < 0 || layer > static_cast<int>(PassLayer::Vhdl)) return std::nullopt;
    p.layer = static_cast<PassLayer>(layer);
    p.ran = ran != 0;
    for (int64_t c = 0; c < counters; ++c) {
      int64_t value = 0, keyLen = 0;
      std::string ckey;
      if (!r.literal("c ") || !r.number(value) || !r.literal(" ") || !r.number(keyLen) ||
          keyLen < 0 || !r.literal(" ") || !r.blob(static_cast<size_t>(keyLen), ckey) ||
          !r.literal("\n")) {
        return std::nullopt;
      }
      p.counters.emplace_back(std::move(ckey), value);
    }
    e.passLog.push_back(std::move(p));
  }
  if (!r.literal("end\n")) return std::nullopt;
  return e;
}

} // namespace

// --- tier 2: the disk store --------------------------------------------------

struct CompileCache::DiskStore {
  std::string dir;
  bool usable = false;

  explicit DiskStore(const std::string& directory) : dir(directory) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) return; // unusable; every operation silently misses

    const std::string manifest = dir + "/manifest";
    const std::string want = std::string("roccc-compile-cache\nschema ") + kCacheSchema + "\n";
    std::ifstream in(manifest, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      // A manifest from another schema version: leave the store alone —
      // reads miss, writes are suppressed (we will not mix generations).
      usable = buf.str() == want;
      return;
    }
    // Fresh (or manifest-less) directory: claim it for this schema.
    if (!writeAtomic(manifest, want)) return;
    usable = true;
  }

  std::string entryPath(const std::string& key) const { return dir + "/" + key + ".entry"; }

  /// Temp-file + rename so concurrent writers (other threads hold other
  /// keys; other *processes* may hold this one) never expose a torn file.
  bool writeAtomic(const std::string& path, const std::string& bytes) const {
    namespace fs = std::filesystem;
    const std::string tmp = fmt("%0.tmp.%1", path, static_cast<int64_t>(::getpid()));
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return false;
      out << bytes;
      if (!out.good()) {
        std::error_code ec;
        fs::remove(tmp, ec);
        return false;
      }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
      fs::remove(tmp, ec);
      return false;
    }
    return true;
  }

  std::optional<CacheEntry> load(const std::string& key) const {
    if (!usable) return std::nullopt;
    std::ifstream in(entryPath(key), std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseEntry(buf.str(), key);
  }

  bool store(const std::string& key, const CacheEntry& entry) const {
    if (!usable) return false;
    return writeAtomic(entryPath(key), serializeEntry(key, entry));
  }
};

// --- tier 1: sharded LRU -----------------------------------------------------

struct CompileCache::InFlight {
  std::mutex mutex;
  std::condition_variable done;
  bool ready = false;
  /// What waiters receive: the leader's artifact set (CompileResult itself
  /// is move-only — it owns the in-memory IRs — so waiters materialize from
  /// the entry exactly like a tier-1 hit would).
  std::shared_ptr<const CacheEntry> entry;
};

struct CompileCache::Shard {
  using LruList = std::list<std::pair<std::string, std::shared_ptr<const CacheEntry>>>;

  std::mutex mutex;
  LruList lru; ///< front = most recent
  std::unordered_map<std::string, LruList::iterator> map;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight;
  int64_t bytes = 0;
};

CompileCache::CompileCache(CacheConfig config) : config_(std::move(config)) {
  if (config_.shards < 1) config_.shards = 1;
  if (config_.maxBytes < 1) config_.maxBytes = 1;
  shards_ = std::make_unique<Shard[]>(static_cast<size_t>(config_.shards));
  if (!config_.diskDir.empty()) disk_ = std::make_unique<DiskStore>(config_.diskDir);
}

CompileCache::~CompileCache() = default;

bool CompileCache::diskEnabled() const { return disk_ && disk_->usable; }

CompileCache::Shard& CompileCache::shardFor(const std::string& key) {
  // Keys are uniform SHA-256 hex; any slice is a uniform shard picker.
  uint64_t h = 14695981039346656037ull;
  for (const char c : key) h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  return shards_[h % static_cast<uint64_t>(config_.shards)];
}

void CompileCache::insertLocked(Shard& shard, const std::string& key,
                                std::shared_ptr<const CacheEntry> entry) {
  const int64_t size = entry->byteSize();
  if (auto it = shard.map.find(key); it != shard.map.end()) {
    // Same content-addressed bytes; keep the resident copy, refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  int64_t evicted = 0;
  int64_t evictedBytes = 0;
  shard.lru.emplace_front(key, std::move(entry));
  shard.map[key] = shard.lru.begin();
  shard.bytes += size;
  // Per-shard slice of the byte budget. The newest entry always stays
  // resident, even alone over budget — an oversized artifact set should
  // still serve the hits it was just stored for.
  const int64_t shardBudget = std::max<int64_t>(1, config_.maxBytes / config_.shards);
  while (shard.bytes > shardBudget && shard.lru.size() > 1) {
    const auto& victim = shard.lru.back();
    const int64_t victimSize = victim.second->byteSize();
    shard.bytes -= victimSize;
    evictedBytes += victimSize;
    shard.map.erase(victim.first);
    shard.lru.pop_back();
    ++evicted;
  }
  {
    std::lock_guard<std::mutex> statsLock(statsMutex_);
    stats_.evictions += evicted;
    stats_.bytesInUse += size - evictedBytes;
    stats_.entries += 1 - evicted;
  }
}

std::shared_ptr<const CacheEntry> CompileCache::lookup(const std::string& key) {
  Shard& shard = shardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto it = shard.map.find(key); it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->second;
    }
  }
  if (disk_) {
    if (auto loaded = disk_->load(key)) {
      auto entry = std::make_shared<const CacheEntry>(std::move(*loaded));
      std::lock_guard<std::mutex> lock(shard.mutex);
      insertLocked(shard, key, entry);
      return entry;
    }
  }
  return nullptr;
}

void CompileCache::insert(const std::string& key, CacheEntry entry) {
  auto shared = std::make_shared<const CacheEntry>(std::move(entry));
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  insertLocked(shard, key, std::move(shared));
}

CompileResult CompileCache::getOrCompute(const std::string& key, const CompileOptions& options,
                                         const std::function<CompileResult()>& compute,
                                         bool* wasHit) {
  if (wasHit) *wasHit = false;
  Shard& shard = shardFor(key);
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    if (auto it = shard.map.find(key); it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      const std::shared_ptr<const CacheEntry> entry = it->second->second;
      lock.unlock();
      {
        std::lock_guard<std::mutex> statsLock(statsMutex_);
        ++stats_.hits;
      }
      if (wasHit) *wasHit = true;
      return entry->toResult();
    }
    if (auto it = shard.inflight.find(key); it != shard.inflight.end()) {
      flight = it->second;
    } else {
      flight = std::make_shared<InFlight>();
      shard.inflight.emplace(key, flight);
      leader = true;
    }
  }

  if (!leader) {
    // Single-flight: the leader is compiling this exact key right now;
    // block until it publishes and share its artifact set.
    std::shared_ptr<const CacheEntry> entry;
    {
      std::unique_lock<std::mutex> lock(flight->mutex);
      flight->done.wait(lock, [&] { return flight->ready; });
      entry = flight->entry;
    }
    {
      std::lock_guard<std::mutex> statsLock(statsMutex_);
      ++stats_.coalesced;
    }
    if (wasHit) *wasHit = true;
    return entry->toResult();
  }

  // Leader: tier-2 probe, then the real compile.
  auto publish = [&](std::shared_ptr<const CacheEntry> entry) {
    {
      std::lock_guard<std::mutex> lock(flight->mutex);
      flight->entry = std::move(entry);
      flight->ready = true;
    }
    flight->done.notify_all();
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.inflight.erase(key);
  };

  if (disk_) {
    if (auto loaded = disk_->load(key)) {
      auto entry = std::make_shared<const CacheEntry>(std::move(*loaded));
      {
        std::lock_guard<std::mutex> lock(shard.mutex);
        insertLocked(shard, key, entry);
      }
      {
        std::lock_guard<std::mutex> statsLock(statsMutex_);
        ++stats_.hits;
        ++stats_.diskHits;
      }
      if (wasHit) *wasHit = true;
      CompileResult result = entry->toResult();
      publish(std::move(entry));
      return result;
    }
  }

  CompileResult result;
  try {
    result = compute();
  } catch (const std::exception& e) {
    // compute() is the driver's contained job body and should never throw;
    // if it somehow does, waiters must still be released with a structured
    // failure rather than left blocked.
    result.outcome = CompileOutcome::InternalError;
    result.diags.error({}, fmt("internal: cache compute failed: %0", e.what()));
  } catch (...) {
    result.outcome = CompileOutcome::InternalError;
    result.diags.error({}, "internal: cache compute failed: unknown exception");
  }

  // The publication entry is built even for uncacheable outcomes — waiters
  // coalesced onto this flight still need the artifacts; the entry just
  // never enters a tier.
  auto entry = std::make_shared<const CacheEntry>(CacheEntry::fromResult(result));
  const bool cacheable = isCacheable(result, options);
  if (cacheable) {
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      insertLocked(shard, key, entry);
    }
    if (disk_ && disk_->store(key, *entry)) {
      std::lock_guard<std::mutex> statsLock(statsMutex_);
      ++stats_.diskStores;
    }
  }
  {
    std::lock_guard<std::mutex> statsLock(statsMutex_);
    ++stats_.misses;
    if (!cacheable) ++stats_.uncacheable;
  }
  publish(std::move(entry));
  return result;
}

CacheStats CompileCache::stats() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  return stats_;
}

} // namespace roccc
