// Tests for the content-addressed compile cache (src/roccc/cache.hpp):
// SHA-256 correctness, key derivation (sensitivity to every semantic option,
// invariance to presentation-only ones), tier-1 hit/miss/eviction behaviour,
// single-flight deduplication under a worker stampede, the negative-caching
// policy, and the tier-2 disk store (warm restart, corruption, schema
// mismatch — all of which must read as silent misses, never errors).
//
// The load-bearing property throughout: a result served from the cache is
// byte-identical to a fresh compile of the same (source, options) — the
// same artifact bytes the determinism suite (driver_test.cpp) guarantees
// across worker counts.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "../bench/kernels.hpp"
#include "roccc/cache.hpp"
#include "roccc/driver.hpp"
#include "support/hash.hpp"

namespace roccc {
namespace {

namespace fs = std::filesystem;

// A small valid kernel, cheap enough to compile hundreds of times.
const char* kSmallKernel = "void k(const int8 A[16], int16 C[12]) {\n"
                           "  int i;\n"
                           "  for (i = 0; i < 12; i++) { C[i] = A[i] + A[i+4]; }\n"
                           "}\n";

std::vector<CompileJob> table1Jobs() {
  std::vector<CompileJob> jobs;
  for (const auto& k : bench::kTable1Kernels) {
    CompileOptions o;
    if (k.targetStageDelayNs > 0) o.dpOptions.targetStageDelayNs = k.targetStageDelayNs;
    jobs.push_back({k.name, k.source, o});
  }
  return jobs;
}

/// Fresh per-test scratch directory under the gtest temp root.
std::string freshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "roccc_cache_test_" + tag;
  fs::remove_all(dir);
  return dir;
}

// --- SHA-256 -----------------------------------------------------------------

TEST(Sha256, Fips180KnownVectors) {
  EXPECT_EQ(sha256Hex(""), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // One-block boundary cases: 55 bytes (longest single-block message) and
  // 64 bytes (padding spills into a second block).
  EXPECT_EQ(sha256Hex(std::string(55, 'a')),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(sha256Hex(std::string(64, 'a')),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
  EXPECT_EQ(sha256Hex(std::string(1000000, 'a')),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingUpdatesMatchOneShot) {
  const std::string data(12345, 'x');
  Sha256 h;
  for (size_t i = 0; i < data.size(); i += 7) {
    h.update(std::string_view(data).substr(i, 7));
  }
  EXPECT_EQ(h.hex(), sha256Hex(data));
}

// --- key derivation ----------------------------------------------------------

TEST(CacheKey, SensitiveToEverySemanticOption) {
  const CompileOptions base;
  const std::string baseKey = computeCacheKey(kSmallKernel, base);
  EXPECT_EQ(baseKey.size(), 64u);

  // Each mutation must move the key: a stale hit across any of these would
  // serve artifacts from a different compile.
  std::vector<std::pair<const char*, CompileOptions>> variants;
  auto add = [&](const char* label, auto mutate) {
    CompileOptions o;
    mutate(o);
    variants.emplace_back(label, std::move(o));
  };
  add("kernelName", [](CompileOptions& o) { o.kernelName = "other"; });
  add("unrollFactor", [](CompileOptions& o) { o.unrollFactor = 4; });
  add("optimize", [](CompileOptions& o) { o.optimize = !o.optimize; });
  add("targetStageDelayNs", [](CompileOptions& o) { o.dpOptions.targetStageDelayNs = 7.5; });
  add("pipeline", [](CompileOptions& o) { o.dpOptions.pipeline = !o.dpOptions.pipeline; });
  add("inferBitWidths",
      [](CompileOptions& o) { o.dpOptions.inferBitWidths = !o.dpOptions.inferBitWidths; });
  add("multStyle",
      [](CompileOptions& o) { o.dpOptions.multStyle = dp::BuildOptions::MultStyle::Mult18; });
  add("verifyEach", [](CompileOptions& o) { o.pipeline.verifyEach = true; });
  add("timeoutMs", [](CompileOptions& o) { o.budget.timeoutMs = 1234; });
  add("maxIrNodes", [](CompileOptions& o) { o.budget.maxIrNodes = 99999; });
  add("maxUnrollProduct", [](CompileOptions& o) { o.budget.maxUnrollProduct = 512; });
  add("maxDepth", [](CompileOptions& o) { o.budget.maxDepth = 64; });
  add("injectFaultAt", [](CompileOptions& o) { o.injectFaultAt = "driver.job"; });
  add("retimePipeline", [](CompileOptions& o) { o.retimePipeline = !o.retimePipeline; });
  add("timingModelSpec",
      [](CompileOptions& o) { o.timingModelSpec = "clock-overhead-ns 1.1\n"; });

  for (const auto& [label, options] : variants) {
    EXPECT_NE(computeCacheKey(kSmallKernel, options), baseKey) << label;
  }
  EXPECT_NE(computeCacheKey("void other() {}", base), baseKey) << "source bytes";
}

TEST(CacheKey, TimingOptionsPartitionHitsButStayByteIdenticalWithinKey) {
  // Two stage-delay targets are two distinct cache entries (retiming places
  // registers differently), and a repeat of either target is a warm hit
  // serving byte-identical VHDL.
  CompileOptions loose;
  loose.dpOptions.targetStageDelayNs = 12.0;
  CompileOptions tight;
  tight.dpOptions.targetStageDelayNs = 2.0;
  ASSERT_NE(computeCacheKey(bench::kFir, loose), computeCacheKey(bench::kFir, tight));

  std::vector<CompileJob> jobs{{"loose", bench::kFir, loose}, {"tight", bench::kFir, tight}};
  CompileService service(2);
  auto cache = std::make_shared<CompileCache>();
  service.setCache(cache);
  const BatchResult cold = service.compileBatch(jobs);
  ASSERT_TRUE(cold.allOk());
  EXPECT_EQ(cold.cacheMisses, 2);
  EXPECT_NE(cold.results[0].vhdl, cold.results[1].vhdl); // staging really differs

  const BatchResult warm = service.compileBatch(jobs);
  ASSERT_TRUE(warm.allOk());
  EXPECT_EQ(warm.cacheHits, 2);
  EXPECT_EQ(warm.results[0].vhdl, cold.results[0].vhdl);
  EXPECT_EQ(warm.results[1].vhdl, cold.results[1].vhdl);
}

TEST(CacheKey, IgnoresPresentationOnlyFields) {
  // --print-after-all / --print-after request stderr IR snapshots; they do
  // not change the compiled artifacts and must not fragment the key space.
  // (roccc-cc's --quiet never reaches CompileOptions at all.)
  const CompileOptions base;
  const std::string baseKey = computeCacheKey(kSmallKernel, base);

  CompileOptions printAll;
  printAll.pipeline.printAfterAll = true;
  EXPECT_EQ(computeCacheKey(kSmallKernel, printAll), baseKey);

  CompileOptions printSome;
  printSome.pipeline.printAfter = {"unroll", "pipeline"};
  EXPECT_EQ(computeCacheKey(kSmallKernel, printSome), baseKey);
}

TEST(CacheKey, LineEndingNormalizationWidensHitsOnly) {
  const std::string lf = "void k() {\n  int i;\n}\n";
  const std::string crlf = "void k() {\r\n  int i;\r\n}\r\n";
  const std::string cr = "void k() {\r  int i;\r}\r";
  const CompileOptions o;
  EXPECT_EQ(computeCacheKey(lf, o), computeCacheKey(crlf, o));
  EXPECT_EQ(computeCacheKey(lf, o), computeCacheKey(cr, o));
  // Any other byte change still moves the key.
  EXPECT_NE(computeCacheKey(lf, o), computeCacheKey("void k() {\n  int j;\n}\n", o));
  EXPECT_EQ(normalizeSourceForKey("a\r\nb\rc\n"), "a\nb\nc\n");
}

// --- store policy ------------------------------------------------------------

TEST(CachePolicy, DeterministicOutcomesCacheEnvironmentalOnesDoNot) {
  const CompileOptions clean;
  CompileResult r;
  r.outcome = CompileOutcome::Ok;
  EXPECT_TRUE(isCacheable(r, clean));
  r.outcome = CompileOutcome::FrontendError;
  EXPECT_TRUE(isCacheable(r, clean));
  r.outcome = CompileOutcome::InternalError;
  EXPECT_TRUE(isCacheable(r, clean));
  r.outcome = CompileOutcome::Timeout;
  EXPECT_FALSE(isCacheable(r, clean));
  r.outcome = CompileOutcome::ResourceExceeded;
  EXPECT_FALSE(isCacheable(r, clean));

  // Fault-armed compiles are harness artifacts: never stored, any outcome.
  CompileOptions armed;
  armed.injectFaultAt = "driver.job";
  r.outcome = CompileOutcome::Ok;
  EXPECT_FALSE(isCacheable(r, armed));
  r.outcome = CompileOutcome::InternalError;
  EXPECT_FALSE(isCacheable(r, armed));
}

// --- tier 1 through the batch driver ----------------------------------------

TEST(CompileCache, HitIsByteIdenticalToUncachedCompile) {
  std::vector<CompileJob> jobs{{"k", kSmallKernel, {}}};

  const BatchResult uncached = CompileService(1).compileBatch(jobs);
  ASSERT_TRUE(uncached.allOk());
  EXPECT_EQ(uncached.cacheHits, 0);
  EXPECT_EQ(uncached.cacheMisses, 0);

  CompileService service(1);
  auto cache = std::make_shared<CompileCache>();
  service.setCache(cache);

  const BatchResult cold = service.compileBatch(jobs);
  ASSERT_TRUE(cold.allOk());
  EXPECT_EQ(cold.cacheHits, 0);
  EXPECT_EQ(cold.cacheMisses, 1);

  const BatchResult warm = service.compileBatch(jobs);
  ASSERT_TRUE(warm.allOk());
  EXPECT_EQ(warm.cacheHits, 1);
  EXPECT_EQ(warm.cacheMisses, 0);

  for (const BatchResult* b : {&cold, &warm}) {
    EXPECT_EQ(b->results[0].vhdl, uncached.results[0].vhdl);
    EXPECT_EQ(b->results[0].verilog, uncached.results[0].verilog);
    EXPECT_EQ(b->results[0].transformedSource, uncached.results[0].transformedSource);
    ASSERT_EQ(b->results[0].passLog.size(), uncached.results[0].passLog.size());
    for (size_t p = 0; p < uncached.results[0].passLog.size(); ++p) {
      EXPECT_EQ(b->results[0].passLog[p].name, uncached.results[0].passLog[p].name);
      EXPECT_EQ(b->results[0].passLog[p].counters, uncached.results[0].passLog[p].counters);
    }
  }
  const CacheStats stats = cache->stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GT(stats.bytesInUse, 0);
}

TEST(CompileCache, StampedeOfIdenticalJobsCompilesOnce) {
  // 16 copies of one job on 8 workers against an empty cache: exactly one
  // compile runs; the other 15 are tier-1 hits or single-flight waiters.
  const CompileJob job{"dct", bench::kDct, {}};
  std::vector<CompileJob> jobs(16, job);

  CompileService service(8);
  auto cache = std::make_shared<CompileCache>();
  service.setCache(cache);

  const BatchResult batch = service.compileBatch(jobs);
  ASSERT_TRUE(batch.allOk());
  EXPECT_EQ(batch.cacheMisses, 1);
  EXPECT_EQ(batch.cacheHits, 15);
  const CacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits + stats.coalesced, 15);
  for (size_t i = 1; i < jobs.size(); ++i) {
    ASSERT_EQ(batch.results[i].vhdl, batch.results[0].vhdl) << "slot " << i;
  }
}

TEST(CompileCache, FrontendErrorsAreNegativelyCached) {
  std::vector<CompileJob> jobs{{"broken", "void k(const int8 A[8], int8 C[4]) { }", {}}};

  CompileService service(1);
  auto cache = std::make_shared<CompileCache>();
  service.setCache(cache);

  const BatchResult cold = service.compileBatch(jobs);
  ASSERT_FALSE(cold.allOk());
  EXPECT_EQ(cold.results[0].outcome, CompileOutcome::FrontendError);
  EXPECT_EQ(cold.cacheMisses, 1);

  const BatchResult warm = service.compileBatch(jobs);
  EXPECT_EQ(warm.cacheHits, 1);
  EXPECT_EQ(warm.results[0].outcome, CompileOutcome::FrontendError);
  EXPECT_FALSE(warm.results[0].ok);
  // The replayed diagnostics are the original ones, byte for byte.
  ASSERT_EQ(warm.results[0].diags.all().size(), cold.results[0].diags.all().size());
  for (size_t d = 0; d < cold.results[0].diags.all().size(); ++d) {
    EXPECT_EQ(warm.results[0].diags.all()[d].message, cold.results[0].diags.all()[d].message);
    EXPECT_EQ(warm.results[0].diags.all()[d].loc, cold.results[0].diags.all()[d].loc);
  }
}

TEST(CompileCache, TimeoutsAreNeverCached) {
  // timeoutMs = -1: the deadline is already expired, so the job times out
  // deterministically — but Timeout is an environmental outcome and must
  // recompile every time.
  CompileOptions o;
  o.budget.timeoutMs = -1;
  std::vector<CompileJob> jobs{{"t", kSmallKernel, o}};

  CompileService service(1);
  auto cache = std::make_shared<CompileCache>();
  service.setCache(cache);

  for (int round = 0; round < 2; ++round) {
    const BatchResult batch = service.compileBatch(jobs);
    EXPECT_EQ(batch.results[0].outcome, CompileOutcome::Timeout) << "round " << round;
    EXPECT_EQ(batch.cacheMisses, 1) << "round " << round;
    EXPECT_EQ(batch.cacheHits, 0) << "round " << round;
  }
  const CacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.uncacheable, 2);
  EXPECT_EQ(stats.entries, 0);
}

TEST(CompileCache, FaultInjectedRunsAreNeverCached) {
  CompileOptions armed;
  armed.injectFaultAt = "driver.job";
  std::vector<CompileJob> jobs{{"f", kSmallKernel, armed}};

  CompileService service(1);
  auto cache = std::make_shared<CompileCache>();
  service.setCache(cache);

  for (int round = 0; round < 2; ++round) {
    const BatchResult batch = service.compileBatch(jobs);
    EXPECT_EQ(batch.results[0].outcome, CompileOutcome::InternalError) << "round " << round;
    EXPECT_EQ(batch.cacheMisses, 1) << "round " << round;
  }
  EXPECT_EQ(cache->stats().entries, 0);
}

TEST(CompileCache, ByteBudgetEvictsLeastRecentlyUsed) {
  CacheConfig cfg;
  cfg.shards = 1; // deterministic: every key in one LRU
  cfg.maxBytes = 4096;
  CompileCache cache(cfg);

  auto entryOfSize = [](size_t bytes) {
    CacheEntry e;
    e.vhdl.assign(bytes, 'v');
    return e;
  };
  // ~1.4 KB each (plus overhead): the fourth insert must push the oldest out.
  for (int i = 0; i < 4; ++i) {
    cache.insert("key" + std::to_string(i), entryOfSize(1400));
  }
  const CacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.bytesInUse, 4096 + 1600); // newest always kept, even over budget
  EXPECT_EQ(cache.lookup("key0"), nullptr); // LRU tail went first
  EXPECT_NE(cache.lookup("key3"), nullptr); // newest resident
}

TEST(CompileCache, OversizedSingleEntryStaysResident) {
  CacheConfig cfg;
  cfg.shards = 1;
  cfg.maxBytes = 64; // far below any entry size
  CompileCache cache(cfg);
  CacheEntry e;
  e.vhdl.assign(1000, 'v');
  cache.insert("big", e);
  EXPECT_NE(cache.lookup("big"), nullptr);
  EXPECT_EQ(cache.stats().entries, 1);
}

// --- tier 2: the disk store --------------------------------------------------

TEST(CompileCacheDisk, WarmRestartServesFromDisk) {
  const std::string dir = freshDir("warm_restart");
  std::vector<CompileJob> jobs{{"k", kSmallKernel, {}}};

  std::string coldVhdl;
  {
    CompileService service(1);
    CacheConfig cfg;
    cfg.diskDir = dir;
    auto cache = std::make_shared<CompileCache>(cfg);
    ASSERT_TRUE(cache->diskEnabled());
    service.setCache(cache);
    const BatchResult cold = service.compileBatch(jobs);
    ASSERT_TRUE(cold.allOk());
    EXPECT_EQ(cold.cacheMisses, 1);
    EXPECT_EQ(cache->stats().diskStores, 1);
    coldVhdl = cold.results[0].vhdl;
  }
  // A brand-new cache object (a "new process") over the same directory:
  // tier 1 is empty, the hit comes from disk.
  {
    CompileService service(1);
    CacheConfig cfg;
    cfg.diskDir = dir;
    auto cache = std::make_shared<CompileCache>(cfg);
    service.setCache(cache);
    const BatchResult warm = service.compileBatch(jobs);
    ASSERT_TRUE(warm.allOk());
    EXPECT_EQ(warm.cacheHits, 1);
    EXPECT_EQ(warm.cacheMisses, 0);
    EXPECT_EQ(cache->stats().diskHits, 1);
    EXPECT_EQ(warm.results[0].vhdl, coldVhdl);
  }
  fs::remove_all(dir);
}

TEST(CompileCacheDisk, CorruptEntryIsASilentMiss) {
  const std::string dir = freshDir("corrupt");
  std::vector<CompileJob> jobs{{"k", kSmallKernel, {}}};
  const std::string key = computeCacheKey(jobs[0].source, jobs[0].options);

  std::string goodVhdl;
  {
    CacheConfig cfg;
    cfg.diskDir = dir;
    CompileService service(1);
    auto cache = std::make_shared<CompileCache>(cfg);
    service.setCache(cache);
    goodVhdl = service.compileBatch(jobs).results[0].vhdl;
  }
  const std::string entryFile = dir + "/" + key + ".entry";
  ASSERT_TRUE(fs::exists(entryFile));

  // Three flavours of damage; each must read as a miss and recompile to the
  // same bytes, never error out or serve garbage.
  const std::vector<std::string> damage = {
      "",                                   // truncated to nothing
      "roccc-cache-entry bogus-schema\n",   // wrong schema header
      std::string(100, '\xff'),             // binary garbage
  };
  for (const std::string& bytes : damage) {
    {
      std::ofstream out(entryFile, std::ios::binary | std::ios::trunc);
      out << bytes;
    }
    CacheConfig cfg;
    cfg.diskDir = dir;
    CompileService service(1);
    auto cache = std::make_shared<CompileCache>(cfg);
    service.setCache(cache);
    const BatchResult batch = service.compileBatch(jobs);
    ASSERT_TRUE(batch.allOk());
    EXPECT_EQ(batch.cacheMisses, 1); // the damaged entry did not hit
    EXPECT_EQ(batch.results[0].vhdl, goodVhdl);
  }
  fs::remove_all(dir);
}

TEST(CompileCacheDisk, ManifestSchemaMismatchDisablesTheStore) {
  const std::string dir = freshDir("manifest");
  fs::create_directories(dir);
  {
    std::ofstream out(dir + "/manifest", std::ios::binary);
    out << "roccc-compile-cache\nschema some-other-version\n";
  }
  CacheConfig cfg;
  cfg.diskDir = dir;
  auto cache = std::make_shared<CompileCache>(cfg);
  // Another generation owns this directory: reads miss, writes are
  // suppressed, and the foreign manifest is left untouched.
  EXPECT_FALSE(cache->diskEnabled());

  CompileService service(1);
  service.setCache(cache);
  std::vector<CompileJob> jobs{{"k", kSmallKernel, {}}};
  const BatchResult batch = service.compileBatch(jobs);
  ASSERT_TRUE(batch.allOk());
  EXPECT_EQ(cache->stats().diskStores, 0);
  {
    std::ifstream in(dir + "/manifest", std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), "roccc-compile-cache\nschema some-other-version\n");
  }
  fs::remove_all(dir);
}

// --- golden warm batch -------------------------------------------------------

TEST(CompileCacheGolden, WarmTable1BatchMatchesGoldenBytes) {
  // The nine Table 1 kernels, compiled cold then served warm: the warm
  // batch must reproduce the checked-in golden VHDL byte for byte — a
  // cache hit is held to the same standard as a fresh compile.
  const auto jobs = table1Jobs();
  CompileService service(8);
  auto cache = std::make_shared<CompileCache>();
  service.setCache(cache);

  const BatchResult cold = service.compileBatch(jobs);
  ASSERT_TRUE(cold.allOk());
  const BatchResult warm = service.compileBatch(jobs);
  ASSERT_TRUE(warm.allOk());
  EXPECT_EQ(warm.cacheHits, static_cast<int>(jobs.size()));
  EXPECT_EQ(warm.cacheMisses, 0);

  for (size_t i = 0; i < jobs.size(); ++i) {
    const std::string path = std::string(ROCCC_GOLDEN_DIR) + "/" + jobs[i].name + ".vhd";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden file " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(warm.results[i].vhdl, buf.str()) << jobs[i].name;
  }
}

} // namespace
} // namespace roccc
