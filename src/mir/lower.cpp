#include "mir/lower.hpp"

#include <cassert>
#include <map>

#include "support/cosrom.hpp"
#include "support/faultpoint.hpp"
#include "support/strings.hpp"

namespace roccc::mir {

using namespace roccc::ast;

namespace {

class Lowerer {
 public:
  Lowerer(const Module& m, const Function& fn, FunctionIR& out, DiagEngine& diags)
      : m_(m), fn_(fn), out_(out), diags_(diags) {}

  bool run() {
    out_.name = fn_.name;
    // Params and their I/O port order: inputs first, then outputs, each in
    // declaration order.
    int inPort = 0, outPort = 0;
    for (const auto& p : fn_.params) {
      const bool isOut = p.mode == ParamMode::Out;
      out_.params.push_back({p.name, p.type.scalar, isOut});
      if (isOut) {
        outPortOf_[&p] = outPort++;
      } else {
        inPortOf_[&p] = inPort++;
      }
    }
    for (const auto& g : m_.globals) {
      if (g.type.isArray()) {
        if (g.isConst && !g.init.empty()) {
          out_.tables.push_back({g.name, g.type.scalar, g.init});
        }
      } else {
        out_.feedbacks.push_back({g.name, g.type.scalar, g.init.empty() ? 0 : g.init[0]});
      }
    }

    cur_ = out_.addBlock();
    // Input copies at the data-flow entry (section 4.2.2).
    for (const auto& p : fn_.params) {
      if (p.mode == ParamMode::Out) continue;
      const int r = out_.newReg(p.type.scalar, p.name);
      Instr in;
      in.op = Opcode::In;
      in.dst = r;
      in.type = p.type.scalar;
      in.aux0 = inPortOf_.at(&p);
      in.loc = p.loc;
      emit(std::move(in));
      varReg_[&p] = r;
    }

    lowerBlockStmts(*fn_.body);
    if (failed_) return false;

    // Terminate.
    Instr ret;
    ret.op = Opcode::Ret;
    emit(std::move(ret));

    // Fill preds from succs.
    for (const auto& b : out_.blocks) {
      for (int s : b.succs) out_.blocks[static_cast<size_t>(s)].preds.push_back(b.id);
    }
    std::vector<std::string> errors;
    if (!out_.verify(errors)) {
      for (const auto& e : errors) diags_.error(fn_.loc, "lowering produced invalid MIR: " + e);
      return false;
    }
    return true;
  }

 private:
  const Module& m_;
  const Function& fn_;
  FunctionIR& out_;
  DiagEngine& diags_;
  int cur_ = 0;
  bool failed_ = false;
  std::map<const VarDecl*, int> varReg_;
  std::map<const VarDecl*, int> inPortOf_, outPortOf_;

  void fail(SourceLoc loc, std::string msg) {
    diags_.error(loc, std::move(msg));
    failed_ = true;
  }

  Block& block() { return out_.blocks[static_cast<size_t>(cur_)]; }

  void emit(Instr in) { block().instrs.push_back(std::move(in)); }

  int emitOp(Opcode op, ScalarType type, std::vector<Operand> srcs, SourceLoc loc,
             const std::string& debugName = "") {
    Instr in;
    in.op = op;
    in.dst = out_.newReg(type, debugName);
    in.type = type;
    in.srcs = std::move(srcs);
    in.loc = loc;
    const int r = in.dst;
    emit(std::move(in));
    return r;
  }

  /// Variable register, creating it on first write.
  int regFor(const VarDecl* d) {
    const auto it = varReg_.find(d);
    if (it != varReg_.end()) return it->second;
    const int r = out_.newReg(d->type.scalar, d->name);
    varReg_[d] = r;
    return r;
  }

  void assignVar(const VarDecl* d, int valueReg, SourceLoc loc) {
    Instr mv;
    mv.op = Opcode::Mov;
    mv.dst = regFor(d);
    mv.type = d->type.scalar;
    mv.srcs = {Operand::ofReg(valueReg)};
    mv.loc = loc;
    emit(std::move(mv));
  }

  // --- expressions ------------------------------------------------------

  int lowerExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit: {
        Instr ld;
        ld.op = Opcode::Ldc;
        ld.dst = out_.newReg(e.type, "");
        ld.type = e.type;
        ld.imm = static_cast<const IntLitExpr&>(e).value;
        ld.loc = e.loc;
        const int r = ld.dst;
        emit(std::move(ld));
        return r;
      }
      case ExprKind::VarRef: {
        const auto& v = static_cast<const VarRefExpr&>(e);
        const auto it = varReg_.find(v.decl);
        if (it == varReg_.end()) {
          fail(e.loc, fmt("read of unassigned variable '%0' in data path", v.name));
          return out_.newReg(e.type, v.name);
        }
        return it->second;
      }
      case ExprKind::ArrayRef:
        fail(e.loc, "array access survived into the data-path function");
        return out_.newReg(e.type, "");
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        const int src = lowerExpr(*u.operand);
        switch (u.op) {
          case UnOp::Neg:
            return emitOp(Opcode::Neg, e.type, {Operand::ofReg(src)}, e.loc);
          case UnOp::BitNot:
            return emitOp(Opcode::Not, e.type, {Operand::ofReg(src)}, e.loc);
          case UnOp::LogicalNot: {
            // !x == (x == 0)
            Instr zero;
            zero.op = Opcode::Ldc;
            zero.dst = out_.newReg(out_.regTypes[static_cast<size_t>(src)], "");
            zero.type = zero.dst >= 0 ? out_.regTypes[static_cast<size_t>(src)] : e.type;
            zero.imm = 0;
            const int z = zero.dst;
            emit(std::move(zero));
            return emitOp(Opcode::Seq, ScalarType::boolTy(), {Operand::ofReg(src), Operand::ofReg(z)}, e.loc);
          }
        }
        break;
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        const int l = lowerExpr(*b.lhs);
        const int r = lowerExpr(*b.rhs);
        const Opcode op = [&] {
          switch (b.op) {
            case BinOp::Add: return Opcode::Add;
            case BinOp::Sub: return Opcode::Sub;
            case BinOp::Mul: return Opcode::Mul;
            case BinOp::Div: return Opcode::Div;
            case BinOp::Rem: return Opcode::Rem;
            case BinOp::And: return Opcode::And;
            case BinOp::Or: return Opcode::Or;
            case BinOp::Xor: return Opcode::Xor;
            case BinOp::Shl: return Opcode::Shl;
            case BinOp::Shr: return Opcode::Shr;
            case BinOp::Eq: return Opcode::Seq;
            case BinOp::Ne: return Opcode::Sne;
            case BinOp::Lt: return Opcode::Slt;
            case BinOp::Le: return Opcode::Sle;
            case BinOp::Gt: return Opcode::Sgt;
            case BinOp::Ge: return Opcode::Sge;
            // The data path evaluates both sides of && / || — they are
            // 1-bit pure values here, so bitwise and/or is equivalent.
            case BinOp::LAnd: return Opcode::And;
            case BinOp::LOr: return Opcode::Or;
          }
          return Opcode::Add;
        }();
        return emitOp(op, e.type, {Operand::ofReg(l), Operand::ofReg(r)}, e.loc);
      }
      case ExprKind::Cast: {
        const auto& c = static_cast<const CastExpr&>(e);
        const int src = lowerExpr(*c.operand);
        if (out_.regTypes[static_cast<size_t>(src)] == c.type) return src;
        return emitOp(Opcode::Cast, c.type, {Operand::ofReg(src)}, e.loc);
      }
      case ExprKind::Call:
        return lowerCall(static_cast<const CallExpr&>(e));
    }
    fail(e.loc, "unhandled expression in lowering");
    return out_.newReg(e.type, "");
  }

  int lowerCall(const CallExpr& c) {
    if (c.callee == intrinsics::kLoadPrev) {
      const auto& v = static_cast<const VarRefExpr&>(*c.args[0]);
      Instr lpr;
      lpr.op = Opcode::Lpr;
      lpr.dst = out_.newReg(c.type, v.name + "_prev");
      lpr.type = c.type;
      lpr.symbol = v.name;
      lpr.loc = c.loc;
      const int r = lpr.dst;
      emit(std::move(lpr));
      return r;
    }
    if (c.callee == intrinsics::kStoreNext) {
      const auto& v = static_cast<const VarRefExpr&>(*c.args[0]);
      const int val = lowerExpr(*c.args[1]);
      Instr snx;
      snx.op = Opcode::Snx;
      snx.type = c.type;
      snx.symbol = v.name;
      snx.srcs = {Operand::ofReg(val)};
      snx.loc = c.loc;
      emit(std::move(snx));
      return val;
    }
    if (c.callee == intrinsics::kLookup) {
      const auto& t = static_cast<const VarRefExpr&>(*c.args[0]);
      const int idx = lowerExpr(*c.args[1]);
      Instr lut;
      lut.op = Opcode::Lut;
      lut.dst = out_.newReg(c.type, "");
      lut.type = c.type;
      lut.symbol = t.name;
      lut.srcs = {Operand::ofReg(idx)};
      lut.loc = c.loc;
      const int r = lut.dst;
      emit(std::move(lut));
      return r;
    }
    if (c.callee == intrinsics::kCos || c.callee == intrinsics::kSin) {
      // Pre-existing cos/sin LUT IP: modeled as a Lut over a synthesized
      // table registered once per function.
      const std::string tname = c.callee == intrinsics::kCos ? "__cos_rom" : "__sin_rom";
      if (!out_.findTable(tname)) {
        FunctionIR::Table t;
        t.name = tname;
        t.elemType = ScalarType::make(16, true);
        for (int i = 0; i < 1024; ++i) {
          t.values.push_back(cosRomEntry(i, c.callee == intrinsics::kSin));
        }
        out_.tables.push_back(std::move(t));
      }
      const int idx = lowerExpr(*c.args[0]);
      Instr lut;
      lut.op = Opcode::Lut;
      lut.dst = out_.newReg(c.type, "");
      lut.type = c.type;
      lut.symbol = tname;
      lut.srcs = {Operand::ofReg(idx)};
      lut.loc = c.loc;
      const int r = lut.dst;
      emit(std::move(lut));
      return r;
    }
    if (c.callee == intrinsics::kBitSelect) {
      const int src = lowerExpr(*c.args[0]);
      Instr bs;
      bs.op = Opcode::BitSel;
      bs.dst = out_.newReg(c.type, "");
      bs.type = c.type;
      bs.aux0 = static_cast<int>(*evalConstant(*c.args[1]));
      bs.aux1 = static_cast<int>(*evalConstant(*c.args[2]));
      bs.srcs = {Operand::ofReg(src)};
      bs.loc = c.loc;
      const int r = bs.dst;
      emit(std::move(bs));
      return r;
    }
    if (c.callee == intrinsics::kBitConcat) {
      const int hi = lowerExpr(*c.args[0]);
      const int lo = lowerExpr(*c.args[1]);
      return emitOp(Opcode::BitCat, c.type, {Operand::ofReg(hi), Operand::ofReg(lo)}, c.loc);
    }
    fail(c.loc, fmt("call to '%0' in the data path (inline or LUT-convert it first)", c.callee));
    return out_.newReg(c.type, "");
  }

  // --- statements ----------------------------------------------------------

  void lowerBlockStmts(const BlockStmt& b) {
    for (const auto& s : b.stmts) lowerStmt(*s);
  }

  void lowerStmt(const Stmt& s) {
    if (failed_) return;
    switch (s.kind) {
      case StmtKind::Block:
        lowerBlockStmts(static_cast<const BlockStmt&>(s));
        break;
      case StmtKind::Decl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        if (d.init) {
          const int v = lowerExpr(*d.init);
          assignVar(&d.var, coerceReg(v, d.var.type.scalar, d.loc), d.loc);
        }
        break;
      }
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        const int v = lowerExpr(*a.value);
        switch (a.target.kind) {
          case LValue::Kind::Var:
            assignVar(a.target.decl, coerceReg(v, a.target.decl->type.scalar, a.loc), a.loc);
            break;
          case LValue::Kind::Deref: {
            Instr o;
            o.op = Opcode::Out;
            o.type = a.target.decl->type.scalar;
            o.aux0 = outPortOf_.at(a.target.decl);
            o.srcs = {Operand::ofReg(coerceReg(v, a.target.decl->type.scalar, a.loc))};
            o.loc = a.loc;
            emit(std::move(o));
            break;
          }
          case LValue::Kind::ArrayElem:
            fail(a.loc, "array store survived into the data-path function");
            break;
        }
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        const int cond = lowerExpr(*i.cond);
        const int thenB = out_.addBlock();
        const int elseB = out_.addBlock();
        const int joinB = out_.addBlock();
        Instr br;
        br.op = Opcode::Br;
        br.srcs = {Operand::ofReg(cond)};
        br.loc = i.loc;
        emit(std::move(br));
        block().succs = {thenB, elseB};

        cur_ = thenB;
        lowerStmt(*i.thenBody);
        emitJmp(joinB, i.loc);

        cur_ = elseB;
        if (i.elseBody) lowerStmt(*i.elseBody);
        emitJmp(joinB, i.loc);

        cur_ = joinB;
        break;
      }
      case StmtKind::For:
        fail(s.loc, "loop survived into the data-path function (the controller owns loops)");
        break;
      case StmtKind::Return:
        // Trailing return; lowering emits Ret at the end anyway.
        break;
      case StmtKind::CallStmt:
        lowerCall(static_cast<const CallExpr&>(*static_cast<const CallStmt&>(s).call));
        break;
    }
  }

  void emitJmp(int target, SourceLoc loc) {
    Instr j;
    j.op = Opcode::Jmp;
    j.loc = loc;
    emit(std::move(j));
    block().succs = {target};
  }

  int coerceReg(int reg, ScalarType to, SourceLoc loc) {
    if (out_.regTypes[static_cast<size_t>(reg)] == to) return reg;
    return emitOp(Opcode::Cast, to, {Operand::ofReg(reg)}, loc);
  }

};

} // namespace

bool lowerToMir(const Module& m, const std::string& fnName, FunctionIR& out, DiagEngine& diags) {
  faultpoint("mir.lower");
  const Function* fn = m.findFunction(fnName);
  if (!fn) {
    diags.error({}, fmt("no function named '%0' to lower", fnName));
    return false;
  }
  out = FunctionIR{};
  Lowerer l(m, *fn, out, diags);
  return l.run();
}

} // namespace roccc::mir
