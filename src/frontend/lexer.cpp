#include "frontend/lexer.hpp"

#include <cctype>
#include <stdexcept>
#include <unordered_map>

#include "support/strings.hpp"

namespace roccc::ast {

const char* tokKindName(TokKind k) {
  switch (k) {
    case TokKind::End: return "end of input";
    case TokKind::Identifier: return "identifier";
    case TokKind::IntLiteral: return "integer literal";
    case TokKind::KwVoid: return "'void'";
    case TokKind::KwConst: return "'const'";
    case TokKind::KwIf: return "'if'";
    case TokKind::KwElse: return "'else'";
    case TokKind::KwFor: return "'for'";
    case TokKind::KwReturn: return "'return'";
    case TokKind::KwInt: return "'int'";
    case TokKind::KwUnsigned: return "'unsigned'";
    case TokKind::KwSigned: return "'signed'";
    case TokKind::KwChar: return "'char'";
    case TokKind::KwShort: return "'short'";
    case TokKind::KwLong: return "'long'";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::LBrace: return "'{'";
    case TokKind::RBrace: return "'}'";
    case TokKind::LBracket: return "'['";
    case TokKind::RBracket: return "']'";
    case TokKind::Comma: return "','";
    case TokKind::Semicolon: return "';'";
    case TokKind::Star: return "'*'";
    case TokKind::Amp: return "'&'";
    case TokKind::Pipe: return "'|'";
    case TokKind::Caret: return "'^'";
    case TokKind::Tilde: return "'~'";
    case TokKind::Bang: return "'!'";
    case TokKind::Plus: return "'+'";
    case TokKind::Minus: return "'-'";
    case TokKind::Slash: return "'/'";
    case TokKind::Percent: return "'%'";
    case TokKind::Assign: return "'='";
    case TokKind::Lt: return "'<'";
    case TokKind::Gt: return "'>'";
    case TokKind::Le: return "'<='";
    case TokKind::Ge: return "'>='";
    case TokKind::EqEq: return "'=='";
    case TokKind::NotEq: return "'!='";
    case TokKind::Shl: return "'<<'";
    case TokKind::Shr: return "'>>'";
    case TokKind::AmpAmp: return "'&&'";
    case TokKind::PipePipe: return "'||'";
    case TokKind::PlusPlus: return "'++'";
    case TokKind::MinusMinus: return "'--'";
    case TokKind::PlusAssign: return "'+='";
    case TokKind::MinusAssign: return "'-='";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, TokKind>& keywordMap() {
  static const std::unordered_map<std::string, TokKind> kMap = {
      {"void", TokKind::KwVoid},   {"const", TokKind::KwConst}, {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},   {"for", TokKind::KwFor},     {"return", TokKind::KwReturn},
      {"int", TokKind::KwInt},     {"unsigned", TokKind::KwUnsigned},
      {"signed", TokKind::KwSigned}, {"char", TokKind::KwChar}, {"short", TokKind::KwShort},
      {"long", TokKind::KwLong},
  };
  return kMap;
}

class Cursor {
 public:
  Cursor(const std::string& src, DiagEngine& diags) : src_(src), diags_(diags) {}

  bool atEnd() const { return pos_ >= src_.size(); }
  char peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  SourceLoc loc() const { return {line_, col_}; }
  DiagEngine& diags() { return diags_; }

 private:
  const std::string& src_;
  DiagEngine& diags_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

void skipTrivia(Cursor& c) {
  for (;;) {
    while (!c.atEnd() && std::isspace(static_cast<unsigned char>(c.peek()))) c.advance();
    if (c.peek() == '/' && c.peek(1) == '/') {
      while (!c.atEnd() && c.peek() != '\n') c.advance();
      continue;
    }
    if (c.peek() == '/' && c.peek(1) == '*') {
      const SourceLoc start = c.loc();
      c.advance();
      c.advance();
      bool closed = false;
      while (!c.atEnd()) {
        if (c.peek() == '*' && c.peek(1) == '/') {
          c.advance();
          c.advance();
          closed = true;
          break;
        }
        c.advance();
      }
      if (!closed) c.diags().error(start, "unterminated block comment");
      continue;
    }
    return;
  }
}

Token lexNumber(Cursor& c) {
  Token t;
  t.kind = TokKind::IntLiteral;
  t.loc = c.loc();
  std::string digits;
  int base = 10;
  if (c.peek() == '0' && (c.peek(1) == 'x' || c.peek(1) == 'X')) {
    base = 16;
    c.advance();
    c.advance();
    while (std::isxdigit(static_cast<unsigned char>(c.peek()))) digits += c.advance();
    if (digits.empty()) c.diags().error(t.loc, "hex literal with no digits");
  } else {
    while (std::isdigit(static_cast<unsigned char>(c.peek()))) digits += c.advance();
  }
  // Suffixes u/U/l/L are accepted and ignored (type comes from context).
  while (c.peek() == 'u' || c.peek() == 'U' || c.peek() == 'l' || c.peek() == 'L') c.advance();
  t.text = digits;
  if (!digits.empty()) {
    try {
      t.intValue = static_cast<int64_t>(std::stoull(digits, nullptr, base));
    } catch (const std::out_of_range&) {
      c.diags().error(t.loc, fmt("integer literal '%0' does not fit in 64 bits", digits));
      t.intValue = 0;
    }
  }
  return t;
}

} // namespace

std::vector<Token> lex(const std::string& source, DiagEngine& diags) {
  Cursor c(source, diags);
  std::vector<Token> out;
  for (;;) {
    skipTrivia(c);
    Token t;
    t.loc = c.loc();
    if (c.atEnd()) {
      t.kind = TokKind::End;
      out.push_back(t);
      return out;
    }
    const char ch = c.peek();
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      std::string ident;
      while (std::isalnum(static_cast<unsigned char>(c.peek())) || c.peek() == '_') ident += c.advance();
      const auto it = keywordMap().find(ident);
      if (it != keywordMap().end()) {
        t.kind = it->second;
      } else {
        t.kind = TokKind::Identifier;
      }
      t.text = ident;
      out.push_back(t);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      out.push_back(lexNumber(c));
      continue;
    }
    if (ch == '\'') {
      // Character literal: value of the (possibly escaped) character.
      c.advance();
      char v = c.advance();
      if (v == '\\') {
        const char esc = c.advance();
        switch (esc) {
          case 'n': v = '\n'; break;
          case 't': v = '\t'; break;
          case '0': v = '\0'; break;
          case '\\': v = '\\'; break;
          case '\'': v = '\''; break;
          default:
            diags.error(t.loc, std::string("unknown escape '\\") + esc + "'");
            v = esc;
        }
      }
      if (c.peek() == '\'')
        c.advance();
      else
        diags.error(t.loc, "unterminated character literal");
      t.kind = TokKind::IntLiteral;
      t.intValue = static_cast<unsigned char>(v);
      out.push_back(t);
      continue;
    }
    c.advance();
    auto two = [&](char second, TokKind twoKind, TokKind oneKind) {
      if (c.peek() == second) {
        c.advance();
        t.kind = twoKind;
      } else {
        t.kind = oneKind;
      }
    };
    switch (ch) {
      case '(': t.kind = TokKind::LParen; break;
      case ')': t.kind = TokKind::RParen; break;
      case '{': t.kind = TokKind::LBrace; break;
      case '}': t.kind = TokKind::RBrace; break;
      case '[': t.kind = TokKind::LBracket; break;
      case ']': t.kind = TokKind::RBracket; break;
      case ',': t.kind = TokKind::Comma; break;
      case ';': t.kind = TokKind::Semicolon; break;
      case '*': t.kind = TokKind::Star; break;
      case '%': t.kind = TokKind::Percent; break;
      case '~': t.kind = TokKind::Tilde; break;
      case '^': t.kind = TokKind::Caret; break;
      case '/': t.kind = TokKind::Slash; break;
      case '+':
        if (c.peek() == '+') {
          c.advance();
          t.kind = TokKind::PlusPlus;
        } else if (c.peek() == '=') {
          c.advance();
          t.kind = TokKind::PlusAssign;
        } else {
          t.kind = TokKind::Plus;
        }
        break;
      case '-':
        if (c.peek() == '-') {
          c.advance();
          t.kind = TokKind::MinusMinus;
        } else if (c.peek() == '=') {
          c.advance();
          t.kind = TokKind::MinusAssign;
        } else {
          t.kind = TokKind::Minus;
        }
        break;
      case '=': two('=', TokKind::EqEq, TokKind::Assign); break;
      case '!': two('=', TokKind::NotEq, TokKind::Bang); break;
      case '&': two('&', TokKind::AmpAmp, TokKind::Amp); break;
      case '|': two('|', TokKind::PipePipe, TokKind::Pipe); break;
      case '<':
        if (c.peek() == '<') {
          c.advance();
          t.kind = TokKind::Shl;
        } else {
          two('=', TokKind::Le, TokKind::Lt);
        }
        break;
      case '>':
        if (c.peek() == '>') {
          c.advance();
          t.kind = TokKind::Shr;
        } else {
          two('=', TokKind::Ge, TokKind::Gt);
        }
        break;
      default:
        diags.error(t.loc, std::string("unexpected character '") + ch + "'");
        continue;
    }
    out.push_back(t);
  }
}

} // namespace roccc::ast
