// Fixed-width two's-complement value arithmetic.
//
// Both the software golden model (src/interp) and the hardware simulator
// (src/rtl) compute on the same Value type so that "the soft nodes, by
// themselves, will have the same behavior on a CPU compared with the whole
// data path on a FPGA" (paper section 4.2.2) is checkable bit-for-bit.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

namespace roccc {

/// A scalar type in the ROCCC C subset: a signed or unsigned integer of
/// 1..64 bits. The compiler front end restricts user-visible types to at
/// most 32 bits (paper section 4.2.4); wider widths exist internally for
/// intermediate products during analysis.
struct ScalarType {
  int width = 32;       ///< Number of bits, 1..64.
  bool isSigned = true; ///< Two's-complement when true.

  friend bool operator==(const ScalarType&, const ScalarType&) = default;

  /// Canonical C 'int' (the promotion target of the subset).
  static ScalarType intTy() { return {32, true}; }
  static ScalarType uintTy() { return {32, false}; }
  static ScalarType boolTy() { return {1, false}; }
  static ScalarType make(int width, bool isSigned) { return {width, isSigned}; }

  /// Smallest/largest representable value.
  int64_t minValue() const;
  int64_t maxValue() const;

  /// Renders e.g. "int16" / "uint12".
  std::string str() const;
};

/// A value of a ScalarType. Bits are stored zero-extended in a uint64_t and
/// always masked to `type.width`; signed interpretation happens on read.
class Value {
 public:
  Value() = default;
  Value(ScalarType type, uint64_t rawBits) : type_(type), bits_(mask(rawBits, type.width)) {}

  /// Builds a value from a signed quantity, wrapping modulo 2^width
  /// (hardware truncation semantics — identical to C conversion to a
  /// narrower unsigned type, and implementation-defined-but-universal
  /// wrapping for signed).
  static Value fromInt(ScalarType type, int64_t v) { return Value(type, static_cast<uint64_t>(v)); }

  /// 32-bit signed literal convenience (C 'int').
  static Value ofInt(int64_t v) { return fromInt(ScalarType::intTy(), v); }
  static Value ofBool(bool b) { return Value(ScalarType::boolTy(), b ? 1 : 0); }

  ScalarType type() const { return type_; }
  int width() const { return type_.width; }
  bool isSigned() const { return type_.isSigned; }

  /// Raw bits, zero-extended to 64.
  uint64_t bits() const { return bits_; }

  /// Numeric value: sign-extends if the type is signed.
  int64_t toInt() const;
  /// Numeric value as unsigned (zero-extended regardless of signedness).
  uint64_t toUnsigned() const { return bits_; }
  bool toBool() const { return bits_ != 0; }

  /// Reinterprets / resizes to `to`: truncates or extends (sign-extend when
  /// the *source* is signed — C conversion semantics).
  Value convertTo(ScalarType to) const;

  /// Extracts bit `index` (0 = LSB) as a 1-bit unsigned value.
  Value bit(int index) const;
  /// Extracts bits [lo .. lo+width-1] as an unsigned value of that width.
  Value slice(int lo, int sliceWidth) const;

  std::string str() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.type_ == b.type_ && a.bits_ == b.bits_;
  }

  static uint64_t mask(uint64_t raw, int width) {
    assert(width >= 1 && width <= 64);
    return width == 64 ? raw : raw & ((uint64_t{1} << width) - 1);
  }

 private:
  ScalarType type_{32, true};
  uint64_t bits_ = 0;
};

/// The arithmetic used everywhere: each operation takes operand values,
/// computes at the given result type, and wraps modulo 2^width. Division by
/// zero yields all-ones quotient and the dividend as remainder (the
/// convention of hardware restoring dividers; the interpreter and the RTL
/// simulator agree on it so cosimulation stays bit-exact).
namespace ops {

Value add(const Value& a, const Value& b, ScalarType rt);
Value sub(const Value& a, const Value& b, ScalarType rt);
Value mul(const Value& a, const Value& b, ScalarType rt);
Value divide(const Value& a, const Value& b, ScalarType rt);
Value rem(const Value& a, const Value& b, ScalarType rt);
Value neg(const Value& a, ScalarType rt);

Value bitAnd(const Value& a, const Value& b, ScalarType rt);
Value bitOr(const Value& a, const Value& b, ScalarType rt);
Value bitXor(const Value& a, const Value& b, ScalarType rt);
Value bitNot(const Value& a, ScalarType rt);

/// Shift amounts are taken modulo nothing: shifting by >= width yields 0
/// (or the sign fill for arithmetic right shift), matching a barrel shifter.
Value shl(const Value& a, const Value& sh, ScalarType rt);
Value shr(const Value& a, const Value& sh, ScalarType rt); // arithmetic iff a is signed

/// Comparisons look at the operands' *common* signedness: if either side is
/// unsigned-32, the compare is unsigned (C usual arithmetic conversions);
/// result is 1-bit.
Value cmpEq(const Value& a, const Value& b);
Value cmpNe(const Value& a, const Value& b);
Value cmpLt(const Value& a, const Value& b);
Value cmpLe(const Value& a, const Value& b);
Value cmpGt(const Value& a, const Value& b);
Value cmpGe(const Value& a, const Value& b);

/// 2:1 multiplexer: sel != 0 picks `a` (the "true" input), else `b`.
Value mux(const Value& sel, const Value& a, const Value& b, ScalarType rt);

} // namespace ops

/// Number of bits needed to represent `v` as an unsigned quantity (>=1).
int bitsForUnsigned(uint64_t v);
/// Number of bits needed to represent `v` in two's complement (>=1).
int bitsForSigned(int64_t v);

} // namespace roccc
