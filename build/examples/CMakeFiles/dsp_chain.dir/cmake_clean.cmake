file(REMOVE_RECURSE
  "CMakeFiles/dsp_chain.dir/dsp_chain.cpp.o"
  "CMakeFiles/dsp_chain.dir/dsp_chain.cpp.o.d"
  "dsp_chain"
  "dsp_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
