// KernelFuzzer — random streaming-kernel generator in the ROCCC C subset,
// shared by the end-to-end fuzz suite (fuzz_test.cpp) and the thread-pool
// stress suite (driver_stress_test.cpp). Generation is a pure function of
// the seed: the same seed always yields the same source and inputs, which
// is what lets the stress tests compare parallel batches against serial
// reference compiles byte-for-byte.
#pragma once

#include <random>
#include <string>

#include "interp/interp.hpp"
#include "support/strings.hpp"
#include "support/value.hpp"

namespace roccc {

class KernelFuzzer {
 public:
  explicit KernelFuzzer(uint64_t seed) : rng_(seed) {}

  /// Generates a kernel plus matching random inputs.
  struct Generated {
    std::string source;
    interp::KernelIO inputs;
  };

  Generated generate() {
    Generated g;
    const int taps = 1 + pick(4);               // window 1..5
    const int stride = 1 << pick(2);            // 1 or 2
    const int iters = 8 + pick(8);              // 8..15
    const int inLen = stride * (iters - 1) + taps;
    const int elemBits = 4 + pick(13);          // 4..16
    const bool elemSigned = pick(2) == 0;
    const ScalarType elemTy = ScalarType::make(elemBits, elemSigned);
    useFeedback_ = pick(3) == 0;
    useBranch_ = pick(2) == 0;
    useInduction_ = pick(4) == 0;
    // Sometimes route a window element through a pure unary callee — these
    // are the calls the compiler may either inline or turn into lookup
    // tables (convertCallsToLuts), so both paths get fuzz coverage. The
    // callee input width stays within the default 10-bit LUT index limit.
    useCallee_ = elemBits <= 8 && pick(2) == 0;

    std::string body = expr(3, taps, stride);
    if (useCallee_) body = fmt("(%0 + u)", body);
    std::string stmts;
    if (useCallee_) {
      stmts += fmt("      hfn(%0, u);\n", windowRef(taps, stride));
    }
    if (useBranch_) {
      const std::string cond = fmt("%0 < %1", windowRef(taps, stride), literal());
      stmts += fmt("      if (%0) { t = %1; } else { t = %2; }\n", cond, body, expr(2, taps, stride));
    } else {
      stmts += fmt("      t = %0;\n", body);
    }
    if (useFeedback_) {
      stmts += "      s = s + t;\n";
      stmts += "      C[i] = s;\n";
    } else {
      stmts += "      C[i] = t;\n";
    }

    const std::string helper =
        useCallee_ ? fmt("void hfn(%0 x, int32* r) { *r = ((x * 11) ^ (x >> 2)) - 29; }\n",
                         elemTy.str())
                   : std::string();
    g.source = fmt(R"(
%4%5void k(const %0 A[%1], int32 C[%2]) {
  int i;
  int32 t;
%6  for (i = 0; i < %2; i++) {
%3  }
}
)", elemTy.str(), inLen, iters, stmts, helper, useFeedback_ ? "int32 s = 0;\n" : "",
        useCallee_ ? "  int32 u;\n" : "");

    std::uniform_int_distribution<int64_t> dist(elemTy.minValue(), elemTy.maxValue());
    for (int i = 0; i < inLen; ++i) g.inputs.arrays["A"].push_back(dist(rng_));
    return g;
  }

 private:
  std::mt19937_64 rng_;
  bool useFeedback_ = false;
  bool useBranch_ = false;
  bool useInduction_ = false;
  bool useCallee_ = false;

  int pick(int n) { return static_cast<int>(rng_() % static_cast<uint64_t>(n)); }

  std::string literal() { return std::to_string(pick(64) - 32); }

  std::string windowRef(int taps, int stride) {
    const int off = pick(taps);
    if (stride == 1 && off == 0) return "A[i]";
    if (stride == 1) return fmt("A[i+%0]", off);
    return off == 0 ? fmt("A[%0*i]", stride) : fmt("A[%0*i+%1]", stride, off);
  }

  std::string expr(int depth, int taps, int stride) {
    if (depth == 0 || pick(3) == 0) {
      switch (pick(useInduction_ ? 3 : 2)) {
        case 0: return windowRef(taps, stride);
        case 1: return literal();
        default: return "i";
      }
    }
    const char* ops[] = {"+", "-", "*", "&", "|", "^", ">>", "<<"};
    const std::string op = ops[pick(8)];
    const std::string lhs = expr(depth - 1, taps, stride);
    // Shift amounts must stay small and non-negative.
    const std::string rhs = (op == ">>" || op == "<<") ? std::to_string(pick(5))
                                                       : expr(depth - 1, taps, stride);
    return fmt("(%0 %1 %2)", lhs, op, rhs);
  }
};

} // namespace roccc
