// Per-job resource governance: the CompileBudget.
//
// One pathological job (an --unroll explosion, a deeply nested expression, a
// pass that never reaches its fixpoint) must not take down a batch — the
// serving layer's contract is "a job can fail, a batch cannot crash". A
// CompileBudget carries the four per-job limits:
//
//   - a wall-clock deadline (timeoutMs),
//   - an IR-node budget across all live IRs (maxIrNodes),
//   - a cap on the product of all unroll expansions (maxUnrollProduct),
//   - a recursion/nesting-depth cap (maxDepth).
//
// Enforcement is cooperative: the PassManager calls checkpointPass() at every
// pass boundary, and the known hot loops (HLIR unroll expansion, the MIR
// optimize fixpoint, RTL netlist elaboration, the recursive-descent parser)
// call the thread-local free functions below. A violated limit throws the
// typed BudgetExceeded, which the pipeline converts into a structured
// CompileResult outcome (Timeout / ResourceExceeded) at the pass edge.
//
// Cost when disarmed: every limit defaults to "unlimited" except the depth
// cap, and each check is a branch on a cached flag — no clock reads, no IR
// walks. Armed-but-untriggered governance costs <1% compile throughput
// (bench_table1's overhead column; EXPERIMENTS.md).
//
// Layer code reaches the current job's budget through a thread_local
// installed by Compiler::compileSource (each batch job runs wholly on one
// worker thread), so no layer API had to grow a budget parameter.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace roccc {

/// Which limit a BudgetExceeded reports.
enum class BudgetKind { Deadline, IrNodes, UnrollProduct, Depth };
const char* budgetKindName(BudgetKind kind);

/// Per-job limits, threaded through CompileOptions. 0 = unlimited for every
/// field except maxDepth, whose default guards the recursive-descent parser
/// (and every recursive AST walk downstream of it) against stack overflow.
struct BudgetLimits {
  /// Wall-clock deadline for the whole compile, in milliseconds. 0 = none.
  /// Negative = already expired (deterministic Timeout, used by tests).
  int64_t timeoutMs = 0;
  /// Max total IR nodes (AST stmts+exprs, MIR instrs, data-path ops/values,
  /// RTL cells+nets) measured at every pass boundary. 0 = unlimited.
  int64_t maxIrNodes = 0;
  /// Max product of all unroll expansions performed by the HLIR transforms
  /// (full unrolls multiply by the trip count, partial unrolls by the
  /// factor). 0 = unlimited.
  int64_t maxUnrollProduct = 0;
  /// Max parser recursion / statement nesting depth. 0 = unlimited.
  int maxDepth = 256;

  friend bool operator==(const BudgetLimits&, const BudgetLimits&) = default;
};

/// Typed escape raised by a checkpoint. Caught at the PassManager pass edge
/// (never crosses the CompileService API) and classified as Timeout
/// (Deadline) or ResourceExceeded (everything else).
class BudgetExceeded : public std::runtime_error {
 public:
  BudgetExceeded(BudgetKind kind, const std::string& where, int64_t observed, int64_t limit);

  BudgetKind kind() const { return kind_; }
  const std::string& where() const { return where_; }
  int64_t observed() const { return observed_; }
  int64_t limit() const { return limit_; }

 private:
  BudgetKind kind_;
  std::string where_;
  int64_t observed_;
  int64_t limit_;
};

/// One job's live budget. Constructed per compile from the options; the
/// deadline clock starts at construction.
class CompileBudget {
 public:
  explicit CompileBudget(const BudgetLimits& limits);

  const BudgetLimits& limits() const { return limits_; }

  /// Deadline-only check for hot loops; throws BudgetExceeded{Deadline}.
  void checkDeadline(const char* where);
  /// Deadline + IR-size check at a pass boundary. `irNodes` is only
  /// consulted when maxIrNodes is set (callers gate the measurement on
  /// wantsIrNodeCount() to keep the disarmed path free).
  void checkpointPass(const char* passName, int64_t irNodes);
  /// Multiplies the accumulated unroll-expansion product by `factor`
  /// (saturating) and throws BudgetExceeded{UnrollProduct} past the cap.
  void chargeUnroll(int64_t factor, const char* where);
  /// Throws BudgetExceeded{Depth} when `depth` exceeds the nesting cap.
  void checkDepth(int64_t depth, const char* where);

  /// True when checkpointPass wants a real IR-node count (maxIrNodes set).
  bool wantsIrNodeCount() const { return limits_.maxIrNodes > 0; }
  int64_t unrollProduct() const { return unrollProduct_; }

 private:
  BudgetLimits limits_;
  bool hasDeadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  int64_t unrollProduct_ = 1;
};

/// RAII installation of a job's budget into this thread's slot. The free
/// functions below act on the installed budget and are no-ops without one,
/// so layer code can checkpoint unconditionally.
class BudgetScope {
 public:
  explicit BudgetScope(CompileBudget* budget);
  ~BudgetScope();
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

 private:
  CompileBudget* prev_;
};

/// The budget installed on this thread, or nullptr.
CompileBudget* currentBudget();
/// Cooperative deadline checkpoint for hot loops (no-op when no budget).
void budgetCheckpoint(const char* where);
/// Unroll-expansion charge (no-op when no budget).
void budgetChargeUnroll(int64_t factor, const char* where);
/// Recursion/nesting-depth check (no-op when no budget).
void budgetCheckDepth(int64_t depth, const char* where);

} // namespace roccc
