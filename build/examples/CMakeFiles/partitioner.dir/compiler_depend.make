# Empty compiler generated dependencies file for partitioner.
# This may be replaced when dependencies are built.
