// Tests for the thread-pooled batch compilation driver: ThreadPool
// semantics, CompileService job/result contracts, and the determinism
// guarantee — a batch compiled on 1 worker and on 8 workers must produce
// byte-identical VHDL/Verilog, identical PassStatistics change counters,
// and identical per-job diagnostics sequences. Wall-clock fields
// (PassStatistics::wallMs, BatchResult::wallMs) are the only sanctioned
// difference between runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "../bench/kernels.hpp"
#include "roccc/driver.hpp"
#include "support/threadpool.hpp"

namespace roccc {
namespace {

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workerCount(), 4u);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.workerCount(), 1u);
}

TEST(ThreadPool, BoundedQueueBackpressureStillCompletesEverything) {
  // 2 workers, queue bound 2: submits beyond the bound block the producer
  // until a worker frees a slot; every job must still run exactly once.
  ThreadPool pool(2, 2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ran.fetch_add(1);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, WaitIdleDrainsTheQueue) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ran.fetch_add(1);
    });
  }
  pool.waitIdle();
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, JobExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives the throwing job.
  auto ok = pool.submit([] {});
  ok.get();
}

TEST(ThreadPool, EveryWorkerSurvivesRepeatedThrowingJobs) {
  // 200 jobs, half of them throwing, on 4 workers: each worker is
  // statistically guaranteed to hit many exceptions, and all 100 clean jobs
  // must still complete — no worker dies or wedges after a throw.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&ran, i] {
      if (i % 2 == 0) throw std::runtime_error("planned failure");
      ran.fetch_add(1);
    }));
  }
  int threw = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const std::runtime_error&) {
      ++threw;
    }
  }
  EXPECT_EQ(threw, 100);
  EXPECT_EQ(ran.load(), 100);
  // The pool is still fully operational afterwards.
  std::atomic<int> after{0};
  std::vector<std::future<void>> more;
  for (int i = 0; i < 20; ++i) more.push_back(pool.submit([&after] { after.fetch_add(1); }));
  for (auto& f : more) f.get();
  EXPECT_EQ(after.load(), 20);
}

TEST(ThreadPool, DestructorJoinsAfterPendingJobs) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    pool.waitIdle();
  }
  EXPECT_EQ(ran.load(), 10);
}

// --- CompileService ---------------------------------------------------------

std::vector<CompileJob> table1Jobs() {
  std::vector<CompileJob> jobs;
  for (const auto& k : bench::kTable1Kernels) {
    CompileOptions o;
    if (k.targetStageDelayNs > 0) o.dpOptions.targetStageDelayNs = k.targetStageDelayNs;
    jobs.push_back({k.name, k.source, o});
  }
  return jobs;
}

TEST(CompileService, EmptyBatch) {
  const CompileService service(4);
  const BatchResult batch = service.compileBatch({});
  EXPECT_TRUE(batch.results.empty());
  EXPECT_TRUE(batch.allOk());
  EXPECT_EQ(batch.succeeded(), 0);
}

TEST(CompileService, ZeroWorkersPicksHardwareConcurrency) {
  const CompileService service(0);
  EXPECT_GE(service.workers(), 1);
}

TEST(CompileService, ResultsArriveInJobOrder) {
  const auto jobs = table1Jobs();
  const CompileService service(8);
  const BatchResult batch = service.compileBatch(jobs);
  ASSERT_EQ(batch.results.size(), jobs.size());
  EXPECT_TRUE(batch.allOk());
  EXPECT_EQ(batch.workers, 8);
  // Slot i holds job i's kernel, regardless of which worker finished first.
  // The job name is the kernel name except for the mul_acc variants, whose
  // C function is 'mul_acc' in both styles.
  for (size_t i = 0; i < jobs.size(); ++i) {
    std::string expect = jobs[i].name;
    if (expect == "mul_acc_predicated") expect = "mul_acc";
    if (expect == "cos") expect = "cos_kernel";
    EXPECT_EQ(batch.results[i].kernel.kernelName, expect) << "slot " << i;
  }
}

TEST(CompileService, FailingJobIsIsolatedToItsSlot) {
  std::vector<CompileJob> jobs = table1Jobs();
  CompileJob broken;
  broken.name = "broken";
  broken.source = "void k(const int8 A[8], int8 C[4]) { this is not C ; }";
  jobs.insert(jobs.begin() + 3, broken);

  const CompileService service(8);
  const BatchResult batch = service.compileBatch(jobs);
  ASSERT_EQ(batch.results.size(), jobs.size());
  EXPECT_FALSE(batch.allOk());
  EXPECT_EQ(batch.succeeded(), static_cast<int>(jobs.size()) - 1);
  EXPECT_FALSE(batch.results[3].ok);
  EXPECT_TRUE(batch.results[3].diags.hasErrors());
  // Neighbours are untouched: their own DiagEngine carries no errors.
  for (size_t i = 0; i < batch.results.size(); ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(batch.results[i].ok) << "slot " << i;
    EXPECT_FALSE(batch.results[i].diags.hasErrors()) << "slot " << i;
  }
}

// --- determinism guarantee --------------------------------------------------

/// Everything in a PassStatistics record except wall time (and snapshots,
/// which the batch driver never requests) must be run-invariant.
void expectSamePassLog(const std::vector<PassStatistics>& a, const std::vector<PassStatistics>& b,
                       const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p].name, b[p].name) << label << " pass " << p;
    EXPECT_EQ(a[p].layer, b[p].layer) << label << " pass " << p;
    EXPECT_EQ(a[p].ran, b[p].ran) << label << " pass " << p;
    EXPECT_EQ(a[p].counters, b[p].counters) << label << " pass " << a[p].name;
  }
}

void expectSameDiagnostics(const DiagEngine& a, const DiagEngine& b, const std::string& label) {
  ASSERT_EQ(a.all().size(), b.all().size()) << label;
  for (size_t d = 0; d < a.all().size(); ++d) {
    EXPECT_EQ(a.all()[d].severity, b.all()[d].severity) << label << " diag " << d;
    EXPECT_EQ(a.all()[d].loc, b.all()[d].loc) << label << " diag " << d;
    EXPECT_EQ(a.all()[d].message, b.all()[d].message) << label << " diag " << d;
  }
}

TEST(CompileServiceDeterminism, OneWorkerAndEightWorkersAreByteIdentical) {
  std::vector<CompileJob> jobs = table1Jobs();
  // A job that emits a warning: diagnostics *ordering within a job* is part
  // of the guarantee, so at least one job must carry more than zero diags.
  CompileJob warning;
  warning.name = "warns";
  warning.source = "void k(const int8 A[12], int16 C[8], int16* unused) {\n"
                   "  int i;\n"
                   "  for (i = 0; i < 8; i++) { C[i] = A[i] + A[i+4]; }\n"
                   "}\n";
  jobs.push_back(warning);
  // And a failing job: error diagnostics must be identical too.
  CompileJob broken;
  broken.name = "broken";
  broken.source = "void k(const int8 A[8], int8 C[4]) { }";
  jobs.push_back(broken);

  const BatchResult serial = CompileService(1).compileBatch(jobs);
  const BatchResult parallel = CompileService(8).compileBatch(jobs);
  ASSERT_EQ(serial.results.size(), parallel.results.size());

  bool sawWarning = false;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const CompileResult& s = serial.results[i];
    const CompileResult& p = parallel.results[i];
    EXPECT_EQ(s.ok, p.ok) << jobs[i].name;
    EXPECT_EQ(s.vhdl, p.vhdl) << jobs[i].name;          // byte-identical VHDL
    EXPECT_EQ(s.verilog, p.verilog) << jobs[i].name;    // byte-identical Verilog
    EXPECT_EQ(s.transformedSource, p.transformedSource) << jobs[i].name;
    expectSamePassLog(s.passLog, p.passLog, jobs[i].name);
    expectSameDiagnostics(s.diags, p.diags, jobs[i].name);
    for (const auto& d : s.diags.all()) sawWarning |= d.severity == Severity::Warning;
  }
  EXPECT_TRUE(sawWarning) << "the 'warns' job was supposed to exercise diag ordering";
  EXPECT_FALSE(serial.results.back().ok);
}

TEST(CompileServiceDeterminism, RepeatedParallelBatchesAgreeWithEachOther) {
  const auto jobs = table1Jobs();
  const CompileService service(8);
  const BatchResult first = service.compileBatch(jobs);
  ASSERT_TRUE(first.allOk());
  for (int round = 0; round < 3; ++round) {
    const BatchResult again = service.compileBatch(jobs);
    ASSERT_TRUE(again.allOk());
    for (size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_EQ(first.results[i].vhdl, again.results[i].vhdl)
          << jobs[i].name << " round " << round;
    }
  }
}

TEST(CompileServiceDeterminism, ConcurrentCompilesOfTheSameSourceAreReentrant) {
  // 16 copies of the same job racing on 8 workers: any hidden global in
  // the pipeline (string interner, name counter, shared cache) would make
  // some slot diverge. TSan (the build-tsan preset) checks the memory
  // model side of the same property.
  const CompileJob dctJob{"dct", bench::kDct, {}};
  std::vector<CompileJob> jobs(16, dctJob);
  const BatchResult batch = CompileService(8).compileBatch(jobs);
  ASSERT_TRUE(batch.allOk());
  for (size_t i = 1; i < jobs.size(); ++i) {
    ASSERT_EQ(batch.results[0].vhdl, batch.results[i].vhdl) << "slot " << i;
    expectSamePassLog(batch.results[0].passLog, batch.results[i].passLog,
                      "slot " + std::to_string(i));
  }
}

} // namespace
} // namespace roccc
