// Software execution of the extracted streaming model (Fig 2): iterates the
// loop space, gathers each input window, runs the data-path function with
// the interpreter, threads feedback registers, and scatters output windows.
//
// This is the semantic reference the RTL implementation must match; tests
// compare it both against the whole-kernel interpreter (validating
// extraction) and against the cycle-accurate hardware simulation
// (validating the back end).
#pragma once

#include "hlir/kernel.hpp"
#include "interp/interp.hpp"

namespace roccc::hlir {

/// Runs the streaming execution model in software. `io` binds the original
/// kernel's input arrays and scalar inputs by name. The result holds output
/// arrays, exported scalars, and final feedback values — the same shape
/// interp::runKernel produces for the original kernel function.
interp::KernelIO simulateStreams(const KernelInfo& k, const interp::KernelIO& io);

} // namespace roccc::hlir
