// Data-path generation (paper sections 4.2.2 - 4.2.4).
//
// Takes the SSA-form MIR of the data-path function and produces the fully
// pipelined data-path graph:
//  - one "soft node" per CFG basic block ("the compiler first builds data
//    path for each non-null node in the CFG"),
//  - a MUX hard node per alternative-branch join ("a new mux node between
//    alternative branch nodes and their common successor", Fig 6 node 7),
//  - a PIPE hard node copying live variables past the branch arms (Fig 6
//    node 6),
//  - pipeline latch placement driven by per-instruction delay estimation
//    (section 4.2.3), with the SNX feedback register closing the LPR loop
//    inside a single stage so the pipeline sustains one iteration per clock,
//  - bit-width inference for every internal signal from port sizes and
//    opcodes (sections 4.2.4, 5).
#pragma once

#include <string>
#include <vector>

#include "mir/ir.hpp"
#include "support/diag.hpp"
#include "support/range.hpp"
#include "synth/timing.hpp"

namespace roccc::dp {

enum class NodeKind { Soft, Mux, Pipe };

/// A value (wire bundle) in the data path. Every op result and every input
/// port is a value; SSA guarantees single definition.
struct DpValue {
  int id = -1;
  ScalarType declared;   ///< semantic type (C-level)
  int width = 32;        ///< inferred hardware width (<= declared width)
  bool isSigned = true;  ///< inferred signedness
  ValueRange range;      ///< inferred value range
  std::string name;      ///< debug name
  int def = -1;          ///< defining op (-1: input port or constant-free)
  int inputPort = -1;    ///< >= 0 when this value is an input port
};

/// An operation placed in the data path.
struct DpOp {
  mir::Opcode op = mir::Opcode::Mov;
  int result = -1;            ///< value id (-1 for Out/Snx)
  std::vector<int> operands;  ///< value ids
  int64_t imm = 0;
  int aux0 = 0, aux1 = 0;
  std::string symbol;
  int node = -1;  ///< owning DpNode
  int stage = 0;  ///< pipeline stage (0-based)
  double pathDelayNs = 0; ///< accumulated combinational delay within stage
};

struct DpNode {
  int id = -1;
  NodeKind kind = NodeKind::Soft;
  int cfgBlock = -1; ///< originating MIR block (-1 for hard nodes)
  std::vector<int> ops;
  std::string label;
};

struct DataPath {
  std::string name;
  std::vector<DpNode> nodes;
  std::vector<DpOp> ops;
  std::vector<DpValue> values;

  struct Port {
    std::string name;
    ScalarType type;
    int value = -1; ///< input: the port's value; output: the driven value
  };
  std::vector<Port> inputs;
  std::vector<Port> outputs;
  /// Stage at which each output is produced (outputs are registered at the
  /// end of that stage).
  std::vector<int> outputStage;

  struct Feedback {
    std::string name;
    ScalarType type;
    int64_t initial = 0;
    int snxValue = -1; ///< value stored to the register each iteration
    int lprValue = -1; ///< value read from the register (one per name)
    int stage = 0;     ///< feedback loop stage
  };
  std::vector<Feedback> feedbacks;
  std::vector<mir::FunctionIR::Table> tables;

  int stageCount = 1;

  // --- statistics (drive reports and the Table 1 area discussion) ---
  int softNodeCount = 0;
  int hardNodeCount = 0; ///< mux + pipe nodes
  int muxOpCount = 0;
  /// Register bits inserted to keep definitions and references adjoining
  /// across stages ("extra register copying instructions", section 4.2.2) —
  /// a value defined in stage s and last used in stage t holds t-s register
  /// copies of its width.
  int64_t balanceRegisterBits = 0;
  /// Total latched bits at stage boundaries (including balance registers).
  int64_t pipelineRegisterBits = 0;
  /// Width narrowing achieved by inference: sum over values of
  /// (declared width - inferred width).
  int64_t narrowedBits = 0;

  std::string dump() const;
  /// Graphviz-style structural dump used by the Fig 6 bench.
  std::string dumpStructure() const;
};

struct BuildOptions {
  /// Target combinational delay per pipeline stage. Latches are placed so
  /// no stage exceeds it (except a feedback loop that cannot be split).
  double targetStageDelayNs = 4.0;
  bool pipeline = true;        ///< place latches (off: single stage)
  bool inferBitWidths = true;  ///< narrow internal signals
  /// How widths are inferred when inferBitWidths is on:
  ///  - PortOpcode: the paper's rule (section 5, "we derive bit width only
  ///    based on port size and opcodes") — forward structural propagation
  ///    (add -> max+1, mul -> sum, ...), no value information.
  ///  - RangeAnalysis: interval analysis over value ranges — the "more
  ///    aggressive bit narrowing" the paper anticipates. Default, and what
  ///    the rest of this library was validated with.
  enum class WidthMode { PortOpcode, RangeAnalysis } widthMode = WidthMode::RangeAnalysis;
  /// 'LUT' multiplier style decomposes constant multiplies into shift-adds
  /// (the Table 1 FIR/DCT setting); 'Mult18' keeps hardware multipliers.
  enum class MultStyle { Lut, Mult18 } multStyle = MultStyle::Lut;
  /// Expand Div/Rem into a restoring-divider array of sub/mux rows (one row
  /// per quotient bit). The generic latch placement then pipelines the
  /// array — this is how the compiler-generated udiv reaches a higher clock
  /// rate than the hand IP at ~3x the area (Table 1). When false, division
  /// remains a single (slow) combinational cell.
  bool expandDividers = true;
};

/// The synth::TimingModel primitive implementing a mir opcode at the given
/// multiplier style. False for wiring-only / control opcodes (zero delay).
bool primitiveForOpcode(mir::Opcode op, BuildOptions::MultStyle style, synth::Primitive& out);

/// Per-op combinational delay estimate (ns) used for latch placement,
/// looked up from the given timing model. Exposed for tests and the
/// synthesis model. Shl/Shr with width 0 signal a constant shift (free).
double opDelayNs(const synth::TimingModel& model, mir::Opcode op, int width,
                 BuildOptions::MultStyle style);
/// Same, against the built-in Virtex-II-class table.
double opDelayNs(mir::Opcode op, int width, BuildOptions::MultStyle style);

/// Placed delay of one op (ns): operand-aware width selection (comparisons
/// span their operands, constant shift amounts are free wiring) plus the
/// model's per-hop routing margin. The unit the stage budget is spent on.
double timedOpDelayNs(const DataPath& d, const DpOp& o, const synth::TimingModel& model,
                      BuildOptions::MultStyle style);

/// Topological order of d.ops over value dependencies. Throws
/// InternalCompilerError if the op graph has a combinational cycle.
std::vector<int> topoOrderOps(const DataPath& d);

/// Feedback-cone membership: for each op, the index of the feedback register
/// whose LPR -> SNX cone it belongs to, or -1. All ops of one cone must
/// share a pipeline stage (the loop closes through one register, Fig 7).
std::vector<int> feedbackConeOf(const DataPath& d);

/// Greedy ASAP latch placement: walks ops in topological order accumulating
/// within-stage delay from `delay` (indexed by op), opening a new stage when
/// the budget would be exceeded, pinning each feedback cone to one stage.
/// Rewrites op stages/pathDelayNs, stageCount, feedback stages and output
/// stages. The `retime` pass refines this seed placement.
void assignStagesGreedy(DataPath& d, const std::vector<double>& delay, double targetNs,
                        bool pipeline);

/// Recomputes the stage-crossing register statistics (pipelineRegisterBits,
/// balanceRegisterBits) from the current op stages.
void recomputePipelineStats(DataPath& d);

/// Builds the data path from SSA MIR. Requires: canonicalizeSideEffects ran
/// before buildSSA; verifySSA holds. Returns false on diagnosed failure.
bool buildDataPath(const mir::FunctionIR& fn, DataPath& out, DiagEngine& diags,
                   const BuildOptions& options = {});

} // namespace roccc::dp
