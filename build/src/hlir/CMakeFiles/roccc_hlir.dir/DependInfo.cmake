
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hlir/cosim.cpp" "src/hlir/CMakeFiles/roccc_hlir.dir/cosim.cpp.o" "gcc" "src/hlir/CMakeFiles/roccc_hlir.dir/cosim.cpp.o.d"
  "/root/repo/src/hlir/kernel.cpp" "src/hlir/CMakeFiles/roccc_hlir.dir/kernel.cpp.o" "gcc" "src/hlir/CMakeFiles/roccc_hlir.dir/kernel.cpp.o.d"
  "/root/repo/src/hlir/transforms.cpp" "src/hlir/CMakeFiles/roccc_hlir.dir/transforms.cpp.o" "gcc" "src/hlir/CMakeFiles/roccc_hlir.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/roccc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/roccc_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/roccc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
