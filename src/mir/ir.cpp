#include "mir/ir.hpp"

#include <algorithm>
#include <map>
#include <functional>
#include <sstream>

#include "support/strings.hpp"

namespace roccc::mir {

const char* opcodeName(Opcode op) {
  switch (op) {
    case Opcode::Ldc: return "ldc";
    case Opcode::Mov: return "mov";
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::Div: return "div";
    case Opcode::Rem: return "rem";
    case Opcode::Neg: return "neg";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Not: return "not";
    case Opcode::Shl: return "shl";
    case Opcode::Shr: return "shr";
    case Opcode::Seq: return "seq";
    case Opcode::Sne: return "sne";
    case Opcode::Slt: return "slt";
    case Opcode::Sle: return "sle";
    case Opcode::Sgt: return "sgt";
    case Opcode::Sge: return "sge";
    case Opcode::Mux: return "mux";
    case Opcode::Cast: return "cast";
    case Opcode::BitSel: return "bitsel";
    case Opcode::BitCat: return "bitcat";
    case Opcode::Lpr: return "lpr";
    case Opcode::Snx: return "snx";
    case Opcode::Lut: return "lut";
    case Opcode::In: return "in";
    case Opcode::Out: return "out";
    case Opcode::Br: return "br";
    case Opcode::Jmp: return "jmp";
    case Opcode::Ret: return "ret";
    case Opcode::Phi: return "phi";
  }
  return "?";
}

bool isTerminator(Opcode op) {
  return op == Opcode::Br || op == Opcode::Jmp || op == Opcode::Ret;
}

bool isPure(Opcode op) {
  switch (op) {
    case Opcode::Snx:
    case Opcode::Out:
    case Opcode::Br:
    case Opcode::Jmp:
    case Opcode::Ret:
      return false;
    default:
      return true;
  }
}

bool isCseEligible(Opcode op) {
  if (!isPure(op)) return false;
  return op != Opcode::Phi && op != Opcode::In;
}

int FunctionIR::newReg(ScalarType t, std::string debugName) {
  regTypes.push_back(t);
  regNames.push_back(std::move(debugName));
  return static_cast<int>(regTypes.size()) - 1;
}

int FunctionIR::addBlock() {
  Block b;
  b.id = static_cast<int>(blocks.size());
  blocks.push_back(std::move(b));
  return blocks.back().id;
}

const FunctionIR::Table* FunctionIR::findTable(const std::string& n) const {
  for (const auto& t : tables)
    if (t.name == n) return &t;
  return nullptr;
}

const FunctionIR::FeedbackReg* FunctionIR::findFeedback(const std::string& n) const {
  for (const auto& f : feedbacks)
    if (f.name == n) return &f;
  return nullptr;
}

std::optional<int> FunctionIR::inputPortIndex(const std::string& paramName) const {
  int idx = 0;
  for (const auto& p : params) {
    if (!p.isOutput) {
      if (p.name == paramName) return idx;
      ++idx;
    }
  }
  return std::nullopt;
}

namespace {

std::string operandStr(const FunctionIR& f, const Operand& o) {
  if (o.isImm()) return fmt("#%0", o.imm);
  if (o.isReg()) {
    const std::string& n = f.regNames[static_cast<size_t>(o.reg)];
    return n.empty() ? fmt("v%0", o.reg) : fmt("v%0(%1)", o.reg, n);
  }
  return "<none>";
}

} // namespace

std::string FunctionIR::dump() const {
  std::ostringstream os;
  os << "func " << name << "(";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i) os << ", ";
    os << (params[i].isOutput ? "out " : "") << params[i].type.str() << ' ' << params[i].name;
  }
  os << ")\n";
  for (const auto& fb : feedbacks) {
    os << "  feedback " << fb.type.str() << ' ' << fb.name << " = " << fb.initial << "\n";
  }
  for (const auto& t : tables) {
    os << "  table " << t.elemType.str() << ' ' << t.name << '[' << t.values.size() << "]\n";
  }
  for (const auto& b : blocks) {
    os << "bb" << b.id << ":";
    if (!b.preds.empty()) {
      os << "  ; preds:";
      for (int p : b.preds) os << " bb" << p;
    }
    os << "\n";
    for (const auto& in : b.instrs) {
      os << "  ";
      if (in.hasDst()) os << operandStr(*this, Operand::ofReg(in.dst)) << ":" << in.type.str() << " = ";
      os << opcodeName(in.op);
      if (in.op == Opcode::Ldc) os << ' ' << in.imm;
      if (!in.symbol.empty()) os << " @" << in.symbol;
      if (in.op == Opcode::In || in.op == Opcode::Out) os << " port" << in.aux0;
      if (in.op == Opcode::BitSel) os << " [" << in.aux0 << ':' << in.aux1 << ']';
      for (const auto& o : in.srcs) os << ' ' << operandStr(*this, o);
      if (in.op == Opcode::Br && b.succs.size() == 2) {
        os << " ? bb" << b.succs[0] << " : bb" << b.succs[1];
      } else if (in.op == Opcode::Jmp && !b.succs.empty()) {
        os << " bb" << b.succs[0];
      }
      os << '\n';
    }
  }
  return os.str();
}

namespace {

int expectedSrcCount(Opcode op) {
  switch (op) {
    case Opcode::Ldc:
    case Opcode::In:
    case Opcode::Lpr:
    case Opcode::Jmp:
    case Opcode::Ret:
      return 0;
    case Opcode::Mov:
    case Opcode::Neg:
    case Opcode::Not:
    case Opcode::Cast:
    case Opcode::BitSel:
    case Opcode::Lut:
    case Opcode::Snx:
    case Opcode::Out:
    case Opcode::Br:
      return 1;
    case Opcode::Mux:
      return 3;
    case Opcode::Phi:
      return -1; // matches predecessor count
    default:
      return 2;
  }
}

} // namespace

bool FunctionIR::verify(std::vector<std::string>& errors) const {
  const size_t before = errors.size();
  if (blocks.empty()) errors.push_back("function has no blocks");
  int retBlocks = 0;
  for (const auto& b : blocks) {
    if (b.instrs.empty() || !isTerminator(b.instrs.back().op)) {
      errors.push_back(fmt("bb%0 lacks a terminator", b.id));
      continue;
    }
    for (size_t i = 0; i < b.instrs.size(); ++i) {
      const Instr& in = b.instrs[i];
      if (isTerminator(in.op) && i + 1 != b.instrs.size()) {
        errors.push_back(fmt("bb%0: terminator %1 not at block end", b.id, opcodeName(in.op)));
      }
      const int want = expectedSrcCount(in.op);
      if (want >= 0 && static_cast<int>(in.srcs.size()) != want) {
        errors.push_back(fmt("bb%0[%1]: %2 expects %3 operands, has %4", b.id, i, opcodeName(in.op),
                             want, in.srcs.size()));
      }
      if (in.op == Opcode::Phi && in.srcs.size() != b.preds.size()) {
        errors.push_back(fmt("bb%0[%1]: phi has %2 inputs for %3 predecessors", b.id, i,
                             in.srcs.size(), b.preds.size()));
      }
      if (in.hasDst() && (in.dst >= regCount())) {
        errors.push_back(fmt("bb%0[%1]: dst v%2 out of range", b.id, i, in.dst));
      }
      for (const auto& o : in.srcs) {
        if (o.isReg() && o.reg >= regCount()) {
          errors.push_back(fmt("bb%0[%1]: src v%2 out of range", b.id, i, o.reg));
        }
      }
      if (in.op == Opcode::Lut && !findTable(in.symbol)) {
        errors.push_back(fmt("bb%0[%1]: unknown table '%2'", b.id, i, in.symbol));
      }
      if ((in.op == Opcode::Lpr || in.op == Opcode::Snx) && !findFeedback(in.symbol)) {
        errors.push_back(fmt("bb%0[%1]: unknown feedback '%2'", b.id, i, in.symbol));
      }
    }
    const Opcode term = b.instrs.back().op;
    const size_t wantSuccs = term == Opcode::Br ? 2 : (term == Opcode::Jmp ? 1 : 0);
    if (b.succs.size() != wantSuccs) {
      errors.push_back(fmt("bb%0: %1 successors for %2", b.id, b.succs.size(), opcodeName(term)));
    }
    if (term == Opcode::Ret) ++retBlocks;
    for (int s : b.succs) {
      if (s < 0 || s >= static_cast<int>(blocks.size())) {
        errors.push_back(fmt("bb%0: successor %1 out of range", b.id, s));
      } else if (std::find(blocks[static_cast<size_t>(s)].preds.begin(),
                           blocks[static_cast<size_t>(s)].preds.end(),
                           b.id) == blocks[static_cast<size_t>(s)].preds.end()) {
        errors.push_back(fmt("bb%0 -> bb%1 edge missing from pred list", b.id, s));
      }
    }
  }
  if (retBlocks != 1) errors.push_back(fmt("function has %0 ret blocks, expected 1", retBlocks));
  return errors.size() == before;
}

bool FunctionIR::verifySSA(std::vector<std::string>& errors) const {
  const size_t before = errors.size();
  verify(errors);
  std::vector<int> defCount(static_cast<size_t>(regCount()), 0);
  for (const auto& b : blocks) {
    bool seenNonPhi = false;
    for (const auto& in : b.instrs) {
      if (in.op == Opcode::Phi && seenNonPhi) {
        errors.push_back(fmt("bb%0: phi after non-phi instruction", b.id));
      }
      if (in.op != Opcode::Phi) seenNonPhi = true;
      if (in.hasDst()) ++defCount[static_cast<size_t>(in.dst)];
    }
  }
  for (size_t r = 0; r < defCount.size(); ++r) {
    if (defCount[r] > 1) errors.push_back(fmt("v%0 assigned %1 times (SSA violation)", r, defCount[r]));
  }
  return errors.size() == before;
}

// --- analyses -------------------------------------------------------------------

std::vector<int> reversePostOrder(const FunctionIR& f) {
  std::vector<int> order;
  std::vector<char> visited(f.blocks.size(), 0);
  std::function<void(int)> dfs = [&](int b) {
    visited[static_cast<size_t>(b)] = 1;
    for (int s : f.blocks[static_cast<size_t>(b)].succs) {
      if (!visited[static_cast<size_t>(s)]) dfs(s);
    }
    order.push_back(b);
  };
  dfs(0);
  std::reverse(order.begin(), order.end());
  return order;
}

bool DomTree::dominates(int a, int b) const {
  // Walk up from b; the entry is its own idom.
  while (b != a && idom[static_cast<size_t>(b)] != b) b = idom[static_cast<size_t>(b)];
  return a == b;
}

DomTree computeDominators(const FunctionIR& f) {
  const std::vector<int> rpo = reversePostOrder(f);
  std::vector<int> rpoIndex(f.blocks.size(), -1);
  for (size_t i = 0; i < rpo.size(); ++i) rpoIndex[static_cast<size_t>(rpo[i])] = static_cast<int>(i);

  DomTree dt;
  dt.idom.assign(f.blocks.size(), -1);
  dt.idom[0] = 0;

  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (rpoIndex[static_cast<size_t>(a)] > rpoIndex[static_cast<size_t>(b)]) a = dt.idom[static_cast<size_t>(a)];
      while (rpoIndex[static_cast<size_t>(b)] > rpoIndex[static_cast<size_t>(a)]) b = dt.idom[static_cast<size_t>(b)];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (int b : rpo) {
      if (b == 0) continue;
      int newIdom = -1;
      for (int p : f.blocks[static_cast<size_t>(b)].preds) {
        if (dt.idom[static_cast<size_t>(p)] == -1) continue;
        newIdom = newIdom == -1 ? p : intersect(newIdom, p);
      }
      if (newIdom != -1 && dt.idom[static_cast<size_t>(b)] != newIdom) {
        dt.idom[static_cast<size_t>(b)] = newIdom;
        changed = true;
      }
    }
  }

  // Dominance frontiers (Cytron et al.).
  dt.frontier.assign(f.blocks.size(), {});
  for (const auto& b : f.blocks) {
    if (b.preds.size() < 2) continue;
    for (int p : b.preds) {
      int runner = p;
      while (runner != dt.idom[static_cast<size_t>(b.id)] && runner != -1) {
        dt.frontier[static_cast<size_t>(runner)].insert(b.id);
        if (runner == dt.idom[static_cast<size_t>(runner)]) break; // entry
        runner = dt.idom[static_cast<size_t>(runner)];
      }
    }
  }
  return dt;
}

Liveness computeLiveness(const FunctionIR& f) {
  Liveness lv;
  lv.liveIn.assign(f.blocks.size(), {});
  lv.liveOut.assign(f.blocks.size(), {});

  // use/def per block. Phi uses count as live-out of the predecessor.
  std::vector<std::set<int>> use(f.blocks.size()), def(f.blocks.size());
  std::vector<std::set<int>> phiUseFromPred(f.blocks.size()); // regs used by succ phis, per pred
  for (const auto& b : f.blocks) {
    for (const auto& in : b.instrs) {
      if (in.op == Opcode::Phi) {
        for (size_t p = 0; p < in.srcs.size(); ++p) {
          if (in.srcs[p].isReg()) {
            phiUseFromPred[static_cast<size_t>(b.preds[p])].insert(in.srcs[p].reg);
          }
        }
      } else {
        for (const auto& o : in.srcs) {
          if (o.isReg() && !def[static_cast<size_t>(b.id)].count(o.reg)) {
            use[static_cast<size_t>(b.id)].insert(o.reg);
          }
        }
      }
      if (in.hasDst()) def[static_cast<size_t>(b.id)].insert(in.dst);
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t bi = f.blocks.size(); bi-- > 0;) {
      const Block& b = f.blocks[bi];
      std::set<int> out = phiUseFromPred[bi];
      for (int s : b.succs) {
        for (int r : lv.liveIn[static_cast<size_t>(s)]) out.insert(r);
      }
      std::set<int> in = use[bi];
      for (int r : out) {
        if (!def[bi].count(r)) in.insert(r);
      }
      // Phi dsts are defined at block entry; phi srcs excluded above.
      if (out != lv.liveOut[bi] || in != lv.liveIn[bi]) {
        lv.liveOut[bi] = std::move(out);
        lv.liveIn[bi] = std::move(in);
        changed = true;
      }
    }
  }
  return lv;
}

ReachingDefs computeReachingDefs(const FunctionIR& f) {
  ReachingDefs rd;
  rd.in.assign(f.blocks.size(), {});
  rd.out.assign(f.blocks.size(), {});

  // gen/kill per block.
  std::vector<std::set<ReachingDefs::Def>> gen(f.blocks.size());
  std::vector<std::set<int>> defRegs(f.blocks.size());
  for (const auto& b : f.blocks) {
    // Last def of each reg in the block generates.
    std::map<int, ReachingDefs::Def> last;
    for (size_t i = 0; i < b.instrs.size(); ++i) {
      if (b.instrs[i].hasDst()) {
        last[b.instrs[i].dst] = {b.id, static_cast<int>(i)};
        defRegs[static_cast<size_t>(b.id)].insert(b.instrs[i].dst);
      }
    }
    for (const auto& [r, d] : last) gen[static_cast<size_t>(b.id)].insert(d);
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& b : f.blocks) {
      std::set<ReachingDefs::Def> in;
      for (int p : b.preds) {
        for (const auto& d : rd.out[static_cast<size_t>(p)]) in.insert(d);
      }
      std::set<ReachingDefs::Def> out = gen[static_cast<size_t>(b.id)];
      for (const auto& d : in) {
        const Instr& di = f.blocks[static_cast<size_t>(d.first)].instrs[static_cast<size_t>(d.second)];
        if (!defRegs[static_cast<size_t>(b.id)].count(di.dst)) out.insert(d);
      }
      if (in != rd.in[static_cast<size_t>(b.id)] || out != rd.out[static_cast<size_t>(b.id)]) {
        rd.in[static_cast<size_t>(b.id)] = std::move(in);
        rd.out[static_cast<size_t>(b.id)] = std::move(out);
        changed = true;
      }
    }
  }
  return rd;
}

} // namespace roccc::mir
