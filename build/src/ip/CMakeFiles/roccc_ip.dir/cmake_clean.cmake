file(REMOVE_RECURSE
  "CMakeFiles/roccc_ip.dir/ip.cpp.o"
  "CMakeFiles/roccc_ip.dir/ip.cpp.o.d"
  "libroccc_ip.a"
  "libroccc_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roccc_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
