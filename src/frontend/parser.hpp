// Recursive-descent parser for the ROCCC C subset.
#pragma once

#include <memory>
#include <string>

#include "frontend/ast.hpp"
#include "support/diag.hpp"

namespace roccc::ast {

/// Parses `source` into a Module. On syntax errors, diagnostics are recorded
/// and a best-effort partial module is returned; callers must check
/// diags.hasErrors() before using the result.
Module parse(const std::string& source, DiagEngine& diags);

/// Parses a type name ("int16", "unsigned", "uint5", ...). Returns nullopt
/// if `name` is not a scalar type spelling. Width must be 1..64 (sema later
/// restricts user code to <= 32, matching the paper).
std::optional<ScalarType> parseTypeName(const std::string& name);

} // namespace roccc::ast
