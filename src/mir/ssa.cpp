#include "mir/ssa.hpp"

#include <cassert>
#include <functional>
#include <map>

#include "support/faultpoint.hpp"
#include "support/strings.hpp"

namespace roccc::mir {

void buildSSA(FunctionIR& f) {
  faultpoint("mir.ssa");
  const DomTree dt = computeDominators(f);

  // Definition sites per register.
  std::map<int, std::set<int>> defBlocks;
  for (const auto& b : f.blocks) {
    for (const auto& in : b.instrs) {
      if (in.hasDst()) defBlocks[in.dst].insert(b.id);
    }
  }

  // Registers needing phi treatment: more than one definition.
  std::vector<int> multiDef;
  for (const auto& [r, blocks] : defBlocks) {
    size_t defs = 0;
    for (int bid : blocks) {
      for (const auto& in : f.blocks[static_cast<size_t>(bid)].instrs) {
        if (in.dst == r) ++defs;
      }
    }
    if (defs > 1) multiDef.push_back(r);
  }

  // Give every multi-def register an explicit default definition in the
  // entry block so each path has a reaching definition (DCE removes the
  // dead ones).
  for (int r : multiDef) {
    if (defBlocks[r].count(0)) continue;
    Instr ld;
    ld.op = Opcode::Ldc;
    ld.dst = r;
    ld.type = f.regTypes[static_cast<size_t>(r)];
    ld.imm = 0;
    // Insert after leading In instructions, before anything else.
    auto& entry = f.entry().instrs;
    auto pos = entry.begin();
    while (pos != entry.end() && pos->op == Opcode::In) ++pos;
    entry.insert(pos, std::move(ld));
    defBlocks[r].insert(0);
  }

  // Phi insertion at iterated dominance frontiers.
  std::map<int, std::set<int>> phiBlocksForReg;
  for (int r : multiDef) {
    std::vector<int> work(defBlocks[r].begin(), defBlocks[r].end());
    std::set<int> hasPhi;
    while (!work.empty()) {
      const int b = work.back();
      work.pop_back();
      for (int df : dt.frontier[static_cast<size_t>(b)]) {
        if (hasPhi.insert(df).second) {
          phiBlocksForReg[r].insert(df);
          work.push_back(df);
        }
      }
    }
  }
  for (const auto& [r, blocks] : phiBlocksForReg) {
    for (int bid : blocks) {
      Block& b = f.blocks[static_cast<size_t>(bid)];
      Instr phi;
      phi.op = Opcode::Phi;
      phi.dst = r;
      phi.type = f.regTypes[static_cast<size_t>(r)];
      phi.srcs.assign(b.preds.size(), Operand::ofReg(r));
      b.instrs.insert(b.instrs.begin(), std::move(phi));
    }
  }

  // Renaming via dominator-tree DFS.
  std::vector<std::vector<int>> domChildren(f.blocks.size());
  for (size_t b = 1; b < f.blocks.size(); ++b) {
    if (dt.idom[b] >= 0) domChildren[static_cast<size_t>(dt.idom[b])].push_back(static_cast<int>(b));
  }

  const std::set<int> renamed(multiDef.begin(), multiDef.end());
  std::map<int, std::vector<int>> stacks; // original reg -> stack of versions
  std::map<int, int> versionCount;

  auto top = [&](int r) -> int {
    auto it = stacks.find(r);
    if (it == stacks.end() || it->second.empty()) return r; // single-def regs
    return it->second.back();
  };

  std::function<void(int)> rename = [&](int bid) {
    Block& b = f.blocks[static_cast<size_t>(bid)];
    std::vector<std::pair<int, size_t>> pushed; // (origReg, countToPop)

    for (auto& in : b.instrs) {
      if (in.op != Opcode::Phi) {
        for (auto& o : in.srcs) {
          if (o.isReg() && renamed.count(o.reg)) o.reg = top(o.reg);
        }
      }
      if (in.hasDst() && renamed.count(in.dst)) {
        const int orig = in.dst;
        const int v = versionCount[orig]++;
        const int newReg =
            v == 0 ? orig
                   : f.newReg(f.regTypes[static_cast<size_t>(orig)],
                              fmt("%0.%1", f.regNames[static_cast<size_t>(orig)], v));
        in.dst = newReg;
        stacks[orig].push_back(newReg);
        pushed.emplace_back(orig, 1);
      }
    }
    // Fill phi operands of successors.
    for (int s : b.succs) {
      Block& sb = f.blocks[static_cast<size_t>(s)];
      size_t predIdx = 0;
      for (; predIdx < sb.preds.size(); ++predIdx) {
        if (sb.preds[predIdx] == bid) break;
      }
      for (auto& in : sb.instrs) {
        if (in.op != Opcode::Phi) break;
        // Identify the phi's original register: every operand initially
        // holds it; after partial renaming the slot for this pred still
        // does unless already filled. Track via a parallel note: we use
        // the invariant that phi operands were initialized to the original
        // register id, which stacks key on.
        Operand& slot = in.srcs[predIdx];
        if (slot.isReg() && renamed.count(slot.reg)) slot.reg = top(slot.reg);
      }
    }
    for (int c : domChildren[static_cast<size_t>(bid)]) rename(c);
    for (auto& [orig, n] : pushed) {
      for (size_t i = 0; i < n; ++i) stacks[orig].pop_back();
    }
  };
  rename(0);
}

} // namespace roccc::mir
