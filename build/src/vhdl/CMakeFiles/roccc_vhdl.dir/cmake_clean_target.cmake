file(REMOVE_RECURSE
  "libroccc_vhdl.a"
)
