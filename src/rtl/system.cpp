#include "rtl/system.hpp"

#include <cassert>
#include <stdexcept>

#include "rtl/vcd.hpp"
#include "support/strings.hpp"

namespace roccc::rtl {

double SystemStats::steadyStateThroughput() const {
  if (enabledCycles == 0) return 0;
  return static_cast<double>(outputElems) / static_cast<double>(enabledCycles);
}

PortBinding PortBinding::resolve(const hlir::KernelInfo& kernel, const dp::DataPath& dp) {
  PortBinding b;
  for (const auto& port : dp.inputs) {
    InSource src;
    bool found = false;
    for (size_t s = 0; s < kernel.inputs.size() && !found; ++s) {
      const auto& st = kernel.inputs[s];
      for (size_t a = 0; a < st.scalarNames.size(); ++a) {
        if (st.scalarNames[a] == port.name) {
          src.kind = InSource::Kind::Window;
          src.stream = s;
          src.access = a;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      for (const auto& si : kernel.scalarInputs) {
        if (si.name != port.name) continue;
        if (si.isInduction) {
          src.kind = InSource::Kind::Induction;
          src.loop = si.loop;
        } else {
          src.kind = InSource::Kind::Scalar;
          src.scalarName = si.name;
        }
        found = true;
        break;
      }
    }
    if (!found) throw std::runtime_error(fmt("no source for data-path input '%0'", port.name));
    b.inputs.push_back(std::move(src));
  }
  for (const auto& port : dp.outputs) {
    OutSink sink;
    bool found = false;
    for (size_t s = 0; s < kernel.outputs.size() && !found; ++s) {
      const auto& st = kernel.outputs[s];
      for (size_t a = 0; a < st.scalarNames.size(); ++a) {
        if (st.scalarNames[a] == port.name) {
          sink.kind = OutSink::Kind::Window;
          sink.stream = s;
          sink.access = a;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      sink.kind = OutSink::Kind::Scalar;
      sink.scalarName = port.name;
    }
    b.outputs.push_back(std::move(sink));
  }
  return b;
}

StreamTrace traceStreamingModel(const hlir::KernelInfo& kernel, const dp::DataPath& dp,
                                const interp::KernelIO& io, const StreamStep& step) {
  const PortBinding binding = PortBinding::resolve(kernel, dp);
  StreamTrace trace;

  // Array storage by name; output arrays are zero-initialized (matching the
  // output BRAMs of the cycle-accurate system).
  std::map<std::string, std::vector<int64_t>> arrays;
  for (const auto& st : kernel.inputs) {
    const auto it = io.arrays.find(st.arrayName);
    if (it == io.arrays.end()) {
      throw std::runtime_error(fmt("input array '%0' not bound", st.arrayName));
    }
    arrays[st.arrayName] = it->second;
  }
  for (const auto& st : kernel.outputs) {
    int64_t n = 1;
    for (int64_t d : st.dims) n *= d;
    arrays[st.arrayName].assign(static_cast<size_t>(n), 0);
  }

  std::map<std::string, Value> feedback;
  for (const auto& fb : kernel.feedbacks) feedback[fb.name] = Value::fromInt(fb.type, fb.initial);

  std::map<std::string, int64_t> lastScalarOut;

  IterationWalker walker(kernel.loops);
  const int64_t total = walker.totalIterations();
  trace.inputs.reserve(static_cast<size_t>(total));
  trace.outputs.reserve(static_cast<size_t>(total));
  for (int64_t t = 0; t < total; ++t) {
    const auto ivs = walker.ivsAt(t);

    std::vector<Value> inputs(dp.inputs.size());
    for (size_t p = 0; p < binding.inputs.size(); ++p) {
      const auto& src = binding.inputs[p];
      const ScalarType ty = dp.inputs[p].type;
      switch (src.kind) {
        case PortBinding::InSource::Kind::Window: {
          const auto& st = kernel.inputs[src.stream];
          const auto& data = arrays.at(st.arrayName);
          const int64_t addr = st.flatAddress(src.access, ivs);
          if (addr < 0 || addr >= static_cast<int64_t>(data.size())) {
            throw std::runtime_error(fmt("window address %0 out of '%1' bounds", addr,
                                         st.arrayName));
          }
          inputs[p] = Value::fromInt(ty, data[static_cast<size_t>(addr)]);
          break;
        }
        case PortBinding::InSource::Kind::Scalar: {
          const auto f = io.scalars.find(src.scalarName);
          if (f == io.scalars.end()) {
            throw std::runtime_error(fmt("scalar input '%0' not bound", src.scalarName));
          }
          inputs[p] = Value::fromInt(ty, f->second);
          break;
        }
        case PortBinding::InSource::Kind::Induction:
          inputs[p] = Value::fromInt(ty, ivs[static_cast<size_t>(src.loop)]);
          break;
      }
    }

    auto [outputs, nextFeedback] = step(inputs, feedback);
    if (outputs.size() != dp.outputs.size()) {
      throw std::runtime_error(fmt("step produced %0 outputs, %1 ports expected", outputs.size(),
                                   dp.outputs.size()));
    }

    for (size_t p = 0; p < binding.outputs.size(); ++p) {
      const auto& sink = binding.outputs[p];
      const int64_t v = outputs[p].convertTo(dp.outputs[p].type).toInt();
      if (sink.kind == PortBinding::OutSink::Kind::Window) {
        const auto& st = kernel.outputs[sink.stream];
        auto& data = arrays.at(st.arrayName);
        const int64_t addr = st.flatAddress(sink.access, ivs);
        if (addr < 0 || addr >= static_cast<int64_t>(data.size())) {
          throw std::runtime_error(fmt("window address %0 out of '%1' bounds", addr,
                                       st.arrayName));
        }
        data[static_cast<size_t>(addr)] = v;
      } else {
        lastScalarOut[sink.scalarName] = v;
      }
    }
    feedback = std::move(nextFeedback);

    trace.inputs.push_back(std::move(inputs));
    trace.outputs.push_back(std::move(outputs));
  }

  for (const auto& st : kernel.outputs) trace.final.arrays[st.arrayName] = arrays.at(st.arrayName);
  for (const auto& [n, v] : lastScalarOut) trace.final.scalars[n] = v;
  for (const auto& [n, v] : feedback) trace.final.scalars[n] = v.toInt();
  trace.finalFeedback = feedback;
  return trace;
}

StreamStep interpreterStep(const hlir::KernelInfo& kernel, const dp::DataPath& dp,
                           interp::Interpreter& sim) {
  return [&kernel, &dp, &sim](const std::vector<Value>& inputs,
                              const std::map<std::string, Value>& feedback) {
    interp::KernelIO it;
    for (size_t p = 0; p < dp.inputs.size(); ++p) it.scalars[dp.inputs[p].name] = inputs[p].toInt();
    for (const auto& [name, v] : feedback) it.scalars[name] = v.toInt();
    const interp::KernelIO r = sim.run(kernel.dpName, it);
    std::vector<Value> outputs;
    outputs.reserve(dp.outputs.size());
    for (const auto& port : dp.outputs) {
      outputs.push_back(Value::fromInt(port.type, r.scalars.at(port.name)));
    }
    std::map<std::string, Value> next;
    for (const auto& fb : dp.feedbacks) next[fb.name] = Value::fromInt(fb.type, r.scalars.at(fb.name));
    return std::pair{std::move(outputs), std::move(next)};
  };
}

System::System(const hlir::KernelInfo& kernel, const dp::DataPath& dp, const Module& module,
               SystemOptions options)
    : kernel_(kernel), dp_(dp), module_(module), opt_(options) {}

interp::KernelIO System::run(const interp::KernelIO& io) {
  stats_ = SystemStats{};
  stats_.pipelineStages = dp_.stageCount;

  IterationWalker walker(kernel_.loops);
  const int64_t total = walker.totalIterations();

  // --- memories -------------------------------------------------------------
  std::vector<Bram> inBrams;
  for (const auto& st : kernel_.inputs) {
    const auto it = io.arrays.find(st.arrayName);
    if (it == io.arrays.end()) {
      throw std::runtime_error(fmt("input array '%0' not bound", st.arrayName));
    }
    int64_t n = 1;
    for (int64_t d : st.dims) n *= d;
    if (static_cast<int64_t>(it->second.size()) != n) {
      throw std::runtime_error(fmt("array '%0': %1 elements bound, %2 expected", st.arrayName,
                                   it->second.size(), n));
    }
    inBrams.emplace_back(st.elemType, it->second);
  }
  std::vector<Bram> outBrams;
  for (const auto& st : kernel_.outputs) {
    int64_t n = 1;
    for (int64_t d : st.dims) n *= d;
    outBrams.emplace_back(st.elemType, static_cast<size_t>(n));
  }

  // --- buffers / collectors ----------------------------------------------------
  std::vector<std::unique_ptr<InputBuffer>> buffers;
  std::vector<NaiveBuffer*> naive;
  for (const auto& st : kernel_.inputs) {
    if (opt_.useSmartBuffer) {
      buffers.push_back(std::make_unique<SmartBuffer>(st, walker, opt_.inputBusElems));
    } else {
      auto nb = std::make_unique<NaiveBuffer>(st, walker, opt_.inputBusElems);
      naive.push_back(nb.get());
      buffers.push_back(std::move(nb));
    }
  }
  std::vector<OutputCollector> collectors;
  for (const auto& st : kernel_.outputs) {
    const int bus = opt_.outputBusElems > 0 ? opt_.outputBusElems : st.accessCount();
    collectors.emplace_back(st, walker, bus);
  }

  // --- port wiring ----------------------------------------------------------------
  // dp port -> system role (shared with the streaming-model tracer and,
  // through it, the conformance engines and generated testbenches).
  const PortBinding binding = PortBinding::resolve(kernel_, dp_);
  // Loop-invariant scalar values, resolved once per run.
  std::vector<Value> scalarValues(binding.inputs.size());
  for (size_t p = 0; p < binding.inputs.size(); ++p) {
    const auto& src = binding.inputs[p];
    if (src.kind != PortBinding::InSource::Kind::Scalar) continue;
    const auto it = io.scalars.find(src.scalarName);
    if (it == io.scalars.end()) {
      throw std::runtime_error(fmt("scalar input '%0' not bound", src.scalarName));
    }
    scalarValues[p] = Value::fromInt(dp_.inputs[p].type, it->second);
  }

  // --- main clock loop ---------------------------------------------------------------
  // Either engine clocks the data path; they are differentially tested to be
  // bit-exact (tests/fastsim_diff_test.cpp), so the choice only affects speed.
  std::unique_ptr<NetlistSim> refSim;
  std::unique_ptr<FastSim> fastSim;
  if (opt_.engine == SimEngine::Reference) {
    refSim = std::make_unique<NetlistSim>(module_);
    refSim->reset();
  } else {
    fastSim = std::make_unique<FastSim>(module_);
  }
  auto setSimInput = [&](size_t port, const Value& v) {
    if (refSim) {
      refSim->setInput(port, v);
    } else {
      fastSim->setInput(port, v);
    }
  };
  auto evalSim = [&] { refSim ? refSim->eval() : fastSim->eval(); };
  auto tickSim = [&](bool en) { refSim ? refSim->tick(en) : fastSim->tick(en); };
  auto simOutput = [&](size_t port) { return refSim ? refSim->output(port) : fastSim->output(port); };
  std::unique_ptr<VcdRecorder> vcdRecorder;
  if (opt_.recordVcd) vcdRecorder = std::make_unique<VcdRecorder>(module_, /*onlyNamed=*/true);
  const int latency = module_.latency;

  int64_t issued = 0;
  int64_t captured = 0;
  int64_t enabledCount = 0;
  std::map<std::string, int64_t> scalarOuts;
  std::map<std::string, int64_t> fbFinal;
  for (const auto& fb : dp_.feedbacks) fbFinal[fb.name] = fb.initial;

  auto allDrained = [&]() {
    for (const auto& c : collectors) {
      if (!c.drained()) return false;
    }
    return true;
  };

  int64_t cycle = 0;
  while (captured < total || !allDrained()) {
    if (++cycle > opt_.cycleLimit) {
      throw std::runtime_error(fmt("cycle limit exceeded (%0 cycles, %1/%2 iterations)",
                                   opt_.cycleLimit, captured, total));
    }
    // Memory-side work.
    for (size_t b = 0; b < buffers.size(); ++b) buffers[b]->cycle(inBrams[b]);
    for (size_t c = 0; c < collectors.size(); ++c) collectors[c].cycle(outBrams[c]);

    bool canIssue = issued < total;
    for (size_t b = 0; b < buffers.size() && canIssue; ++b) {
      if (!buffers[b]->windowReady(issued)) canIssue = false;
    }
    for (const auto& c : collectors) {
      if (!c.hasRoom()) canIssue = false;
    }
    const bool flushing = issued == total && captured < total;
    const bool enable = canIssue || flushing;

    // Valid strobe: high exactly when a real iteration enters the pipe.
    if (!dp_.feedbacks.empty()) {
      setSimInput(binding.inputs.size(), Value::ofBool(canIssue));
    }
    if (canIssue) {
      // Present iteration `issued` to the data path.
      std::vector<std::vector<Value>> windows(buffers.size());
      for (size_t b = 0; b < buffers.size(); ++b) {
        windows[b] = buffers[b]->window(inBrams[b], issued);
      }
      const auto ivs = walker.ivsAt(issued);
      for (size_t p = 0; p < binding.inputs.size(); ++p) {
        const auto& src = binding.inputs[p];
        switch (src.kind) {
          case PortBinding::InSource::Kind::Window:
            setSimInput(p, windows[src.stream][src.access]);
            break;
          case PortBinding::InSource::Kind::Scalar:
            setSimInput(p, scalarValues[p]);
            break;
          case PortBinding::InSource::Kind::Induction:
            setSimInput(p, Value::ofInt(ivs[static_cast<size_t>(src.loop)]));
            break;
        }
      }
    }

    evalSim();
    if (vcdRecorder) {
      if (refSim) {
        vcdRecorder->sample(*refSim);
      } else {
        vcdRecorder->sample(*fastSim);
      }
    }

    if (enable) {
      const int64_t tOut = enabledCount - latency;
      if (tOut >= 0 && tOut < total) {
        // Capture iteration tOut's results (combinational at the final stage).
        std::vector<std::vector<Value>> outWindows(collectors.size());
        for (auto& w : outWindows) w.clear();
        for (size_t s = 0; s < kernel_.outputs.size(); ++s) {
          outWindows[s].assign(kernel_.outputs[s].scalarNames.size(), Value());
        }
        for (size_t p = 0; p < binding.outputs.size(); ++p) {
          const auto& sink = binding.outputs[p];
          const Value v = simOutput(p);
          if (sink.kind == PortBinding::OutSink::Kind::Window) {
            outWindows[sink.stream][sink.access] = v;
          } else {
            scalarOuts[sink.scalarName] = v.toInt();
          }
        }
        for (size_t c = 0; c < collectors.size(); ++c) {
          collectors[c].push(tOut, std::move(outWindows[c]));
          stats_.outputElems += static_cast<int64_t>(kernel_.outputs[c].scalarNames.size());
        }
        ++captured;
      }
      tickSim(true);
      ++enabledCount;
      ++stats_.enabledCycles;
      if (canIssue) {
        for (NaiveBuffer* nb : naive) nb->advance();
        ++issued;
      }
      // Snapshot feedback registers whose latest update belonged to a valid
      // iteration (flush cycles would otherwise clobber them).
      evalSim();
      for (size_t f = 0; f < dp_.feedbacks.size(); ++f) {
        const auto& fb = dp_.feedbacks[f];
        const int64_t iterOfUpdate = (enabledCount - 1) - fb.stage;
        if (iterOfUpdate >= 0 && iterOfUpdate < total) {
          fbFinal[fb.name] = simOutput(dp_.outputs.size() + f).toInt();
        }
      }
    } else {
      tickSim(false);
      ++stats_.stallCycles;
    }
  }

  if (vcdRecorder) vcd_ = vcdRecorder->render();
  stats_.cycles = cycle;
  stats_.iterations = total;
  for (size_t b = 0; b < buffers.size(); ++b) {
    stats_.bramReads += buffers[b]->fetchCount();
    stats_.bufferCapacityElems += buffers[b]->capacityElems();
  }
  for (const auto& bram : outBrams) stats_.bramWrites += bram.writes;

  // --- results --------------------------------------------------------------------
  interp::KernelIO out;
  for (size_t s = 0; s < kernel_.outputs.size(); ++s) {
    out.arrays[kernel_.outputs[s].arrayName] = outBrams[s].contents();
  }
  for (const auto& [n, v] : scalarOuts) out.scalars[n] = v;
  for (const auto& [n, v] : fbFinal) out.scalars[n] = v;
  return out;
}

SystemStats measureSystem(const hlir::KernelInfo& kernel, const dp::DataPath& dp,
                          const Module& module, const interp::KernelIO& inputs,
                          const SystemOptions& options) {
  System system(kernel, dp, module, options);
  system.run(inputs);
  return system.stats();
}

} // namespace roccc::rtl
