file(REMOVE_RECURSE
  "CMakeFiles/support_value_test.dir/support_value_test.cpp.o"
  "CMakeFiles/support_value_test.dir/support_value_test.cpp.o.d"
  "support_value_test"
  "support_value_test.pdb"
  "support_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
