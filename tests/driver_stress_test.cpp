// Thread-stress suite for the batch compilation driver: the fuzz-kernel
// generator (kernel_fuzzer.hpp, the same one fuzz_test.cpp drives) feeds
// CompileService with 8 workers and many distinct seeds, and every parallel
// result is compared byte-for-byte against a serial reference compile of
// the same seed. This is the workload the TSan preset (build-tsan) runs
// under ThreadSanitizer.
//
// Seed count: ROCCC_STRESS_SEEDS in the environment overrides the default
// (16). The `nightly`-labelled ctest entry (driver_stress_nightly, see
// tests/CMakeLists.txt) runs the heavy configuration — 8 workers x 64
// seeds — via that variable:
//
//   ctest -L nightly                      # the heavy sweep
//   ROCCC_STRESS_SEEDS=256 ./driver_stress_test   # heavier still, by hand
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "kernel_fuzzer.hpp"
#include "roccc/cache.hpp"
#include "roccc/compiler.hpp"
#include "roccc/driver.hpp"

namespace roccc {
namespace {

constexpr int kDefaultSeeds = 16;
constexpr int kWorkers = 8;

int seedCount() {
  if (const char* env = std::getenv("ROCCC_STRESS_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return kDefaultSeeds;
}

/// One fuzz kernel per seed; generation is deterministic per seed.
std::vector<CompileJob> fuzzBatch(int seeds, uint64_t salt) {
  std::vector<CompileJob> jobs;
  jobs.reserve(seeds);
  for (int s = 0; s < seeds; ++s) {
    KernelFuzzer fuzzer(salt + static_cast<uint64_t>(s));
    CompileJob job;
    job.name = "seed-" + std::to_string(salt + static_cast<uint64_t>(s));
    job.source = fuzzer.generate().source;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(DriverStress, FuzzBatchOnEightWorkersMatchesSerialReference) {
  const int seeds = seedCount();
  const std::vector<CompileJob> jobs = fuzzBatch(seeds, 0xace0fba5e);

  const BatchResult parallel = CompileService(kWorkers).compileBatch(jobs);
  const BatchResult serial = CompileService(1).compileBatch(jobs);
  ASSERT_EQ(parallel.results.size(), jobs.size());

  int compiled = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const CompileResult& p = parallel.results[i];
    const CompileResult& s = serial.results[i];
    ASSERT_EQ(p.ok, s.ok) << jobs[i].name << "\n" << jobs[i].source;
    ASSERT_TRUE(p.ok) << jobs[i].name << "\n" << jobs[i].source << "\n" << p.diags.dump();
    ASSERT_EQ(p.vhdl, s.vhdl) << jobs[i].name << "\n" << jobs[i].source;
    ASSERT_EQ(p.verilog, s.verilog) << jobs[i].name;
    ++compiled;
  }
  EXPECT_EQ(compiled, seeds);
}

TEST(DriverStress, RepeatedParallelSweepsAreStable) {
  // Re-running the same parallel batch must reproduce itself exactly —
  // catches state leaking *between* batches (warm caches, counters).
  const int seeds = std::min(seedCount(), 32);
  const std::vector<CompileJob> jobs = fuzzBatch(seeds, 0xbeefcafe);
  const CompileService service(kWorkers);
  const BatchResult first = service.compileBatch(jobs);
  const BatchResult second = service.compileBatch(jobs);
  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(first.results[i].ok, second.results[i].ok) << jobs[i].name;
    ASSERT_EQ(first.results[i].vhdl, second.results[i].vhdl) << jobs[i].name;
  }
}

TEST(DriverStress, MixedOptionsUnderContention) {
  // The option matrix the benches sweep, all in flight at once: unroll
  // factors and pipelining targets change per job while jobs race on the
  // pool. Each job still must match its own serial compile.
  std::vector<CompileJob> jobs;
  const int seeds = std::min(seedCount(), 24);
  for (int s = 0; s < seeds; ++s) {
    KernelFuzzer fuzzer(0x5eed5a17ull + static_cast<uint64_t>(s));
    CompileJob job;
    job.name = "mixed-" + std::to_string(s);
    job.source = fuzzer.generate().source;
    if (s % 3 == 1) job.options.unrollFactor = 2;
    if (s % 3 == 2) job.options.dpOptions.targetStageDelayNs = 1.5;
    if (s % 2 == 1) job.options.optimize = false;
    jobs.push_back(std::move(job));
  }
  const BatchResult parallel = CompileService(kWorkers).compileBatch(jobs);
  const BatchResult serial = CompileService(1).compileBatch(jobs);
  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(parallel.results[i].ok, serial.results[i].ok) << jobs[i].source;
    ASSERT_EQ(parallel.results[i].vhdl, serial.results[i].vhdl) << jobs[i].source;
  }
}

TEST(DriverStress, CacheToggledBatchesMatchSerialUncachedReference) {
  // The sharded compile cache under the same contention as the rest of the
  // suite: batches of fuzz kernels (with repeats, so hits and single-flight
  // coalescing actually occur) run with the cache randomly attached or
  // detached per round, on 8 workers, and every result must match the
  // serial uncached reference compile of the same kernel. This is the
  // cache's TSan workload in the build-tsan preset.
  const int seeds = std::min(seedCount(), 24);
  std::vector<CompileJob> distinct = fuzzBatch(seeds, 0xcac4ed);

  // Serial uncached reference, one result per distinct kernel.
  const BatchResult reference = CompileService(1).compileBatch(distinct);

  auto cache = std::make_shared<CompileCache>();
  std::mt19937_64 rng(0x70991eull); // fixed seed; toggling must not matter
  for (int round = 0; round < 6; ++round) {
    // Each round draws ~2x the distinct set with repeats.
    std::vector<CompileJob> jobs;
    std::vector<size_t> origin;
    std::uniform_int_distribution<size_t> pick(0, distinct.size() - 1);
    for (size_t n = 0; n < distinct.size() * 2; ++n) {
      const size_t i = pick(rng);
      jobs.push_back(distinct[i]);
      origin.push_back(i);
    }
    CompileService service(kWorkers);
    const bool cached = round % 2 == 1 || (rng() & 1);
    if (cached) service.setCache(cache);

    const BatchResult batch = service.compileBatch(jobs);
    ASSERT_EQ(batch.results.size(), jobs.size());
    if (!cached) {
      EXPECT_EQ(batch.cacheHits + batch.cacheMisses, 0) << "round " << round;
    }
    for (size_t n = 0; n < jobs.size(); ++n) {
      const CompileResult& want = reference.results[origin[n]];
      ASSERT_EQ(batch.results[n].ok, want.ok) << "round " << round << " slot " << n;
      ASSERT_EQ(batch.results[n].vhdl, want.vhdl) << "round " << round << " slot " << n;
      ASSERT_EQ(batch.results[n].verilog, want.verilog) << "round " << round << " slot " << n;
    }
  }
  // Across the cached rounds the cache must have actually been exercised.
  const CacheStats stats = cache->stats();
  EXPECT_GT(stats.hits + stats.coalesced, 0);
  EXPECT_GT(stats.misses, 0);
}

} // namespace
} // namespace roccc
