// Raw netlist-engine throughput: the boxed-Value reference interpreter
// (rtl::NetlistSim) vs the compiled slot-indexed engine (rtl::FastSim), on
// Table 1 modules. Both engines are driven with the identical random input
// stream; throughput is reported in cell-evaluations per second
// (cells x cycles x lanes / wall time), the figure of merit that stays
// comparable across designs of very different size. Lane-0 output checksums
// must agree between engines — a run that diverges fails.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "kernels.hpp"
#include "roccc/compiler.hpp"
#include "rtl/fastsim.hpp"
#include "rtl/netlist.hpp"

namespace {

using namespace roccc;
using Clock = std::chrono::steady_clock;

struct Workload {
  const char* name;
  const char* source;
  double targetNs; ///< 0: default pipeline stage target
};

const Workload kWorkloads[] = {
    {"bit_correlator", bench::kBitCorrelator, 0},
    {"udiv", bench::kUdiv, 3.0},
    {"square_root", bench::kSquareRoot, 0},
    {"fir", bench::kFir, 0},
    {"dct", bench::kDct, 7.5},
    {"wavelet", bench::kWavelet, 9.0},
};

/// Per-port random raw bit patterns, one per cycle per lane.
struct Stimulus {
  std::vector<ScalarType> portTypes;
  std::vector<std::vector<uint64_t>> bits; ///< [port][cycle * lanes + lane]
};

Stimulus makeStimulus(const rtl::Module& m, int cycles, int lanes, uint64_t seed) {
  Stimulus s;
  std::mt19937_64 rng(seed);
  for (int net : m.inputPorts) {
    s.portTypes.push_back(m.nets[static_cast<size_t>(net)].type);
    auto& v = s.bits.emplace_back();
    v.reserve(static_cast<size_t>(cycles) * static_cast<size_t>(lanes));
    for (int i = 0; i < cycles * lanes; ++i) v.push_back(rng());
  }
  return s;
}

double seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Reference run over lane 0's stimulus; returns {seconds, checksum}.
std::pair<double, uint64_t> runReference(const rtl::Module& m, const Stimulus& s, int cycles,
                                         int lanes) {
  rtl::NetlistSim sim(m);
  sim.reset();
  uint64_t checksum = 0;
  const auto t0 = Clock::now();
  for (int cy = 0; cy < cycles; ++cy) {
    for (size_t p = 0; p < s.bits.size(); ++p) {
      sim.setInput(p, Value(s.portTypes[p], s.bits[p][static_cast<size_t>(cy) *
                                                      static_cast<size_t>(lanes)]));
    }
    sim.eval();
    for (size_t o = 0; o < m.outputPorts.size(); ++o) checksum ^= sim.output(o).bits() + o;
    sim.tick(true);
  }
  return {seconds(t0, Clock::now()), checksum};
}

/// Batched fast run; returns {seconds, lane-0 checksum}.
std::pair<double, uint64_t> runFast(const rtl::Module& m, const Stimulus& s, int cycles,
                                    int lanes, int batch) {
  rtl::FastSim sim(m, batch);
  uint64_t checksum = 0;
  const auto t0 = Clock::now();
  for (int cy = 0; cy < cycles; ++cy) {
    for (size_t p = 0; p < s.bits.size(); ++p) {
      const uint64_t* row = &s.bits[p][static_cast<size_t>(cy) * static_cast<size_t>(lanes)];
      for (int l = 0; l < batch; ++l) sim.setInput(p, Value(s.portTypes[p], row[l]), l);
    }
    sim.eval();
    for (size_t o = 0; o < m.outputPorts.size(); ++o) checksum ^= sim.output(o, 0).bits() + o;
    sim.tick(true);
  }
  return {seconds(t0, Clock::now()), checksum};
}

template <class F>
std::pair<double, uint64_t> bestOf(int reps, F&& f) {
  std::pair<double, uint64_t> best{1e300, 0};
  for (int i = 0; i < reps; ++i) {
    const auto r = f();
    if (r.first < best.first) best = r;
  }
  return best;
}

} // namespace

int main() {
  std::printf("Netlist simulation throughput: reference (boxed-Value interpreter) vs\n");
  std::printf("fast (compiled slot-indexed, batched). Identical random stimulus per lane 0;\n");
  std::printf("Mcell-evals/s = cells x cycles x lanes / wall time / 1e6.\n\n");
  std::printf("%-15s | %6s | %7s | %9s | %9s | %9s | %8s | %8s | %s\n", "kernel", "cells",
              "cycles", "ref Mc/s", "fast Mc/s", "b16 Mc/s", "speedup", "b16 spd", "check");
  std::printf("----------------+--------+---------+-----------+-----------+-----------+----------+"
              "----------+------\n");

  bool allMatch = true;
  double dctSpeedup = 0;
  const int kMaxLanes = 16;
  for (const Workload& w : kWorkloads) {
    CompileOptions opt;
    if (w.targetNs > 0) opt.dpOptions.targetStageDelayNs = w.targetNs;
    Compiler c(opt);
    const CompileResult r = c.compileSource(w.source);
    if (!r.ok) {
      std::fprintf(stderr, "%s: compile failed\n%s\n", w.name, r.diags.dump().c_str());
      return 1;
    }
    const rtl::Module& m = r.module;
    const int cells = static_cast<int>(m.cells.size());
    // Size each run so the reference engine gets a measurable slice of work.
    const int cycles = std::max(256, 2000000 / std::max(cells, 1));
    const Stimulus s = makeStimulus(m, cycles, kMaxLanes, /*seed=*/0xBE);
    const auto ref = bestOf(3, [&] { return runReference(m, s, cycles, kMaxLanes); });
    const auto fast1 = bestOf(3, [&] { return runFast(m, s, cycles, kMaxLanes, 1); });
    const auto fast16 = bestOf(3, [&] { return runFast(m, s, cycles, kMaxLanes, kMaxLanes); });

    const double denom = static_cast<double>(cells) * cycles / 1e6;
    const double refR = denom / ref.first;
    const double f1R = denom / fast1.first;
    const double f16R = denom * kMaxLanes / fast16.first;
    const bool match = ref.second == fast1.second && ref.second == fast16.second;
    allMatch = allMatch && match;
    // Throughput is the batched figure: one sweep of the instruction stream
    // serves 16 independent streams, which is the engine's reason to exist.
    if (std::string(w.name) == "dct") dctSpeedup = f16R / refR;
    std::printf("%-15s | %6d | %7d | %9.1f | %9.1f | %9.1f | %7.1fx | %7.1fx | %s\n", w.name,
                cells, cycles, refR, f1R, f16R, f1R / refR, f16R / refR,
                match ? "OK" : "DIVERGED");
  }

  std::printf("\n  speedup   = fast engine (batch 1) vs reference, same work\n");
  std::printf("  b16 spd   = fast engine throughput, 16 independent lanes per pass\n");
  std::printf("  dct fast/reference throughput: %.1fx at batch 16 (target: >= 5x)\n", dctSpeedup);
  if (!allMatch) {
    std::fprintf(stderr, "FAIL: engines diverged\n");
    return 1;
  }
  return dctSpeedup >= 5.0 ? 0 : 1;
}
