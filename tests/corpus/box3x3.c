/* 3x3 box average: 2-D smart-buffer window feeding a constant divider. */
void box3x3(const uint8 P[18][18], uint8 B[16][16]) {
  int i;
  int j;
  for (i = 0; i < 16; i++) {
    for (j = 0; j < 16; j++) {
      B[i][j] = (P[i][j]   + P[i][j+1]   + P[i][j+2]
               + P[i+1][j] + P[i+1][j+1] + P[i+1][j+2]
               + P[i+2][j] + P[i+2][j+1] + P[i+2][j+2]) / 9;
    }
  }
}
