// Loop-level and module-level transformations (paper section 2 / 4.1):
// constant folding, full & partial loop unrolling, loop strip-mining, loop
// fusion, user-call inlining, and call-to-lookup-table conversion
// ("Function calls will either be inlined or whenever feasible made into a
// lookup table").
//
// All transforms operate on the AST in place and require ast::analyze() to
// have succeeded beforehand. Transforms that change declarations re-run
// analyze() internally to refresh resolution; they report failures through
// the DiagEngine and return false without modifying the module on error.
#pragma once

#include "frontend/ast.hpp"
#include "support/diag.hpp"

namespace roccc::hlir {

/// Folds constant subexpressions everywhere (3*4 -> 12; if(0){...} pruned;
/// fully-constant for bounds kept as literals). Returns number of folds.
int constantFold(ast::Module& m, DiagEngine& diags);

/// Fully unrolls every for-loop in `fn` whose (constant) trip count is at
/// most `maxTrip`, converting it into "a non-iterative block of code"
/// eliminating the loop controller (section 2). Innermost loops unroll
/// first. Returns the number of loops unrolled.
int fullyUnrollLoops(ast::Module& m, ast::Function& fn, DiagEngine& diags, int64_t maxTrip = 1024);

/// Fully unrolls loops nested *inside* another loop (the streaming loop
/// stays; per-element inner loops such as bit_correlator's bit scan become
/// straight-line code the data-path generator accepts). Returns the number
/// of loops unrolled.
int fullyUnrollInnerLoops(ast::Module& m, ast::Function& fn, DiagEngine& diags, int64_t maxTrip = 1024);

/// Partially unrolls the *innermost* loop of `fn` by `factor`. The trip
/// count must be a constant divisible by `factor`. After this transform the
/// loop advances `factor` iterations per trip, widening the data path
/// (the paper's DCT processes 8 outputs per clock this way).
bool unrollInnerLoop(ast::Module& m, ast::Function& fn, int factor, DiagEngine& diags);

/// Strip-mines the innermost loop into blocks of `blockSize` (trip count
/// must be a constant multiple of blockSize): for(i) => for(ii)for(i in
/// block). Used with fusion/unrolling to shape buffer bursts.
bool stripMineInnerLoop(ast::Module& m, ast::Function& fn, int64_t blockSize, DiagEngine& diags);

/// Fuses adjacent top-level loops with identical headers when the second
/// does not read anything the first writes. Returns number of fusions.
int fuseAdjacentLoops(ast::Module& m, ast::Function& fn, DiagEngine& diags);

/// Inlines every call to a module-local function (callees stay in the
/// module). Out-params become local temporaries. Returns number of calls
/// inlined.
int inlineCalls(ast::Module& m, DiagEngine& diags);

/// Converts calls to pure single-input functions into ROCCC_lookup on a
/// synthesized const table, evaluating the callee over the full input
/// domain with the interpreter ("whenever feasible made into a lookup
/// table"). Only applies when the argument type has at most `maxIndexBits`
/// bits. Returns number of calls converted.
int convertCallsToLookupTables(ast::Module& m, DiagEngine& diags, int maxIndexBits = 10);

/// Compile-time area estimation over the AST (ref [13]: "<1 ms, within 5%"):
/// a fast operator census used to drive unroll-factor selection before any
/// hardware is built.
struct AreaEstimate {
  int adders = 0;
  int multipliers = 0;
  int dividers = 0;
  int comparators = 0;
  int logicOps = 0;
  int luts = 0; ///< lookup-table instantiations
  /// Rough slice estimate from the census (32-bit ops assumed).
  int64_t estimatedSlices() const;
};
AreaEstimate estimateArea(const ast::Function& fn);

/// Picks the largest power-of-two unroll factor whose estimated slice count
/// fits `sliceBudget` (the compile-time-estimation-driven unrolling loop of
/// section 2).
int chooseUnrollFactor(const ast::Function& fn, int64_t tripCount, int64_t sliceBudget);

} // namespace roccc::hlir
