// roccc-verify — the N-way differential conformance engine.
//
// The repository carries five independent executions of every compiled
// kernel, one per layer of the stack:
//
//   1. Interp      — the AST interpreter on the original C source (the
//                    golden model, paper section 4.2.2), cross-checked
//                    against the extracted streaming model;
//   2. MirExec     — mir::execute on the back-end IR, driven through the
//                    untimed streaming model (rtl::traceStreamingModel);
//   3. DpEval      — dp::evaluate on the built data path, same driver;
//   4. NetlistRef  — the cycle-accurate Fig 2 system clocked by the boxed
//                    NetlistSim reference engine;
//   5. FastSim     — the same system clocked by the compiled engine.
//
// verifyKernel runs all five on one deterministic stimulus (SplitMix64,
// platform-independent, derived from seed + kernel name) and demands
// bit-identical results. Any disagreement is reported as a minimized
// counterexample: the kernel, the first diverging vector (iteration) index,
// the engine and port — and, when the two netlist engines disagree with
// each other, the first diverging net and cycle from a lockstep replay.
//
// verifyConformance scales this over a corpus through CompileService, so
// conformance inherits the batch driver's determinism and fault-containment
// guarantees; the soak mode in tools/roccc_verify.cpp reuses the PR-4
// fault-injection harness to prove a failing job never poisons sibling
// verdicts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "roccc/driver.hpp"

namespace roccc {

enum class VerifyEngine { Interp, MirExec, DpEval, NetlistRef, FastSim };
inline constexpr int kVerifyEngineCount = 5;
const char* verifyEngineName(VerifyEngine e);

struct VerifyOptions {
  /// Stimulus seed; the per-kernel stream is seed mixed with the kernel
  /// name, so corpus order never changes a kernel's vectors.
  uint64_t seed = 0x0dc5'2005;
  /// Bit per VerifyEngine (1 << engine). Interp is the oracle and always
  /// runs; clearing its bit is ignored.
  unsigned engineMask = (1u << kVerifyEngineCount) - 1;
  /// Also generate the kernel's system-level self-checking testbench and
  /// replay it under both netlist engines (vhdl::simulateTestbench); a
  /// testbench that would not report "TESTBENCH PASSED" fails the verdict.
  bool checkTestbench = false;
  /// CompileService worker count for verifyConformance (0 = hardware).
  int workers = 0;
};

/// One minimized disagreement.
struct Counterexample {
  std::string kernel;
  VerifyEngine engine = VerifyEngine::Interp;
  std::string port;        ///< output port (or "net <name>" for lockstep divergence)
  int64_t index = -1;      ///< first diverging vector/iteration (or cycle for nets)
  std::string expected;    ///< golden value, rendered
  std::string got;         ///< engine value, rendered
  std::string detail;      ///< one-line human-readable description
};

struct KernelVerdict {
  std::string kernel;
  CompileOutcome outcome = CompileOutcome::Ok;  ///< compile outcome
  std::string compileError;                     ///< diagnostics when not Ok
  bool agree = false;          ///< all requested engines matched (outcome Ok only)
  bool testbenchPassed = true; ///< only meaningful with VerifyOptions::checkTestbench
  int enginesRun = 0;
  int64_t iterations = 0;      ///< vectors checked per engine
  /// FNV-1a digest of the golden outputs (arrays, scalars); the soak mode
  /// compares sibling digests across fault-injected batches.
  uint64_t outputDigest = 0;
  std::vector<Counterexample> disagreements; ///< empty when agree
};

struct VerifyReport {
  std::vector<KernelVerdict> verdicts;
  int agreed() const;
  int compileFailures() const;
  bool allAgree() const; ///< every Ok-compiled kernel agreed (and testbenches passed)
  std::string summary() const;
  std::string toJson() const;
};

/// Deterministic stimulus covering the kernel's input arrays and scalars
/// (SplitMix64 over [type.min, type.max], mixed per array/scalar name).
interp::KernelIO deterministicStimulus(const hlir::KernelInfo& kernel, uint64_t seed);

/// Verifies one compiled kernel against its original source. `compiled`
/// must be an Ok result carrying the IR fields (not a cache hit).
KernelVerdict verifyKernel(const std::string& name, const std::string& source,
                           const CompileResult& compiled, const VerifyOptions& opt);

/// Compiles every job through CompileService and verifies each Ok result.
/// Jobs that fail to compile produce verdicts carrying the outcome; they do
/// not abort the batch (fault containment extends to conformance).
VerifyReport verifyConformance(const std::vector<CompileJob>& jobs, const VerifyOptions& opt);

} // namespace roccc
