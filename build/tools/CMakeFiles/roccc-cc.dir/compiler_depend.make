# Empty compiler generated dependencies file for roccc-cc.
# This may be replaced when dependencies are built.
