
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mir/exec.cpp" "src/mir/CMakeFiles/roccc_mir.dir/exec.cpp.o" "gcc" "src/mir/CMakeFiles/roccc_mir.dir/exec.cpp.o.d"
  "/root/repo/src/mir/ir.cpp" "src/mir/CMakeFiles/roccc_mir.dir/ir.cpp.o" "gcc" "src/mir/CMakeFiles/roccc_mir.dir/ir.cpp.o.d"
  "/root/repo/src/mir/lower.cpp" "src/mir/CMakeFiles/roccc_mir.dir/lower.cpp.o" "gcc" "src/mir/CMakeFiles/roccc_mir.dir/lower.cpp.o.d"
  "/root/repo/src/mir/passes.cpp" "src/mir/CMakeFiles/roccc_mir.dir/passes.cpp.o" "gcc" "src/mir/CMakeFiles/roccc_mir.dir/passes.cpp.o.d"
  "/root/repo/src/mir/ssa.cpp" "src/mir/CMakeFiles/roccc_mir.dir/ssa.cpp.o" "gcc" "src/mir/CMakeFiles/roccc_mir.dir/ssa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/roccc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/roccc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
