file(REMOVE_RECURSE
  "CMakeFiles/roccc_rtl.dir/buffers.cpp.o"
  "CMakeFiles/roccc_rtl.dir/buffers.cpp.o.d"
  "CMakeFiles/roccc_rtl.dir/from_dp.cpp.o"
  "CMakeFiles/roccc_rtl.dir/from_dp.cpp.o.d"
  "CMakeFiles/roccc_rtl.dir/netlist.cpp.o"
  "CMakeFiles/roccc_rtl.dir/netlist.cpp.o.d"
  "CMakeFiles/roccc_rtl.dir/system.cpp.o"
  "CMakeFiles/roccc_rtl.dir/system.cpp.o.d"
  "CMakeFiles/roccc_rtl.dir/vcd.cpp.o"
  "CMakeFiles/roccc_rtl.dir/vcd.cpp.o.d"
  "libroccc_rtl.a"
  "libroccc_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roccc_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
