#!/usr/bin/env python3
"""Check relative markdown links.

Scans the given markdown files (or the repo's docs set when run without
arguments) for inline links and validates every relative one: the target
file must exist, and a #fragment must name a heading in the target.
External (http/https/mailto) links are not fetched. Exit 0 = all links
resolve; exit 1 lists every broken link as file:line.

Wired into CI next to the cli_docs_in_sync check; run locally with

    python3 tools/check_markdown_links.py
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
EXTERNAL = ("http://", "https://", "mailto:")
CODE_FENCE = re.compile(r"^(```|~~~)")


def heading_anchor(text):
    """GitHub-style anchor: lowercase, spaces to dashes, punctuation dropped."""
    text = re.sub(r"`([^`]*)`", r"\1", text.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_in(path):
    anchors = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(heading_anchor(m.group(1)))
    return anchors


def check_file(path, errors):
    base = os.path.dirname(os.path.abspath(path))
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if target.startswith(EXTERNAL) or target.startswith("#"):
                    continue
                target_path, _, fragment = target.partition("#")
                resolved = os.path.normpath(os.path.join(base, target_path))
                if not os.path.exists(resolved):
                    errors.append(f"{path}:{lineno}: broken link: {target}")
                    continue
                if fragment and resolved.endswith(".md"):
                    if fragment not in anchors_in(resolved):
                        errors.append(
                            f"{path}:{lineno}: missing anchor #{fragment} in {target_path}")


def default_files(repo_root):
    files = []
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"):
        p = os.path.join(repo_root, name)
        if os.path.exists(p):
            files.append(p)
    docs = os.path.join(repo_root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join(docs, name))
    return files


def main(argv):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = argv[1:] or default_files(repo_root)
    errors = []
    for path in files:
        check_file(path, errors)
    if errors:
        print("\n".join(errors))
        return 1
    print(f"checked {len(files)} markdown file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
