// Tokenizer for the ROCCC C subset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/diag.hpp"

namespace roccc::ast {

enum class TokKind {
  End,
  Identifier,
  IntLiteral,
  // keywords
  KwVoid, KwConst, KwIf, KwElse, KwFor, KwReturn,
  KwInt, KwUnsigned, KwSigned, KwChar, KwShort, KwLong,
  // punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon, Star, Amp, Pipe, Caret, Tilde, Bang,
  Plus, Minus, Slash, Percent, Assign,
  Lt, Gt, Le, Ge, EqEq, NotEq, Shl, Shr, AmpAmp, PipePipe,
  PlusPlus, MinusMinus, PlusAssign, MinusAssign,
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  int64_t intValue = 0;
  SourceLoc loc;

  bool is(TokKind k) const { return kind == k; }
};

const char* tokKindName(TokKind k);

/// Tokenizes the whole buffer (handles // and /* */ comments, decimal / hex /
/// char literals). Errors are reported through `diags`; lexing continues so
/// the parser can surface multiple problems in one run.
std::vector<Token> lex(const std::string& source, DiagEngine& diags);

} // namespace roccc::ast
