// Ablation: data-path pipelining (paper section 4.2.3). Sweeps the target
// stage delay and reports stages, clock rate, and the register cost of the
// "adjoining def-ref" balancing copies (section 4.2.2).
#include <cstdio>

#include "kernels.hpp"
#include "roccc/compiler.hpp"
#include "synth/estimate.hpp"

int main() {
  using namespace roccc;
  std::printf("Latch-placement sweep: 8-point DCT data path\n\n");
  std::printf("  %12s | %7s | %9s | %8s | %16s | %16s\n", "target ns", "stages", "fmax MHz",
              "slices", "pipeline FF bits", "balance FF bits");
  std::printf("  -------------+---------+-----------+----------+------------------+----------------\n");

  for (double target : {100.0, 12.0, 7.5, 5.0, 3.5, 2.5}) {
    CompileOptions opt;
    opt.dpOptions.targetStageDelayNs = target;
    Compiler c(opt);
    const CompileResult r = c.compileSource(bench::kDct);
    if (!r.ok) {
      std::fprintf(stderr, "%s\n", r.diags.dump().c_str());
      return 1;
    }
    const auto rep = synth::estimate(r.module);
    std::printf("  %12.1f | %7d | %9.0f | %8lld | %16lld | %16lld\n", target,
                r.datapath.stageCount, rep.fmaxMHz(), static_cast<long long>(rep.slices),
                static_cast<long long>(r.datapath.pipelineRegisterBits),
                static_cast<long long>(r.datapath.balanceRegisterBits));
  }
  std::printf("\nUnpipelined (target 100 ns) the DCT runs at its full combinational depth;\n");
  std::printf("tightening the stage target raises the clock while balance registers — the\n");
  std::printf("compiler's register-copy insertion — grow the area. The paper's DCT point\n");
  std::printf("(73.5%% of the IP clock, 1.76x area) sits mid-sweep.\n");

  std::printf("\nPipelining off vs on, behavior identical (cosimulation):\n");
  for (bool pipeline : {false, true}) {
    CompileOptions opt;
    opt.dpOptions.pipeline = pipeline;
    Compiler c(opt);
    const CompileResult r = c.compileSource(bench::kDct);
    interp::KernelIO in;
    for (int i = 0; i < 64; ++i) in.arrays["X"].push_back((i * 37) % 256 - 128);
    const auto rep = cosimulate(r, bench::kDct, in);
    std::printf("  pipeline=%d: stages=%d %s\n", pipeline ? 1 : 0, r.datapath.stageCount,
                rep.match ? "MATCH" : "MISMATCH");
    if (!rep.match) return 1;
  }
  return 0;
}
