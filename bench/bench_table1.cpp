// Reproduces Table 1: "A comparison of hardware performance from Xilinx IPs
// and ROCCC-generated VHDL code" — clock (MHz) and area (slices) for nine
// designs, IP baseline vs compiler output, with the paper's numbers printed
// alongside for reference.
//
// The Xilinx ISE 5.1i toolchain is substituted by the structural synthesis
// model in src/synth (see DESIGN.md); baselines are the expert netlists in
// src/ip. For the cos and arbitrary-LUT rows ROCCC instantiates the
// pre-existing IP component, so both columns are identical by construction
// (paper section 5: "they have exactly the same performance").
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>

#include "ip/ip.hpp"
#include "kernels.hpp"
#include "roccc/cache.hpp"
#include "roccc/compiler.hpp"
#include "roccc/driver.hpp"
#include "synth/estimate.hpp"

namespace {

using namespace roccc;

struct Row {
  std::string name;
  double ipClock = 0;
  int64_t ipArea = 0;
  double rocccClock = 0;
  int64_t rocccArea = 0;
  std::string note;
};

/// Per-kernel pipeline statistics captured from CompileResult::passLog —
/// the compile-time side of the table (and the bench JSON).
struct CompileTiming {
  std::string name;
  std::vector<PassStatistics> passes;

  double totalMs() const {
    double t = 0;
    for (const auto& p : passes) t += p.wallMs;
    return t;
  }
  double layerMs(PassLayer layer) const {
    double t = 0;
    for (const auto& p : passes) {
      if (p.layer == layer) t += p.wallMs;
    }
    return t;
  }
};
std::vector<CompileTiming> g_timings;

/// The retime verdict + synthesis estimate per compiled kernel — the
/// fmax/slices/energy/EDP columns printed after the area table.
struct TimingRow {
  std::string name;
  dp::RetimeReport retiming;
  int stageCount = 0;
  synth::Report est;
};
std::vector<TimingRow> g_timingRows;

synth::Report compileAndEstimate(const char* name, const char* src, CompileOptions opt = {}) {
  Compiler c(opt);
  const CompileResult r = c.compileSource(src);
  if (!r.ok) {
    std::fprintf(stderr, "compile failed:\n%s\n", r.diags.dump().c_str());
    std::exit(1);
  }
  g_timings.push_back({name, r.passLog});
  const synth::Report rep = synth::estimate(r.module);
  g_timingRows.push_back({name, r.retiming, r.datapath.stageCount, rep});
  return rep;
}

/// Random inputs covering the kernel's arrays and scalars.
interp::KernelIO randomInputs(const hlir::KernelInfo& k, uint64_t seed) {
  std::mt19937_64 rng(seed);
  interp::KernelIO io;
  for (const auto& st : k.inputs) {
    int64_t n = 1;
    for (int64_t d : st.dims) n *= d;
    std::uniform_int_distribution<int64_t> dist(st.elemType.minValue(), st.elemType.maxValue());
    auto& arr = io.arrays[st.arrayName];
    for (int64_t i = 0; i < n; ++i) arr.push_back(dist(rng));
  }
  for (const auto& si : k.scalarInputs) {
    if (si.isInduction) continue;
    std::uniform_int_distribution<int64_t> dist(si.type.minValue(), si.type.maxValue());
    io.scalars[si.name] = dist(rng);
  }
  return io;
}

/// Wall time of `reps` System::run calls on one engine, plus the outputs.
std::pair<double, interp::KernelIO> timeEngine(const CompileResult& r, const interp::KernelIO& io,
                                               rtl::SimEngine engine, int reps) {
  rtl::SystemOptions sys;
  sys.engine = engine;
  interp::KernelIO out;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    rtl::System system(r.kernel, r.datapath, r.module, sys);
    out = system.run(io);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double, std::milli>(t1 - t0).count() / reps, out};
}

} // namespace

int main() {
  std::vector<Row> rows;

  // bit_correlator ------------------------------------------------------------
  {
    const auto ip = synth::estimate(ip::buildBitCorrelator(181));
    const auto rc = compileAndEstimate("bit_correlator", bench::kBitCorrelator);
    rows.push_back({"bit_correlator", ip.fmaxMHz(), ip.slices, rc.fmaxMHz(), rc.slices, ""});
  }
  // mul_acc ---------------------------------------------------------------------
  {
    const auto ip = synth::estimate(ip::buildMulAcc());
    const auto rc = compileAndEstimate("mul_acc", bench::kMulAcc);
    rows.push_back({"mul_acc", ip.fmaxMHz(), ip.slices, rc.fmaxMHz(), rc.slices,
                    "if-else adds mux nodes"});
  }
  // udiv -------------------------------------------------------------------------
  {
    const auto ip = synth::estimate(ip::buildUdiv8());
    CompileOptions opt;
    // The generated divider pipelines one restoring row per stage (how the
    // paper's udiv clocked 26% above the IP).
    opt.dpOptions.targetStageDelayNs = 3.0;
    const auto rc = compileAndEstimate("udiv", bench::kUdiv, opt);
    rows.push_back({"udiv", ip.fmaxMHz(), ip.slices, rc.fmaxMHz(), rc.slices,
                    "compiler-built restoring divider"});
  }
  // square root --------------------------------------------------------------------
  {
    const auto ip = synth::estimate(ip::buildSquareRoot24());
    const auto rc = compileAndEstimate("square_root", bench::kSquareRoot);
    rows.push_back({"square root", ip.fmaxMHz(), ip.slices, rc.fmaxMHz(), rc.slices,
                    "12-step digit recurrence unrolled"});
  }
  // cos -------------------------------------------------------------------------------
  {
    const auto ip = synth::estimate(ip::buildCosLut());
    rows.push_back({"cos", ip.fmaxMHz(), ip.slices, ip.fmaxMHz(), ip.slices,
                    "ROCCC instantiates the IP core"});
  }
  // arbitrary LUT ------------------------------------------------------------------------
  {
    std::vector<int64_t> table;
    for (int i = 0; i < 1024; ++i) table.push_back((i * i) % 65536 - 32768);
    const auto ip = synth::estimate(ip::buildArbitraryLut(table));
    rows.push_back({"arbitrary LUT", ip.fmaxMHz(), ip.slices, ip.fmaxMHz(), ip.slices,
                    "ROM IP instantiation"});
  }
  // FIR (x2 filters, LUT multiplier style) ---------------------------------------------------
  {
    const auto ip = synth::estimate(ip::buildFir5());
    const auto rc = compileAndEstimate("fir", bench::kFir); // one filter; the IP holds two
    rows.push_back({"FIR", ip.fmaxMHz(), ip.slices, rc.fmaxMHz(), 2 * rc.slices,
                    "two 5-tap filters, multiplier style LUT"});
  }
  // DCT ---------------------------------------------------------------------------------------
  {
    const auto ip = synth::estimate(ip::buildDct8());
    CompileOptions opt;
    // The paper's DCT trades clock for area: ROCCC ran at 73.5% of the IP
    // clock. A looser stage target reproduces that operating point.
    opt.dpOptions.targetStageDelayNs = 7.5;
    const auto rc = compileAndEstimate("dct", bench::kDct, opt);
    rows.push_back({"DCT", ip.fmaxMHz(), ip.slices, rc.fmaxMHz(), rc.slices,
                    "ROCCC: 8 outputs/clock vs IP 1/clock"});
  }
  // Wavelet (engine: datapath + smart buffer + controllers) -------------------------------------
  {
    const auto ip = synth::estimate(ip::buildWavelet53(64));
    CompileOptions opt;
    opt.dpOptions.targetStageDelayNs = 9.0; // the paper's ~104 MHz operating point
    Compiler c(opt);
    const CompileResult r = c.compileSource(bench::kWavelet);
    if (!r.ok) {
      std::fprintf(stderr, "wavelet compile failed:\n%s\n", r.diags.dump().c_str());
      return 1;
    }
    g_timings.push_back({"wavelet", r.passLog});
    auto rep = synth::estimate(r.module);
    g_timingRows.push_back({"wavelet", r.retiming, r.datapath.stageCount, rep});
    // Engine area adds the memory subsystem: a 5-row x 66-col image window
    // keeps 4 lines + 3 elements of 16-bit data on chip.
    const int64_t bufferBits = (4 * 66 + 3) * 16;
    synth::Resources engine = rep.res;
    engine += synth::memorySubsystemResources(bufferBits, /*addressGenerators=*/3, /*streams=*/3);
    rows.push_back({"Wavelet*", ip.fmaxMHz(), ip.slices, rep.fmaxMHz(), synth::slicesFor(engine),
                    "engine incl. addr gen + smart buffer"});
  }

  // --- print -------------------------------------------------------------------
  const auto& paper = ip::paperTable1();
  std::printf("Table 1: Xilinx IP vs ROCCC-generated hardware (this reproduction, with the\n");
  std::printf("paper's ISE 5.1i numbers in brackets). %%Clock and %%Area follow the paper's\n");
  std::printf("convention: ROCCC / IP.\n\n");
  std::printf("%-15s | %21s | %21s | %15s | %15s\n", "Example", "IP clock MHz [paper]",
              "IP area slice [ppr]", "ROCCC clock MHz", "ROCCC area slc");
  std::printf("%-15s | %21s | %21s | %15s | %15s | %7s [ppr] | %7s [ppr]\n", "", "", "", "", "",
              "%Clock", "%Area");
  std::printf("----------------+-----------------------+-----------------------+-----------------+"
              "-----------------+----------------+---------------\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const auto& p = paper[i];
    std::printf("%-15s | %9.0f [%5.0f]     | %9lld [%5d]     | %9.0f [%3.0f] | %9lld [%4d] | "
                "%5.3f [%5.3f] | %5.2f [%5.2f]\n",
                r.name.c_str(), r.ipClock, p.ipClockMHz, static_cast<long long>(r.ipArea),
                p.ipAreaSlices, r.rocccClock, p.rocccClockMHz, static_cast<long long>(r.rocccArea),
                p.rocccAreaSlices, r.rocccClock / r.ipClock, p.rocccClockMHz / p.ipClockMHz,
                static_cast<double>(r.rocccArea) / static_cast<double>(r.ipArea),
                static_cast<double>(p.rocccAreaSlices) / static_cast<double>(p.ipAreaSlices));
  }
  std::printf("\nNotes:\n");
  for (const Row& r : rows) {
    if (!r.note.empty()) std::printf("  %-15s %s\n", r.name.c_str(), r.note.c_str());
  }
  std::printf("  (*) wavelet baseline is the handwritten engine, as in the paper.\n");
  std::printf("\nShape checks (paper section 5 conclusions):\n");
  auto ratio = [&](size_t i) {
    return static_cast<double>(rows[i].rocccArea) / static_cast<double>(rows[i].ipArea);
  };
  std::printf("  - bit-manipulation kernels cost the compiler extra area: bit_correlator %.2fx, "
              "udiv %.2fx, square_root %.2fx (paper: 2.11x / 3.44x / 2.05x)\n",
              ratio(0), ratio(2), ratio(3));
  std::printf("  - lookup-table designs are identical (1.00x / 1.00x), as the compiler\n"
              "    instantiates the pre-existing IP components.\n");
  std::printf("  - high-computational-density FIR is near parity: %.2fx area (paper 1.09x).\n",
              ratio(6));
  std::printf("  - clock rates stay comparable across the board (paper: within ~10%% for\n"
              "    most rows; DCT intentionally trades clock for 8x throughput).\n");

  // --- timing / energy columns ---------------------------------------------------
  // The retime pass verdict next to the synthesis estimate for every
  // compiled kernel: pipeline depth, worst stage against the --target-ns
  // budget, modeled fmax on both yardsticks (the dp-level retime report and
  // the register-to-register netlist estimate), and the energy columns
  // (per-cycle pJ at 0.25 activity, energy-delay product).
  std::printf("\nTiming and energy per ROCCC kernel (retime @ per-row --target-ns):\n\n");
  std::printf("  %-15s | %6s | %8s | %11s | %12s | %6s | %9s | %10s\n", "kernel", "stages",
              "worst ns", "dp fmax MHz", "est fmax MHz", "slices", "pJ/cycle", "EDP pJ*ns");
  std::printf("  ----------------+--------+----------+-------------+--------------+--------+"
              "-----------+-----------\n");
  for (const TimingRow& t : g_timingRows) {
    std::printf("  %-15s | %6d | %8.2f | %11.1f | %12.1f | %6lld | %9.1f | %10.1f\n",
                t.name.c_str(), t.stageCount, t.retiming.worstStageNs, t.retiming.fmaxMHz,
                t.est.fmaxMHz(), static_cast<long long>(t.est.slices), t.est.energyPerCyclePj(),
                t.est.edpPjNs());
  }

  // --- retiming ablation ----------------------------------------------------------
  // Fixed greedy staging (--no-retime) vs the retime pass at the default
  // 4 ns budget vs retime at a tight 2 ns budget, on the nine Table 1
  // kernels. The acceptance bar: a tight budget must buy at least five
  // kernels a deeper pipeline AND a measurably higher modeled fmax than the
  // fixed staging.
  {
    struct AblationRow {
      int stages;
      double fmax;
      double edp;
    };
    auto compileConfig = [](const bench::NamedKernel& k, bool retime, double targetNs) {
      CompileOptions o;
      o.retimePipeline = retime;
      o.dpOptions.targetStageDelayNs =
          targetNs > 0 ? targetNs : (k.targetStageDelayNs > 0 ? k.targetStageDelayNs : 4.0);
      const CompileResult r = Compiler(o).compileSource(k.source);
      if (!r.ok) {
        std::fprintf(stderr, "%s: ablation compile failed\n", k.name);
        std::exit(1);
      }
      const auto est = synth::estimate(r.module);
      return AblationRow{r.datapath.stageCount, est.fmaxMHz(), est.edpPjNs()};
    };
    std::printf("\nRetiming ablation (fixed staging vs retime @ default vs retime @ 2 ns):\n\n");
    std::printf("  %-15s | %16s | %16s | %16s\n", "kernel", "fixed stg/MHz", "retime stg/MHz",
                "tight stg/MHz");
    std::printf("  ----------------+------------------+------------------+-----------------\n");
    int deeperAndFaster = 0;
    for (const auto& k : bench::kTable1Kernels) {
      const AblationRow fixed = compileConfig(k, false, 0);
      const AblationRow retimed = compileConfig(k, true, 0);
      const AblationRow tight = compileConfig(k, true, 2.0);
      const bool wins = tight.stages > fixed.stages && tight.fmax > fixed.fmax;
      if (wins) ++deeperAndFaster;
      std::printf("  %-15s | %6d / %7.1f | %6d / %7.1f | %6d / %7.1f %s\n", k.name, fixed.stages,
                  fixed.fmax, retimed.stages, retimed.fmax, tight.stages, tight.fmax,
                  wins ? "<- deeper+faster" : "");
    }
    std::printf("  tight vs fixed: %d/9 kernels pipeline deeper and clock higher\n",
                deeperAndFaster);
    if (deeperAndFaster < 5) {
      std::fprintf(stderr, "retiming ablation: only %d kernels improved (floor is 5)\n",
                   deeperAndFaster);
      return 1;
    }
  }

  // --- pipeline compile time ----------------------------------------------------
  // Per-kernel wall time through the PassManager pipeline, broken down by
  // layer (the CompileResult::passLog records), plus a machine-readable
  // JSON line per kernel for downstream tooling.
  std::printf("\nPipeline compile time per kernel (PassManager stats):\n\n");
  std::printf("  %-15s | %9s | %8s | %8s | %8s | %8s | %8s\n", "kernel", "total ms", "hlir ms",
              "mir ms", "dp ms", "rtl ms", "vhdl ms");
  std::printf("  ----------------+-----------+----------+----------+----------+----------+"
              "---------\n");
  for (const CompileTiming& t : g_timings) {
    std::printf("  %-15s | %9.3f | %8.3f | %8.3f | %8.3f | %8.3f | %8.3f\n", t.name.c_str(),
                t.totalMs(), t.layerMs(PassLayer::Hlir), t.layerMs(PassLayer::Mir),
                t.layerMs(PassLayer::Dp), t.layerMs(PassLayer::Rtl), t.layerMs(PassLayer::Vhdl));
  }
  std::printf("\nbench_table1 compile-time JSON:\n");
  std::printf("{\"kernels\": [");
  for (size_t i = 0; i < g_timings.size(); ++i) {
    const CompileTiming& t = g_timings[i];
    std::printf("%s{\"name\": \"%s\", \"compileMs\": %.3f, \"passes\": [", i ? ", " : "",
                t.name.c_str(), t.totalMs());
    bool first = true;
    for (const auto& p : t.passes) {
      if (!p.ran) continue;
      std::printf("%s{\"name\": \"%s\", \"layer\": \"%s\", \"wallMs\": %.4f}", first ? "" : ", ",
                  p.name.c_str(), passLayerName(p.layer), p.wallMs);
      first = false;
    }
    std::printf("]}");
  }
  std::printf("]}\n");

  // --- netlist engine comparison ------------------------------------------------
  // The same compiled modules, cosimulated end-to-end (smart buffer,
  // controllers, data path) on the reference interpreter vs the compiled
  // fast engine. Outputs must be identical; the fast engine is the default.
  struct EngineCase {
    const char* name;
    const char* src;
    double targetNs;
  };
  const EngineCase engineCases[] = {
      {"bit_correlator", bench::kBitCorrelator, 0},
      {"udiv", bench::kUdiv, 3.0},
      {"square_root", bench::kSquareRoot, 0},
      {"fir", bench::kFir, 0},
      {"dct", bench::kDct, 7.5},
  };
  const int kReps = 10;
  std::printf("\nNetlist engine comparison (full System::run, mean of %d runs):\n\n", kReps);
  std::printf("  %-15s | %10s | %10s | %8s | %s\n", "kernel", "ref ms", "fast ms", "speedup",
              "outputs");
  std::printf("  ----------------+------------+------------+----------+--------\n");
  for (const EngineCase& ec : engineCases) {
    CompileOptions opt;
    if (ec.targetNs > 0) opt.dpOptions.targetStageDelayNs = ec.targetNs;
    Compiler c(opt);
    const CompileResult r = c.compileSource(ec.src);
    if (!r.ok) {
      std::fprintf(stderr, "%s: compile failed\n", ec.name);
      return 1;
    }
    const auto io = randomInputs(r.kernel, 0x7ab1e);
    const auto [refMs, refOut] = timeEngine(r, io, rtl::SimEngine::Reference, kReps);
    const auto [fastMs, fastOut] = timeEngine(r, io, rtl::SimEngine::Fast, kReps);
    const bool same = refOut.arrays == fastOut.arrays && refOut.scalars == fastOut.scalars;
    std::printf("  %-15s | %10.3f | %10.3f | %7.1fx | %s\n", ec.name, refMs, fastMs,
                refMs / fastMs, same ? "MATCH" : "MISMATCH");
    if (!same) return 1;
  }

  // --- batch compilation throughput --------------------------------------------
  // The whole nine-kernel sweep as one CompileService batch, fanned out
  // across a worker pool (per-kernel options as in the rows above).
  // Determinism cross-check: the VHDL bytes per kernel must be identical at
  // every worker count — completion order is unobservable by construction.
  {
    std::vector<CompileJob> jobs;
    for (const auto& k : bench::kTable1Kernels) {
      CompileOptions o;
      if (k.targetStageDelayNs > 0) o.dpOptions.targetStageDelayNs = k.targetStageDelayNs;
      jobs.push_back({k.name, k.source, o});
    }
    const int kBatchReps = 3;
    std::printf("\nBatch compilation throughput (CompileService, nine Table 1 kernels, "
                "best of %d):\n\n", kBatchReps);
    std::printf("  %-8s | %10s | %12s | %s\n", "workers", "batch ms", "kernels/s", "determinism");
    std::printf("  ---------+------------+--------------+------------\n");
    std::vector<std::string> baselineVhdl;
    for (const int workers : {1, 2, 4, 8}) {
      const CompileService service(workers);
      double bestMs = 0;
      double bestRate = 0;
      bool deterministic = true;
      for (int rep = 0; rep < kBatchReps; ++rep) {
        const BatchResult batch = service.compileBatch(jobs);
        if (!batch.allOk()) {
          std::fprintf(stderr, "batch compile failed at %d workers\n", workers);
          return 1;
        }
        if (bestMs == 0 || batch.wallMs < bestMs) {
          bestMs = batch.wallMs;
          bestRate = batch.kernelsPerSecond();
        }
        if (baselineVhdl.empty()) {
          for (const auto& r : batch.results) baselineVhdl.push_back(r.vhdl);
        } else {
          for (size_t i = 0; i < batch.results.size(); ++i) {
            deterministic = deterministic && batch.results[i].vhdl == baselineVhdl[i];
          }
        }
      }
      std::printf("  %8d | %10.1f | %12.1f | %s\n", workers, bestMs, bestRate,
                  deterministic ? "byte-identical" : "MISMATCH");
      if (!deterministic) return 1;
    }
  }

  // --- compile cache: cold vs warm ----------------------------------------------
  // The Table 1 sweep widened to unroll {1, 2, 4} (27 jobs) through
  // CompileCache. Pass 1 compiles cold into a fresh in-memory cache; pass 2
  // re-submits the identical batch and is served warm. A warm hit is held
  // to byte identity with the cold compile (VHDL bytes and outcome), and
  // the 8-worker warm/cold kernels/s ratio must clear 5x — the acceptance
  // floor EXPERIMENTS.md records the measured rates against.
  {
    std::vector<CompileJob> jobs;
    for (const auto& k : bench::kTable1Kernels) {
      for (const int unroll : {1, 2, 4}) {
        CompileOptions o;
        if (k.targetStageDelayNs > 0) o.dpOptions.targetStageDelayNs = k.targetStageDelayNs;
        o.unrollFactor = unroll;
        jobs.push_back({std::string(k.name) + "/u" + std::to_string(unroll), k.source, o});
      }
    }
    const int kCacheReps = 3;
    std::printf("\nCompile cache cold vs warm (Table 1 x unroll 1/2/4 = %zu jobs, best of %d):\n\n",
                jobs.size(), kCacheReps);
    std::printf("  %-8s | %9s | %11s | %9s | %11s | %8s | %s\n", "workers", "cold ms",
                "cold krn/s", "warm ms", "warm krn/s", "speedup", "identity");
    std::printf("  ---------+-----------+-------------+-----------+-------------+----------+"
                "---------\n");
    double speedupAt8 = 0;
    for (const int workers : {1, 2, 4, 8}) {
      double bestColdMs = 0;
      double bestWarmMs = 0;
      double bestColdRate = 0;
      double bestWarmRate = 0;
      bool identical = true;
      for (int rep = 0; rep < kCacheReps; ++rep) {
        CompileService service(workers);
        auto cache = std::make_shared<CompileCache>();
        service.setCache(cache);
        const BatchResult cold = service.compileBatch(jobs);
        const BatchResult warm = service.compileBatch(jobs);
        if (!cold.allOk() || !warm.allOk()) {
          std::fprintf(stderr, "cache bench: batch failed at %d workers\n", workers);
          return 1;
        }
        for (size_t i = 0; i < jobs.size(); ++i) {
          identical = identical && warm.results[i].outcome == cold.results[i].outcome &&
                      warm.results[i].vhdl == cold.results[i].vhdl;
        }
        if (bestColdMs == 0 || cold.wallMs < bestColdMs) {
          bestColdMs = cold.wallMs;
          bestColdRate = cold.kernelsPerSecond();
        }
        if (bestWarmMs == 0 || warm.wallMs < bestWarmMs) {
          bestWarmMs = warm.wallMs;
          bestWarmRate = warm.kernelsPerSecond();
        }
      }
      const double speedup = bestWarmRate / bestColdRate;
      if (workers == 8) speedupAt8 = speedup;
      std::printf("  %8d | %9.1f | %11.1f | %9.2f | %11.1f | %7.1fx | %s\n", workers, bestColdMs,
                  bestColdRate, bestWarmMs, bestWarmRate, speedup,
                  identical ? "byte-identical" : "MISMATCH");
      if (!identical) return 1;
    }
    if (speedupAt8 < 5.0) {
      std::fprintf(stderr, "cache bench: warm speedup at 8 workers %.1fx is below the 5x floor\n",
                   speedupAt8);
      return 1;
    }
  }

  // --- budget-checkpoint overhead ----------------------------------------------
  // The cost of per-job governance (PR 4): the same nine kernels compiled
  // with no CompileBudget limits vs an armed-but-never-triggered budget
  // (generous deadline + IR-node + unroll-product caps, which turns on the
  // deadline clock reads and the pass-boundary IR walks). The whole-sweep
  // overhead is what EXPERIMENTS.md records as <1%.
  {
    const int kGovReps = 5;
    std::printf("\nBudget-checkpoint overhead (nine-kernel sweep, best of %d):\n\n", kGovReps);
    std::printf("  %-15s | %12s | %12s | %s\n", "kernel", "disarmed ms", "governed ms",
                "overhead");
    std::printf("  ----------------+--------------+--------------+---------\n");
    auto sweepMs = [&](const CompileOptions& base, bool governed, const char* only) {
      double total = 0;
      for (const auto& k : bench::kTable1Kernels) {
        if (only && std::string(only) != k.name) continue;
        CompileOptions o = base;
        if (k.targetStageDelayNs > 0) o.dpOptions.targetStageDelayNs = k.targetStageDelayNs;
        if (governed) {
          o.budget.timeoutMs = 600'000;
          o.budget.maxIrNodes = 50'000'000;
          o.budget.maxUnrollProduct = 1'000'000'000;
        }
        const auto t0 = std::chrono::steady_clock::now();
        const Compiler c(o);
        const CompileResult r = c.compileSource(k.source);
        const auto t1 = std::chrono::steady_clock::now();
        if (!r.ok) {
          std::fprintf(stderr, "%s: governed compile failed\n", k.name);
          std::exit(1);
        }
        total += std::chrono::duration<double, std::milli>(t1 - t0).count();
      }
      return total;
    };
    double sweepPlain = 0;
    double sweepGoverned = 0;
    for (const auto& k : bench::kTable1Kernels) {
      double plain = 0;
      double governed = 0;
      for (int rep = 0; rep < kGovReps; ++rep) {
        const double p = sweepMs({}, false, k.name);
        const double g = sweepMs({}, true, k.name);
        if (plain == 0 || p < plain) plain = p;
        if (governed == 0 || g < governed) governed = g;
      }
      sweepPlain += plain;
      sweepGoverned += governed;
      std::printf("  %-15s | %12.3f | %12.3f | %+7.2f%%\n", k.name, plain, governed,
                  (governed - plain) * 100.0 / plain);
    }
    std::printf("  ----------------+--------------+--------------+---------\n");
    std::printf("  %-15s | %12.3f | %12.3f | %+7.2f%%\n", "sweep total", sweepPlain,
                sweepGoverned, (sweepGoverned - sweepPlain) * 100.0 / sweepPlain);
  }
  return 0;
}
