#include "ip/ip.hpp"

#include <cmath>

#include "support/cosrom.hpp"
#include "support/strings.hpp"

namespace roccc::ip {

using rtl::CellKind;
using rtl::Module;

const std::vector<PaperRow>& paperTable1() {
  static const std::vector<PaperRow> kRows = {
      {"bit_correlator", 212, 9, 144, 19},
      {"mul_acc", 238, 18, 238, 59},
      {"udiv", 216, 144, 272, 495},
      {"square_root", 167, 585, 220, 1199},
      {"cos", 170, 150, 170, 150},
      {"arbitrary_lut", 170, 549, 170, 549},
      {"fir", 185, 270, 194, 293},
      {"dct", 181, 412, 133, 724},
      {"wavelet", 104, 1464, 101, 2415},
  };
  return kRows;
}

namespace {

/// Builder helpers over a Module.
struct B {
  Module& m;

  int net(int width, bool isSigned, const std::string& name) {
    return m.addNet(ScalarType::make(width, isSigned), name);
  }
  int in(int width, bool isSigned, const std::string& name) {
    const int n = net(width, isSigned, name);
    m.inputPorts.push_back(n);
    m.inputNames.push_back(name);
    return n;
  }
  void out(int n, const std::string& name) {
    m.outputPorts.push_back(n);
    m.outputNames.push_back(name);
  }
  int cell(CellKind k, std::vector<int> ins, int width, bool isSigned, const std::string& name) {
    const int o = net(width, isSigned, name);
    m.addCell(k, std::move(ins), o);
    return o;
  }
  int reg(int d, const std::string& name, int64_t init = 0) {
    const ScalarType t = m.nets[static_cast<size_t>(d)].type;
    const int o = m.addNet(t, name);
    const int c = m.addCell(CellKind::Reg, {d}, o);
    m.cells[static_cast<size_t>(c)].imm = init;
    return o;
  }
  int konst(int64_t v, int width, bool isSigned = false) {
    return m.addConst(v, ScalarType::make(width, isSigned));
  }
  int slice(int src, int hi, int lo, const std::string& name) {
    const int o = net(hi - lo + 1, false, name);
    const int c = m.addCell(CellKind::Slice, {src}, o);
    m.cells[static_cast<size_t>(c)].aux0 = hi;
    m.cells[static_cast<size_t>(c)].aux1 = lo;
    return o;
  }
  int cat(int hiNet, int loNet, const std::string& name) {
    const int w = m.nets[static_cast<size_t>(hiNet)].type.width + m.nets[static_cast<size_t>(loNet)].type.width;
    return cell(CellKind::Concat, {hiNet, loNet}, w, false, name);
  }
  int resize(int src, int width, bool isSigned, const std::string& name) {
    return cell(CellKind::Resize, {src}, width, isSigned, name);
  }
  int rom(const std::vector<int64_t>& data, int addr, int width, bool isSigned,
          const std::string& name) {
    const int o = net(width, isSigned, name);
    const int c = m.addCell(CellKind::Rom, {addr}, o);
    m.cells[static_cast<size_t>(c)].romData = data;
    m.cells[static_cast<size_t>(c)].romElemType = ScalarType::make(width, isSigned);
    m.cells[static_cast<size_t>(c)].romName = name;
    return o;
  }
};

/// x * c as a pipelet of CSD shift-adds at width W (signed).
int csdMultiply(B& b, int x, int64_t c, int W, const std::string& tag) {
  const bool neg = c < 0;
  if (neg) c = -c;
  if (c == 0) return b.konst(0, W, true);
  int acc = -1;
  int64_t rem = c;
  int pos = 0;
  int term = 0;
  while (rem != 0) {
    if (rem & 1) {
      const int digit = 2 - static_cast<int>(rem & 3);
      const int shifted =
          pos == 0 ? b.resize(x, W, true, fmt("%0_sh%1", tag, pos))
                   : b.cell(CellKind::Shl, {b.resize(x, W, true, fmt("%0_x%1", tag, pos)),
                                            b.konst(pos, 6)},
                            W, true, fmt("%0_sh%1", tag, pos));
      if (acc < 0) {
        acc = digit > 0 ? shifted : b.cell(CellKind::Neg, {shifted}, W, true, fmt("%0_n%1", tag, pos));
      } else {
        acc = b.cell(digit > 0 ? CellKind::Add : CellKind::Sub, {acc, shifted}, W, true,
                     fmt("%0_a%1", tag, pos));
      }
      rem -= digit;
      ++term;
    }
    rem >>= 1;
    ++pos;
  }
  (void)term;
  if (neg) acc = b.cell(CellKind::Neg, {acc}, W, true, tag + "_neg");
  return acc;
}

} // namespace

// ---------------------------------------------------------------------------

rtl::Module buildBitCorrelator(uint8_t mask) {
  Module m;
  m.name = "ip_bit_correlator";
  B b{m};
  const int x = b.in(8, false, "x");
  // XNOR against the constant folds into the popcount LUTs; model as a
  // single Xor with ~mask (one LUT level) feeding a 3:2 compressor tree.
  const int inv = b.cell(CellKind::Xor, {x, b.konst(static_cast<uint8_t>(~mask), 8)}, 8, false, "match");
  // Pairwise adds of bit slices.
  std::vector<int> layer;
  for (int i = 0; i < 8; i += 2) {
    const int s0 = b.slice(inv, i, i, fmt("b%0", i));
    const int s1 = b.slice(inv, i + 1, i + 1, fmt("b%0", i + 1));
    layer.push_back(b.cell(CellKind::Add, {b.resize(s0, 2, false, fmt("w%0", i)),
                                           b.resize(s1, 2, false, fmt("w%0", i + 1))},
                           2, false, fmt("p%0", i / 2)));
  }
  while (layer.size() > 1) {
    std::vector<int> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      const int w = m.nets[static_cast<size_t>(layer[i])].type.width + 1;
      next.push_back(b.cell(CellKind::Add,
                            {b.resize(layer[i], w, false, fmt("e%0_%1", layer.size(), i)),
                             b.resize(layer[i + 1], w, false, fmt("f%0_%1", layer.size(), i))},
                            w, false, fmt("s%0_%1", layer.size(), i)));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  const int count = b.reg(b.resize(layer[0], 4, false, "count_c"), "count_r");
  b.out(count, "count");
  m.latency = 1;
  return m;
}

rtl::Module buildMulAcc() {
  Module m;
  m.name = "ip_mul_acc";
  B b{m};
  const int a = b.in(12, true, "a");
  const int x = b.in(12, true, "b");
  // MULT18X18 with a product register, then the accumulator. The IP's 'nd'
  // port maps to the FF clock-enable (the module-global CE) — zero fabric.
  const int prod = b.cell(CellKind::Mul, {a, x}, 24, true, "prod");
  const int prodR = b.reg(prod, "prod_r");
  const int accNext = b.net(32, true, "acc_next");
  const int accR = b.reg(accNext, "acc_r");
  {
    const int widened = b.resize(prodR, 32, true, "prod_w");
    m.addCell(CellKind::Add, {widened, accR}, accNext);
  }
  b.out(accR, "acc");
  m.latency = 2;
  return m;
}

rtl::Module buildUdiv8() {
  Module m;
  m.name = "ip_udiv8";
  B b{m};
  const int n = b.in(8, false, "n");
  const int d = b.in(8, false, "d");
  // Pipelined restoring rows. Row k consumes the dividend bit (7-k).
  int nPipe = n;
  int dPipe = d;
  int r = b.konst(0, 8);
  std::vector<int> qBits;
  for (int k = 7; k >= 0; --k) {
    const int bit = b.slice(nPipe, k, k, fmt("nb%0", k));
    const int rsh = b.cat(b.resize(r, 8, false, fmt("rw%0", k)), bit, fmt("rsh%0", k)); // 9 bits
    const int dw = b.resize(dPipe, 9, false, fmt("dw%0", k));
    const int ge = b.cell(CellKind::Ge, {rsh, dw}, 1, false, fmt("ge%0", k));
    const int diff = b.cell(CellKind::Sub, {rsh, dw}, 9, false, fmt("df%0", k));
    const int sel = b.cell(CellKind::Mux, {ge, diff, rsh}, 9, false, fmt("rm%0", k));
    // Stage registers: remainder, quotient bit, and the forwarded operands.
    r = b.reg(b.resize(sel, 8, false, fmt("rn%0", k)), fmt("r_r%0", k));
    qBits.push_back(b.reg(ge, fmt("q_r%0", k)));
    // Quotient bits already produced ride along one more stage so all
    // eight emerge aligned after the last row.
    for (auto& q : qBits) {
      if (q != qBits.back()) q = b.reg(q, fmt("q%0_r%1", &q - qBits.data(), k));
    }
    if (k > 0) {
      nPipe = b.reg(nPipe, fmt("n_r%0", k));
      dPipe = b.reg(dPipe, fmt("d_r%0", k));
    }
  }
  // Assemble q (qBits[0] is the MSB).
  int q = qBits[0];
  for (size_t i = 1; i < qBits.size(); ++i) q = b.cat(q, qBits[i], fmt("qcat%0", i));
  b.out(q, "q");
  m.latency = 8;
  return m;
}

rtl::Module buildSquareRoot24() {
  Module m;
  m.name = "ip_sqrt24";
  B b{m};
  const int x = b.in(24, false, "x");
  // Digit-recurrence: 12 pipelined stages; stage k decides result bit
  // (11-k) by trial subtraction of (root | 1<<k)^2 ... implemented in the
  // classical shift-based form over a 26-bit partial remainder.
  int rem = b.konst(0, 26);
  int root = b.konst(0, 13);
  int xPipe = x;
  for (int k = 11; k >= 0; --k) {
    // Bring down two bits of x.
    const int two = b.slice(xPipe, 2 * k + 1, 2 * k, fmt("x2_%0", k));
    const int remSh = b.cat(b.resize(rem, 24, false, fmt("rs%0", k)), two, fmt("rin%0", k)); // 26
    // Trial: t = (root << 2) | 1
    const int rootSh = b.cell(CellKind::Shl, {b.resize(root, 26, false, fmt("rt%0", k)),
                                              b.konst(2, 3)},
                              26, false, fmt("r4_%0", k));
    const int trial = b.cell(CellKind::Or, {rootSh, b.konst(1, 26)}, 26, false, fmt("tr%0", k));
    const int ge = b.cell(CellKind::Ge, {remSh, trial}, 1, false, fmt("ge%0", k));
    const int diff = b.cell(CellKind::Sub, {remSh, trial}, 26, false, fmt("df%0", k));
    const int remSel = b.cell(CellKind::Mux, {ge, diff, remSh}, 26, false, fmt("rsel%0", k));
    // root = (root << 1) | ge
    const int rootNext = b.cat(b.resize(root, 12, false, fmt("rn%0", k)), ge, fmt("rc%0", k)); // 13
    rem = b.reg(remSel, fmt("rem_r%0", k));
    root = b.reg(rootNext, fmt("root_r%0", k));
    if (k > 0) xPipe = b.reg(xPipe, fmt("x_r%0", k));
  }
  b.out(b.resize(root, 12, false, "root_out"), "r");
  m.latency = 12;
  return m;
}

rtl::Module buildCosLut() {
  Module m;
  m.name = "ip_cos";
  B b{m};
  const int phase = b.in(10, false, "phase");
  // Half-wave storage (paper section 5: the Virtex-II cos/sin LUT "stores
  // only half wave"): 512 x 16, with cos(x + pi) = -cos(x) reconstructing
  // the second half exactly (truncation commutes with negation).
  std::vector<int64_t> half;
  for (int i = 0; i < 512; ++i) half.push_back(cosRomEntry(i, false));
  const int addr = b.slice(phase, 8, 0, "addr_lo");
  const int sgn = b.slice(phase, 9, 9, "half_sel");
  const int raw = b.rom(half, addr, 16, true, "cos_rom_h");
  const int negv = b.cell(CellKind::Neg, {raw}, 16, true, "neg");
  const int out = b.reg(b.cell(CellKind::Mux, {sgn, negv, raw}, 16, true, "sel"), "c_r");
  b.out(out, "c");
  m.latency = 1;
  return m;
}

rtl::Module buildArbitraryLut(const std::vector<int64_t>& contents) {
  Module m;
  m.name = "ip_arbitrary_lut";
  B b{m};
  const int phase = b.in(10, false, "addr");
  std::vector<int64_t> data = contents;
  data.resize(1024, 0);
  const int raw = b.rom(data, phase, 16, true, "full_rom");
  const int out = b.reg(raw, "d_r");
  b.out(out, "d");
  m.latency = 1;
  return m;
}

rtl::Module buildFir5() {
  Module m;
  m.name = "ip_fir5";
  B b{m};
  static const int64_t kCoeff[5] = {3, 5, 7, 9, -1};
  for (int f = 0; f < 2; ++f) {
    const int x = b.in(8, true, fmt("x%0", f));
    // Tap delay line.
    std::vector<int> taps{x};
    for (int t = 1; t < 5; ++t) taps.push_back(b.reg(taps.back(), fmt("f%0_tap%1", f, t)));
    // Constant multipliers (shift-add DA style) + balanced adder tree with
    // one pipeline register level.
    std::vector<int> prods;
    for (int t = 0; t < 5; ++t) {
      prods.push_back(b.reg(
          csdMultiply(b, taps[static_cast<size_t>(t)], kCoeff[t], 16, fmt("f%0_c%1", f, t)),
          fmt("f%0_pr%1", f, t)));
    }
    const int s01 = b.cell(CellKind::Add, {prods[0], prods[1]}, 16, true, fmt("f%0_s01", f));
    const int s23 = b.cell(CellKind::Add, {prods[2], prods[3]}, 16, true, fmt("f%0_s23", f));
    const int s0123 = b.reg(b.cell(CellKind::Add, {s01, s23}, 16, true, fmt("f%0_s0123", f)),
                            fmt("f%0_p1", f));
    const int p4 = b.reg(prods[4], fmt("f%0_p4r", f));
    const int y = b.reg(b.cell(CellKind::Add, {s0123, p4}, 16, true, fmt("f%0_y", f)),
                        fmt("f%0_yr", f));
    b.out(y, fmt("y%0", f));
  }
  m.latency = 3;
  return m;
}

rtl::Module buildDct8() {
  Module m;
  m.name = "ip_dct8";
  B b{m};
  // ROM-accumulator distributed-arithmetic DCT: eight parallel MAC units
  // (one per output coefficient), each a 64x12 coefficient ROM plus a
  // 19-bit adder/accumulator, time-multiplexed over the 8 input samples so
  // the engine sustains one output per clock (the Xilinx IP's rate).
  const int xin = b.in(8, true, "x");
  std::vector<int> xr{xin};
  for (int i = 1; i < 8; ++i) xr.push_back(b.reg(xr.back(), fmt("x_r%0", i)));
  const int cntNext = b.net(3, false, "cnt_next");
  const int cnt = b.reg(cntNext, "cnt");
  m.addCell(CellKind::Add, {cnt, b.konst(1, 3)}, cntNext);

  int lastAcc = -1;
  for (int k = 0; k < 8; ++k) {
    std::vector<int64_t> rom;
    for (int n = 0; n < 8; ++n) {
      for (int rep = 0; rep < 8; ++rep) {
        rom.push_back(static_cast<int64_t>(
            std::lround(std::cos((2 * n + 1) * k * 3.14159265358979 / 16.0) * 1024)));
      }
    }
    const int addr = b.cat(cnt, b.slice(xr[static_cast<size_t>(k)], 7, 5, fmt("xs%0", k)),
                           fmt("a%0", k));
    const int coef = b.rom(rom, b.resize(addr, 6, false, fmt("aw%0", k)), 12, true, fmt("rom%0", k));
    const int prod = b.cell(CellKind::Add, {b.resize(coef, 19, true, fmt("cw%0", k)),
                                            b.resize(xr[static_cast<size_t>(k)], 19, true, fmt("xw%0", k))},
                            19, true, fmt("pp%0", k));
    const int accNext = b.net(19, true, fmt("acc%0_next", k));
    const int acc = b.reg(accNext, fmt("acc%0", k));
    m.addCell(CellKind::Add, {prod, acc}, accNext);
    lastAcc = acc;
  }
  // Output selector: one coefficient per clock.
  const int y = b.reg(lastAcc, "y_r");
  b.out(y, "y");
  m.latency = 9;
  return m;
}

rtl::Module buildWavelet53(int cols) {
  Module m;
  m.name = "ip_wavelet53";
  B b{m};
  const int x = b.in(16, true, "x");
  // Two line buffers (FF-based shift lines) + the (5,3) lifting datapath:
  //   predict: d = x1 - ((x0 + x2) >> 1)
  //   update:  s = x0 + ((d_prev + d) + 2 >> 2)
  // Horizontal stage uses 2-tap delay registers; vertical stage uses the
  // line buffers. The handwritten engine keeps everything at 16 bits.
  // Two line buffers: cols x 16 bits each. They advance on the pixel-valid
  // strobe (a clock-enable), so they stay FF-based rather than collapsing
  // into SRL16s — the (5,3) lifting form only needs TWO lines of storage
  // (predict/update reuse), the hand design's edge over a naive 5-row
  // window buffer.
  const int pixValid = b.in(1, false, "pix_valid");
  int prev = x;
  for (int i = 0; i < 2 * cols; ++i) {
    const ScalarType t16 = ScalarType::make(16, true);
    const int o = b.m.addNet(t16, fmt("line_%0", i));
    b.m.addCell(CellKind::Reg, {prev, pixValid}, o);
    prev = o;
  }
  const int x0 = b.reg(x, "h_x0");
  const int x1 = b.reg(x0, "h_x1");
  const int x2 = b.reg(x1, "h_x2");
  const int s02 = b.cell(CellKind::Add, {b.resize(x0, 17, true, "w0"), b.resize(x2, 17, true, "w2")},
                         17, true, "s02");
  const int half = b.cell(CellKind::Shr, {s02, b.konst(1, 2)}, 17, true, "half");
  const int d1 = b.cell(CellKind::Sub, {b.resize(x1, 17, true, "w1"), half}, 17, true, "d");
  const int dR = b.reg(d1, "d_r");
  const int dRR = b.reg(dR, "d_rr");
  const int dsum = b.cell(CellKind::Add, {dRR, dR}, 18, true, "dsum");
  const int rounded = b.cell(CellKind::Add, {dsum, b.konst(2, 3)}, 18, true, "round");
  const int upd = b.cell(CellKind::Shr, {rounded, b.konst(2, 3)}, 18, true, "upd");
  const int s = b.cell(CellKind::Add, {b.resize(x0, 18, true, "w0b"), upd}, 18, true, "s");
  const int sOut = b.reg(b.resize(s, 16, true, "s_n"), "s_out");
  const int dOut = b.reg(b.resize(dR, 16, true, "d_n"), "d_out");
  b.out(sOut, "s");
  b.out(dOut, "d");
  (void)prev;
  m.latency = 2;
  return m;
}

} // namespace roccc::ip
