/* Counts elements above a runtime threshold: scalar input plus a feedback
   counter that wraps at its 8-bit width. */
uint8 cnt = 0;
void thresh_count(const int12 A[64], int12 t, uint8* n) {
  int i;
  for (i = 0; i < 64; i++) {
    if (A[i] > t) {
      cnt = cnt + 1;
    }
  }
  *n = cnt;
}
