// Video-processing scenario (the paper's section 3 notes that sliding
// windows over two-dimensional data are exactly what Streams-C could not
// express): motion detection by frame differencing — TWO 2-D input streams
// flow through line-buffered smart buffers into one data path that
// thresholds the blurred difference.
//
//   $ ./motion_detect
#include <cmath>
#include <cstdio>

#include "roccc/compiler.hpp"
#include "synth/estimate.hpp"

namespace {

constexpr int kW = 32;
constexpr int kH = 20;

const char* kKernel = R"(
void motion(const uint8 PREV[20][32], const uint8 CUR[20][32], uint1 MASK[18][30]) {
  int i;
  int j;
  int d00;
  int d01;
  int d02;
  int d10;
  int d11;
  int d12;
  int d20;
  int d21;
  int d22;
  int blur;
  for (i = 0; i < 18; i++) {
    for (j = 0; j < 30; j++) {
      d00 = CUR[i][j]     - PREV[i][j];     if (d00 < 0) { d00 = -d00; }
      d01 = CUR[i][j+1]   - PREV[i][j+1];   if (d01 < 0) { d01 = -d01; }
      d02 = CUR[i][j+2]   - PREV[i][j+2];   if (d02 < 0) { d02 = -d02; }
      d10 = CUR[i+1][j]   - PREV[i+1][j];   if (d10 < 0) { d10 = -d10; }
      d11 = CUR[i+1][j+1] - PREV[i+1][j+1]; if (d11 < 0) { d11 = -d11; }
      d12 = CUR[i+1][j+2] - PREV[i+1][j+2]; if (d12 < 0) { d12 = -d12; }
      d20 = CUR[i+2][j]   - PREV[i+2][j];   if (d20 < 0) { d20 = -d20; }
      d21 = CUR[i+2][j+1] - PREV[i+2][j+1]; if (d21 < 0) { d21 = -d21; }
      d22 = CUR[i+2][j+2] - PREV[i+2][j+2]; if (d22 < 0) { d22 = -d22; }
      blur = d00 + d01 + d02 + d10 + 2*d11 + d12 + d20 + d21 + d22;
      if (blur > 160) { MASK[i][j] = 1; } else { MASK[i][j] = 0; }
    }
  }
}
)";

int64_t pixel(int x, int y, double cx) {
  const double dx = x - cx, dy = y - 10.0;
  return dx * dx + dy * dy < 30.0 ? 210 : 25;
}

} // namespace

int main() {
  // Two frames of a ball moving right.
  roccc::interp::KernelIO io;
  for (int y = 0; y < kH; ++y) {
    for (int x = 0; x < kW; ++x) {
      io.arrays["PREV"].push_back(pixel(x, y, 10.0));
      io.arrays["CUR"].push_back(pixel(x, y, 16.0));
    }
  }

  roccc::Compiler compiler;
  const auto r = compiler.compileSource(kKernel);
  if (!r.ok) {
    std::fprintf(stderr, "%s\n", r.diags.dump().c_str());
    return 1;
  }
  const auto cosim = roccc::cosimulate(r, kKernel, io);
  if (!cosim.match) {
    std::fprintf(stderr, "cosim mismatch: %s\n", cosim.mismatch.c_str());
    return 1;
  }

  const auto rep = roccc::synth::estimate(r.module);
  std::printf("motion detector: two 2-D input streams, 3x3 windows each\n");
  std::printf("  smart buffers: %lld elements total (two line-buffered streams)\n",
              static_cast<long long>(cosim.stats.bufferCapacityElems));
  std::printf("  %lld cycles for %lld pixels, BRAM reads %lld (each pixel of each frame once)\n",
              static_cast<long long>(cosim.stats.cycles),
              static_cast<long long>(cosim.stats.iterations),
              static_cast<long long>(cosim.stats.bramReads));
  std::printf("  estimate: %s\n\n", rep.summary().c_str());

  const auto& mask = cosim.hardware.arrays.at("MASK");
  std::printf("motion mask (hardware output): '#' = motion detected\n");
  for (int y = 0; y < 18; ++y) {
    std::printf("  ");
    for (int x = 0; x < 30; ++x) {
      std::printf("%c", mask[static_cast<size_t>(y * 30 + x)] ? '#' : '.');
    }
    std::printf("\n");
  }
  return 0;
}
