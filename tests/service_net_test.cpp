// Tests for the roccc-ccd compile service (src/roccc/service_net.hpp) and
// the JSON layer beneath it (src/support/json.hpp).
//
// The load-bearing properties:
//   - protocol robustness: malformed / truncated / oversized / wrong-version
//     frames each get a *typed* error response (or, for a truncated frame,
//     a silent close) — never a crash, never a disconnect-without-reply for
//     an answerable frame;
//   - byte-identity: a daemon-served compile returns exactly the bytes a
//     local CompileService run of the same (source, options) produces —
//     including under a 256-connection stampede;
//   - bounded admission: queue-full / quota-exceeded / draining rejections
//     are deterministic (batch admission is atomic up front) and the
//     daemon keeps serving afterward;
//   - fault containment carries over the socket: an injected fault is an
//     `internal-error` response row, and the daemon serves on.
//
// Suites are named ServiceNet* so the TSan CI job's -R regex picks up the
// whole file.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "../bench/kernels.hpp"
#include "roccc/driver.hpp"
#include "roccc/service_net.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"

namespace roccc {
namespace {

namespace fs = std::filesystem;
using json::Value;

// A small valid kernel, cheap enough to compile hundreds of times.
const char* kSmallKernel = "void k(const int8 A[16], int16 C[12]) {\n"
                           "  int i;\n"
                           "  for (i = 0; i < 12; i++) { C[i] = A[i] + A[i+4]; }\n"
                           "}\n";

/// Short unique socket path (sun_path caps at ~108 bytes, so the gtest
/// temp root — always short in practice — is the safe place).
std::string freshSocket(const std::string& tag) {
  const std::string path = ::testing::TempDir() + "roccc_svc_" + tag + ".sock";
  fs::remove(path);
  return path;
}

std::string freshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "roccc_svc_" + tag;
  fs::remove_all(dir);
  return dir;
}

/// Starts a daemon for one test and connects clients to it.
struct Harness {
  ServiceConfig cfg;
  std::unique_ptr<ServiceDaemon> daemon;

  explicit Harness(const std::string& tag) { cfg.socketPath = freshSocket(tag); }

  void start() {
    daemon = std::make_unique<ServiceDaemon>(cfg);
    std::string error;
    ASSERT_TRUE(daemon->start(error)) << error;
  }

  std::unique_ptr<ServiceClient> connect() {
    auto client = std::make_unique<ServiceClient>();
    std::string error;
    EXPECT_TRUE(client->connect(cfg.socketPath, error)) << error;
    return client;
  }
};

Value pingRequest() {
  Value req = Value::object();
  req.set("type", Value::string("ping"));
  return req;
}

/// The daemon's `error.code` field, or "" when the response is not an error.
std::string errorCode(const Value& resp) {
  const Value* type = resp.find("type");
  if (!type || !type->isString() || type->asString() != "error") return "";
  const Value* e = resp.find("error");
  const Value* code = e ? e->find("code") : nullptr;
  return code && code->isString() ? code->asString() : "";
}

std::string fieldString(const Value& v, const char* key) {
  const Value* f = v.find(key);
  return f && f->isString() ? f->asString() : "";
}

/// Reference bytes: the same contained job body the daemon runs.
CompileResult referenceCompile(const std::string& source, const CompileOptions& options = {}) {
  return runContainedJob({"ref", source, options});
}

// --- the JSON layer ----------------------------------------------------------

TEST(ServiceNetJson, RoundTripPreservesStructureAndOrder) {
  Value v = Value::object();
  v.set("b", Value::number(int64_t{2}));
  v.set("a", Value::number(3.5));
  Value arr = Value::array();
  arr.push(Value::boolean(true));
  arr.push(Value::null());
  arr.push(Value::string("x\"y\n"));
  v.set("list", std::move(arr));
  // Insertion order is preserved (not sorted) — byte-deterministic output.
  const std::string text = v.dump();
  EXPECT_EQ(text, "{\"b\":2,\"a\":3.5,\"list\":[true,null,\"x\\\"y\\n\"]}");
  Value back;
  std::string error;
  ASSERT_TRUE(json::parse(text, back, error)) << error;
  EXPECT_EQ(back.dump(), text);
}

TEST(ServiceNetJson, IntegersRoundTripExactly) {
  Value v;
  std::string error;
  ASSERT_TRUE(json::parse("[9007199254740993,-42,0,1e2]", v, error)) << error;
  ASSERT_EQ(v.items().size(), 4u);
  EXPECT_TRUE(v.items()[0].isIntegral());
  EXPECT_EQ(v.items()[0].asInt(), 9007199254740993ll); // above 2^53: double would lose it
  EXPECT_EQ(v.items()[1].asInt(), -42);
  // Exponent form normalizes to the integer it denotes on serialization.
  EXPECT_EQ(v.items()[3].asInt(), 100);
  EXPECT_EQ(v.dump(), "[9007199254740993,-42,0,100]");
}

TEST(ServiceNetJson, SerializerNeverEmitsRawNewlines) {
  Value v = Value::object();
  v.set("s", Value::string("line1\nline2\r\ttab\x01"));
  const std::string text = v.dump();
  EXPECT_EQ(text.find('\n'), std::string::npos);
  EXPECT_EQ(text.find('\r'), std::string::npos);
  Value back;
  std::string error;
  ASSERT_TRUE(json::parse(text, back, error));
  EXPECT_EQ(fieldString(back, "s"), "line1\nline2\r\ttab\x01");
}

TEST(ServiceNetJson, StrictParserRejections) {
  Value v;
  std::string error;
  EXPECT_FALSE(json::parse("", v, error));
  EXPECT_FALSE(json::parse("{\"a\":1,}", v, error));   // trailing comma
  EXPECT_FALSE(json::parse("{'a':1}", v, error));      // unquoted/single-quoted key
  EXPECT_FALSE(json::parse("{\"a\":01}", v, error));   // leading zero
  EXPECT_FALSE(json::parse("[1] extra", v, error));    // trailing bytes
  EXPECT_FALSE(json::parse("\"\\x41\"", v, error));    // bad escape
  EXPECT_FALSE(json::parse("{\"a\":", v, error));      // truncation
  EXPECT_FALSE(json::parse("nul", v, error));
  // The error carries a byte offset for operators reading daemon logs.
  EXPECT_NE(error.find("byte"), std::string::npos) << error;
}

TEST(ServiceNetJson, DepthCapStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  Value v;
  std::string error;
  EXPECT_FALSE(json::parse(deep, v, error)); // default cap is 64
  EXPECT_TRUE(json::parse(deep, v, error, 128));
}

TEST(ServiceNetJson, UnicodeEscapesIncludingSurrogatePairs) {
  Value v;
  std::string error;
  ASSERT_TRUE(json::parse("\"\\u0041\\u00e9\\ud83d\\ude00\"", v, error)) << error;
  EXPECT_EQ(v.asString(), "A\xc3\xa9\xf0\x9f\x98\x80");
  EXPECT_FALSE(json::parse("\"\\ud83d\"", v, error)); // lone high surrogate
}

// --- protocol options --------------------------------------------------------

TEST(ServiceNetOptions, UnknownKeysAndWrongTypesAreRejected) {
  CompileOptions base, out;
  std::string error;
  Value o = Value::object();
  o.set("unrol", Value::number(int64_t{2})); // typo'd key
  EXPECT_FALSE(compileOptionsFromJson(o, base, {}, out, error));
  EXPECT_NE(error.find("unrol"), std::string::npos);

  o = Value::object();
  o.set("unroll", Value::string("2")); // wrong type
  EXPECT_FALSE(compileOptionsFromJson(o, base, {}, out, error));

  o = Value::object();
  o.set("multStyle", Value::string("dsp48")); // bad enum value
  EXPECT_FALSE(compileOptionsFromJson(o, base, {}, out, error));
}

TEST(ServiceNetOptions, SemanticFieldsApplyOverBase) {
  CompileOptions base, out;
  base.unrollFactor = 1;
  std::string error;
  Value o = Value::object();
  o.set("unroll", Value::number(int64_t{4}));
  o.set("targetNs", Value::number(7.5));
  o.set("retime", Value::boolean(false));
  o.set("multStyle", Value::string("mult18"));
  o.set("kernel", Value::string("fir"));
  ASSERT_TRUE(compileOptionsFromJson(o, base, {}, out, error)) << error;
  EXPECT_EQ(out.unrollFactor, 4);
  EXPECT_EQ(out.dpOptions.targetStageDelayNs, 7.5);
  EXPECT_FALSE(out.retimePipeline);
  EXPECT_EQ(out.dpOptions.multStyle, dp::BuildOptions::MultStyle::Mult18);
  EXPECT_EQ(out.kernelName, "fir");
}

TEST(ServiceNetOptions, BudgetsClampToServerCeilings) {
  CompileOptions base, out;
  BudgetLimits ceiling;
  ceiling.timeoutMs = 5000;
  ceiling.maxIrNodes = 100000;
  std::string error;

  // A looser request clamps down; "unlimited" (0) collapses to the ceiling.
  Value o = Value::object();
  o.set("timeoutMs", Value::number(int64_t{60000}));
  o.set("maxIrNodes", Value::number(int64_t{0}));
  ASSERT_TRUE(compileOptionsFromJson(o, base, ceiling, out, error)) << error;
  EXPECT_EQ(out.budget.timeoutMs, 5000);
  EXPECT_EQ(out.budget.maxIrNodes, 100000);

  // A tighter request passes through.
  o = Value::object();
  o.set("timeoutMs", Value::number(int64_t{100}));
  ASSERT_TRUE(compileOptionsFromJson(o, base, ceiling, out, error)) << error;
  EXPECT_EQ(out.budget.timeoutMs, 100);

  // No request at all: the base budget still gets clamped.
  o = Value::object();
  base.budget.timeoutMs = 0;
  ASSERT_TRUE(compileOptionsFromJson(o, base, ceiling, out, error)) << error;
  EXPECT_EQ(out.budget.timeoutMs, 5000);
}

// --- protocol robustness over the socket -------------------------------------

class ServiceNetProtocol : public ::testing::Test {
 protected:
  void SetUp() override {
    harness_ = std::make_unique<Harness>(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    harness_->cfg.workers = 2;
    harness_->cfg.maxRequestBytes = 4096; // small, so oversized is cheap to hit
    harness_->start();
    if (HasFatalFailure()) return;
    client_ = harness_->connect();
  }

  /// One raw frame in, the parsed error code out.
  std::string roundTripErrorCode(const std::string& rawLine) {
    std::string raw, error;
    EXPECT_TRUE(client_->requestRaw(rawLine, raw, error)) << error;
    Value resp;
    EXPECT_TRUE(json::parse(raw, resp, error)) << error << " in: " << raw;
    return errorCode(resp);
  }

  std::unique_ptr<Harness> harness_;
  std::unique_ptr<ServiceClient> client_;
};

TEST_F(ServiceNetProtocol, MalformedFramesGetTypedErrors) {
  EXPECT_EQ(roundTripErrorCode("this is not json"), servicecode::kParseError);
  EXPECT_EQ(roundTripErrorCode("{\"proto\":\"roccc-ccd-v1\",\"type\":}"),
            servicecode::kParseError);
  EXPECT_EQ(roundTripErrorCode("[1,2,3]"), servicecode::kBadRequest); // valid JSON, not an object
  EXPECT_EQ(roundTripErrorCode("{\"type\":\"ping\"}"), servicecode::kProtocolVersion);
  EXPECT_EQ(roundTripErrorCode("{\"proto\":\"roccc-ccd-v0\",\"type\":\"ping\"}"),
            servicecode::kProtocolVersion);
  EXPECT_EQ(roundTripErrorCode("{\"proto\":\"roccc-ccd-v1\"}"), servicecode::kBadRequest);
  EXPECT_EQ(roundTripErrorCode("{\"proto\":\"roccc-ccd-v1\",\"type\":\"frobnicate\"}"),
            servicecode::kUnknownType);
  EXPECT_EQ(roundTripErrorCode("{\"proto\":\"roccc-ccd-v1\",\"type\":\"compile\"}"),
            servicecode::kBadRequest); // no source
  // After all that abuse the same connection still answers a good request.
  Value resp;
  std::string error;
  ASSERT_TRUE(client_->request(pingRequest(), resp, error)) << error;
  EXPECT_EQ(fieldString(resp, "type"), "pong");
}

TEST_F(ServiceNetProtocol, ErrorResponsesEchoTheRequestId) {
  std::string raw, error;
  ASSERT_TRUE(client_->requestRaw("{\"proto\":\"roccc-ccd-v1\",\"type\":\"nope\",\"id\":77}",
                                  raw, error)) << error;
  Value resp;
  ASSERT_TRUE(json::parse(raw, resp, error)) << error;
  const Value* id = resp.find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->asInt(), 77);
}

TEST_F(ServiceNetProtocol, OversizedFrameGetsTypedErrorThenClose) {
  std::string huge = "{\"proto\":\"roccc-ccd-v1\",\"type\":\"compile\",\"source\":\"";
  huge += std::string(8192, 'x'); // past the 4096-byte cap
  huge += "\"}";
  std::string raw, error;
  ASSERT_TRUE(client_->requestRaw(huge, raw, error)) << error;
  Value resp;
  ASSERT_TRUE(json::parse(raw, resp, error)) << error;
  EXPECT_EQ(errorCode(resp), servicecode::kOversized);
  // Framing can't be trusted past this point: the daemon closes the
  // connection (next read sees EOF)...
  EXPECT_FALSE(client_->requestRaw("{}", raw, error));
  // ...but keeps serving fresh connections.
  auto fresh = harness_->connect();
  ASSERT_TRUE(fresh->request(pingRequest(), resp, error)) << error;
  EXPECT_EQ(fieldString(resp, "type"), "pong");
}

TEST_F(ServiceNetProtocol, TruncatedFrameIsDiscardedQuietly) {
  // Half a request and a hangup: unanswerable (no frame end), so the only
  // correct behaviour is a quiet close — and the daemon must survive it.
  std::string error;
  ASSERT_TRUE(client_->sendBytes("{\"proto\":\"roccc-ccd-v1\",\"type\":\"pi", error)) << error;
  client_->close();
  auto fresh = harness_->connect();
  Value resp;
  ASSERT_TRUE(fresh->request(pingRequest(), resp, error)) << error;
  EXPECT_EQ(fieldString(resp, "type"), "pong");
}

TEST_F(ServiceNetProtocol, BlankLinesAreKeepAliveNoise) {
  std::string error;
  ASSERT_TRUE(client_->sendBytes("\n  \r\n", error)) << error;
  Value resp;
  ASSERT_TRUE(client_->request(pingRequest(), resp, error)) << error;
  EXPECT_EQ(fieldString(resp, "type"), "pong");
}

// --- compile / batch ---------------------------------------------------------

TEST(ServiceNetCompile, DaemonBytesMatchLocalCompile) {
  Harness h("compile_identity");
  h.cfg.workers = 2;
  h.start();
  auto client = h.connect();

  const CompileResult ref = referenceCompile(kSmallKernel);
  ASSERT_TRUE(ref.ok);

  Value resp;
  std::string error;
  Value options = Value::object();
  options.set("verilog", Value::boolean(true));
  ASSERT_TRUE(client->request(makeCompileRequest("k.c", kSmallKernel, options), resp, error))
      << error;
  EXPECT_EQ(fieldString(resp, "type"), "result");
  EXPECT_EQ(fieldString(resp, "status"), "ok");
  EXPECT_EQ(fieldString(resp, "vhdl"), ref.vhdl);
  EXPECT_EQ(fieldString(resp, "verilog"), ref.verilog);
  EXPECT_EQ(fieldString(resp, "sha256"), sha256Hex(ref.vhdl));
}

TEST(ServiceNetCompile, FrontendErrorIsATypedRowNotARejection) {
  Harness h("compile_frontend");
  h.cfg.workers = 1;
  h.start();
  auto client = h.connect();
  Value resp;
  std::string error;
  ASSERT_TRUE(client->request(makeCompileRequest("bad.c", "void k(int", {}), resp, error))
      << error;
  EXPECT_EQ(fieldString(resp, "type"), "result"); // a result row, not an error response
  EXPECT_EQ(fieldString(resp, "status"), "frontend-error");
  const Value* diags = resp.find("diags");
  ASSERT_NE(diags, nullptr);
  EXPECT_FALSE(diags->items().empty());
}

TEST(ServiceNetCompile, BatchPreservesJobOrderAndMatchesLocalBatch) {
  Harness h("batch_identity");
  h.cfg.workers = 4;
  h.start();
  auto client = h.connect();

  // Local reference: the same jobs through CompileService.
  std::vector<CompileJob> jobs;
  for (const auto& k : bench::kTable1Kernels) {
    CompileOptions o;
    if (k.targetStageDelayNs > 0) o.dpOptions.targetStageDelayNs = k.targetStageDelayNs;
    jobs.push_back({k.name, k.source, o});
  }
  CompileService service(4);
  const BatchResult ref = service.compileBatch(jobs);

  Value req = Value::object();
  req.set("type", Value::string("batch"));
  Value rows = Value::array();
  for (const auto& k : bench::kTable1Kernels) {
    Value job = Value::object();
    job.set("name", Value::string(k.name));
    job.set("source", Value::string(k.source));
    if (k.targetStageDelayNs > 0) {
      Value o = Value::object();
      o.set("targetNs", Value::number(k.targetStageDelayNs));
      job.set("options", std::move(o));
    }
    rows.push(std::move(job));
  }
  req.set("jobs", std::move(rows));

  Value resp;
  std::string error;
  ASSERT_TRUE(client->request(req, resp, error)) << error;
  EXPECT_EQ(fieldString(resp, "type"), "batch-result");
  const Value* results = resp.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->items().size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    const Value& row = results->items()[i];
    EXPECT_EQ(fieldString(row, "name"), jobs[i].name) << i; // job order == row order
    EXPECT_EQ(fieldString(row, "status"), "ok") << jobs[i].name;
    EXPECT_EQ(fieldString(row, "vhdl"), ref.results[i].vhdl) << jobs[i].name;
  }
}

TEST(ServiceNetCompile, SharedCacheServesSecondClientFromFirstCompile) {
  Harness h("shared_cache");
  h.cfg.workers = 2;
  h.cfg.cacheEnabled = true;
  h.start();

  auto first = h.connect();
  Value resp;
  std::string error;
  ASSERT_TRUE(first->request(makeCompileRequest("k.c", kSmallKernel, {}), resp, error)) << error;
  ASSERT_EQ(fieldString(resp, "status"), "ok");
  const Value* cached = resp.find("cached");
  ASSERT_NE(cached, nullptr);
  EXPECT_FALSE(cached->asBool());
  const std::string bytes = fieldString(resp, "vhdl");

  // A *different* connection hits the same shared cache entry.
  auto second = h.connect();
  ASSERT_TRUE(second->request(makeCompileRequest("k.c", kSmallKernel, {}), resp, error)) << error;
  cached = resp.find("cached");
  ASSERT_NE(cached, nullptr);
  EXPECT_TRUE(cached->asBool());
  EXPECT_EQ(fieldString(resp, "vhdl"), bytes);
}

TEST(ServiceNetCompile, DiskCacheSurvivesDaemonGenerations) {
  const std::string dir = freshDir("cache_gen");
  std::string bytes;
  {
    Harness h("cache_gen1");
    h.cfg.workers = 1;
    h.cfg.cacheEnabled = true;
    h.cfg.cache.diskDir = dir;
    h.start();
    auto client = h.connect();
    Value resp;
    std::string error;
    ASSERT_TRUE(client->request(makeCompileRequest("k.c", kSmallKernel, {}), resp, error))
        << error;
    ASSERT_EQ(fieldString(resp, "status"), "ok");
    bytes = fieldString(resp, "vhdl");
    h.daemon->stop();
  }
  {
    // A fresh daemon over the same --cache-dir: first request is a hit.
    Harness h("cache_gen2");
    h.cfg.workers = 1;
    h.cfg.cacheEnabled = true;
    h.cfg.cache.diskDir = dir;
    h.start();
    auto client = h.connect();
    Value resp;
    std::string error;
    ASSERT_TRUE(client->request(makeCompileRequest("k.c", kSmallKernel, {}), resp, error))
        << error;
    ASSERT_EQ(fieldString(resp, "status"), "ok");
    const Value* cached = resp.find("cached");
    ASSERT_NE(cached, nullptr);
    EXPECT_TRUE(cached->asBool());
    EXPECT_EQ(fieldString(resp, "vhdl"), bytes);
  }
}

TEST(ServiceNetCompile, BudgetCeilingTurnsRunawayJobIntoTypedTimeout) {
  Harness h("budget_ceiling");
  h.cfg.workers = 1;
  h.cfg.budgetCeiling.timeoutMs = -1; // already expired: deterministic timeout
  h.start();
  auto client = h.connect();
  Value resp;
  std::string error;
  // The client asks for a generous hour; the server ceiling wins.
  Value options = Value::object();
  options.set("timeoutMs", Value::number(int64_t{3600000}));
  ASSERT_TRUE(client->request(makeCompileRequest("k.c", kSmallKernel, options), resp, error))
      << error;
  EXPECT_EQ(fieldString(resp, "status"), "timeout");
}

// --- backpressure and quotas -------------------------------------------------

TEST(ServiceNetBackpressure, OversizedBatchRejectsExactlyTheTail) {
  Harness h("queue_full");
  h.cfg.workers = 2;
  h.cfg.maxQueue = 4;
  h.cfg.maxClientJobs = 64;
  h.start();
  auto client = h.connect();

  Value req = Value::object();
  req.set("type", Value::string("batch"));
  Value jobsArr = Value::array();
  for (int i = 0; i < 8; ++i) {
    Value job = Value::object();
    job.set("name", Value::string("job" + std::to_string(i)));
    job.set("source", Value::string(kSmallKernel));
    jobsArr.push(std::move(job));
  }
  req.set("jobs", std::move(jobsArr));
  Value resp;
  std::string error;
  ASSERT_TRUE(client->request(req, resp, error)) << error;
  const Value* results = resp.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->items().size(), 8u);
  // Admission is atomic up front: rows 0..3 fill the window, rows 4..7 are
  // the deterministic queue-full tail.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fieldString(results->items()[i], "status"), "ok") << i;
  }
  for (size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(fieldString(results->items()[i], "status"), servicecode::kQueueFull) << i;
  }
  EXPECT_EQ(resp.find("rejected")->asInt(), 4);

  // The window drained with the batch; the daemon serves the next job.
  ASSERT_TRUE(client->request(makeCompileRequest("again.c", kSmallKernel, {}), resp, error))
      << error;
  EXPECT_EQ(fieldString(resp, "status"), "ok");
}

TEST(ServiceNetBackpressure, PerClientQuotaRejectsIndependentlyOfTheWindow) {
  Harness h("quota");
  h.cfg.workers = 2;
  h.cfg.maxQueue = 64; // plenty of global room
  h.cfg.maxClientJobs = 3;
  h.start();
  auto client = h.connect();

  Value req = Value::object();
  req.set("type", Value::string("batch"));
  Value jobsArr = Value::array();
  for (int i = 0; i < 5; ++i) {
    Value job = Value::object();
    job.set("source", Value::string(kSmallKernel));
    jobsArr.push(std::move(job));
  }
  req.set("jobs", std::move(jobsArr));
  Value resp;
  std::string error;
  ASSERT_TRUE(client->request(req, resp, error)) << error;
  const Value* results = resp.find("results");
  ASSERT_NE(results, nullptr);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fieldString(results->items()[i], "status"), "ok") << i;
  }
  for (size_t i = 3; i < 5; ++i) {
    EXPECT_EQ(fieldString(results->items()[i], "status"), servicecode::kQuotaExceeded) << i;
  }
}

TEST(ServiceNetBackpressure, DrainPauseRejectsThenResumeServes) {
  Harness h("pause_resume");
  h.cfg.workers = 1;
  h.start();
  auto admin = h.connect();
  auto worker = h.connect();

  Value drain = Value::object();
  drain.set("type", Value::string("drain"));
  drain.set("mode", Value::string("pause"));
  Value resp;
  std::string error;
  ASSERT_TRUE(admin->request(drain, resp, error)) << error;
  EXPECT_EQ(fieldString(resp, "type"), "drained");
  EXPECT_FALSE(resp.find("stopped")->asBool());

  // Draining: compile jobs get the typed rejection, admin requests work.
  ASSERT_TRUE(worker->request(makeCompileRequest("k.c", kSmallKernel, {}), resp, error)) << error;
  EXPECT_EQ(errorCode(resp), servicecode::kDraining);
  ASSERT_TRUE(worker->request(pingRequest(), resp, error)) << error;
  EXPECT_EQ(fieldString(resp, "type"), "pong");

  Value resume = Value::object();
  resume.set("type", Value::string("drain"));
  resume.set("mode", Value::string("resume"));
  ASSERT_TRUE(admin->request(resume, resp, error)) << error;
  EXPECT_EQ(fieldString(resp, "type"), "resumed");

  ASSERT_TRUE(worker->request(makeCompileRequest("k.c", kSmallKernel, {}), resp, error)) << error;
  EXPECT_EQ(fieldString(resp, "status"), "ok");
}

// --- lifecycle ---------------------------------------------------------------

TEST(ServiceNetLifecycle, DrainStopAnswersThenStopsAndUnlinksSocket) {
  Harness h("drain_stop");
  h.cfg.workers = 1;
  h.start();
  auto client = h.connect();
  Value drain = Value::object();
  drain.set("type", Value::string("drain"));
  Value resp;
  std::string error;
  ASSERT_TRUE(client->request(drain, resp, error)) << error;
  EXPECT_EQ(fieldString(resp, "type"), "drained");
  EXPECT_TRUE(resp.find("stopped")->asBool());
  h.daemon->waitStopped();
  EXPECT_FALSE(h.daemon->running());
  EXPECT_FALSE(fs::exists(h.cfg.socketPath)); // no stale socket file
}

TEST(ServiceNetLifecycle, RequestDrainIsTheSignalPath) {
  Harness h("signal_drain");
  h.cfg.workers = 1;
  h.start();
  h.daemon->requestDrain(); // what the SIGTERM handler calls
  h.daemon->waitStopped();
  EXPECT_FALSE(h.daemon->running());
}

TEST(ServiceNetLifecycle, SecondDaemonRefusesALiveSocket) {
  Harness h("bind_live");
  h.cfg.workers = 1;
  h.start();
  ServiceConfig second = h.cfg;
  ServiceDaemon other(second);
  std::string error;
  EXPECT_FALSE(other.start(error));
  EXPECT_NE(error.find("already"), std::string::npos) << error;
  // A *stale* socket file (dead daemon) is reclaimed, not refused: stop the
  // first daemon but leave a file behind to simulate a crash.
  h.daemon->stop();
  std::ofstream(h.cfg.socketPath) << ""; // plain file where the socket was
  ServiceDaemon reclaim(h.cfg);
  ASSERT_TRUE(reclaim.start(error)) << error;
  reclaim.stop();
}

TEST(ServiceNetLifecycle, StatusReportsConfigAndState) {
  Harness h("status");
  h.cfg.workers = 3;
  h.cfg.maxQueue = 17;
  h.cfg.maxClientJobs = 5;
  h.cfg.cacheEnabled = true;
  h.start();
  auto client = h.connect();
  Value req = Value::object();
  req.set("type", Value::string("status"));
  Value resp;
  std::string error;
  ASSERT_TRUE(client->request(req, resp, error)) << error;
  EXPECT_EQ(fieldString(resp, "state"), "serving");
  EXPECT_EQ(resp.find("workers")->asInt(), 3);
  EXPECT_EQ(resp.find("maxQueue")->asInt(), 17);
  EXPECT_EQ(resp.find("maxClientJobs")->asInt(), 5);
  EXPECT_EQ(resp.find("queueDepth")->asInt(), 0);
  const Value* cache = resp.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_TRUE(cache->find("enabled")->asBool());
}

TEST(ServiceNetLifecycle, ReloadRebuildsTheCacheOverItsDirectory) {
  Harness h("reload");
  h.cfg.workers = 1;
  h.cfg.cacheEnabled = true;
  h.cfg.cache.diskDir = freshDir("reload_dir");
  h.start();
  auto client = h.connect();
  Value resp;
  std::string error;
  ASSERT_TRUE(client->request(makeCompileRequest("k.c", kSmallKernel, {}), resp, error)) << error;
  ASSERT_EQ(fieldString(resp, "status"), "ok");

  Value reload = Value::object();
  reload.set("type", Value::string("reload"));
  ASSERT_TRUE(client->request(reload, resp, error)) << error;
  EXPECT_EQ(fieldString(resp, "type"), "reloaded");

  // The fresh cache instance re-reads the disk tier: still a hit.
  ASSERT_TRUE(client->request(makeCompileRequest("k.c", kSmallKernel, {}), resp, error)) << error;
  EXPECT_EQ(fieldString(resp, "status"), "ok");
  EXPECT_TRUE(resp.find("cached")->asBool());
}

// --- metrics -----------------------------------------------------------------

TEST(ServiceNetMetrics, CountersAddUpAfterAKnownWorkload) {
  Harness h("metrics");
  h.cfg.workers = 2;
  h.cfg.cacheEnabled = true;
  h.start();
  auto client = h.connect();
  Value resp;
  std::string error;
  // Workload: 3 compiles of the same kernel (1 miss + 2 hits), 1 frontend
  // error, 1 unknown-type protocol error.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client->request(makeCompileRequest("k.c", kSmallKernel, {}), resp, error))
        << error;
    ASSERT_EQ(fieldString(resp, "status"), "ok");
  }
  ASSERT_TRUE(client->request(makeCompileRequest("bad.c", "int x", {}), resp, error)) << error;
  std::string raw;
  ASSERT_TRUE(client->requestRaw("{\"proto\":\"roccc-ccd-v1\",\"type\":\"zap\"}", raw, error))
      << error;

  Value m;
  Value req = Value::object();
  req.set("type", Value::string("metrics"));
  ASSERT_TRUE(client->request(req, m, error)) << error;
  EXPECT_EQ(m.find("jobs")->find("admitted")->asInt(), 4);
  EXPECT_EQ(m.find("jobs")->find("completed")->asInt(), 4);
  EXPECT_EQ(m.find("outcomes")->find("ok")->asInt(), 3);
  EXPECT_EQ(m.find("outcomes")->find("frontend-error")->asInt(), 1);
  EXPECT_EQ(m.find("cache")->find("hits")->asInt(), 2);
  EXPECT_EQ(m.find("cache")->find("misses")->asInt(), 2); // the error compiles too (negative cache)
  EXPECT_EQ(m.find("requests")->find("compile")->asInt(), 4);
  EXPECT_EQ(m.find("requests")->find("protocolErrors")->asInt(), 1);
  EXPECT_EQ(m.find("queueDepth")->asInt(), 0);
  const Value* svc = m.find("serviceMs");
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(svc->find("count")->asInt(), 4);
  EXPECT_GT(svc->find("p95Ms")->asDouble(), 0.0);
  EXPECT_GE(svc->find("p95Ms")->asDouble(), svc->find("p50Ms")->asDouble());
}

// --- fault-injection soak ----------------------------------------------------

TEST(ServiceNetSoak, InjectedFaultsAreTypedRowsAndTheDaemonServesOn) {
  Harness h("soak");
  h.cfg.workers = 2;
  h.start();
  auto client = h.connect();
  Value resp;
  std::string error;
  // Rounds of injected faults at different pipeline depths, each answered
  // as a typed internal-error row; a clean compile follows every round.
  const char* faultPoints[] = {"driver.job", "frontend.parse", "dp.build", "vhdl.emit"};
  for (int round = 0; round < 3; ++round) {
    for (const char* point : faultPoints) {
      Value options = Value::object();
      options.set("injectFault", Value::string(point));
      ASSERT_TRUE(client->request(makeCompileRequest("f.c", kSmallKernel, options), resp, error))
          << error;
      EXPECT_EQ(fieldString(resp, "type"), "result") << point;
      EXPECT_EQ(fieldString(resp, "status"), "internal-error") << point;
    }
    ASSERT_TRUE(client->request(makeCompileRequest("ok.c", kSmallKernel, {}), resp, error))
        << error;
    EXPECT_EQ(fieldString(resp, "status"), "ok") << "round " << round;
  }
}

// --- concurrent load ---------------------------------------------------------

TEST(ServiceNetLoad, StampedeOf256ConnectionsStaysByteIdentical) {
  Harness h("load256");
  h.cfg.workers = 4;
  h.cfg.maxQueue = 512;       // admit the whole stampede
  h.cfg.maxClientJobs = 8;    // each connection sends one job
  h.cfg.cacheEnabled = true;  // stampede coalesces onto 9 real compiles
  h.start();

  // Serial reference bytes per kernel, via the same contained job body.
  const size_t kKernels = std::size(bench::kTable1Kernels);
  std::vector<std::string> ref(kKernels);
  for (size_t k = 0; k < kKernels; ++k) {
    CompileOptions o;
    if (bench::kTable1Kernels[k].targetStageDelayNs > 0) {
      o.dpOptions.targetStageDelayNs = bench::kTable1Kernels[k].targetStageDelayNs;
    }
    const CompileResult r = runContainedJob({"ref", bench::kTable1Kernels[k].source, o});
    ASSERT_TRUE(r.ok) << bench::kTable1Kernels[k].name;
    ref[k] = r.vhdl;
  }

  constexpr int kClients = 256;
  std::vector<std::string> got(kClients);
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      const auto& kernel = bench::kTable1Kernels[c % kKernels];
      ServiceClient client;
      std::string error;
      if (!client.connect(h.cfg.socketPath, error)) {
        failures[c] = "connect: " + error;
        return;
      }
      Value options = Value::object();
      if (kernel.targetStageDelayNs > 0) {
        options.set("targetNs", Value::number(kernel.targetStageDelayNs));
      }
      Value resp;
      if (!client.request(makeCompileRequest(kernel.name, kernel.source, options), resp, error)) {
        failures[c] = "request: " + error;
        return;
      }
      if (fieldString(resp, "status") != "ok") {
        failures[c] = "status: " + resp.dump();
        return;
      }
      got[c] = fieldString(resp, "vhdl");
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
    EXPECT_EQ(got[c], ref[c % kKernels]) << "client " << c;
  }

  // The daemon is still healthy after the stampede.
  auto client = h.connect();
  Value resp;
  std::string error;
  ASSERT_TRUE(client->request(pingRequest(), resp, error)) << error;
  EXPECT_EQ(fieldString(resp, "type"), "pong");
}

} // namespace
} // namespace roccc
