#include "mir/passes.hpp"

#include <cassert>
#include <functional>
#include <map>
#include <optional>

#include "mir/exec.hpp"
#include "support/budget.hpp"
#include "support/faultpoint.hpp"
#include "support/strings.hpp"

namespace roccc::mir {

namespace {

/// Applies `fn` to every instruction in RPO block order.
void forEachInstrRpo(FunctionIR& f, const std::function<void(Block&, Instr&)>& fn) {
  for (int bid : reversePostOrder(f)) {
    Block& b = f.blocks[static_cast<size_t>(bid)];
    for (auto& in : b.instrs) fn(b, in);
  }
}

/// True when the operand's value is provably >= 0: a non-negative immediate,
/// or a register whose declared type is unsigned and narrower than the
/// 64-bit evaluation domain.
bool nonNegative(const FunctionIR& f, const Operand& o) {
  if (o.isImm()) return o.imm >= 0;
  if (o.isReg()) {
    const ScalarType t = f.regTypes[static_cast<size_t>(o.reg)];
    return !t.isSigned;
  }
  return false;
}

} // namespace

int constantPropagate(FunctionIR& f) {
  int changes = 0;
  std::map<int, Value> constants; // SSA reg -> known constant

  // Seed + propagate in RPO (SSA defs dominate uses, so one pass per
  // fixpoint round suffices; phi handling makes extra rounds useful).
  bool changed = true;
  while (changed) {
    changed = false;
    forEachInstrRpo(f, [&](Block& b, Instr& in) {
      (void)b;
      if (!in.hasDst() || constants.count(in.dst)) return;
      if (in.op == Opcode::Ldc) {
        constants.emplace(in.dst, Value::fromInt(in.type, in.imm));
        changed = true;
        return;
      }
      if (in.op == Opcode::Phi) {
        // A phi whose (known) inputs all agree is that constant.
        std::optional<Value> agreed;
        for (const auto& o : in.srcs) {
          if (!o.isReg() || !constants.count(o.reg)) return;
          const Value v = constants.at(o.reg).convertTo(in.type);
          if (!agreed) {
            agreed = v;
          } else if (!(*agreed == v)) {
            return;
          }
        }
        if (agreed) {
          constants.emplace(in.dst, *agreed);
          changed = true;
        }
        return;
      }
      if (!isPure(in.op) || in.op == Opcode::In) return;
      std::vector<Value> ops;
      for (const auto& o : in.srcs) {
        if (o.isImm()) {
          ops.push_back(Value::fromInt(in.type, o.imm));
        } else if (constants.count(o.reg)) {
          ops.push_back(constants.at(o.reg));
        } else {
          return;
        }
      }
      if (auto v = evalPureOp(in, ops, f.findTable(in.symbol))) {
        constants.emplace(in.dst, *v);
        changed = true;
      }
    });
  }

  // Rewrite: known-constant defs become Ldc; Mux with constant selector
  // becomes Mov of the taken side.
  forEachInstrRpo(f, [&](Block& b, Instr& in) {
    (void)b;
    if (in.hasDst() && constants.count(in.dst) && in.op != Opcode::Ldc && in.op != Opcode::Phi &&
        isPure(in.op)) {
      const Value v = constants.at(in.dst);
      in.op = Opcode::Ldc;
      in.imm = v.toInt();
      in.srcs.clear();
      in.symbol.clear();
      ++changes;
      return;
    }
    if (in.op == Opcode::Mux && in.srcs[0].isReg() && constants.count(in.srcs[0].reg)) {
      const bool taken = constants.at(in.srcs[0].reg).toBool();
      const Operand src = taken ? in.srcs[1] : in.srcs[2];
      in.op = Opcode::Mov;
      in.srcs = {src};
      ++changes;
    }
  });
  return changes;
}

int copyPropagate(FunctionIR& f) {
  // Mov dst, src with identical types is a pure copy; redirect uses.
  std::map<int, Operand> copyOf;
  forEachInstrRpo(f, [&](Block& b, Instr& in) {
    (void)b;
    if (in.op == Opcode::Mov && in.srcs[0].isReg() &&
        f.regTypes[static_cast<size_t>(in.srcs[0].reg)] == in.type) {
      copyOf[in.dst] = in.srcs[0];
    }
  });
  if (copyOf.empty()) return 0;
  // Resolve chains.
  auto resolve = [&](Operand o) {
    while (o.isReg()) {
      const auto it = copyOf.find(o.reg);
      if (it == copyOf.end()) break;
      o = it->second;
    }
    return o;
  };
  int changes = 0;
  forEachInstrRpo(f, [&](Block& b, Instr& in) {
    (void)b;
    for (auto& o : in.srcs) {
      if (o.isReg() && copyOf.count(o.reg)) {
        o = resolve(o);
        ++changes;
      }
    }
  });
  return changes;
}

int commonSubexpressionEliminate(FunctionIR& f) {
  const DomTree dt = computeDominators(f);
  std::vector<std::vector<int>> domChildren(f.blocks.size());
  for (size_t b = 1; b < f.blocks.size(); ++b) {
    if (dt.idom[b] >= 0) domChildren[static_cast<size_t>(dt.idom[b])].push_back(static_cast<int>(b));
  }

  // Expression key -> available register, scoped over the dominator tree.
  using Key = std::string;
  auto keyOf = [&](const Instr& in) -> Key {
    std::string k = opcodeName(in.op);
    k += '|' + in.type.str();
    k += '|' + std::to_string(in.imm) + '|' + std::to_string(in.aux0) + '|' + std::to_string(in.aux1);
    k += '|' + in.symbol;
    for (const auto& o : in.srcs) {
      k += o.isImm() ? fmt("|#%0", o.imm) : fmt("|v%0", o.reg);
    }
    return k;
  };

  int changes = 0;
  std::map<Key, std::vector<int>> avail; // stack per key
  std::map<int, Operand> replaced;       // dst -> canonical reg

  std::function<void(int)> walk = [&](int bid) {
    Block& b = f.blocks[static_cast<size_t>(bid)];
    std::vector<Key> pushed;
    for (auto& in : b.instrs) {
      // First rewrite operands through prior replacements.
      for (auto& o : in.srcs) {
        if (o.isReg()) {
          const auto it = replaced.find(o.reg);
          if (it != replaced.end()) o = it->second;
        }
      }
      if (!in.hasDst() || !isCseEligible(in.op)) continue;
      const Key k = keyOf(in);
      const auto it = avail.find(k);
      if (it != avail.end() && !it->second.empty()) {
        // Redundant: replace with a Mov so DCE can drop it once unused.
        replaced[in.dst] = Operand::ofReg(it->second.back());
        in.op = Opcode::Mov;
        in.srcs = {Operand::ofReg(it->second.back())};
        in.symbol.clear();
        ++changes;
      } else {
        avail[k].push_back(in.dst);
        pushed.push_back(k);
      }
    }
    for (int c : domChildren[static_cast<size_t>(bid)]) walk(c);
    for (const auto& k : pushed) avail[k].pop_back();
  };
  walk(0);
  if (changes) copyPropagate(f);
  return changes;
}

int deadCodeEliminate(FunctionIR& f) {
  // Seed: side-effecting instructions; then transitive operand closure.
  std::set<int> liveRegs;
  bool changed = true;
  auto markSrcs = [&](const Instr& in) {
    bool any = false;
    for (const auto& o : in.srcs) {
      if (o.isReg() && liveRegs.insert(o.reg).second) any = true;
    }
    return any;
  };
  while (changed) {
    changed = false;
    for (const auto& b : f.blocks) {
      for (const auto& in : b.instrs) {
        if (!isPure(in.op)) {
          if (markSrcs(in)) changed = true;
        } else if (in.hasDst() && liveRegs.count(in.dst)) {
          if (markSrcs(in)) changed = true;
        }
      }
    }
  }
  int removed = 0;
  for (auto& b : f.blocks) {
    std::erase_if(b.instrs, [&](const Instr& in) {
      const bool dead = isPure(in.op) && in.hasDst() && !liveRegs.count(in.dst);
      if (dead) ++removed;
      return dead;
    });
  }
  return removed;
}

int strengthReduce(FunctionIR& f) {
  int changes = 0;
  // Known constants (Ldc) by register, for identity detection.
  std::map<int, int64_t> constOf;
  forEachInstrRpo(f, [&](Block&, Instr& in) {
    if (in.op == Opcode::Ldc) constOf[in.dst] = Value::fromInt(in.type, in.imm).toInt();
  });
  auto constValue = [&](const Operand& o) -> std::optional<int64_t> {
    if (o.isImm()) return o.imm;
    if (o.isReg()) {
      const auto it = constOf.find(o.reg);
      if (it != constOf.end()) return it->second;
    }
    return std::nullopt;
  };
  auto isPow2 = [](int64_t v) { return v > 0 && (v & (v - 1)) == 0; };
  auto log2of = [](int64_t v) {
    int n = 0;
    while ((int64_t{1} << n) < v) ++n;
    return n;
  };

  forEachInstrRpo(f, [&](Block&, Instr& in) {
    switch (in.op) {
      case Opcode::Mul: {
        for (int side = 0; side < 2; ++side) {
          const auto c = constValue(in.srcs[static_cast<size_t>(side)]);
          if (!c) continue;
          const Operand other = in.srcs[static_cast<size_t>(1 - side)];
          if (*c == 0) {
            in.op = Opcode::Ldc;
            in.imm = 0;
            in.srcs.clear();
            ++changes;
            return;
          }
          if (*c == 1) {
            in.op = Opcode::Mov;
            in.srcs = {other};
            ++changes;
            return;
          }
          if (isPow2(*c)) {
            in.op = Opcode::Shl;
            in.srcs = {other, Operand::ofImm(log2of(*c))};
            ++changes;
            return;
          }
        }
        return;
      }
      case Opcode::Div: {
        const auto c = constValue(in.srcs[1]);
        if (c && *c == 1) {
          in.op = Opcode::Mov;
          in.srcs = {in.srcs[0]};
          ++changes;
          return;
        }
        // Division by a power of two is a shift when the dividend is
        // provably non-negative (unsigned result type, or an unsigned
        // operand promoted into a signed op).
        if (c && isPow2(*c) && (!in.type.isSigned || nonNegative(f, in.srcs[0]))) {
          in.op = Opcode::Shr;
          in.srcs = {in.srcs[0], Operand::ofImm(log2of(*c))};
          ++changes;
        }
        return;
      }
      case Opcode::Rem: {
        const auto c = constValue(in.srcs[1]);
        if (c && isPow2(*c) && (!in.type.isSigned || nonNegative(f, in.srcs[0]))) {
          in.op = Opcode::And;
          in.srcs = {in.srcs[0], Operand::ofImm(*c - 1)};
          ++changes;
        }
        return;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr: {
        // x op 0 == x (for Sub/Shl/Shr only the right side; Add/Or/Xor both).
        const bool bothSides = in.op == Opcode::Add || in.op == Opcode::Or || in.op == Opcode::Xor;
        for (int side = bothSides ? 0 : 1; side < 2; ++side) {
          const auto c = constValue(in.srcs[static_cast<size_t>(side)]);
          if (c && *c == 0) {
            const Operand other = in.srcs[static_cast<size_t>(1 - side)];
            // Result may need the cast semantics of the op type; Mov
            // converts, preserving behavior.
            in.op = Opcode::Mov;
            in.srcs = {other};
            ++changes;
            return;
          }
        }
        return;
      }
      case Opcode::And: {
        for (int side = 0; side < 2; ++side) {
          const auto c = constValue(in.srcs[static_cast<size_t>(side)]);
          if (c && *c == 0) {
            in.op = Opcode::Ldc;
            in.imm = 0;
            in.srcs.clear();
            ++changes;
            return;
          }
        }
        return;
      }
      default:
        return;
    }
  });
  return changes;
}

void canonicalizeSideEffects(FunctionIR& f) {
  // Synthetic registers per output port / feedback name.
  std::map<int, int> outReg;
  std::map<std::string, int> snxReg;
  std::map<std::string, ScalarType> snxType;
  std::map<int, ScalarType> outType;
  bool any = false;
  for (auto& b : f.blocks) {
    for (auto& in : b.instrs) {
      if (in.op == Opcode::Out) {
        auto [it, inserted] = outReg.try_emplace(in.aux0, -1);
        if (inserted) it->second = f.newReg(in.type, fmt("__outport%0", in.aux0));
        outType[in.aux0] = in.type;
        in.op = Opcode::Mov;
        in.dst = it->second;
        any = true;
      } else if (in.op == Opcode::Snx) {
        auto [it, inserted] = snxReg.try_emplace(in.symbol, -1);
        if (inserted) it->second = f.newReg(in.type, "__snx_" + in.symbol);
        snxType[in.symbol] = in.type;
        in.op = Opcode::Mov;
        in.dst = it->second;
        any = true;
      }
    }
  }
  if (!any) return;
  // Default definitions in the entry block guarantee every path reaches the
  // canonical store with a defined value (0 when a path never writes).
  {
    auto& entry = f.entry().instrs;
    auto pos = entry.begin();
    while (pos != entry.end() && pos->op == Opcode::In) ++pos;
    std::vector<Instr> defaults;
    for (const auto& [port, reg] : outReg) {
      Instr ld;
      ld.op = Opcode::Ldc;
      ld.dst = reg;
      ld.type = outType.at(port);
      ld.imm = 0;
      defaults.push_back(std::move(ld));
    }
    for (const auto& [sym, reg] : snxReg) {
      // A feedback register that is not stored on some path keeps its
      // previous value: default to LPR, not zero.
      Instr lpr;
      lpr.op = Opcode::Lpr;
      lpr.dst = reg;
      lpr.type = snxType.at(sym);
      lpr.symbol = sym;
      defaults.push_back(std::move(lpr));
    }
    entry.insert(pos, std::make_move_iterator(defaults.begin()), std::make_move_iterator(defaults.end()));
  }
  // Append the canonical stores just before the Ret.
  for (auto& b : f.blocks) {
    if (b.instrs.empty() || b.instrs.back().op != Opcode::Ret) continue;
    auto at = b.instrs.end() - 1;
    std::vector<Instr> stores;
    for (const auto& [port, reg] : outReg) {
      Instr o;
      o.op = Opcode::Out;
      o.aux0 = port;
      o.type = outType.at(port);
      o.srcs = {Operand::ofReg(reg)};
      stores.push_back(std::move(o));
    }
    for (const auto& [sym, reg] : snxReg) {
      Instr s;
      s.op = Opcode::Snx;
      s.symbol = sym;
      s.type = snxType.at(sym);
      s.srcs = {Operand::ofReg(reg)};
      stores.push_back(std::move(s));
    }
    b.instrs.insert(at, std::make_move_iterator(stores.begin()), std::make_move_iterator(stores.end()));
  }
}

StandardPassStats runStandardPasses(FunctionIR& f) {
  faultpoint("mir.optimize");
  StandardPassStats stats;
  for (int round = 0; round < 8; ++round) {
    budgetCheckpoint("mir-optimize");
    const int cp = constantPropagate(f);
    const int cop = copyPropagate(f);
    const int sr = strengthReduce(f);
    const int cse = commonSubexpressionEliminate(f);
    const int dce = deadCodeEliminate(f);
    ++stats.rounds;
    stats.constProp += cp;
    stats.copyProp += cop;
    stats.strength += sr;
    stats.cse += cse;
    stats.dce += dce;
    if (cp + cop + sr + cse + dce == 0) break;
  }
  return stats;
}

} // namespace roccc::mir
