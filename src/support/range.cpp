#include "support/range.hpp"

#include <array>
#include <sstream>

namespace roccc {

namespace {

using Int = ValueRange::Int;

// Smallest power-of-two-minus-1 >= v (v >= 0).
Int ceilPow2Mask(Int v) {
  Int m = 0;
  while (m < v) m = (m << 1) | 1;
  return m;
}

} // namespace

ValueRange ValueRange::ofType(ScalarType t) {
  if (!t.isSigned) {
    const Int hi = (Int{1} << t.width) - 1;
    return {0, hi};
  }
  const Int hi = (Int{1} << (t.width - 1)) - 1;
  return {-hi - 1, hi};
}

int ValueRange::requiredWidth(bool* needsSign) const {
  const bool sign = lo_ < 0;
  if (needsSign) *needsSign = sign;
  int w = 1;
  if (sign) {
    // Width w holds [-2^(w-1), 2^(w-1)-1].
    while (lo_ < -(Int{1} << (w - 1)) || hi_ > (Int{1} << (w - 1)) - 1) ++w;
  } else {
    while (hi_ > (Int{1} << w) - 1) ++w;
  }
  return w;
}

bool ValueRange::fitsIn(ScalarType t) const {
  return containedIn(ofType(t));
}

ValueRange ValueRange::mul(const ValueRange& b) const {
  const std::array<Int, 4> corners = {lo_ * b.lo_, lo_ * b.hi_, hi_ * b.lo_, hi_ * b.hi_};
  Int lo = corners[0], hi = corners[0];
  for (Int c : corners) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  return {lo, hi};
}

ValueRange ValueRange::divide(const ValueRange& b) const {
  // Division magnitude never exceeds the dividend magnitude (divisor 0 is
  // defined by the hardware convention to yield all-ones at result width,
  // which the caller's convertTo() absorbs). Hull: [-|max|, |max|].
  const Int m = std::max(hi_ < 0 ? -hi_ : hi_, lo_ < 0 ? -lo_ : lo_);
  (void)b;
  return {lo_ < 0 ? -m : Int{0}, m};
}

ValueRange ValueRange::rem(const ValueRange& b) const {
  // |a % b| < |b| and the sign follows the dividend; also |a % b| <= |a|.
  // If the divisor range contains 0 the hardware convention returns the
  // dividend, so the bound falls back to |a|.
  const Int mb = std::max(b.hi_ < 0 ? -b.hi_ : b.hi_, b.lo_ < 0 ? -b.lo_ : b.lo_);
  const Int ma = std::max(hi_ < 0 ? -hi_ : hi_, lo_ < 0 ? -lo_ : lo_);
  const bool divisorMayBeZero = b.contains(0);
  const Int m = divisorMayBeZero ? ma : std::min(ma, mb - 1);
  return {lo_ < 0 ? -m : Int{0}, m};
}

ValueRange ValueRange::shl(const ValueRange& sh) const {
  const Int sLo = std::max<Int>(0, sh.lo_);
  const Int sHi = std::min<Int>(63, std::max<Int>(0, sh.hi_));
  const std::array<Int, 4> corners = {lo_ << sLo, lo_ << sHi, hi_ << sLo, hi_ << sHi};
  Int lo = corners[0], hi = corners[0];
  for (Int c : corners) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  return {lo, hi};
}

ValueRange ValueRange::shr(const ValueRange& sh) const {
  const Int sLo = std::max<Int>(0, sh.lo_);
  const Int sHi = std::min<Int>(127, std::max<Int>(0, sh.hi_));
  const std::array<Int, 4> corners = {lo_ >> sLo, lo_ >> sHi, hi_ >> sLo, hi_ >> sHi};
  Int lo = corners[0], hi = corners[0];
  for (Int c : corners) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  return {lo, hi};
}

ValueRange ValueRange::bitAnd(const ValueRange& b) const {
  if (lo_ >= 0 && b.lo_ >= 0) {
    // Nonnegative & nonnegative: result in [0, min(maxA, maxB)].
    return {0, std::min(hi_, b.hi_)};
  }
  // Mixed signs: bound by the wider operand hull rounded to a power of two.
  const Int m = ceilPow2Mask(std::max({hi_ < 0 ? Int{0} : hi_, b.hi_ < 0 ? Int{0} : b.hi_,
                                       lo_ < 0 ? -lo_ : Int{0}, b.lo_ < 0 ? -b.lo_ : Int{0}}));
  return {-(m + 1), m};
}

ValueRange ValueRange::bitOr(const ValueRange& b) const {
  if (lo_ >= 0 && b.lo_ >= 0) {
    return {0, ceilPow2Mask(std::max(hi_, b.hi_))};
  }
  const Int m = ceilPow2Mask(std::max({hi_ < 0 ? Int{0} : hi_, b.hi_ < 0 ? Int{0} : b.hi_,
                                       lo_ < 0 ? -lo_ : Int{0}, b.lo_ < 0 ? -b.lo_ : Int{0}}));
  return {-(m + 1), m};
}

ValueRange ValueRange::bitXor(const ValueRange& b) const {
  return bitOr(b); // same conservative hull
}

ValueRange ValueRange::convertTo(ScalarType t) const {
  if (fitsIn(t)) return *this;
  return ofType(t);
}

std::string ValueRange::str() const {
  auto p = [](std::ostringstream& os, Int v) {
    if (v < 0) {
      os << '-';
      v = -v;
    }
    std::string digits;
    if (v == 0) digits = "0";
    while (v > 0) {
      digits.push_back(static_cast<char>('0' + static_cast<int>(v % 10)));
      v /= 10;
    }
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) os << *it;
  };
  std::ostringstream os;
  os << '[';
  p(os, lo_);
  os << ", ";
  p(os, hi_);
  os << ']';
  return os.str();
}

} // namespace roccc
