# Empty compiler generated dependencies file for roccc_synth.
# This may be replaced when dependencies are built.
