// roccc-ccd — the compile-as-a-service daemon.
//
//   roccc-ccd [options]
//
// Binds an AF_UNIX socket and serves `roccc-ccd-v1` (line-delimited JSON;
// docs/SERVICE.md is the operations book) until a client sends `drain` or
// the process receives SIGTERM/SIGINT. Compiles run on a shared worker
// pool behind a bounded admission window; the optional content-addressed
// compile cache is shared by every client and, with --cache-dir, by every
// daemon generation.
//
// Options:
//   --socket PATH        socket path to bind (default: roccc-ccd.sock)
//   --jobs N             compile workers (0 = one per hardware thread)
//   --queue N            admission window: max in-flight jobs (default 256)
//   --max-client-jobs N  per-connection job quota (default 64)
//   --max-request-bytes N
//                        per-request frame cap in bytes (default 8 MiB)
//   --cache              enable the shared compile cache
//   --cache-dir DIR      persistent on-disk cache tier (implies --cache)
//   --cache-bytes N      in-memory cache byte budget (implies --cache)
//   --timeout-ms N       ceiling on per-job wall-clock budgets (0 = none)
//   --max-ir-nodes N     ceiling on per-job IR-node budgets (0 = none)
//   --max-unroll-product N
//                        ceiling on per-job unroll-product budgets
//   --max-depth N        ceiling on per-job nesting-depth budgets
//   --target-ns X        server default pipeline stage delay target
//   --timing-model FILE  server default timing model table
//   --quiet              suppress lifecycle log lines
//
// Exit codes: 0 clean drain/stop, 1 startup failure, 2 usage.
//
// Every --opt VALUE option also accepts the --opt=VALUE spelling.
// docs/CLI.md is the full flag reference; a CI test keeps it in sync with
// the --help output generated from the option table below.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "roccc/service_net.hpp"
#include "synth/estimate.hpp"

namespace {

struct Args {
  roccc::ServiceConfig cfg;
  std::string timingModelPath;
  bool showHelp = false;
  Args() { cfg.quiet = false; }
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "       %s --help for the option list (docs/CLI.md, docs/SERVICE.md)\n",
               argv0, argv0);
  return 2;
}

struct OptionSpec {
  const char* name;
  const char* valueName; ///< null for flags; shown in --help
  const char* help;      ///< one-line --help description
  std::function<bool(Args&, const char*)> apply;
};

const std::vector<OptionSpec>& optionTable() {
  static const std::vector<OptionSpec> table = {
      {"--socket", "PATH", "socket path to bind (default: roccc-ccd.sock)",
       [](Args& a, const char* v) { a.cfg.socketPath = v; return true; }},
      {"--jobs", "N", "compile workers (0 = one per hardware thread)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.cfg.workers = static_cast<int>(std::strtol(v, &end, 10));
         return end != v && *end == '\0' && a.cfg.workers >= 0;
       }},
      {"--queue", "N", "admission window: max in-flight jobs across all clients (default 256)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.cfg.maxQueue = static_cast<int>(std::strtol(v, &end, 10));
         return end != v && *end == '\0' && a.cfg.maxQueue >= 1;
       }},
      {"--max-client-jobs", "N", "per-connection in-flight job quota (default 64)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.cfg.maxClientJobs = static_cast<int>(std::strtol(v, &end, 10));
         return end != v && *end == '\0' && a.cfg.maxClientJobs >= 1;
       }},
      {"--max-request-bytes", "N", "per-request frame cap in bytes (default 8 MiB)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.cfg.maxRequestBytes = std::strtoll(v, &end, 10);
         return end != v && *end == '\0' && a.cfg.maxRequestBytes >= 64;
       }},
      {"--cache", nullptr, "enable the shared content-addressed compile cache",
       [](Args& a, const char*) { a.cfg.cacheEnabled = true; return true; }},
      {"--cache-dir", "DIR", "persistent on-disk cache tier in DIR (implies --cache)",
       [](Args& a, const char* v) {
         a.cfg.cacheEnabled = true;
         a.cfg.cache.diskDir = v;
         return true;
       }},
      {"--cache-bytes", "N", "in-memory cache byte budget (implies --cache)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.cfg.cache.maxBytes = std::strtoll(v, &end, 10);
         a.cfg.cacheEnabled = true;
         return end != v && *end == '\0' && a.cfg.cache.maxBytes > 0;
       }},
      {"--timeout-ms", "N", "ceiling on per-job wall-clock budgets (0 = none)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.cfg.budgetCeiling.timeoutMs = std::strtoll(v, &end, 10);
         return end != v && *end == '\0' && a.cfg.budgetCeiling.timeoutMs >= 0;
       }},
      {"--max-ir-nodes", "N", "ceiling on per-job IR-node budgets (0 = none)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.cfg.budgetCeiling.maxIrNodes = std::strtoll(v, &end, 10);
         return end != v && *end == '\0' && a.cfg.budgetCeiling.maxIrNodes >= 0;
       }},
      {"--max-unroll-product", "N", "ceiling on per-job unroll-product budgets (0 = none)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.cfg.budgetCeiling.maxUnrollProduct = std::strtoll(v, &end, 10);
         return end != v && *end == '\0' && a.cfg.budgetCeiling.maxUnrollProduct >= 0;
       }},
      {"--max-depth", "N", "ceiling on per-job nesting-depth budgets (0 = none)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.cfg.budgetCeiling.maxDepth = static_cast<int>(std::strtol(v, &end, 10));
         return end != v && *end == '\0' && a.cfg.budgetCeiling.maxDepth >= 0;
       }},
      {"--target-ns", "X", "server default pipeline stage delay target in ns",
       [](Args& a, const char* v) {
         a.cfg.baseOptions.dpOptions.targetStageDelayNs = std::atof(v);
         return true;
       }},
      {"--timing-model", "FILE", "server default timing model table (docs/SYNTHESIS.md format)",
       [](Args& a, const char* v) { a.timingModelPath = v; return true; }},
      {"--quiet", nullptr, "suppress lifecycle log lines",
       [](Args& a, const char*) { a.cfg.quiet = true; return true; }},
      {"--help", nullptr, "print this option list and exit",
       [](Args& a, const char*) { a.showHelp = true; return true; }},
  };
  return table;
}

void printHelp(const char* argv0) {
  std::printf("usage: %s [options]\n\n"
              "Serves compile requests over an AF_UNIX socket (protocol roccc-ccd-v1).\n"
              "docs/CLI.md is the flag reference; docs/SERVICE.md the operations book.\n\n"
              "options:\n",
              argv0);
  for (const auto& s : optionTable()) {
    std::string left = s.name;
    if (s.valueName) {
      left += ' ';
      left += s.valueName;
    }
    std::printf("  %-22s %s\n", left.c_str(), s.help);
  }
  std::printf("\nexit codes: 0 clean drain/stop, 1 startup failure, 2 usage\n");
}

bool parseArgs(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.empty() || arg[0] != '-') return false; // no positional arguments
    std::string inlineValue;
    bool hasInlineValue = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos && arg.rfind("--", 0) == 0) {
      inlineValue = arg.substr(eq + 1);
      arg.resize(eq);
      hasInlineValue = true;
    }
    const OptionSpec* spec = nullptr;
    for (const auto& s : optionTable()) {
      if (arg == s.name) {
        spec = &s;
        break;
      }
    }
    if (!spec) return false;
    const char* value = nullptr;
    if (spec->valueName) {
      if (hasInlineValue) {
        value = inlineValue.c_str();
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return false;
      }
    } else if (hasInlineValue) {
      return false;
    }
    if (!spec->apply(a, value)) return false;
  }
  return true;
}

// SIGTERM/SIGINT drain the daemon instead of killing it mid-compile.
// requestDrain() is async-signal-safe (atomic stores + a pipe write).
roccc::ServiceDaemon* g_daemon = nullptr;

void onSignal(int) {
  if (g_daemon) g_daemon->requestDrain();
}

} // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parseArgs(argc, argv, a)) return usage(argv[0]);
  if (a.showHelp) {
    printHelp(argv[0]);
    return 0;
  }
  // Like roccc-cc: the timing model's *contents* become part of the base
  // options (and so of every cache key), parse-validated once up front.
  if (!a.timingModelPath.empty()) {
    std::ifstream tm(a.timingModelPath);
    if (!tm) {
      std::fprintf(stderr, "error: cannot open timing model '%s'\n", a.timingModelPath.c_str());
      return 1;
    }
    std::ostringstream tmBuf;
    tmBuf << tm.rdbuf();
    a.cfg.baseOptions.timingModelSpec = tmBuf.str();
    roccc::synth::TimingModel model;
    std::string tmError;
    if (!roccc::synth::TimingModel::parse(a.cfg.baseOptions.timingModelSpec, model, tmError)) {
      std::fprintf(stderr, "error: %s: %s\n", a.timingModelPath.c_str(), tmError.c_str());
      return 1;
    }
  }

  roccc::ServiceDaemon daemon(a.cfg);
  std::string error;
  if (!daemon.start(error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  g_daemon = &daemon;
  struct sigaction sa {};
  sa.sa_handler = onSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  daemon.waitStopped();
  g_daemon = nullptr;
  return 0;
}
