file(REMOVE_RECURSE
  "libroccc_interp.a"
)
