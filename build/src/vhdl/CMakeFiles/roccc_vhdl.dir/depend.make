# Empty dependencies file for roccc_vhdl.
# This may be replaced when dependencies are built.
