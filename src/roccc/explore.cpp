#include "roccc/explore.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <unordered_set>

#include "roccc/cache.hpp"
#include "rtl/system.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"
#include "synth/estimate.hpp"

namespace roccc {

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += fmt("\\u%0", static_cast<int>(c)); // control chars never occur in practice
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Deterministic number rendering for labels and JSON (operator<< default
/// precision; never locale-dependent for these value ranges).
std::string num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

} // namespace

// --- names -------------------------------------------------------------------

const char* widthModeName(SweepGrid::WidthMode mode) {
  switch (mode) {
    case SweepGrid::WidthMode::Declared: return "declared";
    case SweepGrid::WidthMode::PortOpcode: return "paper";
    case SweepGrid::WidthMode::Range: return "range";
  }
  return "range";
}

const char* multStyleName(dp::BuildOptions::MultStyle style) {
  return style == dp::BuildOptions::MultStyle::Mult18 ? "mult18" : "lut";
}

const char* sweepAxisName(SweepAxis axis) {
  switch (axis) {
    case SweepAxis::Slices: return "slices";
    case SweepAxis::FmaxMHz: return "fmax";
    case SweepAxis::Cycles: return "cycles";
    case SweepAxis::EnergyPjPerCycle: return "energy";
    case SweepAxis::EdpPjNs: return "edp";
    case SweepAxis::Throughput: return "throughput";
  }
  return "slices";
}

bool parseSweepAxis(const std::string& name, SweepAxis& out) {
  for (int a = 0; a < kSweepAxisCount; ++a) {
    if (name == sweepAxisName(static_cast<SweepAxis>(a))) {
      out = static_cast<SweepAxis>(a);
      return true;
    }
  }
  return false;
}

bool sweepAxisMaximizes(SweepAxis axis) {
  return axis == SweepAxis::FmaxMHz || axis == SweepAxis::Throughput;
}

const char* pointOutcomeName(PointOutcome outcome) {
  switch (outcome) {
    case PointOutcome::Ok: return "ok";
    case PointOutcome::FrontendError: return "frontend-error";
    case PointOutcome::Timeout: return "timeout";
    case PointOutcome::ResourceExceeded: return "resource-exceeded";
    case PointOutcome::InternalError: return "internal-error";
    case PointOutcome::SimError: return "sim-error";
  }
  return "internal-error";
}

PointOutcome pointOutcomeFrom(CompileOutcome outcome) {
  switch (outcome) {
    case CompileOutcome::Ok: return PointOutcome::Ok;
    case CompileOutcome::FrontendError: return PointOutcome::FrontendError;
    case CompileOutcome::Timeout: return PointOutcome::Timeout;
    case CompileOutcome::ResourceExceeded: return PointOutcome::ResourceExceeded;
    case CompileOutcome::InternalError: return PointOutcome::InternalError;
  }
  return PointOutcome::InternalError;
}

// --- expansion ---------------------------------------------------------------

namespace {

/// "fir@u2/ns4" + a tag per non-default knob. Duplicate configs produce
/// duplicate labels, but those are exactly the points dedup removes.
std::string pointLabel(const std::string& kernel, const SweepPointConfig& c) {
  std::string label = kernel;
  if (c.autoUnrollBudget > 0) {
    label += fmt("@auto%0", c.autoUnrollBudget);
  } else {
    label += fmt("@u%0", c.unroll);
  }
  label += fmt("/ns%0", num(c.targetNs));
  if (!c.retime) label += "/noretime";
  if (!c.pipeline) label += "/nopipe";
  if (!c.optimize) label += "/noopt";
  if (!c.lutConvert) label += "/nolut";
  if (c.widthMode != SweepGrid::WidthMode::Range) label += fmt("/%0", widthModeName(c.widthMode));
  if (c.multStyle != dp::BuildOptions::MultStyle::Lut) label += "/mult18";
  if (c.busElems != 1) label += fmt("/bus%0", c.busElems);
  if (!c.smartBuffer) label += "/naive";
  return label;
}

CompileOptions resolveOptions(const SweepGrid& grid, const SweepPointConfig& c) {
  CompileOptions o = grid.base;
  o.unrollFactor = c.unroll;
  o.autoUnrollSliceBudget = c.autoUnrollBudget;
  o.dpOptions.targetStageDelayNs = c.targetNs;
  o.retimePipeline = c.retime;
  o.dpOptions.pipeline = c.pipeline;
  o.optimize = c.optimize;
  o.convertCallsToLuts = c.lutConvert;
  switch (c.widthMode) {
    case SweepGrid::WidthMode::Declared:
      o.dpOptions.inferBitWidths = false;
      break;
    case SweepGrid::WidthMode::PortOpcode:
      o.dpOptions.inferBitWidths = true;
      o.dpOptions.widthMode = dp::BuildOptions::WidthMode::PortOpcode;
      break;
    case SweepGrid::WidthMode::Range:
      o.dpOptions.inferBitWidths = true;
      o.dpOptions.widthMode = dp::BuildOptions::WidthMode::RangeAnalysis;
      break;
  }
  o.dpOptions.multStyle = c.multStyle;
  return o;
}

} // namespace

std::vector<SweepPoint> expandGrid(const SweepGrid& grid) {
  std::vector<SweepPoint> points;
  std::unordered_set<std::string> seen; // kernel + compile key + geometry
  for (const auto& kernel : grid.kernels) {
    for (int unroll : grid.unrolls)
      for (int64_t autoBudget : grid.autoUnrollBudgets)
        for (double target : grid.targetNs)
          for (bool retime : grid.retime)
            for (bool pipeline : grid.pipeline)
              for (bool optimize : grid.optimize)
                for (bool lutConvert : grid.lutConvert)
                  for (SweepGrid::WidthMode widthMode : grid.widthModes)
                    for (dp::BuildOptions::MultStyle multStyle : grid.multStyles)
                      for (int busElems : grid.busElems)
                        for (bool smartBuffer : grid.smartBuffer) {
                          SweepPointConfig c;
                          c.unroll = unroll;
                          c.autoUnrollBudget = autoBudget;
                          // A 0 target resolves to the kernel's per-row
                          // default, then the grid base's — so "default"
                          // and its explicit spelling dedup to one point.
                          c.targetNs = target > 0 ? target
                                       : kernel.defaultTargetNs > 0
                                           ? kernel.defaultTargetNs
                                           : grid.base.dpOptions.targetStageDelayNs;
                          c.retime = retime;
                          c.pipeline = pipeline;
                          c.optimize = optimize;
                          c.lutConvert = lutConvert;
                          c.widthMode = widthMode;
                          c.multStyle = multStyle;
                          c.busElems = busElems;
                          c.smartBuffer = smartBuffer;

                          SweepPoint p;
                          p.kernel = kernel.name;
                          p.source = kernel.source;
                          p.config = c;
                          p.options = resolveOptions(grid, c);
                          p.label = pointLabel(kernel.name, c);

                          const std::string key =
                              fmt("%0|%1|%2|%3", kernel.name,
                                  computeCacheKey(p.source, p.options), c.busElems,
                                  c.smartBuffer ? 1 : 0);
                          if (!seen.insert(key).second) continue;
                          points.push_back(std::move(p));
                        }
  }
  return points;
}

// --- manifest ----------------------------------------------------------------

namespace {

/// Splits a directive line's value part on whitespace and commas.
std::vector<std::string> splitValues(const std::vector<std::string>& rawTokens) {
  std::vector<std::string> values;
  for (const auto& tok : rawTokens) {
    std::stringstream ss(tok);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) values.push_back(item);
    }
  }
  return values;
}

bool parseBoolToken(const std::string& s, bool& out) {
  if (s == "on" || s == "true" || s == "1") {
    out = true;
    return true;
  }
  if (s == "off" || s == "false" || s == "0") {
    out = false;
    return true;
  }
  return false;
}

} // namespace

bool parseSweepManifest(const std::string& text, SweepManifest& out, std::string& error) {
  out = SweepManifest{};
  std::unordered_set<std::string> seenDirectives;
  std::istringstream in(text);
  std::string line;
  int lineNo = 0;
  const auto fail = [&](const std::string& message) {
    error = fmt("line %0: %1", lineNo, message);
    return false;
  };
  while (std::getline(in, line)) {
    ++lineNo;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ls >> tok) tokens.push_back(tok);
    if (tokens.empty()) continue;

    const std::string directive = tokens.front();
    const std::vector<std::string> values =
        splitValues({tokens.begin() + 1, tokens.end()});

    // `kernel` and `table1` accumulate; every axis directive appears at
    // most once (a repeat is almost always a typo'd second axis).
    if (directive != "kernel" && directive != "table1" &&
        !seenDirectives.insert(directive).second) {
      return fail(fmt("duplicate directive '%0'", directive));
    }

    const auto needValues = [&]() -> bool { return !values.empty(); };

    if (directive == "kernel") {
      if (values.size() != 2) return fail("kernel needs exactly NAME and PATH");
      out.kernelFiles.push_back({values[0], values[1]});
    } else if (directive == "table1") {
      if (values.empty()) {
        out.table1All = true;
      } else {
        out.table1.insert(out.table1.end(), values.begin(), values.end());
      }
    } else if (directive == "unroll" || directive == "bus-elems") {
      if (!needValues()) return fail(fmt("directive '%0' needs at least one value", directive));
      std::vector<int> list;
      for (const auto& v : values) {
        char* end = nullptr;
        const long n = std::strtol(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0' || n < 1 || n > 1 << 20) {
          return fail(fmt("invalid %0 value '%1'", directive, v));
        }
        list.push_back(static_cast<int>(n));
      }
      (directive == "unroll" ? out.grid.unrolls : out.grid.busElems) = std::move(list);
    } else if (directive == "auto-unroll-budget") {
      if (!needValues()) return fail("directive 'auto-unroll-budget' needs at least one value");
      out.grid.autoUnrollBudgets.clear();
      for (const auto& v : values) {
        char* end = nullptr;
        const long long n = std::strtoll(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0' || n < 0) {
          return fail(fmt("invalid auto-unroll-budget value '%0'", v));
        }
        out.grid.autoUnrollBudgets.push_back(n);
      }
    } else if (directive == "target-ns") {
      if (!needValues()) return fail("directive 'target-ns' needs at least one value");
      out.grid.targetNs.clear();
      for (const auto& v : values) {
        char* end = nullptr;
        const double d = std::strtod(v.c_str(), &end);
        if (end == v.c_str() || *end != '\0' || d < 0 || d > 1e6) {
          return fail(fmt("invalid target-ns value '%0'", v));
        }
        out.grid.targetNs.push_back(d);
      }
    } else if (directive == "retime" || directive == "pipeline" || directive == "optimize" ||
               directive == "lut-convert" || directive == "smart-buffer") {
      if (!needValues()) return fail(fmt("directive '%0' needs at least one value", directive));
      std::vector<bool> list;
      for (const auto& v : values) {
        bool b = false;
        if (!parseBoolToken(v, b)) return fail(fmt("invalid %0 value '%1' (want on/off)", directive, v));
        list.push_back(b);
      }
      if (directive == "retime") out.grid.retime = std::move(list);
      else if (directive == "pipeline") out.grid.pipeline = std::move(list);
      else if (directive == "optimize") out.grid.optimize = std::move(list);
      else if (directive == "lut-convert") out.grid.lutConvert = std::move(list);
      else out.grid.smartBuffer = std::move(list);
    } else if (directive == "width-mode") {
      if (!needValues()) return fail("directive 'width-mode' needs at least one value");
      out.grid.widthModes.clear();
      for (const auto& v : values) {
        if (v == "declared") out.grid.widthModes.push_back(SweepGrid::WidthMode::Declared);
        else if (v == "paper" || v == "portopcode")
          out.grid.widthModes.push_back(SweepGrid::WidthMode::PortOpcode);
        else if (v == "range") out.grid.widthModes.push_back(SweepGrid::WidthMode::Range);
        else return fail(fmt("invalid width-mode '%0' (want declared/paper/range)", v));
      }
    } else if (directive == "mult-style") {
      if (!needValues()) return fail("directive 'mult-style' needs at least one value");
      out.grid.multStyles.clear();
      for (const auto& v : values) {
        if (v == "lut") out.grid.multStyles.push_back(dp::BuildOptions::MultStyle::Lut);
        else if (v == "mult18") out.grid.multStyles.push_back(dp::BuildOptions::MultStyle::Mult18);
        else return fail(fmt("invalid mult-style '%0' (want lut/mult18)", v));
      }
    } else if (directive == "axes") {
      if (!needValues()) return fail("directive 'axes' needs at least one value");
      out.axes.clear();
      for (const auto& v : values) {
        SweepAxis axis;
        if (!parseSweepAxis(v, axis)) return fail(fmt("unknown axis '%0'", v));
        out.axes.push_back(static_cast<int>(axis));
      }
    } else if (directive == "seed") {
      if (values.size() != 1) return fail("seed needs exactly one value");
      char* end = nullptr;
      out.seed = std::strtoull(values[0].c_str(), &end, 0);
      if (end == values[0].c_str() || *end != '\0') {
        return fail(fmt("invalid seed '%0'", values[0]));
      }
      out.seedSet = true;
    } else {
      return fail(fmt("unknown directive '%0'", directive));
    }
  }
  return true;
}

// --- Pareto ------------------------------------------------------------------

std::vector<size_t> paretoFrontier(const std::vector<std::vector<double>>& rows,
                                   const std::vector<bool>& maximize) {
  // Normalize to minimization once, then O(n^2) dominance — sweeps are
  // hundreds of points, not millions.
  std::vector<std::vector<double>> norm = rows;
  for (auto& row : norm) {
    for (size_t a = 0; a < row.size() && a < maximize.size(); ++a) {
      if (maximize[a]) row[a] = -row[a];
    }
  }
  std::vector<size_t> frontier;
  for (size_t i = 0; i < norm.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < norm.size() && !dominated; ++j) {
      if (i == j) continue;
      bool allLeq = true, anyLess = false;
      for (size_t a = 0; a < norm[i].size(); ++a) {
        if (norm[j][a] > norm[i][a]) allLeq = false;
        if (norm[j][a] < norm[i][a]) anyLess = true;
      }
      dominated = allLeq && anyLess;
    }
    if (!dominated) frontier.push_back(i);
  }
  return frontier;
}

double metricValue(const PointMetrics& m, SweepAxis axis) {
  switch (axis) {
    case SweepAxis::Slices: return static_cast<double>(m.slices);
    case SweepAxis::FmaxMHz: return m.fmaxMHz;
    case SweepAxis::Cycles: return static_cast<double>(m.cycles);
    case SweepAxis::EnergyPjPerCycle: return m.energyPjPerCycle;
    case SweepAxis::EdpPjNs: return m.edpPjNs;
    case SweepAxis::Throughput: return m.throughput;
  }
  return 0;
}

// --- execution ---------------------------------------------------------------

namespace {

/// Collects one Ok point's metrics. `r` must carry the in-memory IR (a
/// fresh compile, not a cache hit). Throws nothing: simulation failures
/// come back as a SimError outcome on the result row.
void collectMetrics(const SweepPoint& point, const CompileResult& r, uint64_t seed,
                    bool collectCycles, SweepPointResult& out) {
  synth::TimingModel model = synth::TimingModel::virtex2();
  if (!point.options.timingModelSpec.empty()) {
    std::string err;
    if (!synth::TimingModel::parse(point.options.timingModelSpec, model, err)) {
      // The compile itself accepted the spec, so this cannot happen; keep
      // the containment contract anyway.
      out.outcome = PointOutcome::SimError;
      out.error = fmt("timing model: %0", err);
      return;
    }
  }
  synth::EstimateOptions eo = synth::EstimateOptions::forModel(model);
  eo.useMult18 = point.config.multStyle == dp::BuildOptions::MultStyle::Mult18;
  const synth::Report est = synth::estimate(r.module, eo);
  PointMetrics& m = out.metrics;
  m.slices = est.slices;
  m.lut4 = est.res.lut4;
  m.ff = est.res.ff;
  m.mult18 = est.res.mult18;
  m.bram = est.res.bram;
  m.stages = r.datapath.stageCount;
  m.pipelineRegBits = r.datapath.pipelineRegisterBits;
  m.balanceRegBits = r.datapath.balanceRegisterBits;
  m.criticalPathNs = est.criticalPathNs;
  m.fmaxMHz = est.fmaxMHz();
  m.energyPjPerCycle = est.energyPerCyclePj();
  m.edpPjNs = est.edpPjNs();
  if (!collectCycles) return;
  try {
    const interp::KernelIO io = deterministicStimulus(r.kernel, seed);
    rtl::SystemOptions so;
    so.inputBusElems = point.config.busElems;
    so.useSmartBuffer = point.config.smartBuffer;
    so.engine = rtl::SimEngine::Fast;
    const rtl::SystemStats stats = rtl::measureSystem(r.kernel, r.datapath, r.module, io, so);
    m.cycles = stats.cycles;
    m.bramReads = stats.bramReads;
    m.throughput = stats.steadyStateThroughput();
  } catch (const std::exception& e) {
    out.outcome = PointOutcome::SimError;
    out.error = e.what();
  } catch (const interp::InterpError& e) {
    out.outcome = PointOutcome::SimError;
    out.error = e.message;
  }
}

} // namespace

SweepResult runSweep(const std::vector<SweepPoint>& points, const SweepOptions& opt) {
  WallTimer wall;
  SweepResult result;
  result.axes = opt.axes;
  result.seed = opt.seed;

  std::vector<CompileJob> jobs;
  jobs.reserve(points.size());
  for (const auto& p : points) jobs.push_back({p.label, p.source, p.options});

  CompileService service(opt.workers);
  if (opt.cache) service.setCache(opt.cache);
  const BatchResult batch = service.compileBatch(jobs);
  result.workers = batch.workers;
  result.cacheHits = batch.cacheHits;
  result.cacheMisses = batch.cacheMisses;

  result.points.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    SweepPointResult row;
    row.point = points[i];
    const CompileResult& r = batch.results[i];
    row.outcome = pointOutcomeFrom(r.outcome);
    for (const auto& p : r.passLog) row.compileMs += p.wallMs;
    if (row.outcome != PointOutcome::Ok) {
      const auto& all = r.diags.all();
      for (const auto& d : all) {
        if (d.severity == Severity::Error) {
          row.error = d.str();
          break;
        }
      }
      if (row.error.empty() && !r.failedPass.empty()) {
        row.error = fmt("%0 in pass %1", compileOutcomeName(r.outcome), r.failedPass);
      }
      result.points.push_back(std::move(row));
      continue;
    }
    // Metric collection needs the in-memory IR (kernel info, data path,
    // netlist). A cache hit materializes only the artifact bytes, so
    // recompile locally — the determinism guarantee makes the rebuild
    // byte-equivalent, which is what keeps cold and warm sweep reports
    // identical.
    if (r.datapath.ops.empty()) {
      const Compiler compiler(points[i].options);
      const CompileResult fresh = compiler.compileSource(points[i].source);
      row.outcome = pointOutcomeFrom(fresh.outcome);
      if (row.outcome == PointOutcome::Ok) {
        collectMetrics(points[i], fresh, opt.seed, opt.collectCycles, row);
      }
    } else {
      collectMetrics(points[i], r, opt.seed, opt.collectCycles, row);
    }
    result.points.push_back(std::move(row));
  }

  // Per-kernel frontier + best config, kernels in first-appearance order.
  std::vector<bool> maximize;
  for (SweepAxis a : opt.axes) maximize.push_back(sweepAxisMaximizes(a));
  std::vector<std::string> kernelOrder;
  for (const auto& row : result.points) {
    if (std::find(kernelOrder.begin(), kernelOrder.end(), row.point.kernel) == kernelOrder.end()) {
      kernelOrder.push_back(row.point.kernel);
    }
  }
  for (const auto& kernel : kernelOrder) {
    KernelFrontier f;
    f.kernel = kernel;
    std::vector<size_t> ok;
    std::vector<std::vector<double>> rows;
    for (size_t i = 0; i < result.points.size(); ++i) {
      const auto& row = result.points[i];
      if (row.point.kernel != kernel || row.outcome != PointOutcome::Ok) continue;
      ok.push_back(i);
      std::vector<double> metrics;
      for (SweepAxis a : opt.axes) metrics.push_back(metricValue(row.metrics, a));
      rows.push_back(std::move(metrics));
    }
    for (size_t local : paretoFrontier(rows, maximize)) {
      f.points.push_back(ok[local]);
      result.points[ok[local]].pareto = true;
    }
    // Best = lowest total runtime (cycles x critical path), then area,
    // then expansion order — a single recommendation, not a judgement
    // call the frontier already encodes.
    if (!f.points.empty()) {
      f.best = f.points.front();
      for (size_t idx : f.points) {
        const PointMetrics& a = result.points[idx].metrics;
        const PointMetrics& b = result.points[f.best].metrics;
        const double ra = static_cast<double>(a.cycles) * a.criticalPathNs;
        const double rb = static_cast<double>(b.cycles) * b.criticalPathNs;
        if (ra < rb || (ra == rb && a.slices < b.slices)) f.best = idx;
      }
    }
    result.frontiers.push_back(std::move(f));
  }

  result.wallMs = wall.elapsedMs();
  return result;
}

SweepResult runSweep(const SweepGrid& grid, const SweepOptions& opt) {
  return runSweep(expandGrid(grid), opt);
}

// --- reports -----------------------------------------------------------------

int SweepResult::okCount() const {
  int n = 0;
  for (const auto& p : points) n += p.outcome == PointOutcome::Ok;
  return n;
}

int SweepResult::failedCount() const { return static_cast<int>(points.size()) - okCount(); }

std::string SweepResult::outcomeSummary() const {
  int counts[6] = {};
  for (const auto& p : points) ++counts[static_cast<int>(p.outcome)];
  std::vector<std::string> parts;
  for (int o = 0; o < 6; ++o) {
    if (counts[o] > 0) {
      parts.push_back(fmt("%0 %1", counts[o], pointOutcomeName(static_cast<PointOutcome>(o))));
    }
  }
  return join(parts, ", ");
}

std::string SweepResult::toJson(bool includeTimings) const {
  IndentWriter w;
  w.line("{");
  w.indent();
  w.line("\"schema\": \"roccc-sweep-v1\",");
  w.line(fmt("\"seed\": %0,", seed));
  std::vector<std::string> axisNames;
  for (SweepAxis a : axes) axisNames.push_back(fmt("\"%0\"", sweepAxisName(a)));
  w.line(fmt("\"axes\": [%0],", join(axisNames, ", ")));
  w.line(fmt("\"points\": %0,", points.size()));
  w.line(fmt("\"ok\": %0,", okCount()));
  w.line(fmt("\"failed\": %0,", failedCount()));
  w.line("\"results\": [");
  w.indent();
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPointResult& p = points[i];
    const SweepPointConfig& c = p.point.config;
    w.line("{");
    w.indent();
    w.line(fmt("\"kernel\": \"%0\",", jsonEscape(p.point.kernel)));
    w.line(fmt("\"label\": \"%0\",", jsonEscape(p.point.label)));
    w.line(fmt("\"config\": {\"unroll\": %0, \"autoUnrollBudget\": %1, \"targetNs\": %2, "
               "\"retime\": %3, \"pipeline\": %4, \"optimize\": %5, \"lutConvert\": %6, "
               "\"widthMode\": \"%7\", \"multStyle\": \"%8\"%9",
               c.unroll, c.autoUnrollBudget, num(c.targetNs), c.retime ? "true" : "false",
               c.pipeline ? "true" : "false", c.optimize ? "true" : "false",
               c.lutConvert ? "true" : "false", widthModeName(c.widthMode),
               multStyleName(c.multStyle),
               fmt(", \"busElems\": %0, \"smartBuffer\": %1},", c.busElems,
                   c.smartBuffer ? "true" : "false")));
    w.line(fmt("\"outcome\": \"%0\",", pointOutcomeName(p.outcome)));
    if (!p.error.empty()) w.line(fmt("\"error\": \"%0\",", jsonEscape(p.error)));
    if (includeTimings) w.line(fmt("\"compileMs\": %0,", num(p.compileMs)));
    if (p.outcome == PointOutcome::Ok) {
      const PointMetrics& m = p.metrics;
      w.line(fmt("\"metrics\": {\"slices\": %0, \"lut4\": %1, \"ff\": %2, \"mult18\": %3, "
                 "\"bram\": %4, \"stages\": %5, \"pipelineRegBits\": %6, \"balanceRegBits\": %7,",
                 m.slices, m.lut4, m.ff, m.mult18, m.bram, m.stages, m.pipelineRegBits,
                 m.balanceRegBits));
      w.line(fmt("            \"criticalPathNs\": %0, \"fmaxMHz\": %1, \"cycles\": %2, "
                 "\"bramReads\": %3, \"throughput\": %4,",
                 num(m.criticalPathNs), num(m.fmaxMHz), m.cycles, m.bramReads,
                 num(m.throughput)));
      w.line(fmt("            \"energyPjPerCycle\": %0, \"edpPjNs\": %1},",
                 num(m.energyPjPerCycle), num(m.edpPjNs)));
    }
    w.line(fmt("\"pareto\": %0", p.pareto ? "true" : "false"));
    w.dedent();
    w.line(fmt("}%0", i + 1 < points.size() ? "," : ""));
  }
  w.dedent();
  w.line("],");
  w.line("\"frontiers\": [");
  w.indent();
  for (size_t i = 0; i < frontiers.size(); ++i) {
    const KernelFrontier& f = frontiers[i];
    std::vector<std::string> labels;
    for (size_t idx : f.points) labels.push_back(fmt("\"%0\"", jsonEscape(points[idx].point.label)));
    std::string entry = fmt("{\"kernel\": \"%0\", \"points\": [%1]", jsonEscape(f.kernel),
                            join(labels, ", "));
    if (!f.points.empty()) {
      entry += fmt(", \"best\": \"%0\"", jsonEscape(points[f.best].point.label));
    }
    entry += fmt("}%0", i + 1 < frontiers.size() ? "," : "");
    w.line(entry);
  }
  w.dedent();
  if (includeTimings) {
    w.line("],");
    w.line(fmt("\"run\": {\"workers\": %0, \"wallMs\": %1, \"cacheHits\": %2, "
               "\"cacheMisses\": %3}",
               workers, num(wallMs), cacheHits, cacheMisses));
  } else {
    w.line("]");
  }
  w.dedent();
  w.line("}");
  return w.str();
}

std::string SweepResult::table() const {
  std::ostringstream os;
  std::vector<std::string> axisNames;
  for (SweepAxis a : axes) axisNames.push_back(sweepAxisName(a));
  for (const KernelFrontier& f : frontiers) {
    int total = 0;
    for (const auto& p : points) total += p.point.kernel == f.kernel;
    os << fmt("== %0: %1 points, frontier %2 (axes %3) ==\n", f.kernel, total, f.points.size(),
              join(axisNames, ","));
    char buf[256];
    std::snprintf(buf, sizeof buf, "  %c %-40s %-18s %7s %7s %6s %9s %8s %9s %8s %9s\n", ' ',
                  "label", "outcome", "slices", "fmax", "stages", "cycles", "out/clk", "bramRd",
                  "pJ/cyc", "EDP");
    os << buf;
    for (const auto& p : points) {
      if (p.point.kernel != f.kernel) continue;
      if (p.outcome != PointOutcome::Ok) {
        std::snprintf(buf, sizeof buf, "    %-40s %-18s %s\n", p.point.label.c_str(),
                      pointOutcomeName(p.outcome), p.error.c_str());
        os << buf;
        continue;
      }
      const PointMetrics& m = p.metrics;
      std::snprintf(buf, sizeof buf,
                    "  %c %-40s %-18s %7lld %7.0f %6d %9lld %8.2f %9lld %8.1f %9.1f\n",
                    p.pareto ? '*' : ' ', p.point.label.c_str(), pointOutcomeName(p.outcome),
                    static_cast<long long>(m.slices), m.fmaxMHz, m.stages,
                    static_cast<long long>(m.cycles), m.throughput,
                    static_cast<long long>(m.bramReads), m.energyPjPerCycle, m.edpPjNs);
      os << buf;
    }
  }
  return os.str();
}

std::string SweepResult::bestReport() const {
  std::ostringstream os;
  os << "best config per kernel (min runtime on the frontier, area breaking ties):\n";
  for (const KernelFrontier& f : frontiers) {
    if (f.points.empty()) {
      os << fmt("  %0: no viable point\n", f.kernel);
      continue;
    }
    const SweepPointResult& b = points[f.best];
    os << fmt("  %0: %1 — %2 slices, %3 MHz, %4 cycles, EDP %5 pJ.ns\n", f.kernel, b.point.label,
              b.metrics.slices, num(b.metrics.fmaxMHz), b.metrics.cycles, num(b.metrics.edpPjNs));
  }
  return os.str();
}

// --- frontier verification ---------------------------------------------------

VerifyReport verifyFrontier(const SweepResult& sweep, const VerifyOptions& opt) {
  VerifyReport report;
  for (const KernelFrontier& f : sweep.frontiers) {
    for (size_t idx : f.points) {
      const SweepPoint& p = sweep.points[idx].point;
      const Compiler compiler(p.options);
      const CompileResult compiled = compiler.compileSource(p.source);
      report.verdicts.push_back(verifyKernel(p.label, p.source, compiled, opt));
    }
  }
  return report;
}

} // namespace roccc
