file(REMOVE_RECURSE
  "CMakeFiles/edge_detect.dir/edge_detect.cpp.o"
  "CMakeFiles/edge_detect.dir/edge_detect.cpp.o.d"
  "edge_detect"
  "edge_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
