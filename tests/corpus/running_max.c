/* Running maximum: a feedback register updated under a condition, streamed
   out per iteration and exported after the last one. */
int16 mx = -32768;
void running_max(const int16 A[64], int16 M[64], int16* last) {
  int i;
  for (i = 0; i < 64; i++) {
    if (A[i] > mx) {
      mx = A[i];
    }
    M[i] = mx;
  }
  *last = mx;
}
