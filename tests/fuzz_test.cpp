// Randomized end-to-end property testing: generate random streaming kernels
// in the ROCCC subset, compile them through the full pipeline, and check
// that the cycle-accurate hardware matches the AST interpreter bit-for-bit
// on random inputs. This exercises the cross product of expression shapes,
// types, branches, feedback, windows and strides far beyond the hand-
// written tests.
// The kernel generator itself lives in kernel_fuzzer.hpp, shared with the
// thread-pool stress suite (driver_stress_test.cpp).
#include <gtest/gtest.h>

#include <random>

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "hlir/cosim.hpp"
#include "kernel_fuzzer.hpp"
#include "roccc/compiler.hpp"
#include "support/strings.hpp"

namespace roccc {
namespace {

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, CompiledHardwareMatchesInterpreter) {
  KernelFuzzer fuzzer(GetParam());
  for (int round = 0; round < 8; ++round) {
    const auto g = fuzzer.generate();
    Compiler c;
    const CompileResult r = c.compileSource(g.source);
    ASSERT_TRUE(r.ok) << g.source << "\n" << r.diags.dump();
    const CosimReport rep = cosimulate(r, g.source, g.inputs);
    ASSERT_TRUE(rep.match) << g.source << "\n" << rep.mismatch << "\n" << r.datapath.dump();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

// Deep pipelining fuzz: same kernels at an aggressive stage target.
class FuzzPipelineSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzPipelineSweep, AggressivePipeliningPreservesSemantics) {
  KernelFuzzer fuzzer(GetParam() * 7919);
  for (int round = 0; round < 4; ++round) {
    const auto g = fuzzer.generate();
    CompileOptions opt;
    opt.dpOptions.targetStageDelayNs = 1.5;
    Compiler c(opt);
    const CompileResult r = c.compileSource(g.source);
    ASSERT_TRUE(r.ok) << g.source << "\n" << r.diags.dump();
    const CosimReport rep = cosimulate(r, g.source, g.inputs);
    ASSERT_TRUE(rep.match) << g.source << "\n" << rep.mismatch;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipelineSweep, ::testing::Values(2, 4, 6, 10, 12));

// Width-inference fuzz: inference on/off must agree.
class FuzzWidthSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzWidthSweep, AllWidthModesAgree) {
  KernelFuzzer fuzzer(GetParam() * 104729);
  for (int round = 0; round < 4; ++round) {
    const auto g = fuzzer.generate();
    CompileOptions range;
    CompileOptions portOpcode;
    portOpcode.dpOptions.widthMode = dp::BuildOptions::WidthMode::PortOpcode;
    CompileOptions off;
    off.dpOptions.inferBitWidths = false;
    for (const CompileOptions& opt : {range, portOpcode, off}) {
      Compiler c(opt);
      const CompileResult r = c.compileSource(g.source);
      ASSERT_TRUE(r.ok) << g.source;
      const auto rep = cosimulate(r, g.source, g.inputs);
      ASSERT_TRUE(rep.match) << g.source << "\n" << rep.mismatch << "\n" << r.datapath.dump();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzWidthSweep, ::testing::Values(3, 9, 27, 81));

// Compiler-configuration fuzz: the cross product of the scalar optimization
// pipeline (on/off) and call-to-LUT conversion (on/off) must produce
// hardware with identical observable behavior, and on every configuration
// the fast engine must agree both with the interpreter and with the
// reference netlist engine driven through the same System.
class FuzzEngineConfigSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEngineConfigSweep, OptimizeAndLutConfigsAgreeOnBothEngines) {
  KernelFuzzer fuzzer(GetParam() * 2654435761ull);
  for (int round = 0; round < 3; ++round) {
    const auto g = fuzzer.generate();
    bool haveBaseline = false;
    interp::KernelIO baseline;
    for (const bool optimize : {true, false}) {
      for (const bool luts : {true, false}) {
        CompileOptions opt;
        opt.optimize = optimize;
        opt.convertCallsToLuts = luts;
        Compiler c(opt);
        const CompileResult r = c.compileSource(g.source);
        ASSERT_TRUE(r.ok) << g.source << "\n" << r.diags.dump();
        // Fast engine vs interpreter (cosimulate defaults to SimEngine::Fast).
        const CosimReport rep = cosimulate(r, g.source, g.inputs);
        ASSERT_TRUE(rep.match) << "optimize=" << optimize << " luts=" << luts << "\n"
                               << g.source << "\n" << rep.mismatch;
        // Fast engine vs the reference engine on the identical circuit.
        rtl::SystemOptions refOpt;
        refOpt.engine = rtl::SimEngine::Reference;
        rtl::System refSys(r.kernel, r.datapath, r.module, refOpt);
        const interp::KernelIO refOut = refSys.run(g.inputs);
        ASSERT_TRUE(refOut.arrays == rep.hardware.arrays && refOut.scalars == rep.hardware.scalars)
            << "reference and fast engines disagree (optimize=" << optimize << " luts=" << luts
            << ")\n" << g.source;
        // All four compiler configurations observe the same kernel semantics.
        if (!haveBaseline) {
          baseline = rep.hardware;
          haveBaseline = true;
        } else {
          ASSERT_TRUE(baseline.arrays == rep.hardware.arrays &&
                      baseline.scalars == rep.hardware.scalars)
              << "configuration changes output (optimize=" << optimize << " luts=" << luts
              << ")\n" << g.source;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEngineConfigSweep, ::testing::Values(7, 14, 21, 28, 42, 56));

// 2-D kernel fuzz: nested loops, rectangular windows, line-buffered smart
// buffers. Complements the 1-D fuzzer above.
class Fuzz2DSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Fuzz2DSweep, TwoDimensionalKernelsMatch) {
  std::mt19937_64 rng(GetParam() * 31337);
  auto pick = [&](int n) { return static_cast<int>(rng() % static_cast<uint64_t>(n)); };
  for (int round = 0; round < 4; ++round) {
    const int wr = 1 + pick(3); // window rows 1..3
    const int wc = 1 + pick(3); // window cols 1..3
    const int rows = 4 + pick(3);
    const int cols = 5 + pick(3);
    const int inR = rows + wr - 1;
    const int inC = cols + wc - 1;
    const int bits = 6 + pick(9);
    const bool sgn = pick(2) == 0;
    const ScalarType elemTy = ScalarType::make(bits, sgn);

    // Sum of randomly weighted window elements.
    std::string expr;
    for (int r = 0; r < wr; ++r) {
      for (int c = 0; c < wc; ++c) {
        if (!expr.empty()) expr += " + ";
        const int coef = pick(7) - 3;
        std::string idx = fmt("X[i%0][j%1]", r ? fmt("+%0", r) : std::string(),
                              c ? fmt("+%0", c) : std::string());
        expr += coef == 1 ? idx : fmt("%0*%1", coef, idx);
      }
    }
    const std::string src = fmt(R"(
void k(const %0 X[%1][%2], int32 Y[%3][%4]) {
  int i;
  int j;
  for (i = 0; i < %3; i++) {
    for (j = 0; j < %4; j++) {
      Y[i][j] = %5;
    }
  }
}
)", elemTy.str(), inR, inC, rows, cols, expr);

    interp::KernelIO in;
    std::uniform_int_distribution<int64_t> dist(elemTy.minValue(), elemTy.maxValue());
    for (int i = 0; i < inR * inC; ++i) in.arrays["X"].push_back(dist(rng));

    Compiler c;
    const CompileResult r = c.compileSource(src);
    ASSERT_TRUE(r.ok) << src << "\n" << r.diags.dump();
    const CosimReport rep = cosimulate(r, src, in);
    ASSERT_TRUE(rep.match) << src << "\n" << rep.mismatch;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz2DSweep, ::testing::Values(1, 4, 7, 11, 18, 29));

// Cross-layer property: the three execution layers — software stream model
// (hlir::simulateStreams, interpreter-backed), the cycle-accurate RTL
// system, and the whole-kernel interpreter — agree on every fuzz kernel.
class FuzzLayersSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzLayersSweep, AllThreeExecutionLayersAgree) {
  KernelFuzzer fuzzer(GetParam() * 524287);
  for (int round = 0; round < 4; ++round) {
    const auto g = fuzzer.generate();
    Compiler c;
    const CompileResult r = c.compileSource(g.source);
    ASSERT_TRUE(r.ok) << g.source;
    // Layer 1: interpreter on the original kernel.
    DiagEngine d;
    ast::Module m = ast::parse(g.source, d);
    ast::analyze(m, d);
    const auto sw = interp::runKernel(m, r.kernel.kernelName, g.inputs);
    // Layer 2: stream model over the extracted kernel.
    const auto streams = hlir::simulateStreams(r.kernel, g.inputs);
    // Layer 3: cycle-accurate system.
    rtl::System sys(r.kernel, r.datapath, r.module);
    const auto hw = sys.run(g.inputs);
    for (const auto& st : r.kernel.outputs) {
      ASSERT_EQ(sw.arrays.at(st.arrayName), streams.arrays.at(st.arrayName)) << g.source;
      ASSERT_EQ(sw.arrays.at(st.arrayName), hw.arrays.at(st.arrayName)) << g.source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLayersSweep, ::testing::Values(5, 15, 25, 35, 45));

} // namespace
} // namespace roccc
