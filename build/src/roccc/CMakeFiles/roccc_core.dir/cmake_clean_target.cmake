file(REMOVE_RECURSE
  "libroccc_core.a"
)
