file(REMOVE_RECURSE
  "libroccc_dp.a"
)
