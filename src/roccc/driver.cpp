#include "roccc/driver.hpp"

#include <algorithm>
#include <future>
#include <thread>

#include "support/threadpool.hpp"
#include "support/timer.hpp"

namespace roccc {

int BatchResult::succeeded() const {
  int n = 0;
  for (const auto& r : results) {
    if (r.ok) ++n;
  }
  return n;
}

double BatchResult::kernelsPerSecond() const {
  if (wallMs <= 0) return 0;
  return static_cast<double>(results.size()) * 1000.0 / wallMs;
}

CompileService::CompileService(int workers) : workers_(workers) {
  if (workers_ <= 0) {
    workers_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

BatchResult CompileService::compileBatch(const std::vector<CompileJob>& jobs) const {
  BatchResult batch;
  batch.workers = workers_;
  batch.results.resize(jobs.size());
  WallTimer timer;

  // Each worker writes only its own pre-allocated slot; each job gets a
  // fresh Compiler and reports into the DiagEngine inside its own result.
  // Job order == result order by construction, so completion order (which
  // does vary with scheduling) is unobservable.
  auto runJob = [&jobs, &batch](size_t i) {
    const Compiler compiler(jobs[i].options);
    batch.results[i] = compiler.compileSource(jobs[i].source);
  };

  if (workers_ == 1) {
    // Serial reference path: no pool, caller's thread. jobs=1 vs jobs=N
    // byte-equality in the determinism tests compares exactly this path
    // against the pooled one.
    for (size_t i = 0; i < jobs.size(); ++i) runJob(i);
  } else {
    ThreadPool pool(static_cast<size_t>(workers_));
    std::vector<std::future<void>> pending;
    pending.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      pending.push_back(pool.submit([&runJob, i] { runJob(i); }));
    }
    for (auto& f : pending) f.get(); // propagate any job exception
  }

  batch.wallMs = timer.elapsedMs();
  return batch;
}

} // namespace roccc
