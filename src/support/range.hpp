// Signed interval arithmetic used by the data-path bit-width inference pass
// (paper section 4.2.4: "The compiler infers the inner signals' bit size
// automatically" / section 5: "We derive bit width only based on port size
// and opcodes").
//
// Intervals are tracked in 128-bit so that a 32x32 multiply never overflows
// the analysis domain. An interval that cannot be proven to fit the
// operation's C-semantics width collapses to the full range of that width —
// the inference then keeps the full 32-bit signal, which is always sound.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "support/value.hpp"

namespace roccc {

/// Closed signed interval [lo, hi] over __int128.
class ValueRange {
 public:
  using Int = __int128;

  ValueRange() = default;
  ValueRange(Int lo, Int hi) : lo_(lo), hi_(hi) {}

  /// Full range of a scalar type.
  static ValueRange ofType(ScalarType t);
  static ValueRange constant(int64_t v) { return {v, v}; }

  Int lo() const { return lo_; }
  Int hi() const { return hi_; }

  bool contains(Int v) const { return lo_ <= v && v <= hi_; }
  bool containedIn(const ValueRange& other) const { return other.lo_ <= lo_ && hi_ <= other.hi_; }

  /// Least-upper-bound (union hull), used at dataflow joins (mux inputs).
  ValueRange join(const ValueRange& other) const {
    return {std::min(lo_, other.lo_), std::max(hi_, other.hi_)};
  }

  /// Smallest two's-complement width holding every value in the range
  /// (at least 1; signed representation whenever lo < 0).
  int requiredWidth(bool* needsSign = nullptr) const;

  /// True if every value in the range is representable in `t`.
  bool fitsIn(ScalarType t) const;

  // --- Transfer functions. Each returns the exact hull of op over the two
  // --- input hulls (intervals are exact for monotone ops; mul/shift take
  // --- corner extrema; bitwise ops use conservative power-of-two bounds).
  ValueRange add(const ValueRange& b) const { return {lo_ + b.lo_, hi_ + b.hi_}; }
  ValueRange sub(const ValueRange& b) const { return {lo_ - b.hi_, hi_ - b.lo_}; }
  ValueRange mul(const ValueRange& b) const;
  ValueRange divide(const ValueRange& b) const;
  ValueRange rem(const ValueRange& b) const;
  ValueRange neg() const { return {-hi_, -lo_}; }
  ValueRange shl(const ValueRange& sh) const;
  ValueRange shr(const ValueRange& sh) const;
  ValueRange bitAnd(const ValueRange& b) const;
  ValueRange bitOr(const ValueRange& b) const;
  ValueRange bitXor(const ValueRange& b) const;
  ValueRange bitNot() const { return {~hi_, ~lo_}; }
  /// Comparison results are 1-bit.
  static ValueRange boolean() { return {0, 1}; }
  /// Conversion to a type: if the range fits, it survives; otherwise the
  /// result is the full range of the destination (wraparound discards info).
  ValueRange convertTo(ScalarType t) const;

  std::string str() const;

  friend bool operator==(const ValueRange&, const ValueRange&) = default;

 private:
  Int lo_ = 0;
  Int hi_ = 0;
};

} // namespace roccc
