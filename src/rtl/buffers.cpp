#include "rtl/buffers.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "support/strings.hpp"

namespace roccc::rtl {

// ---------------------------------------------------------------------------
// Bram
// ---------------------------------------------------------------------------

Bram::Bram(ScalarType elemType, std::vector<int64_t> contents) : elemType_(elemType) {
  data_.reserve(contents.size());
  for (int64_t v : contents) data_.push_back(Value::fromInt(elemType, v));
}

Bram::Bram(ScalarType elemType, size_t size) : elemType_(elemType) {
  data_.assign(size, Value(elemType, 0));
}

Value Bram::read(int64_t addr) const {
  if (addr < 0 || addr >= size()) {
    throw std::runtime_error(fmt("BRAM read out of range: %0 (size %1)", addr, size()));
  }
  ++const_cast<Bram*>(this)->reads;
  return data_[static_cast<size_t>(addr)];
}

void Bram::write(int64_t addr, const Value& v) {
  if (addr < 0 || addr >= size()) {
    throw std::runtime_error(fmt("BRAM write out of range: %0 (size %1)", addr, size()));
  }
  ++writes;
  data_[static_cast<size_t>(addr)] = v.convertTo(elemType_);
}

std::vector<int64_t> Bram::contents() const {
  std::vector<int64_t> out;
  out.reserve(data_.size());
  for (const Value& v : data_) out.push_back(v.toInt());
  return out;
}

// ---------------------------------------------------------------------------
// IterationWalker
// ---------------------------------------------------------------------------

IterationWalker::IterationWalker(std::vector<hlir::LoopDim> loops) : loops_(std::move(loops)) {
  for (const auto& l : loops_) total_ *= l.trips();
}

std::vector<int64_t> IterationWalker::ivsAt(int64_t t) const {
  std::vector<int64_t> ivs(loops_.size());
  int64_t rem = t;
  for (size_t li = loops_.size(); li-- > 0;) {
    const hlir::LoopDim& l = loops_[li];
    ivs[li] = l.begin + (rem % l.trips()) * l.step;
    rem /= l.trips();
  }
  return ivs;
}

// ---------------------------------------------------------------------------
// SmartBuffer
// ---------------------------------------------------------------------------

SmartBuffer::SmartBuffer(const hlir::Stream& stream, const IterationWalker& walker, int busElems)
    : stream_(stream), walker_(walker), busElems_(busElems) {
  assert(busElems_ >= 1);
  // Address envelope across the whole iteration space; affine accesses with
  // positive coefficients make the per-iteration min/max monotone, so the
  // corners are at t=0 and t=total-1.
  const int64_t total = walker_.totalIterations();
  int64_t maxSpan = 1;
  firstAddr_ = INT64_MAX;
  lastAddr_ = INT64_MIN;
  for (int64_t t : {int64_t{0}, total - 1}) {
    const auto ivs = walker_.ivsAt(t);
    for (size_t a = 0; a < stream_.offsets.size(); ++a) {
      const int64_t addr = stream_.flatAddress(a, ivs);
      firstAddr_ = std::min(firstAddr_, addr);
      lastAddr_ = std::max(lastAddr_, addr);
    }
  }
  // Span (for capacity) must consider every iteration; windows have fixed
  // shape so the span is constant — measure it at t = 0.
  {
    const auto ivs = walker_.ivsAt(0);
    int64_t lo = INT64_MAX, hi = INT64_MIN;
    for (size_t a = 0; a < stream_.offsets.size(); ++a) {
      const int64_t addr = stream_.flatAddress(a, ivs);
      lo = std::min(lo, addr);
      hi = std::max(hi, addr);
    }
    maxSpan = hi - lo + 1;
  }
  capacity_ = maxSpan + busElems_;
  fetched_ = firstAddr_;
}

int64_t SmartBuffer::maxAddrOf(int64_t t) const {
  const auto ivs = walker_.ivsAt(t);
  int64_t hi = INT64_MIN;
  for (size_t a = 0; a < stream_.offsets.size(); ++a) {
    hi = std::max(hi, stream_.flatAddress(a, ivs));
  }
  return hi;
}

void SmartBuffer::cycle(Bram& bram) {
  if (fetched_ > lastAddr_) return; // everything on chip
  const int64_t n = std::min<int64_t>(busElems_, lastAddr_ - fetched_ + 1);
  for (int64_t k = 0; k < n; ++k) {
    (void)bram.read(fetched_ + k); // counts traffic; data served from BRAM below
  }
  fetched_ += n;
}

bool SmartBuffer::windowReady(int64_t t) const { return fetched_ > maxAddrOf(t); }

std::vector<Value> SmartBuffer::window(const Bram& bram, int64_t t) const {
  assert(windowReady(t));
  const auto ivs = walker_.ivsAt(t);
  std::vector<Value> out;
  out.reserve(stream_.offsets.size());
  const int64_t before = bram.reads;
  for (size_t a = 0; a < stream_.offsets.size(); ++a) {
    out.push_back(bram.read(stream_.flatAddress(a, ivs)));
  }
  // Those reads came from the on-chip buffer, not BRAM: undo the count.
  const_cast<Bram&>(bram).reads = before;
  return out;
}

// ---------------------------------------------------------------------------
// NaiveBuffer
// ---------------------------------------------------------------------------

NaiveBuffer::NaiveBuffer(const hlir::Stream& stream, const IterationWalker& walker, int busElems)
    : stream_(stream), walker_(walker), busElems_(busElems) {}

void NaiveBuffer::cycle(Bram& bram) {
  if (currentIter_ >= walker_.totalIterations()) return;
  const int64_t windowElems = static_cast<int64_t>(stream_.offsets.size());
  if (elemsFetched_ >= windowElems) return;
  const int64_t n = std::min<int64_t>(busElems_, windowElems - elemsFetched_);
  const auto ivs = walker_.ivsAt(currentIter_);
  for (int64_t k = 0; k < n; ++k) {
    (void)bram.read(stream_.flatAddress(static_cast<size_t>(elemsFetched_ + k), ivs));
    ++fetches_;
  }
  elemsFetched_ += n;
}

bool NaiveBuffer::windowReady(int64_t t) const {
  return t == currentIter_ && elemsFetched_ >= static_cast<int64_t>(stream_.offsets.size());
}

std::vector<Value> NaiveBuffer::window(const Bram& bram, int64_t t) const {
  assert(windowReady(t));
  const auto ivs = walker_.ivsAt(t);
  std::vector<Value> out;
  const int64_t before = bram.reads;
  for (size_t a = 0; a < stream_.offsets.size(); ++a) {
    out.push_back(bram.read(stream_.flatAddress(a, ivs)));
  }
  const_cast<Bram&>(bram).reads = before;
  return out;
}

int64_t NaiveBuffer::capacityElems() const { return static_cast<int64_t>(stream_.offsets.size()); }

void NaiveBuffer::advance() {
  ++currentIter_;
  elemsFetched_ = 0;
}

// ---------------------------------------------------------------------------
// OutputCollector
// ---------------------------------------------------------------------------

OutputCollector::OutputCollector(const hlir::Stream& stream, const IterationWalker& walker,
                                 int busElems, size_t fifoDepth)
    : stream_(stream), walker_(walker), busElems_(busElems), fifoDepth_(fifoDepth) {}

void OutputCollector::push(int64_t t, std::vector<Value> values) {
  assert(hasRoom());
  assert(values.size() == stream_.offsets.size());
  fifo_.push_back({t, std::move(values), 0});
}

void OutputCollector::cycle(Bram& bram) {
  int budget = busElems_;
  while (budget > 0 && !fifo_.empty()) {
    Pending& p = fifo_.front();
    const auto ivs = walker_.ivsAt(p.iter);
    while (budget > 0 && p.written < p.values.size()) {
      bram.write(stream_.flatAddress(p.written, ivs), p.values[p.written]);
      ++p.written;
      ++writes_;
      --budget;
    }
    if (p.written == p.values.size()) {
      fifo_.erase(fifo_.begin());
    } else {
      break;
    }
  }
}

} // namespace roccc::rtl
