// synth::TimingModel unit tests plus the estimator-side regression suite:
// the built-in Virtex-II-class rows match their closed forms, model files
// parse/dump/round-trip with line-numbered errors, dp staging delegates to
// the same table, operand-width-aware cell costing behaves (the
// compare/mux-chain fix), and the Table 1 slice counts are pinned so any
// cost-table drift shows up as a reviewable diff of expectations.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "../bench/kernels.hpp"
#include "dp/datapath.hpp"
#include "roccc/compiler.hpp"
#include "synth/estimate.hpp"
#include "synth/timing.hpp"

namespace roccc {
namespace {

using synth::Primitive;
using synth::PrimitiveCost;
using synth::TimingModel;

TEST(TimingModel, BuiltinRowsMatchClosedForms) {
  const TimingModel& m = TimingModel::virtex2();
  for (int w : {1, 8, 12, 18, 32, 64}) {
    EXPECT_DOUBLE_EQ(m.delayNs(Primitive::Add, w), 0.62 + 0.042 * w) << w;
    EXPECT_DOUBLE_EQ(m.cost(Primitive::Add, w).lut4, w) << w;
    EXPECT_DOUBLE_EQ(m.delayNs(Primitive::MulLut, w), 2.8 + 0.11 * w) << w;
    EXPECT_DOUBLE_EQ(m.cost(Primitive::MulLut, w).lut4, 0.55 * w * w) << w;
    EXPECT_DOUBLE_EQ(m.delayNs(Primitive::Mul18, w), w <= 18 ? 4.9 : 8.5) << w;
    const double blocks = static_cast<double>((w + 16) / 17) * ((w + 16) / 17);
    EXPECT_DOUBLE_EQ(m.cost(Primitive::Mul18, w).mult18, blocks) << w;
    EXPECT_DOUBLE_EQ(m.delayNs(Primitive::Div, w), w * (0.62 + 0.042 * w)) << w;
    EXPECT_DOUBLE_EQ(m.delayNs(Primitive::Cmp, w), 0.55 + 0.035 * w) << w;
    EXPECT_DOUBLE_EQ(m.cost(Primitive::Cmp, w).lut4, (w + 1) / 2 + 1) << w;
    EXPECT_DOUBLE_EQ(m.delayNs(Primitive::Mux, w), 0.5) << w;
    EXPECT_DOUBLE_EQ(m.cost(Primitive::Reg, w).ff, w) << w;
  }
  EXPECT_DOUBLE_EQ(m.delayNs(Primitive::Rom, 8), 2.0);
}

TEST(TimingModel, BuiltinEnergyDerivesFromCapacitances) {
  const TimingModel& m = TimingModel::virtex2();
  const PrimitiveCost add32 = m.cost(Primitive::Add, 32);
  // 32 LUTs * 4 pF * 1.5V^2 = 288 pJ; leakage 32 * 1.5 uW.
  EXPECT_DOUBLE_EQ(add32.dynamicPj, 32 * 4.0 * 1.5 * 1.5);
  EXPECT_DOUBLE_EQ(add32.leakageUw, 32 * 1.5);
  const PrimitiveCost reg16 = m.cost(Primitive::Reg, 16);
  EXPECT_DOUBLE_EQ(reg16.dynamicPj, 16 * 2.0 * 1.5 * 1.5);
  EXPECT_DOUBLE_EQ(reg16.leakageUw, 16 * 0.8);
}

TEST(TimingModel, InterpolatesBetweenBreakpointsAndClampsOutside) {
  TimingModel m;
  std::string err;
  ASSERT_TRUE(TimingModel::parse("add 8 1.0 0 8 0\nadd 16 3.0 0 24 0\n", m, err)) << err;
  EXPECT_DOUBLE_EQ(m.delayNs(Primitive::Add, 8), 1.0);
  EXPECT_DOUBLE_EQ(m.delayNs(Primitive::Add, 16), 3.0);
  EXPECT_DOUBLE_EQ(m.delayNs(Primitive::Add, 12), 2.0);        // midway
  EXPECT_DOUBLE_EQ(m.cost(Primitive::Add, 12).lut4, 16.0);     // midway
  EXPECT_DOUBLE_EQ(m.delayNs(Primitive::Add, 2), 1.0);         // clamp below
  EXPECT_DOUBLE_EQ(m.delayNs(Primitive::Add, 64), 3.0);        // clamp above
  // Untouched primitives keep the dense built-in rows.
  EXPECT_DOUBLE_EQ(m.delayNs(Primitive::Cmp, 32), 0.55 + 0.035 * 32);
}

TEST(TimingModel, EmptySpecYieldsBuiltinTable) {
  TimingModel m;
  std::string err;
  ASSERT_TRUE(TimingModel::parse("", m, err)) << err;
  EXPECT_EQ(m.name, TimingModel::virtex2().name);
  EXPECT_DOUBLE_EQ(m.delayNs(Primitive::MulLut, 12), TimingModel::virtex2().delayNs(Primitive::MulLut, 12));
}

TEST(TimingModel, FirstRowForAPrimitiveDiscardsItsBuiltins) {
  TimingModel m;
  std::string err;
  ASSERT_TRUE(TimingModel::parse("add 32 9.0 0 99 0\n", m, err)) << err;
  // Only one row left for add: every width clamps to it.
  EXPECT_DOUBLE_EQ(m.delayNs(Primitive::Add, 1), 9.0);
  EXPECT_DOUBLE_EQ(m.delayNs(Primitive::Add, 64), 9.0);
  EXPECT_EQ(m.rows[static_cast<size_t>(Primitive::Add)].size(), 1u);
}

TEST(TimingModel, ScalarDirectivesOverride) {
  TimingModel m;
  std::string err;
  const std::string spec = "model cold-device\n"
                           "clock-overhead-ns 1.25\n"
                           "routing-per-hop-ns 0.9\n"
                           "core-voltage 1.0\n"
                           "cap-lut-pf 2.0\n";
  ASSERT_TRUE(TimingModel::parse(spec, m, err)) << err;
  EXPECT_EQ(m.name, "cold-device");
  EXPECT_DOUBLE_EQ(m.clockOverheadNs, 1.25);
  EXPECT_DOUBLE_EQ(m.routingPerHopNs, 0.9);
  // resourceDynamicPj follows the new scalars: 1 LUT * 2 pF * 1.0V^2.
  EXPECT_DOUBLE_EQ(m.resourceDynamicPj(1, 0, 0, 0), 2.0);
}

TEST(TimingModel, ExplicitEnergyColumnsWinOverDerivation) {
  TimingModel m;
  std::string err;
  ASSERT_TRUE(TimingModel::parse("add 32 1.0 0 32 0 0 0 7.5 1.25\n", m, err)) << err;
  EXPECT_DOUBLE_EQ(m.cost(Primitive::Add, 32).dynamicPj, 7.5);
  EXPECT_DOUBLE_EQ(m.cost(Primitive::Add, 32).leakageUw, 1.25);
}

TEST(TimingModel, DumpParsesBackIdentically) {
  const TimingModel& built = TimingModel::virtex2();
  TimingModel round;
  std::string err;
  ASSERT_TRUE(TimingModel::parse(built.dump(), round, err)) << err;
  EXPECT_EQ(round.name, built.name);
  EXPECT_DOUBLE_EQ(round.clockOverheadNs, built.clockOverheadNs);
  for (int p = 0; p < synth::kPrimitiveCount; ++p) {
    const auto prim = static_cast<Primitive>(p);
    ASSERT_EQ(round.rows[static_cast<size_t>(p)].size(), built.rows[static_cast<size_t>(p)].size());
    for (int w : {1, 7, 18, 33, 64}) {
      EXPECT_NEAR(round.delayNs(prim, w), built.delayNs(prim, w), 1e-9) << p << ' ' << w;
      EXPECT_NEAR(round.cost(prim, w).dynamicPj, built.cost(prim, w).dynamicPj, 1e-6)
          << p << ' ' << w;
    }
  }
}

TEST(TimingModel, ParseErrorsCarryLineNumbers) {
  TimingModel m;
  std::string err;
  EXPECT_FALSE(TimingModel::parse("model x\nbogus-directive 3\n", m, err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("bogus-directive"), std::string::npos) << err;

  EXPECT_FALSE(TimingModel::parse("add 32 -1 0 32 0\n", m, err));
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  EXPECT_NE(err.find(">= 0"), std::string::npos) << err;

  EXPECT_FALSE(TimingModel::parse("add 0 1.0 0 32 0\n", m, err));
  EXPECT_NE(err.find("width out of range"), std::string::npos) << err;

  EXPECT_FALSE(TimingModel::parse("clock-overhead-ns banana\n", m, err));
  EXPECT_NE(err.find("numeric"), std::string::npos) << err;

  EXPECT_FALSE(TimingModel::parse("add 32 1.0 0 32 0 0 0 1 1 extra\n", m, err));
  EXPECT_NE(err.find("trailing garbage"), std::string::npos) << err;
}

TEST(TimingModel, PrimitiveNamesRoundTrip) {
  for (int p = 0; p < synth::kPrimitiveCount; ++p) {
    const auto prim = static_cast<Primitive>(p);
    Primitive back;
    ASSERT_TRUE(synth::primitiveByName(synth::primitiveName(prim), back));
    EXPECT_EQ(back, prim);
  }
  Primitive unused;
  EXPECT_FALSE(synth::primitiveByName("madd", unused));
}

// --- dp staging delegates to the same table ---------------------------------

TEST(TimingModel, DpOpDelayDelegatesToBuiltinModel) {
  using dp::BuildOptions;
  const TimingModel& m = TimingModel::virtex2();
  for (int w : {8, 16, 32}) {
    EXPECT_DOUBLE_EQ(dp::opDelayNs(mir::Opcode::Add, w, BuildOptions::MultStyle::Lut),
                     dp::opDelayNs(m, mir::Opcode::Add, w, BuildOptions::MultStyle::Lut));
    EXPECT_DOUBLE_EQ(dp::opDelayNs(mir::Opcode::Mul, w, BuildOptions::MultStyle::Lut),
                     m.delayNs(Primitive::MulLut, w));
    EXPECT_DOUBLE_EQ(dp::opDelayNs(mir::Opcode::Mul, w, BuildOptions::MultStyle::Mult18),
                     m.delayNs(Primitive::Mul18, w));
    EXPECT_DOUBLE_EQ(dp::opDelayNs(mir::Opcode::Slt, w, BuildOptions::MultStyle::Lut),
                     m.delayNs(Primitive::Cmp, w));
  }
}

// --- operand-width-aware cell costing (the compare/mux-chain fix) -----------

rtl::Module cmpModule(int operandWidth) {
  rtl::Module m;
  m.name = "cmp";
  const int a = m.addNet(ScalarType::make(operandWidth, true), "a");
  const int b = m.addNet(ScalarType::make(operandWidth, true), "b");
  m.inputPorts = {a, b};
  m.inputNames = {"a", "b"};
  const int o = m.addNet(ScalarType::make(1, false), "o");
  m.addCell(rtl::CellKind::Lt, {a, b}, o);
  m.outputPorts = {o};
  m.outputNames = {"o"};
  return m;
}

TEST(EstimateWidthFix, CompareIsCostedByOperandWidthNotResultWidth) {
  // A comparator's result is one bit; its carry chain spans the operands.
  // The old estimator priced the Lt cell by the 1-bit result, making an
  // 8-bit and a 32-bit compare cost the same.
  const auto narrow = synth::estimate(cmpModule(8));
  const auto wide = synth::estimate(cmpModule(32));
  EXPECT_GT(wide.res.lut4, narrow.res.lut4);
  EXPECT_GT(wide.criticalPathNs, narrow.criticalPathNs);
  const TimingModel& tm = TimingModel::virtex2();
  EXPECT_DOUBLE_EQ(wide.res.lut4, std::ceil(tm.cost(Primitive::Cmp, 32).lut4));
}

rtl::Module muxModule(int dataWidth, int outWidth) {
  rtl::Module m;
  m.name = "mux";
  const int sel = m.addNet(ScalarType::make(1, false), "sel");
  const int a = m.addNet(ScalarType::make(dataWidth, true), "a");
  const int b = m.addNet(ScalarType::make(dataWidth, true), "b");
  m.inputPorts = {sel, a, b};
  m.inputNames = {"sel", "a", "b"};
  const int o = m.addNet(ScalarType::make(outWidth, true), "o");
  m.addCell(rtl::CellKind::Mux, {sel, a, b}, o);
  m.outputPorts = {o};
  m.outputNames = {"o"};
  return m;
}

TEST(EstimateWidthFix, MuxIsCostedByDataWidthAndIgnoresSelect) {
  // A narrowing mux still steers its full-width data inputs; the 1-bit
  // select must not drag the width down.
  const auto narrowing = synth::estimate(muxModule(32, 8));
  EXPECT_DOUBLE_EQ(narrowing.res.lut4, 32.0);
  const auto plain = synth::estimate(muxModule(16, 16));
  EXPECT_DOUBLE_EQ(plain.res.lut4, 16.0);
}

TEST(EstimateWidthFix, EnergyFieldsArePopulated) {
  const auto rep = synth::estimate(cmpModule(16));
  EXPECT_GT(rep.dynamicPjPerCycle, 0.0);
  EXPECT_GT(rep.leakageMw, 0.0);
  EXPECT_GT(rep.energyPerCyclePj(), 0.0);
  EXPECT_GT(rep.edpPjNs(), rep.energyPerCyclePj()); // criticalPath > 1 ns here
}

TEST(EstimateWidthFix, EstimateHonorsTimingOverride) {
  TimingModel slow;
  std::string err;
  ASSERT_TRUE(TimingModel::parse("cmp 16 9.0 0 200 0\n", slow, err)) << err;
  synth::EstimateOptions eo;
  eo.timing = &slow;
  const auto rep = synth::estimate(cmpModule(16), eo);
  EXPECT_DOUBLE_EQ(rep.res.lut4, 200.0);
  EXPECT_GT(rep.criticalPathNs, 9.0);
}

// --- Table 1 slice regression ------------------------------------------------

struct SliceRow {
  const char* name;
  int64_t slices;
};

// Pinned against the current cost table; an intentional table change must
// update these together with the goldens, an accidental one fails here.
constexpr SliceRow kExpectedSlices[] = {
    {"bit_correlator", 46}, {"mul_acc", 43}, {"mul_acc_predicated", 48},
    {"udiv", 155},          {"square_root", 707}, {"cos", 512},
    {"fir", 74},            {"dct", 1097},   {"wavelet", 103},
};

TEST(Table1Slices, PinnedAgainstCostTable) {
  for (const auto& row : kExpectedSlices) {
    const bench::NamedKernel* k = nullptr;
    for (const auto& cand : bench::kTable1Kernels) {
      if (std::string(cand.name) == row.name) k = &cand;
    }
    ASSERT_NE(k, nullptr) << row.name;
    CompileOptions opt;
    if (k->targetStageDelayNs > 0) opt.dpOptions.targetStageDelayNs = k->targetStageDelayNs;
    const CompileResult r = Compiler(opt).compileSource(k->source);
    ASSERT_TRUE(r.ok) << row.name << "\n" << r.diags.dump();
    const auto rep = synth::estimate(r.module);
    EXPECT_EQ(rep.slices, row.slices) << row.name;
  }
}

} // namespace
} // namespace roccc
