# Empty compiler generated dependencies file for hlir_transforms_test.
# This may be replaced when dependencies are built.
