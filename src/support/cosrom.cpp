#include "support/cosrom.hpp"

#include <cmath>

namespace roccc {

int64_t cosRomEntry(int index, bool sine) {
  const double kTwoPi = 6.28318530717958647692;
  const double phase = kTwoPi * (static_cast<double>(index & 1023) / 1024.0);
  const double v = sine ? std::sin(phase) : std::cos(phase);
  return static_cast<int64_t>(v * 32767.0);
}

} // namespace roccc
