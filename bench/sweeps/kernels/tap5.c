// 5-tap sliding-window sum — the smart-buffer reuse ablation kernel
// (bench/sweeps/smart_buffer.sweep): the smart buffer reads each element
// once; a naive buffer re-fetches the whole window per iteration.
void tap5(const int16 A[68], int32 C[64]) {
  int i;
  for (i = 0; i < 64; i++) {
    C[i] = A[i+0] + A[i+1] + A[i+2] + A[i+3] + A[i+4];
  }
}
