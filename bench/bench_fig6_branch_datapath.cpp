// Reproduces Figures 5 and 6: the alternative-branch kernel and its data
// path with soft nodes (CFG blocks) plus the compiler-added hard nodes —
// the MUX node merging the branch results and the PIPE node copying live
// variables past the branches.
#include <cstdio>

#include "dp/datapath.hpp"
#include "roccc/compiler.hpp"

static const char* kIfElseKernel = R"(
void branches(const int16 X1[32], const int16 X2[32], int32 X3[32], int32 X4[32]) {
  int i;
  int a;
  int c;
  for (i = 0; i < 32; i++) {
    c = X1[i] - X2[i];
    if (c < X2[i]) {
      a = X1[i] * X1[i];
    } else {
      a = X1[i] * X2[i] + 3;
    }
    c = c - a;
    X3[i] = c;
    X4[i] = a;
  }
}
)";

int main() {
  using namespace roccc;
  Compiler comp;
  const CompileResult r = comp.compileSource(kIfElseKernel);
  if (!r.ok) {
    std::fprintf(stderr, "%s\n", r.diags.dump().c_str());
    return 1;
  }

  std::printf("Figure 5 - the alternative branch in C (as a streaming kernel):\n%s\n",
              kIfElseKernel);
  std::printf("Figure 6 - the generated data path. Soft nodes mirror the CFG; the MUX and\n");
  std::printf("PIPE nodes are hardware-only (\"hard\") nodes:\n\n");
  std::printf("%s\n", r.datapath.dumpStructure().c_str());

  int softs = 0, muxes = 0, pipes = 0;
  for (const auto& n : r.datapath.nodes) {
    switch (n.kind) {
      case dp::NodeKind::Soft: ++softs; break;
      case dp::NodeKind::Mux: ++muxes; break;
      case dp::NodeKind::Pipe: ++pipes; break;
    }
  }
  std::printf("node census: %d soft (paper Fig 6: nodes 1-4), %d mux (node 7), %d pipe (node 6)\n",
              softs, muxes, pipes);
  std::printf("mux operations (phi merges): %d\n", r.datapath.muxOpCount);
  std::printf("\nFull op-level dump:\n%s\n", r.datapath.dump().c_str());

  // Behavior check on the paper's example values: x1=9, x2=2 -> x3=-14, x4=21.
  interp::KernelIO in;
  for (int i = 0; i < 32; ++i) {
    in.arrays["X1"].push_back(9);
    in.arrays["X2"].push_back(2);
  }
  const auto rep = cosimulate(r, kIfElseKernel, in);
  std::printf("paper values x1=9,x2=2: hw x3=%lld x4=%lld (expect -14, 21) -> %s\n",
              static_cast<long long>(rep.hardware.arrays.at("X3")[0]),
              static_cast<long long>(rep.hardware.arrays.at("X4")[0]),
              rep.match ? "MATCH" : "MISMATCH");
  return rep.match ? 0 : 1;
}
