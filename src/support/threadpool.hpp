// Fixed-size worker thread pool with a bounded job queue.
//
// The pool that backs roccc::CompileService: N workers drain a FIFO of
// type-erased jobs; submit() blocks once `maxQueued` jobs are waiting
// (back-pressure, so a producer enqueueing thousands of compiles cannot
// balloon memory), and returns a std::future for the job's completion.
// Jobs must not submit to the pool they run on (the bounded queue could
// deadlock); the batch driver fans out from the caller's thread only.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace roccc {

class ThreadPool {
 public:
  /// `workers` == 0 picks std::thread::hardware_concurrency() (min 1).
  /// `maxQueued` bounds the number of not-yet-started jobs; submit()
  /// blocks when the queue is full.
  explicit ThreadPool(size_t workers = 0, size_t maxQueued = 1024);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `job`; blocks while the queue holds `maxQueued` pending
  /// jobs. The future resolves when the job finishes (exceptions from the
  /// job propagate through the future).
  std::future<void> submit(std::function<void()> job);

  /// Blocks until every job submitted so far has finished.
  void waitIdle();

  size_t workerCount() const { return threads_.size(); }
  size_t maxQueued() const { return maxQueued_; }

 private:
  void workerLoop();

  const size_t maxQueued_;
  std::mutex mutex_;
  std::condition_variable jobReady_;   ///< signals workers: queue non-empty or stopping
  std::condition_variable queueSpace_; ///< signals producers: queue below the bound
  std::condition_variable idle_;       ///< signals waitIdle: no queued or running jobs
  std::deque<std::packaged_task<void()>> queue_;
  size_t running_ = 0; ///< jobs currently executing on a worker
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

} // namespace roccc
