# Empty compiler generated dependencies file for roccc_core.
# This may be replaced when dependencies are built.
