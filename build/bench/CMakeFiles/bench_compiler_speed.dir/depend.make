# Empty dependencies file for bench_compiler_speed.
# This may be replaced when dependencies are built.
