file(REMOVE_RECURSE
  "libroccc_hlir.a"
)
