#include "rtl/system.hpp"

#include <cassert>
#include <stdexcept>

#include "rtl/vcd.hpp"
#include "support/strings.hpp"

namespace roccc::rtl {

double SystemStats::steadyStateThroughput() const {
  if (enabledCycles == 0) return 0;
  return static_cast<double>(outputElems) / static_cast<double>(enabledCycles);
}

System::System(const hlir::KernelInfo& kernel, const dp::DataPath& dp, const Module& module,
               SystemOptions options)
    : kernel_(kernel), dp_(dp), module_(module), opt_(options) {}

interp::KernelIO System::run(const interp::KernelIO& io) {
  stats_ = SystemStats{};
  stats_.pipelineStages = dp_.stageCount;

  IterationWalker walker(kernel_.loops);
  const int64_t total = walker.totalIterations();

  // --- memories -------------------------------------------------------------
  std::vector<Bram> inBrams;
  for (const auto& st : kernel_.inputs) {
    const auto it = io.arrays.find(st.arrayName);
    if (it == io.arrays.end()) {
      throw std::runtime_error(fmt("input array '%0' not bound", st.arrayName));
    }
    int64_t n = 1;
    for (int64_t d : st.dims) n *= d;
    if (static_cast<int64_t>(it->second.size()) != n) {
      throw std::runtime_error(fmt("array '%0': %1 elements bound, %2 expected", st.arrayName,
                                   it->second.size(), n));
    }
    inBrams.emplace_back(st.elemType, it->second);
  }
  std::vector<Bram> outBrams;
  for (const auto& st : kernel_.outputs) {
    int64_t n = 1;
    for (int64_t d : st.dims) n *= d;
    outBrams.emplace_back(st.elemType, static_cast<size_t>(n));
  }

  // --- buffers / collectors ----------------------------------------------------
  std::vector<std::unique_ptr<InputBuffer>> buffers;
  std::vector<NaiveBuffer*> naive;
  for (const auto& st : kernel_.inputs) {
    if (opt_.useSmartBuffer) {
      buffers.push_back(std::make_unique<SmartBuffer>(st, walker, opt_.inputBusElems));
    } else {
      auto nb = std::make_unique<NaiveBuffer>(st, walker, opt_.inputBusElems);
      naive.push_back(nb.get());
      buffers.push_back(std::move(nb));
    }
  }
  std::vector<OutputCollector> collectors;
  for (const auto& st : kernel_.outputs) {
    const int bus = opt_.outputBusElems > 0 ? opt_.outputBusElems : st.accessCount();
    collectors.emplace_back(st, walker, bus);
  }

  // --- port wiring ----------------------------------------------------------------
  // dp input port -> source.
  struct InSource {
    enum class Kind { Window, Scalar, Induction } kind = Kind::Scalar;
    size_t stream = 0, access = 0;
    Value scalar;
    int loop = 0;
  };
  std::vector<InSource> inSources;
  for (const auto& port : dp_.inputs) {
    InSource src;
    bool found = false;
    for (size_t s = 0; s < kernel_.inputs.size() && !found; ++s) {
      const auto& st = kernel_.inputs[s];
      for (size_t a = 0; a < st.scalarNames.size(); ++a) {
        if (st.scalarNames[a] == port.name) {
          src.kind = InSource::Kind::Window;
          src.stream = s;
          src.access = a;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      for (const auto& si : kernel_.scalarInputs) {
        if (si.name != port.name) continue;
        if (si.isInduction) {
          src.kind = InSource::Kind::Induction;
          src.loop = si.loop;
        } else {
          const auto it = io.scalars.find(si.name);
          if (it == io.scalars.end()) {
            throw std::runtime_error(fmt("scalar input '%0' not bound", si.name));
          }
          src.kind = InSource::Kind::Scalar;
          src.scalar = Value::fromInt(si.type, it->second);
        }
        found = true;
        break;
      }
    }
    if (!found) throw std::runtime_error(fmt("no source for data-path input '%0'", port.name));
    inSources.push_back(std::move(src));
  }

  // dp output port -> sink.
  struct OutSink {
    enum class Kind { Window, Scalar } kind = Kind::Scalar;
    size_t stream = 0, access = 0;
    std::string scalarName;
  };
  std::vector<OutSink> outSinks;
  for (const auto& port : dp_.outputs) {
    OutSink sink;
    bool found = false;
    for (size_t s = 0; s < kernel_.outputs.size() && !found; ++s) {
      const auto& st = kernel_.outputs[s];
      for (size_t a = 0; a < st.scalarNames.size(); ++a) {
        if (st.scalarNames[a] == port.name) {
          sink.kind = OutSink::Kind::Window;
          sink.stream = s;
          sink.access = a;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      sink.kind = OutSink::Kind::Scalar;
      sink.scalarName = port.name;
      found = true;
    }
    outSinks.push_back(std::move(sink));
  }

  // --- main clock loop ---------------------------------------------------------------
  // Either engine clocks the data path; they are differentially tested to be
  // bit-exact (tests/fastsim_diff_test.cpp), so the choice only affects speed.
  std::unique_ptr<NetlistSim> refSim;
  std::unique_ptr<FastSim> fastSim;
  if (opt_.engine == SimEngine::Reference) {
    refSim = std::make_unique<NetlistSim>(module_);
    refSim->reset();
  } else {
    fastSim = std::make_unique<FastSim>(module_);
  }
  auto setSimInput = [&](size_t port, const Value& v) {
    if (refSim) {
      refSim->setInput(port, v);
    } else {
      fastSim->setInput(port, v);
    }
  };
  auto evalSim = [&] { refSim ? refSim->eval() : fastSim->eval(); };
  auto tickSim = [&](bool en) { refSim ? refSim->tick(en) : fastSim->tick(en); };
  auto simOutput = [&](size_t port) { return refSim ? refSim->output(port) : fastSim->output(port); };
  std::unique_ptr<VcdRecorder> vcdRecorder;
  if (opt_.recordVcd) vcdRecorder = std::make_unique<VcdRecorder>(module_, /*onlyNamed=*/true);
  const int latency = module_.latency;

  int64_t issued = 0;
  int64_t captured = 0;
  int64_t enabledCount = 0;
  std::map<std::string, int64_t> scalarOuts;
  std::map<std::string, int64_t> fbFinal;
  for (const auto& fb : dp_.feedbacks) fbFinal[fb.name] = fb.initial;

  auto allDrained = [&]() {
    for (const auto& c : collectors) {
      if (!c.drained()) return false;
    }
    return true;
  };

  int64_t cycle = 0;
  while (captured < total || !allDrained()) {
    if (++cycle > opt_.cycleLimit) {
      throw std::runtime_error(fmt("cycle limit exceeded (%0 cycles, %1/%2 iterations)",
                                   opt_.cycleLimit, captured, total));
    }
    // Memory-side work.
    for (size_t b = 0; b < buffers.size(); ++b) buffers[b]->cycle(inBrams[b]);
    for (size_t c = 0; c < collectors.size(); ++c) collectors[c].cycle(outBrams[c]);

    bool canIssue = issued < total;
    for (size_t b = 0; b < buffers.size() && canIssue; ++b) {
      if (!buffers[b]->windowReady(issued)) canIssue = false;
    }
    for (const auto& c : collectors) {
      if (!c.hasRoom()) canIssue = false;
    }
    const bool flushing = issued == total && captured < total;
    const bool enable = canIssue || flushing;

    // Valid strobe: high exactly when a real iteration enters the pipe.
    if (!dp_.feedbacks.empty()) {
      setSimInput(inSources.size(), Value::ofBool(canIssue));
    }
    if (canIssue) {
      // Present iteration `issued` to the data path.
      std::vector<std::vector<Value>> windows(buffers.size());
      for (size_t b = 0; b < buffers.size(); ++b) {
        windows[b] = buffers[b]->window(inBrams[b], issued);
      }
      const auto ivs = walker.ivsAt(issued);
      for (size_t p = 0; p < inSources.size(); ++p) {
        const InSource& src = inSources[p];
        switch (src.kind) {
          case InSource::Kind::Window:
            setSimInput(p, windows[src.stream][src.access]);
            break;
          case InSource::Kind::Scalar:
            setSimInput(p, src.scalar);
            break;
          case InSource::Kind::Induction:
            setSimInput(p, Value::ofInt(ivs[static_cast<size_t>(src.loop)]));
            break;
        }
      }
    }

    evalSim();
    if (vcdRecorder) {
      if (refSim) {
        vcdRecorder->sample(*refSim);
      } else {
        vcdRecorder->sample(*fastSim);
      }
    }

    if (enable) {
      const int64_t tOut = enabledCount - latency;
      if (tOut >= 0 && tOut < total) {
        // Capture iteration tOut's results (combinational at the final stage).
        std::vector<std::vector<Value>> outWindows(collectors.size());
        for (auto& w : outWindows) w.clear();
        for (size_t s = 0; s < kernel_.outputs.size(); ++s) {
          outWindows[s].assign(kernel_.outputs[s].scalarNames.size(), Value());
        }
        for (size_t p = 0; p < outSinks.size(); ++p) {
          const OutSink& sink = outSinks[p];
          const Value v = simOutput(p);
          if (sink.kind == OutSink::Kind::Window) {
            outWindows[sink.stream][sink.access] = v;
          } else {
            scalarOuts[sink.scalarName] = v.toInt();
          }
        }
        for (size_t c = 0; c < collectors.size(); ++c) {
          collectors[c].push(tOut, std::move(outWindows[c]));
          stats_.outputElems += static_cast<int64_t>(kernel_.outputs[c].scalarNames.size());
        }
        ++captured;
      }
      tickSim(true);
      ++enabledCount;
      ++stats_.enabledCycles;
      if (canIssue) {
        for (NaiveBuffer* nb : naive) nb->advance();
        ++issued;
      }
      // Snapshot feedback registers whose latest update belonged to a valid
      // iteration (flush cycles would otherwise clobber them).
      evalSim();
      for (size_t f = 0; f < dp_.feedbacks.size(); ++f) {
        const auto& fb = dp_.feedbacks[f];
        const int64_t iterOfUpdate = (enabledCount - 1) - fb.stage;
        if (iterOfUpdate >= 0 && iterOfUpdate < total) {
          fbFinal[fb.name] = simOutput(dp_.outputs.size() + f).toInt();
        }
      }
    } else {
      tickSim(false);
      ++stats_.stallCycles;
    }
  }

  if (vcdRecorder) vcd_ = vcdRecorder->render();
  stats_.cycles = cycle;
  stats_.iterations = total;
  for (size_t b = 0; b < buffers.size(); ++b) {
    stats_.bramReads += buffers[b]->fetchCount();
    stats_.bufferCapacityElems += buffers[b]->capacityElems();
  }
  for (const auto& bram : outBrams) stats_.bramWrites += bram.writes;

  // --- results --------------------------------------------------------------------
  interp::KernelIO out;
  for (size_t s = 0; s < kernel_.outputs.size(); ++s) {
    out.arrays[kernel_.outputs[s].arrayName] = outBrams[s].contents();
  }
  for (const auto& [n, v] : scalarOuts) out.scalars[n] = v;
  for (const auto& [n, v] : fbFinal) out.scalars[n] = v;
  return out;
}

} // namespace roccc::rtl
