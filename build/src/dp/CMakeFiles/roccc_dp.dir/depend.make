# Empty dependencies file for roccc_dp.
# This may be replaced when dependencies are built.
