# Empty dependencies file for roccc_interp.
# This may be replaced when dependencies are built.
