file(REMOVE_RECURSE
  "CMakeFiles/roccc_synth.dir/estimate.cpp.o"
  "CMakeFiles/roccc_synth.dir/estimate.cpp.o.d"
  "libroccc_synth.a"
  "libroccc_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roccc_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
