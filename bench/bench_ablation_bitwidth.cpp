// Ablation: bit-width inference (paper sections 4.2.4 and 5: "The compiler
// infers the inner signals' bit size automatically. ... We derive bit width
// only based on port size and opcodes. More aggressive bit narrowing ...
// may reduce device utilization."). Compares compiled area with inference
// on (our interval analysis, the "more aggressive" variant the paper
// anticipates) and off (every signal at its declared C width).
#include <cstdio>

#include "kernels.hpp"
#include "roccc/compiler.hpp"
#include "synth/estimate.hpp"

int main() {
  using namespace roccc;
  struct K {
    const char* name;
    const char* src;
  };
  const K kernels[] = {
      {"bit_correlator", bench::kBitCorrelator},
      {"fir", bench::kFir},
      {"dct", bench::kDct},
      {"square_root", bench::kSquareRoot},
      {"wavelet", bench::kWavelet},
  };

  std::printf("Bit-width inference ablation: declared widths (off) vs the paper's\n");
  std::printf("port-size-and-opcode rule vs interval range analysis\n\n");
  std::printf("  %-16s | %12s | %14s | %14s\n", "kernel", "slices (off)", "slices (paper)",
              "slices (range)");
  std::printf("  -----------------+--------------+----------------+----------------\n");
  for (const auto& k : kernels) {
    CompileOptions off;
    off.dpOptions.inferBitWidths = false;
    CompileOptions paper;
    paper.dpOptions.widthMode = dp::BuildOptions::WidthMode::PortOpcode;
    CompileOptions range;
    Compiler cOff(off), cPaper(paper), cRange(range);
    const CompileResult rOff = cOff.compileSource(k.src);
    const CompileResult rPaper = cPaper.compileSource(k.src);
    const CompileResult rRange = cRange.compileSource(k.src);
    if (!rOff.ok || !rPaper.ok || !rRange.ok) {
      std::fprintf(stderr, "%s failed\n", k.name);
      return 1;
    }
    std::printf("  %-16s | %12lld | %14lld | %14lld\n", k.name,
                static_cast<long long>(synth::estimate(rOff.module).slices),
                static_cast<long long>(synth::estimate(rPaper.module).slices),
                static_cast<long long>(synth::estimate(rRange.module).slices));
  }
  std::printf("\nWithout inference every intermediate runs at the promoted C width (32 bit).\n");
  std::printf("The paper's structural rule (section 5: 'we derive bit width only based on\n");
  std::printf("port size and opcodes') recovers most of it; interval range analysis — the\n");
  std::printf("'more aggressive bit narrowing' the paper anticipates — recovers more.\n");
  return 0;
}
