file(REMOVE_RECURSE
  "libroccc_frontend.a"
)
