/* Window min and max: one input window fanned out to two output streams,
   with conditional reassignment chains. */
void minmax3(const int12 A[66], int12 MN[64], int12 MX[64]) {
  int i;
  int12 mn;
  int12 mx;
  for (i = 0; i < 64; i++) {
    mn = A[i];
    mx = A[i];
    if (A[i+1] < mn) {
      mn = A[i+1];
    }
    if (A[i+2] < mn) {
      mn = A[i+2];
    }
    if (A[i+1] > mx) {
      mx = A[i+1];
    }
    if (A[i+2] > mx) {
      mx = A[i+2];
    }
    MN[i] = mn;
    MX[i] = mx;
  }
}
