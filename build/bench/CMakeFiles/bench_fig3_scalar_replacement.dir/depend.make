# Empty dependencies file for bench_fig3_scalar_replacement.
# This may be replaced when dependencies are built.
