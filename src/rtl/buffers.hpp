// The memory-side components of the execution model (paper Fig 2 and
// section 4.1): block RAMs, address generators, the *smart buffer* that
// reuses live input data across sliding windows (ref [18]), a non-reusing
// buffer for the ablation study, and the output collector.
//
// All components are cycle-accurate: each models exactly the work its
// hardware counterpart performs per clock (one BRAM port access per cycle,
// `busElems` elements per access).
#pragma once

#include <cstdint>
#include <vector>

#include "hlir/kernel.hpp"
#include "support/value.hpp"

namespace roccc::rtl {

/// Dual-port-style block RAM holding one stream's data. Read latency is
/// folded into the buffer pipeline (the paper's smart buffer registers
/// incoming data anyway).
class Bram {
 public:
  Bram(ScalarType elemType, std::vector<int64_t> contents);
  explicit Bram(ScalarType elemType, size_t size);

  Value read(int64_t addr) const;
  void write(int64_t addr, const Value& v);
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  std::vector<int64_t> contents() const;

  int64_t reads = 0;  ///< total element reads (traffic statistics)
  int64_t writes = 0;

 private:
  ScalarType elemType_;
  std::vector<Value> data_;
};

/// Iteration-space walker: decodes iteration index -> induction values.
/// This is the "higher-level controller + address generators" pair: the
/// address generators below ask it where the window sits.
class IterationWalker {
 public:
  explicit IterationWalker(std::vector<hlir::LoopDim> loops);

  int64_t totalIterations() const { return total_; }
  std::vector<int64_t> ivsAt(int64_t t) const;

 private:
  std::vector<hlir::LoopDim> loops_;
  int64_t total_ = 1;
};

/// Interface shared by the smart and naive input buffers.
class InputBuffer {
 public:
  virtual ~InputBuffer() = default;
  /// One clock of fetch work against the stream's BRAM.
  virtual void cycle(Bram& bram) = 0;
  /// True when the access window of iteration `t` is fully buffered.
  virtual bool windowReady(int64_t t) const = 0;
  /// Window values of iteration `t` in access order (requires windowReady).
  virtual std::vector<Value> window(const Bram& bram, int64_t t) const = 0;
  /// Buffer storage capacity in elements (for the area model).
  virtual int64_t capacityElems() const = 0;
  virtual int64_t fetchCount() const = 0;
};

/// Smart buffer (section 4.1): fetches every element exactly once, in
/// order, and serves each iteration's window from buffered data — "able to
/// reuse live input data, clean unused data and export the present valid
/// input data set".
class SmartBuffer final : public InputBuffer {
 public:
  SmartBuffer(const hlir::Stream& stream, const IterationWalker& walker, int busElems);

  void cycle(Bram& bram) override;
  bool windowReady(int64_t t) const override;
  std::vector<Value> window(const Bram& bram, int64_t t) const override;
  int64_t capacityElems() const override { return capacity_; }
  int64_t fetchCount() const override { return fetched_ - firstAddr_; }

 private:
  const hlir::Stream& stream_;
  const IterationWalker& walker_;
  int busElems_;
  int64_t firstAddr_ = 0; ///< smallest address any iteration touches
  int64_t lastAddr_ = 0;  ///< largest
  int64_t fetched_;       ///< next unfetched address
  int64_t capacity_ = 0;

  int64_t maxAddrOf(int64_t t) const;
};

/// Naive buffer (ablation baseline): re-fetches the whole window for every
/// iteration; no reuse. Models what Streams-C style codes do without
/// hand-written reuse (section 3 discussion).
class NaiveBuffer final : public InputBuffer {
 public:
  NaiveBuffer(const hlir::Stream& stream, const IterationWalker& walker, int busElems);

  void cycle(Bram& bram) override;
  bool windowReady(int64_t t) const override;
  std::vector<Value> window(const Bram& bram, int64_t t) const override;
  int64_t capacityElems() const override;
  int64_t fetchCount() const override { return fetches_; }

  /// The buffer only holds the current iteration's window; the system must
  /// tell it when the pipeline consumed it.
  void advance();

 private:
  const hlir::Stream& stream_;
  const IterationWalker& walker_;
  int busElems_;
  int64_t currentIter_ = 0;
  int64_t elemsFetched_ = 0; ///< of the current window
  int64_t fetches_ = 0;
};

/// Output side: accepts one output window per enabled iteration and drains
/// it into the stream's BRAM at `busElems` elements per clock through a
/// small FIFO (backpressure stalls the pipeline when full).
class OutputCollector {
 public:
  OutputCollector(const hlir::Stream& stream, const IterationWalker& walker, int busElems,
                  size_t fifoDepth = 8);

  bool hasRoom() const { return fifo_.size() < fifoDepth_; }
  /// Queues iteration t's output window (values in access order).
  void push(int64_t t, std::vector<Value> values);
  /// One clock of drain work.
  void cycle(Bram& bram);
  bool drained() const { return fifo_.empty(); }
  int64_t writeCount() const { return writes_; }

 private:
  const hlir::Stream& stream_;
  const IterationWalker& walker_;
  int busElems_;
  size_t fifoDepth_;
  struct Pending {
    int64_t iter;
    std::vector<Value> values;
    size_t written = 0;
  };
  std::vector<Pending> fifo_;
  int64_t writes_ = 0;
};

} // namespace roccc::rtl
