// Malformed-input robustness: every file in tests/badinput/ must produce a
// structured non-Ok CompileResult — a diagnostic and an outcome, never a
// crash, an uncaught exception, or a hang. The suite runs under ASan in CI,
// so any lexer/parser memory error on these inputs fails the build too.
//
// The compile runs under a real budget (deadline + IR cap + depth cap) so a
// regression that turns one of these inputs into an infinite loop or an
// exponential expansion is contained and reported rather than wedging the
// test runner.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/kernels.hpp"
#include "roccc/compiler.hpp"

namespace roccc {
namespace {

std::vector<std::filesystem::path> corpusFiles() {
  const char* dir = std::getenv("ROCCC_BADINPUT_DIR");
#ifdef ROCCC_BADINPUT_DIR_DEFAULT
  if (!dir) dir = ROCCC_BADINPUT_DIR_DEFAULT;
#endif
  std::vector<std::filesystem::path> files;
  if (!dir || !std::filesystem::is_directory(dir)) return files;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".c") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

CompileOptions governedOptions() {
  CompileOptions o;
  o.budget.timeoutMs = 30'000;     // a hang becomes a Timeout, not a stuck runner
  o.budget.maxIrNodes = 2'000'000; // an expansion blowup becomes ResourceExceeded
  o.budget.maxDepth = 256;
  return o;
}

TEST(FrontendRobustness, CorpusIsPresent) {
  ASSERT_FALSE(corpusFiles().empty())
      << "tests/badinput/*.c not found; set ROCCC_BADINPUT_DIR";
}

TEST(FrontendRobustness, EveryBadInputYieldsAStructuredFailure) {
  for (const auto& path : corpusFiles()) {
    std::ifstream in(path);
    ASSERT_TRUE(in) << path;
    std::ostringstream buf;
    buf << in.rdbuf();

    const Compiler compiler(governedOptions());
    const CompileResult r = compiler.compileSource(buf.str());
    EXPECT_FALSE(r.ok) << path.filename();
    EXPECT_NE(r.outcome, CompileOutcome::Ok) << path.filename();
    EXPECT_TRUE(r.diags.hasErrors()) << path.filename();
  }
}

TEST(FrontendRobustness, BadInputsNeverReportInternalError) {
  // Malformed *input* must be classified as the input's fault (FrontendError
  // / ResourceExceeded / Timeout), never as a compiler invariant violation.
  for (const auto& path : corpusFiles()) {
    std::ifstream in(path);
    ASSERT_TRUE(in) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    const Compiler compiler(governedOptions());
    const CompileResult r = compiler.compileSource(buf.str());
    EXPECT_NE(r.outcome, CompileOutcome::InternalError)
        << path.filename() << ": " << r.diags.dump();
  }
}

TEST(FrontendRobustness, HugeUnrollRequestIsContainedByTheBudget) {
  // --unroll 1<<20 on a divisible trip count would clone the loop body a
  // million times; the unroll-product budget stops it at the charge, before
  // any expansion happens.
  CompileOptions o = governedOptions();
  o.unrollFactor = 1 << 20;
  o.budget.maxUnrollProduct = 1 << 10;
  const std::string source =
      "void k(const int A[4], int B[4]) {\n"
      "  int i;\n"
      "  for (i = 0; i < 1048576; i = i + 1) { B[i & 3] = A[i & 3]; }\n"
      "}\n";
  const Compiler compiler(o);
  const CompileResult r = compiler.compileSource(source);
  EXPECT_FALSE(r.ok);
  // Either the unroll charge (ResourceExceeded) or an earlier frontend
  // rejection of the kernel shape is acceptable; a crash or an Ok is not.
  EXPECT_NE(r.outcome, CompileOutcome::Ok);
  EXPECT_NE(r.outcome, CompileOutcome::InternalError) << r.diags.dump();
}

TEST(FrontendRobustness, GoodKernelStillCompilesUnderTheSameGovernance) {
  // The corpus guardrails must not reject legitimate input: the Table 1 FIR
  // compiles to byte-identical output with and without the budget.
  const Compiler plain(CompileOptions{});
  const CompileResult base = plain.compileSource(bench::kFir);
  ASSERT_TRUE(base.ok);
  const Compiler governed(governedOptions());
  const CompileResult r = governed.compileSource(bench::kFir);
  ASSERT_TRUE(r.ok) << r.diags.dump();
  EXPECT_EQ(r.vhdl, base.vhdl);
}

} // namespace
} // namespace roccc
