file(REMOVE_RECURSE
  "libroccc_mir.a"
)
