// Timing-driven pipeline balancing (the `retime` pass).
//
// The Builder's latch placement is a greedy ASAP cut: walk the ops in
// topological order and open a new stage whenever the accumulated
// combinational delay would exceed the --target-ns budget. That meets the
// budget but distributes slack badly — early stages are packed to the brim
// while the last stage holds whatever was left over.
//
// retimePipeline replaces that seed placement with a model-driven one:
//
//   1. re-stage from scratch against the given synth::TimingModel (which
//      may be a --timing-model override, not the built-in table the seed
//      placement used),
//   2. merge adjacent stages whose combined combinational path still fits
//      the budget (loose targets collapse to shallow pipelines),
//   3. balance: greedily move slack-free boundary ops between neighboring
//      stages while the global worst-stage delay improves — this is what
//      raises achieved fmax above the greedy cut at the same stage count.
//
// Feedback-register semantics are preserved throughout: every LPR -> SNX
// cone keeps all its ops in a single stage (the loop closes through one
// register per iteration, paper Fig 7), and the consumer-after-producer
// stage invariant rtl::from_dp relies on is maintained by construction.
#pragma once

#include "dp/datapath.hpp"
#include "synth/timing.hpp"

namespace roccc::dp {

struct RetimeOptions {
  /// Per-stage combinational delay budget (the --target-ns clock, minus
  /// the model's clock overhead which is accounted separately).
  double targetNs = 4.0;
  BuildOptions::MultStyle multStyle = BuildOptions::MultStyle::Lut;
  /// Safety bound on the balance loop (each iteration moves >= 1 op).
  int maxBalanceIterations = 256;
};

struct RetimeReport {
  bool run = false;          ///< the pass executed (false: disabled/skipped)
  double targetNs = 0;
  int stagesBefore = 0;      ///< stage count of the seed placement
  int stagesAfter = 0;
  int movedOps = 0;          ///< balance moves accepted
  int merges = 0;            ///< adjacent stage pairs fused
  double worstStageNs = 0;   ///< achieved max per-stage combinational delay
  double criticalPathNs = 0; ///< worstStageNs + model clock overhead
  double fmaxMHz = 0;        ///< 1000 / criticalPathNs
  double slackNs = 0;        ///< targetNs - worstStageNs (negative: missed)
  /// True when the budget is achievable at all: no single primitive (or
  /// unsplittable feedback cone) exceeds targetNs on its own. Whenever
  /// feasible, the pass guarantees worstStageNs <= targetNs.
  bool feasible = true;
  std::vector<double> stageDelayNs; ///< per-stage combinational delay
};

/// Rebalances d's pipeline stages against `model`. Recomputes op stages and
/// path delays, stageCount, feedback/output stages and the register-bit
/// statistics. Returns false only on a diagnosed internal inconsistency.
bool retimePipeline(DataPath& d, const synth::TimingModel& model, const RetimeOptions& opt,
                    RetimeReport& rep, DiagEngine& diags);

} // namespace roccc::dp
