# Empty compiler generated dependencies file for roccc_ip.
# This may be replaced when dependencies are built.
