file(REMOVE_RECURSE
  "libroccc_ip.a"
)
