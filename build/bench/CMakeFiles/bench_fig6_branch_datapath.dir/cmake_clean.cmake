file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_branch_datapath.dir/bench_fig6_branch_datapath.cpp.o"
  "CMakeFiles/bench_fig6_branch_datapath.dir/bench_fig6_branch_datapath.cpp.o.d"
  "bench_fig6_branch_datapath"
  "bench_fig6_branch_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_branch_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
