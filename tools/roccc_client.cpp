// roccc-client — command-line client for the roccc-ccd daemon.
//
//   roccc-client [options] kernel.c [kernel2.c ...]   compile via the daemon
//   roccc-client --status|--metrics|--ping|--reload   admin requests
//   roccc-client --drain M                            drain (stop|pause|resume)
//
// Speaks `roccc-ccd-v1` over the daemon's AF_UNIX socket (docs/SERVICE.md).
// One input sends a `compile` request and writes <input>.vhd; several
// inputs send one `batch` request and write one .vhd each — the daemon
// guarantees the bytes match a local roccc-cc run of the same job.
//
// Options:
//   --socket PATH      daemon socket (default: roccc-ccd.sock)
//   -o FILE            output VHDL path (single input only)
//   --kernel NAME      kernel function (default: last function in the file)
//   --unroll N         partially unroll the streaming loop by N
//   --target-ns X      pipeline stage delay target
//   --no-retime        disable the timing-driven retime pass
//   --mult-style S     'lut' or 'mult18'
//   --no-infer         disable bit-width inference
//   --no-pipeline      single combinational stage
//   --verilog FILE     also request and write the Verilog form (single input)
//   --timeout-ms N     per-job deadline (clamped to the server ceiling)
//   --max-ir-nodes N   per-job IR-node cap (clamped to the server ceiling)
//   --max-unroll-product N
//                      unroll-product cap (clamped to the server ceiling)
//   --max-depth N      nesting depth cap (clamped to the server ceiling)
//   --inject-fault P   arm fault point P in the daemon-side job
//   --status           print the daemon status response
//   --metrics          print the live metrics response
//   --ping             liveness check
//   --reload           rebuild the daemon's cache over its directory
//   --drain M          drain the daemon: 'stop', 'pause' or 'resume'
//   --json             print raw JSON responses instead of writing files
//   --quiet            only errors
//
// Exit codes: the roccc-cc outcome codes (0 ok, 1 frontend error, 2 usage,
// 3 timeout, 4 resource budget exceeded, 5 internal error) plus two
// service-edge codes: 6 transport/protocol failure (cannot connect, bad
// frame), 7 request rejected by the daemon (queue-full, draining,
// quota-exceeded, bad-request, ...).
//
// Every --opt VALUE option also accepts the --opt=VALUE spelling.
// docs/CLI.md is the full flag reference; a CI test keeps it in sync with
// the --help output generated from the option table below.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "roccc/service_net.hpp"

namespace {

constexpr int kExitTransport = 6;
constexpr int kExitRejected = 7;

struct Args {
  std::string socketPath = "roccc-ccd.sock";
  std::vector<std::string> inputs;
  std::string output;
  std::string verilogPath;
  roccc::json::Value options = roccc::json::Value::object();
  std::string drainMode; ///< empty = no drain request
  bool status = false;
  bool metrics = false;
  bool ping = false;
  bool reload = false;
  bool rawJson = false;
  bool quiet = false;
  bool showHelp = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] kernel.c [kernel2.c ...]\n"
               "       %s --status | --metrics | --ping | --reload | --drain M\n"
               "       %s --help for the option list (docs/CLI.md, docs/SERVICE.md)\n",
               argv0, argv0, argv0);
  return 2;
}

struct OptionSpec {
  const char* name;
  const char* valueName; ///< null for flags; shown in --help
  const char* help;      ///< one-line --help description
  std::function<bool(Args&, const char*)> apply;
};

bool setIntOption(Args& a, const char* key, const char* v, int64_t min) {
  char* end = nullptr;
  const int64_t n = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || n < min) return false;
  a.options.set(key, roccc::json::Value::number(n));
  return true;
}

const std::vector<OptionSpec>& optionTable() {
  using roccc::json::Value;
  static const std::vector<OptionSpec> table = {
      {"--socket", "PATH", "daemon socket path (default: roccc-ccd.sock)",
       [](Args& a, const char* v) { a.socketPath = v; return true; }},
      {"-o", "FILE", "output VHDL path (single input only; default: <input>.vhd)",
       [](Args& a, const char* v) { a.output = v; return true; }},
      {"--kernel", "NAME", "kernel function (default: last function in the file)",
       [](Args& a, const char* v) {
         a.options.set("kernel", Value::string(v));
         return true;
       }},
      {"--unroll", "N", "partially unroll the streaming loop by N",
       [](Args& a, const char* v) { return setIntOption(a, "unroll", v, 1); }},
      {"--target-ns", "X", "pipeline stage delay target in ns",
       [](Args& a, const char* v) {
         char* end = nullptr;
         const double x = std::strtod(v, &end);
         if (end == v || *end != '\0') return false;
         a.options.set("targetNs", Value::number(x));
         return true;
       }},
      {"--no-retime", nullptr, "disable the timing-driven retime pass",
       [](Args& a, const char*) {
         a.options.set("retime", Value::boolean(false));
         return true;
       }},
      {"--mult-style", "S", "multiplier style: 'lut' or 'mult18'",
       [](Args& a, const char* v) {
         if (std::strcmp(v, "lut") != 0 && std::strcmp(v, "mult18") != 0) return false;
         a.options.set("multStyle", Value::string(v));
         return true;
       }},
      {"--no-infer", nullptr, "disable bit-width inference",
       [](Args& a, const char*) {
         a.options.set("inferWidths", Value::boolean(false));
         return true;
       }},
      {"--no-pipeline", nullptr, "single combinational stage (no pipelining)",
       [](Args& a, const char*) {
         a.options.set("pipeline", Value::boolean(false));
         return true;
       }},
      {"--verilog", "FILE", "also request and write the Verilog form (single input only)",
       [](Args& a, const char* v) {
         a.verilogPath = v;
         a.options.set("verilog", Value::boolean(true));
         return true;
       }},
      {"--timeout-ms", "N", "per-job deadline in ms (clamped to the server ceiling)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         const int64_t n = std::strtoll(v, &end, 10);
         if (end == v || *end != '\0') return false;
         a.options.set("timeoutMs", Value::number(n));
         return true;
       }},
      {"--max-ir-nodes", "N", "per-job IR-node cap (clamped to the server ceiling)",
       [](Args& a, const char* v) { return setIntOption(a, "maxIrNodes", v, 0); }},
      {"--max-unroll-product", "N", "unroll-product cap (clamped to the server ceiling)",
       [](Args& a, const char* v) { return setIntOption(a, "maxUnrollProduct", v, 0); }},
      {"--max-depth", "N", "nesting depth cap (clamped to the server ceiling)",
       [](Args& a, const char* v) { return setIntOption(a, "maxDepth", v, 0); }},
      {"--inject-fault", "P", "arm fault point P in the daemon-side job",
       [](Args& a, const char* v) {
         a.options.set("injectFault", Value::string(v));
         return true;
       }},
      {"--status", nullptr, "print the daemon status response",
       [](Args& a, const char*) { a.status = true; return true; }},
      {"--metrics", nullptr, "print the live metrics response",
       [](Args& a, const char*) { a.metrics = true; return true; }},
      {"--ping", nullptr, "liveness check (expects a pong)",
       [](Args& a, const char*) { a.ping = true; return true; }},
      {"--reload", nullptr, "rebuild the daemon's cache over its directory",
       [](Args& a, const char*) { a.reload = true; return true; }},
      {"--drain", "M", "drain the daemon: 'stop', 'pause' or 'resume'",
       [](Args& a, const char* v) {
         if (std::strcmp(v, "stop") != 0 && std::strcmp(v, "pause") != 0 &&
             std::strcmp(v, "resume") != 0) {
           return false;
         }
         a.drainMode = v;
         return true;
       }},
      {"--json", nullptr, "print raw JSON responses instead of writing files",
       [](Args& a, const char*) { a.rawJson = true; return true; }},
      {"--quiet", nullptr, "only errors",
       [](Args& a, const char*) { a.quiet = true; return true; }},
      {"--help", nullptr, "print this option list and exit",
       [](Args& a, const char*) { a.showHelp = true; return true; }},
  };
  return table;
}

void printHelp(const char* argv0) {
  std::printf("usage: %s [options] kernel.c [kernel2.c ...]\n\n"
              "Compiles C kernels through a running roccc-ccd daemon (byte-identical to\n"
              "roccc-cc). docs/CLI.md is the flag reference; docs/SERVICE.md the protocol.\n\n"
              "options:\n",
              argv0);
  for (const auto& s : optionTable()) {
    std::string left = s.name;
    if (s.valueName) {
      left += ' ';
      left += s.valueName;
    }
    std::printf("  %-22s %s\n", left.c_str(), s.help);
  }
  std::printf("\nexit codes: 0 ok, 1 frontend error, 2 usage, 3 timeout,\n"
              "            4 resource budget exceeded, 5 internal error,\n"
              "            6 transport/protocol failure, 7 rejected by the daemon\n");
}

bool parseArgs(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.empty() || arg[0] != '-') {
      a.inputs.push_back(arg);
      continue;
    }
    std::string inlineValue;
    bool hasInlineValue = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos && arg.rfind("--", 0) == 0) {
      inlineValue = arg.substr(eq + 1);
      arg.resize(eq);
      hasInlineValue = true;
    }
    const OptionSpec* spec = nullptr;
    for (const auto& s : optionTable()) {
      if (arg == s.name) {
        spec = &s;
        break;
      }
    }
    if (!spec) return false;
    const char* value = nullptr;
    if (spec->valueName) {
      if (hasInlineValue) {
        value = inlineValue.c_str();
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return false;
      }
    } else if (hasInlineValue) {
      return false;
    }
    if (!spec->apply(a, value)) return false;
  }
  return true;
}

/// Maps a response row's `status` string back to a process exit code —
/// the roccc-cc outcome codes, plus 7 for service-edge rejections.
int exitCodeForStatus(const std::string& status) {
  if (status == "ok") return 0;
  if (status == "frontend-error") return 1;
  if (status == "timeout") return 3;
  if (status == "resource-exceeded") return 4;
  if (status == "internal-error") return 5;
  return kExitRejected;
}

std::string defaultOutputPath(const std::string& input) {
  std::string out = input;
  const size_t dot = out.rfind('.');
  const size_t slash = out.find_last_of('/');
  if (dot != std::string::npos && (slash == std::string::npos || dot > slash)) out.resize(dot);
  return out + ".vhd";
}

int transportError(const std::string& error) {
  std::fprintf(stderr, "error: %s\n", error.c_str());
  return kExitTransport;
}

/// Prints a typed daemon error response and returns the matching exit code.
int reportRejection(const roccc::json::Value& resp) {
  const roccc::json::Value* e = resp.find("error");
  const roccc::json::Value* code = e ? e->find("code") : nullptr;
  const roccc::json::Value* message = e ? e->find("message") : nullptr;
  std::fprintf(stderr, "daemon rejected the request (%s): %s\n",
               code && code->isString() ? code->asString().c_str() : "?",
               message && message->isString() ? message->asString().c_str() : "");
  return kExitRejected;
}

bool isError(const roccc::json::Value& resp) {
  const roccc::json::Value* type = resp.find("type");
  return !type || !type->isString() || type->asString() == "error";
}

void printDiags(const std::string& name, const roccc::json::Value& row) {
  const roccc::json::Value* diags = row.find("diags");
  if (!diags || !diags->isArray()) return;
  for (const auto& d : diags->items()) {
    if (d.isString()) std::fprintf(stderr, "%s: %s\n", name.c_str(), d.asString().c_str());
  }
}

/// Writes one compiled row's artifacts. Returns the row's exit code.
int consumeRow(const Args& a, const roccc::json::Value& row, const std::string& outputPath) {
  const roccc::json::Value* status = row.find("status");
  const roccc::json::Value* name = row.find("name");
  const std::string label = name && name->isString() ? name->asString() : "<job>";
  const std::string st = status && status->isString() ? status->asString() : "internal-error";
  if (st != "ok") {
    std::fprintf(stderr, "%s: %s\n", label.c_str(), st.c_str());
    printDiags(label, row);
    return exitCodeForStatus(st);
  }
  const roccc::json::Value* vhdl = row.find("vhdl");
  if (!vhdl || !vhdl->isString()) {
    std::fprintf(stderr, "%s: daemon response carries no VHDL\n", label.c_str());
    return kExitTransport;
  }
  std::ofstream out(outputPath);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", outputPath.c_str());
    return 1;
  }
  out << vhdl->asString();
  if (!a.verilogPath.empty()) {
    const roccc::json::Value* verilog = row.find("verilog");
    if (verilog && verilog->isString()) {
      std::ofstream vout(a.verilogPath);
      vout << verilog->asString();
    }
  }
  if (!a.quiet) {
    const roccc::json::Value* cached = row.find("cached");
    const roccc::json::Value* sha = row.find("sha256");
    std::printf("%-32s -> %s (%zu bytes%s, sha256 %.12s)\n", label.c_str(), outputPath.c_str(),
                vhdl->asString().size(), cached && cached->isBool() && cached->asBool() ? ", cached" : "",
                sha && sha->isString() ? sha->asString().c_str() : "?");
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parseArgs(argc, argv, a)) return usage(argv[0]);
  if (a.showHelp) {
    printHelp(argv[0]);
    return 0;
  }
  const int adminOps = static_cast<int>(a.status) + static_cast<int>(a.metrics) +
                       static_cast<int>(a.ping) + static_cast<int>(a.reload) +
                       static_cast<int>(!a.drainMode.empty());
  if (adminOps > 1 || (adminOps == 1 && !a.inputs.empty()) ||
      (adminOps == 0 && a.inputs.empty())) {
    return usage(argv[0]);
  }
  if (a.inputs.size() > 1 && (!a.output.empty() || !a.verilogPath.empty())) {
    std::fprintf(stderr, "error: -o/--verilog are incompatible with multiple inputs\n");
    return 2;
  }

  roccc::ServiceClient client;
  std::string error;
  if (!client.connect(a.socketPath, error)) return transportError(error);

  using roccc::json::Value;
  if (adminOps == 1) {
    Value req = Value::object();
    req.set("type", Value::string(a.status    ? "status"
                                  : a.metrics ? "metrics"
                                  : a.ping    ? "ping"
                                  : a.reload  ? "reload"
                                              : "drain"));
    if (!a.drainMode.empty()) req.set("mode", Value::string(a.drainMode));
    Value resp;
    if (!client.request(req, resp, error)) return transportError(error);
    if (isError(resp)) return reportRejection(resp);
    std::printf("%s\n", resp.dump().c_str());
    return 0;
  }

  // Compile path: one input = `compile`, several = one `batch` request.
  std::vector<std::string> sources;
  for (const std::string& path : a.inputs) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sources.push_back(buf.str());
  }

  Value resp;
  if (a.inputs.size() == 1) {
    const Value req = roccc::makeCompileRequest(a.inputs[0], sources[0], a.options);
    if (!client.request(req, resp, error)) return transportError(error);
    if (a.rawJson) {
      std::printf("%s\n", resp.dump().c_str());
      return 0;
    }
    if (isError(resp)) return reportRejection(resp);
    return consumeRow(a, resp, a.output.empty() ? defaultOutputPath(a.inputs[0]) : a.output);
  }

  Value req = Value::object();
  req.set("type", Value::string("batch"));
  Value jobs = Value::array();
  for (size_t i = 0; i < a.inputs.size(); ++i) {
    Value job = Value::object();
    job.set("name", Value::string(a.inputs[i]));
    job.set("source", Value::string(sources[i]));
    if (!a.options.members().empty()) job.set("options", a.options);
    jobs.push(std::move(job));
  }
  req.set("jobs", std::move(jobs));
  if (!client.request(req, resp, error)) return transportError(error);
  if (a.rawJson) {
    std::printf("%s\n", resp.dump().c_str());
    return 0;
  }
  if (isError(resp)) return reportRejection(resp);
  const Value* rows = resp.find("results");
  if (!rows || !rows->isArray() || rows->items().size() != a.inputs.size()) {
    return transportError("malformed batch-result response");
  }
  int firstFailureExit = 0;
  for (size_t i = 0; i < a.inputs.size(); ++i) {
    const int code = consumeRow(a, rows->items()[i], defaultOutputPath(a.inputs[i]));
    if (code != 0 && firstFailureExit == 0) firstFailureExit = code;
  }
  if (!a.quiet) {
    const Value* ok = resp.find("ok");
    const Value* rejected = resp.find("rejected");
    const Value* wallMs = resp.find("wallMs");
    std::printf("batch: %lld/%zu ok, %lld rejected, %.1f ms daemon wall time\n",
                ok && ok->isNumber() ? static_cast<long long>(ok->asInt()) : -1, a.inputs.size(),
                rejected && rejected->isNumber() ? static_cast<long long>(rejected->asInt()) : -1,
                wallMs && wallMs->isNumber() ? wallMs->asDouble() : 0.0);
  }
  return firstFailureExit;
}
