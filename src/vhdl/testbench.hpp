// VHDL testbench generation: wraps the emitted data-path design in a
// self-checking testbench a downstream user can hand straight to a VHDL
// simulator and reproduce the library's bit-exact verification there.
//
// Two levels exist:
//   - makeVectors/emitTestbench: datapath-level, caller-supplied input sets
//     with dp::evaluate expectations (feedback threaded across vectors);
//   - makeSystemVectors/emitSystemTestbench: system-level — the stimulus is
//     the kernel's whole iteration space gathered per the Fig 2 streaming
//     model (windows, scalars, live induction values), and the expected
//     outputs come from the AST interpreter running the extracted data-path
//     function. Optional seeded random extra vectors extend the sequence
//     past the iteration space; the seed is recorded in the testbench
//     header so any emitted file pins its exact vectors.
//
// simulateTestbench replays the emitted testbench's schedule (stimulus held
// during the pipeline flush, assertions sampling pre-edge values, tb_valid
// high throughout) on a netlist engine, so a ctest can assert the generated
// file would report "TESTBENCH PASSED" without an external VHDL simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dp/datapath.hpp"
#include "hlir/kernel.hpp"
#include "interp/interp.hpp"
#include "rtl/netlist.hpp"
#include "rtl/fastsim.hpp"
#include "support/value.hpp"

namespace roccc::vhdl {

/// One test vector: values for every data-path input port and the expected
/// values on every output port `latency` enabled-cycles later.
struct TestVector {
  std::vector<Value> inputs;
  std::vector<Value> expectedOutputs;
};

/// Provenance of a system-level vector set, recorded in the emitted
/// testbench header.
struct TestbenchInfo {
  std::string kernelName;
  int64_t traceVectors = 0; ///< interpreter-derived (one per loop iteration)
  int extraVectors = 0;     ///< seeded random extras appended after the trace
  uint64_t seed = 0;        ///< SplitMix64 seed of the extras (0 when none)
};

/// Emits a self-checking testbench entity `<design>_tb` that drives the
/// top entity with the vectors, pipelines the expectations by the design
/// latency, asserts on mismatch, and reports "TESTBENCH PASSED" on success.
std::string emitTestbench(const dp::DataPath& dp, const std::vector<TestVector>& vectors);

/// Builds vectors by evaluating the data path on the given input sets
/// (feedback registers thread across vectors in order, so the sequence
/// behaves like consecutive loop iterations).
std::vector<TestVector> makeVectors(const dp::DataPath& dp,
                                    const std::vector<std::vector<int64_t>>& inputSets);

/// Builds the system-level vector set: the whole iteration space of the
/// kernel executed by the AST interpreter on the extracted data-path
/// function (stimulus gathered per the streaming model: input windows,
/// loop-invariant scalars, live induction values; feedback threaded), plus
/// `extraRandom` seeded random vectors continuing the feedback sequence.
/// Fills `info` with the provenance when non-null.
std::vector<TestVector> makeSystemVectors(const hlir::KernelInfo& kernel, const dp::DataPath& dp,
                                          const interp::KernelIO& io, int extraRandom,
                                          uint64_t seed, TestbenchInfo* info = nullptr);

/// emitTestbench plus a provenance header: kernel name, loop structure,
/// vector counts, and the extras seed.
std::string emitSystemTestbench(const dp::DataPath& dp, const hlir::KernelInfo& kernel,
                                const std::vector<TestVector>& vectors,
                                const TestbenchInfo& info);

/// Outcome of replaying a testbench schedule on a netlist engine.
struct TestbenchSimResult {
  bool passed = false;
  std::string firstFailure; ///< first failing assertion, empty when passed
};

/// Replays the exact schedule the emitted testbench executes — per-cycle
/// stimulus (held at the last vector during the flush), tb_valid high,
/// assertions reading pre-edge values latency cycles after presentation —
/// on the compiled module under the given engine. `passed` iff the VHDL
/// testbench would report "TESTBENCH PASSED" under the reference netlist
/// semantics.
TestbenchSimResult simulateTestbench(const dp::DataPath& dp, const rtl::Module& module,
                                     const std::vector<TestVector>& vectors,
                                     rtl::SimEngine engine);

} // namespace roccc::vhdl
