// Quickstart: compile a C kernel to hardware, inspect the results, and
// verify the generated circuit against software — the whole public API in
// one page.
//
//   $ ./quickstart
#include <cstdio>

#include "roccc/compiler.hpp"
#include "synth/estimate.hpp"
#include "vhdl/check.hpp"

int main() {
  // 1. A streaming kernel in the ROCCC C subset: a 5-tap FIR.
  const char* source = R"(
    void fir(const int16 A[36], int16 C[32]) {
      int i;
      for (i = 0; i < 32; i = i + 1) {
        C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
      }
    }
  )";

  // 2. Compile: parse -> loop transforms -> scalar replacement -> SSA ->
  //    data-path generation -> RTL -> VHDL.
  roccc::Compiler compiler;
  const roccc::CompileResult result = compiler.compileSource(source);
  if (!result.ok) {
    std::fprintf(stderr, "compilation failed:\n%s\n", result.diags.dump().c_str());
    return 1;
  }

  std::printf("== compiled kernel '%s' ==\n", result.kernel.kernelName.c_str());
  std::printf("%s", roccc::statsToTable(result.passLog).c_str());

  // 3. The generated data path: nodes, stages, inferred widths.
  std::printf("\n== data path ==\n%s\n", result.datapath.dump().c_str());

  // 4. Synthesis estimate (Virtex-II model): Table 1's two columns.
  const auto report = roccc::synth::estimate(result.module);
  std::printf("== synthesis estimate ==\n  %s\n", report.summary().c_str());

  // 5. The VHDL (validated, one component per data-path node).
  const auto check = roccc::vhdl::checkDesign(result.vhdl);
  std::printf("\n== VHDL ==\n  %d entities, %d instantiations, validator: %s\n",
              check.entityCount, check.instantiationCount, check.ok ? "OK" : "PROBLEMS");
  std::printf("  (full text in result.vhdl — %zu characters)\n", result.vhdl.size());

  // 6. Hardware/software cosimulation on real data.
  roccc::interp::KernelIO inputs;
  for (int i = 0; i < 36; ++i) inputs.arrays["A"].push_back((i * 31) % 199 - 99);
  const auto cosim = roccc::cosimulate(result, source, inputs);
  std::printf("\n== cosimulation ==\n  %s", cosim.match ? "hardware == software" : "MISMATCH");
  std::printf(" | %lld cycles for %lld iterations, %lld BRAM reads\n",
              static_cast<long long>(cosim.stats.cycles),
              static_cast<long long>(cosim.stats.iterations),
              static_cast<long long>(cosim.stats.bramReads));
  std::printf("  first outputs:");
  for (int i = 0; i < 6; ++i) {
    std::printf(" %lld", static_cast<long long>(cosim.hardware.arrays.at("C")[i]));
  }
  std::printf("\n");
  return cosim.match ? 0 : 1;
}
