// Static single assignment construction (the Machine-SUIF "Static Single
// Assignment library" counterpart, section 4.2.1: "the virtual machine IR
// first undergoes Machine-SUIF Static Single Assignment and Control Flow
// Graph transformations ... every virtual register is assigned only once").
#pragma once

#include "mir/ir.hpp"

namespace roccc::mir {

/// Rewrites `f` into SSA form: phi insertion at iterated dominance
/// frontiers of multi-definition registers, then dominator-tree renaming.
/// Registers that may be read before any definition on some path receive an
/// explicit zero definition in the entry block (dead ones are cleaned up by
/// DCE).
void buildSSA(FunctionIR& f);

} // namespace roccc::mir
