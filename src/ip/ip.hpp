// Baseline "Xilinx IP"-style netlists for the nine Table 1 designs.
//
// The paper compares ROCCC-generated circuits against hand-optimized IP
// cores. We recreate that baseline by building each design directly on RTL
// primitives the way an expert would — bit-level compressor trees, a
// MULT18X18 with a clock-enabled accumulator, pipelined restoring dividers,
// quarter-wave ROMs, distributed-arithmetic-style constant multipliers —
// so the same synthesis model prices both sides of the comparison.
//
// Functional designs (bit_correlator, mul_acc, udiv, square_root, cos,
// arbitrary LUT, FIR) are cycle-accurate and tested against reference
// software. DCT and the wavelet engine are structural area/timing models
// of the time-multiplexed IP architectures (their functional behavior in
// the benches comes from the ROCCC-compiled counterparts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/netlist.hpp"

namespace roccc::ip {

/// Paper Table 1 reference numbers for one design (Xilinx ISE 5.1i,
/// xc2v2000-5). Used by EXPERIMENTS.md comparisons.
struct PaperRow {
  const char* name;
  double ipClockMHz;
  int ipAreaSlices;
  double rocccClockMHz;
  int rocccAreaSlices;
};
const std::vector<PaperRow>& paperTable1();

/// Counts the bits of an 8-bit input equal to the constant mask
/// (registered output). Ports: in x[8]; out count[4].
rtl::Module buildBitCorrelator(uint8_t mask);

/// 12x12 multiplier-accumulator: MULT18X18 + pipelined 32-bit accumulator.
/// The 'nd' control uses the register clock-enable (modeled by the global
/// CE, costing no fabric). Ports: in a[12], b[12]; out acc[32]. Latency 2.
rtl::Module buildMulAcc();

/// 8-bit unsigned pipelined restoring divider, one row per stage.
/// Ports: in n[8], d[8]; out q[8]. Latency 8.
rtl::Module buildUdiv8();

/// 24-bit integer square root (non-restoring digit recurrence), one
/// pipelined stage per result bit. Ports: in x[24]; out r[12]. Latency 12.
rtl::Module buildSquareRoot24();

/// cos lookup: 10-bit phase in, Q15 out; quarter-wave 256x16 distributed
/// ROM with phase mirroring and output negation (why the IP is ~1/4 the
/// area of the arbitrary full-table ROM). Ports: in phase[10]; out c[16].
rtl::Module buildCosLut();

/// Arbitrary 1024x16 distributed ROM (same ports as cos).
rtl::Module buildArbitraryLut(const std::vector<int64_t>& contents);

/// Two 5-tap 8-bit constant-coefficient FIR filters (coefficients
/// 3,5,7,9,-1), CSD shift-add (distributed-arithmetic-style) multipliers,
/// fully pipelined, one sample per clock per filter.
/// Ports: in x0[8], x1[8]; out y0[16], y1[16].
rtl::Module buildFir5();

/// 8-point 1-D DCT, time-multiplexed ROM-accumulator architecture
/// (1 output/clock as in the Xilinx IP). Structural model.
rtl::Module buildDct8();

/// 2-D (5,3) lifting wavelet engine with line buffers and address
/// generation, for `cols`-wide images (the handwritten baseline of the
/// last Table 1 row). Structural model.
rtl::Module buildWavelet53(int cols = 512);

} // namespace roccc::ip
