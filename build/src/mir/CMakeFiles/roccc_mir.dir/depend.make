# Empty dependencies file for roccc_mir.
# This may be replaced when dependencies are built.
