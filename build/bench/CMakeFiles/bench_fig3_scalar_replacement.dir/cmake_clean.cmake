file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_scalar_replacement.dir/bench_fig3_scalar_replacement.cpp.o"
  "CMakeFiles/bench_fig3_scalar_replacement.dir/bench_fig3_scalar_replacement.cpp.o.d"
  "bench_fig3_scalar_replacement"
  "bench_fig3_scalar_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_scalar_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
