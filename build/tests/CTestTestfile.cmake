# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_value_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_parser_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/hlir_transforms_test[1]_include.cmake")
include("/root/repo/build/tests/hlir_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/mir_test[1]_include.cmake")
include("/root/repo/build/tests/dp_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/synth_ip_test[1]_include.cmake")
include("/root/repo/build/tests/vhdl_extras_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/table1_kernels_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/annotate_verilog_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
