/* First-order IIR smoother: the accumulator is a feedback register read
   and written every iteration (LPR/SNX pair). */
int20 acc = 0;
void iir_smooth(const int12 X[64], int12 Y[64]) {
  int i;
  for (i = 0; i < 64; i++) {
    acc = acc - (acc >> 3) + X[i];
    Y[i] = acc >> 3;
  }
}
