// Ablation: the smart buffer's input-data reuse (paper section 4.1 /
// ref [18]) vs a naive buffer that re-fetches every window element (what
// Streams-C-style code does without hand-written reuse, section 3).
// Sweeps window sizes and reports BRAM traffic and total cycles.
#include <cstdio>
#include <string>

#include "roccc/compiler.hpp"
#include "support/strings.hpp"

int main() {
  using namespace roccc;
  std::printf("Smart buffer vs naive buffer: 1-D window kernels, 64 iterations each\n\n");
  std::printf("  %6s | %12s | %12s | %12s | %12s | %8s\n", "taps", "smart reads", "naive reads",
              "smart cyc", "naive cyc", "traffic x");
  std::printf("  -------+--------------+--------------+--------------+--------------+----------\n");

  for (int taps : {2, 3, 5, 8, 12}) {
    const int n = 64 + taps - 1;
    std::string body;
    for (int t = 0; t < taps; ++t) {
      if (t) body += " + ";
      body += fmt("A[i+%0]", t);
    }
    const std::string src = fmt(R"(
      void k(const int16 A[%0], int32 C[64]) {
        int i;
        for (i = 0; i < 64; i++) { C[i] = %1; }
      }
    )", n, body);
    Compiler c;
    const CompileResult r = c.compileSource(src);
    if (!r.ok) {
      std::fprintf(stderr, "%s\n", r.diags.dump().c_str());
      return 1;
    }
    interp::KernelIO in;
    for (int i = 0; i < n; ++i) in.arrays["A"].push_back(i);

    rtl::System smart(r.kernel, r.datapath, r.module);
    smart.run(in);
    rtl::SystemOptions naiveOpt;
    naiveOpt.useSmartBuffer = false;
    rtl::System naive(r.kernel, r.datapath, r.module, naiveOpt);
    naive.run(in);

    std::printf("  %6d | %12lld | %12lld | %12lld | %12lld | %7.2fx\n", taps,
                static_cast<long long>(smart.stats().bramReads),
                static_cast<long long>(naive.stats().bramReads),
                static_cast<long long>(smart.stats().cycles),
                static_cast<long long>(naive.stats().cycles),
                static_cast<double>(naive.stats().bramReads) /
                    static_cast<double>(smart.stats().bramReads));
  }
  std::printf("\nThe smart buffer reads each array element exactly once regardless of the\n");
  std::printf("window size; the naive buffer's traffic (and cycle count) scales with the\n");
  std::printf("window, which is why ROCCC fits sliding-window codes so well (section 5).\n");
  return 0;
}
