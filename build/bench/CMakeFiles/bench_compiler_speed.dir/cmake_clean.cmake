file(REMOVE_RECURSE
  "CMakeFiles/bench_compiler_speed.dir/bench_compiler_speed.cpp.o"
  "CMakeFiles/bench_compiler_speed.dir/bench_compiler_speed.cpp.o.d"
  "bench_compiler_speed"
  "bench_compiler_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compiler_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
