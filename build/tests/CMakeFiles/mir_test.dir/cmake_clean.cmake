file(REMOVE_RECURSE
  "CMakeFiles/mir_test.dir/mir_test.cpp.o"
  "CMakeFiles/mir_test.dir/mir_test.cpp.o.d"
  "mir_test"
  "mir_test.pdb"
  "mir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
