file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bitwidth.dir/bench_ablation_bitwidth.cpp.o"
  "CMakeFiles/bench_ablation_bitwidth.dir/bench_ablation_bitwidth.cpp.o.d"
  "bench_ablation_bitwidth"
  "bench_ablation_bitwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bitwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
