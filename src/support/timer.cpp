#include "support/timer.hpp"

#include <cstdio>

namespace roccc {

std::string formatMs(double ms) {
  char buf[32];
  if (ms >= 1000.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", ms / 1000.0);
  } else if (ms >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f ms", ms);
  } else {
    std::snprintf(buf, sizeof buf, "%.4f ms", ms);
  }
  return buf;
}

} // namespace roccc
