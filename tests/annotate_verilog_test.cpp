#include <gtest/gtest.h>

#include "dp/annotate.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "dp/eval.hpp"
#include "rtl/from_dp.hpp"
#include "roccc/compiler.hpp"
#include "support/strings.hpp"
#include "vhdl/verilog.hpp"

namespace roccc {
namespace {

CompileResult compile(const std::string& src, CompileOptions opt = {}) {
  Compiler c(opt);
  CompileResult r = c.compileSource(src);
  EXPECT_TRUE(r.ok) << r.diags.dump();
  return r;
}

const char* kFir = R"(
  void fir(const int16 A[36], int16 C[32]) {
    int i;
    for (i = 0; i < 32; i = i + 1) {
      C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
    }
  }
)";

const char* kAcc = R"(
  int32 sum = 0;
  void acc(const int32 A[16], int32* out) {
    int i;
    for (i = 0; i < 16; i++) { sum = sum + A[i]; }
    *out = sum;
  }
)";

// --- JSON export (Fig 1 "Graph Editor + Annotation") ---------------------------

TEST(Annotation, JsonExportIsWellFormedAndComplete) {
  CompileResult r = compile(kFir);
  const std::string json = dp::exportJson(r.datapath);
  // Structural sanity: balanced braces/brackets, key sections present.
  int braces = 0, brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  for (const char* key : {"\"nodes\"", "\"ops\"", "\"values\"", "\"inputs\"", "\"outputs\"",
                          "\"feedbacks\"", "\"stages\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"fir_dp\""), std::string::npos);
}

TEST(Annotation, ForceStageRepipelines) {
  CompileResult r = compile(kFir);
  const int before = r.datapath.stageCount;
  // Push the last op a few stages later.
  dp::Annotations a;
  int lastOp = -1;
  for (size_t i = 0; i < r.datapath.ops.size(); ++i) {
    if (r.datapath.ops[i].result >= 0) lastOp = static_cast<int>(i);
  }
  ASSERT_GE(lastOp, 0);
  a.forceStage[lastOp] = before + 2;
  DiagEngine diags;
  ASSERT_TRUE(dp::applyAnnotations(r.datapath, a, diags)) << diags.dump();
  EXPECT_EQ(r.datapath.stageCount, before + 3);
  // Rebuild RTL and verify behavior is unchanged.
  rtl::Module m2;
  ASSERT_TRUE(rtl::buildDatapathModule(r.datapath, m2, diags)) << diags.dump();
  interp::KernelIO in;
  for (int i = 0; i < 36; ++i) in.arrays["A"].push_back((i * 31) % 199 - 99);
  rtl::System sys(r.kernel, r.datapath, m2, {});
  const auto hw = sys.run(in);
  DiagEngine d2;
  ast::Module ref = ast::parse(kFir, d2);
  ast::analyze(ref, d2);
  const auto sw = interp::runKernel(ref, "fir", in);
  EXPECT_EQ(hw.arrays.at("C"), sw.arrays.at("C"));
}

TEST(Annotation, ForceStageRespectsFeedbackLoops) {
  CompileResult r = compile(kAcc);
  // Pinning the SNX-producing op to a later stage than the LPR breaks the
  // single-latch loop; the annotation must be rejected.
  const auto& fb = r.datapath.feedbacks.at(0);
  const int snxDef = r.datapath.values[static_cast<size_t>(fb.snxValue)].def;
  dp::Annotations a;
  a.forceStage[snxDef] = r.datapath.ops[static_cast<size_t>(snxDef)].stage + 1;
  DiagEngine diags;
  EXPECT_FALSE(dp::applyAnnotations(r.datapath, a, diags));
  EXPECT_NE(diags.dump().find("feedback"), std::string::npos) << diags.dump();
}

TEST(Annotation, ForceWidthNarrowsWithWarning) {
  CompileResult r = compile(kFir);
  // Find a mid-width value and narrow it.
  std::string name;
  for (const auto& v : r.datapath.values) {
    const bool isConst = v.def >= 0 && r.datapath.ops[static_cast<size_t>(v.def)].op == mir::Opcode::Ldc;
    if (!v.name.empty() && v.width > 8 && !isConst) {
      name = v.name;
      break;
    }
  }
  ASSERT_FALSE(name.empty());
  dp::Annotations a;
  a.forceWidth[name] = 4;
  DiagEngine diags;
  EXPECT_TRUE(dp::applyAnnotations(r.datapath, a, diags));
  bool warned = false;
  for (const auto& d : diags.all()) {
    if (d.severity == Severity::Warning) warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST(Annotation, UnknownNamesRejected) {
  CompileResult r = compile(kFir);
  dp::Annotations a;
  a.forceWidth["no_such_value"] = 8;
  DiagEngine diags;
  EXPECT_FALSE(dp::applyAnnotations(r.datapath, a, diags));
}

// --- Verilog backend --------------------------------------------------------------

TEST(Verilog, EmittedDesignsValidate) {
  for (const char* src : {kFir, kAcc}) {
    CompileResult r = compile(src);
    ASSERT_FALSE(r.verilog.empty());
    const auto chk = verilog::checkDesign(r.verilog);
    EXPECT_TRUE(chk.ok) << join(chk.problems, "\n") << "\n---\n" << r.verilog;
    EXPECT_GE(chk.moduleCount, static_cast<int>(r.datapath.nodes.size()) + 1);
    EXPECT_GE(chk.instantiationCount, static_cast<int>(r.datapath.nodes.size()));
  }
}

TEST(Verilog, BranchKernelWithRomValidates) {
  const char* src = R"(
    const int16 T[8] = {1,2,3,4,5,6,7,8};
    void k(const uint3 A[8], int16 C[8]) {
      int i;
      for (i = 0; i < 8; i++) {
        if (A[i] < 4) { C[i] = T[A[i]]; } else { C[i] = -T[A[i]]; }
      }
    }
  )";
  CompileResult r = compile(src);
  const auto chk = verilog::checkDesign(r.verilog);
  EXPECT_TRUE(chk.ok) << join(chk.problems, "\n") << "\n---\n" << r.verilog;
  EXPECT_NE(r.verilog.find("case (addr)"), std::string::npos); // ROM module
}

TEST(Verilog, MentionsKeyConstructs) {
  CompileResult r = compile(kAcc);
  EXPECT_NE(r.verilog.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(r.verilog.find("module acc_dp("), std::string::npos);
  EXPECT_NE(r.verilog.find("input wire valid"), std::string::npos); // gated feedback
  EXPECT_NE(r.verilog.find("_fbreg"), std::string::npos);
}

TEST(Verilog, ValidatorCatchesBrokenText) {
  const auto bad1 = verilog::checkDesign("module a(input wire x);\n");
  EXPECT_FALSE(bad1.ok); // unterminated
  const auto bad2 = verilog::checkDesign(R"(
    module a(input wire x, output wire y);
      assign z = x;
    endmodule
  )");
  EXPECT_FALSE(bad2.ok); // z undeclared
  const auto good = verilog::checkDesign(R"(
    module a(input wire x, output wire y);
      assign y = x;
    endmodule
  )");
  EXPECT_TRUE(good.ok) << join(good.problems, "\n");
}

} // namespace
} // namespace roccc
