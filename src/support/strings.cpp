#include "support/strings.hpp"

namespace roccc {

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool startsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string replaceAll(std::string s, const std::string& from, const std::string& to) {
  if (from.empty()) return s;
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

void IndentWriter::line(const std::string& text) {
  out_.append(static_cast<size_t>(level_ * spaces_), ' ');
  out_ += text;
  out_ += '\n';
}

} // namespace roccc
