// Circuit-level scalar optimizations over SSA-form MIR (section 2:
// "ROCCC's conventional optimizations include constant folding ..."; the
// SPARK-comparison transforms: common sub-expression elimination, copy
// propagation, dead code elimination).
#pragma once

#include <string>
#include <vector>

#include "mir/ir.hpp"

namespace roccc::mir {

/// Each pass returns the number of changes it made. All require SSA form
/// and preserve it.
int constantPropagate(FunctionIR& f);
int copyPropagate(FunctionIR& f);
int commonSubexpressionEliminate(FunctionIR& f);
int deadCodeEliminate(FunctionIR& f);
/// Multiplications/divisions by powers of two become shifts; algebraic
/// identities (x+0, x*1, x*0, x&0, ...) simplify.
int strengthReduce(FunctionIR& f);

/// Typed change counters from runStandardPasses — consumed by the
/// PassManager's PassStatistics records (no free-text log).
struct StandardPassStats {
  int rounds = 0; ///< fixed-point rounds executed
  int constProp = 0;
  int copyProp = 0;
  int strength = 0;
  int cse = 0;
  int dce = 0;

  int total() const { return constProp + copyProp + strength + cse + dce; }
};

/// Runs the standard pipeline to a fixed point; returns the accumulated
/// per-pass change counters.
StandardPassStats runStandardPasses(FunctionIR& f);

/// Rewrites side effects into value form so SSA can merge conditional
/// writes (run BEFORE buildSSA): every `Out port, v` / `Snx fb, v` becomes a
/// move into a synthetic per-port register, and a single Out/Snx per port /
/// feedback register is appended to the exit block. After SSA, conditional
/// stores show up as phis, which the data-path generator turns into the
/// mux "hard nodes" of paper Fig 6. A path that never writes a port yields
/// that port's entry default (0).
void canonicalizeSideEffects(FunctionIR& f);

} // namespace roccc::mir
