// Array dimensions must be positive constants.
void k(const int A[-3], int B[4]) {
  int i;
  for (i = 0; i < 4; i = i + 1) { B[i] = A[0]; }
}
