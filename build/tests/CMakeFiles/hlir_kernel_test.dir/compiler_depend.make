# Empty compiler generated dependencies file for hlir_kernel_test.
# This may be replaced when dependencies are built.
