// Ablation for two section 5 discussion points:
//  (1) mul_acc written with if-else (extra mux/pipe nodes and latches) vs
//      the algorithm-level rewrite multiplying by 'nd' ("though one more
//      multiplier was used, the overall area and clock rate performance was
//      better") — the paper's example of how easy algorithm-level
//      optimization is at the C level.
//  (2) multiplier style LUT (shift-add decomposition of constant
//      multiplies, as set for FIR/DCT) vs MULT18X18 blocks.
#include <cstdio>

#include "kernels.hpp"
#include "roccc/compiler.hpp"
#include "synth/estimate.hpp"

int main() {
  using namespace roccc;

  std::printf("(1) mul_acc: if-else control vs predicated multiply\n\n");
  struct Variant {
    const char* name;
    const char* src;
  };
  const Variant variants[] = {
      {"if-else (Table 1 form)", bench::kMulAcc},
      {"multiply by nd", bench::kMulAccPredicated},
  };
  for (const auto& v : variants) {
    Compiler c;
    const CompileResult r = c.compileSource(v.src);
    if (!r.ok) {
      std::fprintf(stderr, "%s: %s\n", v.name, r.diags.dump().c_str());
      return 1;
    }
    const auto rep = synth::estimate(r.module);
    std::printf("  %-24s: slices=%4lld fmax=%4.0f MHz | %d soft + %d hard nodes, %d mux ops\n",
                v.name, static_cast<long long>(rep.slices), rep.fmaxMHz(),
                r.datapath.softNodeCount, r.datapath.hardNodeCount, r.datapath.muxOpCount);
    // Both forms compute the same thing.
    interp::KernelIO in;
    in.scalars["nd"] = 1;
    for (int i = 0; i < 64; ++i) {
      in.arrays["A"].push_back(i - 32);
      in.arrays["B"].push_back(3 * i - 90);
    }
    const auto rep2 = cosimulate(r, v.src, in);
    if (!rep2.match) {
      std::printf("  COSIM MISMATCH: %s\n", rep2.mismatch.c_str());
      return 1;
    }
  }
  std::printf("\n  The branching form pays for the alternative-branch hard nodes; the\n");
  std::printf("  predicated form spends a multiplier instead. (Not a compiler decision —\n");
  std::printf("  the paper's point is that C-level algorithm changes are cheap to try.)\n");

  std::printf("\n(2) FIR multiplier style: LUT (shift-add) vs MULT18X18\n\n");
  for (const bool lutStyle : {true, false}) {
    CompileOptions opt;
    opt.dpOptions.multStyle =
        lutStyle ? dp::BuildOptions::MultStyle::Lut : dp::BuildOptions::MultStyle::Mult18;
    Compiler c(opt);
    const CompileResult r = c.compileSource(bench::kFir);
    synth::EstimateOptions est;
    est.useMult18 = !lutStyle;
    const auto rep = synth::estimate(r.module, est);
    std::printf("  style %-7s: slices=%4lld mult18=%lld fmax=%4.0f MHz\n",
                lutStyle ? "LUT" : "MULT18", static_cast<long long>(rep.slices),
                static_cast<long long>(rep.res.mult18), rep.fmaxMHz());
  }
  std::printf("\n  Table 1 sets 'multiplier style = LUT' for FIR and DCT to mirror the\n");
  std::printf("  distributed-arithmetic Xilinx IPs.\n");
  return 0;
}
