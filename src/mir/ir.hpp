// Machine-level IR, modeled on the Machine-SUIF virtual machine (SUIFvm)
// the paper uses as its back-end representation (section 4.2.1): an
// assembly-like, virtual-register, three-address IR over basic blocks,
// extended with the ROCCC-specific opcodes LPR (load previous), SNX (store
// next) and LUT, plus MUX for the "hard nodes" the data-path generator adds.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "support/diag.hpp"
#include "support/value.hpp"

namespace roccc::mir {

enum class Opcode {
  // pure data operations
  Ldc,  ///< dst = imm
  Mov,  ///< dst = src0
  Add, Sub, Mul, Div, Rem, Neg,
  And, Or, Xor, Not,
  Shl, Shr,
  Seq, Sne, Slt, Sle, Sgt, Sge, ///< 1-bit compare results
  Mux,  ///< dst = src0(sel) ? src1 : src2
  Cast, ///< dst = convert(src0) per operand/result types
  BitSel, ///< dst = src0[aux0:aux1] (hi:lo)
  BitCat, ///< dst = {src0, src1}
  // ROCCC-specific (section 4.2.1)
  Lpr,  ///< dst = feedback register 'symbol'
  Snx,  ///< feedback register 'symbol' = src0 (latched at iteration end)
  Lut,  ///< dst = table 'symbol' [src0]
  // I/O copies ("all input and output operands are copied to the entry or
  // exit of the data flow", section 4.2.2)
  In,   ///< dst = input port aux0
  Out,  ///< output port aux0 = src0
  // control
  Br,   ///< if src0 != 0 goto succ[0] else succ[1]; block terminator
  Jmp,  ///< goto succ[0]; block terminator
  Ret,  ///< function end; block terminator
  // SSA
  Phi,  ///< dst = phi(src per predecessor, in pred order)
};

const char* opcodeName(Opcode op);
bool isTerminator(Opcode op);
/// True for operations with no side effects whose result may be recomputed
/// or eliminated (everything except Snx/Out/terminators).
bool isPure(Opcode op);
/// Pure, deterministic in (operands, aux, symbol) — eligible for CSE.
/// Phi and In are excluded (position-dependent); Lpr/Lut are included
/// (same register / table read yields the same value within an iteration).
bool isCseEligible(Opcode op);

struct Operand {
  enum class Kind { None, Reg, Imm } kind = Kind::None;
  int reg = -1;
  int64_t imm = 0;

  static Operand ofReg(int r) { return {Kind::Reg, r, 0}; }
  static Operand ofImm(int64_t v) { return {Kind::Imm, -1, v}; }
  bool isReg() const { return kind == Kind::Reg; }
  bool isImm() const { return kind == Kind::Imm; }
  friend bool operator==(const Operand&, const Operand&) = default;
};

struct Instr {
  Opcode op = Opcode::Ldc;
  int dst = -1; ///< virtual register id, -1 if none
  std::vector<Operand> srcs;
  ScalarType type = ScalarType::intTy(); ///< result type (operand type for Out/Snx)
  int64_t imm = 0;       ///< Ldc payload
  int aux0 = 0, aux1 = 0; ///< BitSel hi/lo; In/Out port index
  std::string symbol;    ///< Lpr/Snx feedback name, Lut table name
  SourceLoc loc;

  bool hasDst() const { return dst >= 0; }
};

struct Block {
  int id = -1;
  std::vector<Instr> instrs;
  std::vector<int> succs;
  std::vector<int> preds;

  const Instr* terminator() const {
    return instrs.empty() || !isTerminator(instrs.back().op) ? nullptr : &instrs.back();
  }
};

/// A function in MIR form. Block 0 is the entry; exactly one block ends in
/// Ret after construction.
struct FunctionIR {
  struct Param {
    std::string name;
    ScalarType type;
    bool isOutput = false;
  };
  struct Table {
    std::string name;
    ScalarType elemType;
    std::vector<int64_t> values;
  };
  struct FeedbackReg {
    std::string name;
    ScalarType type;
    int64_t initial = 0;
  };

  std::string name;
  std::vector<Param> params;
  std::vector<Table> tables;
  std::vector<FeedbackReg> feedbacks;
  std::vector<Block> blocks;
  std::vector<ScalarType> regTypes;
  std::vector<std::string> regNames; ///< debug names, parallel to regTypes

  int newReg(ScalarType t, std::string debugName);
  int regCount() const { return static_cast<int>(regTypes.size()); }
  Block& entry() { return blocks.front(); }
  const Block& entry() const { return blocks.front(); }
  int addBlock();

  const Table* findTable(const std::string& n) const;
  const FeedbackReg* findFeedback(const std::string& n) const;
  std::optional<int> inputPortIndex(const std::string& paramName) const;

  /// Human-readable listing.
  std::string dump() const;
  /// Structural validation: operand counts, register/type consistency,
  /// terminator placement, CFG edge symmetry. Appends problems to `errors`.
  bool verify(std::vector<std::string>& errors) const;
  /// Additionally checks the SSA single-assignment property and phi arity.
  bool verifySSA(std::vector<std::string>& errors) const;
};

// --- CFG analyses ------------------------------------------------------------

/// Blocks in reverse post-order from the entry (ids).
std::vector<int> reversePostOrder(const FunctionIR& f);

/// Immediate dominators (Cooper-Harvey-Kennedy). idom[entry] == entry.
struct DomTree {
  std::vector<int> idom;
  /// Dominance frontier per block.
  std::vector<std::set<int>> frontier;
  bool dominates(int a, int b) const;
};
DomTree computeDominators(const FunctionIR& f);

/// Classic bit-vector style liveness (the Machine-SUIF "Data Flow Analysis
/// library" counterpart).
struct Liveness {
  std::vector<std::set<int>> liveIn, liveOut;
};
Liveness computeLiveness(const FunctionIR& f);

/// Reaching definitions: for each block, the set of (block, instrIndex)
/// definitions reaching its entry.
struct ReachingDefs {
  using Def = std::pair<int, int>;
  std::vector<std::set<Def>> in, out;
};
ReachingDefs computeReachingDefs(const FunctionIR& f);

} // namespace roccc::mir
