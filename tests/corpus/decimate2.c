/* Decimate by two with averaging: stride-2 window advance (dimension
   coefficient 2), halving the output rate relative to the input. */
void decimate2(const int12 A[128], int12 C[64]) {
  int i;
  for (i = 0; i < 64; i++) {
    C[i] = (A[2*i] + A[2*i+1]) >> 1;
  }
}
