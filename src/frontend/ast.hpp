// Abstract syntax tree for the ROCCC C subset.
//
// The subset follows the paper's section 2 restrictions: signed/unsigned
// integers up to 32 bits, for-loops, multi-dimensional array accesses,
// if/else, no recursion, and pointers only as scalar out-parameters.
// Compiler-inserted constructs (ROCCC_load_prev / ROCCC_store2next, Fig 4)
// are expressible directly so transformed code can be printed, re-parsed,
// and diffed in tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/diag.hpp"
#include "support/value.hpp"

namespace roccc::ast {

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

/// A value type: scalar, or a (possibly multi-dimensional) array of scalars
/// with compile-time-constant dimensions.
struct Type {
  ScalarType scalar;
  std::vector<int64_t> dims; ///< empty => scalar

  bool isArray() const { return !dims.empty(); }
  int64_t elementCount() const {
    int64_t n = 1;
    for (int64_t d : dims) n *= d;
    return n;
  }
  std::string str() const;
  friend bool operator==(const Type&, const Type&) = default;

  static Type scalarOf(ScalarType s) { return {s, {}}; }
  static Type arrayOf(ScalarType s, std::vector<int64_t> dims) { return {s, std::move(dims)}; }
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

enum class Storage {
  Global, ///< module-level array or scalar
  Param,  ///< function parameter
  Local,  ///< declared inside a function body
};

/// Direction of a parameter. Scalar outputs are written in the C subset as
/// pointer parameters ("the pointers are only used to indicate multiple
/// return values", Fig 5 footnote).
enum class ParamMode { In, Out };

struct VarDecl {
  std::string name;
  Type type;
  Storage storage = Storage::Local;
  ParamMode mode = ParamMode::In;
  bool isConst = false;
  /// Initializer for const global arrays (lookup tables) — raw values,
  /// row-major; also single-element for initialized scalars.
  std::vector<int64_t> init;
  SourceLoc loc;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  IntLit,
  VarRef,
  ArrayRef,
  Unary,
  Binary,
  Cast,
  Call,
};

enum class BinOp {
  Add, Sub, Mul, Div, Rem,
  And, Or, Xor, Shl, Shr,
  Eq, Ne, Lt, Le, Gt, Ge,
  LAnd, LOr,
};

enum class UnOp { Neg, BitNot, LogicalNot };

const char* binOpSpelling(BinOp op);
const char* unOpSpelling(UnOp op);
/// True for ==, !=, <, <=, >, >=, &&, || (1-bit result).
bool isComparison(BinOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  SourceLoc loc;
  /// Filled in by semantic analysis; scalar only (arrays never appear as
  /// full-expression values).
  ScalarType type = ScalarType::intTy();

  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  virtual ExprPtr clone() const = 0;
};

struct IntLitExpr final : Expr {
  int64_t value = 0;

  IntLitExpr() : Expr(ExprKind::IntLit) {}
  explicit IntLitExpr(int64_t v) : Expr(ExprKind::IntLit), value(v) {}
  ExprPtr clone() const override;
};

struct VarRefExpr final : Expr {
  std::string name;
  const VarDecl* decl = nullptr; ///< resolved by sema

  VarRefExpr() : Expr(ExprKind::VarRef) {}
  explicit VarRefExpr(std::string n) : Expr(ExprKind::VarRef), name(std::move(n)) {}
  ExprPtr clone() const override;
};

struct ArrayRefExpr final : Expr {
  std::string name;
  const VarDecl* decl = nullptr;
  std::vector<ExprPtr> indices;

  ArrayRefExpr() : Expr(ExprKind::ArrayRef) {}
  ExprPtr clone() const override;
};

struct UnaryExpr final : Expr {
  UnOp op = UnOp::Neg;
  ExprPtr operand;

  UnaryExpr() : Expr(ExprKind::Unary) {}
  UnaryExpr(UnOp o, ExprPtr e) : Expr(ExprKind::Unary), op(o), operand(std::move(e)) {}
  ExprPtr clone() const override;
};

struct BinaryExpr final : Expr {
  BinOp op = BinOp::Add;
  ExprPtr lhs, rhs;

  BinaryExpr() : Expr(ExprKind::Binary) {}
  BinaryExpr(BinOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::Binary), op(o), lhs(std::move(l)), rhs(std::move(r)) {}
  ExprPtr clone() const override;
};

/// Explicit '(int16)x' casts and the implicit conversions sema inserts at
/// assignments / calls / arithmetic promotions.
struct CastExpr final : Expr {
  ExprPtr operand;
  bool isImplicit = false;

  CastExpr() : Expr(ExprKind::Cast) {}
  CastExpr(ScalarType to, ExprPtr e, bool implicit) : Expr(ExprKind::Cast), operand(std::move(e)), isImplicit(implicit) {
    type = to;
  }
  ExprPtr clone() const override;
};

/// Calls: either a user function (inlined before hardware generation) or a
/// ROCCC intrinsic (ROCCC_load_prev, ROCCC_cos, ROCCC_lookup, ...).
struct CallExpr final : Expr {
  std::string callee;
  std::vector<ExprPtr> args;

  CallExpr() : Expr(ExprKind::Call) {}
  ExprPtr clone() const override;
};

/// Names of the compiler-known intrinsics.
namespace intrinsics {
inline constexpr const char* kLoadPrev = "ROCCC_load_prev";
inline constexpr const char* kStoreNext = "ROCCC_store2next";
inline constexpr const char* kCos = "ROCCC_cos";
inline constexpr const char* kSin = "ROCCC_sin";
inline constexpr const char* kLookup = "ROCCC_lookup";
inline constexpr const char* kBitSelect = "ROCCC_bit_select";
inline constexpr const char* kBitConcat = "ROCCC_bit_concat";
bool isIntrinsic(const std::string& name);
} // namespace intrinsics

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind { Block, Decl, Assign, If, For, Return, CallStmt };

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  SourceLoc loc;

  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
  virtual StmtPtr clone() const = 0;
};

struct BlockStmt final : Stmt {
  std::vector<StmtPtr> stmts;

  BlockStmt() : Stmt(StmtKind::Block) {}
  StmtPtr clone() const override;
};

struct DeclStmt final : Stmt {
  VarDecl var;
  ExprPtr init; ///< may be null

  DeclStmt() : Stmt(StmtKind::Decl) {}
  StmtPtr clone() const override;
};

/// Targets of assignment: a scalar variable, an array element, or a scalar
/// out-parameter dereference ('*x3 = c').
struct LValue {
  enum class Kind { Var, ArrayElem, Deref } kind = Kind::Var;
  std::string name;
  const VarDecl* decl = nullptr;
  std::vector<ExprPtr> indices; ///< for ArrayElem

  LValue clone() const;
};

struct AssignStmt final : Stmt {
  LValue target;
  ExprPtr value;

  AssignStmt() : Stmt(StmtKind::Assign) {}
  StmtPtr clone() const override;
};

struct IfStmt final : Stmt {
  ExprPtr cond;
  StmtPtr thenBody;
  StmtPtr elseBody; ///< may be null

  IfStmt() : Stmt(StmtKind::If) {}
  StmtPtr clone() const override;
};

/// Canonical counted loop: `for (i = begin; i < end; i = i + step)`.
/// The parser accepts <=, and normalizes it into `<` form during sema.
struct ForStmt final : Stmt {
  std::string inductionVar;
  const VarDecl* inductionDecl = nullptr;
  ExprPtr begin;
  ExprPtr end;       ///< exclusive bound
  int64_t step = 1;  ///< positive constant
  StmtPtr body;

  ForStmt() : Stmt(StmtKind::For) {}
  StmtPtr clone() const override;
};

struct ReturnStmt final : Stmt {
  ReturnStmt() : Stmt(StmtKind::Return) {}
  StmtPtr clone() const override;
};

/// Expression statement holding a call (void user function or
/// ROCCC_store2next).
struct CallStmt final : Stmt {
  ExprPtr call; ///< always a CallExpr

  CallStmt() : Stmt(StmtKind::CallStmt) {}
  StmtPtr clone() const override;
};

// ---------------------------------------------------------------------------
// Functions and modules
// ---------------------------------------------------------------------------

struct Function {
  std::string name;
  std::vector<VarDecl> params;
  std::unique_ptr<BlockStmt> body;
  SourceLoc loc;

  Function() = default;
  Function(const Function&) = delete;
  Function& operator=(const Function&) = delete;
  Function(Function&&) = default;
  Function& operator=(Function&&) = default;

  Function cloneFn() const;
  const VarDecl* findParam(const std::string& n) const;
};

struct Module {
  std::vector<VarDecl> globals;
  std::vector<Function> functions;
  /// Declarations synthesized during analysis/transforms (e.g. loop
  /// induction variables), owned here so AST pointers to them stay stable.
  /// NOTE: VarRef/ArrayRef decl pointers point into `globals` / function
  /// `params` / DeclStmt nodes; structural transforms that rebuild those
  /// must re-run ast::analyze() to refresh resolution.
  std::vector<std::unique_ptr<VarDecl>> ownedDecls;

  Function* findFunction(const std::string& name);
  const Function* findFunction(const std::string& name) const;
  const VarDecl* findGlobal(const std::string& name) const;
};

// ---------------------------------------------------------------------------
// Utilities
// ---------------------------------------------------------------------------

/// Pretty-prints back to (parseable) C. Used by tests to round-trip
/// transforms and by the figure benches to show the Fig 3/4 code forms.
std::string printExpr(const Expr& e);
std::string printStmt(const Stmt& s, int indentLevel = 0);
std::string printFunction(const Function& f);
std::string printModule(const Module& m);

/// Walks every sub-expression of `e` (pre-order), calling fn.
void forEachExpr(const Expr& e, const std::function<void(const Expr&)>& fn);
/// Walks every statement and expression in a statement tree.
void forEachStmt(const Stmt& s, const std::function<void(const Stmt&)>& fn);
void forEachExprInStmt(const Stmt& s, const std::function<void(const Expr&)>& fn);

/// If `e` is a compile-time constant (literals and arithmetic over them),
/// returns its value.
std::optional<int64_t> evalConstant(const Expr& e);

} // namespace roccc::ast
