#include "interp/interp.hpp"

#include <cassert>

#include "support/cosrom.hpp"
#include "support/faultpoint.hpp"
#include "support/strings.hpp"

namespace roccc::interp {

using namespace roccc::ast;

namespace {

/// Control-flow signal for 'return;'.
struct ReturnSignal {};

} // namespace

int64_t cosSinLookupReference(int index, bool sine) { return cosRomEntry(index, sine); }

struct Interpreter::Frame {
  const Function* fn = nullptr;
  /// Scalar values by declaration.
  std::map<const VarDecl*, Value> scalars;
  /// Array storage by declaration (element Values, row-major).
  std::map<const VarDecl*, std::vector<Value>*> arrays;
  /// Out-param bindings: writing '*p' writes the caller's variable.
  std::map<const VarDecl*, Value*> outParams;
  Frame* parent = nullptr;
};

void Interpreter::bumpStep(SourceLoc loc) {
  if (++steps_ > stepLimit_) {
    throw InterpError{loc, fmt("step limit %0 exceeded (runaway loop?)", stepLimit_)};
  }
}

KernelIO Interpreter::run(const std::string& fnName, const KernelIO& io) {
  const Function* fn = module_.findFunction(fnName);
  if (!fn) throw InterpError{{}, fmt("no function named '%0'", fnName)};
  steps_ = 0;

  // Array backing stores, keyed by name: kernel parameters and globals.
  std::map<std::string, std::vector<Value>> arrayStore;
  Frame frame;
  frame.fn = fn;

  auto bindArray = [&](const VarDecl& d) {
    auto& store = arrayStore[d.name];
    const auto it = io.arrays.find(d.name);
    const int64_t n = d.type.elementCount();
    store.assign(static_cast<size_t>(n), Value(d.type.scalar, 0));
    if (it != io.arrays.end()) {
      if (static_cast<int64_t>(it->second.size()) != n) {
        throw InterpError{d.loc, fmt("array '%0' expects %1 elements, %2 bound", d.name, n,
                                     it->second.size())};
      }
      for (int64_t i = 0; i < n; ++i) store[static_cast<size_t>(i)] = Value::fromInt(d.type.scalar, it->second[static_cast<size_t>(i)]);
    } else if (!d.init.empty()) {
      for (int64_t i = 0; i < n && i < static_cast<int64_t>(d.init.size()); ++i)
        store[static_cast<size_t>(i)] = Value::fromInt(d.type.scalar, d.init[static_cast<size_t>(i)]);
    }
    frame.arrays[&d] = &store;
  };

  for (const auto& g : module_.globals) {
    if (g.type.isArray()) {
      bindArray(g);
    } else {
      // io.scalars may override a global scalar's initial value (used by the
      // per-iteration data-path cosimulation to thread feedback state).
      const auto it = io.scalars.find(g.name);
      const int64_t init = it != io.scalars.end() ? it->second : (g.init.empty() ? 0 : g.init[0]);
      frame.scalars[&g] = Value::fromInt(g.type.scalar, init);
    }
  }

  // Out-scalar results live here until copied into the returned KernelIO.
  std::map<std::string, Value> outScalars;
  for (const auto& p : fn->params) {
    if (p.type.isArray()) {
      bindArray(p);
    } else if (p.mode == ParamMode::Out) {
      outScalars.emplace(p.name, Value(p.type.scalar, 0));
      frame.outParams[&p] = &outScalars.at(p.name);
    } else {
      const auto it = io.scalars.find(p.name);
      if (it == io.scalars.end()) throw InterpError{p.loc, fmt("scalar input '%0' not bound", p.name)};
      frame.scalars[&p] = Value::fromInt(p.type.scalar, it->second);
    }
  }

  try {
    execBlockInCurrentScope(*fn->body, frame);
  } catch (const ReturnSignal&) {
    // normal early return
  }

  KernelIO out;
  for (const auto& [name, v] : outScalars) out.scalars[name] = v.toInt();
  for (const auto& [name, store] : arrayStore) {
    auto& vec = out.arrays[name];
    vec.reserve(store.size());
    for (const Value& v : store) vec.push_back(v.toInt());
  }
  // Global scalars (e.g. the accumulator's 'int sum') are also reported.
  for (const auto& g : module_.globals) {
    if (!g.type.isArray()) out.scalars[g.name] = frame.scalars.at(&g).toInt();
  }
  return out;
}

void Interpreter::execBlockInCurrentScope(const BlockStmt& b, Frame& f) {
  for (const auto& s : b.stmts) execStmt(*s, f);
}

void Interpreter::execStmt(const Stmt& s, Frame& f) {
  bumpStep(s.loc);
  switch (s.kind) {
    case StmtKind::Block:
      execBlockInCurrentScope(static_cast<const BlockStmt&>(s), f);
      break;
    case StmtKind::Decl: {
      const auto& d = static_cast<const DeclStmt&>(s);
      if (d.var.type.isArray()) {
        throw InterpError{d.loc, "local arrays are not part of the ROCCC subset"};
      }
      Value init(d.var.type.scalar, 0);
      if (d.init) init = evalExpr(*d.init, f).convertTo(d.var.type.scalar);
      f.scalars[&d.var] = init;
      break;
    }
    case StmtKind::Assign: {
      const auto& a = static_cast<const AssignStmt&>(s);
      const Value v = evalExpr(*a.value, f);
      const VarDecl* d = a.target.decl;
      if (!d) throw InterpError{a.loc, fmt("unresolved assignment target '%0' (module not analyzed?)", a.target.name)};
      switch (a.target.kind) {
        case LValue::Kind::Var:
          f.scalars[d] = v.convertTo(d->type.scalar);
          break;
        case LValue::Kind::Deref: {
          auto it = f.outParams.find(d);
          if (it == f.outParams.end()) throw InterpError{a.loc, fmt("'*%0' has no binding", d->name)};
          *it->second = v.convertTo(d->type.scalar);
          break;
        }
        case LValue::Kind::ArrayElem: {
          auto it = f.arrays.find(d);
          if (it == f.arrays.end()) throw InterpError{a.loc, fmt("array '%0' has no storage", d->name)};
          int64_t flat = 0;
          for (size_t i = 0; i < a.target.indices.size(); ++i) {
            const int64_t idx = evalExpr(*a.target.indices[i], f).toInt();
            if (idx < 0 || idx >= d->type.dims[i]) {
              throw InterpError{a.loc, fmt("index %0 out of bounds [0, %1) for '%2'", idx,
                                           d->type.dims[i], d->name)};
            }
            flat = flat * d->type.dims[i] + idx;
          }
          (*it->second)[static_cast<size_t>(flat)] = v.convertTo(d->type.scalar);
          break;
        }
      }
      break;
    }
    case StmtKind::If: {
      const auto& i = static_cast<const IfStmt&>(s);
      if (evalExpr(*i.cond, f).toBool()) {
        execStmt(*i.thenBody, f);
      } else if (i.elseBody) {
        execStmt(*i.elseBody, f);
      }
      break;
    }
    case StmtKind::For: {
      const auto& l = static_cast<const ForStmt&>(s);
      const int64_t begin = evalExpr(*l.begin, f).toInt();
      const int64_t end = evalExpr(*l.end, f).toInt();
      for (int64_t i = begin; i < end; i += l.step) {
        bumpStep(l.loc);
        f.scalars[l.inductionDecl] = Value::ofInt(i);
        execStmt(*l.body, f);
      }
      break;
    }
    case StmtKind::Return:
      throw ReturnSignal{}; // unwound by callFunction / run
    case StmtKind::CallStmt: {
      const auto& c = static_cast<const CallStmt&>(s);
      const auto& call = static_cast<const CallExpr&>(*c.call);
      if (intrinsics::isIntrinsic(call.callee)) {
        evalIntrinsic(call, f);
      } else {
        const Function* callee = module_.findFunction(call.callee);
        if (!callee) {
          throw InternalCompilerError(
              fmt("interp: call to unknown function '%0' survived sema", call.callee));
        }
        std::vector<const Expr*> args;
        for (const auto& a : call.args) args.push_back(a.get());
        callFunction(*callee, args, f);
      }
      break;
    }
  }
}

void Interpreter::callFunction(const Function& fn, const std::vector<const Expr*>& args, Frame& caller) {
  Frame frame;
  frame.fn = &fn;
  frame.parent = &caller;
  // Globals (incl. arrays) are visible through the caller chain; copy the
  // root bindings down. Scalars are per-frame.
  Frame* root = &caller;
  while (root->parent) root = root->parent;
  frame.arrays = root->arrays;
  for (const auto& [d, v] : root->scalars) {
    if (d->storage == Storage::Global) frame.scalars[d] = v;
  }

  std::vector<std::pair<const VarDecl*, const VarDecl*>> outBindings; // callee param -> caller var
  for (size_t i = 0; i < fn.params.size(); ++i) {
    const VarDecl& p = fn.params[i];
    if (p.type.isArray()) {
      throw InterpError{p.loc, "array arguments to user calls are not supported (inline the callee)"};
    }
    if (p.mode == ParamMode::Out) {
      const auto& v = static_cast<const VarRefExpr&>(*args[i]);
      outBindings.emplace_back(&p, v.decl);
      frame.outParams[&p] = nullptr; // filled after we know where to write
    } else {
      frame.scalars[&p] = evalExpr(*args[i], caller).convertTo(p.type.scalar);
    }
  }
  // Out-params write into temporaries, copied back at return.
  std::map<const VarDecl*, Value> outTmp;
  for (auto& [p, callerVar] : outBindings) {
    outTmp[p] = Value(p->type.scalar, 0);
    frame.outParams[p] = &outTmp[p];
    (void)callerVar;
  }

  try {
    execBlockInCurrentScope(*fn.body, frame);
  } catch (const ReturnSignal&) {
    // return statement
  }

  for (auto& [p, callerVar] : outBindings) {
    caller.scalars[callerVar] = outTmp[p].convertTo(callerVar->type.scalar);
  }
  // Writes to global scalars propagate back.
  for (const auto& [d, v] : frame.scalars) {
    if (d->storage == Storage::Global) caller.scalars[d] = v;
  }
}

Value Interpreter::evalIntrinsic(const CallExpr& c, Frame& f) {
  const std::string& n = c.callee;
  if (n == intrinsics::kLoadPrev) {
    // In software semantics, the "previous" value is simply the variable's
    // current value at this point of the iteration (Fig 4 b vs c).
    const auto& v = static_cast<const VarRefExpr&>(*c.args[0]);
    return evalExpr(v, f);
  }
  if (n == intrinsics::kStoreNext) {
    const auto& target = static_cast<const VarRefExpr&>(*c.args[0]);
    const Value v = evalExpr(*c.args[1], f);
    // Walk out to the frame that owns the variable (globals live in the
    // current frame copy; locals in this frame).
    f.scalars[target.decl] = v.convertTo(target.decl->type.scalar);
    return v;
  }
  if (n == intrinsics::kCos || n == intrinsics::kSin) {
    const Value idx = evalExpr(*c.args[0], f);
    return Value::fromInt(c.type, cosRomEntry(static_cast<int>(idx.toUnsigned() & 1023), n == intrinsics::kSin));
  }
  if (n == intrinsics::kLookup) {
    const auto& t = static_cast<const VarRefExpr&>(*c.args[0]);
    const Value idx = evalExpr(*c.args[1], f);
    const auto& init = t.decl->init;
    const uint64_t i = idx.toUnsigned();
    if (i >= init.size()) {
      throw InterpError{c.loc, fmt("lookup index %0 out of range for '%1' (%2 entries)", i, t.name, init.size())};
    }
    return Value::fromInt(c.type, init[i]);
  }
  if (n == intrinsics::kBitSelect) {
    const Value v = evalExpr(*c.args[0], f);
    const int64_t lo = *evalConstant(*c.args[2]);
    return Value(c.type, v.toUnsigned() >> lo);
  }
  if (n == intrinsics::kBitConcat) {
    const Value a = evalExpr(*c.args[0], f);
    const Value b = evalExpr(*c.args[1], f);
    return Value(c.type, (a.toUnsigned() << b.width()) | b.toUnsigned());
  }
  throw InterpError{c.loc, fmt("unknown intrinsic '%0'", n)};
}

Value Interpreter::evalExpr(const Expr& e, Frame& f) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return Value::fromInt(e.type, static_cast<const IntLitExpr&>(e).value);
    case ExprKind::VarRef: {
      const auto& v = static_cast<const VarRefExpr&>(e);
      const auto it = f.scalars.find(v.decl);
      if (it == f.scalars.end()) throw InterpError{e.loc, fmt("read of uninitialized '%0'", v.name)};
      return it->second;
    }
    case ExprKind::ArrayRef: {
      const auto& a = static_cast<const ArrayRefExpr&>(e);
      const auto it = f.arrays.find(a.decl);
      if (it == f.arrays.end()) throw InterpError{e.loc, fmt("array '%0' has no storage", a.name)};
      int64_t flat = 0;
      for (size_t i = 0; i < a.indices.size(); ++i) {
        const int64_t idx = evalExpr(*a.indices[i], f).toInt();
        if (idx < 0 || idx >= a.decl->type.dims[i]) {
          throw InterpError{e.loc, fmt("index %0 out of bounds [0, %1) for '%2'", idx,
                                       a.decl->type.dims[i], a.name)};
        }
        flat = flat * a.decl->type.dims[i] + idx;
      }
      return (*it->second)[static_cast<size_t>(flat)];
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      const Value v = evalExpr(*u.operand, f);
      switch (u.op) {
        case UnOp::Neg: return ops::neg(v, e.type);
        case UnOp::BitNot: return ops::bitNot(v, e.type);
        case UnOp::LogicalNot: return Value::ofBool(!v.toBool());
      }
      break;
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      // Short-circuit forms first.
      if (b.op == BinOp::LAnd) {
        if (!evalExpr(*b.lhs, f).toBool()) return Value::ofBool(false);
        return Value::ofBool(evalExpr(*b.rhs, f).toBool());
      }
      if (b.op == BinOp::LOr) {
        if (evalExpr(*b.lhs, f).toBool()) return Value::ofBool(true);
        return Value::ofBool(evalExpr(*b.rhs, f).toBool());
      }
      const Value l = evalExpr(*b.lhs, f);
      const Value r = evalExpr(*b.rhs, f);
      switch (b.op) {
        case BinOp::Add: return ops::add(l, r, e.type);
        case BinOp::Sub: return ops::sub(l, r, e.type);
        case BinOp::Mul: return ops::mul(l, r, e.type);
        case BinOp::Div: return ops::divide(l, r, e.type);
        case BinOp::Rem: return ops::rem(l, r, e.type);
        case BinOp::And: return ops::bitAnd(l, r, e.type);
        case BinOp::Or: return ops::bitOr(l, r, e.type);
        case BinOp::Xor: return ops::bitXor(l, r, e.type);
        case BinOp::Shl: return ops::shl(l, r, e.type);
        case BinOp::Shr: return ops::shr(l, r, e.type);
        case BinOp::Eq: return ops::cmpEq(l, r);
        case BinOp::Ne: return ops::cmpNe(l, r);
        case BinOp::Lt: return ops::cmpLt(l, r);
        case BinOp::Le: return ops::cmpLe(l, r);
        case BinOp::Gt: return ops::cmpGt(l, r);
        case BinOp::Ge: return ops::cmpGe(l, r);
        default: break;
      }
      break;
    }
    case ExprKind::Cast: {
      const auto& c = static_cast<const CastExpr&>(e);
      return evalExpr(*c.operand, f).convertTo(c.type);
    }
    case ExprKind::Call: {
      const auto& c = static_cast<const CallExpr&>(e);
      if (intrinsics::isIntrinsic(c.callee)) return evalIntrinsic(c, f);
      throw InterpError{e.loc, fmt("call to '%0' in expression position is not supported (calls are statements)", c.callee)};
    }
  }
  throw InterpError{e.loc, "unhandled expression"};
}

KernelIO runKernel(const ast::Module& m, const std::string& fnName, const KernelIO& io) {
  Interpreter i(m);
  return i.run(fnName, io);
}

} // namespace roccc::interp
