/* Horizontal Sobel gradient: nested loop, 3x3 2-D window, signed arith. */
void sobel_x(const int10 P[34][34], int14 G[32][32]) {
  int i;
  int j;
  for (i = 0; i < 32; i++) {
    for (j = 0; j < 32; j++) {
      G[i][j] = P[i][j+2] - P[i][j]
              + 2 * (P[i+1][j+2] - P[i+1][j])
              + P[i+2][j+2] - P[i+2][j];
    }
  }
}
