file(REMOVE_RECURSE
  "CMakeFiles/hlir_transforms_test.dir/hlir_transforms_test.cpp.o"
  "CMakeFiles/hlir_transforms_test.dir/hlir_transforms_test.cpp.o.d"
  "hlir_transforms_test"
  "hlir_transforms_test.pdb"
  "hlir_transforms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlir_transforms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
