// System-level testbench and structural-checker coverage:
//   - vhdl::checkDesign on malformed inputs (unbalanced blocks, label
//     mismatches, dangling instantiations, undeclared signal assignments)
//     and on every generated design+testbench pair;
//   - makeVectors feedback-register threading proven against a manually
//     threaded dp::evaluate sequence (and shown to matter: resetting the
//     feedback between vectors changes the answers);
//   - makeSystemVectors determinism / seed sensitivity, the provenance
//     header of emitSystemTestbench, and simulateTestbench failure
//     localization (a corrupted expectation names the port and vector).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "../bench/kernels.hpp"
#include "dp/eval.hpp"
#include "roccc/verify.hpp"
#include "support/strings.hpp"
#include "vhdl/check.hpp"
#include "vhdl/testbench.hpp"

namespace roccc {
namespace {

CompileResult compileOk(const char* source) {
  CompileResult r = Compiler().compileSource(source);
  EXPECT_TRUE(r.ok) << r.diags.dump();
  return r;
}

// ---- checkDesign on malformed inputs ------------------------------------

TEST(VhdlCheck, FlagsUnclosedEntityAndMissingArchitecture) {
  const auto chk = vhdl::checkDesign("entity foo is\nport ( a : in bit );\n");
  EXPECT_FALSE(chk.ok);
  EXPECT_EQ(chk.entityCount, 1);
  const std::string all = join(chk.problems, "\n");
  EXPECT_NE(all.find("unclosed entity foo"), std::string::npos) << all;
  EXPECT_NE(all.find("entity 'foo' has no architecture"), std::string::npos) << all;
}

TEST(VhdlCheck, FlagsEndWithoutOpenBlock) {
  const auto chk = vhdl::checkDesign("end if;\nend process;\n");
  EXPECT_FALSE(chk.ok);
  const std::string all = join(chk.problems, "\n");
  EXPECT_NE(all.find("'end if' without open if"), std::string::npos) << all;
  EXPECT_NE(all.find("'end process' without open process"), std::string::npos) << all;
}

TEST(VhdlCheck, FlagsEntityEndLabelMismatch) {
  const auto chk = vhdl::checkDesign(
      "entity foo is\nend entity bar;\n"
      "architecture rtl of foo is\nbegin\nend architecture;\n");
  EXPECT_FALSE(chk.ok);
  EXPECT_NE(join(chk.problems, "\n").find("end label 'bar' does not match 'foo'"),
            std::string::npos);
}

TEST(VhdlCheck, FlagsArchitectureOfUnknownEntity) {
  const auto chk = vhdl::checkDesign("architecture rtl of ghost is\nbegin\nend architecture;\n");
  EXPECT_FALSE(chk.ok);
  EXPECT_NE(join(chk.problems, "\n").find("architecture of unknown entity 'ghost'"),
            std::string::npos);
}

TEST(VhdlCheck, FlagsInstantiationOfUnknownEntity) {
  const auto chk = vhdl::checkDesign(
      "entity top is\nend entity top;\n"
      "architecture rtl of top is\nbegin\n"
      "u0 : entity work.missing port map ( );\n"
      "end architecture;\n");
  EXPECT_FALSE(chk.ok);
  EXPECT_EQ(chk.instantiationCount, 1);
  EXPECT_NE(join(chk.problems, "\n").find("instantiation of unknown entity 'missing'"),
            std::string::npos);
}

TEST(VhdlCheck, FlagsAssignmentToUndeclaredSignal) {
  const auto chk = vhdl::checkDesign(
      "entity top is\nend entity top;\n"
      "architecture rtl of top is\n"
      "signal a : bit;\n"
      "begin\n"
      "a <= '1';\n"
      "phantom <= '0';\n"
      "end architecture;\n");
  EXPECT_FALSE(chk.ok);
  const std::string all = join(chk.problems, "\n");
  EXPECT_NE(all.find("assignment to undeclared signal 'phantom'"), std::string::npos) << all;
  EXPECT_EQ(all.find("'a'"), std::string::npos) << "declared signal misflagged:\n" << all;
}

TEST(VhdlCheck, IgnoresCommentsAndStringLiterals) {
  const auto chk = vhdl::checkDesign(
      "-- entity ghost is\n"
      "entity top is\nend entity top;\n"
      "architecture rtl of top is\nbegin\n"
      "assert false report \"entity work.bogus\" severity note;\n"
      "end architecture;\n");
  EXPECT_TRUE(chk.ok) << join(chk.problems, "\n");
  EXPECT_EQ(chk.entityCount, 1);
  EXPECT_EQ(chk.instantiationCount, 0);
}

// ---- makeVectors feedback threading --------------------------------------

TEST(MakeVectors, FeedbackThreadingMatchesManualEvaluation) {
  // mul_acc carries `acc` in a feedback register: vector t's expectations
  // depend on every vector before it.
  const CompileResult r = compileOk(bench::kMulAcc);
  ASSERT_FALSE(r.datapath.feedbacks.empty());

  std::vector<std::vector<int64_t>> sets;
  for (int t = 0; t < 12; ++t) {
    std::vector<int64_t> set;
    for (size_t p = 0; p < r.datapath.inputs.size(); ++p) {
      set.push_back(3 * t + static_cast<int64_t>(p) - 7);
    }
    sets.push_back(std::move(set));
  }
  const auto vectors = vhdl::makeVectors(r.datapath, sets);
  ASSERT_EQ(vectors.size(), sets.size());

  std::map<std::string, Value> fb;
  bool threadingMattered = false;
  for (size_t t = 0; t < vectors.size(); ++t) {
    std::vector<Value> inputs;
    for (size_t p = 0; p < r.datapath.inputs.size(); ++p) {
      inputs.push_back(Value::fromInt(r.datapath.inputs[p].type, sets[t][p]));
    }
    const dp::EvalResult threaded = dp::evaluate(r.datapath, inputs, fb);
    ASSERT_EQ(vectors[t].expectedOutputs.size(), threaded.outputs.size());
    for (size_t op = 0; op < threaded.outputs.size(); ++op) {
      EXPECT_EQ(vectors[t].expectedOutputs[op].bits(), threaded.outputs[op].bits())
          << "vector " << t << " output " << op;
    }
    // The control: evaluating the same vector from reset must diverge once
    // the accumulator holds state — otherwise this test proves nothing.
    if (t > 0) {
      const dp::EvalResult fresh = dp::evaluate(r.datapath, inputs, {});
      for (size_t op = 0; op < threaded.outputs.size(); ++op) {
        if (fresh.outputs[op].bits() != threaded.outputs[op].bits()) threadingMattered = true;
      }
    }
    fb = threaded.nextFeedback;
  }
  EXPECT_TRUE(threadingMattered) << "feedback never influenced an output across 12 vectors";
}

// ---- system-level vectors and their testbench ----------------------------

TEST(SystemTestbench, VectorsAreDeterministicAndSeedSensitive) {
  const CompileResult r = compileOk(bench::kFir);
  const interp::KernelIO io = deterministicStimulus(r.kernel, VerifyOptions{}.seed);
  vhdl::TestbenchInfo ia, ib, ic;
  const auto a = vhdl::makeSystemVectors(r.kernel, r.datapath, io, 8, 42, &ia);
  const auto b = vhdl::makeSystemVectors(r.kernel, r.datapath, io, 8, 42, &ib);
  const auto c = vhdl::makeSystemVectors(r.kernel, r.datapath, io, 8, 43, &ic);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), static_cast<size_t>(ia.traceVectors + ia.extraVectors));
  EXPECT_EQ(ia.seed, 42u);
  bool identical = true, extrasDiffer = false;
  for (size_t t = 0; t < a.size(); ++t) {
    for (size_t p = 0; p < a[t].inputs.size(); ++p) {
      if (a[t].inputs[p].bits() != b[t].inputs[p].bits()) identical = false;
      if (a[t].inputs[p].bits() != c[t].inputs[p].bits()) extrasDiffer = true;
    }
  }
  EXPECT_TRUE(identical);
  EXPECT_TRUE(extrasDiffer) << "a different --tb-seed produced identical extras";
  // The interpreter-derived prefix is seed-independent.
  for (int64_t t = 0; t < ia.traceVectors; ++t) {
    for (size_t p = 0; p < a[t].inputs.size(); ++p) {
      EXPECT_EQ(a[t].inputs[p].bits(), c[t].inputs[p].bits()) << "trace vector " << t;
    }
  }
}

TEST(SystemTestbench, EmittedBenchCarriesProvenanceAndValidates) {
  const CompileResult r = compileOk(bench::kMulAcc);
  const interp::KernelIO io = deterministicStimulus(r.kernel, VerifyOptions{}.seed);
  vhdl::TestbenchInfo info;
  info.kernelName = r.kernel.kernelName;
  const auto vectors = vhdl::makeSystemVectors(r.kernel, r.datapath, io, 16, 7, &info);
  const std::string tb = vhdl::emitSystemTestbench(r.datapath, r.kernel, vectors, info);

  EXPECT_NE(tb.find("Self-checking system-level testbench for kernel 'mul_acc'"),
            std::string::npos);
  EXPECT_NE(tb.find(fmt("-- vectors: %0 interpreter-derived + 16 seeded extras (tb-seed 7)",
                        info.traceVectors)),
            std::string::npos)
      << tb.substr(0, 400);
  EXPECT_NE(tb.find("-- loops:"), std::string::npos);
  EXPECT_NE(tb.find("TESTBENCH PASSED"), std::string::npos);
  const auto chk = vhdl::checkDesign(r.vhdl + "\n" + tb);
  EXPECT_TRUE(chk.ok) << join(chk.problems, "\n");
}

TEST(SystemTestbench, SimulatedBenchPassesOnBothEnginesAndFailsWhenCorrupted) {
  for (const char* source : {bench::kFir, bench::kMulAcc}) {
    const CompileResult r = compileOk(source);
    const interp::KernelIO io = deterministicStimulus(r.kernel, VerifyOptions{}.seed);
    auto vectors = vhdl::makeSystemVectors(r.kernel, r.datapath, io, 8, 42);
    for (const auto engine : {rtl::SimEngine::Reference, rtl::SimEngine::Fast}) {
      const auto sim = vhdl::simulateTestbench(r.datapath, r.module, vectors, engine);
      EXPECT_TRUE(sim.passed) << r.kernel.kernelName << ": " << sim.firstFailure;
    }

    // Corrupt one expectation: the replay must fail and name exactly that
    // port and vector index, mirroring the emitted assert message.
    const size_t victim = vectors.size() / 2;
    auto broken = vectors;
    Value& cell = broken[victim].expectedOutputs[0];
    cell = Value::fromInt(cell.type(), cell.toInt() + 1);
    const auto sim = vhdl::simulateTestbench(r.datapath, r.module, broken,
                                             rtl::SimEngine::Reference);
    EXPECT_FALSE(sim.passed);
    EXPECT_NE(sim.firstFailure.find(r.datapath.outputs[0].name), std::string::npos)
        << sim.firstFailure;
    EXPECT_NE(sim.firstFailure.find(fmt("vector %0", victim)), std::string::npos)
        << sim.firstFailure;
  }
}

} // namespace
} // namespace roccc
