// Contents of the pre-existing cos/sin lookup-table IP used by Table 1's
// "cos" row (10-bit phase in, Q15 signed out). One shared definition keeps
// the interpreter, the MIR lowering, the RTL ROM, and the baseline IP
// bit-identical.
#pragma once

#include <cstdint>

namespace roccc {

/// Q15 cosine/sine of phase index/1024 * 2*pi (full-wave, 1024 entries).
int64_t cosRomEntry(int index, bool sine);

} // namespace roccc
