#include "dp/annotate.hpp"

#include <algorithm>
#include <sstream>

#include "support/strings.hpp"

namespace roccc::dp {

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

} // namespace

std::string exportJson(const DataPath& dp) {
  std::ostringstream os;
  os << "{\n  \"name\": \"" << jsonEscape(dp.name) << "\",\n";
  os << "  \"stages\": " << dp.stageCount << ",\n";

  os << "  \"nodes\": [\n";
  for (size_t i = 0; i < dp.nodes.size(); ++i) {
    const DpNode& n = dp.nodes[i];
    os << "    {\"id\": " << n.id << ", \"kind\": \""
       << (n.kind == NodeKind::Soft ? "soft" : (n.kind == NodeKind::Mux ? "mux" : "pipe"))
       << "\", \"label\": \"" << jsonEscape(n.label) << "\", \"ops\": [";
    for (size_t k = 0; k < n.ops.size(); ++k) {
      if (k) os << ", ";
      os << n.ops[k];
    }
    os << "]}" << (i + 1 < dp.nodes.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  os << "  \"ops\": [\n";
  for (size_t i = 0; i < dp.ops.size(); ++i) {
    const DpOp& o = dp.ops[i];
    os << "    {\"id\": " << i << ", \"op\": \"" << mir::opcodeName(o.op) << "\", \"stage\": "
       << o.stage << ", \"node\": " << o.node << ", \"result\": " << o.result << ", \"operands\": [";
    for (size_t k = 0; k < o.operands.size(); ++k) {
      if (k) os << ", ";
      os << o.operands[k];
    }
    os << "]";
    if (!o.symbol.empty()) os << ", \"symbol\": \"" << jsonEscape(o.symbol) << "\"";
    if (o.op == mir::Opcode::Ldc) os << ", \"imm\": " << o.imm;
    os << "}" << (i + 1 < dp.ops.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  os << "  \"values\": [\n";
  for (size_t i = 0; i < dp.values.size(); ++i) {
    const DpValue& v = dp.values[i];
    os << "    {\"id\": " << v.id << ", \"name\": \"" << jsonEscape(v.name) << "\", \"width\": "
       << v.width << ", \"signed\": " << (v.isSigned ? "true" : "false") << ", \"declared\": \""
       << v.declared.str() << "\", \"def\": " << v.def << "}"
       << (i + 1 < dp.values.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  auto ports = [&](const char* key, const std::vector<DataPath::Port>& list) {
    os << "  \"" << key << "\": [";
    for (size_t i = 0; i < list.size(); ++i) {
      if (i) os << ", ";
      os << "{\"name\": \"" << jsonEscape(list[i].name) << "\", \"type\": \""
         << list[i].type.str() << "\", \"value\": " << list[i].value << "}";
    }
    os << "],\n";
  };
  ports("inputs", dp.inputs);
  ports("outputs", dp.outputs);

  os << "  \"feedbacks\": [";
  for (size_t i = 0; i < dp.feedbacks.size(); ++i) {
    const auto& fb = dp.feedbacks[i];
    if (i) os << ", ";
    os << "{\"name\": \"" << jsonEscape(fb.name) << "\", \"initial\": " << fb.initial
       << ", \"stage\": " << fb.stage << "}";
  }
  os << "]\n}\n";
  return os.str();
}

bool applyAnnotations(DataPath& dp, const Annotations& a, DiagEngine& diags) {
  bool ok = true;

  // Width overrides by value name.
  for (const auto& [name, width] : a.forceWidth) {
    bool found = false;
    for (auto& v : dp.values) {
      if (v.name != name) continue;
      found = true;
      if (width < 1 || width > v.declared.width) {
        diags.error({}, fmt("annotation: width %0 for '%1' outside 1..%2", width, name,
                            v.declared.width));
        ok = false;
        break;
      }
      if (width < v.width) {
        diags.warning({}, fmt("annotation: narrowing '%0' from %1 to %2 bits may change results "
                              "(user-asserted value range)", name, v.width, width));
      }
      dp.narrowedBits += v.width - width;
      v.width = width;
    }
    if (!found) {
      diags.error({}, fmt("annotation: no value named '%0'", name));
      ok = false;
    }
  }

  // Stage pinning, then forward repair of dependent ops.
  for (const auto& [opIdx, stage] : a.forceStage) {
    if (opIdx < 0 || opIdx >= static_cast<int>(dp.ops.size())) {
      diags.error({}, fmt("annotation: op index %0 out of range", opIdx));
      ok = false;
      continue;
    }
    if (stage < 0) {
      diags.error({}, fmt("annotation: negative stage for op %0", opIdx));
      ok = false;
      continue;
    }
    dp.ops[static_cast<size_t>(opIdx)].stage = stage;
  }
  if (!a.forceStage.empty()) {
    // Repair: every op at least as late as its operands' defs; iterate to a
    // fixed point (the op graph is acyclic).
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto& o : dp.ops) {
        for (int vid : o.operands) {
          const DpValue& v = dp.values[static_cast<size_t>(vid)];
          if (v.def < 0) continue;
          const DpOp& defOp = dp.ops[static_cast<size_t>(v.def)];
          if (defOp.op == mir::Opcode::Ldc) continue;
          if (defOp.stage > o.stage) {
            o.stage = defOp.stage;
            changed = true;
          }
        }
      }
    }
    int maxStage = 0;
    for (const auto& o : dp.ops) maxStage = std::max(maxStage, o.stage);
    dp.stageCount = maxStage + 1;
    // Feedback loops must still close within one stage.
    for (auto& fb : dp.feedbacks) {
      const int lprStage = dp.ops[static_cast<size_t>(dp.values[static_cast<size_t>(fb.lprValue)].def)].stage;
      const int snxStage = dp.ops[static_cast<size_t>(dp.values[static_cast<size_t>(fb.snxValue)].def)].stage;
      if (lprStage != snxStage) {
        diags.error({}, fmt("annotation: feedback '%0' loop would span stages %1..%2", fb.name,
                            lprStage, snxStage));
        ok = false;
      }
      fb.stage = snxStage;
    }
    // Output stages and register statistics.
    for (size_t p = 0; p < dp.outputs.size(); ++p) {
      const DpValue& v = dp.values[static_cast<size_t>(dp.outputs[p].value)];
      dp.outputStage[p] = v.def >= 0 ? dp.ops[static_cast<size_t>(v.def)].stage : 0;
    }
  }

  // Recompute register statistics (widths and/or stages changed).
  dp.pipelineRegisterBits = 0;
  dp.balanceRegisterBits = 0;
  std::vector<int> lastUse(dp.values.size(), -1);
  for (const auto& o : dp.ops) {
    for (int vid : o.operands) {
      lastUse[static_cast<size_t>(vid)] = std::max(lastUse[static_cast<size_t>(vid)], o.stage);
    }
  }
  for (const auto& port : dp.outputs) {
    lastUse[static_cast<size_t>(port.value)] = dp.stageCount - 1;
  }
  for (const auto& v : dp.values) {
    if (v.def >= 0 && dp.ops[static_cast<size_t>(v.def)].op == mir::Opcode::Ldc) continue;
    const int defStage = v.def >= 0 ? dp.ops[static_cast<size_t>(v.def)].stage : 0;
    const int last = lastUse[static_cast<size_t>(v.id)];
    if (last > defStage) {
      const int crossings = last - defStage;
      dp.pipelineRegisterBits += static_cast<int64_t>(crossings) * v.width;
      dp.balanceRegisterBits += static_cast<int64_t>(std::max(0, crossings - 1)) * v.width;
    }
  }
  return ok;
}

} // namespace roccc::dp
