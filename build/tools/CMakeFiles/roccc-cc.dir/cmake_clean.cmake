file(REMOVE_RECURSE
  "CMakeFiles/roccc-cc.dir/roccc_cc.cpp.o"
  "CMakeFiles/roccc-cc.dir/roccc_cc.cpp.o.d"
  "roccc-cc"
  "roccc-cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roccc-cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
