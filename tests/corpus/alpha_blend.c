/* Two input streams blended by a runtime alpha scalar. */
void alpha_blend(const uint8 A[64], const uint8 B[64], uint8 alpha, uint8 C[64]) {
  int i;
  for (i = 0; i < 64; i++) {
    C[i] = (alpha * A[i] + (255 - alpha) * B[i]) >> 8;
  }
}
