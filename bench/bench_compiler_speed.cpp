// Compiler-speed microbenchmarks (google-benchmark): end-to-end compile
// time per Table 1 kernel, plus the compile-time area estimation the
// unrolling heuristic relies on (ref [13] reports < 1 ms — ours is far
// below that) and the cycle-accurate system simulation rate.
#include <benchmark/benchmark.h>

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "hlir/transforms.hpp"
#include "kernels.hpp"
#include "roccc/compiler.hpp"
#include "roccc/driver.hpp"
#include "synth/estimate.hpp"

namespace {

using namespace roccc;

void BM_CompileFir(benchmark::State& state) {
  for (auto _ : state) {
    Compiler c;
    benchmark::DoNotOptimize(c.compileSource(bench::kFir));
  }
}
BENCHMARK(BM_CompileFir);

void BM_CompileDct(benchmark::State& state) {
  for (auto _ : state) {
    Compiler c;
    benchmark::DoNotOptimize(c.compileSource(bench::kDct));
  }
}
BENCHMARK(BM_CompileDct);

void BM_CompileSquareRoot(benchmark::State& state) {
  for (auto _ : state) {
    Compiler c;
    benchmark::DoNotOptimize(c.compileSource(bench::kSquareRoot));
  }
}
BENCHMARK(BM_CompileSquareRoot);

void BM_CompileWavelet2D(benchmark::State& state) {
  for (auto _ : state) {
    Compiler c;
    benchmark::DoNotOptimize(c.compileSource(bench::kWavelet));
  }
}
BENCHMARK(BM_CompileWavelet2D);

/// The nine Table 1 workloads as one CompileService batch, with the
/// per-kernel options of bench_table1's rows (bench::kTable1Kernels).
std::vector<CompileJob> table1Batch() {
  std::vector<CompileJob> jobs;
  for (const auto& k : bench::kTable1Kernels) {
    CompileOptions o;
    if (k.targetStageDelayNs > 0) o.dpOptions.targetStageDelayNs = k.targetStageDelayNs;
    jobs.push_back({k.name, k.source, o});
  }
  return jobs;
}

/// Batch compilation throughput: the Table 1 sweep fanned out across a
/// worker pool. state.range(0) = worker count; the kernels/s counter is
/// the aggregate figure the batch driver reports. Past the machine's core
/// count extra workers only measure scheduling overhead.
void BM_CompileBatchTable1(benchmark::State& state) {
  const auto jobs = table1Batch();
  const CompileService service(static_cast<int>(state.range(0)));
  int64_t kernels = 0;
  for (auto _ : state) {
    BatchResult batch = service.compileBatch(jobs);
    if (!batch.allOk()) state.SkipWithError("batch compile failed");
    kernels += static_cast<int64_t>(batch.results.size());
    benchmark::DoNotOptimize(batch);
  }
  state.counters["kernels/s"] =
      benchmark::Counter(static_cast<double>(kernels), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CompileBatchTable1)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// The ref [13] claim: compile-time area estimation in well under 1 ms.
void BM_AreaEstimation(benchmark::State& state) {
  DiagEngine diags;
  ast::Module m = ast::parse(bench::kDct, diags);
  ast::analyze(m, diags);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hlir::estimateArea(m.functions[0]));
  }
}
BENCHMARK(BM_AreaEstimation);

/// Post-compile synthesis estimation over the netlist.
void BM_SynthesisEstimate(benchmark::State& state) {
  Compiler c;
  const CompileResult r = c.compileSource(bench::kDct);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::estimate(r.module));
  }
}
BENCHMARK(BM_SynthesisEstimate);

/// Cycle-accurate simulation rate of the FIR system.
void BM_SystemSimulationFir(benchmark::State& state) {
  Compiler c;
  const CompileResult r = c.compileSource(bench::kFir);
  interp::KernelIO in;
  for (int i = 0; i < 68; ++i) in.arrays["A"].push_back(i);
  int64_t cycles = 0;
  for (auto _ : state) {
    rtl::System sys(r.kernel, r.datapath, r.module);
    benchmark::DoNotOptimize(sys.run(in));
    cycles += sys.stats().cycles;
  }
  state.counters["cycles/s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SystemSimulationFir);

} // namespace

BENCHMARK_MAIN();
