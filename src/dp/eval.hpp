// Reference evaluator for a built DataPath — one iteration, value-accurate
// at the *inferred* widths. Used by tests to prove (a) data-path
// construction preserves MIR semantics and (b) bit-width narrowing never
// loses bits that reach an output.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dp/datapath.hpp"

namespace roccc::dp {

struct EvalResult {
  std::vector<Value> outputs;                ///< by output port index
  std::map<std::string, Value> nextFeedback; ///< SNX values
};

/// Computes every op at its inferred (narrowed) width. `feedback` carries
/// previous-iteration register values; missing entries use initial values.
EvalResult evaluate(const DataPath& dp, const std::vector<Value>& inputs,
                    const std::map<std::string, Value>& feedback);

} // namespace roccc::dp
