// Verilog-2001 backend (library extension beyond the paper, which emits
// VHDL only): the same node-per-entity structure as the VHDL emitter —
// one module per data-path node, ROM modules for lookup tables, and a top
// module with the cross-node pipeline registers and gated feedback
// registers. Values are plain bit vectors; signedness is made explicit
// through generated sign/zero extensions, so the text does not depend on
// Verilog's self-determination rules.
#pragma once

#include <string>
#include <vector>

#include "dp/datapath.hpp"
#include "hlir/kernel.hpp"

namespace roccc::verilog {

/// Emits the complete Verilog design for a compiled kernel.
std::string emitDesign(const dp::DataPath& dp, const hlir::KernelInfo& kernel);

/// Structural validator for the emitted Verilog (module/endmodule balance,
/// declared-before-assigned wires/regs, instantiations resolve).
struct CheckResult {
  bool ok = true;
  std::vector<std::string> problems;
  int moduleCount = 0;
  int instantiationCount = 0;
  int alwaysCount = 0;
};
CheckResult checkDesign(const std::string& verilogText);

} // namespace roccc::verilog
