// roccc-explore — the design-space exploration driver (ROADMAP item 2).
//
//   roccc-explore [options] [grid.sweep]
//
// Declares a sweep grid (kernels x unroll x compile options x smart-buffer
// geometry), expands it to a deduplicated point list, fans the points
// through the batch compile service, collects per-point metrics
// {slices, LUT/FF/MULT18/BRAM, modeled fmax, FastSim cycles, pJ/cycle,
// EDP}, and reports the per-kernel Pareto frontier plus a "best config per
// kernel" recommendation. bench/sweeps/*.sweep are the stock grids (the
// former bench_ablation_* binaries in declarative form); docs/EXPLORE.md
// documents the grid-file format and the axis semantics.
//
// The JSON report (--json) is deterministic: byte-identical for any --jobs
// value and across cold/warm --cache-dir runs. Wall-time and cache
// accounting are exempt and only appear with --timings (in the report) or
// via --stats-json (separate file).
//
// Exit codes: 0 every point compiled and measured Ok (and, with
// --verify-pareto, every frontier point passed 5-way conformance);
// 1 the sweep completed but some points failed (their typed outcomes are
// in the report — never silently dropped); 2 usage or grid-file error
// (line-numbered); 3 a Pareto-optimal point failed conformance.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/kernels.hpp"
#include "roccc/cache.hpp"
#include "roccc/explore.hpp"
#include "support/strings.hpp"
#include "synth/timing.hpp"

namespace {

struct Args {
  std::string manifestPath;
  std::vector<std::string> table1;     ///< --table1 names ("all" = all nine)
  std::vector<std::string> kernelSpecs; ///< --kernel NAME=PATH
  std::vector<int> unrolls;            ///< CLI override of the unroll axis
  std::vector<double> targetNs;        ///< CLI override of the target-ns axis
  std::vector<roccc::SweepAxis> axes;  ///< CLI override of the frontier axes
  bool seedSet = false;
  uint64_t seed = 0;
  int jobs = 0;
  bool cacheEnabled = false;
  std::string cacheDir;
  std::string jsonPath;
  std::string statsJsonPath;
  bool timings = false;
  bool noCycles = false;
  bool verifyPareto = false;
  std::string timingModelPath;
  std::string timingModelSpec;
  roccc::CompileOptions base;
  bool bestOnly = false;
  bool quiet = false;
  bool showHelp = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] [grid.sweep]\n"
               "       %s --help for the option list (docs/EXPLORE.md has the full reference)\n",
               argv0, argv0);
  return 2;
}

bool parseIntList(const char* v, std::vector<int>& out, int min) {
  out.clear();
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    char* end = nullptr;
    const long n = std::strtol(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0' || n < min) return false;
    out.push_back(static_cast<int>(n));
  }
  return !out.empty();
}

bool parseDoubleList(const char* v, std::vector<double>& out) {
  out.clear();
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    char* end = nullptr;
    const double d = std::strtod(item.c_str(), &end);
    if (end == item.c_str() || *end != '\0' || d < 0) return false;
    out.push_back(d);
  }
  return !out.empty();
}

/// One row of the option table — the same shape as roccc-cc's; --help and
/// the docs/EXPLORE.md sync check (explore_cli_docs_in_sync) are generated
/// from it.
struct OptionSpec {
  const char* name;
  const char* valueName;
  const char* help;
  std::function<bool(Args&, const char*)> apply;
};

const std::vector<OptionSpec>& optionTable() {
  static const std::vector<OptionSpec> table = {
      {"--manifest", "FILE", "sweep grid file (also accepted as the positional argument)",
       [](Args& a, const char* v) { a.manifestPath = v; return true; }},
      {"--table1", "LIST", "add Table 1 kernels by name, or 'all' for all nine",
       [](Args& a, const char* v) {
         std::stringstream ss(v);
         std::string item;
         while (std::getline(ss, item, ',')) {
           if (!item.empty()) a.table1.push_back(item);
         }
         return !a.table1.empty();
       }},
      {"--kernel", "NAME=PATH", "add a kernel from a C file (repeatable)",
       [](Args& a, const char* v) {
         if (std::strchr(v, '=') == nullptr) return false;
         a.kernelSpecs.emplace_back(v);
         return true;
       }},
      {"--unroll", "LIST", "unroll-factor axis, comma-separated (overrides the grid file)",
       [](Args& a, const char* v) { return parseIntList(v, a.unrolls, 1); }},
      {"--target-ns", "LIST", "stage-delay-target axis in ns (0 = per-kernel default)",
       [](Args& a, const char* v) { return parseDoubleList(v, a.targetNs); }},
      {"--axes", "LIST", "Pareto axes: slices,fmax,cycles,energy,edp,throughput",
       [](Args& a, const char* v) {
         a.axes.clear();
         std::stringstream ss(v);
         std::string item;
         while (std::getline(ss, item, ',')) {
           roccc::SweepAxis axis;
           if (!roccc::parseSweepAxis(item, axis)) return false;
           a.axes.push_back(axis);
         }
         return !a.axes.empty();
       }},
      {"--seed", "N", "stimulus seed for the FastSim metric run (overrides the grid file)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.seed = std::strtoull(v, &end, 0);
         a.seedSet = true;
         return end != v && *end == '\0';
       }},
      {"--jobs", "N", "compile worker threads (0 = one per hardware thread)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.jobs = static_cast<int>(std::strtol(v, &end, 10));
         return end != v && *end == '\0' && a.jobs >= 0;
       }},
      {"--cache", nullptr, "enable the content-addressed compile cache",
       [](Args& a, const char*) { a.cacheEnabled = true; return true; }},
      {"--cache-dir", "DIR", "persistent on-disk cache tier in DIR (implies --cache)",
       [](Args& a, const char* v) {
         a.cacheEnabled = true;
         a.cacheDir = v;
         return true;
       }},
      {"--json", "FILE", "write the sweep report as versioned JSON (roccc-sweep-v1)",
       [](Args& a, const char* v) { a.jsonPath = v; return true; }},
      {"--timings", nullptr, "include wall-time and cache accounting in the JSON report",
       [](Args& a, const char*) { a.timings = true; return true; }},
      {"--stats-json", "FILE", "write run accounting (workers, wall ms, cache hits) as JSON",
       [](Args& a, const char* v) { a.statsJsonPath = v; return true; }},
      {"--no-cycles", nullptr, "skip the FastSim run (area/timing-only sweep)",
       [](Args& a, const char*) { a.noCycles = true; return true; }},
      {"--verify-pareto", nullptr, "re-verify every frontier point: 5-way conformance + testbench",
       [](Args& a, const char*) { a.verifyPareto = true; return true; }},
      {"--timing-model", "FILE", "per-primitive delay/area/energy table (docs/SYNTHESIS.md format)",
       [](Args& a, const char* v) { a.timingModelPath = v; return true; }},
      {"--timeout-ms", "N", "per-point wall-clock deadline (0 = none)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.base.budget.timeoutMs = std::strtoll(v, &end, 10);
         return end != v && *end == '\0';
       }},
      {"--max-ir-nodes", "N", "per-point cap on total live IR nodes (0 = none)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.base.budget.maxIrNodes = std::strtoll(v, &end, 10);
         return end != v && *end == '\0' && a.base.budget.maxIrNodes >= 0;
       }},
      {"--inject-fault", "P", "arm fault point P in every compile (see faultPointRegistry)",
       [](Args& a, const char* v) { a.base.injectFaultAt = v; return true; }},
      {"--best-only", nullptr, "print only the best-config-per-kernel report",
       [](Args& a, const char*) { a.bestOnly = true; return true; }},
      {"--quiet", nullptr, "only errors and the one-line outcome summary",
       [](Args& a, const char*) { a.quiet = true; return true; }},
      {"--help", nullptr, "print this option list and exit",
       [](Args& a, const char*) { a.showHelp = true; return true; }},
  };
  return table;
}

void printHelp(const char* argv0) {
  std::printf("usage: %s [options] [grid.sweep]\n\n"
              "Expands a sweep grid (kernels x unroll x compile options x buffer geometry),\n"
              "compiles every point as a batch, and reports the per-kernel Pareto frontier.\n"
              "docs/EXPLORE.md is the full reference, bench/sweeps/ the stock grids.\n\noptions:\n",
              argv0);
  for (const auto& s : optionTable()) {
    std::string left = s.name;
    if (s.valueName) {
      left += ' ';
      left += s.valueName;
    }
    std::printf("  %-22s %s\n", left.c_str(), s.help);
  }
  std::printf("\nexit codes: 0 ok, 1 failed points in the report, 2 usage/grid error,\n"
              "            3 Pareto point failed conformance\n");
}

bool parseArgs(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.empty() || arg[0] != '-') {
      if (!a.manifestPath.empty()) return false;
      a.manifestPath = arg;
      continue;
    }
    std::string inlineValue;
    bool hasInlineValue = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos && arg.rfind("--", 0) == 0) {
      inlineValue = arg.substr(eq + 1);
      arg.resize(eq);
      hasInlineValue = true;
    }
    const OptionSpec* spec = nullptr;
    for (const auto& s : optionTable()) {
      if (arg == s.name) {
        spec = &s;
        break;
      }
    }
    if (!spec) return false;
    const char* value = nullptr;
    if (spec->valueName) {
      if (hasInlineValue) {
        value = inlineValue.c_str();
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return false;
      }
    } else if (hasInlineValue) {
      return false;
    }
    if (!spec->apply(a, value)) return false;
  }
  return a.showHelp || !a.manifestPath.empty() || !a.table1.empty() || !a.kernelSpecs.empty();
}

bool readFile(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

/// Adds the named Table 1 kernels (or all nine) to the grid, with their
/// per-row stage-delay defaults.
bool addTable1Kernels(const std::vector<std::string>& names, bool all,
                      roccc::SweepGrid& grid) {
  const auto add = [&](const roccc::bench::NamedKernel& k) {
    grid.kernels.push_back({k.name, k.source, k.targetStageDelayNs});
  };
  if (all) {
    for (const auto& k : roccc::bench::kTable1Kernels) add(k);
    return true;
  }
  for (const std::string& name : names) {
    if (name == "all") {
      for (const auto& k : roccc::bench::kTable1Kernels) add(k);
      continue;
    }
    bool found = false;
    for (const auto& k : roccc::bench::kTable1Kernels) {
      if (name == k.name) {
        add(k);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "error: unknown Table 1 kernel '%s'\n", name.c_str());
      return false;
    }
  }
  return true;
}

} // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parseArgs(argc, argv, a)) return usage(argv[0]);
  if (a.showHelp) {
    printHelp(argv[0]);
    return 0;
  }

  // ROCCC_FAULT_INJECT: the environment spelling of --inject-fault (the
  // explicit flag wins), same contract as roccc-cc.
  if (a.base.injectFaultAt.empty()) {
    if (const char* env = std::getenv("ROCCC_FAULT_INJECT")) a.base.injectFaultAt = env;
  }

  if (!a.timingModelPath.empty()) {
    if (!readFile(a.timingModelPath, a.base.timingModelSpec)) {
      std::fprintf(stderr, "error: cannot open timing model '%s'\n", a.timingModelPath.c_str());
      return 2;
    }
    roccc::synth::TimingModel model;
    std::string tmError;
    if (!roccc::synth::TimingModel::parse(a.base.timingModelSpec, model, tmError)) {
      std::fprintf(stderr, "error: %s: %s\n", a.timingModelPath.c_str(), tmError.c_str());
      return 2;
    }
  }

  // --- assemble the grid: manifest first, CLI axes override -----------------
  roccc::SweepManifest manifest;
  if (!a.manifestPath.empty()) {
    std::string text;
    if (!readFile(a.manifestPath, text)) {
      std::fprintf(stderr, "error: cannot open grid file '%s'\n", a.manifestPath.c_str());
      return 2;
    }
    std::string error;
    if (!roccc::parseSweepManifest(text, manifest, error)) {
      std::fprintf(stderr, "error: %s: %s\n", a.manifestPath.c_str(), error.c_str());
      return 2;
    }
  }
  roccc::SweepGrid grid = manifest.grid;
  grid.base = a.base;

  if (!addTable1Kernels(manifest.table1, manifest.table1All, grid)) return 2;
  // `kernel NAME PATH` paths resolve relative to the grid file's directory.
  const std::filesystem::path manifestDir =
      std::filesystem::path(a.manifestPath).parent_path();
  for (const auto& kf : manifest.kernelFiles) {
    const std::filesystem::path p = std::filesystem::path(kf.path).is_absolute()
                                        ? std::filesystem::path(kf.path)
                                        : manifestDir / kf.path;
    std::string source;
    if (!readFile(p.string(), source)) {
      std::fprintf(stderr, "error: cannot open kernel file '%s'\n", p.string().c_str());
      return 2;
    }
    grid.kernels.push_back({kf.name, source, 0});
  }
  if (!addTable1Kernels(a.table1, false, grid)) return 2;
  for (const std::string& spec : a.kernelSpecs) {
    const size_t eq = spec.find('=');
    const std::string name = spec.substr(0, eq);
    const std::string path = spec.substr(eq + 1);
    std::string source;
    if (!readFile(path, source)) {
      std::fprintf(stderr, "error: cannot open kernel file '%s'\n", path.c_str());
      return 2;
    }
    grid.kernels.push_back({name, source, 0});
  }
  if (grid.kernels.empty()) {
    std::fprintf(stderr, "error: no kernels (grid file with table1/kernel, --table1, or --kernel)\n");
    return 2;
  }
  if (!a.unrolls.empty()) grid.unrolls = a.unrolls;
  if (!a.targetNs.empty()) grid.targetNs = a.targetNs;

  roccc::SweepOptions opt;
  if (!manifest.axes.empty()) {
    opt.axes.clear();
    for (int axis : manifest.axes) opt.axes.push_back(static_cast<roccc::SweepAxis>(axis));
  }
  if (!a.axes.empty()) opt.axes = a.axes;
  if (manifest.seedSet) opt.seed = manifest.seed;
  if (a.seedSet) opt.seed = a.seed;
  opt.workers = a.jobs;
  opt.collectCycles = !a.noCycles;
  if (a.cacheEnabled) {
    roccc::CacheConfig cfg;
    cfg.diskDir = a.cacheDir;
    opt.cache = std::make_shared<roccc::CompileCache>(cfg);
    if (!a.cacheDir.empty() && !opt.cache->diskEnabled()) {
      std::fprintf(stderr, "error: cannot use cache directory '%s'\n", a.cacheDir.c_str());
      return 2;
    }
  }

  // --- run ------------------------------------------------------------------
  const std::vector<roccc::SweepPoint> points = roccc::expandGrid(grid);
  if (points.empty()) {
    std::fprintf(stderr, "error: the grid expands to zero points\n");
    return 2;
  }
  const roccc::SweepResult sweep = roccc::runSweep(points, opt);

  if (!a.quiet && !a.bestOnly) std::fputs(sweep.table().c_str(), stdout);
  if (!a.quiet) std::fputs(sweep.bestReport().c_str(), stdout);
  std::printf("sweep: %zu points (%s) on %d worker(s), %.1f ms\n", sweep.points.size(),
              sweep.outcomeSummary().c_str(), sweep.workers, sweep.wallMs);

  if (!a.jsonPath.empty()) {
    std::ofstream out(a.jsonPath);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", a.jsonPath.c_str());
      return 2;
    }
    out << sweep.toJson(a.timings);
  }
  if (!a.statsJsonPath.empty()) {
    std::ofstream out(a.statsJsonPath);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", a.statsJsonPath.c_str());
      return 2;
    }
    out << roccc::fmt("{\"run\": {\"workers\": %0, \"wallMs\": %1, \"points\": %2, "
                      "\"ok\": %3, \"failed\": %4, \"cacheHits\": %5, \"cacheMisses\": %6}}\n",
                      sweep.workers, sweep.wallMs, sweep.points.size(), sweep.okCount(),
                      sweep.failedCount(), sweep.cacheHits, sweep.cacheMisses);
  }

  if (a.verifyPareto) {
    roccc::VerifyOptions vopt;
    vopt.seed = opt.seed;
    vopt.checkTestbench = true;
    const roccc::VerifyReport report = roccc::verifyFrontier(sweep, vopt);
    std::printf("frontier conformance: %s\n", report.summary().c_str());
    if (!report.allAgree()) {
      for (const auto& v : report.verdicts) {
        if (!v.agree || !v.testbenchPassed) {
          std::fprintf(stderr, "FAIL %s: %s\n", v.kernel.c_str(),
                       v.compileError.empty() ? "engines disagree or testbench failed"
                                              : v.compileError.c_str());
        }
      }
      return 3;
    }
  }

  return sweep.failedCount() == 0 ? 0 : 1;
}
