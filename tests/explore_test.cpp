// The sweep engine's unit battery (ISSUE 8): grid expansion (cross
// product, dedup, option canonicalization), Pareto-frontier correctness on
// hand-built metric sets, manifest parsing with line-numbered errors, and
// the headline determinism guarantee — the same grid run on 1 worker and
// 8 workers yields byte-identical JSON.
#include "roccc/explore.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "../bench/kernels.hpp"
#include "roccc/cache.hpp"

namespace roccc {
namespace {

const char* kFirSource = R"(void fir(const int16 A[36], int16 C[32]) {
  int i;
  for (i = 0; i < 32; i = i + 1) {
    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
  }
})";

SweepGrid firGrid() {
  SweepGrid grid;
  grid.kernels.push_back({"fir", kFirSource, 0});
  return grid;
}

// --- grid expansion ----------------------------------------------------------

TEST(ExploreGrid, SingleKernelDefaultGridIsOneCompile) {
  const auto points = expandGrid(firGrid());
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].kernel, "fir");
  EXPECT_EQ(points[0].label, "fir@u1/ns4");
  EXPECT_EQ(points[0].config.unroll, 1);
  // A 0-valued target axis resolves to the BuildOptions default.
  EXPECT_DOUBLE_EQ(points[0].config.targetNs, 4.0);
  EXPECT_DOUBLE_EQ(points[0].options.dpOptions.targetStageDelayNs, 4.0);
}

TEST(ExploreGrid, CrossProductCoversEveryAxisCombination) {
  SweepGrid grid = firGrid();
  grid.unrolls = {1, 2, 4};
  grid.targetNs = {2.0, 4.0};
  grid.smartBuffer = {true, false};
  const auto points = expandGrid(grid);
  EXPECT_EQ(points.size(), 3u * 2u * 2u);
  std::set<std::string> labels;
  for (const auto& p : points) labels.insert(p.label);
  EXPECT_EQ(labels.size(), points.size()) << "labels must be unique within a sweep";
  EXPECT_TRUE(labels.count("fir@u2/ns2"));
  EXPECT_TRUE(labels.count("fir@u4/ns4/naive"));
}

TEST(ExploreGrid, DuplicateAxisValuesDedupToOnePoint) {
  SweepGrid grid = firGrid();
  grid.unrolls = {2, 2, 2};
  EXPECT_EQ(expandGrid(grid).size(), 1u);
}

TEST(ExploreGrid, DefaultTargetAndItsExplicitSpellingDedup) {
  // 0 resolves to the compiler default 4.0, so {0, 4.0} is one point —
  // dedup is semantic (content-addressed compile key), not syntactic.
  SweepGrid grid = firGrid();
  grid.targetNs = {0, 4.0};
  EXPECT_EQ(expandGrid(grid).size(), 1u);
}

TEST(ExploreGrid, PerKernelDefaultTargetResolvesThroughZero) {
  SweepGrid grid;
  grid.kernels.push_back({"dct", "", 7.5});
  grid.kernels[0].source = kFirSource; // source content irrelevant to resolution
  grid.targetNs = {0};
  const auto points = expandGrid(grid);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].config.targetNs, 7.5);
  EXPECT_EQ(points[0].label, "dct@u1/ns7.5");
}

TEST(ExploreGrid, OptionCanonicalizationReachesCompileOptions) {
  SweepGrid grid = firGrid();
  grid.retime = {false};
  grid.pipeline = {false};
  grid.widthModes = {SweepGrid::WidthMode::Declared};
  grid.multStyles = {dp::BuildOptions::MultStyle::Mult18};
  const auto points = expandGrid(grid);
  ASSERT_EQ(points.size(), 1u);
  const CompileOptions& o = points[0].options;
  EXPECT_FALSE(o.retimePipeline);
  EXPECT_FALSE(o.dpOptions.pipeline);
  EXPECT_FALSE(o.dpOptions.inferBitWidths);
  EXPECT_EQ(o.dpOptions.multStyle, dp::BuildOptions::MultStyle::Mult18);
  EXPECT_EQ(points[0].label, "fir@u1/ns4/noretime/nopipe/declared/mult18");
}

TEST(ExploreGrid, GeometryVariesThePointButNotTheCompileKey) {
  // Smart-buffer geometry is a system-level knob — same compiled design,
  // different measurement — so dedup must keep geometry-distinct points
  // even though their compile keys collide.
  SweepGrid grid = firGrid();
  grid.busElems = {1, 2};
  grid.smartBuffer = {true, false};
  const auto points = expandGrid(grid);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(computeCacheKey(points[0].source, points[0].options),
            computeCacheKey(points[3].source, points[3].options));
}

TEST(ExploreGrid, ExpansionOrderIsDeterministic) {
  SweepGrid grid = firGrid();
  grid.unrolls = {4, 1, 2};
  grid.targetNs = {8.0, 2.0};
  const auto a = expandGrid(grid);
  const auto b = expandGrid(grid);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].label, b[i].label);
  // Axis-value order is preserved, not sorted: the declared grid is the
  // report's row order.
  EXPECT_EQ(a[0].label, "fir@u4/ns8");
}

// --- Pareto frontier ---------------------------------------------------------

TEST(ExplorePareto, DominatedPointsAreRemoved) {
  // (slices, cycles) both minimized: (1,9) (2,8) are the frontier;
  // (3,9) is dominated by both, (2,9) by (2,8).
  const std::vector<std::vector<double>> rows = {{1, 9}, {3, 9}, {2, 8}, {2, 9}};
  const auto f = paretoFrontier(rows, {false, false});
  EXPECT_EQ(f, (std::vector<size_t>{0, 2}));
}

TEST(ExplorePareto, IdenticalRowsBothStay) {
  const std::vector<std::vector<double>> rows = {{5, 5}, {5, 5}, {6, 6}};
  const auto f = paretoFrontier(rows, {false, false});
  EXPECT_EQ(f, (std::vector<size_t>{0, 1}));
}

TEST(ExplorePareto, SingleAxisDegeneratesToAllBestValues) {
  const std::vector<std::vector<double>> rows = {{3}, {1}, {1}, {2}};
  const auto f = paretoFrontier(rows, {false});
  EXPECT_EQ(f, (std::vector<size_t>{1, 2}));
}

TEST(ExplorePareto, MaximizeAxisFlipsDirection) {
  // (slices min, fmax max): (10, 200) and (5, 100) are both optimal;
  // (10, 100) is dominated by each.
  const std::vector<std::vector<double>> rows = {{10, 200}, {5, 100}, {10, 100}};
  const auto f = paretoFrontier(rows, {false, true});
  EXPECT_EQ(f, (std::vector<size_t>{0, 1}));
}

TEST(ExplorePareto, EveryAxisNameRoundTrips) {
  for (int a = 0; a < kSweepAxisCount; ++a) {
    const auto axis = static_cast<SweepAxis>(a);
    SweepAxis parsed;
    ASSERT_TRUE(parseSweepAxis(sweepAxisName(axis), parsed)) << sweepAxisName(axis);
    EXPECT_EQ(parsed, axis);
  }
  SweepAxis unused;
  EXPECT_FALSE(parseSweepAxis("slises", unused));
}

// --- manifest parsing --------------------------------------------------------

TEST(ExploreManifest, ParsesEveryDirective) {
  const std::string text =
      "# stock unroll sweep\n"
      "table1 fir dct\n"
      "kernel tap3 kernels/tap3.c\n"
      "unroll 1,2 4\n"
      "auto-unroll-budget 0 1000\n"
      "target-ns 0,8\n"
      "retime on off\n"
      "pipeline on\n"
      "optimize on\n"
      "lut-convert off\n"
      "width-mode declared paper range\n"
      "mult-style lut,mult18\n"
      "bus-elems 1 2\n"
      "smart-buffer on off\n"
      "axes slices,fmax,cycles\n"
      "seed 0x2005\n";
  SweepManifest m;
  std::string error;
  ASSERT_TRUE(parseSweepManifest(text, m, error)) << error;
  EXPECT_EQ(m.table1, (std::vector<std::string>{"fir", "dct"}));
  ASSERT_EQ(m.kernelFiles.size(), 1u);
  EXPECT_EQ(m.kernelFiles[0].name, "tap3");
  EXPECT_EQ(m.kernelFiles[0].path, "kernels/tap3.c");
  EXPECT_EQ(m.grid.unrolls, (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(m.grid.autoUnrollBudgets, (std::vector<int64_t>{0, 1000}));
  EXPECT_EQ(m.grid.targetNs, (std::vector<double>{0, 8}));
  EXPECT_EQ(m.grid.retime, (std::vector<bool>{true, false}));
  EXPECT_EQ(m.grid.lutConvert, (std::vector<bool>{false}));
  EXPECT_EQ(m.grid.widthModes.size(), 3u);
  EXPECT_EQ(m.grid.multStyles.size(), 2u);
  EXPECT_EQ(m.grid.busElems, (std::vector<int>{1, 2}));
  EXPECT_EQ(m.axes.size(), 3u);
  EXPECT_TRUE(m.seedSet);
  EXPECT_EQ(m.seed, 0x2005u);
  EXPECT_FALSE(m.table1All);
}

TEST(ExploreManifest, BareTable1MeansAllKernels) {
  SweepManifest m;
  std::string error;
  ASSERT_TRUE(parseSweepManifest("table1\n", m, error)) << error;
  EXPECT_TRUE(m.table1All);
}

TEST(ExploreManifest, ErrorsCarryLineNumbers) {
  SweepManifest m;
  std::string error;
  // Line 3 (after a comment and a valid line) misspells a directive.
  EXPECT_FALSE(parseSweepManifest("# header\nunroll 1 2\nunrol 4\n", m, error));
  EXPECT_TRUE(error.rfind("line 3:", 0) == 0) << error;
  EXPECT_NE(error.find("unrol"), std::string::npos) << error;

  EXPECT_FALSE(parseSweepManifest("unroll 1 zero\n", m, error));
  EXPECT_TRUE(error.rfind("line 1:", 0) == 0) << error;

  EXPECT_FALSE(parseSweepManifest("retime maybe\n", m, error));
  EXPECT_TRUE(error.rfind("line 1:", 0) == 0) << error;

  EXPECT_FALSE(parseSweepManifest("kernel tap3\n", m, error));
  EXPECT_NE(error.find("NAME and PATH"), std::string::npos) << error;

  EXPECT_FALSE(parseSweepManifest("seed 1 2\n", m, error));
  EXPECT_TRUE(error.rfind("line 1:", 0) == 0) << error;
}

TEST(ExploreManifest, RepeatedAxisDirectiveIsAnError) {
  SweepManifest m;
  std::string error;
  EXPECT_FALSE(parseSweepManifest("unroll 1\nunroll 2\n", m, error));
  EXPECT_TRUE(error.rfind("line 2:", 0) == 0) << error;
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  // kernel and table1 accumulate, so repeats are fine.
  ASSERT_TRUE(parseSweepManifest("kernel a a.c\nkernel b b.c\ntable1 fir\ntable1 dct\n", m, error))
      << error;
  EXPECT_EQ(m.kernelFiles.size(), 2u);
  EXPECT_EQ(m.table1.size(), 2u);
}

TEST(ExploreManifest, UnknownAxisNamesTheLine) {
  SweepManifest m;
  std::string error;
  EXPECT_FALSE(parseSweepManifest("\n\naxes slices,speed\n", m, error));
  EXPECT_TRUE(error.rfind("line 3:", 0) == 0) << error;
  EXPECT_NE(error.find("speed"), std::string::npos) << error;
}

// --- sweep execution + determinism -------------------------------------------

TEST(ExploreDeterminism, JsonIsByteIdenticalAcrossWorkerCounts) {
  SweepGrid grid = firGrid();
  grid.unrolls = {1, 2, 4};
  grid.targetNs = {4.0, 8.0};

  SweepOptions one;
  one.workers = 1;
  SweepOptions eight;
  eight.workers = 8;
  const SweepResult a = runSweep(grid, one);
  const SweepResult b = runSweep(grid, eight);
  EXPECT_EQ(a.toJson(), b.toJson());
  // Wall-time fields are exempt — they live only in the timings form.
  EXPECT_NE(a.toJson(true).find("\"run\""), std::string::npos);
  EXPECT_EQ(a.toJson().find("\"wallMs\""), std::string::npos);
  EXPECT_EQ(a.toJson().find("\"compileMs\""), std::string::npos);
}

TEST(ExploreDeterminism, MetricsAndFrontierAreStable) {
  SweepGrid grid = firGrid();
  grid.unrolls = {1, 2};
  const SweepResult sweep = runSweep(grid, SweepOptions{});
  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_EQ(sweep.okCount(), 2);
  for (const auto& p : sweep.points) {
    EXPECT_GT(p.metrics.slices, 0) << p.point.label;
    EXPECT_GT(p.metrics.fmaxMHz, 0) << p.point.label;
    EXPECT_GT(p.metrics.cycles, 0) << p.point.label;
    EXPECT_GT(p.metrics.energyPjPerCycle, 0) << p.point.label;
  }
  // Unrolling doubles throughput and area for FIR; the frontier keeps both
  // points (area vs cycles trade) and the JSON names them.
  ASSERT_EQ(sweep.frontiers.size(), 1u);
  EXPECT_FALSE(sweep.frontiers[0].points.empty());
  const std::string json = sweep.toJson();
  EXPECT_NE(json.find("\"schema\": \"roccc-sweep-v1\""), std::string::npos);
  EXPECT_NE(json.find("fir@u1/ns4"), std::string::npos);
  EXPECT_NE(json.find("fir@u2/ns4"), std::string::npos);
}

TEST(ExploreDeterminism, CollectCyclesOffLeavesCycleMetricsZero) {
  SweepGrid grid = firGrid();
  SweepOptions opt;
  opt.collectCycles = false;
  const SweepResult sweep = runSweep(grid, opt);
  ASSERT_EQ(sweep.points.size(), 1u);
  EXPECT_EQ(sweep.points[0].outcome, PointOutcome::Ok);
  EXPECT_EQ(sweep.points[0].metrics.cycles, 0);
  EXPECT_GT(sweep.points[0].metrics.slices, 0);
}

TEST(ExploreDeterminism, BestConfigMinimizesRuntimeThenArea) {
  // Hand-built: give the sweep a grid where unroll 2 halves cycles —
  // best must pick it over the smaller unroll-1 design.
  SweepGrid grid = firGrid();
  grid.unrolls = {1, 2};
  SweepOptions opt;
  opt.axes = {SweepAxis::Slices, SweepAxis::Cycles};
  const SweepResult sweep = runSweep(grid, opt);
  ASSERT_EQ(sweep.frontiers.size(), 1u);
  const KernelFrontier& f = sweep.frontiers[0];
  ASSERT_FALSE(f.points.empty());
  double bestRuntime = 1e300;
  for (size_t idx : f.points) {
    const PointMetrics& m = sweep.points[idx].metrics;
    bestRuntime = std::min(bestRuntime,
                           static_cast<double>(m.cycles) * m.criticalPathNs);
  }
  const PointMetrics& chosen = sweep.points[f.best].metrics;
  EXPECT_DOUBLE_EQ(static_cast<double>(chosen.cycles) * chosen.criticalPathNs, bestRuntime);
  EXPECT_NE(sweep.bestReport().find("fir"), std::string::npos);
}

TEST(ExploreDeterminism, OutcomeSummaryCountsEveryPoint) {
  SweepGrid grid = firGrid();
  grid.kernels.push_back({"broken", "void broken(int", 0});
  const SweepResult sweep = runSweep(grid, SweepOptions{});
  EXPECT_EQ(sweep.points.size(), 2u);
  EXPECT_EQ(sweep.okCount(), 1);
  EXPECT_EQ(sweep.failedCount(), 1);
  EXPECT_NE(sweep.outcomeSummary().find("1 ok"), std::string::npos);
  EXPECT_NE(sweep.outcomeSummary().find("frontend-error"), std::string::npos);
  // The failed point appears in the table and the JSON — never dropped.
  EXPECT_NE(sweep.table().find("broken"), std::string::npos);
  EXPECT_NE(sweep.toJson().find("\"outcome\": \"frontend-error\""), std::string::npos);
  // A kernel with no viable point still gets a frontier row.
  ASSERT_EQ(sweep.frontiers.size(), 2u);
  EXPECT_TRUE(sweep.frontiers[1].points.empty());
  EXPECT_NE(sweep.bestReport().find("no viable point"), std::string::npos);
}

} // namespace
} // namespace roccc
