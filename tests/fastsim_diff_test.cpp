// Differential testing: FastSim (the compiled slot-indexed engine) locked
// to NetlistSim (the boxed-Value reference) in cycle lockstep. Every Table 1
// kernel is compiled at unroll factors {1, 2, 4}, then both engines are
// driven with identical seeded random input streams — including patterns a
// real System run would never present — and every net is compared on every
// cycle. Any divergence fails with the cycle and the net name.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "../bench/kernels.hpp"
#include "rtl/fastsim.hpp"
#include "rtl/netlist.hpp"
#include "roccc/compiler.hpp"

namespace roccc {
namespace {

/// Drives `batch` reference simulators and one batched FastSim in lockstep
/// for `cycles` cycles of random stimulus, comparing all nets on all lanes.
void diffRun(const rtl::Module& m, uint64_t seed, int cycles, int batch) {
  std::vector<rtl::NetlistSim> refs;
  refs.reserve(static_cast<size_t>(batch));
  for (int l = 0; l < batch; ++l) refs.emplace_back(m);
  rtl::FastSim fast(m, batch);

  std::mt19937_64 rng(seed);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (size_t p = 0; p < m.inputPorts.size(); ++p) {
      const ScalarType t = m.nets[static_cast<size_t>(m.inputPorts[p])].type;
      for (int l = 0; l < batch; ++l) {
        const Value v(t, rng()); // uniform over the port's raw bit patterns
        refs[static_cast<size_t>(l)].setInput(p, v);
        fast.setInput(p, v, l);
      }
    }
    for (auto& r : refs) r.eval();
    fast.eval();
    for (size_t n = 0; n < m.nets.size(); ++n) {
      for (int l = 0; l < batch; ++l) {
        const Value want = refs[static_cast<size_t>(l)].netValue(static_cast<int>(n));
        const Value got = fast.netValue(static_cast<int>(n), l);
        ASSERT_TRUE(want == got)
            << "engines diverge at cycle " << cycle << ", net " << n << " '" << m.nets[n].name
            << "', lane " << l << ": reference=" << want.str() << " fast=" << got.str();
      }
    }
    // Mixed enable pattern: mostly advancing, with occasional stall cycles
    // (identical across lanes, as the System schedules them).
    const bool enable = (rng() % 4) != 0;
    for (auto& r : refs) r.tick(enable);
    fast.tick(enable);
  }
}

struct KernelCase {
  const char* name;
  const char* source;
  double targetNs; ///< 0: default pipeline stage target
};

const KernelCase kTable1Cases[] = {
    {"bit_correlator", bench::kBitCorrelator, 0},
    {"mul_acc", bench::kMulAcc, 0},
    {"mul_acc_predicated", bench::kMulAccPredicated, 0},
    {"udiv", bench::kUdiv, 3.0},
    {"square_root", bench::kSquareRoot, 0},
    {"cos", bench::kCos, 0},
    {"fir", bench::kFir, 0},
    {"dct", bench::kDct, 7.5},
    {"wavelet", bench::kWavelet, 9.0},
};

class FastSimDiff : public ::testing::TestWithParam<int> {};

TEST_P(FastSimDiff, LockstepOnAllTable1Kernels) {
  const int unroll = GetParam();
  for (const KernelCase& kc : kTable1Cases) {
    CompileOptions opt;
    opt.unrollFactor = unroll;
    if (kc.targetNs > 0) opt.dpOptions.targetStageDelayNs = kc.targetNs;
    Compiler c(opt);
    const CompileResult r = c.compileSource(kc.source);
    ASSERT_TRUE(r.ok) << kc.name << " unroll " << unroll << ":\n" << r.diags.dump();
    std::vector<std::string> errors;
    ASSERT_TRUE(r.module.verify(errors)) << kc.name << ": " << errors.front();
    diffRun(r.module, /*seed=*/0xD1FF + static_cast<uint64_t>(unroll) * 131 +
                          static_cast<uint64_t>(&kc - kTable1Cases),
            /*cycles=*/48, /*batch=*/3);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "divergence in kernel '" << kc.name << "' at unroll " << unroll;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(UnrollFactors, FastSimDiff, ::testing::Values(1, 2, 4));

// The width-inference and pipelining knobs reshape the netlist (resize
// chains, pipeline registers); the engines must track through all of them.
TEST(FastSimDiff, LockstepAcrossDatapathKnobs) {
  for (const KernelCase& kc : {kTable1Cases[6] /*fir*/, kTable1Cases[7] /*dct*/}) {
    for (int mode = 0; mode < 3; ++mode) {
      CompileOptions opt;
      if (mode == 1) opt.dpOptions.inferBitWidths = false;
      if (mode == 2) opt.dpOptions.pipeline = false;
      Compiler c(opt);
      const CompileResult r = c.compileSource(kc.source);
      ASSERT_TRUE(r.ok) << kc.name << " mode " << mode;
      diffRun(r.module, /*seed=*/977 * static_cast<uint64_t>(mode + 1), /*cycles=*/32,
              /*batch=*/2);
    }
  }
}

// Batching is not allowed to bleed state between lanes: a lane fed all-zero
// inputs must behave exactly like a batch-1 simulation fed all zeros, even
// when its neighbor lanes carry random traffic.
TEST(FastSimDiff, LanesAreIndependent) {
  Compiler c;
  const CompileResult r = c.compileSource(bench::kFir);
  ASSERT_TRUE(r.ok);
  const rtl::Module& m = r.module;

  rtl::FastSim solo(m, 1);
  rtl::FastSim batched(m, 4);
  std::mt19937_64 rng(42);
  for (int cycle = 0; cycle < 64; ++cycle) {
    for (size_t p = 0; p < m.inputPorts.size(); ++p) {
      const ScalarType t = m.nets[static_cast<size_t>(m.inputPorts[p])].type;
      solo.setInput(p, Value(t, 0));
      batched.setInput(p, Value(t, 0), 2); // the quiet lane
      for (int l : {0, 1, 3}) batched.setInput(p, Value(t, rng()), l);
    }
    solo.eval();
    batched.eval();
    for (size_t o = 0; o < m.outputPorts.size(); ++o) {
      ASSERT_TRUE(solo.output(o) == batched.output(o, 2))
          << "cycle " << cycle << " output " << o;
    }
    solo.tick(true);
    batched.tick(true);
  }
}

} // namespace
} // namespace roccc
