#include <gtest/gtest.h>

#include <cmath>

#include "ip/ip.hpp"
#include "roccc/compiler.hpp"
#include "support/cosrom.hpp"
#include "support/strings.hpp"
#include "synth/estimate.hpp"

namespace roccc {
namespace {

// --- estimator basics -----------------------------------------------------------

TEST(Synth, SlicesPackLutsAndFfs) {
  synth::Resources r;
  r.lut4 = 100;
  r.ff = 0;
  const int64_t logicOnly = synth::slicesFor(r);
  EXPECT_EQ(logicOnly, 50);
  r.ff = 100;
  EXPECT_GT(synth::slicesFor(r), logicOnly); // imperfect packing costs some
  EXPECT_LT(synth::slicesFor(r), 100);
}

TEST(Synth, WiderAddersAreSlowerAndBigger) {
  auto make = [](int w) {
    rtl::Module m;
    m.name = "adder";
    const int a = m.addNet(ScalarType::make(w, true), "a");
    const int b = m.addNet(ScalarType::make(w, true), "b");
    m.inputPorts = {a, b};
    m.inputNames = {"a", "b"};
    const int s = m.addNet(ScalarType::make(w, true), "s");
    m.addCell(rtl::CellKind::Add, {a, b}, s);
    const int r = m.addNet(ScalarType::make(w, true), "r");
    const int c = m.addCell(rtl::CellKind::Reg, {s}, r);
    (void)c;
    m.outputPorts = {r};
    m.outputNames = {"r"};
    return m;
  };
  const auto r8 = synth::estimate(make(8));
  const auto r32 = synth::estimate(make(32));
  EXPECT_LT(r8.slices, r32.slices);
  EXPECT_GT(r8.fmaxMHz(), r32.fmaxMHz());
}

TEST(Synth, ConstantShiftIsFree) {
  rtl::Module m;
  m.name = "shifter";
  const int a = m.addNet(ScalarType::make(16, false), "a");
  m.inputPorts = {a};
  m.inputNames = {"a"};
  const int sh = m.addConst(3, ScalarType::make(3, false));
  const int o = m.addNet(ScalarType::make(16, false), "o");
  m.addCell(rtl::CellKind::Shl, {a, sh}, o);
  m.outputPorts = {o};
  m.outputNames = {"o"};
  const auto rep = synth::estimate(m);
  EXPECT_EQ(rep.res.lut4, 0);
}

TEST(Synth, RomSizingDistributedVsBram) {
  auto romModule = [](size_t entries) {
    rtl::Module m;
    m.name = "rom";
    const int a = m.addNet(ScalarType::make(12, false), "a");
    m.inputPorts = {a};
    m.inputNames = {"a"};
    const int o = m.addNet(ScalarType::make(16, true), "o");
    const int c = m.addCell(rtl::CellKind::Rom, {a}, o);
    m.cells[static_cast<size_t>(c)].romData.assign(entries, 1);
    m.outputPorts = {o};
    m.outputNames = {"o"};
    return m;
  };
  const auto small = synth::estimate(romModule(256));
  EXPECT_EQ(small.res.bram, 0);
  EXPECT_EQ(small.res.lut4, 256 / 16 * 16);
  const auto big = synth::estimate(romModule(4096)); // 64 kbit > threshold
  EXPECT_GT(big.res.bram, 0);
}

// --- IP functional checks ------------------------------------------------------------

/// Drives a combinational+registered module for enough cycles to flush its
/// latency and returns the output for each applied input.
std::vector<int64_t> drive(const rtl::Module& m, const std::vector<std::vector<int64_t>>& inputs,
                           size_t outPort = 0) {
  rtl::NetlistSim sim(m);
  sim.reset();
  std::vector<int64_t> outs;
  const size_t total = inputs.size() + static_cast<size_t>(m.latency);
  for (size_t t = 0; t < total; ++t) {
    const auto& vals = inputs[std::min(t, inputs.size() - 1)];
    for (size_t p = 0; p < vals.size(); ++p) {
      sim.setInput(p, Value::fromInt(m.nets[static_cast<size_t>(m.inputPorts[p])].type, vals[p]));
    }
    sim.eval();
    if (t >= static_cast<size_t>(m.latency)) outs.push_back(sim.output(outPort).toInt());
    sim.tick(true);
  }
  return outs;
}

TEST(IpBaseline, BitCorrelatorCounts) {
  const uint8_t mask = 181; // 10110101
  rtl::Module m = ip::buildBitCorrelator(mask);
  std::vector<std::string> errors;
  ASSERT_TRUE(m.verify(errors)) << join(errors, "\n");
  std::vector<std::vector<int64_t>> in;
  std::vector<int64_t> expect;
  for (int x = 0; x < 256; x += 7) {
    in.push_back({x});
    int cnt = 0;
    for (int j = 0; j < 8; ++j) {
      if (((x >> j) & 1) == ((mask >> j) & 1)) ++cnt;
    }
    expect.push_back(cnt);
  }
  EXPECT_EQ(drive(m, in), expect);
}

TEST(IpBaseline, Udiv8Divides) {
  rtl::Module m = ip::buildUdiv8();
  std::vector<std::string> errors;
  ASSERT_TRUE(m.verify(errors)) << join(errors, "\n");
  std::vector<std::vector<int64_t>> in;
  std::vector<int64_t> expect;
  for (int n = 0; n < 256; n += 17) {
    for (int d = 1; d < 256; d += 41) {
      in.push_back({n, d});
      expect.push_back(n / d);
    }
  }
  EXPECT_EQ(drive(m, in), expect);
}

TEST(IpBaseline, SquareRoot24) {
  rtl::Module m = ip::buildSquareRoot24();
  std::vector<std::string> errors;
  ASSERT_TRUE(m.verify(errors)) << join(errors, "\n");
  std::vector<std::vector<int64_t>> in;
  std::vector<int64_t> expect;
  for (int64_t x : {0LL, 1LL, 2LL, 16LL, 81LL, 1000LL, 65535LL, 999999LL, 16777215LL}) {
    in.push_back({x});
    expect.push_back(static_cast<int64_t>(std::sqrt(static_cast<double>(x))));
  }
  const auto got = drive(m, in);
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "sqrt(" << in[i][0] << ")";
  }
}

TEST(IpBaseline, CosQuarterWaveMatchesRom) {
  rtl::Module m = ip::buildCosLut();
  std::vector<std::string> errors;
  ASSERT_TRUE(m.verify(errors)) << join(errors, "\n");
  std::vector<std::vector<int64_t>> in;
  std::vector<int64_t> expect;
  for (int p = 0; p < 1024; p += 13) {
    in.push_back({p});
    expect.push_back(cosRomEntry(p, false));
  }
  const auto got = drive(m, in);
  for (size_t i = 0; i < expect.size(); ++i) {
    // Quarter-wave reconstruction differs by at most 1 LSB from the
    // full-wave table near the axis crossings (rounding of the mirror).
    EXPECT_EQ(got[i], expect[i]) << "phase " << in[i][0];
  }
}

TEST(IpBaseline, Fir5FiltersStream) {
  rtl::Module m = ip::buildFir5();
  std::vector<std::string> errors;
  ASSERT_TRUE(m.verify(errors)) << join(errors, "\n");
  static const int64_t c[5] = {3, 5, 7, 9, -1};
  std::vector<std::vector<int64_t>> in;
  std::vector<int64_t> x;
  for (int t = 0; t < 40; ++t) {
    const int64_t v = (t * 23) % 200 - 100;
    x.push_back(v);
    in.push_back({v, v});
  }
  rtl::NetlistSim sim(m);
  sim.reset();
  // Latency 3 after the tap line is full (tap t uses x[t-4..t]).
  std::vector<int64_t> got;
  for (size_t t = 0; t < in.size(); ++t) {
    sim.setInput(0, Value::fromInt(ScalarType::make(8, true), in[t][0]));
    sim.setInput(1, Value::fromInt(ScalarType::make(8, true), in[t][1]));
    sim.eval();
    got.push_back(sim.output(0).toInt());
    sim.tick(true);
  }
  for (size_t t = 7; t < in.size(); ++t) {
    // Output at cycle t corresponds to window ending at t-3 (latency),
    // taps reversed: y = sum c[k] * x[t-3-k].
    int64_t expect = 0;
    for (int k = 0; k < 5; ++k) expect += c[k] * x[t - 3 - static_cast<size_t>(k)];
    EXPECT_EQ(got[t], expect) << "t=" << t;
  }
}

TEST(IpBaseline, MulAccAccumulates) {
  rtl::Module m = ip::buildMulAcc();
  rtl::NetlistSim sim(m);
  sim.reset();
  int64_t expect = 0;
  std::vector<int64_t> products;
  for (int t = 0; t < 10; ++t) {
    const int64_t a = t - 5, b = 3 * t + 1;
    products.push_back(a * b);
    sim.setInput(0, Value::fromInt(ScalarType::make(12, true), a));
    sim.setInput(1, Value::fromInt(ScalarType::make(12, true), b));
    sim.eval();
    sim.tick(true);
  }
  // After 10 ticks the accumulator register has absorbed products 0..8
  // (the product register delays each by one cycle).
  sim.eval();
  for (int t = 0; t < 9; ++t) expect += products[static_cast<size_t>(t)];
  EXPECT_EQ(sim.output(0).toInt(), expect);
}

TEST(IpBaseline, StructuralModelsVerify) {
  for (const rtl::Module& m : {ip::buildDct8(), ip::buildWavelet53(64)}) {
    std::vector<std::string> errors;
    EXPECT_TRUE(m.verify(errors)) << m.name << ": " << join(errors, "\n");
  }
}

// --- relative area/clock shape (the Table 1 claims) -----------------------------------

TEST(Table1Shape, RocccBitCorrelatorBiggerThanIp) {
  const char* src = R"(
    void bit_correlator(const uint8 A[64], uint4 C[64]) {
      int i;
      int j;
      int cnt;
      for (i = 0; i < 64; i++) {
        cnt = 0;
        for (j = 0; j < 8; j++) {
          if (((A[i] >> j) & 1) == ((181 >> j) & 1)) {
            cnt = cnt + 1;
          }
        }
        C[i] = cnt;
      }
    }
  )";
  Compiler c;
  const CompileResult r = c.compileSource(src);
  ASSERT_TRUE(r.ok) << r.diags.dump();
  const auto roccc = synth::estimate(r.module);
  const auto ipRep = synth::estimate(ip::buildBitCorrelator(181));
  // Paper: 2.11x area, 0.679x clock.
  const double areaRatio = static_cast<double>(roccc.slices) / static_cast<double>(ipRep.slices);
  EXPECT_GT(areaRatio, 1.2) << "roccc " << roccc.summary() << " vs ip " << ipRep.summary();
  EXPECT_LT(areaRatio, 6.0);
}

TEST(Table1Shape, RocccUdivBiggerButComparableClock) {
  const char* src = R"(
    void udiv(const uint8 N[64], const uint8 D[64], uint8 Q[64]) {
      int i;
      for (i = 0; i < 64; i++) {
        Q[i] = N[i] / D[i];
      }
    }
  )";
  Compiler c;
  const CompileResult r = c.compileSource(src);
  ASSERT_TRUE(r.ok) << r.diags.dump();
  const auto roccc = synth::estimate(r.module);
  const auto ipRep = synth::estimate(ip::buildUdiv8());
  const double areaRatio = static_cast<double>(roccc.slices) / static_cast<double>(ipRep.slices);
  const double clockRatio = roccc.fmaxMHz() / ipRep.fmaxMHz();
  // Paper: 3.44x area, 1.26x clock. Our expansion infers the 8-bit operand
  // width from the port sizes, so the area gap is milder than the paper's
  // (documented in EXPERIMENTS.md); the clock stays comparable because the
  // generated divider pipelines just like the IP.
  EXPECT_GT(areaRatio, 0.8) << "roccc " << roccc.summary() << "\nip " << ipRep.summary();
  EXPECT_LT(areaRatio, 8.0) << "roccc " << roccc.summary() << "\nip " << ipRep.summary();
  EXPECT_GT(clockRatio, 0.5) << "roccc " << roccc.summary() << "\nip " << ipRep.summary();
}

TEST(Table1Shape, FirNearParity) {
  // The paper's FIR: ROCCC within 9% area, 5% faster clock.
  const char* src = R"(
    void fir(const int8 A[68], int16 C[64]) {
      int i;
      for (i = 0; i < 64; i = i + 1) {
        C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
      }
    }
  )";
  Compiler c;
  const CompileResult r = c.compileSource(src);
  ASSERT_TRUE(r.ok) << r.diags.dump();
  const auto roccc = synth::estimate(r.module);
  const auto ipRep = synth::estimate(ip::buildFir5());
  // Our IP builds TWO filters (as in the paper); halve for the ratio.
  const double areaRatio = 2.0 * static_cast<double>(roccc.slices) / static_cast<double>(ipRep.slices);
  EXPECT_GT(areaRatio, 0.6) << "roccc " << roccc.summary() << "\nip " << ipRep.summary();
  EXPECT_LT(areaRatio, 2.5) << "roccc " << roccc.summary() << "\nip " << ipRep.summary();
}

TEST(Table1Shape, PaperReferenceNumbersPresent) {
  const auto& rows = ip::paperTable1();
  ASSERT_EQ(rows.size(), 9u);
  EXPECT_STREQ(rows[0].name, "bit_correlator");
  EXPECT_EQ(rows[2].rocccAreaSlices, 495);
  EXPECT_NEAR(rows[7].rocccClockMHz / rows[7].ipClockMHz, 0.735, 0.01);
}

} // namespace
} // namespace roccc
