#include "roccc/service_net.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <list>
#include <thread>

#include "support/hash.hpp"
#include "support/strings.hpp"
#include "support/threadpool.hpp"
#include "support/timer.hpp"

namespace roccc {

const char* const kServiceProtocol = "roccc-ccd-v1";

// ---------------------------------------------------------------------------
// ServiceMetrics

void ServiceMetrics::recordRequest(const std::string& type) {
  requestsTotal_.fetch_add(1, std::memory_order_relaxed);
  if (type == "compile") requestsCompile_.fetch_add(1, std::memory_order_relaxed);
  else if (type == "batch") requestsBatch_.fetch_add(1, std::memory_order_relaxed);
  else if (type == "status") requestsStatus_.fetch_add(1, std::memory_order_relaxed);
  else if (type == "metrics") requestsMetrics_.fetch_add(1, std::memory_order_relaxed);
  else if (type == "drain") requestsDrain_.fetch_add(1, std::memory_order_relaxed);
  else if (type == "reload") requestsReload_.fetch_add(1, std::memory_order_relaxed);
  else if (type == "ping") requestsPing_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::recordProtocolError(const char*) {
  requestsTotal_.fetch_add(1, std::memory_order_relaxed);
  protocolErrors_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::recordRejection(const char* code) {
  if (std::strcmp(code, servicecode::kQueueFull) == 0) {
    rejectedQueueFull_.fetch_add(1, std::memory_order_relaxed);
  } else if (std::strcmp(code, servicecode::kDraining) == 0) {
    rejectedDraining_.fetch_add(1, std::memory_order_relaxed);
  } else if (std::strcmp(code, servicecode::kQuotaExceeded) == 0) {
    rejectedQuota_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServiceMetrics::recordJobAdmitted() { jobsAdmitted_.fetch_add(1, std::memory_order_relaxed); }

void ServiceMetrics::recordJobCompleted(CompileOutcome outcome, bool cacheHit, double serviceMs) {
  jobsCompleted_.fetch_add(1, std::memory_order_relaxed);
  outcomeCounts_[static_cast<int>(outcome)].fetch_add(1, std::memory_order_relaxed);
  (cacheHit ? cacheHits_ : cacheMisses_).fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(histMutex_);
  int bucket = 0;
  while (bucket < kBuckets - 1 && serviceMs > kBucketUpperMs[bucket]) ++bucket;
  ++histCounts_[bucket];
  serviceMsSum_ += serviceMs;
  serviceMsMax_ = std::max(serviceMsMax_, serviceMs);
}

void ServiceMetrics::recordConnectionOpened() {
  connectionsAccepted_.fetch_add(1, std::memory_order_relaxed);
  connectionsOpen_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::recordConnectionClosed() {
  connectionsOpen_.fetch_sub(1, std::memory_order_relaxed);
}

void ServiceMetrics::recordBytes(int64_t in, int64_t out) {
  if (in) bytesIn_.fetch_add(in, std::memory_order_relaxed);
  if (out) bytesOut_.fetch_add(out, std::memory_order_relaxed);
}

double ServiceMetrics::percentileMs(double q) const {
  int64_t total = 0;
  for (const int64_t c : histCounts_) total += c;
  if (total == 0) return 0;
  const double target = q * static_cast<double>(total);
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += histCounts_[b];
    if (static_cast<double>(seen) >= target) {
      // Report the bucket's upper bound; the last (overflow) bucket
      // reports the observed maximum instead.
      return b < kBuckets - 1 ? kBucketUpperMs[b] : serviceMsMax_;
    }
  }
  return serviceMsMax_;
}

json::Value ServiceMetrics::toJson(double uptimeSec) const {
  using json::Value;
  Value m = Value::object();
  m.set("uptimeSec", Value::number(uptimeSec));
  const int64_t completed = jobsCompleted_.load(std::memory_order_relaxed);
  m.set("jobsPerSec", Value::number(uptimeSec > 0 ? static_cast<double>(completed) / uptimeSec : 0));
  m.set("queueDepth", Value::number(static_cast<int64_t>(queueDepth_.load(std::memory_order_relaxed))));

  Value jobs = Value::object();
  jobs.set("admitted", Value::number(jobsAdmitted_.load(std::memory_order_relaxed)));
  jobs.set("completed", Value::number(completed));
  m.set("jobs", std::move(jobs));

  Value outcomes = Value::object();
  static constexpr CompileOutcome kOrder[] = {
      CompileOutcome::Ok, CompileOutcome::FrontendError, CompileOutcome::Timeout,
      CompileOutcome::ResourceExceeded, CompileOutcome::InternalError};
  for (const CompileOutcome o : kOrder) {
    outcomes.set(compileOutcomeName(o),
                 Value::number(outcomeCounts_[static_cast<int>(o)].load(std::memory_order_relaxed)));
  }
  m.set("outcomes", std::move(outcomes));

  Value rejected = Value::object();
  rejected.set(servicecode::kQueueFull,
               Value::number(rejectedQueueFull_.load(std::memory_order_relaxed)));
  rejected.set(servicecode::kDraining,
               Value::number(rejectedDraining_.load(std::memory_order_relaxed)));
  rejected.set(servicecode::kQuotaExceeded,
               Value::number(rejectedQuota_.load(std::memory_order_relaxed)));
  m.set("rejected", std::move(rejected));

  const int64_t hits = cacheHits_.load(std::memory_order_relaxed);
  const int64_t misses = cacheMisses_.load(std::memory_order_relaxed);
  Value cache = Value::object();
  cache.set("hits", Value::number(hits));
  cache.set("misses", Value::number(misses));
  cache.set("hitRate",
            Value::number(hits + misses > 0
                              ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                              : 0));
  m.set("cache", std::move(cache));

  {
    std::lock_guard<std::mutex> lock(histMutex_);
    int64_t count = 0;
    for (const int64_t c : histCounts_) count += c;
    Value svc = Value::object();
    svc.set("count", Value::number(count));
    svc.set("meanMs", Value::number(count > 0 ? serviceMsSum_ / static_cast<double>(count) : 0));
    svc.set("p50Ms", Value::number(percentileMs(0.50)));
    svc.set("p95Ms", Value::number(percentileMs(0.95)));
    svc.set("maxMs", Value::number(serviceMsMax_));
    m.set("serviceMs", std::move(svc));
  }

  Value reqs = Value::object();
  reqs.set("total", Value::number(requestsTotal_.load(std::memory_order_relaxed)));
  reqs.set("compile", Value::number(requestsCompile_.load(std::memory_order_relaxed)));
  reqs.set("batch", Value::number(requestsBatch_.load(std::memory_order_relaxed)));
  reqs.set("status", Value::number(requestsStatus_.load(std::memory_order_relaxed)));
  reqs.set("metrics", Value::number(requestsMetrics_.load(std::memory_order_relaxed)));
  reqs.set("drain", Value::number(requestsDrain_.load(std::memory_order_relaxed)));
  reqs.set("reload", Value::number(requestsReload_.load(std::memory_order_relaxed)));
  reqs.set("ping", Value::number(requestsPing_.load(std::memory_order_relaxed)));
  reqs.set("protocolErrors", Value::number(protocolErrors_.load(std::memory_order_relaxed)));
  m.set("requests", std::move(reqs));

  Value conns = Value::object();
  conns.set("accepted", Value::number(connectionsAccepted_.load(std::memory_order_relaxed)));
  conns.set("open", Value::number(connectionsOpen_.load(std::memory_order_relaxed)));
  m.set("connections", std::move(conns));

  Value bytes = Value::object();
  bytes.set("in", Value::number(bytesIn_.load(std::memory_order_relaxed)));
  bytes.set("out", Value::number(bytesOut_.load(std::memory_order_relaxed)));
  m.set("bytes", std::move(bytes));
  return m;
}

// ---------------------------------------------------------------------------
// Protocol options

namespace {

/// A client budget value clamped to the server ceiling: no ceiling passes
/// the request through, "unlimited" (0) requests collapse to the ceiling,
/// and anything else takes the tighter of the two. Negative deadlines
/// (already expired — the deterministic-timeout convention) stay.
int64_t clampToCeiling(int64_t requested, int64_t ceiling) {
  if (ceiling == 0) return requested;
  if (requested == 0) return ceiling;
  return std::min(requested, ceiling);
}

bool jsonInt(const json::Value& v, int64_t& out) {
  if (!v.isNumber() || !v.isIntegral()) return false;
  out = v.asInt();
  return true;
}

} // namespace

bool compileOptionsFromJson(const json::Value& options, const CompileOptions& base,
                            const BudgetLimits& ceiling, CompileOptions& out, std::string& error) {
  out = base;
  if (!options.isObject()) {
    error = "'options' must be an object";
    return false;
  }
  for (const auto& [key, v] : options.members()) {
    if (key == "kernel") {
      if (!v.isString()) { error = "option 'kernel' must be a string"; return false; }
      out.kernelName = v.asString();
    } else if (key == "unroll") {
      int64_t n;
      if (!jsonInt(v, n) || n < 1) { error = "option 'unroll' must be an integer >= 1"; return false; }
      out.unrollFactor = static_cast<int>(n);
    } else if (key == "targetNs") {
      if (!v.isNumber()) { error = "option 'targetNs' must be a number"; return false; }
      out.dpOptions.targetStageDelayNs = v.asDouble();
    } else if (key == "retime") {
      if (!v.isBool()) { error = "option 'retime' must be a boolean"; return false; }
      out.retimePipeline = v.asBool();
    } else if (key == "multStyle") {
      if (v.isString() && v.asString() == "lut") {
        out.dpOptions.multStyle = dp::BuildOptions::MultStyle::Lut;
      } else if (v.isString() && v.asString() == "mult18") {
        out.dpOptions.multStyle = dp::BuildOptions::MultStyle::Mult18;
      } else {
        error = "option 'multStyle' must be \"lut\" or \"mult18\"";
        return false;
      }
    } else if (key == "inferWidths") {
      if (!v.isBool()) { error = "option 'inferWidths' must be a boolean"; return false; }
      out.dpOptions.inferBitWidths = v.asBool();
    } else if (key == "pipeline") {
      if (!v.isBool()) { error = "option 'pipeline' must be a boolean"; return false; }
      out.dpOptions.pipeline = v.asBool();
    } else if (key == "optimize") {
      if (!v.isBool()) { error = "option 'optimize' must be a boolean"; return false; }
      out.optimize = v.asBool();
    } else if (key == "lutConvert") {
      if (!v.isBool()) { error = "option 'lutConvert' must be a boolean"; return false; }
      out.convertCallsToLuts = v.asBool();
    } else if (key == "timeoutMs") {
      int64_t n;
      if (!jsonInt(v, n)) { error = "option 'timeoutMs' must be an integer"; return false; }
      out.budget.timeoutMs = n;
    } else if (key == "maxIrNodes") {
      int64_t n;
      if (!jsonInt(v, n) || n < 0) { error = "option 'maxIrNodes' must be an integer >= 0"; return false; }
      out.budget.maxIrNodes = n;
    } else if (key == "maxUnrollProduct") {
      int64_t n;
      if (!jsonInt(v, n) || n < 0) { error = "option 'maxUnrollProduct' must be an integer >= 0"; return false; }
      out.budget.maxUnrollProduct = n;
    } else if (key == "maxDepth") {
      int64_t n;
      if (!jsonInt(v, n) || n < 0) { error = "option 'maxDepth' must be an integer >= 0"; return false; }
      out.budget.maxDepth = static_cast<int>(n);
    } else if (key == "injectFault") {
      if (!v.isString()) { error = "option 'injectFault' must be a string"; return false; }
      out.injectFaultAt = v.asString();
    } else if (key == "verilog") {
      // Presentation only (include Verilog text in the response); the
      // caller reads it straight from the request. Type-checked here so
      // a bad value is still a bad-request.
      if (!v.isBool()) { error = "option 'verilog' must be a boolean"; return false; }
    } else {
      error = fmt("unknown option '%0'", key);
      return false;
    }
  }
  // Quotas layered on CompileBudget: the server's ceilings bound every
  // client-requested budget (tighter requests pass through).
  out.budget.timeoutMs = clampToCeiling(out.budget.timeoutMs, ceiling.timeoutMs);
  out.budget.maxIrNodes = clampToCeiling(out.budget.maxIrNodes, ceiling.maxIrNodes);
  out.budget.maxUnrollProduct = clampToCeiling(out.budget.maxUnrollProduct, ceiling.maxUnrollProduct);
  out.budget.maxDepth =
      static_cast<int>(clampToCeiling(out.budget.maxDepth, ceiling.maxDepth));
  return true;
}

json::Value makeCompileRequest(const std::string& name, const std::string& source,
                               json::Value options) {
  json::Value req = json::Value::object();
  req.set("proto", json::Value::string(kServiceProtocol));
  req.set("type", json::Value::string("compile"));
  req.set("name", json::Value::string(name));
  req.set("source", json::Value::string(source));
  if (options.isObject() && !options.members().empty()) req.set("options", std::move(options));
  return req;
}

// ---------------------------------------------------------------------------
// Socket plumbing shared by daemon and client

namespace {

/// Writes all of `data` to `fd` (MSG_NOSIGNAL: a dead peer is an error
/// return, not a SIGPIPE). False on any send failure.
bool sendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Buffered newline-framed reader over a blocking socket.
class LineReader {
 public:
  enum class Status { Line, Eof, Oversized, Error };

  LineReader(int fd, int64_t maxLineBytes) : fd_(fd), maxLineBytes_(maxLineBytes) {}

  Status next(std::string& line) {
    while (true) {
      const size_t nl = buf_.find('\n', scanned_);
      if (nl != std::string::npos) {
        // The cap applies to complete frames too, not just ones still
        // accumulating — a burst can deliver the whole oversize line in
        // one recv.
        if (static_cast<int64_t>(nl) > maxLineBytes_) return Status::Oversized;
        line.assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        scanned_ = 0;
        return Status::Line;
      }
      scanned_ = buf_.size();
      if (static_cast<int64_t>(buf_.size()) > maxLineBytes_) return Status::Oversized;
      char chunk[65536];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n == 0) return Status::Eof; // peer closed; a partial line is a truncated frame
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Error;
      }
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  int64_t maxLineBytes_;
  std::string buf_;
  size_t scanned_ = 0;
};

bool bindUnixSocket(const std::string& path, int& fd, std::string& error) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    error = fmt("socket path '%0' is empty or too long for AF_UNIX", path);
    return false;
  }
  fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = fmt("socket(): %0", std::strerror(errno));
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  // A stale socket file from a dead daemon would fail the bind; only
  // remove it when nothing is listening behind it.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
    ::close(fd);
    fd = -1;
    error = fmt("'%0' already has a listening daemon", path);
    return false;
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error = fmt("bind('%0'): %1", path, std::strerror(errno));
    ::close(fd);
    fd = -1;
    return false;
  }
  if (::listen(fd, 512) != 0) {
    error = fmt("listen('%0'): %1", path, std::strerror(errno));
    ::close(fd);
    ::unlink(path.c_str());
    fd = -1;
    return false;
  }
  return true;
}

} // namespace

// ---------------------------------------------------------------------------
// ServiceDaemon

struct ServiceDaemon::Impl {
  explicit Impl(ServiceConfig config) : cfg(std::move(config)) {}

  struct Connection {
    int fd = -1;
    int inFlight = 0; ///< jobs in the admission window; guarded by admitMutex
  };

  ServiceConfig cfg;
  int listenFd = -1;
  int wakeRead = -1, wakeWrite = -1;
  std::thread acceptThread;
  bool started = false;

  // Lifecycle. `draining` stops job admission (resumable when pause-only);
  // `stopRequested` commits the daemon to exit once the window empties;
  // `hardStop` (tests / fatal paths) skips the wait.
  std::atomic<bool> draining{false};
  std::atomic<bool> stopRequested{false};
  std::atomic<bool> hardStop{false};
  std::atomic<bool> stopped{false};

  // Admission window.
  std::mutex admitMutex;
  std::condition_variable windowEmpty;
  int inFlightTotal = 0;

  // Connection registry: detached handler threads, counted so shutdown
  // can wait for the last one; fds kept to unblock their reads.
  std::mutex connMutex;
  std::condition_variable connGone;
  std::list<std::shared_ptr<Connection>> connections;
  int activeHandlers = 0;

  std::unique_ptr<ThreadPool> pool;
  std::mutex cacheMutex;
  std::shared_ptr<CompileCache> cache;

  ServiceMetrics metrics;
  WallTimer uptime;

  void log(const std::string& msg) {
    if (!cfg.quiet) std::fprintf(stderr, "roccc-ccd: %s\n", msg.c_str());
  }

  std::shared_ptr<CompileCache> currentCache() {
    std::lock_guard<std::mutex> lock(cacheMutex);
    return cache;
  }

  void wake() {
    if (wakeWrite >= 0) {
      const char b = 'w';
      [[maybe_unused]] const ssize_t n = ::write(wakeWrite, &b, 1);
    }
  }

  // --- admission -----------------------------------------------------------

  /// nullptr = admitted; otherwise the typed rejection code. admitMutex held.
  const char* tryAdmitLocked(Connection& conn) {
    if (draining.load(std::memory_order_relaxed)) return servicecode::kDraining;
    if (inFlightTotal >= cfg.maxQueue) return servicecode::kQueueFull;
    if (conn.inFlight >= cfg.maxClientJobs) return servicecode::kQuotaExceeded;
    ++inFlightTotal;
    ++conn.inFlight;
    metrics.setQueueDepth(inFlightTotal);
    metrics.recordJobAdmitted();
    return nullptr;
  }

  void release(Connection& conn) {
    std::lock_guard<std::mutex> lock(admitMutex);
    --inFlightTotal;
    --conn.inFlight;
    metrics.setQueueDepth(inFlightTotal);
    if (inFlightTotal == 0) windowEmpty.notify_all();
  }

  /// Runs one admitted job on the worker pool (through the shared cache
  /// when attached) and records its completion. Returns the result and
  /// whether it was served from the cache.
  CompileResult runAdmittedJob(const std::shared_ptr<Connection>& conn, const CompileJob& job,
                               bool& wasHit, double& serviceMs) {
    WallTimer timer;
    CompileResult result;
    bool hit = false;
    auto task = [this, &job, &result, &hit, conn] {
      const auto c = currentCache();
      if (c) {
        const std::string key = computeCacheKey(job.source, job.options);
        result = c->getOrCompute(key, job.options, [&] { return runContainedJob(job); }, &hit);
      } else {
        result = runContainedJob(job);
      }
      release(*conn);
    };
    pool->submit(std::move(task)).get();
    wasHit = hit;
    serviceMs = timer.elapsedMs();
    metrics.recordJobCompleted(result.outcome, hit, serviceMs);
    return result;
  }

  // --- responses -----------------------------------------------------------

  json::Value envelope(const char* type, const json::Value* id) {
    json::Value r = json::Value::object();
    r.set("proto", json::Value::string(kServiceProtocol));
    if (id && !id->isNull()) r.set("id", *id);
    r.set("type", json::Value::string(type));
    return r;
  }

  json::Value errorResponse(const json::Value* id, const char* code, const std::string& message) {
    json::Value r = envelope("error", id);
    json::Value e = json::Value::object();
    e.set("code", json::Value::string(code));
    e.set("message", json::Value::string(message));
    r.set("error", std::move(e));
    return r;
  }

  bool writeResponse(const Connection& conn, const json::Value& response) {
    std::string line = response.dump();
    line += '\n';
    metrics.recordBytes(0, static_cast<int64_t>(line.size()));
    return sendAll(conn.fd, line);
  }

  /// The per-job result fields shared by `result` responses and
  /// `batch-result` rows. `status` is the outcome name for compiled jobs
  /// (the service edge extends the same taxonomy with rejection codes).
  void fillResultFields(json::Value& row, const std::string& name, const CompileResult& r,
                        bool cached, double serviceMs, bool wantVerilog) {
    row.set("name", json::Value::string(name));
    row.set("status", json::Value::string(compileOutcomeName(r.outcome)));
    row.set("cached", json::Value::boolean(cached));
    row.set("serviceMs", json::Value::number(serviceMs));
    if (!r.failedPass.empty()) row.set("failedPass", json::Value::string(r.failedPass));
    if (r.ok) {
      row.set("vhdl", json::Value::string(r.vhdl));
      row.set("sha256", json::Value::string(sha256Hex(r.vhdl)));
      if (wantVerilog) row.set("verilog", json::Value::string(r.verilog));
    }
    json::Value diags = json::Value::array();
    for (const auto& d : r.diags.all()) diags.push(json::Value::string(d.str()));
    row.set("diags", std::move(diags));
  }

  // --- request handlers ----------------------------------------------------

  /// Parses one job spec {name?, source, options?}. False → bad-request.
  bool parseJobSpec(const json::Value& spec, CompileJob& job, bool& wantVerilog,
                    std::string& error) {
    if (!spec.isObject()) {
      error = "job spec must be an object";
      return false;
    }
    const json::Value* name = spec.find("name");
    if (name) {
      if (!name->isString()) { error = "'name' must be a string"; return false; }
      job.name = name->asString();
    } else {
      job.name = "<anonymous>";
    }
    const json::Value* source = spec.find("source");
    if (!source || !source->isString()) {
      error = "'source' (string) is required";
      return false;
    }
    job.source = source->asString();
    wantVerilog = false;
    const json::Value* options = spec.find("options");
    if (options) {
      if (!compileOptionsFromJson(*options, cfg.baseOptions, cfg.budgetCeiling, job.options,
                                  error)) {
        return false;
      }
      const json::Value* v = options->find("verilog");
      wantVerilog = v && v->isBool() && v->asBool();
    } else {
      job.options = cfg.baseOptions;
    }
    return true;
  }

  void handleCompile(const std::shared_ptr<Connection>& conn, const json::Value& req,
                     const json::Value* id) {
    CompileJob job;
    bool wantVerilog = false;
    std::string error;
    if (!parseJobSpec(req, job, wantVerilog, error)) {
      metrics.recordProtocolError(servicecode::kBadRequest);
      writeResponse(*conn, errorResponse(id, servicecode::kBadRequest, error));
      return;
    }
    const char* reject = nullptr;
    {
      std::lock_guard<std::mutex> lock(admitMutex);
      reject = tryAdmitLocked(*conn);
    }
    if (reject) {
      metrics.recordRejection(reject);
      writeResponse(*conn, errorResponse(id, reject,
                                         fmt("job '%0' rejected: %1", job.name, reject)));
      return;
    }
    bool cached = false;
    double serviceMs = 0;
    const CompileResult result = runAdmittedJob(conn, job, cached, serviceMs);
    json::Value resp = envelope("result", id);
    fillResultFields(resp, job.name, result, cached, serviceMs, wantVerilog);
    writeResponse(*conn, resp);
  }

  void handleBatch(const std::shared_ptr<Connection>& conn, const json::Value& req,
                   const json::Value* id) {
    const json::Value* jobsField = req.find("jobs");
    if (!jobsField || !jobsField->isArray()) {
      metrics.recordProtocolError(servicecode::kBadRequest);
      writeResponse(*conn, errorResponse(id, servicecode::kBadRequest,
                                         "'jobs' (array) is required"));
      return;
    }
    const size_t n = jobsField->items().size();
    std::vector<CompileJob> jobs(n);
    std::vector<char> wantVerilog(n, 0);
    for (size_t i = 0; i < n; ++i) {
      std::string error;
      bool wv = false;
      if (!parseJobSpec(jobsField->items()[i], jobs[i], wv, error)) {
        metrics.recordProtocolError(servicecode::kBadRequest);
        writeResponse(*conn, errorResponse(id, servicecode::kBadRequest,
                                           fmt("jobs[%0]: %1", i, error)));
        return;
      }
      wantVerilog[i] = wv ? 1 : 0;
    }
    // Atomic up-front admission: every row's verdict is decided before any
    // job runs, so which rows of an oversized batch get rejected is
    // deterministic (the tail), not a race against completions.
    std::vector<const char*> reject(n, nullptr);
    {
      std::lock_guard<std::mutex> lock(admitMutex);
      for (size_t i = 0; i < n; ++i) reject[i] = tryAdmitLocked(*conn);
    }
    struct Slot {
      CompileResult result;
      bool cached = false;
      double serviceMs = 0;
    };
    std::vector<Slot> slots(n);
    // Fan the admitted rows out through the pool from this connection
    // thread; rejected rows cost nothing.
    std::vector<std::pair<size_t, std::future<void>>> pending;
    WallTimer timer;
    for (size_t i = 0; i < n; ++i) {
      if (reject[i]) {
        metrics.recordRejection(reject[i]);
        continue;
      }
      pending.emplace_back(i, pool->submit([this, conn, &jobs, &slots, i] {
        auto& slot = slots[i];
        WallTimer jobTimer;
        const auto c = currentCache();
        if (c) {
          const std::string key = computeCacheKey(jobs[i].source, jobs[i].options);
          slot.result = c->getOrCompute(key, jobs[i].options,
                                        [&] { return runContainedJob(jobs[i]); }, &slot.cached);
        } else {
          slot.result = runContainedJob(jobs[i]);
        }
        slot.serviceMs = jobTimer.elapsedMs();
        release(*conn);
      }));
    }
    for (auto& [i, fut] : pending) {
      fut.get();
      metrics.recordJobCompleted(slots[i].result.outcome, slots[i].cached, slots[i].serviceMs);
    }
    json::Value resp = envelope("batch-result", id);
    resp.set("jobs", json::Value::number(static_cast<int64_t>(n)));
    int ok = 0, rejectedCount = 0;
    json::Value rows = json::Value::array();
    for (size_t i = 0; i < n; ++i) {
      json::Value row = json::Value::object();
      if (reject[i]) {
        ++rejectedCount;
        row.set("name", json::Value::string(jobs[i].name));
        row.set("status", json::Value::string(reject[i]));
      } else {
        if (slots[i].result.ok) ++ok;
        fillResultFields(row, jobs[i].name, slots[i].result, slots[i].cached, slots[i].serviceMs,
                         wantVerilog[i] != 0);
      }
      rows.push(std::move(row));
    }
    resp.set("ok", json::Value::number(static_cast<int64_t>(ok)));
    resp.set("rejected", json::Value::number(static_cast<int64_t>(rejectedCount)));
    resp.set("wallMs", json::Value::number(timer.elapsedMs()));
    resp.set("results", std::move(rows));
    writeResponse(*conn, resp);
  }

  void handleStatus(const Connection& conn, const json::Value* id) {
    json::Value resp = envelope("status", id);
    resp.set("state", json::Value::string(stopped.load()     ? "stopped"
                                          : draining.load()  ? "draining"
                                                             : "serving"));
    resp.set("uptimeSec", json::Value::number(uptime.elapsedMs() / 1000.0));
    resp.set("workers", json::Value::number(static_cast<int64_t>(pool->workerCount())));
    {
      std::lock_guard<std::mutex> lock(admitMutex);
      resp.set("queueDepth", json::Value::number(static_cast<int64_t>(inFlightTotal)));
    }
    resp.set("maxQueue", json::Value::number(static_cast<int64_t>(cfg.maxQueue)));
    resp.set("maxClientJobs", json::Value::number(static_cast<int64_t>(cfg.maxClientJobs)));
    resp.set("connections", json::Value::number(metrics.connectionsOpen()));
    json::Value cacheInfo = json::Value::object();
    const auto c = currentCache();
    cacheInfo.set("enabled", json::Value::boolean(c != nullptr));
    if (c) {
      cacheInfo.set("dir", json::Value::string(c->config().diskDir));
      cacheInfo.set("diskEnabled", json::Value::boolean(c->diskEnabled()));
      const CacheStats stats = c->stats();
      cacheInfo.set("entries", json::Value::number(stats.entries));
      cacheInfo.set("bytesInUse", json::Value::number(stats.bytesInUse));
    }
    resp.set("cache", std::move(cacheInfo));
    writeResponse(conn, resp);
  }

  void handleMetrics(const Connection& conn, const json::Value* id) {
    json::Value resp = envelope("metrics", id);
    const json::Value m = metrics.toJson(uptime.elapsedMs() / 1000.0);
    for (const auto& [key, value] : m.members()) resp.set(key, value);
    writeResponse(conn, resp);
  }

  /// drain modes: "stop" (default) rejects new jobs, waits for the window
  /// to empty, replies, then stops the daemon; "pause" holds it in
  /// Draining for maintenance; "resume" returns a paused daemon to
  /// Serving. Returns false when the connection should close (stop mode).
  bool handleDrain(const Connection& conn, const json::Value& req, const json::Value* id) {
    std::string mode = "stop";
    if (const json::Value* m = req.find("mode")) {
      if (!m->isString() || (m->asString() != "stop" && m->asString() != "pause" &&
                             m->asString() != "resume")) {
        metrics.recordProtocolError(servicecode::kBadRequest);
        writeResponse(conn, errorResponse(id, servicecode::kBadRequest,
                                          "'mode' must be \"stop\", \"pause\" or \"resume\""));
        return true;
      }
      mode = m->asString();
    }
    if (mode == "resume") {
      if (stopRequested.load()) {
        metrics.recordProtocolError(servicecode::kBadRequest);
        writeResponse(conn, errorResponse(id, servicecode::kBadRequest,
                                          "daemon is stopping; cannot resume"));
        return true;
      }
      draining.store(false);
      log("resumed");
      writeResponse(conn, envelope("resumed", id));
      return true;
    }
    draining.store(true);
    if (mode == "stop") stopRequested.store(true);
    log(mode == "stop" ? "draining (stop)" : "draining (pause)");
    int64_t completed;
    {
      std::unique_lock<std::mutex> lock(admitMutex);
      windowEmpty.wait(lock, [this] { return inFlightTotal == 0 || hardStop.load(); });
      completed = metrics.jobsCompleted();
    }
    json::Value resp = envelope("drained", id);
    resp.set("stopped", json::Value::boolean(mode == "stop"));
    resp.set("jobsCompleted", json::Value::number(completed));
    writeResponse(conn, resp);
    if (mode == "stop") {
      wake(); // accept loop: close the listener, reap connections, exit
      return false;
    }
    return true;
  }

  void handleReload(const Connection& conn, const json::Value* id) {
    json::Value resp = envelope("reloaded", id);
    if (!cfg.cacheEnabled) {
      resp.set("cache", json::Value::boolean(false));
      writeResponse(conn, resp);
      return;
    }
    // A fresh cache over the same config: re-reads the on-disk manifest
    // (picking up a directory an operator rebuilt or cleaned) and drops
    // the memory tier. In-flight jobs finish against the old instance —
    // determinism makes the two interchangeable.
    auto fresh = std::make_shared<CompileCache>(cfg.cache);
    if (!cfg.cache.diskDir.empty() && !fresh->diskEnabled()) {
      metrics.recordProtocolError(servicecode::kReloadFailed);
      writeResponse(conn, errorResponse(id, servicecode::kReloadFailed,
                                        fmt("cache directory '%0' is unusable; keeping the old "
                                            "cache", cfg.cache.diskDir)));
      return;
    }
    {
      std::lock_guard<std::mutex> lock(cacheMutex);
      cache = std::move(fresh);
    }
    log("cache reloaded");
    resp.set("cache", json::Value::boolean(true));
    resp.set("dir", json::Value::string(cfg.cache.diskDir));
    writeResponse(conn, resp);
  }

  /// Dispatches one request line. Returns false when the connection
  /// should stop being served (drain-stop acknowledged).
  bool handleRequest(const std::shared_ptr<Connection>& conn, const std::string& line) {
    json::Value req;
    std::string parseError;
    if (!json::parse(line, req, parseError)) {
      metrics.recordProtocolError(servicecode::kParseError);
      writeResponse(*conn, errorResponse(nullptr, servicecode::kParseError, parseError));
      return true;
    }
    if (!req.isObject()) {
      metrics.recordProtocolError(servicecode::kBadRequest);
      writeResponse(*conn, errorResponse(nullptr, servicecode::kBadRequest,
                                         "request must be a JSON object"));
      return true;
    }
    const json::Value* id = req.find("id");
    const json::Value* proto = req.find("proto");
    if (!proto || !proto->isString() || proto->asString() != kServiceProtocol) {
      metrics.recordProtocolError(servicecode::kProtocolVersion);
      writeResponse(*conn,
                    errorResponse(id, servicecode::kProtocolVersion,
                                  fmt("this daemon speaks '%0'; the request carries %1",
                                      kServiceProtocol,
                                      proto && proto->isString()
                                          ? "'" + proto->asString() + "'"
                                          : std::string("no 'proto' field"))));
      return true;
    }
    const json::Value* type = req.find("type");
    if (!type || !type->isString()) {
      metrics.recordProtocolError(servicecode::kBadRequest);
      writeResponse(*conn, errorResponse(id, servicecode::kBadRequest,
                                         "'type' (string) is required"));
      return true;
    }
    const std::string& t = type->asString();
    metrics.recordRequest(t);
    if (t == "compile") handleCompile(conn, req, id);
    else if (t == "batch") handleBatch(conn, req, id);
    else if (t == "status") handleStatus(*conn, id);
    else if (t == "metrics") handleMetrics(*conn, id);
    else if (t == "drain") return handleDrain(*conn, req, id);
    else if (t == "reload") handleReload(*conn, id);
    else if (t == "ping") writeResponse(*conn, envelope("pong", id));
    else {
      metrics.recordProtocolError(servicecode::kUnknownType);
      writeResponse(*conn, errorResponse(id, servicecode::kUnknownType,
                                         fmt("unknown request type '%0'", t)));
    }
    return true;
  }

  // --- connection / accept loops -------------------------------------------

  void serveConnection(std::shared_ptr<Connection> conn) {
    metrics.recordConnectionOpened();
    LineReader reader(conn->fd, cfg.maxRequestBytes);
    std::string line;
    while (!hardStop.load()) {
      const LineReader::Status status = reader.next(line);
      if (status == LineReader::Status::Oversized) {
        // The frame boundary is lost; answer and close so the client
        // can't desynchronize the stream.
        metrics.recordProtocolError(servicecode::kOversized);
        writeResponse(*conn, errorResponse(nullptr, servicecode::kOversized,
                                           fmt("request exceeds the %0-byte frame cap; closing "
                                               "connection", cfg.maxRequestBytes)));
        break;
      }
      if (status != LineReader::Status::Line) break; // EOF (incl. truncated frame) or error
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      metrics.recordBytes(static_cast<int64_t>(line.size()) + 1, 0);
      bool keep = true;
      try {
        keep = handleRequest(conn, line);
      } catch (const std::exception& e) {
        // A handler bug must not take the connection thread down silently.
        writeResponse(*conn, errorResponse(nullptr, servicecode::kBadRequest,
                                           fmt("internal request-handling failure: %0", e.what())));
      }
      if (!keep) break;
    }
    {
      // Closed under connMutex so the shutdown path can never shutdown()
      // a reused fd number.
      std::lock_guard<std::mutex> lock(connMutex);
      ::close(conn->fd);
      conn->fd = -1;
      connections.remove(conn);
      --activeHandlers;
      connGone.notify_all();
    }
    metrics.recordConnectionClosed();
  }

  void acceptLoop() {
    while (!stopRequested.load() && !hardStop.load()) {
      pollfd fds[2] = {{listenFd, POLLIN, 0}, {wakeRead, POLLIN, 0}};
      const int ready = ::poll(fds, 2, -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (fds[1].revents) {
        char drainBuf[64];
        [[maybe_unused]] const ssize_t n = ::read(wakeRead, drainBuf, sizeof drainBuf);
        continue; // flags decide what changed; loop condition re-checks
      }
      if (!(fds[0].revents & POLLIN)) continue;
      const int fd = ::accept(listenFd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        break;
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      {
        std::lock_guard<std::mutex> lock(connMutex);
        connections.push_back(conn);
        ++activeHandlers;
      }
      std::thread(&Impl::serveConnection, this, std::move(conn)).detach();
    }

    // Shutdown: refuse new connections, wait out the admission window
    // (unless hard-stopped), unblock every reader, wait for handlers.
    draining.store(true);
    ::close(listenFd);
    listenFd = -1;
    ::unlink(cfg.socketPath.c_str());
    if (!hardStop.load()) {
      std::unique_lock<std::mutex> lock(admitMutex);
      windowEmpty.wait(lock, [this] { return inFlightTotal == 0 || hardStop.load(); });
    }
    stopped.store(true);
    {
      std::lock_guard<std::mutex> lock(connMutex);
      for (const auto& conn : connections) {
        // Read side only: a handler mid-response keeps its write side.
        ::shutdown(conn->fd, hardStop.load() ? SHUT_RDWR : SHUT_RD);
      }
    }
    {
      std::unique_lock<std::mutex> lock(connMutex);
      connGone.wait(lock, [this] { return activeHandlers == 0; });
    }
    log("stopped");
  }
};

ServiceDaemon::ServiceDaemon(ServiceConfig config) : impl_(std::make_unique<Impl>(std::move(config))) {}

ServiceDaemon::~ServiceDaemon() {
  if (impl_->started && !impl_->stopped.load()) stop();
  if (impl_->acceptThread.joinable()) impl_->acceptThread.join();
  if (impl_->wakeRead >= 0) ::close(impl_->wakeRead);
  if (impl_->wakeWrite >= 0) ::close(impl_->wakeWrite);
}

bool ServiceDaemon::start(std::string& error) {
  Impl& d = *impl_;
  if (d.started) {
    error = "daemon already started";
    return false;
  }
  if (d.cfg.maxQueue < 1 || d.cfg.maxClientJobs < 1 || d.cfg.maxRequestBytes < 64) {
    error = "invalid service limits (maxQueue/maxClientJobs >= 1, maxRequestBytes >= 64)";
    return false;
  }
  if (d.cfg.cacheEnabled) {
    d.cache = std::make_shared<CompileCache>(d.cfg.cache);
    if (!d.cfg.cache.diskDir.empty() && !d.cache->diskEnabled()) {
      error = fmt("cannot use cache directory '%0'", d.cfg.cache.diskDir);
      return false;
    }
  }
  int pipeFds[2];
  if (::pipe(pipeFds) != 0) {
    error = fmt("pipe(): %0", std::strerror(errno));
    return false;
  }
  d.wakeRead = pipeFds[0];
  d.wakeWrite = pipeFds[1];
  if (!bindUnixSocket(d.cfg.socketPath, d.listenFd, error)) return false;
  // The pool queue is sized past the admission window so an admitted
  // job's submit can never block a connection thread.
  const size_t workers =
      d.cfg.workers > 0 ? static_cast<size_t>(d.cfg.workers) : 0;
  d.pool = std::make_unique<ThreadPool>(workers, static_cast<size_t>(d.cfg.maxQueue) + 16);
  d.uptime.reset();
  d.acceptThread = std::thread(&Impl::acceptLoop, &d);
  d.started = true;
  d.log(fmt("serving on '%0' (%1 workers, window %2, per-client %3%4)", d.cfg.socketPath,
            d.pool->workerCount(), d.cfg.maxQueue, d.cfg.maxClientJobs,
            d.cache ? (d.cfg.cache.diskDir.empty() ? std::string(", memory cache")
                                                   : ", cache dir " + d.cfg.cache.diskDir)
                    : std::string()));
  return true;
}

void ServiceDaemon::requestDrain() {
  // Async-signal-safe: two relaxed atomic stores and a pipe write.
  impl_->draining.store(true);
  impl_->stopRequested.store(true);
  impl_->wake();
}

void ServiceDaemon::waitStopped() {
  if (impl_->acceptThread.joinable()) impl_->acceptThread.join();
}

void ServiceDaemon::stop() {
  impl_->hardStop.store(true);
  impl_->stopRequested.store(true);
  impl_->draining.store(true);
  {
    std::lock_guard<std::mutex> lock(impl_->admitMutex);
    impl_->windowEmpty.notify_all();
  }
  impl_->wake();
  waitStopped();
}

bool ServiceDaemon::running() const { return impl_->started && !impl_->stopped.load(); }

const ServiceConfig& ServiceDaemon::config() const { return impl_->cfg; }

// ---------------------------------------------------------------------------
// ServiceClient

ServiceClient::~ServiceClient() { close(); }

bool ServiceClient::connect(const std::string& socketPath, std::string& error) {
  close();
  if (socketPath.empty() || socketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
    error = fmt("socket path '%0' is empty or too long for AF_UNIX", socketPath);
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error = fmt("socket(): %0", std::strerror(errno));
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socketPath.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error = fmt("connect('%0'): %1", socketPath, std::strerror(errno));
    close();
    return false;
  }
  return true;
}

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbox_.clear();
}

bool ServiceClient::readLine(std::string& line, std::string& error) {
  while (true) {
    const size_t nl = inbox_.find('\n');
    if (nl != std::string::npos) {
      line.assign(inbox_, 0, nl);
      inbox_.erase(0, nl + 1);
      return true;
    }
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) {
      error = "connection closed by the daemon";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      error = fmt("recv(): %0", std::strerror(errno));
      return false;
    }
    inbox_.append(chunk, static_cast<size_t>(n));
  }
}

bool ServiceClient::request(const json::Value& req, json::Value& response, std::string& error) {
  json::Value framed = req;
  if (framed.isObject() && !framed.find("proto")) {
    framed.set("proto", json::Value::string(kServiceProtocol));
  }
  std::string raw;
  if (!requestRaw(framed.dump(), raw, error)) return false;
  if (!json::parse(raw, response, error)) {
    error = fmt("daemon sent invalid JSON: %0", error);
    return false;
  }
  return true;
}

bool ServiceClient::requestRaw(const std::string& line, std::string& rawResponse,
                               std::string& error) {
  if (fd_ < 0) {
    error = "not connected";
    return false;
  }
  std::string framed = line;
  framed += '\n';
  if (!sendAll(fd_, framed)) {
    error = fmt("send(): %0", std::strerror(errno));
    return false;
  }
  return readLine(rawResponse, error);
}

bool ServiceClient::sendBytes(const std::string& bytes, std::string& error) {
  if (fd_ < 0) {
    error = "not connected";
    return false;
  }
  if (!sendAll(fd_, bytes)) {
    error = fmt("send(): %0", std::strerror(errno));
    return false;
  }
  return true;
}

} // namespace roccc
