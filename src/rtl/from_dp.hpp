// Lowers a built DataPath into an RTL Module: one cell per operation, nets
// at the inferred widths, pipeline registers at every stage crossing (the
// materialized form of section 4.2.2's register-copy insertion), and the
// feedback registers closing each LPR/SNX loop.
#pragma once

#include "dp/datapath.hpp"
#include "rtl/netlist.hpp"
#include "support/diag.hpp"

namespace roccc::rtl {

/// Builds the synthesizable module. Feedback registers are exposed as extra
/// output ports named "<name>__fb" so the system can read final values.
bool buildDatapathModule(const dp::DataPath& dp, Module& out, DiagEngine& diags);

} // namespace roccc::rtl
