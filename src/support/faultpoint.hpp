// Fault-injection harness + the internal-error exception the containment
// boundary classifies.
//
// roccc::faultpoint(name) hooks are compiled in at one representative site
// per pipeline stage (the registry below names each site and the pass that
// reaches it). Disarmed — the default — a hook is a thread_local load and a
// null check. Armed via CompileOptions::injectFaultAt (or ROCCC_FAULT_INJECT
// through roccc-cc), the named hook throws FaultInjected, which the
// PassManager catches at the pass edge like any other internal error: the
// job reports CompileOutcome::InternalError naming the failing pass, the
// process survives, and sibling jobs in the batch are untouched.
//
// tests/fault_injection_test.cpp enumerates faultPointRegistry(), injects a
// throw at every entry during an 8-worker Table 1 batch, and asserts the
// containment contract (survival, classification, sibling byte-identity).
//
// InternalCompilerError is also thrown directly by code paths that used to
// abort()/assert on input-dependent invariant violations — converted so the
// containment boundary can classify them instead of killing the process.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace roccc {

/// A compiler-invariant violation: contained at the pass edge and reported
/// as CompileOutcome::InternalError, never as a crash.
class InternalCompilerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by an armed faultpoint(); a deliberately injected
/// InternalCompilerError.
class FaultInjected : public InternalCompilerError {
 public:
  explicit FaultInjected(const std::string& point)
      : InternalCompilerError("injected fault at '" + point + "'"), point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

/// One compiled-in fault point: its name and the pipeline pass under which
/// the hook executes ("" for hooks outside the PassManager, e.g. the batch
/// driver's job boundary). The registry is the single source of truth the
/// injection sweep enumerates; adding a faultpoint() site means adding its
/// row here, or the sweep will not cover it.
struct FaultPointInfo {
  const char* name;
  const char* pass;
};
const std::vector<FaultPointInfo>& faultPointRegistry();

/// The hook. Near-zero cost when disarmed; throws FaultInjected when this
/// thread is armed for exactly `name`.
void faultpoint(const char* name);

/// True when any fault point is armed on this thread.
bool faultInjectionArmed();

/// RAII arming of one fault point for the current thread (per-job: each
/// batch job runs wholly on one worker). An empty name arms nothing.
/// Scopes nest; the destructor restores the previous arming.
class FaultInjectionScope {
 public:
  explicit FaultInjectionScope(const std::string& name);
  ~FaultInjectionScope();
  FaultInjectionScope(const FaultInjectionScope&) = delete;
  FaultInjectionScope& operator=(const FaultInjectionScope&) = delete;

 private:
  const std::string* prev_;
  std::string name_;
};

} // namespace roccc
