#include "frontend/sema.hpp"

#include <map>
#include <set>

#include "support/strings.hpp"

namespace roccc::ast {

namespace {

/// C usual arithmetic conversions restricted to the subset: every operand
/// narrower than 32 bits promotes to int32; a 32-bit unsigned operand makes
/// the operation unsigned.
ScalarType promote(ScalarType t) {
  if (t.width < 32) return ScalarType::intTy();
  return t;
}

ScalarType commonType(ScalarType a, ScalarType b) {
  const ScalarType pa = promote(a), pb = promote(b);
  if (!pa.isSigned || !pb.isSigned) return ScalarType::uintTy();
  return ScalarType::intTy();
}

class Scope {
 public:
  explicit Scope(Scope* parent = nullptr) : parent_(parent) {}

  const VarDecl* lookup(const std::string& name) const {
    const auto it = vars_.find(name);
    if (it != vars_.end()) return it->second;
    return parent_ ? parent_->lookup(name) : nullptr;
  }

  bool declare(const VarDecl* d) { return vars_.emplace(d->name, d).second; }

 private:
  Scope* parent_;
  std::map<std::string, const VarDecl*> vars_;
};

class Sema {
 public:
  Sema(Module& m, DiagEngine& diags) : m_(m), diags_(diags) {}

  bool run() {
    Scope globalScope;
    for (const auto& g : m_.globals) {
      if (!globalScope.declare(&g)) diags_.error(g.loc, fmt("redefinition of global '%0'", g.name));
      checkDeclaredType(g);
      if (g.type.isArray() && !g.init.empty() &&
          static_cast<int64_t>(g.init.size()) != g.type.elementCount()) {
        diags_.error(g.loc, fmt("array '%0' has %1 elements but %2 initializers", g.name,
                                g.type.elementCount(), g.init.size()));
      }
    }
    std::set<std::string> fnNames;
    for (const auto& f : m_.functions) {
      if (!fnNames.insert(f.name).second) diags_.error(f.loc, fmt("redefinition of function '%0'", f.name));
    }
    for (auto& f : m_.functions) analyzeFunction(f, globalScope);
    checkNoRecursion();
    return !diags_.hasErrors();
  }

 private:
  Module& m_;
  DiagEngine& diags_;
  Function* currentFn_ = nullptr;
  /// Out-params assigned in the current function (each must be written).
  std::set<std::string> writtenOutParams_;
  /// name -> callees, for the recursion check.
  std::map<std::string, std::set<std::string>> callGraph_;

  void checkDeclaredType(const VarDecl& d) {
    if (d.type.scalar.width > 32) {
      diags_.error(d.loc, fmt("'%0': ROCCC supports integer types up to 32 bits, got %1", d.name,
                              d.type.scalar.width));
    }
  }

  void analyzeFunction(Function& f, Scope& globalScope) {
    currentFn_ = &f;
    writtenOutParams_.clear();
    Scope fnScope(&globalScope);
    for (auto& p : f.params) {
      checkDeclaredType(p);
      if (!fnScope.declare(&p)) diags_.error(p.loc, fmt("duplicate parameter '%0'", p.name));
    }
    analyzeBlock(*f.body, fnScope);
    for (const auto& p : f.params) {
      if (!p.type.isArray() && p.mode == ParamMode::Out && !writtenOutParams_.count(p.name)) {
        diags_.warning(p.loc, fmt("out-parameter '%0' of '%1' is never written", p.name, f.name));
      }
    }
    currentFn_ = nullptr;
  }

  void analyzeBlock(BlockStmt& b, Scope& enclosing) {
    Scope scope(&enclosing);
    for (auto& s : b.stmts) analyzeStmt(*s, scope);
  }

  void analyzeStmt(Stmt& s, Scope& scope) {
    switch (s.kind) {
      case StmtKind::Block:
        analyzeBlock(static_cast<BlockStmt&>(s), scope);
        break;
      case StmtKind::Decl: {
        auto& d = static_cast<DeclStmt&>(s);
        checkDeclaredType(d.var);
        if (d.init) {
          analyzeExpr(*d.init, scope);
          d.init = coerce(std::move(d.init), d.var.type.scalar);
        }
        if (!scope.declare(&d.var)) diags_.error(d.loc, fmt("redefinition of '%0'", d.var.name));
        break;
      }
      case StmtKind::Assign: {
        auto& a = static_cast<AssignStmt&>(s);
        const ScalarType targetTy = analyzeLValue(a.target, scope, a.loc);
        analyzeExpr(*a.value, scope);
        a.value = coerce(std::move(a.value), targetTy);
        break;
      }
      case StmtKind::If: {
        auto& i = static_cast<IfStmt&>(s);
        analyzeExpr(*i.cond, scope);
        analyzeStmt(*i.thenBody, scope);
        if (i.elseBody) analyzeStmt(*i.elseBody, scope);
        break;
      }
      case StmtKind::For: {
        auto& f = static_cast<ForStmt&>(s);
        analyzeExpr(*f.begin, scope);
        analyzeExpr(*f.end, scope);
        // The induction variable is declared implicitly for the loop body
        // as int32, mirroring 'int i'. It lives in a DeclStmt-less VarDecl
        // owned by the ForStmt via a side table in the module; for
        // simplicity we synthesize a static pool per function.
        loopVars_.push_back(std::make_unique<VarDecl>());
        VarDecl* iv = loopVars_.back().get();
        iv->name = f.inductionVar;
        iv->type = Type::scalarOf(ScalarType::intTy());
        iv->storage = Storage::Local;
        iv->loc = f.loc;
        f.inductionDecl = iv;
        Scope bodyScope(&scope);
        bodyScope.declare(iv);
        analyzeStmt(*f.body, bodyScope);
        break;
      }
      case StmtKind::Return:
        break;
      case StmtKind::CallStmt: {
        auto& c = static_cast<CallStmt&>(s);
        auto& call = static_cast<CallExpr&>(*c.call);
        if (call.callee == intrinsics::kStoreNext) {
          analyzeStoreNext(call, scope);
        } else {
          analyzeExpr(*c.call, scope);
        }
        break;
      }
    }
  }

  /// ROCCC_store2next(var, value): first arg names the feedback variable
  /// (paper Fig 4); the value is coerced to its type.
  void analyzeStoreNext(CallExpr& call, Scope& scope) {
    if (call.args.size() != 2 || call.args[0]->kind != ExprKind::VarRef) {
      diags_.error(call.loc, "ROCCC_store2next expects (feedback_var, value)");
      return;
    }
    auto& target = static_cast<VarRefExpr&>(*call.args[0]);
    const VarDecl* d = scope.lookup(target.name);
    if (!d) {
      diags_.error(target.loc, fmt("unknown feedback variable '%0'", target.name));
      return;
    }
    target.decl = d;
    target.type = d->type.scalar;
    analyzeExpr(*call.args[1], scope);
    call.args[1] = coerce(std::move(call.args[1]), d->type.scalar);
    call.type = d->type.scalar;
  }

  ScalarType analyzeLValue(LValue& lv, Scope& scope, SourceLoc loc) {
    const VarDecl* d = scope.lookup(lv.name);
    if (!d) {
      diags_.error(loc, fmt("assignment to undeclared variable '%0'", lv.name));
      return ScalarType::intTy();
    }
    lv.decl = d;
    switch (lv.kind) {
      case LValue::Kind::Var:
        if (d->type.isArray()) {
          diags_.error(loc, fmt("cannot assign to array '%0' without an index", lv.name));
        }
        if (d->isConst) diags_.error(loc, fmt("assignment to const '%0'", lv.name));
        if (d->storage == Storage::Param && d->mode == ParamMode::Out && !d->type.isArray()) {
          diags_.error(loc, fmt("out-parameter '%0' must be written through '*%0'", lv.name));
        }
        return d->type.scalar;
      case LValue::Kind::ArrayElem: {
        if (!d->type.isArray()) {
          diags_.error(loc, fmt("'%0' is not an array", lv.name));
          return d->type.scalar;
        }
        if (lv.indices.size() != d->type.dims.size()) {
          diags_.error(loc, fmt("array '%0' has %1 dimensions, %2 indices given", lv.name,
                                d->type.dims.size(), lv.indices.size()));
        }
        if (d->isConst) diags_.error(loc, fmt("assignment to const array '%0'", lv.name));
        for (size_t i = 0; i < lv.indices.size(); ++i) {
          analyzeExpr(*lv.indices[i], scope);
          checkIndexBound(*lv.indices[i], *d, i);
        }
        return d->type.scalar;
      }
      case LValue::Kind::Deref: {
        if (d->storage != Storage::Param || d->mode != ParamMode::Out || d->type.isArray()) {
          diags_.error(loc, fmt("'*%0': only scalar out-parameters may be dereferenced", lv.name));
        }
        writtenOutParams_.insert(lv.name);
        return d->type.scalar;
      }
    }
    return ScalarType::intTy();
  }

  void checkIndexBound(const Expr& idx, const VarDecl& d, size_t dim) {
    if (auto v = evalConstant(idx)) {
      if (*v < 0 || (dim < d.type.dims.size() && *v >= d.type.dims[dim])) {
        diags_.error(idx.loc, fmt("index %0 out of bounds for dimension %1 of '%2' (size %3)", *v,
                                  dim, d.name, dim < d.type.dims.size() ? d.type.dims[dim] : 0));
      }
    }
  }

  void analyzeExpr(Expr& e, Scope& scope) {
    switch (e.kind) {
      case ExprKind::IntLit: {
        auto& l = static_cast<IntLitExpr&>(e);
        // Literals that don't fit int32 get uint32 (subset max width).
        e.type = (l.value > INT32_MAX || l.value < INT32_MIN) ? ScalarType::uintTy() : ScalarType::intTy();
        if (l.value > UINT32_MAX || l.value < INT32_MIN) {
          diags_.error(e.loc, fmt("literal %0 does not fit in 32 bits", l.value));
        }
        break;
      }
      case ExprKind::VarRef: {
        auto& v = static_cast<VarRefExpr&>(e);
        const VarDecl* d = scope.lookup(v.name);
        if (!d) {
          diags_.error(e.loc, fmt("use of undeclared identifier '%0'", v.name));
          break;
        }
        v.decl = d;
        if (d->type.isArray()) diags_.error(e.loc, fmt("array '%0' used as a scalar value", v.name));
        if (d->storage == Storage::Param && d->mode == ParamMode::Out && !d->type.isArray()) {
          diags_.error(e.loc, fmt("out-parameter '%0' cannot be read (write-only)", v.name));
        }
        v.type = d->type.scalar;
        break;
      }
      case ExprKind::ArrayRef: {
        auto& a = static_cast<ArrayRefExpr&>(e);
        const VarDecl* d = scope.lookup(a.name);
        if (!d) {
          diags_.error(e.loc, fmt("use of undeclared array '%0'", a.name));
          break;
        }
        a.decl = d;
        if (!d->type.isArray()) {
          diags_.error(e.loc, fmt("'%0' is not an array", a.name));
          break;
        }
        if (a.indices.size() != d->type.dims.size()) {
          diags_.error(e.loc, fmt("array '%0' has %1 dimensions, %2 indices given", a.name,
                                  d->type.dims.size(), a.indices.size()));
        }
        if (d->storage == Storage::Param && d->mode == ParamMode::Out) {
          // Reading back an output stream is not synthesizable in the
          // streaming model; flag early.
          diags_.error(e.loc, fmt("output array '%0' cannot be read in the kernel", a.name));
        }
        for (size_t i = 0; i < a.indices.size(); ++i) {
          analyzeExpr(*a.indices[i], scope);
          checkIndexBound(*a.indices[i], *d, i);
        }
        a.type = d->type.scalar;
        break;
      }
      case ExprKind::Unary: {
        auto& u = static_cast<UnaryExpr&>(e);
        analyzeExpr(*u.operand, scope);
        if (u.op == UnOp::LogicalNot) {
          u.type = ScalarType::boolTy();
        } else {
          u.type = promote(u.operand->type);
        }
        break;
      }
      case ExprKind::Binary: {
        auto& b = static_cast<BinaryExpr&>(e);
        analyzeExpr(*b.lhs, scope);
        analyzeExpr(*b.rhs, scope);
        if (isComparison(b.op)) {
          b.type = ScalarType::boolTy();
        } else if (b.op == BinOp::Shl || b.op == BinOp::Shr) {
          // Shifts take the promoted left operand's type.
          b.type = promote(b.lhs->type);
        } else {
          b.type = commonType(b.lhs->type, b.rhs->type);
        }
        break;
      }
      case ExprKind::Cast: {
        auto& c = static_cast<CastExpr&>(e);
        analyzeExpr(*c.operand, scope);
        if (c.type.width > 32) diags_.error(e.loc, "cast target wider than 32 bits");
        break;
      }
      case ExprKind::Call: {
        auto& c = static_cast<CallExpr&>(e);
        analyzeCall(c, scope);
        break;
      }
    }
  }

  void analyzeCall(CallExpr& c, Scope& scope) {
    if (intrinsics::isIntrinsic(c.callee)) {
      analyzeIntrinsic(c, scope);
      return;
    }
    // User function: must exist; used as a statement with out-params, or
    // inlined later. Record the call edge for the recursion check.
    const Function* callee = m_.findFunction(c.callee);
    if (!callee) {
      diags_.error(c.loc, fmt("call to unknown function '%0'", c.callee));
      return;
    }
    if (currentFn_) callGraph_[currentFn_->name].insert(c.callee);
    if (c.args.size() != callee->params.size()) {
      diags_.error(c.loc, fmt("'%0' expects %1 arguments, got %2", c.callee, callee->params.size(),
                              c.args.size()));
      return;
    }
    for (size_t i = 0; i < c.args.size(); ++i) {
      const VarDecl& p = callee->params[i];
      if (!p.type.isArray() && p.mode == ParamMode::Out) {
        // The argument must be an addressable scalar variable.
        if (c.args[i]->kind != ExprKind::VarRef) {
          diags_.error(c.args[i]->loc, fmt("argument %0 of '%1' must be a variable (out-param)", i, c.callee));
          continue;
        }
        auto& v = static_cast<VarRefExpr&>(*c.args[i]);
        const VarDecl* d = scope.lookup(v.name);
        if (!d)
          diags_.error(v.loc, fmt("use of undeclared identifier '%0'", v.name));
        else {
          v.decl = d;
          v.type = d->type.scalar;
        }
      } else {
        analyzeExpr(*c.args[i], scope);
        c.args[i] = coerce(std::move(c.args[i]), p.type.scalar);
      }
    }
    c.type = ScalarType::intTy(); // void in effect; calls only appear as stmts
  }

  void analyzeIntrinsic(CallExpr& c, Scope& scope) {
    const std::string& n = c.callee;
    if (n == intrinsics::kLoadPrev) {
      if (c.args.size() != 1 || c.args[0]->kind != ExprKind::VarRef) {
        diags_.error(c.loc, "ROCCC_load_prev expects a single variable argument");
        c.type = ScalarType::intTy();
        return;
      }
      auto& v = static_cast<VarRefExpr&>(*c.args[0]);
      const VarDecl* d = scope.lookup(v.name);
      if (!d) {
        diags_.error(v.loc, fmt("unknown feedback variable '%0'", v.name));
        return;
      }
      v.decl = d;
      v.type = d->type.scalar;
      c.type = d->type.scalar;
      return;
    }
    if (n == intrinsics::kStoreNext) {
      analyzeStoreNext(c, scope);
      return;
    }
    if (n == intrinsics::kLookup) {
      if (c.args.size() != 2 || c.args[0]->kind != ExprKind::VarRef) {
        diags_.error(c.loc, "ROCCC_lookup expects (const_table, index)");
        return;
      }
      auto& t = static_cast<VarRefExpr&>(*c.args[0]);
      const VarDecl* d = scope.lookup(t.name);
      if (!d || !d->type.isArray() || !d->isConst || d->init.empty()) {
        diags_.error(t.loc, fmt("'%0' must be a const initialized array to be used as a lookup table", t.name));
        return;
      }
      t.decl = d;
      t.type = d->type.scalar;
      analyzeExpr(*c.args[1], scope);
      c.type = d->type.scalar;
      return;
    }
    for (auto& a : c.args) analyzeExpr(*a, scope);
    if (n == intrinsics::kCos || n == intrinsics::kSin) {
      if (c.args.size() != 1) diags_.error(c.loc, fmt("%0 expects one argument", n));
      // The pre-existing Virtex-II cos/sin lookup table: 10-bit phase in,
      // 16-bit signed out (the Table 1 configuration).
      if (!c.args.empty()) c.args[0] = coerce(std::move(c.args[0]), ScalarType::make(10, false));
      c.type = ScalarType::make(16, true);
      return;
    }
    if (n == intrinsics::kBitSelect) {
      // ROCCC_bit_select(x, hi, lo): bits hi..lo as unsigned.
      if (c.args.size() != 3) {
        diags_.error(c.loc, "ROCCC_bit_select expects (value, hi, lo)");
        return;
      }
      auto hi = evalConstant(*c.args[1]);
      auto lo = evalConstant(*c.args[2]);
      if (!hi || !lo || *hi < *lo || *lo < 0 || *hi > 31) {
        diags_.error(c.loc, "ROCCC_bit_select bounds must be constants with 31 >= hi >= lo >= 0");
        return;
      }
      c.type = ScalarType::make(static_cast<int>(*hi - *lo + 1), false);
      return;
    }
    if (n == intrinsics::kBitConcat) {
      if (c.args.size() != 2) {
        diags_.error(c.loc, "ROCCC_bit_concat expects (high, low)");
        return;
      }
      const int w = c.args[0]->type.width + c.args[1]->type.width;
      if (w > 32) {
        diags_.error(c.loc, "ROCCC_bit_concat result exceeds 32 bits");
        return;
      }
      c.type = ScalarType::make(w, false);
      return;
    }
  }

  /// Wraps `e` in an implicit cast when its type differs from `to`.
  ExprPtr coerce(ExprPtr e, ScalarType to) {
    if (e->type == to) return e;
    auto c = std::make_unique<CastExpr>(to, std::move(e), /*implicit=*/true);
    c->loc = c->operand->loc;
    return c;
  }

  void checkNoRecursion() {
    // DFS over the call graph looking for a cycle (paper section 2:
    // "no recursion").
    std::set<std::string> visiting, done;
    std::function<bool(const std::string&)> dfs = [&](const std::string& fn) -> bool {
      if (done.count(fn)) return false;
      if (!visiting.insert(fn).second) return true;
      for (const auto& callee : callGraph_[fn]) {
        if (dfs(callee)) {
          return true;
        }
      }
      visiting.erase(fn);
      done.insert(fn);
      return false;
    };
    for (const auto& f : m_.functions) {
      if (dfs(f.name)) {
        diags_.error(f.loc, fmt("recursion detected involving '%0' (not supported on FPGA fabric)", f.name));
        return;
      }
    }
  }

  /// Storage for implicitly declared loop induction variables; handed to
  /// Module::ownedDecls when analysis finishes so the pointers stay valid.
 public:
  std::vector<std::unique_ptr<VarDecl>> loopVars_;
};

} // namespace

bool analyze(Module& m, DiagEngine& diags) {
  Sema s(m, diags);
  const bool ok = s.run();
  for (auto& v : s.loopVars_) m.ownedDecls.push_back(std::move(v));
  return ok;
}

ScalarType intrinsicResultType(const std::string& name, const std::vector<ScalarType>& argTypes) {
  if (name == intrinsics::kCos || name == intrinsics::kSin) return ScalarType::make(16, true);
  if (!argTypes.empty()) return argTypes[0];
  return ScalarType::intTy();
}

} // namespace roccc::ast
