/* Two adjacent loops over the same space: the fuse-adjacent-loops
   transform merges them into one streaming loop with two outputs. */
void two_pass(const int10 A[64], int12 C[64], int12 D[64]) {
  int i;
  for (i = 0; i < 64; i++) {
    C[i] = A[i] * 3;
  }
  for (i = 0; i < 64; i++) {
    D[i] = A[i] + 100;
  }
}
