// roccc-cc — the command-line driver.
//
//   roccc-cc [options] kernel.c [kernel2.c ...]
//
// Compiles the kernel to RTL VHDL, writes <kernel>.vhd (and optionally a
// self-checking testbench), and prints the compilation report: data-path
// structure, synthesis estimate (area / clock / power), and — when inputs
// are provided — a hardware/software cosimulation verdict.
//
// With more than one input file (listed on the command line and/or via
// --manifest), roccc-cc switches to batch mode: the files are compiled
// concurrently on a --jobs N worker pool (roccc::CompileService), each
// writing its own <input>.vhd. Batch output is deterministic — the VHDL
// bytes, pass counters and diagnostics per file are identical for any
// worker count.
//
// Options:
//   -o FILE            output VHDL path (default: <input>.vhd)
//   --kernel NAME      kernel function (default: last function in the file)
//   --unroll N         partially unroll the streaming loop by N
//   --target-ns X      pipeline stage delay target (default 4.0); the
//                      retime pass rebalances register placement against it
//   --timing-model FILE
//                      load a per-primitive delay/area/energy table
//                      overriding the built-in Virtex-II-class model (see
//                      docs/SYNTHESIS.md for the file format)
//   --no-retime        keep the fixed greedy staging (disable the
//                      timing-driven retime pass; ablation knob)
//   --mult-style S     'lut' (default) or 'mult18'
//   --no-infer         disable bit-width inference
//   --no-pipeline      single combinational stage
//   --testbench        also write <output>_tb.vhd: a system-level
//                      self-checking testbench whose stimulus and expected
//                      outputs come from the AST interpreter over the
//                      kernel's full iteration space (deterministic), and
//                      which is cross-checked against the --sim-engine
//                      netlist engine before it is written
//   --tb-seed N        with --testbench: append 16 seeded random extra
//                      vectors (SplitMix64 seed N, recorded in the
//                      testbench header comment)
//   --cosim            run the cycle-accurate system on random inputs and
//                      verify against the interpreter
//   --sim-engine E     netlist engine for --cosim and the --testbench
//                      cross-check: 'fast' (compiled, default) or 'ref'
//                      (boxed-Value reference)
//   --vcd FILE         with --cosim: dump a VCD waveform of the run
//   --verilog FILE     also write the Verilog form of the design
//   --json FILE        export the data-path graph as JSON (Fig 1's graph
//                      editor / annotation interface)
//   --dump-datapath    print the data-path op listing
//   --dump-mir         print the back-end IR
//   --time-passes      print the per-pass timing/counter table
//   --stats-json FILE  write per-pass statistics as JSON (machine-readable
//                      pipeline report)
//   --verify-each      run the layer verifier (MIR/RTL/VHDL) after every
//                      pipeline pass
//   --print-after-all  dump the IR after every pass (stderr)
//   --print-after P    dump the IR after pass P (repeatable; also
//                      --print-after=P)
//   --jobs N           batch mode: compile inputs on N worker threads
//                      (0 = one per hardware thread)
//   --manifest FILE    read additional input paths from FILE (one per
//                      line; blank lines and #-comments skipped)
//   --cache            batch mode: enable the content-addressed compile
//                      cache (roccc::CompileCache); identical jobs are
//                      served from memory / single-flighted
//   --cache-dir DIR    persistent on-disk cache tier in DIR, surviving
//                      across invocations (implies --cache)
//   --cache-bytes N    in-memory cache byte budget (default 256 MiB;
//                      implies --cache)
//   --quiet            only errors (suppresses reports and pass timing)
//   --timeout-ms N     per-job wall-clock deadline (0 = none; negative =
//                      already expired, for deterministic timeout tests)
//   --max-ir-nodes N   per-job cap on total live IR nodes (0 = none)
//   --max-unroll-product N
//                      cap on the product of all unroll expansions (0 = none)
//   --max-depth N      parser recursion / nesting depth cap (default 256,
//                      0 = none)
//   --inject-fault P   arm fault point P (see faultPointRegistry); the env
//                      var ROCCC_FAULT_INJECT is the equivalent switch for
//                      harnesses that cannot edit the command line
//
// Exit codes classify the outcome: 0 ok, 1 frontend error (bad input),
// 2 usage, 3 timeout, 4 resource budget exceeded, 5 internal error. In
// batch mode the summary line reports per-outcome counts and the exit code
// is the first failing job's.
//
// Every --opt VALUE option also accepts the --opt=VALUE spelling.
// docs/CLI.md is the full flag reference; a CI test keeps it in sync with
// the --help output generated from the option table below.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "dp/annotate.hpp"
#include "roccc/cache.hpp"
#include "roccc/compiler.hpp"
#include "roccc/driver.hpp"
#include "roccc/verify.hpp"
#include "synth/estimate.hpp"
#include "vhdl/check.hpp"
#include "vhdl/testbench.hpp"
#include "vhdl/verilog.hpp"

namespace {

struct Args {
  std::vector<std::string> inputs;
  std::string manifestPath;
  int jobs = 1;
  std::string output;
  roccc::CompileOptions options;
  std::string timingModelPath; ///< --timing-model; contents load into options
  bool testbench = false;
  uint64_t tbSeed = 0;
  bool tbSeedSet = false;
  bool cosim = false;
  roccc::rtl::SimEngine engine = roccc::rtl::SimEngine::Fast;
  std::string vcdPath;
  std::string verilogPath;
  std::string jsonPath;
  std::string statsJsonPath;
  bool dumpDatapath = false;
  bool dumpMir = false;
  bool timePasses = false;
  bool quiet = false;
  bool showHelp = false;
  bool cacheEnabled = false;
  std::string cacheDir;
  int64_t cacheBytes = 0; ///< 0 = CacheConfig default
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] kernel.c [kernel2.c ...]\n"
               "       %s --help for the option list (docs/CLI.md has the full reference)\n",
               argv0, argv0);
  return 2;
}

/// One row of the option table: entries with a null `valueName` are pure
/// flags; value options accept both "--opt VALUE" and "--opt=VALUE". The
/// handler returns false on a bad value. The --help listing and the
/// docs/CLI.md sync check are generated from this table, so every option
/// must live here.
struct OptionSpec {
  const char* name;
  const char* valueName; ///< null for flags; shown in --help
  const char* help;      ///< one-line --help description
  std::function<bool(Args&, const char*)> apply;
};

const std::vector<OptionSpec>& optionTable() {
  using roccc::dp::BuildOptions;
  using roccc::rtl::SimEngine;
  static const std::vector<OptionSpec> table = {
      {"-o", "FILE", "output VHDL path (default: <input>.vhd)",
       [](Args& a, const char* v) { a.output = v; return true; }},
      {"--kernel", "NAME", "kernel function (default: last function in the file)",
       [](Args& a, const char* v) { a.options.kernelName = v; return true; }},
      {"--unroll", "N", "partially unroll the streaming loop by N",
       [](Args& a, const char* v) { a.options.unrollFactor = std::atoi(v); return true; }},
      {"--target-ns", "X", "pipeline stage delay target in ns (default 4.0); retime balances to it",
       [](Args& a, const char* v) {
         a.options.dpOptions.targetStageDelayNs = std::atof(v);
         return true;
       }},
      {"--timing-model", "FILE", "per-primitive delay/area/energy table (docs/SYNTHESIS.md format)",
       [](Args& a, const char* v) { a.timingModelPath = v; return true; }},
      {"--no-retime", nullptr, "disable the timing-driven retime pass (fixed greedy staging)",
       [](Args& a, const char*) { a.options.retimePipeline = false; return true; }},
      {"--mult-style", "S", "multiplier style: 'lut' (default) or 'mult18'",
       [](Args& a, const char* v) {
         if (std::strcmp(v, "lut") == 0) {
           a.options.dpOptions.multStyle = BuildOptions::MultStyle::Lut;
         } else if (std::strcmp(v, "mult18") == 0) {
           a.options.dpOptions.multStyle = BuildOptions::MultStyle::Mult18;
         } else {
           return false;
         }
         return true;
       }},
      {"--no-infer", nullptr, "disable bit-width inference",
       [](Args& a, const char*) { a.options.dpOptions.inferBitWidths = false; return true; }},
      {"--no-pipeline", nullptr, "single combinational stage (no pipelining)",
       [](Args& a, const char*) { a.options.dpOptions.pipeline = false; return true; }},
      {"--testbench", nullptr, "also write <output>_tb.vhd (system-level, interpreter-derived vectors)",
       [](Args& a, const char*) { a.testbench = true; return true; }},
      {"--tb-seed", "N", "with --testbench: append 16 seeded random vectors (seed in header)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.tbSeed = std::strtoull(v, &end, 0);
         a.tbSeedSet = true;
         return end != v && *end == '\0';
       }},
      {"--cosim", nullptr, "run the RTL system and verify against the interpreter",
       [](Args& a, const char*) { a.cosim = true; return true; }},
      {"--sim-engine", "E", "netlist engine for --cosim and the --testbench check: 'fast' or 'ref'",
       [](Args& a, const char* v) {
         if (std::strcmp(v, "ref") == 0 || std::strcmp(v, "reference") == 0) {
           a.engine = SimEngine::Reference;
         } else if (std::strcmp(v, "fast") == 0) {
           a.engine = SimEngine::Fast;
         } else {
           return false;
         }
         return true;
       }},
      {"--vcd", "FILE", "with --cosim: dump a VCD waveform of the run",
       [](Args& a, const char* v) {
         a.vcdPath = v;
         a.cosim = true;
         return true;
       }},
      {"--verilog", "FILE", "also write the Verilog form of the design",
       [](Args& a, const char* v) { a.verilogPath = v; return true; }},
      {"--json", "FILE", "export the data-path graph as JSON",
       [](Args& a, const char* v) { a.jsonPath = v; return true; }},
      {"--stats-json", "FILE", "write pass statistics (single) or batch+cache stats as JSON",
       [](Args& a, const char* v) { a.statsJsonPath = v; return true; }},
      {"--dump-datapath", nullptr, "print the data-path op listing",
       [](Args& a, const char*) { a.dumpDatapath = true; return true; }},
      {"--dump-mir", nullptr, "print the back-end IR",
       [](Args& a, const char*) { a.dumpMir = true; return true; }},
      {"--time-passes", nullptr, "print the per-pass timing/counter table",
       [](Args& a, const char*) { a.timePasses = true; return true; }},
      {"--verify-each", nullptr, "run the layer verifier after every pipeline pass",
       [](Args& a, const char*) { a.options.pipeline.verifyEach = true; return true; }},
      {"--print-after-all", nullptr, "dump the IR after every pass (stderr)",
       [](Args& a, const char*) { a.options.pipeline.printAfterAll = true; return true; }},
      {"--print-after", "P", "dump the IR after pass P (repeatable)",
       [](Args& a, const char* v) {
         a.options.pipeline.printAfter.emplace_back(v);
         return true;
       }},
      {"--jobs", "N", "batch mode: N worker threads (0 = one per hardware thread)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.jobs = static_cast<int>(std::strtol(v, &end, 10));
         return end != v && *end == '\0' && a.jobs >= 0;
       }},
      {"--manifest", "FILE", "read additional input paths from FILE (one per line)",
       [](Args& a, const char* v) { a.manifestPath = v; return true; }},
      {"--cache", nullptr, "batch mode: enable the content-addressed compile cache",
       [](Args& a, const char*) { a.cacheEnabled = true; return true; }},
      {"--cache-dir", "DIR", "persistent on-disk cache tier in DIR (implies --cache)",
       [](Args& a, const char* v) {
         a.cacheEnabled = true;
         a.cacheDir = v;
         return true;
       }},
      {"--cache-bytes", "N", "in-memory cache byte budget, default 256 MiB (implies --cache)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.cacheBytes = std::strtoll(v, &end, 10);
         a.cacheEnabled = true;
         return end != v && *end == '\0' && a.cacheBytes > 0;
       }},
      {"--quiet", nullptr, "only errors (suppresses reports and pass timing)",
       [](Args& a, const char*) { a.quiet = true; return true; }},
      {"--timeout-ms", "N", "per-job wall-clock deadline (0 = none; negative = expired)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.options.budget.timeoutMs = std::strtoll(v, &end, 10);
         return end != v && *end == '\0';
       }},
      {"--max-ir-nodes", "N", "per-job cap on total live IR nodes (0 = none)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.options.budget.maxIrNodes = std::strtoll(v, &end, 10);
         return end != v && *end == '\0' && a.options.budget.maxIrNodes >= 0;
       }},
      {"--max-unroll-product", "N", "cap on the product of all unroll expansions (0 = none)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.options.budget.maxUnrollProduct = std::strtoll(v, &end, 10);
         return end != v && *end == '\0' && a.options.budget.maxUnrollProduct >= 0;
       }},
      {"--max-depth", "N", "parser recursion/nesting depth cap (default 256, 0 = none)",
       [](Args& a, const char* v) {
         char* end = nullptr;
         a.options.budget.maxDepth = static_cast<int>(std::strtol(v, &end, 10));
         return end != v && *end == '\0' && a.options.budget.maxDepth >= 0;
       }},
      {"--inject-fault", "P", "arm fault point P (see faultPointRegistry)",
       [](Args& a, const char* v) { a.options.injectFaultAt = v; return true; }},
      {"--help", nullptr, "print this option list and exit",
       [](Args& a, const char*) { a.showHelp = true; return true; }},
  };
  return table;
}

/// The --help listing, generated from the option table; the docs/CLI.md
/// sync test (tests/check_cli_docs.sh) parses this output.
void printHelp(const char* argv0) {
  std::printf("usage: %s [options] kernel.c [kernel2.c ...]\n\n"
              "Compiles C kernels to RTL VHDL; with multiple inputs, compiles them as a\n"
              "concurrent batch. docs/CLI.md is the full reference.\n\noptions:\n",
              argv0);
  for (const auto& s : optionTable()) {
    std::string left = s.name;
    if (s.valueName) {
      left += ' ';
      left += s.valueName;
    }
    std::printf("  %-22s %s\n", left.c_str(), s.help);
  }
  std::printf("\nexit codes: 0 ok, 1 frontend error, 2 usage, 3 timeout,\n"
              "            4 resource budget exceeded, 5 internal error\n");
}

bool parseArgs(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.empty() || arg[0] != '-') {
      a.inputs.push_back(arg);
      continue;
    }
    // Split the "--opt=value" spelling.
    std::string inlineValue;
    bool hasInlineValue = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos && arg.rfind("--", 0) == 0) {
      inlineValue = arg.substr(eq + 1);
      arg.resize(eq);
      hasInlineValue = true;
    }
    const OptionSpec* spec = nullptr;
    for (const auto& s : optionTable()) {
      if (arg == s.name) {
        spec = &s;
        break;
      }
    }
    if (!spec) return false;
    const char* value = nullptr;
    if (spec->valueName) {
      if (hasInlineValue) {
        value = inlineValue.c_str();
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return false;
      }
    } else if (hasInlineValue) {
      return false;
    }
    if (!spec->apply(a, value)) return false;
  }
  return a.showHelp || !a.inputs.empty() || !a.manifestPath.empty();
}

/// Appends the manifest's input paths (one per line, blank lines and
/// #-comment lines skipped) to `inputs`.
bool readManifest(const std::string& path, std::vector<std::string>& inputs) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open manifest '%s'\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const size_t end = line.find_last_not_of(" \t\r");
    line = line.substr(begin, end - begin + 1);
    if (line.empty() || line[0] == '#') continue;
    inputs.push_back(line);
  }
  return true;
}

/// Outcome-classified exit code: scripts and the CI fault sweep key on
/// these. 2 is reserved for usage errors.
int exitCodeFor(roccc::CompileOutcome outcome) {
  switch (outcome) {
    case roccc::CompileOutcome::Ok: return 0;
    case roccc::CompileOutcome::FrontendError: return 1;
    case roccc::CompileOutcome::Timeout: return 3;
    case roccc::CompileOutcome::ResourceExceeded: return 4;
    case roccc::CompileOutcome::InternalError: return 5;
  }
  return 5;
}

/// <input>.c -> <input>.vhd (extension replaced, or appended when none).
std::string defaultOutputPath(const std::string& input) {
  std::string out = input;
  const size_t dot = out.rfind('.');
  const size_t slash = out.find_last_of('/');
  if (dot != std::string::npos && (slash == std::string::npos || dot > slash)) out.resize(dot);
  return out + ".vhd";
}

/// Batch mode: compile every input on a CompileService pool, write one
/// .vhd per input, print per-file status plus the aggregate throughput.
int runBatch(const Args& a) {
  std::vector<roccc::CompileJob> jobs;
  for (const std::string& path : a.inputs) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    jobs.push_back({path, buf.str(), a.options});
  }

  roccc::CompileService service(a.jobs);
  std::shared_ptr<roccc::CompileCache> cache;
  if (a.cacheEnabled) {
    roccc::CacheConfig cfg;
    if (a.cacheBytes > 0) cfg.maxBytes = a.cacheBytes;
    cfg.diskDir = a.cacheDir;
    cache = std::make_shared<roccc::CompileCache>(cfg);
    service.setCache(cache);
    if (!a.cacheDir.empty() && !cache->diskEnabled()) {
      std::fprintf(stderr, "error: cannot use cache directory '%s'\n", a.cacheDir.c_str());
      return 1;
    }
  }
  const roccc::BatchResult batch = service.compileBatch(jobs);

  int failures = 0;
  int firstFailureExit = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const roccc::CompileResult& r = batch.results[i];
    if (!r.ok) {
      ++failures;
      if (firstFailureExit == 0) firstFailureExit = exitCodeFor(r.outcome);
      std::fprintf(stderr, "%s: compile failed (%s%s%s)\n%s", jobs[i].name.c_str(),
                   roccc::compileOutcomeName(r.outcome), r.failedPass.empty() ? "" : " in pass ",
                   r.failedPass.c_str(), r.diags.dump().c_str());
      continue;
    }
    const auto chk = roccc::vhdl::checkDesign(r.vhdl);
    if (!chk.ok) {
      ++failures;
      std::fprintf(stderr, "%s: internal: emitted VHDL failed validation\n", jobs[i].name.c_str());
      continue;
    }
    const std::string outPath = defaultOutputPath(jobs[i].name);
    std::ofstream out(outPath);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", outPath.c_str());
      return 1;
    }
    out << r.vhdl;
    if (!a.quiet) {
      std::printf("%-32s -> %s (%d entities, %zu bytes)\n", jobs[i].name.c_str(), outPath.c_str(),
                  chk.entityCount, r.vhdl.size());
    }
  }
  if (!a.quiet) {
    std::printf("batch: %d/%zu kernels ok on %d worker(s), %.1f ms total, %.1f kernels/s\n",
                batch.succeeded(), jobs.size(), batch.workers, batch.wallMs,
                batch.kernelsPerSecond());
    std::printf("batch outcomes: %s\n", batch.outcomeSummary().c_str());
    if (cache) {
      const roccc::CacheStats cs = cache->stats();
      std::printf("batch cache: %d hits, %d misses (%lld coalesced, %lld evicted, "
                  "%lld disk loads, %lld disk stores)\n",
                  batch.cacheHits, batch.cacheMisses, static_cast<long long>(cs.coalesced),
                  static_cast<long long>(cs.evictions), static_cast<long long>(cs.diskHits),
                  static_cast<long long>(cs.diskStores));
    }
  }
  if (!a.statsJsonPath.empty()) {
    std::ofstream sout(a.statsJsonPath);
    if (!sout) {
      std::fprintf(stderr, "error: cannot write '%s'\n", a.statsJsonPath.c_str());
      return 1;
    }
    std::ostringstream json;
    json << "{\n  \"batch\": {\"jobs\": " << jobs.size() << ", \"ok\": " << batch.succeeded()
         << ", \"workers\": " << batch.workers << ", \"wallMs\": " << batch.wallMs
         << ", \"cacheHits\": " << batch.cacheHits << ", \"cacheMisses\": " << batch.cacheMisses
         << "}";
    if (cache) json << ",\n  \"cache\": " << cache->stats().toJson();
    json << "\n}\n";
    sout << json.str();
    if (!a.quiet) std::printf("wrote %s\n", a.statsJsonPath.c_str());
  }
  return firstFailureExit;
}

/// Random inputs covering the kernel's arrays and scalars.
roccc::interp::KernelIO randomInputs(const roccc::hlir::KernelInfo& k, uint64_t seed) {
  std::mt19937_64 rng(seed);
  roccc::interp::KernelIO io;
  for (const auto& st : k.inputs) {
    int64_t n = 1;
    for (int64_t d : st.dims) n *= d;
    std::uniform_int_distribution<int64_t> dist(st.elemType.minValue(), st.elemType.maxValue());
    auto& arr = io.arrays[st.arrayName];
    for (int64_t i = 0; i < n; ++i) arr.push_back(dist(rng));
  }
  for (const auto& si : k.scalarInputs) {
    if (si.isInduction) continue;
    std::uniform_int_distribution<int64_t> dist(si.type.minValue(), si.type.maxValue());
    io.scalars[si.name] = dist(rng);
  }
  return io;
}

} // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parseArgs(argc, argv, a)) return usage(argv[0]);
  if (a.showHelp) {
    printHelp(argv[0]);
    return 0;
  }
  if (!a.manifestPath.empty() && !readManifest(a.manifestPath, a.inputs)) return 1;
  if (a.inputs.empty()) return usage(argv[0]);
  // ROCCC_FAULT_INJECT: the environment spelling of --inject-fault, for
  // harnesses that drive roccc-cc without editing its command line. The
  // explicit flag wins.
  if (a.options.injectFaultAt.empty()) {
    if (const char* env = std::getenv("ROCCC_FAULT_INJECT")) a.options.injectFaultAt = env;
  }

  // --timing-model: load the file *contents* into the compile options (the
  // cache key hashes the contents, keeping a compile a pure function of
  // (source, options)), and parse-validate it up front so a bad table is a
  // single clear error instead of one per batch job.
  roccc::synth::TimingModel timingModel = roccc::synth::TimingModel::virtex2();
  if (!a.timingModelPath.empty()) {
    std::ifstream tm(a.timingModelPath);
    if (!tm) {
      std::fprintf(stderr, "error: cannot open timing model '%s'\n", a.timingModelPath.c_str());
      return 1;
    }
    std::ostringstream tmBuf;
    tmBuf << tm.rdbuf();
    a.options.timingModelSpec = tmBuf.str();
    std::string tmError;
    if (!roccc::synth::TimingModel::parse(a.options.timingModelSpec, timingModel, tmError)) {
      std::fprintf(stderr, "error: %s: %s\n", a.timingModelPath.c_str(), tmError.c_str());
      return 1;
    }
  }

  if (a.inputs.size() > 1) {
    if (!a.output.empty()) {
      std::fprintf(stderr, "error: -o is incompatible with multiple inputs "
                           "(each writes its own <input>.vhd)\n");
      return 2;
    }
    return runBatch(a);
  }

  const std::string& input = a.inputs.front();
  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", input.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string source = buf.str();

  roccc::Compiler compiler(a.options);
  const roccc::CompileResult r = compiler.compileSource(source);

  // Requested IR snapshots, also for failed compiles (the snapshot before
  // the failing pass is often the point).
  for (const auto& p : r.passLog) {
    if (p.snapshot.empty()) continue;
    std::fprintf(stderr, "*** IR after pass '%s' (%s) ***\n%s\n", p.name.c_str(),
                 roccc::passLayerName(p.layer), p.snapshot.c_str());
  }
  if (!a.statsJsonPath.empty()) {
    std::ofstream sout(a.statsJsonPath);
    if (!sout) {
      std::fprintf(stderr, "error: cannot write '%s'\n", a.statsJsonPath.c_str());
      return 1;
    }
    std::string timingMember;
    if (r.ok) {
      const auto est =
          roccc::synth::estimate(r.module, roccc::synth::EstimateOptions::forModel(timingModel));
      const auto& rt = r.retiming;
      std::ostringstream t;
      t << "\"timing\": {\"targetNs\": " << a.options.dpOptions.targetStageDelayNs
        << ", \"retimed\": " << (rt.run ? "true" : "false")
        << ", \"stages\": " << r.datapath.stageCount << ", \"worstStageNs\": " << rt.worstStageNs
        << ", \"criticalPathNs\": " << est.criticalPathNs << ", \"fmaxMHz\": " << est.fmaxMHz()
        << ", \"slackNs\": " << rt.slackNs << ", \"feasible\": " << (rt.feasible ? "true" : "false")
        << ", \"energy\": {\"dynamicPjPerCycle\": " << est.dynamicPjPerCycle
        << ", \"leakageMw\": " << est.leakageMw << ", \"edpPjNs\": " << est.edpPjNs() << "}}";
      timingMember = t.str();
    }
    sout << roccc::statsToJson(r.passLog, timingMember);
    if (!a.quiet) std::printf("wrote %s\n", a.statsJsonPath.c_str());
  }
  if (!r.ok) {
    if (r.outcome != roccc::CompileOutcome::FrontendError) {
      std::fprintf(stderr, "%s: %s%s%s\n", input.c_str(), roccc::compileOutcomeName(r.outcome),
                   r.failedPass.empty() ? "" : " in pass ", r.failedPass.c_str());
    }
    std::fprintf(stderr, "%s", r.diags.dump().c_str());
    return exitCodeFor(r.outcome);
  }
  for (const auto& d : r.diags.all()) {
    if (d.severity == roccc::Severity::Warning) {
      std::fprintf(stderr, "%s\n", d.str().c_str());
    }
  }
  if (a.timePasses && !a.quiet) std::printf("%s", roccc::statsToTable(r.passLog).c_str());

  if (a.output.empty()) a.output = defaultOutputPath(input);
  {
    std::ofstream out(a.output);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", a.output.c_str());
      return 1;
    }
    out << r.vhdl;
  }
  const auto chk = roccc::vhdl::checkDesign(r.vhdl);
  if (!chk.ok) {
    std::fprintf(stderr, "internal: emitted VHDL failed validation:\n");
    for (const auto& p : chk.problems) std::fprintf(stderr, "  %s\n", p.c_str());
    return 1;
  }

  if (!a.verilogPath.empty()) {
    const auto vchk = roccc::verilog::checkDesign(r.verilog);
    if (!vchk.ok) {
      std::fprintf(stderr, "internal: emitted Verilog failed validation\n");
      return 1;
    }
    std::ofstream vout(a.verilogPath);
    vout << r.verilog;
    if (!a.quiet) std::printf("wrote %s (%d modules)\n", a.verilogPath.c_str(), vchk.moduleCount);
  }
  if (!a.jsonPath.empty()) {
    std::ofstream jout(a.jsonPath);
    jout << roccc::dp::exportJson(r.datapath);
    if (!a.quiet) std::printf("wrote %s\n", a.jsonPath.c_str());
  }

  if (a.testbench) {
    // System-level vectors: the full iteration space through the AST
    // interpreter (deterministic — the same kernel always gets the same
    // testbench), plus optional --tb-seed extras. Before writing, the
    // vector set is replayed on the selected --sim-engine netlist engine,
    // so the emitted file is known to self-report "TESTBENCH PASSED".
    const auto io = roccc::deterministicStimulus(r.kernel, roccc::VerifyOptions{}.seed);
    const int extras = a.tbSeedSet ? 16 : 0;
    roccc::vhdl::TestbenchInfo info;
    const auto vectors =
        roccc::vhdl::makeSystemVectors(r.kernel, r.datapath, io, extras, a.tbSeed, &info);
    const auto sim = roccc::vhdl::simulateTestbench(r.datapath, r.module, vectors, a.engine);
    if (!sim.passed) {
      std::fprintf(stderr, "internal: testbench self-check failed: %s\n",
                   sim.firstFailure.c_str());
      return 5;
    }
    std::string tbPath = a.output;
    const size_t dot = tbPath.rfind('.');
    if (dot != std::string::npos) tbPath.resize(dot);
    tbPath += "_tb.vhd";
    std::ofstream tb(tbPath);
    tb << roccc::vhdl::emitSystemTestbench(r.datapath, r.kernel, vectors, info);
    if (!a.quiet) {
      std::printf("wrote %s (%lld interpreter-derived + %d seeded vectors, checked on the "
                  "%s engine)\n",
                  tbPath.c_str(), static_cast<long long>(info.traceVectors), info.extraVectors,
                  roccc::rtl::simEngineName(a.engine));
    }
  }

  if (!a.quiet) {
    std::printf("wrote %s (%d entities)\n", a.output.c_str(), chk.entityCount);
    std::printf("kernel '%s': %zu-deep loop nest, %zu input stream(s), %zu output stream(s), "
                "%zu feedback register(s)\n",
                r.kernel.kernelName.c_str(), r.kernel.loops.size(), r.kernel.inputs.size(),
                r.kernel.outputs.size(), r.kernel.feedbacks.size());
    std::printf("data path: %d nodes (%d soft + %d hard), %d pipeline stages, %lld bits narrowed\n",
                static_cast<int>(r.datapath.nodes.size()), r.datapath.softNodeCount,
                r.datapath.hardNodeCount, r.datapath.stageCount,
                static_cast<long long>(r.datapath.narrowedBits));
    if (r.retiming.run) {
      std::printf("retiming: %d -> %d stages @ %.2f ns target (worst stage %.2f ns, "
                  "slack %+.2f ns, modeled fmax %.1f MHz, %s)\n",
                  r.retiming.stagesBefore, r.retiming.stagesAfter, r.retiming.targetNs,
                  r.retiming.worstStageNs, r.retiming.slackNs, r.retiming.fmaxMHz,
                  r.retiming.feasible ? "feasible" : "infeasible target");
    }
    const auto rep =
        roccc::synth::estimate(r.module, roccc::synth::EstimateOptions::forModel(timingModel));
    std::printf("synthesis estimate (xc2v2000-5): %s\n", rep.summary().c_str());
    std::printf("dynamic power @ fmax: %.1f mW\n",
                roccc::synth::estimatePowerMw(rep.res, rep.fmaxMHz()));
  }
  if (a.dumpDatapath) std::printf("\n%s", r.datapath.dump().c_str());
  if (a.dumpMir) std::printf("\n%s", r.mir.dump().c_str());

  if (a.cosim) {
    const auto io = randomInputs(r.kernel, 1234);
    roccc::rtl::SystemOptions sysOpt;
    sysOpt.recordVcd = !a.vcdPath.empty();
    sysOpt.engine = a.engine;
    const auto rep = roccc::cosimulate(r, source, io, sysOpt);
    if (!rep.match) {
      std::fprintf(stderr, "COSIMULATION MISMATCH: %s\n", rep.mismatch.c_str());
      return 1;
    }
    if (!a.quiet) {
      std::printf("cosimulation: MATCH (%lld cycles, %lld iterations, %lld BRAM reads, "
                  "%s engine)\n",
                  static_cast<long long>(rep.stats.cycles),
                  static_cast<long long>(rep.stats.iterations),
                  static_cast<long long>(rep.stats.bramReads),
                  roccc::rtl::simEngineName(a.engine));
    }
    if (!a.vcdPath.empty()) {
      roccc::rtl::System sys(r.kernel, r.datapath, r.module, sysOpt);
      sys.run(io);
      std::ofstream vcdOut(a.vcdPath);
      vcdOut << sys.vcd();
      if (!a.quiet) std::printf("wrote %s\n", a.vcdPath.c_str());
    }
  }
  return 0;
}
